package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"

	"repro/internal/cluster/client"
	"repro/internal/serve"
)

// Errors the coordinator API maps onto HTTP statuses.
var (
	ErrNoWorkers = errors.New("cluster: no routable workers")
	ErrNotFound  = errors.New("cluster: job not found")
	ErrUnroutable = errors.New("cluster: job's worker is unreachable")
)

// Submit admits a job to the cluster: mint a coordinator id, shard it
// onto the ring, and import it into the owning worker. Workers that
// refuse (draining, queue full past the retry budget, dead) are skipped
// in ring order, so admission degrades before it fails.
func (c *Coordinator) Submit(ctx context.Context, spec serve.JobSpec) (Info, error) {
	if err := spec.Normalize(); err != nil {
		return Info{}, err
	}
	id := newJobID()
	st := serve.JobStatus{ID: id, State: serve.StateQueued, Mode: spec.Mode, Spec: spec}

	c.mu.Lock()
	cands := c.candidatesLocked(id, "")
	c.mu.Unlock()
	if len(cands) == 0 {
		return Info{}, ErrNoWorkers
	}

	var lastErr error
	for _, ws := range cands {
		var out serve.JobStatus
		err := ws.cl.Do(ctx, http.MethodPost, "/jobs/import", importBody(st, nil), &out)
		if err != nil {
			lastErr = err
			continue
		}
		j := &cjob{id: id, worker: ws.info.Name, last: out, mirroredStep: -1}
		c.mu.Lock()
		c.jobs[id] = j
		c.persistAssignment(j)
		c.mu.Unlock()
		c.mSubmitted.Inc()
		c.cfg.Logf("cluster: %s -> %s (%s tc%d level %d, ensemble %d)",
			id, ws.info.Name, spec.Mode, spec.TestCase, spec.Level, spec.Ensemble)
		return Info{JobStatus: out, Worker: ws.info.Name}, nil
	}
	return Info{}, fmt.Errorf("cluster: no worker accepted the job: %w", lastErr)
}

// job returns the coordinator record and (when assigned) the live worker.
func (c *Coordinator) job(id string) (*cjob, *workerState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	return j, c.workers[j.worker], nil
}

// Status returns the job's status, live from its worker when reachable,
// from the coordinator cache when not (mid-failover the cache is the only
// truth available — the next tick will refresh or steal).
func (c *Coordinator) Status(ctx context.Context, id string) (Info, error) {
	j, ws, err := c.job(id)
	if err != nil {
		return Info{}, err
	}
	if ws != nil {
		var st serve.JobStatus
		if err := ws.cl.GetJSON(ctx, "/jobs/"+id, &st); err == nil {
			c.mu.Lock()
			j.last = st
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Info{JobStatus: j.last, Worker: j.worker, Steals: j.steals}, nil
}

// Result proxies the final result from the job's worker.
func (c *Coordinator) Result(ctx context.Context, id string) (serve.Result, error) {
	_, ws, err := c.job(id)
	if err != nil {
		return serve.Result{}, err
	}
	if ws == nil {
		return serve.Result{}, ErrUnroutable
	}
	var res serve.Result
	if err := ws.cl.GetJSON(ctx, "/jobs/"+id+"/result", &res); err != nil {
		return serve.Result{}, err
	}
	return res, nil
}

// Cancel proxies a cancellation to the job's worker.
func (c *Coordinator) Cancel(ctx context.Context, id string) error {
	_, ws, err := c.job(id)
	if err != nil {
		return err
	}
	if ws == nil {
		return ErrUnroutable
	}
	return ws.cl.PostJSON(ctx, "/jobs/"+id+"/cancel", nil, nil)
}

// Checkpoint fetches the job's latest durable checkpoint bytes from its
// worker, falling back to the coordinator's own mirror when the worker is
// gone.
func (c *Coordinator) Checkpoint(ctx context.Context, id string) ([]byte, error) {
	j, ws, err := c.job(id)
	if err != nil {
		return nil, err
	}
	if ws != nil {
		if data, err := ws.cl.GetBytes(ctx, "/jobs/"+id+"/checkpoint"); err == nil {
			return data, nil
		} else if client.IsStatus(err, http.StatusNotFound) {
			return nil, fmt.Errorf("%w: no checkpoint yet", ErrNotFound)
		}
	}
	data, rerr := os.ReadFile(c.mirrorCkptPath(j.id))
	if rerr != nil {
		return nil, fmt.Errorf("%w: no live worker and no mirror", ErrUnroutable)
	}
	return data, nil
}
