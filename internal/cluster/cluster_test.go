package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// testWorker is one in-process swserver: the serve.Server plus its HTTP
// front. close() is crash-like — the HTTP listener and the server die
// without drain, the in-process equivalent of kill -9 (serve.Server.Close
// is documented as the crash path; the spool survives, the coordinator
// cannot reach it anymore).
type testWorker struct {
	name string
	srv  *serve.Server
	ts   *httptest.Server
}

func (w *testWorker) crash() {
	w.ts.CloseClientConnections()
	w.ts.Close()
	w.srv.Close()
}

func newTestWorker(t testing.TB, name string, cfg serve.Config) *testWorker {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	w := &testWorker{name: name, srv: srv, ts: ts}
	t.Cleanup(func() {
		defer func() { recover() }() // double-close after crash() is fine
		ts.Close()
		srv.Close()
	})
	return w
}

// newTestCluster builds a coordinator with a long heartbeat (tests drive
// Tick explicitly) and registers the given workers.
func newTestCluster(t testing.TB, evictAfter time.Duration, workers ...*testWorker) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(Config{
		SpoolDir:       t.TempDir(),
		HeartbeatEvery: time.Hour, // ticks are explicit in tests
		EvictAfter:     evictAfter,
		Registry:       telemetry.NewRegistry(),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() { ts.Close(); c.Close() })
	for _, w := range workers {
		if err := c.Register(Worker{Name: w.name, URL: w.ts.URL}); err != nil {
			t.Fatal(err)
		}
	}
	return c, ts
}

func submitCluster(t testing.TB, base string, spec serve.JobSpec) Info {
	t.Helper()
	data, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%+v)", resp.StatusCode, info)
	}
	return info
}

func clusterStatus(t testing.TB, base, id string) Info {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func waitClusterState(t testing.TB, c *Coordinator, base, id string, want serve.JobState) Info {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		info := clusterStatus(t, base, id)
		if info.State == want {
			return info
		}
		if info.State.Terminal() {
			t.Fatalf("job %s ended %s (error %q), want %s", id, info.State, info.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s to be %s (now %s)", id, want, info.State)
		}
		c.Tick()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterSubmitProxyComplete(t *testing.T) {
	w1 := newTestWorker(t, "w1", serve.Config{})
	w2 := newTestWorker(t, "w2", serve.Config{})
	c, ts := newTestCluster(t, time.Hour, w1, w2)

	info := submitCluster(t, ts.URL, serve.JobSpec{TestCase: 5, Level: 2, Mode: "plan",
		Steps: 8, ReportEvery: 4})
	if !strings.HasPrefix(info.ID, "c-") {
		t.Fatalf("coordinator id %q, want c- prefix", info.ID)
	}
	if info.Worker != "w1" && info.Worker != "w2" {
		t.Fatalf("assigned worker %q", info.Worker)
	}

	done := waitClusterState(t, c, ts.URL, info.ID, serve.StateCompleted)
	if done.Worker != info.Worker || done.Steals != 0 {
		t.Fatalf("done on %s with %d steals, want %s/0", done.Worker, done.Steals, info.Worker)
	}

	// Result proxy.
	resp, err := http.Get(ts.URL + "/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Steps != 8 || res.Final == nil {
		t.Fatalf("result %+v", res)
	}

	// Events proxy replays the worker's stream through the coordinator.
	eresp, err := http.Get(ts.URL + "/jobs/" + info.ID + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(eresp.Body)
	eresp.Body.Close()
	if !strings.Contains(body.String(), `"type": "done"`) &&
		!strings.Contains(body.String(), `"type":"done"`) {
		t.Fatalf("event stream missing done event:\n%s", body.String())
	}

	// The job list knows the assignment.
	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := []Info{}
	json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("job list %+v", list)
	}
}

func TestClusterNoWorkers(t *testing.T) {
	_, ts := newTestCluster(t, time.Hour)
	data, _ := json.Marshal(serve.JobSpec{TestCase: 5, Level: 2, Steps: 4})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with no workers: %d, want 503", resp.StatusCode)
	}
}

// TestClusterFailover is the steal protocol end to end, in process: a
// paced job is submitted, its checkpoints are mirrored on monitor ticks,
// the assigned worker crashes without warning, the coordinator evicts it
// and re-admits the job on the survivor from the mirror, and the job
// completes there. (The ULP-level trajectory conformance of exactly this
// scenario is asserted in internal/conform's cluster resume test; the
// kill -9 version of it runs in scripts/ci.sh.)
func TestClusterFailover(t *testing.T) {
	w1 := newTestWorker(t, "w1", serve.Config{})
	w2 := newTestWorker(t, "w2", serve.Config{})
	c, ts := newTestCluster(t, 50*time.Millisecond, w1, w2)

	info := submitCluster(t, ts.URL, serve.JobSpec{TestCase: 5, Level: 2, Mode: "plan",
		Steps: 40, ReportEvery: 4, CheckpointEvery: 4, StepDelayMS: 20})
	waitClusterState(t, c, ts.URL, info.ID, serve.StateRunning)

	// Tick until a checkpoint mirror exists on the coordinator's disk.
	deadline := time.Now().Add(60 * time.Second)
	for {
		c.Tick()
		if st := clusterStatus(t, ts.URL, info.ID); st.State.Terminal() {
			t.Fatalf("job finished before the crash (%s) — pacing too fast", st.State)
		}
		if _, err := os.Stat(c.mirrorCkptPath(info.ID)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint mirror appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Crash the assigned worker, survivor identified first.
	var victim, survivor *testWorker
	if info.Worker == "w1" {
		victim, survivor = w1, w2
	} else {
		victim, survivor = w2, w1
	}
	victim.crash()

	// Let the eviction deadline lapse; the next ticks must evict + steal.
	time.Sleep(60 * time.Millisecond)
	c.Tick() // probe fails; evict; steal onto survivor
	st := clusterStatus(t, ts.URL, info.ID)
	if st.Worker != survivor.name {
		t.Fatalf("after steal, job on %q, want survivor %q", st.Worker, survivor.name)
	}
	if st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}

	done := waitClusterState(t, c, ts.URL, info.ID, serve.StateCompleted)
	if done.Worker != survivor.name {
		t.Fatalf("completed on %q, want %q", done.Worker, survivor.name)
	}
	if got := c.mStolen.Value(); got != 1 {
		t.Fatalf("cluster_jobs_stolen_total = %d, want 1", got)
	}
	if got := c.mEvicted.Value(); got != 1 {
		t.Fatalf("cluster_workers_evicted_total = %d, want 1", got)
	}

	// The resumed run continued from the mirrored checkpoint, not step 0.
	resp, err := http.Get(ts.URL + "/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res serve.Result
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if res.Resumes < 1 {
		t.Fatalf("result resumes = %d, want >= 1 (checkpoint migration)", res.Resumes)
	}
	if res.Steps != 40 {
		t.Fatalf("result steps = %d, want 40", res.Steps)
	}
}

// TestClusterDrainingUnroutable: a draining worker keeps its jobs but
// receives no new ones.
func TestClusterDrainingUnroutable(t *testing.T) {
	w1 := newTestWorker(t, "w1", serve.Config{})
	w2 := newTestWorker(t, "w2", serve.Config{})
	c, ts := newTestCluster(t, time.Hour, w1, w2)

	// Drain w1 (no jobs: drains immediately) and let a probe see it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w1.srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	c.Tick()

	for i := 0; i < 6; i++ {
		info := submitCluster(t, ts.URL, serve.JobSpec{TestCase: 5, Level: 2, Mode: "plan",
			Steps: 2, ReportEvery: 2})
		if info.Worker != "w2" {
			t.Fatalf("job %s routed to draining worker %s", info.ID, info.Worker)
		}
	}
}

// TestClusterFederatedMetrics: the coordinator's /metrics page carries
// per-worker serve metrics under cluster_w_<name>_ prefixes, their sums
// under cluster_total_, and the coordinator's own counters.
func TestClusterFederatedMetrics(t *testing.T) {
	w1 := newTestWorker(t, "w1", serve.Config{})
	w2 := newTestWorker(t, "w2", serve.Config{})
	c, ts := newTestCluster(t, time.Hour, w1, w2)

	info := submitCluster(t, ts.URL, serve.JobSpec{TestCase: 5, Level: 2, Mode: "plan",
		Steps: 4, ReportEvery: 2})
	waitClusterState(t, c, ts.URL, info.ID, serve.StateCompleted)
	c.Tick()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	page := body.String()

	for _, want := range []string{
		"cluster_w_w1_serve_queue_depth",
		"cluster_w_w2_serve_queue_depth",
		"cluster_total_serve_jobs_completed_total 1",
		"cluster_total_serve_queue_depth",
		"cluster_jobs_submitted_total 1",
		"cluster_jobs_stolen_total 0",
		"cluster_workers 2",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("federated metrics page missing %q", want)
		}
	}
}
