package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministicAndBalanced(t *testing.T) {
	r := NewRing([]string{"w1", "w2", "w3"})
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("c-%016x", i)
		o := r.Owner(key)
		if o != r.Owner(key) {
			t.Fatalf("Owner(%s) not deterministic", key)
		}
		counts[o]++
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		if counts[w] < 300 { // 10% of keys — a loose balance floor
			t.Errorf("worker %s owns only %d/3000 keys", w, counts[w])
		}
	}
}

func TestRingOrderedCoversAllWorkers(t *testing.T) {
	r := NewRing([]string{"w1", "w2", "w3", "w4"})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("c-%016x", i)
		ord := r.Ordered(key)
		if len(ord) != 4 {
			t.Fatalf("Ordered(%s) = %v, want all 4 workers", key, ord)
		}
		if ord[0] != r.Owner(key) {
			t.Fatalf("Ordered(%s)[0] = %s, Owner = %s", key, ord[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, w := range ord {
			if seen[w] {
				t.Fatalf("Ordered(%s) repeats %s", key, w)
			}
			seen[w] = true
		}
	}
}

// Removing one worker must not move keys between surviving workers —
// the consistency property that makes steals local.
func TestRingRemovalIsMinimal(t *testing.T) {
	before := NewRing([]string{"w1", "w2", "w3"})
	after := NewRing([]string{"w1", "w3"}) // w2 died
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("c-%016x", i)
		was := before.Owner(key)
		now := after.Owner(key)
		if was != "w2" && was != now {
			t.Fatalf("key %s moved %s -> %s though %s survived", key, was, now, was)
		}
		if was == "w2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("w2 owned nothing — distribution broken")
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil)
	if r.Owner("x") != "" || r.Ordered("x") != nil || r.Len() != 0 {
		t.Fatal("empty ring must route nowhere")
	}
}
