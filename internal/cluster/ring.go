package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Consistent-hash ring for job sharding. Each worker owns vnodesPerWorker
// virtual nodes placed by FNV-1a; a job id routes to the first vnode at or
// after its own hash. Adding or removing one worker therefore moves only
// ~1/N of the id space — jobs already assigned stay where they are (the
// coordinator routes at admission and at steal time, never re-shards
// retroactively), and the ring's preference order doubles as the failover
// order during a steal.

const vnodesPerWorker = 64

type vnode struct {
	hash   uint64
	worker string
}

// Ring is an immutable consistent-hash ring over a set of worker names.
// Build a new one on every membership change.
type Ring struct {
	vnodes []vnode
}

// hash64 is FNV-1a with a splitmix64 finalizer. Raw FNV-1a of short,
// similar strings ("w1#0", "w1#1", ...) clusters badly in the high bits,
// which a binary-searched ring position reads first; the avalanche mix
// spreads vnodes and keys uniformly over the full 64-bit circle.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRing builds a ring over the given worker names.
func NewRing(workers []string) *Ring {
	r := &Ring{vnodes: make([]vnode, 0, len(workers)*vnodesPerWorker)}
	for _, w := range workers {
		for i := 0; i < vnodesPerWorker; i++ {
			r.vnodes = append(r.vnodes, vnode{hash64(fmt.Sprintf("%s#%d", w, i)), w})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.worker < b.worker // total order even on hash collisions
	})
	return r
}

// Len returns the number of distinct workers on the ring.
func (r *Ring) Len() int { return len(r.vnodes) / vnodesPerWorker }

// Owner returns the worker owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].worker
}

// Ordered returns every distinct worker in ring order starting from key's
// owner — the routing preference list: Ordered(id)[0] is the shard owner,
// the rest are the failover sequence a steal walks.
func (r *Ring) Ordered(key string) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	seen := make(map[string]bool, r.Len())
	out := make([]string, 0, r.Len())
	for i := 0; i < len(r.vnodes) && len(out) < r.Len(); i++ {
		w := r.vnodes[(start+i)%len(r.vnodes)].worker
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
