package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/serve"
)

// Ensemble throughput through the cluster, single worker vs two: the
// numbers scripts/bench.sh records in BENCH_pr6.json. Each iteration
// admits `jobs` K-member ensemble jobs through the coordinator and waits
// for all of them; with two workers the jobs shard across daemons, so the
// ratio of the two benchmarks is the cluster scaling factor (bounded by
// the host actually having cores for both workers).
func benchEnsembleThroughput(b *testing.B, nWorkers int) {
	quiet := func(string, ...any) {}
	workers := make([]*testWorker, nWorkers)
	for i := range workers {
		workers[i] = newTestWorker(b, fmt.Sprintf("w%d", i+1),
			serve.Config{Workers: 1, QueueCap: 32, CheckpointEvery: 1000, Logf: quiet})
	}
	c, ts := newTestCluster(b, time.Hour, workers...)

	const (
		jobs  = 4
		k     = 4
		steps = 8
	)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ids := make([]string, 0, jobs)
		for j := 0; j < jobs; j++ {
			info := submitCluster(b, ts.URL, serve.JobSpec{TestCase: 5, Level: 2,
				Mode: "plan", Steps: steps, ReportEvery: steps,
				Ensemble: k, PerturbSeed: uint64(j + 1)})
			ids = append(ids, info.ID)
		}
		for _, id := range ids {
			waitClusterState(b, c, ts.URL, id, serve.StateCompleted)
		}
	}
	b.StopTimer()
	total := float64(b.N * jobs * k * steps)
	b.ReportMetric(total/b.Elapsed().Seconds(), "member-steps/s")
}

func BenchmarkClusterEnsemble1Worker(b *testing.B)  { benchEnsembleThroughput(b, 1) }
func BenchmarkClusterEnsemble2Workers(b *testing.B) { benchEnsembleThroughput(b, 2) }
