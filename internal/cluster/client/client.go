// Package client is the cluster's HTTP substrate: a small, reusable client
// wrapping net/http with context-aware retries, capped exponential backoff
// with jitter, and Retry-After honoring. The coordinator uses it for every
// worker call (submit, import, status, checkpoint mirror, metrics scrape);
// cmd/swserver uses it to register with a coordinator. It knows nothing
// about job semantics — callers decide what to send, the client decides
// when a failure is worth retrying and how long to wait.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Config tunes retry behavior. The zero value is usable: 3 retries, 100ms
// base delay doubling to a 5s cap, 25% jitter, http.DefaultClient.
type Config struct {
	HTTP       *http.Client
	MaxRetries int           // retries after the first attempt (<0 disables retrying)
	BaseDelay  time.Duration // first backoff delay
	MaxDelay   time.Duration // backoff cap (Retry-After may exceed it)
	Jitter     float64       // fraction of the delay randomized, in [0,1]

	// Sleep and Rand are injection points for tests. Sleep must return
	// early with ctx.Err() when the context ends; Rand returns a value in
	// [0,1).
	Sleep func(ctx context.Context, d time.Duration) error
	Rand  func() float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HTTP == nil {
		out.HTTP = http.DefaultClient
	}
	if out.MaxRetries == 0 {
		out.MaxRetries = 3
	}
	if out.MaxRetries < 0 {
		out.MaxRetries = 0
	}
	if out.BaseDelay <= 0 {
		out.BaseDelay = 100 * time.Millisecond
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 5 * time.Second
	}
	if out.Jitter == 0 {
		out.Jitter = 0.25
	}
	if out.Jitter < 0 || out.Jitter > 1 {
		out.Jitter = 0.25
	}
	if out.Sleep == nil {
		out.Sleep = sleepCtx
	}
	if out.Rand == nil {
		out.Rand = rand.Float64
	}
	return out
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StatusError is a non-2xx response that was NOT retried away: either a
// non-retryable status, or a retryable one that outlived the retry budget.
// Body carries the (truncated) response body — the serve API puts its
// {"error": ...} JSON there.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("http status %d", e.Code)
	}
	return fmt.Sprintf("http status %d: %s", e.Code, e.Body)
}

// IsStatus reports whether err is a StatusError with the given code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// Client issues requests against one base URL with the configured retry
// policy. Safe for concurrent use.
type Client struct {
	base string
	cfg  Config
}

// New builds a client for base (e.g. "http://127.0.0.1:8080"); a trailing
// slash is trimmed so paths always start with "/".
func New(base string, cfg Config) *Client {
	return &Client{base: strings.TrimRight(base, "/"), cfg: cfg.withDefaults()}
}

// Base returns the base URL the client targets.
func (c *Client) Base() string { return c.base }

// retryable reports whether a response status is worth another attempt:
// admission pressure (429), a draining or unavailable server (503), or a
// transient gateway failure (502, 504).
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header (delta-seconds form; the HTTP-date
// form is ignored — the serve API only emits seconds). Returns 0 when
// absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// backoff computes the jittered exponential delay for attempt i (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseDelay << uint(attempt)
	if d > c.cfg.MaxDelay || d <= 0 { // <=0 guards shift overflow
		d = c.cfg.MaxDelay
	}
	if j := c.cfg.Jitter; j > 0 {
		// Spread over [1-j, 1+j) so synchronized clients desynchronize.
		d = time.Duration(float64(d) * (1 - j + 2*j*c.cfg.Rand()))
	}
	return d
}

// BodyFunc produces a fresh request body (and its content type) for each
// attempt — a plain io.Reader would be consumed by the first try.
type BodyFunc func() (io.Reader, string, error)

// NoBody is the BodyFunc for body-less requests.
func NoBody() (io.Reader, string, error) { return nil, "", nil }

// JSONBody returns a BodyFunc marshaling v once and replaying the bytes on
// every attempt.
func JSONBody(v any) BodyFunc {
	data, err := json.Marshal(v)
	return func() (io.Reader, string, error) {
		if err != nil {
			return nil, "", fmt.Errorf("encoding request body: %w", err)
		}
		return bytes.NewReader(data), "application/json", nil
	}
}

// BytesBody replays a fixed byte slice with the given content type.
func BytesBody(data []byte, contentType string) BodyFunc {
	return func() (io.Reader, string, error) {
		return bytes.NewReader(data), contentType, nil
	}
}

// Do issues method path with the retry policy and decodes a 2xx JSON
// response into out (out == nil skips decoding). Non-2xx terminal
// responses become *StatusError. The context bounds ALL attempts,
// including backoff sleeps.
func (c *Client) Do(ctx context.Context, method, path string, body BodyFunc, out any) error {
	if body == nil {
		body = NoBody
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		rd, contentType, err := body()
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}

		resp, err := c.cfg.HTTP.Do(req)
		var wait time.Duration
		switch {
		case err != nil:
			// Transport-level failure (refused, reset, DNS): retryable
			// unless the context itself ended.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			wait = c.backoff(attempt)
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			defer resp.Body.Close()
			if out == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				return nil
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return fmt.Errorf("decoding %s %s response: %w", method, path, err)
			}
			return nil
		default:
			se := &StatusError{Code: resp.StatusCode, Body: readBodySnippet(resp.Body)}
			resp.Body.Close()
			if !retryable(resp.StatusCode) {
				return se
			}
			lastErr = se
			wait = c.backoff(attempt)
			if ra := retryAfter(resp); ra > wait {
				wait = ra
			}
		}

		if attempt >= c.cfg.MaxRetries {
			return fmt.Errorf("after %d attempts: %w", attempt+1, lastErr)
		}
		if err := c.cfg.Sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// GetJSON fetches path and decodes the JSON response into out.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	return c.Do(ctx, http.MethodGet, path, nil, out)
}

// PostJSON posts in as JSON and decodes the response into out (either may
// be nil).
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) error {
	body := NoBody
	if in != nil {
		body = JSONBody(in)
	}
	return c.Do(ctx, http.MethodPost, path, body, out)
}

// GetBytes fetches path and returns the raw 2xx body — checkpoint mirrors
// and metrics scrapes, where the payload is not JSON.
func (c *Client) GetBytes(ctx context.Context, path string) ([]byte, error) {
	var buf []byte
	err := c.doRaw(ctx, path, func(r io.Reader) error {
		var err error
		buf, err = io.ReadAll(r)
		return err
	})
	return buf, err
}

// doRaw is Do for non-JSON GETs: sink consumes the 2xx body.
func (c *Client) doRaw(ctx context.Context, path string, sink func(io.Reader) error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.cfg.HTTP.Do(req)
		var wait time.Duration
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			wait = c.backoff(attempt)
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			err := sink(resp.Body)
			resp.Body.Close()
			return err
		default:
			se := &StatusError{Code: resp.StatusCode, Body: readBodySnippet(resp.Body)}
			resp.Body.Close()
			if !retryable(resp.StatusCode) {
				return se
			}
			lastErr = se
			wait = c.backoff(attempt)
			if ra := retryAfter(resp); ra > wait {
				wait = ra
			}
		}
		if attempt >= c.cfg.MaxRetries {
			return fmt.Errorf("after %d attempts: %w", attempt+1, lastErr)
		}
		if err := c.cfg.Sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// readBodySnippet drains up to 4KiB of an error body for diagnostics.
func readBodySnippet(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4<<10))
	return strings.TrimSpace(string(data))
}
