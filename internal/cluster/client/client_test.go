package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testClient builds a client with instant, recorded sleeps and a fixed
// mid-range Rand, so backoff arithmetic is deterministic and observable.
func testClient(base string, retries int, sleeps *[]time.Duration) *Client {
	return New(base, Config{
		MaxRetries: retries,
		BaseDelay:  100 * time.Millisecond,
		MaxDelay:   time.Second,
		Jitter:     0.5,
		Rand:       func() float64 { return 0.5 }, // jitter factor exactly 1.0
		Sleep: func(ctx context.Context, d time.Duration) error {
			*sleeps = append(*sleeps, d)
			return ctx.Err()
		},
	})
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok": true}`))
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := testClient(ts.URL, 3, &sleeps)
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.GetJSON(context.Background(), "/x", &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || calls.Load() != 3 {
		t.Fatalf("ok=%v calls=%d, want success on 3rd call", out.OK, calls.Load())
	}
	// Exponential: 100ms then 200ms (Rand pinned to the identity factor).
	if len(sleeps) != 2 || sleeps[0] != 100*time.Millisecond || sleeps[1] != 200*time.Millisecond {
		t.Fatalf("sleeps = %v, want [100ms 200ms]", sleeps)
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := testClient(ts.URL, 3, &sleeps)
	if err := c.PostJSON(context.Background(), "/jobs", map[string]int{"steps": 1}, nil); err != nil {
		t.Fatal(err)
	}
	// Retry-After (2s) dominates the 100ms backoff.
	if len(sleeps) != 1 || sleeps[0] != 2*time.Second {
		t.Fatalf("sleeps = %v, want [2s]", sleeps)
	}
}

func TestDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := testClient(ts.URL, 3, &sleeps)
	err := c.GetJSON(context.Background(), "/x", nil)
	if !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if calls.Load() != 1 || len(sleeps) != 0 {
		t.Fatalf("calls=%d sleeps=%v, want exactly one attempt", calls.Load(), sleeps)
	}
	if !strings.Contains(err.Error(), "bad spec") {
		t.Fatalf("error lost the body: %v", err)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := testClient(ts.URL, 2, &sleeps)
	err := c.GetJSON(context.Background(), "/x", nil)
	if !IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("err = %v, want wrapped StatusError 503", err)
	}
	if calls.Load() != 3 { // 1 + MaxRetries
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestRetriesConnectionRefused(t *testing.T) {
	// A server that closes immediately: its port is (very likely) dead.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead := ts.URL
	ts.Close()

	var sleeps []time.Duration
	c := testClient(dead, 2, &sleeps)
	err := c.GetJSON(context.Background(), "/x", nil)
	if err == nil {
		t.Fatal("expected error against closed server")
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 backoffs before giving up", sleeps)
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, Config{
		MaxRetries: 10,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the world ends mid-backoff
			return ctx.Err()
		},
	})
	err := c.GetJSON(ctx, "/x", nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no attempts after cancel)", calls.Load())
	}
}

func TestGetBytesAndBackoffCap(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 5 {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("raw-bytes"))
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := testClient(ts.URL, 6, &sleeps)
	data, err := c.GetBytes(context.Background(), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "raw-bytes" {
		t.Fatalf("body = %q", data)
	}
	// 100, 200, 400, 800, then capped at 1000ms.
	want := []time.Duration{100, 200, 400, 800, 1000}
	for i, w := range want {
		if sleeps[i] != w*time.Millisecond {
			t.Fatalf("sleeps = %v, want caps at 1s (index %d)", sleeps, i)
		}
	}
}
