// Package cluster shards swserver daemons into one logical service: a
// coordinator owning a consistent-hash ring of health-checked workers,
// proxying the job API, mirroring worker checkpoints, and stealing work —
// checkpoint included — from workers that die.
//
// This is the paper's hybrid work-partitioning pattern lifted one level
// up: where internal/sw partitions cells across threads of one machine and
// the facade splits a mesh across host and device, the coordinator
// partitions whole jobs across machines by hashing job ids onto the ring
// (internal/cluster/ring.go). The decomposition is static per job — a job
// runs where its id lands — but membership is dynamic: the registry
// health-checks every worker each heartbeat, evicts those silent past the
// deadline, and re-admits their jobs on survivors from the last mirrored
// checkpoint, the distributed analogue of the repo's kill -9 resume
// guarantee (the trajectory after a steal is ULP-identical to an
// uninterrupted run, enforced by internal/conform).
//
// An ensemble job (JobSpec.Ensemble = K) is the batch-admission path: all
// K members ride one job id to one worker, sharing that worker's mesh and
// compiled plan, and migrate together in one ensemble checkpoint.
package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"repro/internal/cluster/client"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Worker is a registered daemon: a routable name and the base URL of its
// serve API.
type Worker struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

var workerNamePattern = regexp.MustCompile(`^[a-z][a-z0-9_-]{0,31}$`)

// Config configures a Coordinator.
type Config struct {
	// SpoolDir holds checkpoint mirrors and durable job assignments.
	SpoolDir string

	// HeartbeatEvery is the monitor cadence: health probes, status
	// refresh, checkpoint mirroring. Default 1s.
	HeartbeatEvery time.Duration

	// EvictAfter is the silence deadline: a worker whose last successful
	// probe (or registration) is older than this is evicted and its jobs
	// are stolen. Default 3×HeartbeatEvery.
	EvictAfter time.Duration

	// Client tunes the retrying HTTP client used for worker calls.
	Client client.Config

	// Registry receives coordinator metrics (nil-safe).
	Registry *telemetry.Registry

	// Logf receives operational logs (default: discard).
	Logf func(format string, args ...any)
}

// workerState is one registry entry.
type workerState struct {
	info     Worker
	cl       *client.Client
	lastSeen time.Time
	draining bool
}

// cjob is the coordinator's record of one job: its current assignment and
// the last status the coordinator saw. `worker == ""` means orphaned —
// the assignee died and the next monitor tick re-places it.
type cjob struct {
	id           string
	worker       string
	last         serve.JobStatus
	steals       int
	mirroredStep int // StepsDone at the last checkpoint mirror (-1: none)
}

// Info is the coordinator's view of a job, returned by the list and
// status APIs.
type Info struct {
	serve.JobStatus
	Worker string `json:"worker"`
	Steals int    `json:"steals"`
}

// Coordinator is the cluster head: worker registry, hash ring, job table,
// monitor loop.
type Coordinator struct {
	cfg  Config
	http *http.Client

	mu      sync.Mutex
	workers map[string]*workerState
	ring    *Ring
	jobs    map[string]*cjob

	stopCh chan struct{}
	wg     sync.WaitGroup

	mSubmitted *telemetry.Counter
	mStolen    *telemetry.Counter
	mEvicted   *telemetry.Counter
	gWorkers   *telemetry.Gauge
	gJobs      *telemetry.Gauge
	gOrphans   *telemetry.Gauge
}

// New builds a coordinator and starts its monitor loop.
func New(cfg Config) (*Coordinator, error) {
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("cluster: SpoolDir must be set")
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: spool: %w", err)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = 3 * cfg.HeartbeatEvery
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	reg := cfg.Registry
	c := &Coordinator{
		cfg:        cfg,
		http:       cfg.Client.HTTP,
		workers:    map[string]*workerState{},
		ring:       NewRing(nil),
		jobs:       map[string]*cjob{},
		stopCh:     make(chan struct{}),
		mSubmitted: reg.Counter("cluster_jobs_submitted_total"),
		mStolen:    reg.Counter("cluster_jobs_stolen_total"),
		mEvicted:   reg.Counter("cluster_workers_evicted_total"),
		gWorkers:   reg.Gauge("cluster_workers"),
		gJobs:      reg.Gauge("cluster_jobs"),
		gOrphans:   reg.Gauge("cluster_jobs_orphaned"),
	}
	if c.http == nil {
		c.http = http.DefaultClient
	}
	c.wg.Add(1)
	go c.monitorLoop()
	return c, nil
}

// Close stops the monitor loop. Registered workers are left running.
func (c *Coordinator) Close() {
	close(c.stopCh)
	c.wg.Wait()
}

// newJobID mints a coordinator job id: "c-" + 16 hex chars. The c- prefix
// keeps coordinator-minted ids disjoint from worker-minted j- ids, and the
// id is the ring key, stable across steals.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return "c-" + hex.EncodeToString(b[:])
}

// Register adds (or refreshes) a worker. Re-registering an existing name
// with the same URL is a heartbeat; with a different URL it rebinds the
// name (the old instance is presumed dead).
func (c *Coordinator) Register(w Worker) error {
	if !workerNamePattern.MatchString(w.Name) {
		return fmt.Errorf("cluster: invalid worker name %q", w.Name)
	}
	if w.URL == "" {
		return fmt.Errorf("cluster: worker %s: URL must be set", w.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[w.Name]
	if ok && ws.info.URL == w.URL {
		ws.lastSeen = time.Now()
		return nil
	}
	c.workers[w.Name] = &workerState{
		info:     w,
		cl:       client.New(w.URL, c.cfg.Client),
		lastSeen: time.Now(),
	}
	c.rebuildRingLocked()
	c.cfg.Logf("cluster: registered worker %s at %s (%d workers)", w.Name, w.URL, len(c.workers))
	return nil
}

func (c *Coordinator) rebuildRingLocked() {
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	c.ring = NewRing(names)
	c.gWorkers.Set(float64(len(c.workers)))
}

// WorkerInfo is a registry entry with its health, for the workers API.
type WorkerInfo struct {
	Worker
	Draining     bool    `json:"draining"`
	LastSeenSecs float64 `json:"last_seen_secs_ago"`
	Jobs         int     `json:"jobs"`
}

// Workers lists the registry.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	perWorker := map[string]int{}
	for _, j := range c.jobs {
		if !j.last.State.Terminal() {
			perWorker[j.worker]++
		}
	}
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, name := range c.ring.Ordered("") {
		ws := c.workers[name]
		out = append(out, WorkerInfo{
			Worker:       ws.info,
			Draining:     ws.draining,
			LastSeenSecs: time.Since(ws.lastSeen).Seconds(),
			Jobs:         perWorker[name],
		})
	}
	return out
}

// candidatesLocked returns the routing preference order for a job id:
// ring order, draining workers excluded, `exclude` excluded.
func (c *Coordinator) candidatesLocked(id string, exclude string) []*workerState {
	var out []*workerState
	for _, name := range c.ring.Ordered(id) {
		ws := c.workers[name]
		if name == exclude || ws == nil || ws.draining {
			continue
		}
		out = append(out, ws)
	}
	return out
}

// Jobs lists the coordinator's job table (sorted by id).
func (c *Coordinator) Jobs() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, len(c.jobs))
	for _, j := range c.jobs {
		out = append(out, Info{JobStatus: j.last, Worker: j.worker, Steals: j.steals})
	}
	sortInfos(out)
	return out
}

func sortInfos(infos []Info) {
	for i := 1; i < len(infos); i++ {
		for k := i; k > 0 && infos[k].ID < infos[k-1].ID; k-- {
			infos[k], infos[k-1] = infos[k-1], infos[k]
		}
	}
}

// mirror file paths: the coordinator's durable copy of a job's last
// checkpoint and the status that accompanied it.
func (c *Coordinator) mirrorCkptPath(id string) string {
	return filepath.Join(c.cfg.SpoolDir, id+".ckpt")
}
func (c *Coordinator) mirrorStatusPath(id string) string {
	return filepath.Join(c.cfg.SpoolDir, id+".status.json")
}
func (c *Coordinator) assignmentPath(id string) string {
	return filepath.Join(c.cfg.SpoolDir, id+".assign.json")
}

// persistAssignment records (id → worker, steals, status) durably, so a
// restarted coordinator can be pointed back at its spool for forensics.
func (c *Coordinator) persistAssignment(j *cjob) {
	_ = writeJSONAtomic(c.assignmentPath(j.id), Info{
		JobStatus: j.last, Worker: j.worker, Steals: j.steals,
	})
}

func writeJSONAtomic(path string, v any) error {
	data, err := jsonMarshalIndent(v)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// probeCtx bounds one worker call inside a monitor tick.
func (c *Coordinator) probeCtx() (context.Context, context.CancelFunc) {
	d := 2 * time.Second
	if c.cfg.HeartbeatEvery > d {
		d = c.cfg.HeartbeatEvery
	}
	return context.WithTimeout(context.Background(), d)
}
