package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/cluster/client"
	"repro/internal/serve"
)

// Handler returns the coordinator's HTTP API — deliberately the same job
// surface as one swserver, so a client needs no cluster awareness:
//
//	POST /jobs                  submit (sharded onto a worker)
//	GET  /jobs                  coordinator job table (+worker, +steals)
//	GET  /jobs/{id}             status (live, or cached mid-failover)
//	GET  /jobs/{id}/events      NDJSON event stream proxied from the worker
//	GET  /jobs/{id}/result      final result
//	GET  /jobs/{id}/checkpoint  latest checkpoint (worker, else mirror)
//	POST /jobs/{id}/cancel      cancel
//	POST /cluster/workers       register a worker {"name","url"}
//	GET  /cluster/workers       registry with health
//	GET  /healthz               coordinator liveness + worker counts
//	GET  /metrics               federated metrics (workers + coordinator)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs", c.handleList)
	mux.HandleFunc("GET /jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /jobs/{id}/checkpoint", c.handleCheckpoint)
	mux.HandleFunc("POST /jobs/{id}/cancel", c.handleCancel)
	mux.HandleFunc("POST /cluster/workers", c.handleRegister)
	mux.HandleFunc("GET /cluster/workers", c.handleWorkers)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errCode maps coordinator and proxied errors onto HTTP statuses. A
// *client.StatusError passes the worker's status through, so a 409
// not-completed-yet or a 429 queue-full looks the same via the
// coordinator as it would directly.
func errCode(err error) int {
	var se *client.StatusError
	switch {
	case errors.As(err, &se):
		return se.Code
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNoWorkers), errors.Is(err, ErrUnroutable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

const maxSpecBytes = 1 << 20

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec serve.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	info, err := c.Submit(r.Context(), spec)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	w.Header().Set("Location", "/jobs/"+info.ID)
	writeJSON(w, http.StatusAccepted, info)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Jobs())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	info, err := c.Status(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := c.Result(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	data, err := c.Checkpoint(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := c.Cancel(r.Context(), id); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "action": "cancel"})
}

// handleEvents proxies the worker's NDJSON event stream byte-for-byte. If
// the worker dies mid-stream the proxy ends; after the steal completes a
// re-request follows the job on its new worker (replay included — the
// survivor republishes from its own event history).
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, ws, err := c.job(id)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	if ws == nil {
		writeErr(w, http.StatusServiceUnavailable, ErrUnroutable)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		ws.info.URL+"/jobs/"+id+"/events?"+r.URL.RawQuery, nil)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := c.http.Do(req)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var wk Worker
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes)).Decode(&wk); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding worker: %w", err))
		return
	}
	if err := c.Register(wk); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, wk)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Workers())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	workers, draining := len(c.workers), 0
	for _, ws := range c.workers {
		if ws.draining {
			draining++
		}
	}
	jobs := len(c.jobs)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"workers":  workers,
		"draining": draining,
		"jobs":     jobs,
	})
}
