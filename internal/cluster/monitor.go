package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"os"
	"time"

	"repro/internal/cluster/client"
	"repro/internal/serve"
)

func jsonMarshalIndent(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// monitorLoop is the coordinator heartbeat: probe every worker, evict the
// silent, refresh job statuses, mirror fresh checkpoints, re-place
// orphaned jobs.
func (c *Coordinator) monitorLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.tick()
		}
	}
}

// tick runs one monitor round. Exported pieces of the protocol (probe,
// evict, steal) hang off it so a test can drive time explicitly by
// calling Tick.
func (c *Coordinator) tick() {
	c.probeWorkers()
	c.evictSilent()
	c.refreshAndMirror()
	c.placeOrphans()
	c.updateGauges()
}

// Tick runs one monitor round synchronously (test hook: deterministic
// time-stepping without waiting out the heartbeat ticker).
func (c *Coordinator) Tick() { c.tick() }

// healthzBody is the slice of serve's /healthz response the coordinator
// reads.
type healthzBody struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
}

// probeWorkers health-checks every registered worker. A successful probe
// refreshes lastSeen; a draining report makes the worker unroutable for
// NEW work while its running jobs continue.
func (c *Coordinator) probeWorkers() {
	c.mu.Lock()
	snapshot := make([]*workerState, 0, len(c.workers))
	for _, ws := range c.workers {
		snapshot = append(snapshot, ws)
	}
	c.mu.Unlock()

	for _, ws := range snapshot {
		ctx, cancel := c.probeCtx()
		var h healthzBody
		// One shot, no retries: the eviction deadline is the retry policy.
		probe := client.New(ws.info.URL, client.Config{HTTP: c.http, MaxRetries: -1})
		err := probe.GetJSON(ctx, "/healthz", &h)
		cancel()
		c.mu.Lock()
		if err == nil {
			ws.lastSeen = time.Now()
			ws.draining = h.Status == "draining" || h.Draining
		}
		c.mu.Unlock()
	}
}

// evictSilent removes workers silent past the deadline and orphans their
// jobs for the steal pass.
func (c *Coordinator) evictSilent() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, ws := range c.workers {
		if time.Since(ws.lastSeen) <= c.cfg.EvictAfter {
			continue
		}
		delete(c.workers, name)
		c.rebuildRingLocked()
		c.mEvicted.Inc()
		orphaned := 0
		for _, j := range c.jobs {
			if j.worker == name && !j.last.State.Terminal() {
				j.worker = ""
				orphaned++
			}
		}
		c.cfg.Logf("cluster: evicted worker %s (silent %.1fs, %d jobs orphaned)",
			name, time.Since(ws.lastSeen).Seconds(), orphaned)
	}
}

// refreshAndMirror polls each assigned, non-terminal job: status from the
// owning worker, and — whenever the durable trajectory advanced — a fresh
// checkpoint mirror. The mirror is what makes work stealing possible at
// all: when a worker dies by SIGKILL its HTTP surface dies with it, so
// the checkpoint a steal resumes from must already be on the
// coordinator's disk.
func (c *Coordinator) refreshAndMirror() {
	c.mu.Lock()
	type item struct {
		j  *cjob
		ws *workerState
	}
	var items []item
	for _, j := range c.jobs {
		if j.worker == "" || j.last.State.Terminal() {
			continue
		}
		if ws := c.workers[j.worker]; ws != nil {
			items = append(items, item{j, ws})
		}
	}
	c.mu.Unlock()

	for _, it := range items {
		ctx, cancel := c.probeCtx()
		var st serve.JobStatus
		err := it.ws.cl.GetJSON(ctx, "/jobs/"+it.j.id, &st)
		if err != nil {
			cancel()
			continue // silence is handled by eviction, not here
		}
		c.mu.Lock()
		it.j.last = st
		needMirror := !st.State.Terminal() && it.j.mirroredStep < st.StepsDone
		c.mu.Unlock()

		if needMirror {
			if ckpt, err := it.ws.cl.GetBytes(ctx, "/jobs/"+it.j.id+"/checkpoint"); err == nil {
				if err := os.WriteFile(c.mirrorCkptPath(it.j.id)+".tmp", ckpt, 0o644); err == nil {
					if os.Rename(c.mirrorCkptPath(it.j.id)+".tmp", c.mirrorCkptPath(it.j.id)) == nil {
						_ = writeJSONAtomic(c.mirrorStatusPath(it.j.id), st)
						c.mu.Lock()
						it.j.mirroredStep = st.StepsDone
						c.mu.Unlock()
					}
				}
			}
		}
		c.mu.Lock()
		c.persistAssignment(it.j)
		c.mu.Unlock()
		cancel()
	}
}

// placeOrphans re-admits every orphaned job on a survivor — the steal.
// The status sent is the mirrored one when a checkpoint mirror exists
// (status and checkpoint must describe the same trajectory point);
// otherwise the job restarts from step 0, which is still deterministic
// (perturbations are pure functions of the spec).
func (c *Coordinator) placeOrphans() {
	c.mu.Lock()
	var orphans []*cjob
	for _, j := range c.jobs {
		if j.worker == "" && !j.last.State.Terminal() {
			orphans = append(orphans, j)
		}
	}
	c.mu.Unlock()

	for _, j := range orphans {
		c.stealJob(j)
	}
}

// stealJob moves one orphaned job onto the first willing survivor.
func (c *Coordinator) stealJob(j *cjob) {
	st := j.last // coordinator's last sight of the job
	var ckpt []byte
	if data, err := os.ReadFile(c.mirrorCkptPath(j.id)); err == nil {
		ckpt = data
		var mst serve.JobStatus
		if readJSONFile(c.mirrorStatusPath(j.id), &mst) == nil && mst.ID == j.id {
			st = mst // the status that matches the mirrored checkpoint
		}
	} else {
		// No mirror: the job restarts from its initial condition.
		st.StepsDone = 0
		st.SimTime = 0
	}
	st.State = serve.StateQueued
	st.Resumes++
	st.Error = ""

	c.mu.Lock()
	cands := c.candidatesLocked(j.id, "")
	c.mu.Unlock()

	for _, ws := range cands {
		ctx, cancel := c.probeCtx()
		var out serve.JobStatus
		err := ws.cl.Do(ctx, http.MethodPost, "/jobs/import", importBody(st, ckpt), &out)
		cancel()
		if err != nil && !client.IsStatus(err, http.StatusConflict) {
			continue // next survivor
		}
		// 409 means a previous attempt landed and we lost the response —
		// the job is there; adopt the assignment either way.
		c.mu.Lock()
		j.worker = ws.info.Name
		j.steals++
		j.last = st
		j.mirroredStep = st.StepsDone - 1 // force a fresh mirror next tick
		c.persistAssignment(j)
		c.mu.Unlock()
		c.mStolen.Inc()
		c.cfg.Logf("cluster: stole %s onto %s (resume from step %d, checkpoint=%v)",
			j.id, ws.info.Name, st.StepsDone, ckpt != nil)
		return
	}
	c.cfg.Logf("cluster: %s orphaned, no survivor accepted it yet", j.id)
}

// importBody builds the multipart /jobs/import payload — rebuilt per
// retry attempt, as client.BodyFunc requires.
func importBody(st serve.JobStatus, ckpt []byte) client.BodyFunc {
	return func() (io.Reader, string, error) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		stJSON, err := json.Marshal(st)
		if err != nil {
			return nil, "", err
		}
		if err := mw.WriteField("status", string(stJSON)); err != nil {
			return nil, "", err
		}
		if ckpt != nil {
			fw, err := mw.CreateFormFile("checkpoint", "ckpt.bin")
			if err != nil {
				return nil, "", err
			}
			if _, err := fw.Write(ckpt); err != nil {
				return nil, "", err
			}
		}
		if err := mw.Close(); err != nil {
			return nil, "", err
		}
		return &buf, mw.FormDataContentType(), nil
	}
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func (c *Coordinator) updateGauges() {
	c.mu.Lock()
	defer c.mu.Unlock()
	orphans := 0
	for _, j := range c.jobs {
		if j.worker == "" && !j.last.State.Terminal() {
			orphans++
		}
	}
	c.gJobs.Set(float64(len(c.jobs)))
	c.gOrphans.Set(float64(orphans))
	c.gWorkers.Set(float64(len(c.workers)))
}
