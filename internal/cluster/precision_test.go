package cluster

import (
	"testing"
	"time"

	"repro/internal/serve"
)

// TestClusterFloat32Job routes a float32 fast-mode job spec through the
// coordinator to a worker and completes it: the precision field is part of
// the cluster submission surface, not just the single-node one, and the
// assigned worker's status must retain it (a steal re-runs from the spec,
// so a dropped field would silently change the arithmetic).
func TestClusterFloat32Job(t *testing.T) {
	w := newTestWorker(t, "w1", serve.Config{})
	c, ts := newTestCluster(t, time.Hour, w)

	info := submitCluster(t, ts.URL, serve.JobSpec{TestCase: 5, Level: 2,
		Mode: "plan", Precision: "float32", Steps: 6})
	done := waitClusterState(t, c, ts.URL, info.ID, serve.StateCompleted)
	if done.Spec.Precision != "float32" {
		t.Fatalf("completed cluster job lost its precision: %+v", done.Spec)
	}
}
