package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// Metrics federation: the coordinator's /metrics page is the single
// scrape target for the whole cluster. Each request scrapes every live
// worker's /metrics concurrently, parses the text exposition
// (telemetry.ParseProm), and re-emits
//
//	cluster_w_<worker>_<metric>   every counter/gauge, per worker
//	cluster_total_<metric>        the sum across workers
//
// followed by the coordinator's own registry (cluster_jobs_submitted_total,
// cluster_jobs_stolen_total, worker/job/orphan gauges, ...). Histogram
// buckets are not federated — they are cumulative per worker and summing
// them is meaningless without labels, which internal/telemetry forgoes.

// scrapeWorkers fetches and parses every live worker's metrics page.
func (c *Coordinator) scrapeWorkers() map[string][]telemetry.PromSample {
	c.mu.Lock()
	snapshot := make(map[string]*workerState, len(c.workers))
	for name, ws := range c.workers {
		snapshot[name] = ws
	}
	c.mu.Unlock()

	out := make(map[string][]telemetry.PromSample, len(snapshot))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for name, ws := range snapshot {
		wg.Add(1)
		go func(name string, ws *workerState) {
			defer wg.Done()
			ctx, cancel := c.probeCtx()
			defer cancel()
			data, err := ws.cl.GetBytes(ctx, "/metrics")
			if err != nil {
				return // a dead worker simply drops out of the page
			}
			samples, err := telemetry.ParseProm(bytes.NewReader(data))
			if err != nil {
				c.cfg.Logf("cluster: parsing %s metrics: %v", name, err)
				return
			}
			mu.Lock()
			out[name] = samples
			mu.Unlock()
		}(name, ws)
	}
	wg.Wait()
	return out
}

// metricSafe maps a worker name onto the Prometheus name alphabet.
func metricSafe(name string) string {
	return strings.ReplaceAll(name, "-", "_")
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	scraped := c.scrapeWorkers()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	workers := make([]string, 0, len(scraped))
	for name := range scraped {
		workers = append(workers, name)
	}
	sort.Strings(workers)

	totals := map[string]telemetry.PromSample{}
	var totalOrder []string
	for _, name := range workers {
		prefix := "cluster_w_" + metricSafe(name) + "_"
		for _, s := range scraped[name] {
			if s.Type != "counter" && s.Type != "gauge" {
				continue
			}
			n := prefix + s.Name
			fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", n, s.Type, n, s.Value)
			tn := "cluster_total_" + s.Name
			if _, ok := totals[tn]; !ok {
				totalOrder = append(totalOrder, tn)
				totals[tn] = telemetry.PromSample{Name: tn, Type: s.Type}
			}
			t := totals[tn]
			t.Value += s.Value
			totals[tn] = t
		}
	}
	sort.Strings(totalOrder)
	for _, tn := range totalOrder {
		t := totals[tn]
		fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", tn, t.Type, tn, t.Value)
	}

	// Coordinator-own metrics close the page.
	_ = c.cfg.Registry.WritePrometheus(w)
}
