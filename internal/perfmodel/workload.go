package perfmodel

import "repro/internal/pattern"

// PointKind selects which mesh count a pattern's output is proportional to.
type PointKind uint8

// Output element counts of a pattern are proportional to one of these.
const (
	PerCell PointKind = iota
	PerEdge
	PerVertex
)

// WorkSpec is the per-output-element workload of one pattern instance, plus
// whether its ORIGINAL (pre-refactoring) loop shape is an irregular scatter
// reduction (paper Algorithm 2).
type WorkSpec struct {
	Per     PointKind
	Flops   float64 // floating-point operations per output element
	Bytes   float64 // bytes moved per output element (incl. index loads)
	Scatter bool
}

// WorkTable is the single source of truth for pattern workloads, keyed by
// Table I instance ID. The sw solver attaches these to its executable
// patterns; the platform model uses them directly for paper-scale meshes
// that are too large to build in tests.
var WorkTable = map[string]WorkSpec{
	// compute_solve_diagnostics
	"C1": {Per: PerCell, Flops: 30, Bytes: 170},
	"D1": {Per: PerEdge, Flops: 2, Bytes: 48},
	"D2": {Per: PerEdge, Flops: 9, Bytes: 80},
	"E":  {Per: PerVertex, Flops: 7, Bytes: 100, Scatter: true},
	"A2": {Per: PerCell, Flops: 13, Bytes: 150, Scatter: true},
	"A3": {Per: PerCell, Flops: 25, Bytes: 170, Scatter: true},
	"F":  {Per: PerEdge, Flops: 20, Bytes: 250},
	"G":  {Per: PerVertex, Flops: 10, Bytes: 120},
	"C2": {Per: PerCell, Flops: 12, Bytes: 140, Scatter: true},
	"H2": {Per: PerCell, Flops: 12, Bytes: 140, Scatter: true},
	"H1": {Per: PerEdge, Flops: 3, Bytes: 60},
	"B2": {Per: PerEdge, Flops: 14, Bytes: 150},
	// compute_tend
	"A1": {Per: PerCell, Flops: 19, Bytes: 170, Scatter: true},
	"B1": {Per: PerEdge, Flops: 62, Bytes: 520},
	// enforce_boundary_edge
	"X1": {Per: PerEdge, Flops: 2, Bytes: 32},
	// compute_next_substep_state
	"X2": {Per: PerCell, Flops: 2, Bytes: 32},
	"X3": {Per: PerEdge, Flops: 2, Bytes: 32},
	// accumulative_update
	"X4": {Per: PerCell, Flops: 2, Bytes: 32},
	"X5": {Per: PerEdge, Flops: 2, Bytes: 32},
	// mpas_reconstruct
	"A4": {Per: PerCell, Flops: 42, Bytes: 300, Scatter: true},
	"X6": {Per: PerCell, Flops: 12, Bytes: 120},
}

// MeshCounts are the point counts a workload is scaled by.
type MeshCounts struct {
	Cells, Edges, Vertices int
}

// CountsForCells derives edge and vertex counts from the cell count using
// the closed sphere identities (E = 3C-6, V = 2C-4).
func CountsForCells(ncells int) MeshCounts {
	return MeshCounts{Cells: ncells, Edges: 3*ncells - 6, Vertices: 2*ncells - 4}
}

// PatternWork is one pattern instance's total workload.
type PatternWork struct {
	Inst    pattern.Instance
	N       int
	Flops   float64 // per element
	Bytes   float64 // per element
	Scatter bool
}

// Elements returns the output count for kind k under counts mc.
func (mc MeshCounts) Elements(k PointKind) int {
	switch k {
	case PerCell:
		return mc.Cells
	case PerEdge:
		return mc.Edges
	default:
		return mc.Vertices
	}
}

// Workload expands Table I (optionally with the optional instances) into
// per-pattern workloads for a mesh of the given counts.
func Workload(mc MeshCounts, includeOptional bool) []PatternWork {
	var out []PatternWork
	for _, ins := range pattern.Table1 {
		if ins.Optional && !includeOptional {
			continue
		}
		spec, ok := WorkTable[ins.ID]
		if !ok {
			continue
		}
		out = append(out, PatternWork{
			Inst:    ins,
			N:       mc.Elements(spec.Per),
			Flops:   spec.Flops,
			Bytes:   spec.Bytes,
			Scatter: spec.Scatter,
		})
	}
	return out
}

// StageKernels lists the kernels executed in RK substage k (0..3),
// following Algorithm 1.
func StageKernels(stage int) []string {
	if stage < 3 {
		return []string{
			pattern.KernelComputeTend,
			pattern.KernelEnforceBoundaryEdge,
			pattern.KernelNextSubstepState,
			pattern.KernelSolveDiagnostics,
			pattern.KernelAccumulativeUpdate,
		}
	}
	return []string{
		pattern.KernelComputeTend,
		pattern.KernelEnforceBoundaryEdge,
		pattern.KernelAccumulativeUpdate,
		pattern.KernelSolveDiagnostics,
		pattern.KernelReconstruct,
	}
}

// StepTime returns the modeled time of one full RK-4 step of the whole
// model executed entirely on device d under optimizations opt — the
// quantity behind Figure 6's single-device ladder.
func StepTime(d Device, mc MeshCounts, opt Opt) float64 {
	w := Workload(mc, false)
	byKernel := map[string][]PatternWork{}
	for _, pw := range w {
		byKernel[pw.Inst.Kernel] = append(byKernel[pw.Inst.Kernel], pw)
	}
	total := 0.0
	for stage := 0; stage < 4; stage++ {
		for _, k := range StageKernels(stage) {
			pats := byKernel[k]
			total += d.RegionCost(len(pats), opt)
			for _, pw := range pats {
				total += d.PatternTime(pw.N, pw.Flops, pw.Bytes, pw.Scatter, opt)
			}
		}
	}
	// The RK driver's two state copies (provis, accumulator) per step.
	stateBytes := float64(mc.Cells+mc.Edges) * 8 * 2 * 2
	total += stateBytes / d.Bandwidth(opt)
	return total
}

// Figure6Ladder returns the cumulative-optimization speedups of Figure 6 on
// the Phi: Baseline, +OpenMP, +Refactoring, +SIMD, +Streaming, +Others,
// normalized to the serial baseline.
func Figure6Ladder(mc MeshCounts) (labels []string, speedups []float64) {
	d := XeonPhi5110P()
	steps := []struct {
		label string
		opt   Opt
	}{
		{"Baseline", Opt{}},
		{"OpenMP", Opt{Threads: true}},
		{"Refactoring", Opt{Threads: true, Refactored: true}},
		{"SIMD", Opt{Threads: true, Refactored: true, SIMD: true}},
		{"Streaming", Opt{Threads: true, Refactored: true, SIMD: true, Streaming: true}},
		{"Others", AllOpt},
	}
	base := StepTime(d, mc, steps[0].opt)
	for _, s := range steps {
		labels = append(labels, s.label)
		speedups = append(speedups, base/StepTime(d, mc, s.opt))
	}
	return labels, speedups
}
