package perfmodel

import (
	"testing"
	"testing/quick"
)

// TestQuickPatternTimeMonotoneInWork: more elements never cost less, on
// either device, under any optimization combination.
func TestQuickPatternTimeMonotoneInWork(t *testing.T) {
	devs := []Device{XeonE5_2680v2(), XeonPhi5110P()}
	f := func(n1, n2 uint16, fl, by uint8, o uint8, scatter bool) bool {
		a, b := int(n1)+1, int(n2)+1
		if a > b {
			a, b = b, a
		}
		opt := Opt{
			Threads:    o&1 != 0,
			Refactored: o&2 != 0,
			SIMD:       o&4 != 0,
			Streaming:  o&8 != 0,
			Others:     o&16 != 0,
		}
		flops := float64(fl%50) + 1
		bytes := float64(by%200) + 8
		for _, d := range devs {
			ta := d.PatternTime(a, flops, bytes, scatter, opt)
			tb := d.PatternTime(b, flops, bytes, scatter, opt)
			if ta <= 0 || tb < ta*0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRefactoringNeverHurts: for any workload, the refactored form is
// never slower than the atomic scatter under threading.
func TestQuickRefactoringNeverHurts(t *testing.T) {
	d := XeonPhi5110P()
	f := func(n uint16, fl, by uint8) bool {
		opt := Opt{Threads: true}
		optR := Opt{Threads: true, Refactored: true}
		flops := float64(fl%50) + 1
		bytes := float64(by%200) + 8
		work := int(n) + 1
		return d.PatternTime(work, flops, bytes, true, optR) <=
			d.PatternTime(work, flops, bytes, true, opt)*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransferTimesAdditive: transfer cost of a+b bytes in one message
// never exceeds two messages (latency amortization).
func TestQuickTransferTimesAdditive(t *testing.T) {
	link := DefaultPCIe()
	ib := FDRInfiniBand()
	f := func(a, b uint32) bool {
		x, y := float64(a%1_000_000), float64(b%1_000_000)
		if link.TransferTime(x+y) > link.TransferTime(x)+link.TransferTime(y)+1e-15 {
			return false
		}
		return ib.MessageTime(x+y) <= ib.MessageTime(x)+ib.MessageTime(y)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
