// Package perfmodel is the calibrated performance model of the paper's test
// platform (Table II): Intel Xeon E5-2680 v2 CPUs and Intel Xeon Phi 5110P
// coprocessors connected by PCIe, with nodes joined by 56 Gb FDR InfiniBand.
// Go has no accelerator offload, so — per the substitution rule in DESIGN.md
// — the platform is simulated: pattern kernels really execute (on
// goroutines) for correctness, while this model supplies the clock that the
// paper's wall-clock measurements supplied.
//
// The model is a roofline over EFFECTIVE (not peak) rates, because the
// shallow-water patterns are irregular: indexed gathers over unstructured
// connectivity. The controlling quantities, calibrated against the paper's
// own measurements (Fig. 6 ladder, Fig. 7 execution times), are
//
//   - the effective single-thread bandwidth of latency-bound irregular
//     access (what a serial run sustains),
//   - the effective fully-threaded irregular bandwidth (threading hides
//     memory latency — the main reason the 60-core Phi wins),
//   - multiplicative bandwidth factors for manual SIMD (on the in-order Phi,
//     VGATHER keeps many more cache-line requests in flight than scalar
//     loads), streaming stores (no read-for-ownership) and
//     prefetch/2MB-pages/loop-fusion,
//   - a contended-update cost for un-refactored scatter reductions run with
//     atomics, which is what caps the "OpenMP only" bar of Figure 6 below
//     20x and is removed by the regularity-aware refactoring.
package perfmodel

// Device is one processor of the heterogeneous node with calibrated
// effective rates for the shallow-water pattern workload.
type Device struct {
	Name           string
	Cores          int
	ThreadsPerCore int
	FreqGHz        float64

	// SerialBW/ParallelBW: effective irregular-access bandwidth (GB/s) of
	// one thread (latency-bound) and of the fully threaded device
	// (latency-hidden), before SIMD/streaming/prefetch factors.
	SerialBW   float64
	ParallelBW float64

	// Bandwidth factors for the §4 optimizations.
	SIMDBWBoost float64
	StreamBoost float64
	OthersBoost float64

	// Effective compute rates (GFlop/s) serial and fully threaded, and the
	// factor manual SIMD contributes on top of the threaded rate.
	SerialGF      float64
	ParallelGF    float64
	SIMDFlopBoost float64

	// RegionOverhead is the fork/join cost of one parallel region.
	RegionOverhead float64
	// GrainElements models the per-thread granularity floor: with T
	// hardware threads, a pattern of n elements runs at efficiency
	// n/(n + T*GrainElements) — small arrays cannot amortize fork, load
	// imbalance and sync across hundreds of threads, which is what erodes
	// the Phi's advantage on the 40962-cell mesh in Figure 7.
	GrainElements float64
	// ContendedUpdateCost is the average cost per output element of an
	// un-refactored scatter reduction executed with atomic updates under
	// full threading (coherence-serialized).
	ContendedUpdateCost float64
}

// XeonE5_2680v2 returns the host CPU model (one 10-core socket, as the paper
// groups one CPU with one Phi per MPI process). SerialBW is calibrated so a
// serial step on the 30-km mesh costs ~4.4 s (Fig. 7).
func XeonE5_2680v2() Device {
	return Device{
		Name:                "Intel Xeon E5-2680 v2",
		Cores:               10,
		ThreadsPerCore:      1,
		FreqGHz:             2.8,
		SerialBW:            2.8,
		ParallelBW:          20,
		SIMDBWBoost:         1.05,
		StreamBoost:         1.03,
		OthersBoost:         1.05,
		SerialGF:            2.2,
		ParallelGF:          30,
		SIMDFlopBoost:       2.5,
		RegionOverhead:      4e-6,
		GrainElements:       300,
		ContendedUpdateCost: 3.0e-8,
	}
}

// XeonPhi5110P returns the coprocessor model (59 compute cores; one core is
// reserved for the offload engine, §4.B). Calibrated to reproduce the
// Figure 6 ladder: ~15x with naive OpenMP, >60x after refactoring, ~+20%
// from SIMD, ~100x with everything.
func XeonPhi5110P() Device {
	return Device{
		Name:                "Intel Xeon Phi 5110P",
		Cores:               59,
		ThreadsPerCore:      4,
		FreqGHz:             1.053,
		SerialBW:            0.24,
		ParallelBW:          16,
		SIMDBWBoost:         1.22,
		StreamBoost:         1.17,
		OthersBoost:         1.15,
		SerialGF:            0.4,
		ParallelGF:          55,
		SIMDFlopBoost:       6,
		RegionOverhead:      2.4e-5,
		GrainElements:       300,
		ContendedUpdateCost: 1.6e-7,
	}
}

// PCIe is the host-device transfer link model.
type PCIe struct {
	Latency   float64 // seconds per transfer
	Bandwidth float64 // GB/s
}

// DefaultPCIe returns a PCIe gen2 x16 link as on the paper's platform.
func DefaultPCIe() PCIe {
	return PCIe{Latency: 1.2e-5, Bandwidth: 6.0}
}

// TransferTime returns the time to move bytes across the link.
func (p PCIe) TransferTime(bytes float64) float64 {
	return p.Latency + bytes/(p.Bandwidth*1e9)
}

// Interconnect is the inter-node network model (FDR InfiniBand).
type Interconnect struct {
	Latency   float64 // seconds
	Bandwidth float64 // GB/s
}

// FDRInfiniBand returns the 56 Gb/s FDR model.
func FDRInfiniBand() Interconnect {
	return Interconnect{Latency: 1.8e-6, Bandwidth: 6.2}
}

// MessageTime returns the alpha-beta cost of one message.
func (ic Interconnect) MessageTime(bytes float64) float64 {
	return ic.Latency + bytes/(ic.Bandwidth*1e9)
}

// Opt is the set of §4 optimizations applied to a device.
type Opt struct {
	Threads    bool // OpenMP multithreading (§4.B)
	Refactored bool // regularity-aware loop refactoring (§4.C)
	SIMD       bool // manual vectorization (§4.D)
	Streaming  bool // streaming stores (§4.E)
	Others     bool // prefetch, 2MB pages, loop fusion (§4.F)
}

// AllOpt is the fully optimized configuration.
var AllOpt = Opt{Threads: true, Refactored: true, SIMD: true, Streaming: true, Others: true}

// Bandwidth returns the effective bandwidth in bytes/s under opt.
func (d Device) Bandwidth(opt Opt) float64 {
	bw := d.SerialBW
	if opt.Threads {
		bw = d.ParallelBW
	}
	if opt.SIMD {
		bw *= d.SIMDBWBoost
	}
	if opt.Streaming {
		bw *= d.StreamBoost
	}
	if opt.Others {
		bw *= d.OthersBoost
	}
	return bw * 1e9
}

// FlopRate returns the effective compute rate in flops/s under opt.
func (d Device) FlopRate(opt Opt) float64 {
	gf := d.SerialGF
	if opt.Threads {
		gf = d.ParallelGF
	}
	if opt.SIMD {
		gf *= d.SIMDFlopBoost
	}
	return gf * 1e9
}

// PatternTime returns the modeled execution time of one pattern instance:
// n output elements, f flops and b bytes per element. scatter marks patterns
// whose original loop shape is an irregular reduction requiring atomics
// when threaded without refactoring.
func (d Device) PatternTime(n int, f, b float64, scatter bool, opt Opt) float64 {
	work := float64(n)
	t := work * f / d.FlopRate(opt)
	if tm := work * b / d.Bandwidth(opt); tm > t {
		t = tm
	}
	if opt.Threads {
		threads := float64(d.Cores * d.ThreadsPerCore)
		t *= (work + threads*d.GrainElements) / work
	}
	if scatter && opt.Threads && !opt.Refactored {
		t += work * d.ContendedUpdateCost
	}
	return t
}

// RegionCost returns the fork/join overhead charged per kernel execution.
// With the "Others" optimizations (loop fusion, one region per kernel) a
// kernel pays one region; without them every pattern pays its own.
func (d Device) RegionCost(patternsInKernel int, opt Opt) float64 {
	if !opt.Threads {
		return 0
	}
	if opt.Others {
		return d.RegionOverhead
	}
	return d.RegionOverhead * float64(patternsInKernel)
}
