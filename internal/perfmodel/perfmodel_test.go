package perfmodel

import (
	"math"
	"testing"
)

func TestFigure6LadderShape(t *testing.T) {
	// Paper Figure 6 on the 30-km mesh: OpenMP alone < 20x, refactoring
	// > 60x, SIMD adds ~20%, everything together ~100x.
	mc := CountsForCells(655362)
	labels, sp := Figure6Ladder(mc)
	if len(labels) != 6 || len(sp) != 6 {
		t.Fatalf("ladder has %d rungs", len(sp))
	}
	get := func(name string) float64 {
		for i, l := range labels {
			if l == name {
				return sp[i]
			}
		}
		t.Fatalf("missing rung %q", name)
		return 0
	}
	if v := get("Baseline"); v != 1 {
		t.Errorf("baseline %v != 1", v)
	}
	if v := get("OpenMP"); v >= 20 || v < 8 {
		t.Errorf("OpenMP rung %v, paper band <20x", v)
	}
	if v := get("Refactoring"); v <= 55 || v > 72 {
		t.Errorf("Refactoring rung %v, paper band >60x", v)
	}
	simdGain := get("SIMD") / get("Refactoring")
	if simdGain < 1.1 || simdGain > 1.35 {
		t.Errorf("SIMD gain %v, paper ~+20%%", simdGain)
	}
	if v := get("Others"); v < 85 || v > 120 {
		t.Errorf("final rung %v, paper ~100x", v)
	}
	// Monotone non-decreasing ladder.
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1] {
			t.Errorf("ladder decreases at %s: %v -> %v", labels[i], sp[i-1], sp[i])
		}
	}
}

func TestSerialCPUStepAnchor(t *testing.T) {
	// Fig. 7 anchors: ~0.27 s/step at 40962 cells, ~4.4 s at 655362 cells
	// for the original serial code.
	cpu := XeonE5_2680v2()
	if v := StepTime(cpu, CountsForCells(40962), Opt{}); v < 0.2 || v > 0.36 {
		t.Errorf("serial step at 40962 cells: %v s, paper 0.271", v)
	}
	if v := StepTime(cpu, CountsForCells(655362), Opt{}); v < 3.5 || v > 5.3 {
		t.Errorf("serial step at 655362 cells: %v s, paper 4.434", v)
	}
}

func TestStepTimeScalesLinearly(t *testing.T) {
	d := XeonPhi5110P()
	t1 := StepTime(d, CountsForCells(655362), AllOpt)
	t2 := StepTime(d, CountsForCells(2621442), AllOpt)
	if r := t2 / t1; r < 3.5 || r > 4.5 {
		t.Errorf("4x cells -> %vx time, want ~4x", r)
	}
}

func TestOptimizationsNeverHurt(t *testing.T) {
	mc := CountsForCells(163842)
	for _, d := range []Device{XeonE5_2680v2(), XeonPhi5110P()} {
		base := StepTime(d, mc, Opt{Threads: true, Refactored: true})
		for _, opt := range []Opt{
			{Threads: true, Refactored: true, SIMD: true},
			{Threads: true, Refactored: true, Streaming: true},
			{Threads: true, Refactored: true, Others: true},
			AllOpt,
		} {
			if v := StepTime(d, mc, opt); v > base*1.0001 {
				t.Errorf("%s: opt %+v slower than base: %v > %v", d.Name, opt, v, base)
			}
		}
	}
}

func TestScatterPenaltyOnlyWhenUnrefactored(t *testing.T) {
	d := XeonPhi5110P()
	n := 1_000_000
	threaded := Opt{Threads: true}
	refactored := Opt{Threads: true, Refactored: true}
	tScatter := d.PatternTime(n, 10, 100, true, threaded)
	tGather := d.PatternTime(n, 10, 100, false, threaded)
	if tScatter <= tGather {
		t.Error("no atomic penalty for threaded scatter")
	}
	tRef := d.PatternTime(n, 10, 100, true, refactored)
	tRefGather := d.PatternTime(n, 10, 100, false, refactored)
	if tRef != tRefGather {
		t.Error("refactored scatter still penalized")
	}
	// Serial scatter pays no atomic penalty either.
	s1 := d.PatternTime(n, 10, 100, true, Opt{})
	s2 := d.PatternTime(n, 10, 100, false, Opt{})
	if s1 != s2 {
		t.Error("serial scatter penalized")
	}
}

func TestGranularityPenalty(t *testing.T) {
	d := XeonPhi5110P()
	// Throughput (elements/s) should be much worse for tiny arrays.
	tpt := func(n int) float64 {
		return float64(n) / d.PatternTime(n, 10, 100, false, AllOpt)
	}
	if tpt(10_000) > 0.5*tpt(10_000_000) {
		t.Error("no granularity penalty for small arrays on 236 threads")
	}
}

func TestTransferModels(t *testing.T) {
	link := DefaultPCIe()
	small := link.TransferTime(8)
	big := link.TransferTime(64e6)
	if small <= 0 || big <= small {
		t.Error("PCIe transfer times not monotone")
	}
	if lat := link.TransferTime(0); math.Abs(lat-link.Latency) > 1e-15 {
		t.Error("zero-byte transfer should cost latency")
	}
	ib := FDRInfiniBand()
	if ib.MessageTime(1e6) <= ib.MessageTime(0) {
		t.Error("IB message time not monotone")
	}
}

func TestCountsForCells(t *testing.T) {
	mc := CountsForCells(40962)
	if mc.Edges != 3*40962-6 || mc.Vertices != 2*40962-4 {
		t.Errorf("counts: %+v", mc)
	}
	if mc.Elements(PerCell) != mc.Cells || mc.Elements(PerEdge) != mc.Edges || mc.Elements(PerVertex) != mc.Vertices {
		t.Error("Elements dispatch wrong")
	}
}

func TestWorkloadCoversTable1(t *testing.T) {
	mc := CountsForCells(2562)
	w := Workload(mc, true)
	if len(w) != len(WorkTable) {
		t.Errorf("workload has %d entries, table %d", len(w), len(WorkTable))
	}
	for _, pw := range w {
		if pw.N <= 0 || pw.Flops <= 0 || pw.Bytes <= 0 {
			t.Errorf("bad workload for %s: %+v", pw.Inst.ID, pw)
		}
	}
	// Without optional patterns, C1 and D2 drop out.
	wDef := Workload(mc, false)
	if len(wDef) != len(w)-2 {
		t.Errorf("default workload %d entries, want %d (C1 and D2 excluded)", len(wDef), len(w)-2)
	}
}

func TestStageKernels(t *testing.T) {
	for stage := 0; stage < 3; stage++ {
		ks := StageKernels(stage)
		if len(ks) != 5 || ks[len(ks)-1] != "accumulative_update" {
			t.Errorf("stage %d kernels: %v", stage, ks)
		}
	}
	last := StageKernels(3)
	if last[len(last)-1] != "mpas_reconstruct" {
		t.Errorf("final stage kernels: %v", last)
	}
}
