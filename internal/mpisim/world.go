// Package mpisim is the message-passing substrate standing in for MPI: ranks
// are goroutines connected by buffered channels, with the halo-exchange,
// reduction and barrier collectives the distributed shallow-water runs need.
// Correctness-path communication is real (values actually move between rank
// memories and distributed runs reproduce serial runs bitwise on owned
// points); reported times for the paper's scaling figures come from the FDR
// InfiniBand alpha-beta model in internal/perfmodel.
package mpisim

import (
	"fmt"
	"sync"
)

// World is a set of communicating ranks.
type World struct {
	Size int
	ch   [][]chan []float64

	// free recycles message buffers across exchanges. Senders draw from it
	// (Send, exchange, the gather paths) and receivers return buffers via
	// Comm.Release once unpacked, so steady-state halo traffic does not
	// allocate. Consumers that never Release simply let buffers fall to the
	// garbage collector — the pool is an optimization, not an obligation.
	// (A mutex-guarded stack rather than sync.Pool: Put(&buf) would box a
	// fresh pointer per release, and sync.Pool contents vanish on GC, which
	// would make the allocs-per-exchange gate flaky.)
	mu   sync.Mutex
	free [][]float64
}

// getBuf returns a pooled buffer of length n (allocating only when no
// pooled buffer is large enough).
func (w *World) getBuf(n int) []float64 {
	w.mu.Lock()
	for i := len(w.free) - 1; i >= 0; i-- {
		if cap(w.free[i]) >= n {
			b := w.free[i]
			last := len(w.free) - 1
			w.free[i] = w.free[last]
			w.free[last] = nil
			w.free = w.free[:last]
			w.mu.Unlock()
			return b[:n]
		}
	}
	w.mu.Unlock()
	return make([]float64, n)
}

// NewWorld creates a world of size ranks.
func NewWorld(size int) *World {
	if size < 1 {
		size = 1
	}
	w := &World{Size: size, ch: make([][]chan []float64, size)}
	for i := range w.ch {
		w.ch[i] = make([]chan []float64, size)
		for j := range w.ch[i] {
			// Buffer a handful of in-flight messages per pair so the
			// send-all-then-receive-all exchange pattern cannot deadlock.
			w.ch[i][j] = make(chan []float64, 8)
		}
	}
	return w
}

// Run spawns one goroutine per rank and waits for all of them to return.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.Size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(&Comm{w: w, Rank: rank})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's communicator.
type Comm struct {
	w    *World
	Rank int
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.Size }

// Send delivers a copy of data to rank `to`. Messages between a fixed pair
// of ranks arrive in order.
func (c *Comm) Send(to int, data []float64) {
	buf := c.w.getBuf(len(data))
	copy(buf, data)
	c.sendOwned(to, buf)
}

// sendOwned delivers buf itself (no copy) to rank `to`, transferring
// ownership: the sender must not touch buf afterwards, and the receiver
// should Release it once unpacked.
func (c *Comm) sendOwned(to int, buf []float64) {
	if to < 0 || to >= c.w.Size {
		panic(fmt.Sprintf("mpisim: send to invalid rank %d", to))
	}
	c.w.ch[c.Rank][to] <- buf
}

// Release returns a received message buffer to the world's pool so a later
// Send can reuse it. Optional but keeps steady-state exchanges allocation
// free. The pool is bounded; surplus buffers fall to the garbage collector.
func (c *Comm) Release(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	w := c.w
	w.mu.Lock()
	if len(w.free) < 4*w.Size*w.Size+16 {
		w.free = append(w.free, buf)
	}
	w.mu.Unlock()
}

// Recv blocks for the next message from rank `from`.
func (c *Comm) Recv(from int) []float64 {
	if from < 0 || from >= c.w.Size {
		panic(fmt.Sprintf("mpisim: recv from invalid rank %d", from))
	}
	return <-c.w.ch[from][c.Rank]
}

// AllreduceSum returns the sum of x over all ranks, on every rank.
func (c *Comm) AllreduceSum(x float64) float64 {
	// Gather to rank 0, then broadcast.
	if c.Rank == 0 {
		sum := x
		for r := 1; r < c.w.Size; r++ {
			buf := c.Recv(r)
			sum += buf[0]
			c.Release(buf)
		}
		for r := 1; r < c.w.Size; r++ {
			c.sendScalar(r, sum)
		}
		return sum
	}
	c.sendScalar(0, x)
	return c.recvScalar(0)
}

// AllreduceMax returns the maximum of x over all ranks, on every rank.
func (c *Comm) AllreduceMax(x float64) float64 {
	if c.Rank == 0 {
		m := x
		for r := 1; r < c.w.Size; r++ {
			buf := c.Recv(r)
			if buf[0] > m {
				m = buf[0]
			}
			c.Release(buf)
		}
		for r := 1; r < c.w.Size; r++ {
			c.sendScalar(r, m)
		}
		return m
	}
	c.sendScalar(0, x)
	return c.recvScalar(0)
}

func (c *Comm) sendScalar(to int, x float64) {
	buf := c.w.getBuf(1)
	buf[0] = x
	c.sendOwned(to, buf)
}

func (c *Comm) recvScalar(from int) float64 {
	buf := c.Recv(from)
	v := buf[0]
	c.Release(buf)
	return v
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.AllreduceSum(0) }
