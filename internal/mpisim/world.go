// Package mpisim is the message-passing substrate standing in for MPI: ranks
// are goroutines connected by buffered channels, with the halo-exchange,
// reduction and barrier collectives the distributed shallow-water runs need.
// Correctness-path communication is real (values actually move between rank
// memories and distributed runs reproduce serial runs bitwise on owned
// points); reported times for the paper's scaling figures come from the FDR
// InfiniBand alpha-beta model in internal/perfmodel.
package mpisim

import (
	"fmt"
	"sync"
)

// World is a set of communicating ranks.
type World struct {
	Size int
	ch   [][]chan []float64
}

// NewWorld creates a world of size ranks.
func NewWorld(size int) *World {
	if size < 1 {
		size = 1
	}
	w := &World{Size: size, ch: make([][]chan []float64, size)}
	for i := range w.ch {
		w.ch[i] = make([]chan []float64, size)
		for j := range w.ch[i] {
			// Buffer a handful of in-flight messages per pair so the
			// send-all-then-receive-all exchange pattern cannot deadlock.
			w.ch[i][j] = make(chan []float64, 8)
		}
	}
	return w
}

// Run spawns one goroutine per rank and waits for all of them to return.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.Size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(&Comm{w: w, Rank: rank})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's communicator.
type Comm struct {
	w    *World
	Rank int
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.Size }

// Send delivers a copy of data to rank `to`. Messages between a fixed pair
// of ranks arrive in order.
func (c *Comm) Send(to int, data []float64) {
	if to < 0 || to >= c.w.Size {
		panic(fmt.Sprintf("mpisim: send to invalid rank %d", to))
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	c.w.ch[c.Rank][to] <- buf
}

// Recv blocks for the next message from rank `from`.
func (c *Comm) Recv(from int) []float64 {
	if from < 0 || from >= c.w.Size {
		panic(fmt.Sprintf("mpisim: recv from invalid rank %d", from))
	}
	return <-c.w.ch[from][c.Rank]
}

// AllreduceSum returns the sum of x over all ranks, on every rank.
func (c *Comm) AllreduceSum(x float64) float64 {
	// Gather to rank 0, then broadcast.
	if c.Rank == 0 {
		sum := x
		for r := 1; r < c.w.Size; r++ {
			sum += c.Recv(r)[0]
		}
		for r := 1; r < c.w.Size; r++ {
			c.Send(r, []float64{sum})
		}
		return sum
	}
	c.Send(0, []float64{x})
	return c.Recv(0)[0]
}

// AllreduceMax returns the maximum of x over all ranks, on every rank.
func (c *Comm) AllreduceMax(x float64) float64 {
	if c.Rank == 0 {
		m := x
		for r := 1; r < c.w.Size; r++ {
			if v := c.Recv(r)[0]; v > m {
				m = v
			}
		}
		for r := 1; r < c.w.Size; r++ {
			c.Send(r, []float64{m})
		}
		return m
	}
	c.Send(0, []float64{x})
	return c.Recv(0)[0]
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.AllreduceSum(0) }
