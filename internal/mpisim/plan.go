package mpisim

import (
	"repro/internal/halo"
	"repro/internal/mesh"
	"repro/internal/partition"
)

// Plan is one rank's halo-exchange pattern: for each peer, which local cell
// and edge slots to pack into outgoing messages and which to fill from
// incoming ones. It is an alias of the shared halo.ExchangeSpec so mpisim and
// the real multi-process TCP runtime (internal/dist) consume one definition
// instead of two drifting copies.
type Plan = halo.ExchangeSpec

// BuildPlans constructs consistent exchange plans for all ranks.
func BuildPlans(g *mesh.Mesh, locals []*partition.Local) []*Plan {
	return halo.BuildSpecs(g, locals)
}

// exchange performs one halo exchange of a cell field and an edge field
// according to the plan: pack and send to every peer, then receive and
// unpack from every peer. Message buffers come from the world's pool and are
// returned to it after unpacking, so a steady-state exchange does not
// allocate.
func (c *Comm) exchange(p *Plan, cellField, edgeField []float64) {
	for _, peer := range p.Peers {
		buf := c.w.getBuf(p.SendLen(peer))
		p.PackSend(peer, cellField, edgeField, buf)
		c.sendOwned(peer, buf)
	}
	for _, peer := range p.Peers {
		buf := c.Recv(peer)
		p.UnpackRecv(peer, buf, cellField, edgeField)
		c.Release(buf)
	}
}
