package mpisim

import (
	"sort"

	"repro/internal/mesh"
	"repro/internal/partition"
)

// Plan is one rank's halo-exchange plan: for each peer, which local cell and
// edge slots to pack into outgoing messages and which to fill from incoming
// ones. Send lists on the owner are constructed in the same order as the
// receiver's recv lists, so messages need no headers.
type Plan struct {
	Peers     []int
	SendCells map[int][]int32
	RecvCells map[int][]int32
	SendEdges map[int][]int32
	RecvEdges map[int][]int32
}

// HaloBytes returns the per-exchange message volume of this rank (one cell
// field plus one edge field).
func (p *Plan) HaloBytes() int {
	n := 0
	for _, peer := range p.Peers {
		n += len(p.SendCells[peer]) + len(p.RecvCells[peer])
		n += len(p.SendEdges[peer]) + len(p.RecvEdges[peer])
	}
	return n * 8
}

// BuildPlans constructs consistent exchange plans for all ranks.
func BuildPlans(g *mesh.Mesh, locals []*partition.Local) []*Plan {
	plans := make([]*Plan, len(locals))
	for r := range plans {
		plans[r] = &Plan{
			SendCells: map[int][]int32{}, RecvCells: map[int][]int32{},
			SendEdges: map[int][]int32{}, RecvEdges: map[int][]int32{},
		}
	}
	for r, l := range locals {
		// Halo cells, in local order, grouped by owner.
		for lc := l.NOwnedCells; lc < len(l.CellL2G); lc++ {
			o := int(l.CellOwner[lc])
			plans[r].RecvCells[o] = append(plans[r].RecvCells[o], int32(lc))
			gcell := l.CellL2G[lc]
			plans[o].SendCells[r] = append(plans[o].SendCells[r], locals[o].CellG2L[gcell])
		}
		// Non-owned local edges.
		for le, ge := range l.EdgeL2G {
			o := int(l.EdgeOwner[le])
			if o == r {
				continue
			}
			plans[r].RecvEdges[o] = append(plans[r].RecvEdges[o], int32(le))
			plans[o].SendEdges[r] = append(plans[o].SendEdges[r], locals[o].EdgeG2L[ge])
		}
	}
	for r, p := range plans {
		peers := map[int]bool{}
		for o := range p.RecvCells {
			peers[o] = true
		}
		for o := range p.SendCells {
			peers[o] = true
		}
		for o := range p.RecvEdges {
			peers[o] = true
		}
		for o := range p.SendEdges {
			peers[o] = true
		}
		delete(peers, r)
		for o := range peers {
			p.Peers = append(p.Peers, o)
		}
		sort.Ints(p.Peers)
	}
	return plans
}

// exchange performs one halo exchange of a cell field and an edge field
// according to the plan: pack and send to every peer, then receive and
// unpack from every peer.
func (c *Comm) exchange(p *Plan, cellField, edgeField []float64) {
	for _, peer := range p.Peers {
		sc := p.SendCells[peer]
		se := p.SendEdges[peer]
		buf := make([]float64, len(sc)+len(se))
		for i, lc := range sc {
			buf[i] = cellField[lc]
		}
		for i, le := range se {
			buf[len(sc)+i] = edgeField[le]
		}
		c.Send(peer, buf)
	}
	for _, peer := range p.Peers {
		rc := p.RecvCells[peer]
		re := p.RecvEdges[peer]
		buf := c.Recv(peer)
		for i, lc := range rc {
			cellField[lc] = buf[i]
		}
		for i, le := range re {
			edgeField[le] = buf[len(rc)+i]
		}
	}
}
