package mpisim

import (
	"repro/internal/hybrid"
	"repro/internal/partition"
	"repro/internal/perfmodel"
)

// ScalingPoint is one process count of a scaling curve: the modeled per-step
// time of the original (one-core-per-process) code and of the pattern-driven
// hybrid, built from per-rank workloads, the FDR InfiniBand alpha-beta model
// and — for the hybrid — the PCIe staging of halo data.
type ScalingPoint struct {
	Procs        int
	CellsPerProc int
	HaloCells    int // per rank, all layers
	CommTime     float64
	CPUTime      float64 // seconds/step, original code
	HybridTime   float64 // seconds/step, pattern-driven hybrid
}

// neighbors is the typical neighbor count of a compact partition part.
const neighbors = 6

// ExchangesPerStep is the number of halo exchanges per RK-4 step (one per
// substage, as wired into the solver's PostSubstep hook).
const ExchangesPerStep = 4

// haloModel returns the modeled halo cell and edge counts of one rank.
func haloModel(cellsPerProc, procs int) (cells, edges int) {
	if procs == 1 {
		return 0, 0
	}
	for l := 1; l <= HaloLayers; l++ {
		cells += partition.HaloCellsModel(cellsPerProc, l)
	}
	return cells, 3 * cells
}

// commTime models one rank's per-step communication: per exchange, one
// message per neighbor under the InfiniBand alpha-beta model.
func commTime(haloCells, haloEdges, procs int) float64 {
	if procs == 1 {
		return 0
	}
	ib := perfmodel.FDRInfiniBand()
	bytes := float64(haloCells+haloEdges) * 8
	perExchange := float64(neighbors)*ib.Latency + bytes/(ib.Bandwidth*1e9)
	return ExchangesPerStep * perExchange
}

// pciStaging models the hybrid's extra PCIe hops: halo data crosses the link
// twice per exchange (device to host before sending, host to device after
// receiving).
func pciStaging(haloCells, haloEdges, procs int) float64 {
	if procs == 1 {
		return 0
	}
	link := perfmodel.DefaultPCIe()
	bytes := float64(haloCells+haloEdges) * 8
	return ExchangesPerStep * 2 * link.TransferTime(bytes)
}

// point computes one scaling point for the given per-rank cell count.
func point(procs, cellsPerProc int) ScalingPoint {
	haloC, haloE := haloModel(cellsPerProc, procs)
	// Both codes compute over owned + halo entities.
	mc := perfmodel.CountsForCells(cellsPerProc + haloC)
	comm := commTime(haloC, haloE, procs)

	cpu := hybrid.CPUSerialStep(mc) + comm

	_, hybridCompute := hybrid.TunePatternDriven(mc)
	hyb := hybridCompute + comm + pciStaging(haloC, haloE, procs)

	return ScalingPoint{
		Procs:        procs,
		CellsPerProc: cellsPerProc,
		HaloCells:    haloC,
		CommTime:     comm,
		CPUTime:      cpu,
		HybridTime:   hyb,
	}
}

// StrongScaling models Figure 8: a fixed global mesh spread over increasing
// process counts.
func StrongScaling(totalCells int, procs []int) []ScalingPoint {
	var out []ScalingPoint
	for _, p := range procs {
		out = append(out, point(p, totalCells/p))
	}
	return out
}

// WeakScaling models Figure 9: a fixed per-process mesh size.
func WeakScaling(cellsPerProc int, procs []int) []ScalingPoint {
	var out []ScalingPoint
	for _, p := range procs {
		out = append(out, point(p, cellsPerProc))
	}
	return out
}

// ParallelEfficiency returns time(1)/(P*time(P)) for a strong-scaling curve,
// using the given accessor (CPU or hybrid).
func ParallelEfficiency(points []ScalingPoint, get func(ScalingPoint) float64) []float64 {
	if len(points) == 0 {
		return nil
	}
	base := get(points[0]) * float64(points[0].Procs)
	out := make([]float64, len(points))
	for i, pt := range points {
		out[i] = base / (get(pt) * float64(pt.Procs))
	}
	return out
}
