package mpisim

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/mesh"
)

func decompose2(tb testing.TB) *Decomposition {
	tb.Helper()
	g, err := mesh.Build(3, mesh.Options{})
	if err != nil {
		tb.Fatalf("mesh: %v", err)
	}
	d, err := Decompose(g, 2)
	if err != nil {
		tb.Fatalf("decompose: %v", err)
	}
	return d
}

// Steady-state halo exchanges must reuse pooled message buffers instead of
// allocating per peer per exchange. The gate measures process-wide mallocs
// across a window of exchanges (GC disabled so the pool cannot be purged
// mid-measurement) and requires the average to stay below one allocation per
// exchange — the pre-pool implementation cost ~2 allocations per peer per
// rank per exchange.
func TestExchangeAllocFree(t *testing.T) {
	d := decompose2(t)
	w := NewWorld(2)
	const warmup, iters = 16, 200
	var before, after runtime.MemStats
	w.Run(func(c *Comm) {
		l := d.Locals[c.Rank]
		p := d.Plans[c.Rank]
		cellF := make([]float64, len(l.CellL2G))
		edgeF := make([]float64, len(l.EdgeL2G))
		for i := 0; i < warmup; i++ {
			c.exchange(p, cellF, edgeF)
		}
		c.Barrier()
		if c.Rank == 0 {
			old := debug.SetGCPercent(-1)
			defer debug.SetGCPercent(old)
			runtime.ReadMemStats(&before)
		}
		c.Barrier()
		for i := 0; i < iters; i++ {
			c.exchange(p, cellF, edgeF)
		}
		c.Barrier()
		if c.Rank == 0 {
			runtime.ReadMemStats(&after)
		}
	})
	perExchange := float64(after.Mallocs-before.Mallocs) / iters
	t.Logf("allocs per exchange (both ranks): %.3f", perExchange)
	if perExchange > 1.0 {
		t.Fatalf("halo exchange allocates %.2f objects per exchange; buffer pool is not being reused", perExchange)
	}
}

// BenchmarkHaloExchange reports ns and allocs per halo exchange (2 ranks,
// level-3 mesh, standard halo depth); scripts/bench.sh records it.
func BenchmarkHaloExchange(b *testing.B) {
	d := decompose2(b)
	w := NewWorld(2)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *Comm) {
		l := d.Locals[c.Rank]
		p := d.Plans[c.Rank]
		cellF := make([]float64, len(l.CellL2G))
		edgeF := make([]float64, len(l.EdgeL2G))
		for i := 0; i < b.N; i++ {
			c.exchange(p, cellF, edgeF)
		}
	})
}
