package mpisim

import (
	"math"
	"sync"
	"testing"

	"repro/internal/sw"
	"repro/internal/testcases"
)

// TestShallowHaloDiverges is a failure-injection test: with a halo depth
// below the RK substage dependency radius, owned values MUST diverge from
// the serial trajectory. If this test ever fails (i.e. a 1-layer halo still
// matches), either the dependency analysis in ranksolver.go is wrong or the
// equivalence test has lost its teeth.
func TestShallowHaloDiverges(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	steps := 3

	serial, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(serial)
	serial.Run(steps)

	const P = 4
	d, err := DecomposeLayers(m, P, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(P)
	var mu sync.Mutex
	maxDiff := 0.0
	w.Run(func(c *Comm) {
		rs, err := NewRankSolver(c, d, cfg, testcases.SetupTC5)
		if err != nil {
			t.Error(err)
			return
		}
		rs.Run(steps)
		local := 0.0
		for lc := 0; lc < rs.Local.NOwnedCells; lc++ {
			if dd := math.Abs(rs.S.State.H[lc] - serial.State.H[rs.Local.CellL2G[lc]]); dd > local {
				local = dd
			}
		}
		mu.Lock()
		if local > maxDiff {
			maxDiff = local
		}
		mu.Unlock()
	})
	if maxDiff == 0 {
		t.Error("1-layer halo reproduced serial exactly; dependency analysis must be wrong")
	}
	// But the shallow-halo run must not be wildly unstable either within a
	// few steps (errors enter from the boundary).
	if maxDiff > 100 {
		t.Errorf("shallow halo blew up immediately: max diff %v m", maxDiff)
	}
}

// TestTwoLayerHaloAlsoInsufficient pins the exact dependency radius: even
// two layers are not enough (the APVM + edgesOnEdge chain reaches three
// cells), which is why HaloLayers == 3.
func TestTwoLayerHaloAlsoInsufficient(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	steps := 3

	serial, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC5(serial)
	serial.Run(steps)

	const P = 4
	d, err := DecomposeLayers(m, P, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(P)
	var mu sync.Mutex
	diverged := false
	w.Run(func(c *Comm) {
		rs, err := NewRankSolver(c, d, cfg, testcases.SetupTC5)
		if err != nil {
			t.Error(err)
			return
		}
		rs.Run(steps)
		for lc := 0; lc < rs.Local.NOwnedCells; lc++ {
			if rs.S.State.H[lc] != serial.State.H[rs.Local.CellL2G[lc]] {
				mu.Lock()
				diverged = true
				mu.Unlock()
				return
			}
		}
	})
	if !diverged {
		t.Skip("2-layer halo happened to suffice on this mesh/partition; radius bound is conservative")
	}
}
