package mpisim_test

// Conformance suite for the distributed runs: with the full 3-layer halo
// depth, the gathered owned fields after a multi-step trajectory must match
// the serial baseline bitwise (each owned point sees exactly the serial
// stencil inputs), and the allreduced mass series must track the serial one
// to roundoff.

import (
	"math"
	"testing"

	"repro/internal/conform"
	"repro/internal/mesh"
)

func TestDistributedConform(t *testing.T) {
	m := mesh.MustBuild(2, mesh.Options{})
	base := conform.Baseline()
	cases := []struct {
		caseName string
		ranks    int
		steps    int
	}{
		{"tc2", 2, 3},
		{"tc2", 4, 3},
		{"tc5", 2, 2},
		{"tc6", 3, 2},
		{"galewsky", 4, 2},
	}
	refs := map[string]*conform.Result{}
	for _, tc := range cases {
		c, err := conform.NamedCase(tc.caseName, m, tc.steps)
		if err != nil {
			t.Fatal(err)
		}
		ref := refs[tc.caseName]
		if ref == nil {
			if ref, err = base.Run(c, false); err != nil {
				t.Fatal(err)
			}
			refs[tc.caseName] = ref
		}
		s := conform.MPI(tc.ranks)
		t.Run(c.Name+"/"+s.Name, func(t *testing.T) {
			res, err := s.Run(c, false)
			if err != nil {
				t.Fatal(err)
			}
			d, ok := conform.CompareResults(ref, res, conform.ExactTol)
			if !ok {
				t.Errorf("owned fields diverged from serial run: %v", d)
			}
			if len(res.Mass) != len(ref.Mass) {
				t.Fatalf("%d mass samples, want %d", len(res.Mass), len(ref.Mass))
			}
			for i := range ref.Mass {
				if rel := math.Abs(res.Mass[i]-ref.Mass[i]) / math.Abs(ref.Mass[i]); rel > 1e-12 {
					t.Errorf("mass series off by %.3e at step %d", rel, i)
				}
			}
		})
	}
}
