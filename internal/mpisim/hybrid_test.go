package mpisim

import (
	"sync"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/perfmodel"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// TestDistributedHybridBitwiseMatchesSerial exercises the paper's FULL
// configuration: multiple MPI ranks, each running the pattern-driven hybrid
// executor on its local mesh (one CPU + one accelerator per rank, §5). The
// result must still match the single-process serial trajectory bitwise on
// owned entities.
func TestDistributedHybridBitwiseMatchesSerial(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	steps := 3

	serial, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(serial)
	serial.Run(steps)

	const P = 3
	d, err := Decompose(m, P)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(P)
	var mu sync.Mutex
	fail := ""
	w.Run(func(c *Comm) {
		rs, err := NewRankSolver(c, d, cfg, testcases.SetupTC5)
		if err != nil {
			t.Error(err)
			return
		}
		// Install the hybrid executor on this rank's local solver, exactly
		// as a per-node CPU+accelerator deployment would.
		mc := perfmodel.MeshCounts{
			Cells:    rs.S.M.NCells,
			Edges:    rs.S.M.NEdges,
			Vertices: rs.S.M.NVertices,
		}
		e := hybrid.NewExecutor(hybrid.PatternDrivenSchedule(0.3), mc, 2, 2)
		defer e.Close()
		rs.S.Runner = e
		rs.Run(steps)
		if e.SimTime() <= 0 {
			mu.Lock()
			fail = "no simulated platform time accumulated"
			mu.Unlock()
			return
		}
		for lc := 0; lc < rs.Local.NOwnedCells; lc++ {
			if rs.S.State.H[lc] != serial.State.H[rs.Local.CellL2G[lc]] {
				mu.Lock()
				fail = "distributed hybrid H diverges"
				mu.Unlock()
				return
			}
		}
		for le := range rs.Local.EdgeL2G {
			if rs.Local.EdgeOwner[le] != int32(c.Rank) {
				continue
			}
			if rs.S.State.U[le] != serial.State.U[rs.Local.EdgeL2G[le]] {
				mu.Lock()
				fail = "distributed hybrid U diverges"
				mu.Unlock()
				return
			}
		}
	})
	if fail != "" {
		t.Fatal(fail)
	}
}

// TestDistributedTracerBitwiseMatchesSerial: tracers exchanged at substage
// boundaries reproduce the single-process tracer trajectory bitwise on
// owned cells.
func TestDistributedTracerBitwiseMatchesSerial(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	steps := 3
	initQ := func(s *sw.Solver) *sw.Tracer {
		q := make([]float64, s.M.NCells)
		for c := range q {
			q[c] = 1 + 0.4*s.M.LatCell[c]
		}
		return s.AddTracer("q", q)
	}

	serial, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC5(serial)
	serialTr := initQ(serial)
	serial.Run(steps)

	const P = 3
	d, err := Decompose(m, P)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(P)
	var mu sync.Mutex
	fail := ""
	w.Run(func(c *Comm) {
		rs, err := NewRankSolver(c, d, cfg, func(s *sw.Solver) {
			testcases.SetupTC5(s)
			initQ(s)
		})
		if err != nil {
			t.Error(err)
			return
		}
		rs.Run(steps)
		tr := rs.S.Tracers[0]
		for lc := 0; lc < rs.Local.NOwnedCells; lc++ {
			if tr.Q[lc] != serialTr.Q[rs.Local.CellL2G[lc]] {
				mu.Lock()
				fail = "distributed tracer diverges"
				mu.Unlock()
				return
			}
		}
	})
	if fail != "" {
		t.Fatal(fail)
	}
}
