package mpisim

import (
	"sync"
	"testing"

	"repro/internal/par"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// The decisive overlap test: real multi-rank runs where halo slots genuinely
// go stale between Post and Wait, stepped through the overlap-scheduled
// compiled plan, must reproduce the single-process serial trajectory BITWISE
// on owned entities — same guarantee the blocking rank solver gives. Any
// taint-threshold or depth-ordering mistake shows up here as a divergence
// (an interior slice would consume a stale or not-yet-unpacked halo value).
func TestOverlapRankSolverBitwiseMatchesSerial(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	steps := 3

	serial, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(serial)
	serial.Run(steps)

	for _, tc := range []struct {
		ranks   int
		workers int
	}{{2, 1}, {3, 1}, {2, 2}, {3, 4}} {
		d, err := Decompose(m, tc.ranks)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorld(tc.ranks)
		var mu sync.Mutex
		fail := ""
		report := func(msg string) {
			mu.Lock()
			if fail == "" {
				fail = msg
			}
			mu.Unlock()
		}
		w.Run(func(c *Comm) {
			pool := par.NewPool(tc.workers)
			defer pool.Close()
			rs, err := NewOverlapRankSolver(c, d, cfg, testcases.SetupTC5, pool)
			if err != nil {
				t.Error(err)
				return
			}
			rs.Run(steps)
			if rs.ExchangeCount != 4*steps {
				report("wrong exchange count")
				return
			}
			for lc := 0; lc < rs.Local.NOwnedCells; lc++ {
				if rs.S.State.H[lc] != serial.State.H[rs.Local.CellL2G[lc]] {
					report("overlap H diverges from serial")
					return
				}
			}
			for le := range rs.Local.EdgeL2G {
				if rs.Local.EdgeOwner[le] != int32(c.Rank) {
					continue
				}
				if rs.S.State.U[le] != serial.State.U[rs.Local.EdgeL2G[le]] {
					report("overlap U diverges from serial")
					return
				}
			}
		})
		if fail != "" {
			t.Fatalf("ranks=%d workers=%d: %s", tc.ranks, tc.workers, fail)
		}
	}
}

// GlobalMass through the overlap path must agree with the blocking rank
// solver's to the last bit at every step (same owned values, same reduction
// order).
func TestOverlapRankSolverMassMatchesBlocking(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	steps := 3
	const P = 2

	massOf := func(overlap bool) []float64 {
		d, err := Decompose(m, P)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorld(P)
		out := make([]float64, 0, steps)
		var mu sync.Mutex
		w.Run(func(c *Comm) {
			var rs *RankSolver
			var err error
			if overlap {
				rs, err = NewOverlapRankSolver(c, d, cfg, testcases.SetupTC5, nil)
			} else {
				rs, err = NewRankSolver(c, d, cfg, testcases.SetupTC5)
			}
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < steps; i++ {
				rs.Step()
				gm := rs.GlobalMass()
				if c.Rank == 0 {
					mu.Lock()
					out = append(out, gm)
					mu.Unlock()
				}
			}
		})
		return out
	}
	blocking := massOf(false)
	overlap := massOf(true)
	for i := range blocking {
		if blocking[i] != overlap[i] {
			t.Fatalf("step %d: mass %v (blocking) != %v (overlap)", i, blocking[i], overlap[i])
		}
	}
}
