package mpisim

import (
	"strconv"

	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/sw"
	"repro/internal/telemetry"
)

// HaloLayers is the halo depth of the distributed runs. Three layers cover
// the dependency radius of one RK substage (tend_u at an owned edge reaches
// pv/ke/h_edge values at most three cells away through the APVM and
// edgesOnEdge stencils), so owned values match the serial run exactly.
const HaloLayers = 3

// RankSolver is one rank of a distributed shallow-water run: a local solver
// over owned+halo entities with halo exchanges wired into the RK-4 driver's
// substep boundaries.
type RankSolver struct {
	Comm  *Comm
	Local *partition.Local
	Plan  *Plan
	S     *sw.Solver

	// ExchangeCount counts halo exchanges performed (4 per step).
	ExchangeCount int

	// HaloTimer, when set (EnableTelemetry), times every halo exchange of
	// this rank — including the tracer-field exchanges riding on the same
	// substep boundary. Nil means no timing overhead.
	HaloTimer *telemetry.Timer

	globalCells int
	globalEdges int
}

// EnableTelemetry attaches a per-rank halo-exchange timer
// (mpisim_rank<N>_halo_seconds) and the rank solver's kernel metrics to the
// registry. The registry is concurrency-safe, so all ranks of a World share
// one (kernel timers then aggregate across ranks). A tracer, by contrast,
// renders ranks interleaved on one track — pass tr non-nil on a single rank
// of interest only.
func (r *RankSolver) EnableTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	if reg != nil {
		r.HaloTimer = reg.Timer("mpisim_rank" + strconv.Itoa(r.Comm.Rank) + "_halo_seconds")
	}
	r.S.EnableTelemetry(tr, reg)
}

// Decomposition is the rank-independent setup of a distributed run,
// computed once and shared read-only by all ranks.
type Decomposition struct {
	Global *mesh.Mesh
	Part   *partition.Partition
	Locals []*partition.Local
	Plans  []*Plan
}

// Decompose partitions mesh g for nranks processes with the standard halo
// depth.
func Decompose(g *mesh.Mesh, nranks int) (*Decomposition, error) {
	return DecomposeLayers(g, nranks, HaloLayers)
}

// DecomposeLayers partitions with an explicit halo depth. Depths below
// HaloLayers are INVALID for production runs — the RK substage dependency
// radius exceeds them and owned values diverge from the serial trajectory —
// but they are useful for failure-injection tests and halo-cost studies.
func DecomposeLayers(g *mesh.Mesh, nranks, layers int) (*Decomposition, error) {
	part, err := partition.Bisect(g, nranks)
	if err != nil {
		return nil, err
	}
	locals := make([]*partition.Local, nranks)
	for r := 0; r < nranks; r++ {
		locals[r] = partition.Extract(g, part, r, layers)
	}
	return &Decomposition{
		Global: g,
		Part:   part,
		Locals: locals,
		Plans:  BuildPlans(g, locals),
	}, nil
}

// NewRankSolver builds the rank-local solver. cfg must be identical on all
// ranks (use the configuration derived from the global mesh). setup
// initializes the local state (e.g. testcases.SetupTC5); because the
// Williamson initializers are analytic functions of position, per-rank
// initialization bitwise matches the serial run.
func NewRankSolver(c *Comm, d *Decomposition, cfg sw.Config, setup func(*sw.Solver)) (*RankSolver, error) {
	l := d.Locals[c.Rank]
	s, err := sw.NewSolver(l.M, cfg)
	if err != nil {
		return nil, err
	}
	rs := &RankSolver{Comm: c, Local: l, Plan: d.Plans[c.Rank], S: s,
		globalCells: d.Global.NCells, globalEdges: d.Global.NEdges}
	s.PostSubstep = func(stage int, st *sw.State) {
		ctx := rs.HaloTimer.Start()
		c.exchange(rs.Plan, st.H, st.U)
		// Tracers are cell fields advanced in lockstep with h; their
		// provisional (stages 0-2) or accepted (stage 3) values cross with
		// the same plan. The edge slot is reused with u (already
		// exchanged) to keep message shapes uniform.
		for _, tr := range s.Tracers {
			c.exchange(rs.Plan, tr.HaloField(stage), st.U)
		}
		ctx.Stop()
		rs.ExchangeCount++
	}
	setup(s)
	// The analytic initial condition is already consistent across ranks;
	// exchange once anyway so any setup that isn't purely analytic still
	// starts consistent, then refresh the diagnostics.
	c.exchange(rs.Plan, s.State.H, s.State.U)
	s.Init()
	return rs, nil
}

// Step advances one RK-4 step with halo exchanges.
func (r *RankSolver) Step() { r.S.Step() }

// Run advances n steps.
func (r *RankSolver) Run(n int) {
	for i := 0; i < n; i++ {
		r.Step()
	}
}

// GlobalMass returns the globally integrated thickness (sum over owned
// cells of area*h, allreduced) — the distributed form of the mass invariant.
func (r *RankSolver) GlobalMass() float64 {
	local := 0.0
	for lc := 0; lc < r.Local.NOwnedCells; lc++ {
		local += r.S.M.AreaCell[lc] * r.S.State.H[lc]
	}
	return r.Comm.AllreduceSum(local)
}

// GatherCellField reconstructs the global cell field from the owned portions
// of all ranks (rank 0 returns the full field, others nil).
func (r *RankSolver) GatherCellField(local []float64) []float64 {
	// Pack owned values with their global indices encoded by position:
	// send [globalIdx0, val0, globalIdx1, val1, ...].
	if r.Comm.Rank != 0 {
		buf := r.Comm.w.getBuf(2 * r.Local.NOwnedCells)
		for lc := 0; lc < r.Local.NOwnedCells; lc++ {
			buf[2*lc] = float64(r.Local.CellL2G[lc])
			buf[2*lc+1] = local[lc]
		}
		r.Comm.sendOwned(0, buf)
		return nil
	}
	out := make([]float64, r.globalCells)
	for lc := 0; lc < r.Local.NOwnedCells; lc++ {
		out[r.Local.CellL2G[lc]] = local[lc]
	}
	for from := 1; from < r.Comm.Size(); from++ {
		buf := r.Comm.Recv(from)
		for i := 0; i+1 < len(buf); i += 2 {
			out[int(buf[i])] = buf[i+1]
		}
		r.Comm.Release(buf)
	}
	return out
}

// GatherEdgeField reconstructs the global edge field from the portions each
// rank OWNS (EdgeOwner — edges straddling a cut belong to exactly one rank),
// same protocol as GatherCellField: rank 0 returns the full field, others
// nil.
func (r *RankSolver) GatherEdgeField(local []float64) []float64 {
	if r.Comm.Rank != 0 {
		buf := r.Comm.w.getBuf(2 * len(r.Local.EdgeL2G))[:0]
		for le, owner := range r.Local.EdgeOwner {
			if int(owner) == r.Comm.Rank {
				buf = append(buf, float64(r.Local.EdgeL2G[le]), local[le])
			}
		}
		r.Comm.sendOwned(0, buf)
		return nil
	}
	out := make([]float64, r.globalEdges)
	for le, owner := range r.Local.EdgeOwner {
		if owner == 0 {
			out[r.Local.EdgeL2G[le]] = local[le]
		}
	}
	for from := 1; from < r.Comm.Size(); from++ {
		buf := r.Comm.Recv(from)
		for i := 0; i+1 < len(buf); i += 2 {
			out[int(buf[i])] = buf[i+1]
		}
		r.Comm.Release(buf)
	}
	return out
}
