package mpisim

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sw"
	"repro/internal/testcases"
)

var cachedMesh *mesh.Mesh

func mesh4(t testing.TB) *mesh.Mesh {
	if cachedMesh == nil {
		var err error
		cachedMesh, err = mesh.Build(4, mesh.Options{LloydIterations: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cachedMesh
}

func TestSendRecvOrdering(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank == 0 {
			c.Send(1, []float64{1})
			c.Send(1, []float64{2})
			c.Send(1, []float64{3})
		} else {
			for want := 1.0; want <= 3; want++ {
				if got := c.Recv(0)[0]; got != want {
					t.Errorf("got %v want %v", got, want)
				}
			}
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank == 0 {
			buf := []float64{42}
			c.Send(1, buf)
			buf[0] = -1 // must not affect the message
		} else {
			if got := c.Recv(0)[0]; got != 42 {
				t.Errorf("message aliased sender buffer: %v", got)
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	for _, size := range []int{1, 2, 5, 8} {
		w := NewWorld(size)
		var mu sync.Mutex
		sums := map[int]float64{}
		maxes := map[int]float64{}
		w.Run(func(c *Comm) {
			s := c.AllreduceSum(float64(c.Rank + 1))
			m := c.AllreduceMax(float64(c.Rank + 1))
			mu.Lock()
			sums[c.Rank] = s
			maxes[c.Rank] = m
			mu.Unlock()
		})
		want := float64(size*(size+1)) / 2
		for r, s := range sums {
			if s != want {
				t.Errorf("size %d rank %d sum %v want %v", size, r, s, want)
			}
			if maxes[r] != float64(size) {
				t.Errorf("size %d rank %d max %v want %v", size, r, maxes[r], size)
			}
		}
	}
}

func TestDecomposePlansConsistent(t *testing.T) {
	m := mesh4(t)
	d, err := Decompose(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r, plan := range d.Plans {
		for _, peer := range plan.Peers {
			if peer == r {
				t.Fatal("self in peers")
			}
			// My recv list from peer must match peer's send list to me, in
			// length and referenced global entities.
			mine := plan.RecvCells[peer]
			theirs := d.Plans[peer].SendCells[r]
			if len(mine) != len(theirs) {
				t.Fatalf("cell list length mismatch %d<-%d", r, peer)
			}
			for i := range mine {
				gMine := d.Locals[r].CellL2G[mine[i]]
				gTheirs := d.Locals[peer].CellL2G[theirs[i]]
				if gMine != gTheirs {
					t.Fatalf("cell exchange order mismatch %d<-%d at %d", r, peer, i)
				}
			}
			me := plan.RecvEdges[peer]
			them := d.Plans[peer].SendEdges[r]
			if len(me) != len(them) {
				t.Fatalf("edge list length mismatch %d<-%d", r, peer)
			}
			for i := range me {
				if d.Locals[r].EdgeL2G[me[i]] != d.Locals[peer].EdgeL2G[them[i]] {
					t.Fatalf("edge exchange order mismatch %d<-%d at %d", r, peer, i)
				}
			}
		}
		if plan.HaloBytes() <= 0 {
			t.Errorf("rank %d has empty halo", r)
		}
	}
}

func TestHaloExchangeDeliversOwnerValues(t *testing.T) {
	m := mesh4(t)
	d, err := Decompose(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		l := d.Locals[c.Rank]
		// Cell field = global index where owned, -1 in halo.
		hc := make([]float64, l.M.NCells)
		he := make([]float64, l.M.NEdges)
		for lc := range hc {
			if lc < l.NOwnedCells {
				hc[lc] = float64(l.CellL2G[lc])
			} else {
				hc[lc] = -1
			}
		}
		for le := range he {
			if l.EdgeOwner[le] == int32(c.Rank) {
				he[le] = float64(l.EdgeL2G[le])
			} else {
				he[le] = -1
			}
		}
		c.exchange(d.Plans[c.Rank], hc, he)
		for lc, v := range hc {
			if v != float64(l.CellL2G[lc]) {
				t.Errorf("rank %d: cell %d got %v want %d", c.Rank, lc, v, l.CellL2G[lc])
				return
			}
		}
		for le, v := range he {
			if v != float64(l.EdgeL2G[le]) {
				t.Errorf("rank %d: edge %d got %v want %d", c.Rank, le, v, l.EdgeL2G[le])
				return
			}
		}
	})
}

// TestDistributedBitwiseMatchesSerial is the gold correctness test of the
// whole distributed layer: a 4-rank run with halo exchanges must reproduce
// the serial trajectory bitwise on every owned cell and edge.
func TestDistributedBitwiseMatchesSerial(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	steps := 4

	serial, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(serial)
	serial.Run(steps)

	const P = 4
	d, err := Decompose(m, P)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(P)
	var mu sync.Mutex
	mismatch := ""
	w.Run(func(c *Comm) {
		rs, err := NewRankSolver(c, d, cfg, testcases.SetupTC5)
		if err != nil {
			t.Error(err)
			return
		}
		rs.Run(steps)
		l := rs.Local
		for lc := 0; lc < l.NOwnedCells; lc++ {
			if rs.S.State.H[lc] != serial.State.H[l.CellL2G[lc]] {
				mu.Lock()
				mismatch = "H mismatch"
				mu.Unlock()
				return
			}
		}
		for le := range l.EdgeL2G {
			if l.EdgeOwner[le] != int32(c.Rank) {
				continue
			}
			if rs.S.State.U[le] != serial.State.U[l.EdgeL2G[le]] {
				mu.Lock()
				mismatch = "U mismatch"
				mu.Unlock()
				return
			}
		}
		if rs.ExchangeCount != ExchangesPerStep*steps {
			mu.Lock()
			mismatch = "unexpected exchange count"
			mu.Unlock()
		}
	})
	if mismatch != "" {
		t.Fatal(mismatch)
	}
}

func TestDistributedMassConserved(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	const P = 3
	d, err := Decompose(m, P)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		rs, err := NewRankSolver(c, d, cfg, testcases.SetupTC2)
		if err != nil {
			t.Error(err)
			return
		}
		m0 := rs.GlobalMass()
		rs.Run(5)
		m1 := rs.GlobalMass()
		if rel := math.Abs(m1-m0) / m0; rel > 1e-13 {
			t.Errorf("rank %d sees mass drift %v", c.Rank, rel)
		}
	})
}

func TestGatherCellField(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	const P = 3
	d, _ := Decompose(m, P)
	w := NewWorld(P)
	var got []float64
	var mu sync.Mutex
	w.Run(func(c *Comm) {
		rs, err := NewRankSolver(c, d, cfg, testcases.SetupTC2)
		if err != nil {
			t.Error(err)
			return
		}
		g := rs.GatherCellField(rs.S.State.H)
		if c.Rank == 0 {
			mu.Lock()
			got = g
			mu.Unlock()
		} else if g != nil {
			t.Error("non-root rank returned gathered field")
		}
	})
	if len(got) != m.NCells {
		t.Fatalf("gathered %d cells", len(got))
	}
	ref, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC2(ref)
	for c := range got {
		if got[c] != ref.State.H[c] {
			t.Fatalf("gathered field differs at %d", c)
		}
	}
}

func TestStrongScalingModelShape(t *testing.T) {
	// Figure 8: near-ideal CPU scaling; hybrid faster everywhere but with
	// degrading efficiency on the small mesh at high process counts.
	procs := []int{1, 2, 4, 8, 16, 32, 64}
	small := StrongScaling(655362, procs)
	for i, pt := range small {
		if pt.HybridTime >= pt.CPUTime {
			t.Errorf("P=%d: hybrid %v not faster than CPU %v", pt.Procs, pt.HybridTime, pt.CPUTime)
		}
		if i > 0 {
			if pt.CPUTime >= small[i-1].CPUTime {
				t.Errorf("CPU time not decreasing at P=%d", pt.Procs)
			}
		}
	}
	cpuEff := ParallelEfficiency(small, func(p ScalingPoint) float64 { return p.CPUTime })
	hybEff := ParallelEfficiency(small, func(p ScalingPoint) float64 { return p.HybridTime })
	if cpuEff[len(cpuEff)-1] < 0.8 {
		t.Errorf("CPU efficiency at 64 procs %v, paper shows near-ideal", cpuEff[len(cpuEff)-1])
	}
	// The paper: "parallel efficiency degrades severely when scaling to
	// larger numbers of MPI processes" for the hybrid on the 30-km mesh.
	if hybEff[len(hybEff)-1] > 0.75 {
		t.Errorf("hybrid efficiency at 64 procs %v; paper shows degradation on 30-km mesh", hybEff[len(hybEff)-1])
	}
	// On the large mesh the hybrid keeps much better efficiency (Fig 8b).
	large := StrongScaling(2621442, procs)
	hybEffLarge := ParallelEfficiency(large, func(p ScalingPoint) float64 { return p.HybridTime })
	if hybEffLarge[len(hybEffLarge)-1] <= hybEff[len(hybEff)-1] {
		t.Error("hybrid efficiency not better on the larger mesh")
	}
}

func TestWeakScalingModelFlat(t *testing.T) {
	// Figure 9: both codes nearly flat at 40962 cells/process.
	procs := []int{1, 4, 16, 64}
	pts := WeakScaling(40962, procs)
	cpu1, hyb1 := pts[0].CPUTime, pts[0].HybridTime
	for _, pt := range pts[1:] {
		if pt.CPUTime > cpu1*1.15 {
			t.Errorf("CPU weak scaling not flat: %v vs %v", pt.CPUTime, cpu1)
		}
		if pt.HybridTime > hyb1*1.35 {
			t.Errorf("hybrid weak scaling not flat: %v vs %v", pt.HybridTime, hyb1)
		}
		if pt.HybridTime >= pt.CPUTime {
			t.Error("hybrid slower than CPU in weak scaling")
		}
	}
	// Paper anchors: CPU ~0.27 s, hybrid ~0.045-0.05 s per step.
	if cpu1 < 0.2 || cpu1 > 0.36 {
		t.Errorf("weak-scaling CPU anchor %v, paper 0.271", cpu1)
	}
	if hyb1 < 0.03 || hyb1 > 0.08 {
		t.Errorf("weak-scaling hybrid anchor %v, paper 0.045", hyb1)
	}
}

func TestNewWorldMinimumSize(t *testing.T) {
	w := NewWorld(0)
	if w.Size != 1 {
		t.Error("world size floor")
	}
}
