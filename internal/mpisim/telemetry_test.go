package mpisim

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sw"
	"repro/internal/telemetry"
	"repro/internal/testcases"
)

// Every rank's halo exchanges are timed individually on a shared registry.
func TestRankSolverHaloTimers(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	const P = 3
	steps := 2
	d, err := Decompose(m, P)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	w := NewWorld(P)
	w.Run(func(c *Comm) {
		rs, err := NewRankSolver(c, d, cfg, testcases.SetupTC5)
		if err != nil {
			t.Error(err)
			return
		}
		rs.EnableTelemetry(nil, reg)
		rs.Run(steps)
		// 4 substep exchanges per step, all after telemetry was enabled
		// (the setup-time exchange in NewRankSolver predates the timer).
		want := int64(4 * steps)
		tm := reg.Timer("mpisim_rank" + strconv.Itoa(c.Rank) + "_halo_seconds")
		if got := tm.Count(); got != want {
			t.Errorf("rank %d halo timer count = %d, want %d", c.Rank, got, want)
		}
		if tm.Total() <= 0 {
			t.Errorf("rank %d halo timer accumulated no time", c.Rank)
		}
	})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < P; r++ {
		if !strings.Contains(b.String(), "mpisim_rank"+strconv.Itoa(r)+"_halo_seconds_count") {
			t.Errorf("prometheus output missing rank %d halo timer", r)
		}
	}
}
