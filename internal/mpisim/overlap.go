package mpisim

import (
	"repro/internal/par"
	"repro/internal/sw"
)

// NewOverlapRankSolver builds a rank solver whose step runs through an
// overlap-scheduled compiled plan (sw.NewOverlapPlanRunner): instead of the
// blocking PostSubstep exchange, each substage posts its halo sends, computes
// the interior of the diagnostics while messages are in flight, then unpacks
// and finishes the boundary slices. The communication substrate is the same
// channel world; internal/dist supplies the TCP equivalent. pool provides
// the rank-local worker team (nil = serial); tracers are not supported on
// the overlap path (the plan step requires none).
func NewOverlapRankSolver(c *Comm, d *Decomposition, cfg sw.Config, setup func(*sw.Solver), pool *par.Pool) (*RankSolver, error) {
	l := d.Locals[c.Rank]
	s, err := sw.NewSolver(l.M, cfg)
	if err != nil {
		return nil, err
	}
	rs := &RankSolver{Comm: c, Local: l, Plan: d.Plans[c.Rank], S: s,
		globalCells: d.Global.NCells, globalEdges: d.Global.NEdges}
	p := rs.Plan
	ov := &sw.Overlap{
		Post: func(stage int, st *sw.State) {
			ctx := rs.HaloTimer.Start()
			for _, peer := range p.Peers {
				buf := c.w.getBuf(p.SendLen(peer))
				p.PackSend(peer, st.H, st.U, buf)
				c.sendOwned(peer, buf)
			}
			ctx.Stop()
		},
		Wait: func(stage int, st *sw.State) {
			ctx := rs.HaloTimer.Start()
			for _, peer := range p.Peers {
				buf := c.Recv(peer)
				p.UnpackRecv(peer, buf, st.H, st.U)
				c.Release(buf)
			}
			ctx.Stop()
			rs.ExchangeCount++
		},
		InteriorCells:    l.InteriorCells,
		InteriorEdges:    l.InteriorEdges,
		InteriorVertices: l.InteriorVertices,
	}
	runner, err := sw.NewOverlapPlanRunner(s, pool, ov)
	if err != nil {
		return nil, err
	}
	s.Runner = runner
	setup(s)
	// Same bootstrap as the blocking rank solver: one exchange so any
	// not-purely-analytic setup still starts consistent, then refresh the
	// diagnostics (full-range kernel plans — halos are consistent here).
	c.exchange(p, s.State.H, s.State.U)
	s.Init()
	return rs, nil
}
