package conform

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/dist"
)

// DistProc is the REAL-process distributed strategy: it shells out to a
// built cmd/swrank binary, which launches `ranks` OS processes that
// rendezvous over TCP, exchange multi-layer halos, and write the gathered
// final state plus mass series to a result file this strategy reads back.
// Owned-entity arithmetic is identical to the gather baseline — the
// distribution re-partitions index ranges and the halo exchange transports
// bitwise values — so the strategy is Exact (held to the ≤4-ULP band).
//
// Constraints that follow from crossing a process boundary:
//   - Only the named cases are supported (the processes rebuild the case
//     from its name); the case's mesh MUST be dist.DefaultMesh(level).
//   - Stage recording is unavailable (snapshots live rank-local).
//   - The strategy needs a prebuilt binary, so it is NOT part of
//     AllStrategies; the dist conformance suite builds one and constructs
//     the strategy explicitly.
// With reorder, every rank runs on the locality-renumbered mesh (swrank
// -reorder: SFC partition, renumbered rank-local kernels) and rank 0
// converts the gathered fields back to canonical numbering before writing
// the result — so the comparison against the canonical baseline stays a
// straight state compare at the same exact tolerance.
func DistProc(bin string, ranks, level int, overlap, reorder bool) Strategy {
	mode := "block"
	if overlap {
		mode = "ovl"
	}
	name := fmt.Sprintf("dist-p%d-%s", ranks, mode)
	if reorder {
		name += "+reorder"
	}
	return Strategy{Name: name, Exact: true, run: func(c *Case, _ bool) (*Result, error) {
		if _, err := NamedCase(c.Name, c.Mesh, c.Steps); err != nil {
			return nil, fmt.Errorf("dist strategy supports only named cases: %w", err)
		}
		tmp, err := os.MkdirTemp("", "swrank-conform-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		out := filepath.Join(tmp, "result.bin")
		cmd := exec.Command(bin,
			"-launch", fmt.Sprint(ranks),
			"-case", c.Name,
			"-level", fmt.Sprint(level),
			"-steps", fmt.Sprint(c.Steps),
			"-overlap="+fmt.Sprint(overlap),
			"-reorder="+fmt.Sprint(reorder),
			"-timeout", (2 * time.Minute).String(),
			"-out", out,
		)
		if outBytes, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("swrank launch failed: %w\n%s", err, outBytes)
		}
		r, err := dist.ReadResult(out)
		if err != nil {
			return nil, err
		}
		if len(r.H) != c.Mesh.NCells || len(r.U) != c.Mesh.NEdges {
			return nil, fmt.Errorf("result fields %d/%d, mesh has %d/%d — level mismatch?",
				len(r.H), len(r.U), c.Mesh.NCells, c.Mesh.NEdges)
		}
		return &Result{H: r.H, U: r.U, Mass: r.Mass}, nil
	}}
}
