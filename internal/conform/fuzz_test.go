package conform

import "testing"

// FuzzStepEquivalence is the fuzz face of the conformance harness: a seed
// picks a jittered mesh, a physics configuration and a random physical state
// (random.go), and one RK-4 step must agree between the branch-free gather
// baseline and (a) the Algorithm-3 branchy stepper bitwise, (b) the threaded
// pool bitwise, (c) the data-flow-compiled plan bitwise, and (d) the
// Algorithm-2 scatter stepper within the roundoff reordering band. The
// checked-in corpus under testdata/fuzz runs on every
// plain `go test`; `go test -fuzz=FuzzStepEquivalence ./internal/conform`
// explores further seeds.
func FuzzStepEquivalence(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(7777))
	f.Fuzz(func(t *testing.T, seed uint64) {
		c := RandomCase(seed, 2, 1)
		base := Baseline()
		ref, err := base.Run(c, true)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		for _, s := range []Strategy{BranchyGather(), Threaded(2), Plan(2), ScatterRef()} {
			res, err := s.Run(c, true)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			d, ok := CompareResults(ref, res, PairTolerance(base, s, c.Steps))
			if !ok {
				t.Errorf("%s diverged on %s: %v", s.Name, c.Name, d)
			}
		}
	})
}
