package conform

import (
	"repro/internal/mesh"
	"repro/internal/sw"
)

// This file is the Algorithm-3 reference: the regularity-aware GATHER loops
// (traverse output elements, gather incident values) with the orientation
// sign resolved by a CONDITIONAL per incident edge — the intermediate form
// between the original scatter loops (Algorithm 2) and the branch-free ±1
// label-matrix form the solver kernels use (Algorithm 4). Because replacing
// a branch by a multiplication with ±1.0 is exact in IEEE arithmetic, a
// branchy trajectory must match the solver's branch-free one to the last
// bit; the conformance suite holds the pair to ExactTol.

// branchyDiagnostics computes every compute_solve_diagnostics field for
// state st into d in Algorithm-3 form.
func branchyDiagnostics(s *sw.Solver, st *sw.State, d *sw.Diagnostics) {
	m := s.M
	h, u := st.H, st.U

	if s.Cfg.HighOrderThickness {
		for c := 0; c < m.NCells; c++ {
			base := c * mesh.MaxEdges
			n := int(m.NEdgesOnCell[c])
			acc := 0.0
			for j := 0; j < n; j++ {
				e := m.EdgesOnCell[base+j]
				nb := m.CellsOnCell[base+j]
				dc := m.DcEdge[e]
				acc += 2 * (h[nb] - h[c]) / (dc * dc)
			}
			d.D2fdx2Cell[c] = acc / float64(n)
		}
		for e := 0; e < m.NEdges; e++ {
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			dc := m.DcEdge[e]
			d.HEdge[e] = 0.5*(h[c1]+h[c2]) - dc*dc/12*0.5*(d.D2fdx2Cell[c1]+d.D2fdx2Cell[c2])
		}
	} else {
		for e := 0; e < m.NEdges; e++ {
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			d.HEdge[e] = 0.5 * (h[c1] + h[c2])
		}
	}

	// Vorticity: vertex-order gather, sign by conditional (branchy E).
	for v := 0; v < m.NVertices; v++ {
		base := v * mesh.VertexDegree
		circ := 0.0
		for j := 0; j < mesh.VertexDegree; j++ {
			e := m.EdgesOnVertex[base+j]
			q := m.DcEdge[e] * u[e]
			if m.VerticesOnEdge[2*e+1] == int32(v) {
				circ += q
			} else {
				circ -= q
			}
		}
		d.Vorticity[v] = circ / m.AreaTriangle[v]
	}

	// Divergence: cell-order gather, sign by conditional (branchy A2).
	for c := 0; c < m.NCells; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			flux := m.DvEdge[e] * u[e]
			if m.CellsOnEdge[2*e] == int32(c) {
				acc += flux
			} else {
				acc -= flux
			}
		}
		d.Divergence[c] = acc / m.AreaCell[c]
	}

	// Kinetic energy: cell-order gather (sign-free; same shape as A3).
	for c := 0; c < m.NCells; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			acc += 0.25 * m.DcEdge[e] * m.DvEdge[e] * u[e] * u[e]
		}
		d.KE[c] = acc / m.AreaCell[c]
	}

	// Tangential velocity (F; gather already).
	for e := 0; e < m.NEdges; e++ {
		base := e * mesh.MaxEdgesOnEdge
		n := int(m.NEdgesOnEdge[e])
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += m.WeightsOnEdge[base+j] * u[m.EdgesOnEdge[base+j]]
		}
		d.V[e] = acc
	}

	// h_vertex, pv_vertex (G; gather already).
	for v := 0; v < m.NVertices; v++ {
		base := v * mesh.VertexDegree
		acc := 0.0
		for j := 0; j < mesh.VertexDegree; j++ {
			acc += m.KiteAreasOnVertex[base+j] * h[m.CellsOnVertex[base+j]]
		}
		d.HVertex[v] = acc / m.AreaTriangle[v]
		d.PVVertex[v] = (m.FVertex[v] + d.Vorticity[v]) / d.HVertex[v]
	}

	// pv_cell, vorticity_cell: cell-order gather with the kite weight found
	// by SEARCHING the vertex's cell list (branchy C2/H2 — the solver
	// precomputes this lookup into its label-matrix-style weight table).
	for c := 0; c < m.NCells; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		accPV, accVort := 0.0, 0.0
		for j := 0; j < n; j++ {
			v := m.VerticesOnCell[base+j]
			vb := int(v) * mesh.VertexDegree
			for k := 0; k < mesh.VertexDegree; k++ {
				if m.CellsOnVertex[vb+k] == int32(c) {
					w := m.KiteAreasOnVertex[vb+k] / m.AreaCell[c]
					accPV += w * d.PVVertex[v]
					accVort += w * d.Vorticity[v]
					break
				}
			}
		}
		d.PVCell[c] = accPV
		d.VorticityCell[c] = accVort
	}

	// pv_edge (H1) with APVM correction (B2); edge-order gathers.
	for e := 0; e < m.NEdges; e++ {
		v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
		d.PVEdge[e] = 0.5 * (d.PVVertex[v1] + d.PVVertex[v2])
	}
	if s.Cfg.APVM != 0 {
		coef := s.Cfg.APVM * s.Cfg.Dt
		for e := 0; e < m.NEdges; e++ {
			v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			gradPVt := (d.PVVertex[v2] - d.PVVertex[v1]) / m.DvEdge[e]
			gradPVn := (d.PVCell[c2] - d.PVCell[c1]) / m.DcEdge[e]
			d.PVEdge[e] -= coef * (d.V[e]*gradPVt + u[e]*gradPVn)
		}
	}
}

// branchyTend computes compute_tend in Algorithm-3 form: tend_h as a
// cell-order gather with a conditional sign, tend_u in its (already
// edge-order) vector-invariant form.
func branchyTend(s *sw.Solver, st *sw.State, d *sw.Diagnostics, td *sw.Tendencies) {
	m := s.M
	u, h := st.U, st.H

	for c := 0; c < m.NCells; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			flux := m.DvEdge[e] * d.HEdge[e] * u[e]
			if m.CellsOnEdge[2*e] == int32(c) {
				acc += flux
			} else {
				acc -= flux
			}
		}
		td.H[c] = -acc / m.AreaCell[c]
	}

	if s.Cfg.AdvectionOnly {
		// The enforce_boundary_edge slot (Rayleigh friction) still runs
		// after the zeroed dynamic tendency, mirroring the kernel sequence.
		for e := 0; e < m.NEdges; e++ {
			td.U[e] = 0
		}
		if r := s.Cfg.RayleighFriction; r != 0 {
			for e := 0; e < m.NEdges; e++ {
				td.U[e] -= r * u[e]
			}
		}
		return
	}
	g := s.Cfg.Gravity
	b := s.B
	for e := 0; e < m.NEdges; e++ {
		base := e * mesh.MaxEdgesOnEdge
		n := int(m.NEdgesOnEdge[e])
		q := 0.0
		for j := 0; j < n; j++ {
			eoe := m.EdgesOnEdge[base+j]
			workPV := 0.5 * (d.PVEdge[e] + d.PVEdge[eoe])
			q += m.WeightsOnEdge[base+j] * u[eoe] * d.HEdge[eoe] * workPV
		}
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		grad := (d.KE[c2] - d.KE[c1] + g*(h[c2]+b[c2]-h[c1]-b[c1])) / m.DcEdge[e]
		td.U[e] = q - grad
	}
	if nu := s.Cfg.Viscosity; nu != 0 {
		for e := 0; e < m.NEdges; e++ {
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
			td.U[e] += nu * ((d.Divergence[c2]-d.Divergence[c1])/m.DcEdge[e] -
				(d.Vorticity[v2]-d.Vorticity[v1])/m.DvEdge[e])
		}
	}
	if r := s.Cfg.RayleighFriction; r != 0 {
		for e := 0; e < m.NEdges; e++ {
			td.U[e] -= r * u[e]
		}
	}
}
