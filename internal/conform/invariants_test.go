package conform

import (
	"math"
	"testing"
)

// TestInvariantDriftAllStrategies is the metamorphic layer of the harness:
// whatever the execution strategy, a short trajectory must conserve mass to
// roundoff and keep total energy and potential enstrophy drifts inside the
// documented RK-4 bands (the conserved quantities of §2.A). Distributed
// strategies report only the global mass series; the others the full
// invariant set.
func TestInvariantDriftAllStrategies(t *testing.T) {
	const steps = 5
	c, err := NamedCase("tc2", testMesh, steps)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllStrategies() {
		// Reduced-precision strategies conserve to their own roundoff, not
		// float64's: scale the drift limits by the documented per-step band
		// (fast32: mass to ~1e-9 observed vs the 1e-12 float64 limit).
		massLimit, energyLimit := 1e-12, 1e-7
		if s.RelBand > 0 {
			massLimit = s.RelBand * float64(steps)
			energyLimit = s.RelBand * float64(steps)
		}
		res, err := s.Run(c, false)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if len(res.Mass) != steps+1 {
			t.Errorf("%s: %d mass samples, want %d", s.Name, len(res.Mass), steps+1)
			continue
		}
		m0 := res.Mass[0]
		for i, m := range res.Mass {
			if drift := math.Abs(m-m0) / math.Abs(m0); drift > massLimit {
				t.Errorf("%s: mass drift %.3e at step %d (limit %.0e)", s.Name, drift, i, massLimit)
				break
			}
		}
		if len(res.Inv) == 0 {
			continue // distributed: rank-local diagnostics, mass only
		}
		i0 := res.Inv[0]
		for i, inv := range res.Inv {
			if inv.MinH <= 0 {
				t.Errorf("%s: non-positive thickness %v at step %d", s.Name, inv.MinH, i)
				break
			}
			if d := math.Abs(inv.TotalEnergy-i0.TotalEnergy) / math.Abs(i0.TotalEnergy); d > energyLimit {
				t.Errorf("%s: energy drift %.3e at step %d (limit %.0e)", s.Name, d, i, energyLimit)
				break
			}
			if d := math.Abs(inv.PotentialEnstrophy-i0.PotentialEnstrophy) /
				math.Abs(i0.PotentialEnstrophy); d > 1e-4 {
				t.Errorf("%s: enstrophy drift %.3e at step %d (limit 1e-4)", s.Name, d, i)
				break
			}
		}
	}
}

// TestInvariantDriftRandomCase runs the same metamorphic checks on a seeded
// random case (jittered mesh, random physical state) for the reference-form
// steppers, which share no kernel code with the solver.
func TestInvariantDriftRandomCase(t *testing.T) {
	c := RandomCase(99, 2, 3)
	for _, s := range []Strategy{Baseline(), BranchyGather(), ScatterRef()} {
		res, err := s.Run(c, false)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		m0 := res.Mass[0]
		for i, m := range res.Mass {
			if drift := math.Abs(m-m0) / math.Abs(m0); drift > 1e-12 {
				t.Errorf("%s: mass drift %.3e at step %d", s.Name, drift, i)
				break
			}
		}
		for i, inv := range res.Inv {
			if inv.MinH <= 0 {
				t.Errorf("%s: non-positive thickness at step %d", s.Name, i)
			}
		}
	}
}

// TestMassSeriesAgreesAcrossStrategies cross-checks the PER-STEP mass series
// between the serial baseline and a distributed run: the distributed mass is
// an allreduce over rank partial sums (different summation order), so it must
// agree to relative roundoff, not bitwise.
func TestMassSeriesAgreesAcrossStrategies(t *testing.T) {
	c, err := NamedCase("tc5", testMesh, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Baseline().Run(c, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{MPI(2), MPI(4)} {
		res, err := s.Run(c, false)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(res.Mass) != len(ref.Mass) {
			t.Fatalf("%s: %d mass samples, want %d", s.Name, len(res.Mass), len(ref.Mass))
		}
		for i := range ref.Mass {
			if d := math.Abs(res.Mass[i]-ref.Mass[i]) / math.Abs(ref.Mass[i]); d > 1e-12 {
				t.Errorf("%s: mass series off by %.3e at step %d", s.Name, d, i)
			}
		}
	}
}
