package conform

import (
	"fmt"
	"math"
)

// ULPDist returns the distance between a and b in units in the last place:
// the number of representable float64 values strictly between them, plus one
// when they differ. Equal values (including +0 vs +0) give 0; +0 vs -0 give
// 1; any NaN gives MaxUint64.
func ULPDist(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if math.IsNaN(a) && math.IsNaN(b) {
			return 0
		}
		return math.MaxUint64
	}
	ia, ib := orderedBits(a), orderedBits(b)
	if ia > ib {
		ia, ib = ib, ia
	}
	return ib - ia
}

// orderedBits maps a float64 onto a uint64 that is monotonically increasing
// in the float ordering (the standard bias trick: flip all bits of negatives,
// set the sign bit of positives), so ULP distance is integer subtraction.
func orderedBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b // negative range, reversed
	}
	return b | 1<<63
}

// Diff summarizes the discrepancy between two sets of state vectors.
type Diff struct {
	MaxULP  uint64  // max ULP distance over all compared entries
	RelL2   float64 // ||a-b||_2 / ||a||_2, worst field
	RelLInf float64 // max|a-b| / max|a|, worst field
	MaxAbs  float64 // max|a-b| over all entries

	// Location of the worst (max-ULP) entry.
	Var   string
	Index int

	// First divergence in trajectory order when stage snapshots were
	// compared (CompareResults); -1 when unavailable.
	Step, Stage int
}

func (d Diff) String() string {
	s := fmt.Sprintf("max_ulp=%d rel_l2=%.3e rel_linf=%.3e max_abs=%.3e at %s[%d]",
		d.MaxULP, d.RelL2, d.RelLInf, d.MaxAbs, d.Var, d.Index)
	if d.Step >= 0 {
		s += fmt.Sprintf(" (first divergence: step %d stage %d)", d.Step, d.Stage)
	}
	return s
}

// accumulate folds the comparison of one named field pair into d.
func (d *Diff) accumulate(name string, a, b []float64) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sumD2, sumA2, maxD, maxA float64
	for i := 0; i < n; i++ {
		if u := ULPDist(a[i], b[i]); u > d.MaxULP {
			d.MaxULP = u
			d.Var = name
			d.Index = i
		}
		diff := math.Abs(a[i] - b[i])
		sumD2 += diff * diff
		sumA2 += a[i] * a[i]
		if diff > maxD {
			maxD = diff
		}
		if v := math.Abs(a[i]); v > maxA {
			maxA = v
		}
	}
	if maxD > d.MaxAbs {
		d.MaxAbs = maxD
	}
	if sumA2 > 0 {
		if r := math.Sqrt(sumD2 / sumA2); r > d.RelL2 {
			d.RelL2 = r
		}
	} else if sumD2 > 0 {
		d.RelL2 = math.Inf(1)
	}
	if maxA > 0 {
		if r := maxD / maxA; r > d.RelLInf {
			d.RelLInf = r
		}
	} else if maxD > 0 {
		d.RelLInf = math.Inf(1)
	}
	if len(a) != len(b) {
		// Length mismatch is a hard divergence (different meshes?).
		d.MaxULP = math.MaxUint64
		d.Var = name
		d.Index = n
	}
}

// CompareStates compares two (h, u) state pairs.
func CompareStates(ah, au, bh, bu []float64) Diff {
	d := Diff{Step: -1, Stage: -1}
	d.accumulate("h", ah, bh)
	d.accumulate("u", au, bu)
	return d
}

// Tolerance is the acceptance band for one strategy pair. A comparison
// passes when its max-ULP distance is within MaxULP, OR (when RelLInf is
// nonzero) its relative l-inf error is within RelLInf — the ULP bound serves
// the bitwise-equivalent strategies, the relative bound the
// roundoff-reordered ones.
type Tolerance struct {
	MaxULP  uint64
	RelLInf float64
}

// Accepts reports whether d is within the tolerance.
func (t Tolerance) Accepts(d Diff) bool {
	if d.MaxULP <= t.MaxULP {
		return true
	}
	return t.RelLInf > 0 && d.RelLInf <= t.RelLInf && d.RelL2 <= t.RelLInf
}

// ExactTol is the tolerance for strategy pairs that compute every output
// element with identical arithmetic (gather forms, threaded chunking, hybrid
// range splits, distributed owned points): bitwise on amd64, with a few ULP
// of slack for architectures that contract multiply-adds.
var ExactTol = Tolerance{MaxULP: 4}

// ReorderTol returns the tolerance for pairs involving a summation-reordered
// strategy (the Algorithm-2 scatter reference): the paper's own "consistent
// within the machine precision" band (Fig. 5c), grown mildly with trajectory
// length.
func ReorderTol(steps int) Tolerance {
	if steps < 1 {
		steps = 1
	}
	return Tolerance{MaxULP: 4, RelLInf: 1e-11 * float64(steps)}
}

// PairTolerance returns the acceptance band for comparing strategies a and b
// over a trajectory of the given length. A reduced-precision strategy in the
// pair (nonzero RelBand) widens the band to its documented per-step drift;
// two exact strategies are held to bitwise-level ULP distance; otherwise the
// summation-reordering band applies.
func PairTolerance(a, b Strategy, steps int) Tolerance {
	if band := math.Max(a.RelBand, b.RelBand); band > 0 {
		if steps < 1 {
			steps = 1
		}
		return Tolerance{MaxULP: 4, RelLInf: band * float64(steps+1)}
	}
	if a.Exact && b.Exact {
		return ExactTol
	}
	return ReorderTol(steps)
}

// CompareResults compares two trajectories: the final states always, and —
// when the comparison fails and both results carry stage snapshots — walks
// the snapshots in time order to locate the FIRST RK substep where the pair
// left the tolerance band (reported via Diff.Step/Stage/Var/Index).
func CompareResults(a, b *Result, tol Tolerance) (Diff, bool) {
	d := CompareStates(a.H, a.U, b.H, b.U)
	if tol.Accepts(d) {
		return d, true
	}
	n := len(a.Stages)
	if len(b.Stages) < n {
		n = len(b.Stages)
	}
	for i := 0; i < n; i++ {
		sa, sb := a.Stages[i], b.Stages[i]
		sd := CompareStates(sa.H, sa.U, sb.H, sb.U)
		if !tol.Accepts(sd) {
			d.Step, d.Stage = sa.Step, sa.Stage
			d.Var, d.Index = sd.Var, sd.Index
			return d, false
		}
	}
	return d, false
}
