// Package conform is the differential-conformance harness of the
// reproduction: it runs the SAME shallow-water problem — one RK-4 step or a
// short trajectory — through every execution strategy the repository has and
// cross-checks the full state vectors.
//
// The paper's contribution rests on an equivalence claim: the original
// scatter loops (Algorithm 2), the regularity-aware gather refactoring
// (Algorithm 3), the branch-free ±1 label-matrix form (Algorithm 4), any
// host/device split of pattern instances (Figure 4b) and the distributed
// halo-exchange runs must all compute the same model. The repo asserts
// pieces of that informally in scattered unit tests; this package makes the
// claim systematic and executable:
//
//   - Case describes one scenario (mesh, configuration, initial condition,
//     step count) — the named Williamson/Galewsky cases or a seeded random
//     perturbed mesh with a random-but-physical state (random.go).
//   - Strategy is one way of executing the trajectory: the branch-free
//     gather solver (serial or threaded), the Algorithm-3 branchy-gather and
//     Algorithm-2 scatter reference steppers, the hybrid executor at several
//     migration fractions, and mpisim multi-rank runs (strategies.go).
//   - Compare/CompareResults is the tolerance-aware comparator: max-ULP
//     distance, relative l2/linf error, and the first-divergence location
//     (variable, mesh element, RK step and stage) (compare.go).
//   - InjectPerturbation deliberately corrupts one pattern kernel so the
//     negative path — the harness actually detecting a wrong kernel — is
//     itself tested (perturb.go).
//
// The harness is exposed three ways: table-driven conformance suites in the
// packages under test (sw, hybrid, mpisim), native Go fuzz targets
// (FuzzStepEquivalence here, FuzzReductionForms, FuzzMeshRoundTrip), and the
// cmd/conformance CLI wired into scripts/ci.sh.
package conform

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// Case is one conformance scenario: every strategy integrates Steps RK-4
// steps of the configured model from the same initial condition on the same
// mesh and must produce the same trajectory.
type Case struct {
	Name string
	Mesh *mesh.Mesh
	Cfg  sw.Config
	// Setup fills the initial state (and topography) of a fresh solver and
	// calls Init, exactly like the testcases.SetupTC* functions. It must be
	// deterministic and mesh-pure: distributed strategies invoke it once per
	// rank on the rank-local mesh.
	Setup func(*sw.Solver)
	Steps int
}

// StageState is one recorded RK substep boundary: the provisional state
// after stages 0..2, the accepted state after stage 3 — the same points
// where the distributed runs exchange halos.
type StageState struct {
	Step, Stage int
	H, U        []float64
}

// Result is one strategy's trajectory summary.
type Result struct {
	Strategy string
	// Final accepted state in global mesh indexing.
	H, U []float64
	// Mass after each step (index 0 is the initial state) — available for
	// every strategy, including distributed ones (global allreduce).
	Mass []float64
	// Inv holds the full invariant set after each step (index 0 initial).
	// Empty for distributed strategies, whose diagnostics live rank-local.
	Inv []sw.Invariants
	// Stages holds per-substep snapshots in time order when the strategy
	// was run with stage recording; used to localize the FIRST divergence
	// by RK step and stage. Empty otherwise.
	Stages []StageState
}

// NamedCase builds one of the repository's named test cases on mesh m.
// Recognized names: tc1, tc2, tc5, tc6, galewsky.
func NamedCase(name string, m *mesh.Mesh, steps int) (*Case, error) {
	cfg := sw.DefaultConfig(m)
	var setup func(*sw.Solver)
	switch name {
	case "tc1":
		cfg.AdvectionOnly = true
		setup = func(s *sw.Solver) { testcases.SetupTC1(s, 0.7853981633974483) } // pi/4
	case "tc2":
		setup = testcases.SetupTC2
	case "tc5":
		setup = testcases.SetupTC5
	case "tc6":
		setup = testcases.SetupTC6
	case "galewsky":
		setup = func(s *sw.Solver) { testcases.SetupGalewsky(s, true) }
	default:
		return nil, fmt.Errorf("conform: unknown case %q", name)
	}
	return &Case{Name: name, Mesh: m, Cfg: cfg, Setup: setup, Steps: steps}, nil
}

// NamedCaseNames lists the named cases in canonical order.
func NamedCaseNames() []string { return []string{"tc1", "tc2", "tc5", "tc6", "galewsky"} }

func cloneField(x []float64) []float64 { return append([]float64(nil), x...) }
