package conform

import (
	"testing"
)

// Tests for the float32 fast-mode strategy: every named case and a family of
// seeded random cases must track the float64 baseline within the documented
// band (Fast32Band per step), and — the negative control — a much tighter
// band must fail, so the tolerance is demonstrably load-bearing rather than
// vacuously wide.

// TestFast32NamedCases holds the fast32 strategy to its documented band on
// every named case over a longer trajectory than the core matrix test, at
// both worker counts (serial and pooled fast32 must agree with the baseline
// AND produce identical float32 arithmetic regardless of partitioning).
func TestFast32NamedCases(t *testing.T) {
	base := Baseline()
	steps := 6
	for _, name := range NamedCaseNames() {
		c, err := NamedCase(name, testMesh, steps)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := base.Run(c, false)
		if err != nil {
			t.Fatalf("%s: baseline: %v", name, err)
		}
		for _, s := range []Strategy{Fast32(1), Fast32(4)} {
			res, err := s.Run(c, false)
			if err != nil {
				t.Errorf("%s/%s: %v", name, s.Name, err)
				continue
			}
			tol := PairTolerance(base, s, c.Steps)
			d, ok := CompareResults(ref, res, tol)
			if !ok {
				t.Errorf("%s/%s outside the documented band %.1e: %v",
					name, s.Name, tol.RelLInf, d)
			} else {
				t.Logf("%s/%s: %v (band %.1e)", name, s.Name, d, tol.RelLInf)
			}
		}
	}
}

// TestFast32RandomCases sweeps seeded random cases (jittered meshes, random
// configuration corners: APVM on/off, high-order thickness, viscosity,
// Rayleigh friction, advection-only) under the relative comparator.
func TestFast32RandomCases(t *testing.T) {
	base := Baseline()
	fast := Fast32(2)
	for _, c := range RandomCases(7, 4, 2, 3) {
		ref, err := base.Run(c, false)
		if err != nil {
			t.Fatalf("%s: baseline: %v", c.Name, err)
		}
		res, err := fast.Run(c, false)
		if err != nil {
			t.Errorf("%s/%s: %v", c.Name, fast.Name, err)
			continue
		}
		tol := PairTolerance(base, fast, c.Steps)
		d, ok := CompareResults(ref, res, tol)
		if !ok {
			t.Errorf("%s/%s outside the documented band %.1e: %v",
				c.Name, fast.Name, tol.RelLInf, d)
		} else {
			t.Logf("%s/%s: %v (band %.1e)", c.Name, fast.Name, d, tol.RelLInf)
		}
	}
}

// TestFast32BandNegative is the self-check: a band 100x tighter than the
// documented one must reject at least one named case. If this ever passes
// with room to spare, the documented band has drifted far from reality and
// should be re-calibrated.
func TestFast32BandNegative(t *testing.T) {
	base := Baseline()
	fast := Fast32(1)
	steps := 6
	rejected := false
	for _, name := range NamedCaseNames() {
		c, err := NamedCase(name, testMesh, steps)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := base.Run(c, false)
		if err != nil {
			t.Fatalf("%s: baseline: %v", name, err)
		}
		res, err := fast.Run(c, false)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, fast.Name, err)
		}
		tight := Tolerance{MaxULP: 4, RelLInf: Fast32Band / 100 * float64(c.Steps+1)}
		if _, ok := CompareResults(ref, res, tight); !ok {
			rejected = true
		}
	}
	if !rejected {
		t.Errorf("a 100x tighter band (%.1e/step) accepted every named case; "+
			"the documented Fast32Band is vacuously wide", Fast32Band/100)
	}
}

// TestFast32IsActuallyFloat32 pins that the strategy exercises the float32
// path at all: against the baseline, the result must differ by far more than
// any float64 reordering could explain (ULP distances in the billions, not
// the ReorderTol range). Guards against a silent fallback to the float64
// step (e.g. a future dispatch-condition change).
func TestFast32IsActuallyFloat32(t *testing.T) {
	base := Baseline()
	fast := Fast32(1)
	c, err := NamedCase("tc5", testMesh, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := base.Run(c, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fast.Run(c, false)
	if err != nil {
		t.Fatal(err)
	}
	d := CompareStates(ref.H, ref.U, res.H, res.U)
	if d.RelLInf < 1e-9 {
		t.Errorf("fast32 result is float64-close to the baseline (rel_linf=%.3e); "+
			"the float32 fast path did not run", d.RelLInf)
	}
}
