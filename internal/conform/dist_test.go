package conform

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/mesh"
)

// swrankBin builds cmd/swrank once per test binary and returns its path.
// The build directory is cleaned up by the last test using it (tracked via
// testing.T cleanup of the FIRST caller would tear it down too early, so
// the directory simply lives until the test process exits and the OS temp
// reaper collects it).
var swrankOnce struct {
	sync.Once
	bin string
	err string
}

func swrankBin(t *testing.T) string {
	t.Helper()
	swrankOnce.Do(func() {
		dir, err := os.MkdirTemp("", "swrank-bin-*")
		if err != nil {
			swrankOnce.err = err.Error()
			return
		}
		bin := filepath.Join(dir, "swrank")
		cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/swrank")
		if out, err := cmd.CombinedOutput(); err != nil {
			swrankOnce.err = fmt.Sprintf("%v\n%s", err, out)
			return
		}
		swrankOnce.bin = bin
	})
	if swrankOnce.err != "" {
		t.Fatalf("building swrank: %s", swrankOnce.err)
	}
	return swrankOnce.bin
}

func distMesh(t *testing.T, level int) *mesh.Mesh {
	t.Helper()
	m, err := dist.DefaultMesh(level)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDistProcConformance is the paper's equivalence claim extended across
// REAL process boundaries: 2-process TCP runs of every named case must
// reproduce the serial baseline within 4 ULPs (they are in fact bitwise
// equal — the halo exchange transports exact values and owned arithmetic is
// identical), and 4-process runs likewise on the rotated (tc5) and unstable
// (galewsky) cases, in both blocking and overlapped scheduling.
func TestDistProcConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := swrankBin(t)
	const level = 4
	m := distMesh(t, level)
	base := Baseline()

	runs := []struct {
		caseName string
		ranks    int
		overlap  bool
		reorder  bool
		steps    int
	}{
		{"tc1", 2, true, false, 2},
		{"tc2", 2, true, false, 2},
		{"tc5", 2, true, false, 2},
		{"tc6", 2, true, false, 2},
		{"galewsky", 2, true, false, 2},
		{"tc5", 2, false, false, 2},
		{"tc5", 4, true, false, 2},
		{"tc5", 4, false, false, 2},
		{"galewsky", 4, true, false, 2},
		// Locality-renumbered ranks (SFC partition, renumbered kernels,
		// canonicalized gather) must stay in the same exact band.
		{"tc5", 2, true, true, 2},
		{"tc5", 4, true, true, 2},
		{"galewsky", 2, false, true, 2},
		{"tc2", 4, false, true, 2},
	}
	for _, run := range runs {
		c, err := NamedCase(run.caseName, m, run.steps)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := base.Run(c, false)
		if err != nil {
			t.Fatal(err)
		}
		st := DistProc(bin, run.ranks, level, run.overlap, run.reorder)
		res, err := st.Run(c, false)
		if err != nil {
			t.Fatalf("%s on %s: %v", st.Name, run.caseName, err)
		}
		tol := PairTolerance(base, st, c.Steps)
		d, ok := CompareResults(ref, res, tol)
		if !ok {
			t.Errorf("%s vs %s on %s: %s", base.Name, st.Name, run.caseName, d.String())
			continue
		}
		if d.MaxULP != 0 {
			// Not a failure against the documented band, but the substrate
			// is built to be bitwise — log any drift loudly.
			t.Logf("%s on %s: max ULP %d (expected 0)", st.Name, run.caseName, d.MaxULP)
		}
		if len(res.Mass) != run.steps+1 {
			t.Errorf("%s on %s: mass series has %d entries, want %d",
				st.Name, run.caseName, len(res.Mass), run.steps+1)
		}
	}
}

// The strategy must refuse a case whose mesh/name it cannot reconstruct in
// another process.
func TestDistProcRejectsUnnamedCase(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := swrankBin(t)
	m := distMesh(t, 3)
	c, err := NamedCase("tc2", m, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Name = "not-a-named-case"
	if _, err := DistProc(bin, 2, 3, true, false).Run(c, false); err == nil {
		t.Fatal("unnamed case accepted")
	}
}
