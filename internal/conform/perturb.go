package conform

import (
	"fmt"

	"repro/internal/sw"
)

// InjectPerturbation corrupts one pattern kernel of solver s: after the
// pattern's normal Run, every output element in the range is scaled by
// (1+eps). This is the harness's negative control — a conformance run against
// an unperturbed baseline MUST flag the divergence, otherwise the comparator
// (or the tolerance) is broken. Only patterns whose output always feeds the
// trajectory are offered (a perturbation of, say, Divergence would vanish
// whenever Viscosity is zero):
//
//	A1  tend_h           (Tend.H)
//	X2  next_substep h   (Provis.H)
//	D1  h_edge, low-order  (Diag.HEdge)
//	D2  h_edge, high-order (Diag.HEdge)
//	E   vorticity        (Diag.Vorticity)
func InjectPerturbation(s *sw.Solver, id string, eps float64) error {
	var field []float64
	switch id {
	case "A1":
		field = s.Tend.H
	case "X2":
		field = s.Provis.H
	case "D1", "D2":
		field = s.Diag.HEdge
	case "E":
		field = s.Diag.Vorticity
	default:
		return fmt.Errorf("conform: pattern %q not supported for perturbation", id)
	}
	p := s.PatternByID(id)
	if p == nil {
		return fmt.Errorf("conform: solver has no pattern %q", id)
	}
	orig := p.Run
	p.Run = func(lo, hi int) {
		orig(lo, hi)
		for i := lo; i < hi; i++ {
			field[i] *= 1 + eps
		}
	}
	return nil
}

// PerturbedStrategy is the serial gather solver with pattern id corrupted by
// eps — it must FAIL conformance against Baseline on any case that executes
// the pattern. eps 0 means 1e-4 (large enough to clear every tolerance band
// after one step, small enough to keep the run stable).
func PerturbedStrategy(id string, eps float64) Strategy {
	if eps == 0 {
		eps = 1e-4
	}
	return solverStrategy("perturbed-"+id, false, func(s *sw.Solver) (func(), error) {
		s.Runner = sw.SerialRunner{}
		if err := InjectPerturbation(s, id, eps); err != nil {
			return nil, err
		}
		return nil, nil
	})
}
