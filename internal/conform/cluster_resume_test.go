package conform

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mesh"
	"repro/internal/serve"
	"repro/internal/sw"
	"repro/internal/telemetry"
	"repro/internal/testcases"
)

// These tests extend the resume-equivalence guarantee across MACHINE
// boundaries: a job whose worker is crashed without warning mid-run must
// be stolen onto a survivor from the coordinator's mirrored checkpoint
// and land on the uninterrupted trajectory within the exact-strategy ULP
// band (ExactTol, max 4 ULP). The worker crash here is in-process —
// serve.Server.Close() plus dropping the HTTP listener, the documented
// kill -9 equivalent (no drain, no final checkpoint, spool frozen
// mid-flight); scripts/ci.sh runs the same scenario with a real `kill
// -9` on a real swserver process.

// serveMesh builds a mesh exactly as internal/serve's meshForLevel does,
// so reference solvers are bitwise comparable with served trajectories.
func serveMesh(t *testing.T, level int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newServeSolver pairs the serve-identical mesh with its default config.
func newServeSolver(t *testing.T, level int) (*sw.Solver, error) {
	t.Helper()
	m := serveMesh(t, level)
	return sw.NewSolver(m, sw.DefaultConfig(m))
}

type clusterWorker struct {
	name string
	srv  *serve.Server
	ts   *httptest.Server
}

// crash kills the worker without drain: listener gone, server stopped
// mid-step, spool left as the last periodic checkpoint wrote it.
func (w *clusterWorker) crash() {
	w.ts.CloseClientConnections()
	w.ts.Close()
	w.srv.Close()
}

func newClusterWorker(t *testing.T, name string) *clusterWorker {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Workers:  1,
		QueueCap: 4,
		SpoolDir: t.TempDir(),
		Registry: telemetry.NewRegistry(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	w := &clusterWorker{name: name, srv: srv, ts: ts}
	t.Cleanup(func() {
		defer func() { recover() }() // double-close after crash() is fine
		ts.Close()
		srv.Close()
	})
	return w
}

func newFailoverCluster(t *testing.T, workers ...*clusterWorker) *cluster.Coordinator {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		SpoolDir:       t.TempDir(),
		HeartbeatEvery: time.Hour, // ticks driven explicitly
		EvictAfter:     50 * time.Millisecond,
		Registry:       telemetry.NewRegistry(),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, w := range workers {
		if err := c.Register(cluster.Worker{Name: w.name, URL: w.ts.URL}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// runFailover submits spec, waits until the coordinator has mirrored a
// checkpoint past minSteps, crashes the assigned worker, and returns the
// completed job's info and final checkpoint bytes.
func runFailover(t *testing.T, c *cluster.Coordinator, workers []*clusterWorker,
	spec serve.JobSpec, minSteps int) (cluster.Info, []byte) {
	t.Helper()
	ctx := context.Background()
	info, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let the job get past its first durable checkpoint, then tick so the
	// coordinator mirrors it.
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := c.Status(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			t.Fatalf("job finished (%s) before the crash — pacing too fast", st.State)
		}
		if st.StepsDone > minSteps {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached step %d (at %d)", minSteps+1, st.StepsDone)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.Tick() // refresh + mirror the checkpoint onto the coordinator's disk
	c.Tick()

	var victim *clusterWorker
	survivors := map[string]bool{}
	for _, w := range workers {
		if w.name == info.Worker {
			victim = w
		} else {
			survivors[w.name] = true
		}
	}
	victim.crash()
	time.Sleep(60 * time.Millisecond) // eviction deadline lapses

	c.Tick() // probe fails → evict → steal from the mirror
	st, err := c.Status(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !survivors[st.Worker] {
		t.Fatalf("after steal job is on %q, want a survivor", st.Worker)
	}
	if st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}
	if st.StepsDone == 0 {
		t.Fatal("steal restarted from step 0 — the mirrored checkpoint was not used")
	}

	// Drive to completion.
	for {
		st, err = c.Status(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == serve.StateCompleted {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job ended %s (%s)", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for stolen job to complete")
		}
		c.Tick()
		time.Sleep(10 * time.Millisecond)
	}

	res, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumes < 1 {
		t.Fatalf("result resumes = %d, want >= 1", res.Resumes)
	}
	ckpt, err := c.Checkpoint(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	return st, ckpt
}

// TestClusterFailoverConformance: single-trajectory steal. The SIGKILLed
// worker's job completes on the survivor and its final prognostic state
// matches the uninterrupted serial reference within 4 ULP.
func TestClusterFailoverConformance(t *testing.T) {
	const (
		level = 2
		steps = 40
	)
	w1 := newClusterWorker(t, "w1")
	w2 := newClusterWorker(t, "w2")
	c := newFailoverCluster(t, w1, w2)

	_, ckpt := runFailover(t, c, []*clusterWorker{w1, w2}, serve.JobSpec{
		TestCase: 5, Level: level, Mode: "plan", Steps: steps,
		ReportEvery: 4, CheckpointEvery: 4, StepDelayMS: 20,
	}, 5)

	// Uninterrupted serial reference on the identical mesh.
	ref, err := newServeSolver(t, level)
	if err != nil {
		t.Fatal(err)
	}
	ref.Runner = sw.SerialRunner{}
	testcases.SetupTC5(ref)
	ref.Init()
	ref.Run(steps)

	got, err := newServeSolver(t, level)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.ReadCheckpoint(bytes.NewReader(ckpt)); err != nil {
		t.Fatal(err)
	}
	if got.StepCount != steps {
		t.Fatalf("final checkpoint at step %d, want %d", got.StepCount, steps)
	}
	d := CompareStates(ref.State.H, ref.State.U, got.State.H, got.State.U)
	if !ExactTol.Accepts(d) {
		t.Errorf("stolen job diverges from uninterrupted run: %v", d)
	}
}

// TestClusterEnsembleFailoverConformance: the whole K-member ensemble
// migrates in one checkpoint and every member lands on its uninterrupted
// trajectory.
func TestClusterEnsembleFailoverConformance(t *testing.T) {
	const (
		level = 2
		k     = 3
		steps = 24
		seed  = 99
		eps   = 1e-8
	)
	w1 := newClusterWorker(t, "w1")
	w2 := newClusterWorker(t, "w2")
	c := newFailoverCluster(t, w1, w2)

	_, ckpt := runFailover(t, c, []*clusterWorker{w1, w2}, serve.JobSpec{
		TestCase: 5, Level: level, Mode: "plan", Steps: steps,
		ReportEvery: 4, CheckpointEvery: 4, StepDelayMS: 10,
		Ensemble: k, PerturbSeed: seed, PerturbEps: eps,
	}, 5)

	// Reference: each member run uninterrupted under the serial baseline.
	refSolver, err := newServeSolver(t, level)
	if err != nil {
		t.Fatal(err)
	}
	refSolver.Runner = sw.SerialRunner{}
	testcases.SetupTC5(refSolver)
	refSolver.Init()
	ref, err := sw.NewEnsemble(refSolver, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		ref.PerturbH(i, seed, eps)
	}
	for i := 0; i < k; i++ {
		if err := ref.WithMember(i, func(sv *sw.Solver) error {
			sv.Run(steps)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	gotSolver, err := newServeSolver(t, level)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sw.NewEnsemble(gotSolver, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.ReadCheckpoint(bytes.NewReader(ckpt)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		a, b := ref.Member(i), got.Member(i)
		if b.StepCount != steps {
			t.Fatalf("member %d at step %d, want %d", i, b.StepCount, steps)
		}
		d := CompareStates(a.State.H, a.State.U, b.State.H, b.State.U)
		if !ExactTol.Accepts(d) {
			t.Errorf("member %d of stolen ensemble diverges: %v", i, d)
		}
	}
}
