package conform

import (
	"bytes"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sw"
)

// reorderStrategies is the matrix the permutation-equivalence claim runs
// over: serial gather, the compiled plan (1 and 4 workers), the threaded
// pool, simulated 2- and 4-rank distribution, and the float32 fast mode.
// (Real-process distribution is covered by TestDistProcConformance's
// reorder rows; it needs a prebuilt binary.)
func reorderStrategies() []Strategy {
	return []Strategy{
		Baseline(),
		Plan(1),
		Plan(4),
		Threaded(4),
		MPI(2),
		MPI(4),
		Fast32(4),
	}
}

// TestReorderedIsExactPermutation is the correctness contract of locality
// renumbering: for EVERY execution strategy, running on the SFC-renumbered
// mesh and inverse-permuting the result must reproduce the strategy's
// canonical run at 0 ULP — including the float32 fast mode, whose
// per-element arithmetic is likewise just relabeled. The comparison is
// strategy-vs-its-own-wrapped-self, so it isolates the permutation claim
// from each strategy's (separately tested) relation to the baseline.
func TestReorderedIsExactPermutation(t *testing.T) {
	cases := []*Case{}
	for _, name := range NamedCaseNames() {
		c, err := NamedCase(name, testMesh, 2)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, c)
	}
	cases = append(cases, RandomCases(0x5FC, 3, 2, 2)...)
	for _, c := range cases {
		for _, inner := range reorderStrategies() {
			wrapped := Reordered(inner)
			ref, err := inner.Run(c, false)
			if err != nil {
				t.Fatalf("%s on %s: %v", inner.Name, c.Name, err)
			}
			res, err := wrapped.Run(c, false)
			if err != nil {
				t.Fatalf("%s on %s: %v", wrapped.Name, c.Name, err)
			}
			if d := CompareStates(ref.H, ref.U, res.H, res.U); d.MaxULP != 0 {
				t.Errorf("%s on %s is not a pure permutation of %s: %s",
					wrapped.Name, c.Name, inner.Name, d.String())
			}
		}
	}
}

// TestReorderedStagesExact sharpens the claim to every RK substep boundary:
// the wrapped baseline's per-stage snapshots, inverse-permuted, are bitwise
// equal to the canonical ones — the permutation holds within the step, not
// just at its end.
func TestReorderedStagesExact(t *testing.T) {
	c, err := NamedCase("tc5", testMesh, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := Baseline()
	ref, err := base.Run(c, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reordered(base).Run(c, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Stages) == 0 || len(ref.Stages) != len(res.Stages) {
		t.Fatalf("stage snapshots %d vs %d", len(ref.Stages), len(res.Stages))
	}
	for i := range ref.Stages {
		a, b := ref.Stages[i], res.Stages[i]
		if d := CompareStates(a.H, a.U, b.H, b.U); d.MaxULP != 0 {
			t.Fatalf("step %d stage %d diverges under reorder: %s", a.Step, a.Stage, d.String())
		}
	}
}

// TestReorderedWithinStrategyBands re-runs the wrapped strategies against
// the CANONICAL baseline under the standard pair tolerances: exact
// strategies stay in the exact band and fast32 stays in its documented
// relative band, i.e. wrapping never widens any tolerance.
func TestReorderedWithinStrategyBands(t *testing.T) {
	c, err := NamedCase("galewsky", testMesh, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := Baseline()
	ref, err := base.Run(c, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, inner := range reorderStrategies() {
		wrapped := Reordered(inner)
		res, err := wrapped.Run(c, false)
		if err != nil {
			t.Fatalf("%s: %v", wrapped.Name, err)
		}
		tol := PairTolerance(base, wrapped, c.Steps)
		if d, ok := CompareResults(ref, res, tol); !ok {
			t.Errorf("%s vs %s: %s", base.Name, wrapped.Name, d.String())
		}
	}
}

// reorderedSolver builds a solver on the renumbered copy of m with the
// renumber maps attached, mirroring what mpas.Options.Reorder does.
func reorderedSolver(t *testing.T, m *mesh.Mesh, cfg sw.Config) *sw.Solver {
	t.Helper()
	r := mesh.ComputeReorder(m)
	rm, err := r.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sw.NewSolver(rm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Renumber = r
	return s
}

// TestReorderCheckpointCanonical: a solver on the renumbered mesh writes
// BYTE-IDENTICAL checkpoints to the canonical solver at every step — the
// on-disk format is numbering-independent, which is what lets a checkpoint
// migrate freely between reordered and canonical processes (serve workers,
// cluster steals, resume flag flips).
func TestReorderCheckpointCanonical(t *testing.T) {
	c, err := NamedCase("tc5", testMesh, 4)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := sw.NewSolver(c.Mesh, c.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	canon.Runner = sw.SerialRunner{}
	c.Setup(canon)
	ren := reorderedSolver(t, c.Mesh, c.Cfg)
	ren.Runner = sw.SerialRunner{}
	c.Setup(ren)
	for step := 0; step <= c.Steps; step++ {
		var a, b bytes.Buffer
		if err := canon.WriteCheckpoint(&a); err != nil {
			t.Fatal(err)
		}
		if err := ren.WriteCheckpoint(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("checkpoint bytes diverge at step %d", step)
		}
		canon.Step()
		ren.Step()
	}
}

// TestReorderResumeAcrossNumbering: a mid-run checkpoint crosses the
// numbering boundary in BOTH directions — canonical run resumed on a
// renumbered solver and vice versa — and both land on the uninterrupted
// trajectory at 0 ULP.
func TestReorderResumeAcrossNumbering(t *testing.T) {
	const steps, mid = 6, 3
	c, err := NamedCase("tc5", testMesh, steps)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted canonical reference.
	ref, err := sw.NewSolver(c.Mesh, c.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Runner = sw.SerialRunner{}
	c.Setup(ref)
	ref.Run(steps)

	mkCanon := func() *sw.Solver {
		s, err := sw.NewSolver(c.Mesh, c.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Runner = sw.SerialRunner{}
		return s
	}
	mkRen := func() *sw.Solver {
		s := reorderedSolver(t, c.Mesh, c.Cfg)
		s.Runner = sw.SerialRunner{}
		return s
	}

	for _, dir := range []struct {
		name         string
		first, rest  func() *sw.Solver
		canonicalize bool // final state needs converting back
	}{
		{"canonical->reordered", mkCanon, mkRen, true},
		{"reordered->canonical", mkRen, mkCanon, false},
	} {
		first := dir.first()
		c.Setup(first)
		first.Run(mid)
		var ckpt bytes.Buffer
		if err := first.WriteCheckpoint(&ckpt); err != nil {
			t.Fatal(err)
		}
		rest := dir.rest()
		if err := rest.ReadCheckpoint(&ckpt); err != nil {
			t.Fatalf("%s: %v", dir.name, err)
		}
		if rest.StepCount != mid {
			t.Fatalf("%s: resumed at step %d, want %d", dir.name, rest.StepCount, mid)
		}
		rest.Run(steps - mid)
		h, u := rest.State.H, rest.State.U
		if dir.canonicalize {
			h = cellToCanonical(rest.Renumber, h)
			u = edgeToCanonical(rest.Renumber, u)
		}
		if d := CompareStates(ref.State.H, ref.State.U, h, u); d.MaxULP != 0 {
			t.Errorf("%s: resumed trajectory diverged: %s", dir.name, d.String())
		}
	}
}

// TestReorderSetupPermutes pins the property every reorder path leans on:
// the analytic test-case initializers are position-pure, so running setup
// on the renumbered mesh yields exactly the permuted canonical initial
// state (no setup may consult raw indices).
func TestReorderSetupPermutes(t *testing.T) {
	for _, name := range NamedCaseNames() {
		c, err := NamedCase(name, testMesh, 0)
		if err != nil {
			t.Fatal(err)
		}
		canon, err := sw.NewSolver(c.Mesh, c.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		canon.Runner = sw.SerialRunner{}
		c.Setup(canon)
		ren := reorderedSolver(t, c.Mesh, c.Cfg)
		ren.Runner = sw.SerialRunner{}
		c.Setup(ren)
		h := cellToCanonical(ren.Renumber, ren.State.H)
		u := edgeToCanonical(ren.Renumber, ren.State.U)
		b := cellToCanonical(ren.Renumber, ren.B)
		if d := CompareStates(canon.State.H, canon.State.U, h, u); d.MaxULP != 0 {
			t.Errorf("%s: initial state not a pure permutation: %s", name, d.String())
		}
		if d := CompareStates(canon.B, nil, b, nil); d.MaxULP != 0 {
			t.Errorf("%s: topography not a pure permutation: %s", name, d.String())
		}
	}
}
