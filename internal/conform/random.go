package conform

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/icosa"
	"repro/internal/mesh"
	"repro/internal/sw"
)

// RandomMesh builds a valid SCVT mesh whose generators are the icosahedral
// nodes perturbed tangentially by a seeded random jitter — the connectivity
// stays icosahedral, but every cell area, edge length, kite weight and
// tangential-reconstruction weight changes, so the pattern kernels are
// exercised away from the symmetric mesh. If the jittered mesh fails
// validation (too-aggressive jitter can flip a Delaunay triangle) the jitter
// is halved and rebuilt; jitter 0 reproduces the regular mesh and always
// validates.
func RandomMesh(seed uint64, level int) *mesh.Mesh {
	rng := rand.New(rand.NewSource(int64(seed)))
	tri := icosa.Generate(level)
	base := append([]geom.Vec3(nil), tri.Nodes...)
	// Typical generator spacing on the unit sphere.
	spacing := math.Sqrt(4 * math.Pi / float64(len(base)))
	jitter := 0.15 * spacing
	// Draw the per-node displacements once so halving the amplitude keeps the
	// same perturbation direction field.
	dx := make([]geom.Vec3, len(base))
	for i, p := range base {
		w := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		dx[i] = geom.ProjectToTangent(p, w)
	}
	for try := 0; try < 5; try++ {
		for i, p := range base {
			tri.Nodes[i] = p.Add(dx[i].Scale(jitter)).Normalize()
		}
		m, err := mesh.FromTriangulation(tri, mesh.Options{})
		if err == nil {
			if err = m.Validate(); err == nil {
				return m
			}
		}
		jitter /= 2
	}
	copy(tri.Nodes, base)
	m, err := mesh.FromTriangulation(tri, mesh.Options{})
	if err != nil {
		panic(fmt.Sprintf("conform: unperturbed icosa mesh failed: %v", err))
	}
	return m
}

// bump is one Gaussian feature on the sphere, parameterized purely by
// position so the induced fields are identical on any (sub)mesh.
type bump struct {
	c   geom.Vec3 // center, unit vector
	sig float64   // width in unit-sphere chord distance
	amp float64
}

func (b bump) eval(p geom.Vec3) float64 {
	d := p.Sub(b.c)
	return b.amp * math.Exp(-d.Dot(d)/(b.sig*b.sig))
}

func randomBumps(rng *rand.Rand, n int, amp float64) []bump {
	bs := make([]bump, n)
	for i := range bs {
		c := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalize()
		bs[i] = bump{
			c:   c,
			sig: 0.3 + 0.5*rng.Float64(),
			amp: amp * (0.5 + rng.Float64()) * math.Copysign(1, rng.Float64()-0.5),
		}
	}
	return bs
}

func evalBumps(bs []bump, p geom.Vec3) float64 {
	acc := 0.0
	for _, b := range bs {
		acc += b.eval(p)
	}
	return acc
}

// RandomCase builds a seeded conformance scenario: a jittered mesh, a
// randomly toggled physics configuration, and a random-but-physical initial
// condition — a positive layer thickness made of Gaussian bumps over a deep
// mean, and a nondivergent wind derived from a vertex streamfunction
// (u_e = Δψ/dv across the edge), amplitude-capped well under the gravity-wave
// speed the time step is sized for. Everything is a pure function of
// position, so distributed ranks reconstruct the identical state on their
// local meshes.
func RandomCase(seed uint64, level, steps int) *Case {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x5bd1e995))
	m := RandomMesh(seed, level)

	cfg := sw.DefaultConfig(m)
	if rng.Float64() < 0.5 {
		cfg.APVM = 0.5
	} else {
		cfg.APVM = 0
	}
	cfg.HighOrderThickness = rng.Float64() < 0.5
	if rng.Float64() < 0.3 {
		cfg.Viscosity = 1e5 * (0.5 + rng.Float64())
	}
	if rng.Float64() < 0.3 {
		cfg.RayleighFriction = 1e-5 * rng.Float64()
	}
	if rng.Float64() < 0.15 {
		cfg.AdvectionOnly = true
	}

	h0 := 1000 + 2000*rng.Float64()
	hBumps := randomBumps(rng, 3, 0.05*h0)
	// Streamfunction amplitude giving a max wind of umax: the steepest slope
	// of a unit-sphere Gaussian of width sig is amp*sqrt(2/e)/sig, and
	// u = Δψ/dv ≈ |∇ψ|/R, so amp = umax*sig*R bounds each bump's wind by
	// umax (no mesh-dependent normalization, which would break rank purity).
	umax := 10 + 40*rng.Float64()
	psiBumps := randomBumps(rng, 3, 1) // amp rescaled below
	for i := range psiBumps {
		psiBumps[i].amp *= umax * psiBumps[i].sig * geom.EarthRadius / 3
	}
	setup := func(s *sw.Solver) {
		mm := s.M
		for c := 0; c < mm.NCells; c++ {
			s.State.H[c] = h0 + evalBumps(hBumps, mm.XCell[c])
		}
		psi := make([]float64, mm.NVertices)
		for v := 0; v < mm.NVertices; v++ {
			psi[v] = evalBumps(psiBumps, mm.XVertex[v])
		}
		for e := 0; e < mm.NEdges; e++ {
			v1, v2 := mm.VerticesOnEdge[2*e], mm.VerticesOnEdge[2*e+1]
			s.State.U[e] = (psi[v2] - psi[v1]) / mm.DvEdge[e]
		}
		s.Init()
	}
	return &Case{
		Name:  fmt.Sprintf("rand-%d-l%d", seed, level),
		Mesh:  m,
		Cfg:   cfg,
		Setup: setup,
		Steps: steps,
	}
}

// RandomCases builds n seeded cases derived from a base seed.
func RandomCases(baseSeed uint64, n, level, steps int) []*Case {
	cs := make([]*Case, n)
	for i := range cs {
		cs[i] = RandomCase(baseSeed+uint64(i)*0x9e3779b9, level, steps)
	}
	return cs
}
