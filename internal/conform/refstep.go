package conform

import "repro/internal/sw"

// This file is an independent RK-4 driver over pluggable diagnostic and
// tendency forms. It mirrors the kernel sequence of sw's Step (Algorithm 1)
// — compute_tend, next_substep_state, compute_solve_diagnostics,
// accumulative_update — but never calls the solver's pattern kernels, so a
// trajectory computed here shares NOTHING with the gather code path beyond
// the mesh: it is the sequential semantics the refactored forms are judged
// against.

// forms bundles one loop-shape family: Algorithm 2 (scatter) or Algorithm 3
// (branchy gather).
type forms struct {
	diag func(s *sw.Solver, st *sw.State, d *sw.Diagnostics)
	tend func(s *sw.Solver, st *sw.State, d *sw.Diagnostics, td *sw.Tendencies)
}

// scatterForms is the Algorithm-2 family: the solver's serial scatter
// reference (the original MPAS loop shapes).
var scatterForms = forms{
	diag: func(s *sw.Solver, st *sw.State, d *sw.Diagnostics) { s.ReferenceDiagnostics(st, d) },
	tend: func(s *sw.Solver, st *sw.State, d *sw.Diagnostics, td *sw.Tendencies) {
		s.ReferenceTend(st, d, td)
	},
}

// branchyForms is the Algorithm-3 family (branchy.go).
var branchyForms = forms{diag: branchyDiagnostics, tend: branchyTend}

// refStepper advances a solver's State with one of the reference forms,
// reusing the solver only for its mesh tables, configuration, topography and
// Diagnostics/Tendencies storage.
type refStepper struct {
	s            *sw.Solver
	f            forms
	provis, next *sw.State
}

func newRefStepper(s *sw.Solver, f forms) *refStepper {
	r := &refStepper{s: s, f: f, provis: sw.NewState(s.M), next: sw.NewState(s.M)}
	// Recompute the diagnostics of the initial state in this family's own
	// loop shapes, so the whole trajectory is form-pure (Setup left the
	// gather-form diagnostics behind).
	r.f.diag(s, s.State, s.Diag)
	return r
}

// step advances one RK-4 step; rec, when non-nil, receives each substep
// state at the same boundaries as sw.Solver.PostSubstep.
func (r *refStepper) step(rec func(stage int, st *sw.State)) {
	s := r.s
	dt := s.Cfg.Dt
	rkA := [4]float64{dt / 2, dt / 2, dt, 0}
	rkB := [4]float64{dt / 6, dt / 3, dt / 3, dt / 6}
	r.next.CopyFrom(s.State)
	cur := s.State // state matching the current s.Diag
	for stage := 0; stage < 4; stage++ {
		r.f.tend(s, cur, s.Diag, s.Tend)
		if stage < 3 {
			a := rkA[stage]
			for c := range r.provis.H {
				r.provis.H[c] = s.State.H[c] + a*s.Tend.H[c]
			}
			for e := range r.provis.U {
				r.provis.U[e] = s.State.U[e] + a*s.Tend.U[e]
			}
			if rec != nil {
				rec(stage, r.provis)
			}
			r.f.diag(s, r.provis, s.Diag)
			b := rkB[stage]
			for c := range r.next.H {
				r.next.H[c] += b * s.Tend.H[c]
			}
			for e := range r.next.U {
				r.next.U[e] += b * s.Tend.U[e]
			}
			cur = r.provis
		} else {
			b := rkB[3]
			for c := range r.next.H {
				r.next.H[c] += b * s.Tend.H[c]
			}
			for e := range r.next.U {
				r.next.U[e] += b * s.Tend.U[e]
			}
			s.State.CopyFrom(r.next)
			if rec != nil {
				rec(3, s.State)
			}
			r.f.diag(s, s.State, s.Diag)
		}
	}
	s.Time += dt
	s.StepCount++
}
