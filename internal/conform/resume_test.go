package conform

import (
	"bytes"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/par"
	"repro/internal/sw"
)

// TestResumeEquivalence extends the conformance guarantee across a
// checkpoint boundary: a trajectory checkpointed mid-run under the serial
// baseline and resumed under any other exact execution strategy must land
// on the same final state, within the exact-strategy ULP band. This is the
// property internal/serve's resume-under-a-different-mode rides on.
func TestResumeEquivalence(t *testing.T) {
	const (
		steps = 10
		mid   = 4
	)
	c, err := NamedCase("tc5", testMesh, steps)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted serial reference.
	ref, err := sw.NewSolver(c.Mesh, c.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Runner = sw.SerialRunner{}
	c.Setup(ref)
	ref.Run(steps)

	// Checkpoint mid-trajectory under the baseline.
	first, err := sw.NewSolver(c.Mesh, c.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Runner = sw.SerialRunner{}
	c.Setup(first)
	first.Run(mid)
	var ckpt bytes.Buffer
	if err := first.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Resume the remainder under each exact strategy family.
	resumers := []struct {
		name   string
		attach func(s *sw.Solver) (cleanup func(), err error)
	}{
		{"serial", func(s *sw.Solver) (func(), error) {
			s.Runner = sw.SerialRunner{}
			return nil, nil
		}},
		{"threaded-w4", func(s *sw.Solver) (func(), error) {
			pool := par.NewPool(4)
			s.Runner = sw.PoolRunner{Pool: pool}
			return pool.Close, nil
		}},
		{"plan-w4", func(s *sw.Solver) (func(), error) {
			pool := par.NewPool(4)
			r, err := sw.NewPlanRunner(s, pool)
			if err != nil {
				pool.Close()
				return nil, err
			}
			s.Runner = r
			return pool.Close, nil
		}},
		{"taskplan-w4", func(s *sw.Solver) (func(), error) {
			pool := par.NewPool(4)
			r, err := sw.NewTaskPlanRunner(s, pool)
			if err != nil {
				pool.Close()
				return nil, err
			}
			s.Runner = r
			return pool.Close, nil
		}},
		{"kernel-level", func(s *sw.Solver) (func(), error) {
			e := hybrid.NewHybridSolver(s, hybrid.KernelLevelSchedule(), 2, 2)
			return e.Close, nil
		}},
		{"hybrid-f50", func(s *sw.Solver) (func(), error) {
			e := hybrid.NewHybridSolver(s, hybrid.PatternDrivenSchedule(0.5), 2, 2)
			return e.Close, nil
		}},
	}
	for _, r := range resumers {
		t.Run(r.name, func(t *testing.T) {
			s, err := sw.NewSolver(c.Mesh, c.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			cleanup, err := r.attach(s)
			if err != nil {
				t.Fatal(err)
			}
			if cleanup != nil {
				defer cleanup()
			}
			if err := s.ReadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatal(err)
			}
			if s.StepCount != mid {
				t.Fatalf("restored step %d, want %d", s.StepCount, mid)
			}
			s.Run(steps - mid)

			d := CompareStates(ref.State.H, ref.State.U, s.State.H, s.State.U)
			if !ExactTol.Accepts(d) {
				t.Errorf("resumed-under-%s diverges from uninterrupted serial: %v", r.name, d)
			}
		})
	}
}

// TestResumeAcrossTaskPlanFlag pins resume in BOTH directions across the
// taskplan mode flag: a trajectory checkpointed under barrier-plan execution
// and finished under task-graph execution (and vice versa) must land bitwise
// on the uninterrupted serial state. This is what lets a served job or a rank
// restart flip `-mode taskplan` on an existing checkpoint.
func TestResumeAcrossTaskPlanFlag(t *testing.T) {
	const (
		steps = 8
		mid   = 3
	)
	c, err := NamedCase("tc5", testMesh, steps)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sw.NewSolver(c.Mesh, c.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Runner = sw.SerialRunner{}
	c.Setup(ref)
	ref.Run(steps)

	attachPlan := func(s *sw.Solver) (func(), error) {
		pool := par.NewPool(4)
		r, err := sw.NewPlanRunner(s, pool)
		if err != nil {
			pool.Close()
			return nil, err
		}
		s.Runner = r
		return pool.Close, nil
	}
	attachTask := func(s *sw.Solver) (func(), error) {
		pool := par.NewPool(4)
		r, err := sw.NewTaskPlanRunner(s, pool)
		if err != nil {
			pool.Close()
			return nil, err
		}
		s.Runner = r
		return pool.Close, nil
	}
	for _, tc := range []struct {
		name          string
		before, after func(s *sw.Solver) (func(), error)
	}{
		{"plan-then-taskplan", attachPlan, attachTask},
		{"taskplan-then-plan", attachTask, attachPlan},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first, err := sw.NewSolver(c.Mesh, c.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			cleanup, err := tc.before(first)
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()
			c.Setup(first)
			first.Run(mid)
			var ckpt bytes.Buffer
			if err := first.WriteCheckpoint(&ckpt); err != nil {
				t.Fatal(err)
			}

			second, err := sw.NewSolver(c.Mesh, c.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			cleanup2, err := tc.after(second)
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup2()
			if err := second.ReadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatal(err)
			}
			second.Run(steps - mid)

			d := CompareStates(ref.State.H, ref.State.U, second.State.H, second.State.U)
			if !ExactTol.Accepts(d) {
				t.Errorf("%s diverges from uninterrupted serial: %v", tc.name, d)
			}
		})
	}
}
