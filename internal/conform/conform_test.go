package conform

import (
	"math"
	"testing"

	"repro/internal/mesh"
)

var testMesh = mesh.MustBuild(2, mesh.Options{})

func TestULPDist(t *testing.T) {
	cases := []struct {
		a, b float64
		want uint64
	}{
		{1.0, 1.0, 0},
		{0.0, 0.0, 0},
		{1.0, math.Nextafter(1, 2), 1},
		{1.0, math.Nextafter(math.Nextafter(1, 2), 2), 2},
		{0.0, math.Copysign(0, -1), 1},
		{5e-324, -5e-324, 3}, // smallest denormals straddling zero
	}
	for _, c := range cases {
		if got := ULPDist(c.a, c.b); got != c.want {
			t.Errorf("ULPDist(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := ULPDist(c.b, c.a); got != c.want {
			t.Errorf("ULPDist(%v, %v) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
	if got := ULPDist(1, math.NaN()); got != math.MaxUint64 {
		t.Errorf("ULPDist(1, NaN) = %d, want MaxUint64", got)
	}
	if got := ULPDist(math.NaN(), math.NaN()); got != 0 {
		t.Errorf("ULPDist(NaN, NaN) = %d, want 0", got)
	}
}

func TestToleranceAccepts(t *testing.T) {
	within := Diff{MaxULP: 3}
	if !ExactTol.Accepts(within) {
		t.Error("ExactTol rejected a 3-ULP diff")
	}
	reordered := Diff{MaxULP: 1 << 20, RelLInf: 5e-12, RelL2: 1e-12}
	if ExactTol.Accepts(reordered) {
		t.Error("ExactTol accepted a reordered diff")
	}
	if !ReorderTol(1).Accepts(reordered) {
		t.Error("ReorderTol(1) rejected a 5e-12 relative diff")
	}
	big := Diff{MaxULP: 1 << 40, RelLInf: 1e-3, RelL2: 1e-4}
	if ReorderTol(1).Accepts(big) {
		t.Error("ReorderTol(1) accepted a 1e-3 relative diff")
	}
}

func TestCompareStatesLocatesWorstEntry(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	u := []float64{4, 5}
	ub := []float64{4, 5.5}
	d := CompareStates(a, u, b, ub)
	if d.Var != "u" || d.Index != 1 {
		t.Errorf("worst entry located at %s[%d], want u[1]", d.Var, d.Index)
	}
	if d.MaxAbs != 0.5 {
		t.Errorf("MaxAbs = %v, want 0.5", d.MaxAbs)
	}
}

func TestCompareStatesLengthMismatch(t *testing.T) {
	d := CompareStates([]float64{1}, []float64{2}, []float64{1, 1}, []float64{2})
	if d.MaxULP != math.MaxUint64 {
		t.Errorf("length mismatch not flagged: MaxULP = %d", d.MaxULP)
	}
}

// TestNamedCasesAllStrategies is the core conformance matrix at test scale:
// every named case, every strategy, two RK-4 steps, pairwise against the
// gather-serial baseline under the pair's documented tolerance.
func TestNamedCasesAllStrategies(t *testing.T) {
	strategies := AllStrategies()
	base := strategies[0]
	for _, name := range NamedCaseNames() {
		c, err := NamedCase(name, testMesh, 2)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := base.Run(c, true)
		if err != nil {
			t.Fatalf("%s: baseline: %v", name, err)
		}
		for _, s := range strategies[1:] {
			res, err := s.Run(c, true)
			if err != nil {
				t.Errorf("%s/%s: %v", name, s.Name, err)
				continue
			}
			tol := PairTolerance(base, s, c.Steps)
			d, ok := CompareResults(ref, res, tol)
			if !ok {
				t.Errorf("%s/%s diverged from baseline: %v", name, s.Name, d)
			} else {
				t.Logf("%s/%s: %v", name, s.Name, d)
			}
		}
	}
}

// TestRandomCasesConform runs a few seeded random cases through a
// representative strategy subset (the full 20-case sweep is the CLI's job).
func TestRandomCasesConform(t *testing.T) {
	base := Baseline()
	subset := []Strategy{
		BranchyGather(), ScatterRef(), Threaded(4), HybridPattern(0.25), MPI(2),
	}
	for _, c := range RandomCases(1, 3, 2, 2) {
		ref, err := base.Run(c, true)
		if err != nil {
			t.Fatalf("%s: baseline: %v", c.Name, err)
		}
		for _, s := range subset {
			res, err := s.Run(c, true)
			if err != nil {
				t.Errorf("%s/%s: %v", c.Name, s.Name, err)
				continue
			}
			d, ok := CompareResults(ref, res, PairTolerance(base, s, c.Steps))
			if !ok {
				t.Errorf("%s/%s diverged: %v", c.Name, s.Name, d)
			}
		}
	}
}

// TestPerturbationDetected is the negative control: a deliberately corrupted
// pattern kernel must be flagged against the clean baseline, with the
// divergence localized to the first RK substep it reaches the state.
func TestPerturbationDetected(t *testing.T) {
	c, err := NamedCase("tc2", testMesh, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Baseline().Run(c, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"A1", "X2", "D1", "E"} {
		res, err := PerturbedStrategy(id, 0).Run(c, true)
		if err != nil {
			t.Fatalf("perturbed-%s: %v", id, err)
		}
		d, ok := CompareResults(ref, res, ReorderTol(c.Steps))
		if ok {
			t.Errorf("perturbed-%s NOT detected (comparator broken): %v", id, d)
			continue
		}
		if d.Step < 0 {
			t.Errorf("perturbed-%s: first divergence not localized: %v", id, d)
		}
		t.Logf("perturbed-%s detected: %v", id, d)
	}
}

func TestPerturbationErrors(t *testing.T) {
	c, _ := NamedCase("tc2", testMesh, 1)
	// B1 exists but is not a supported perturbation target.
	if _, err := PerturbedStrategy("B1", 0).Run(c, false); err == nil {
		t.Error("unsupported pattern accepted")
	}
	// D2 is only built under HighOrderThickness; default tc2 config uses D1.
	if _, err := PerturbedStrategy("D2", 0).Run(c, false); err == nil {
		t.Error("absent pattern accepted")
	}
}

func TestStageRecording(t *testing.T) {
	c, err := NamedCase("tc2", testMesh, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Baseline(), BranchyGather()} {
		res, err := s.Run(c, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Stages) != 4*c.Steps {
			t.Fatalf("%s: %d stage snapshots, want %d", s.Name, len(res.Stages), 4*c.Steps)
		}
		for i, st := range res.Stages {
			if st.Step != i/4 || st.Stage != i%4 {
				t.Fatalf("%s: snapshot %d labeled step %d stage %d", s.Name, i, st.Step, st.Stage)
			}
		}
	}
}

func TestStrategyByName(t *testing.T) {
	for _, s := range AllStrategies() {
		if _, ok := StrategyByName(s.Name); !ok {
			t.Errorf("StrategyByName(%q) not found", s.Name)
		}
	}
	if _, ok := StrategyByName("nope"); ok {
		t.Error("StrategyByName accepted an unknown name")
	}
}

func TestRandomMeshDeterministic(t *testing.T) {
	a := RandomMesh(7, 2)
	b := RandomMesh(7, 2)
	for i := range a.XCell {
		if a.XCell[i] != b.XCell[i] {
			t.Fatal("RandomMesh not deterministic for equal seeds")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("RandomMesh(7, 2) invalid: %v", err)
	}
	c := RandomMesh(8, 2)
	same := true
	for i := range a.XCell {
		if a.XCell[i] != c.XCell[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("RandomMesh identical across different seeds")
	}
}
