package conform

import (
	"repro/internal/mesh"
)

// Reordered wraps a strategy so it executes the case on the
// locality-renumbered mesh (mesh.ComputeReorder, the -reorder/Options.Reorder
// path) and converts the resulting fields back to canonical numbering
// through the inverse maps. Because the renumbering is a pure relabeling —
// every connectivity row keeps its j-order, signs and weights — the wrapped
// strategy must reproduce the unwrapped one at the SAME tolerance: exactly
// (0 ULP) for exact strategies, within its documented band for
// reduced-precision ones. That inverse-permutation equality is the
// correctness contract of the whole reordering feature, and the conformance
// suite asserts it over named and seeded-random cases for serial, plan,
// fast32 and multi-rank strategies.
//
// The wrapped run reuses the case's configuration verbatim (c.Cfg was
// derived from the canonical mesh), so no parameter can drift with the
// numbering. Mass/invariant series are global reductions summed in index
// order and therefore differ in roundoff between numberings; they ride
// along unconverted and are not part of the state comparison.
func Reordered(inner Strategy) Strategy {
	st := Strategy{
		Name:    inner.Name + "+reorder",
		Exact:   inner.Exact,
		RelBand: inner.RelBand,
	}
	st.run = func(c *Case, recordStages bool) (*Result, error) {
		r := mesh.ComputeReorder(c.Mesh)
		rm, err := r.Apply(c.Mesh)
		if err != nil {
			return nil, err
		}
		rc := *c
		rc.Mesh = rm
		res, err := inner.run(&rc, recordStages)
		if err != nil {
			return nil, err
		}
		res.H = cellToCanonical(r, res.H)
		res.U = edgeToCanonical(r, res.U)
		for i := range res.Stages {
			res.Stages[i].H = cellToCanonical(r, res.Stages[i].H)
			res.Stages[i].U = edgeToCanonical(r, res.Stages[i].U)
		}
		return res, nil
	}
	return st
}

func cellToCanonical(r *mesh.Reorder, f []float64) []float64 {
	if f == nil {
		return nil
	}
	out := make([]float64, len(f))
	r.CellToCanonical(out, f)
	return out
}

func edgeToCanonical(r *mesh.Reorder, f []float64) []float64 {
	if f == nil {
		return nil
	}
	out := make([]float64, len(f))
	r.EdgeToCanonical(out, f)
	return out
}
