package conform

import (
	"fmt"
	"sync"

	"repro/internal/hybrid"
	"repro/internal/mpisim"
	"repro/internal/par"
	"repro/internal/sw"
)

// Strategy is one way of executing a Case's trajectory.
type Strategy struct {
	// Name identifies the strategy in reports (e.g. "hybrid-f50").
	Name string
	// Exact marks strategies whose per-element arithmetic is identical to
	// the branch-free gather baseline (chunking/splitting/distribution only
	// re-partitions the index ranges): pairs of exact strategies are held to
	// ExactTol, pairs involving a reordered one to ReorderTol.
	Exact bool
	// RelBand, when nonzero, is the documented per-step relative-error band
	// of a reduced-precision strategy: comparisons involving it are held to
	// RelBand*(steps+1) in relative l-inf/l-2 instead of the float64 bands
	// (see PairTolerance). Fast32Band is the calibrated value for the
	// float32 fast mode.
	RelBand float64

	run func(c *Case, recordStages bool) (*Result, error)
}

// Run executes the case under this strategy. With recordStages, per-substep
// state snapshots are kept (where the strategy supports it) so a divergence
// can be localized to an RK step and stage.
func (st Strategy) Run(c *Case, recordStages bool) (*Result, error) {
	res, err := st.run(c, recordStages)
	if err != nil {
		return nil, fmt.Errorf("conform: %s on %s: %w", st.Name, c.Name, err)
	}
	res.Strategy = st.Name
	return res, nil
}

// runSolver integrates c.Steps steps on an initialized solver, recording
// invariants each step and (optionally) every substep state.
func runSolver(s *sw.Solver, c *Case, recordStages bool) *Result {
	res := &Result{}
	if recordStages {
		step := 0
		s.PostSubstep = func(stage int, st *sw.State) {
			res.Stages = append(res.Stages, StageState{
				Step: step, Stage: stage, H: cloneField(st.H), U: cloneField(st.U),
			})
			if stage == 3 {
				step++
			}
		}
	}
	record := func() {
		inv := s.ComputeInvariants()
		res.Inv = append(res.Inv, inv)
		res.Mass = append(res.Mass, inv.Mass)
	}
	record()
	for i := 0; i < c.Steps; i++ {
		s.Step()
		record()
	}
	res.H = cloneField(s.State.H)
	res.U = cloneField(s.State.U)
	return res
}

// solverStrategy builds a strategy around a fresh solver whose Runner is
// chosen by mkRunner (returning an optional cleanup).
func solverStrategy(name string, exact bool, mkRunner func(s *sw.Solver) (func(), error)) Strategy {
	return Strategy{Name: name, Exact: exact, run: func(c *Case, recordStages bool) (*Result, error) {
		s, err := sw.NewSolver(c.Mesh, c.Cfg)
		if err != nil {
			return nil, err
		}
		cleanup, err := mkRunner(s)
		if err != nil {
			return nil, err
		}
		if cleanup != nil {
			defer cleanup()
		}
		c.Setup(s)
		return runSolver(s, c, recordStages), nil
	}}
}

// Baseline is the branch-free gather solver on one goroutine (Algorithm 4,
// the form every other strategy is compared against).
func Baseline() Strategy {
	return solverStrategy("gather-serial", true, func(s *sw.Solver) (func(), error) {
		s.Runner = sw.SerialRunner{}
		return nil, nil
	})
}

// Threaded is the branch-free gather solver on a worker pool (one fused
// parallel region per kernel, §4.B).
func Threaded(workers int) Strategy {
	name := fmt.Sprintf("threaded-w%d", workers)
	return solverStrategy(name, true, func(s *sw.Solver) (func(), error) {
		pool := par.NewPool(workers)
		s.Runner = sw.PoolRunner{Pool: pool}
		return pool.Close, nil
	})
}

// Plan is the data-flow-compiled step: the whole RK-4 step lowered into one
// flat schedule executed inside a single parallel region, with barriers only
// at true dependency frontiers. Arithmetic is bitwise-identical to the gather
// baseline (fusion and liveness elision never reassociate a sum), so the
// strategy is exact.
func Plan(workers int) Strategy {
	name := fmt.Sprintf("plan-w%d", workers)
	return solverStrategy(name, true, func(s *sw.Solver) (func(), error) {
		pool := par.NewPool(workers)
		r, err := sw.NewPlanRunner(s, pool)
		if err != nil {
			pool.Close()
			return nil, err
		}
		s.Runner = r
		return pool.Close, nil
	})
}

// TaskPlanned is the task-dataflow execution of the compiled step: the same
// schedule as Plan lowered into a dependency-counted task graph run on
// work-stealing deques, with no level barriers. Every task executes the same
// closure over the same index range as the barrier schedule entry it came
// from, and the dependency edges enforce every hazard the barriers enforced,
// so any steal-induced interleaving is a legal topological order of identical
// arithmetic: exact.
func TaskPlanned(workers int) Strategy {
	name := fmt.Sprintf("taskplan-w%d", workers)
	return solverStrategy(name, true, func(s *sw.Solver) (func(), error) {
		pool := par.NewPool(workers)
		r, err := sw.NewTaskPlanRunner(s, pool)
		if err != nil {
			pool.Close()
			return nil, err
		}
		s.Runner = r
		return pool.Close, nil
	})
}

// Fast32Band is the documented per-step relative-error band of the float32
// fast mode against the float64 trajectory. Calibration (TestFast32Band):
// across the named cases and seeded random cases at levels 2-4, the observed
// per-step relative l-inf drift tops out near 1e-6 (a handful of float32
// ulps, 1.2e-7 each, per RK stage); the band carries ~5x headroom. The
// negative control in fast32_test.go pins that a 100x tighter band fails, so
// the tolerance stays honest.
const Fast32Band = 5e-6

// Fast32 is the float32 fast-mode step (sw.Fast32Runner): the whole RK-4
// step computed in single precision over CSR-packed SoA arrays, loading from
// and storing to the float64 state around each step. Not exact by
// construction; held to Fast32Band per step. Stage recording is forcibly
// disabled: a PostSubstep hook would silently route the run through the
// float64 path, and a fast32 result must actually measure fast32.
func Fast32(workers int) Strategy {
	name := fmt.Sprintf("fast32-w%d", workers)
	st := solverStrategy(name, false, func(s *sw.Solver) (func(), error) {
		pool := par.NewPool(workers)
		r, err := sw.NewFast32Runner(s, pool)
		if err != nil {
			pool.Close()
			return nil, err
		}
		s.Runner = r
		return pool.Close, nil
	})
	st.RelBand = Fast32Band
	inner := st.run
	st.run = func(c *Case, _ bool) (*Result, error) { return inner(c, false) }
	return st
}

// HybridPattern is the Figure-4(b) pattern-driven hybrid executor with the
// given adjustable host fraction (the migration fraction of the split cell
// patterns).
func HybridPattern(frac float64) Strategy {
	name := fmt.Sprintf("hybrid-f%02.0f", frac*100)
	return solverStrategy(name, true, func(s *sw.Solver) (func(), error) {
		e := hybrid.NewHybridSolver(s, hybrid.PatternDrivenSchedule(frac), 2, 2)
		return e.Close, nil
	})
}

// HybridKernel is the Figure-2 kernel-level hybrid executor.
func HybridKernel() Strategy {
	return solverStrategy("kernel-level", true, func(s *sw.Solver) (func(), error) {
		e := hybrid.NewHybridSolver(s, hybrid.KernelLevelSchedule(), 2, 2)
		return e.Close, nil
	})
}

// ScatterRef is the Algorithm-2 serial scatter reference stepper: the
// original MPAS loop shapes, summation-reordered relative to the gather
// forms ("consistent within the machine precision", paper Fig. 5c).
func ScatterRef() Strategy {
	return refStrategy("scatter-ref", false, scatterForms)
}

// BranchyGather is the Algorithm-3 stepper: gather loops with the
// orientation sign resolved by conditionals — bitwise-equivalent to the
// solver's branch-free Algorithm-4 kernels.
func BranchyGather() Strategy {
	return refStrategy("gather-branchy", true, branchyForms)
}

func refStrategy(name string, exact bool, f forms) Strategy {
	return Strategy{Name: name, Exact: exact, run: func(c *Case, recordStages bool) (*Result, error) {
		s, err := sw.NewSolver(c.Mesh, c.Cfg)
		if err != nil {
			return nil, err
		}
		c.Setup(s)
		stepper := newRefStepper(s, f)
		res := &Result{}
		record := func() {
			inv := s.ComputeInvariants()
			res.Inv = append(res.Inv, inv)
			res.Mass = append(res.Mass, inv.Mass)
		}
		record()
		for i := 0; i < c.Steps; i++ {
			step := i
			var rec func(stage int, st *sw.State)
			if recordStages {
				rec = func(stage int, st *sw.State) {
					res.Stages = append(res.Stages, StageState{
						Step: step, Stage: stage, H: cloneField(st.H), U: cloneField(st.U),
					})
				}
			}
			stepper.step(rec)
			record()
		}
		res.H = cloneField(s.State.H)
		res.U = cloneField(s.State.U)
		return res, nil
	}}
}

// MPI is the distributed strategy: the case decomposed across ranks
// goroutines with 3-layer halos, the final owned fields gathered back to
// global indexing. Owned points reproduce the serial run bitwise; only the
// global mass series is recorded per step (full invariants are rank-local).
func MPI(ranks int) Strategy {
	name := fmt.Sprintf("mpisim-r%d", ranks)
	return Strategy{Name: name, Exact: true, run: func(c *Case, _ bool) (*Result, error) {
		d, err := mpisim.Decompose(c.Mesh, ranks)
		if err != nil {
			return nil, err
		}
		res := &Result{}
		var mu sync.Mutex
		var firstErr error
		w := mpisim.NewWorld(ranks)
		w.Run(func(comm *mpisim.Comm) {
			rs, err := mpisim.NewRankSolver(comm, d, c.Cfg, c.Setup)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			record := func() {
				mass := rs.GlobalMass()
				if comm.Rank == 0 {
					res.Mass = append(res.Mass, mass)
				}
			}
			record()
			for i := 0; i < c.Steps; i++ {
				rs.Step()
				record()
			}
			h := rs.GatherCellField(rs.S.State.H)
			u := rs.GatherEdgeField(rs.S.State.U)
			if comm.Rank == 0 {
				res.H, res.U = h, u
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
		return res, nil
	}}
}

// AllStrategies returns the full conformance set: the gather baseline, its
// branchy and scatter reference forms, the threaded pool, both hybrid
// designs at several migration fractions, and distributed runs. The first
// entry is the baseline.
func AllStrategies() []Strategy {
	return []Strategy{
		Baseline(),
		BranchyGather(),
		ScatterRef(),
		Threaded(4),
		Plan(1),
		Plan(4),
		Plan(8),
		TaskPlanned(1),
		TaskPlanned(4),
		TaskPlanned(8),
		HybridKernel(),
		HybridPattern(0),
		HybridPattern(0.25),
		HybridPattern(0.5),
		HybridPattern(1),
		MPI(2),
		MPI(4),
		Fast32(1),
		Fast32(4),
	}
}

// StrategyByName returns the strategy with the given name from
// AllStrategies, or false.
func StrategyByName(name string) (Strategy, bool) {
	for _, s := range AllStrategies() {
		if s.Name == name {
			return s, true
		}
	}
	return Strategy{}, false
}
