// Package results renders experiment outputs as aligned text tables and CSV
// — the harness-side plumbing every figure/table reproduction shares.
package results

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented results table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	ax := x
	if ax < 0 {
		ax = -ax
	}
	switch {
	case x == 0:
		return "0"
	case ax >= 1e6 || ax < 1e-4:
		return fmt.Sprintf("%.3e", x)
	case ax >= 100:
		return fmt.Sprintf("%.1f", x)
	case ax >= 1:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		fmt.Fprintf(&b, "%-*s", widths[i]+2, strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// csvEscape quotes a field per RFC 4180: fields containing a comma, quote,
// CR or LF are wrapped in double quotes with embedded quotes doubled.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}

// WriteCSV renders the table as RFC 4180 CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}
