package results

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tab := NewTable("title", "a", "bb", "ccc")
	tab.AddRow(1, 2.5, "x")
	tab.AddRow("long-cell", 0.00001, -3)
	s := tab.String()
	if !strings.HasPrefix(s, "title\n") {
		t.Errorf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4+1 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// All data lines align: header width equals each row width.
	if len(lines[1]) != len(lines[3]) || len(lines[1]) != len(lines[4]) {
		t.Errorf("columns not aligned:\n%s", s)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "x", "y")
	tab.AddRow(1, 2)
	tab.AddRow(3, 4)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if b.String() != want {
		t.Errorf("CSV = %q want %q", b.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1e7:     "1.000e+07",
		1e-5:    "1.000e-05",
		123.456: "123.5",
		1.23456: "1.235",
		0.5:     "0.5000",
		-123.4:  "-123.4",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q want %q", in, got, want)
		}
	}
}

func TestFloat32Row(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(float32(2.5))
	if !strings.Contains(tab.String(), "2.500") {
		t.Errorf("float32 not formatted: %s", tab.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tab := NewTable("t", "only")
	s := tab.String()
	if !strings.Contains(s, "only") {
		t.Error("header missing")
	}
	if tab.NumRows() != 0 {
		t.Error("phantom rows")
	}
}
