package results

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tab := NewTable("title", "a", "bb", "ccc")
	tab.AddRow(1, 2.5, "x")
	tab.AddRow("long-cell", 0.00001, -3)
	s := tab.String()
	if !strings.HasPrefix(s, "title\n") {
		t.Errorf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4+1 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// All data lines align: header width equals each row width.
	if len(lines[1]) != len(lines[3]) || len(lines[1]) != len(lines[4]) {
		t.Errorf("columns not aligned:\n%s", s)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "x", "y")
	tab.AddRow(1, 2)
	tab.AddRow(3, 4)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if b.String() != want {
		t.Errorf("CSV = %q want %q", b.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1e7:     "1.000e+07",
		1e-5:    "1.000e-05",
		123.456: "123.5",
		1.23456: "1.235",
		0.5:     "0.5000",
		-123.4:  "-123.4",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q want %q", in, got, want)
		}
	}
}

func TestFloat32Row(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(float32(2.5))
	if !strings.Contains(tab.String(), "2.500") {
		t.Errorf("float32 not formatted: %s", tab.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tab := NewTable("t", "only")
	s := tab.String()
	if !strings.Contains(s, "only") {
		t.Error("header missing")
	}
	if tab.NumRows() != 0 {
		t.Error("phantom rows")
	}
}

// RFC 4180: fields with commas, quotes, or newlines must be quoted, with
// embedded quotes doubled; the whole file must round-trip through a
// standard CSV reader.
func TestCSVQuoting(t *testing.T) {
	tab := NewTable("", "name", "note", "x")
	tab.AddRow("plain", "a,b", 1)
	tab.AddRow(`say "hi"`, "line1\nline2", 2.5)
	tab.AddRow("crlf\r\nend", "ok", 3)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"a,b"`,
		`"say ""hi"""`,
		"\"line1\nline2\"",
		"\"crlf\r\nend\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output does not parse as CSV: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("parsed %d records, want 4 (header + 3 rows)", len(recs))
	}
	if recs[1][1] != "a,b" || recs[2][0] != `say "hi"` || recs[2][1] != "line1\nline2" {
		t.Errorf("round-trip mismatch: %q", recs)
	}
}

// Unquoted output stays byte-identical for content that needs no escaping.
func TestCSVPlainUnchanged(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x", 1.5)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\nx,1.500\n" {
		t.Errorf("plain CSV changed: %q", b.String())
	}
}
