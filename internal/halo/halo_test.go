package halo

import (
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/partition"
)

func decompose(t *testing.T, level, nranks, layers int) (*mesh.Mesh, []*partition.Local, []*ExchangeSpec) {
	t.Helper()
	g, err := mesh.Build(level, mesh.Options{})
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	part, err := partition.Bisect(g, nranks)
	if err != nil {
		t.Fatalf("bisect: %v", err)
	}
	locals := make([]*partition.Local, nranks)
	for r := 0; r < nranks; r++ {
		locals[r] = partition.Extract(g, part, r, layers)
	}
	specs := BuildSpecs(g, locals)
	if err := Validate(specs); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return g, locals, specs
}

// Every halo cell and non-owned edge must be covered by exactly one recv
// list, and every send slot must be an owned entity on the sender.
func TestSpecsCoverHalo(t *testing.T) {
	for _, nranks := range []int{2, 3, 4} {
		_, locals, specs := decompose(t, 3, nranks, 3)
		for r, l := range locals {
			p := specs[r]
			if p.Rank != r {
				t.Fatalf("spec rank %d != %d", p.Rank, r)
			}
			cellCovered := make([]int, len(l.CellL2G))
			edgeCovered := make([]int, len(l.EdgeL2G))
			for _, peer := range p.Peers {
				for _, lc := range p.RecvCells[peer] {
					cellCovered[lc]++
				}
				for _, le := range p.RecvEdges[peer] {
					edgeCovered[le]++
				}
				for _, lc := range p.SendCells[peer] {
					if int(lc) >= l.NOwnedCells {
						t.Fatalf("rank %d sends non-owned cell slot %d to %d", r, lc, peer)
					}
				}
				for _, le := range p.SendEdges[peer] {
					if int(l.EdgeOwner[le]) != r {
						t.Fatalf("rank %d sends non-owned edge slot %d to %d", r, le, peer)
					}
				}
			}
			for lc := range cellCovered {
				want := 0
				if lc >= l.NOwnedCells {
					want = 1
				}
				if cellCovered[lc] != want {
					t.Fatalf("rank %d cell %d covered %d times, want %d", r, lc, cellCovered[lc], want)
				}
			}
			for le := range edgeCovered {
				want := 0
				if int(l.EdgeOwner[le]) != r {
					want = 1
				}
				if edgeCovered[le] != want {
					t.Fatalf("rank %d edge %d covered %d times, want %d", r, le, edgeCovered[le], want)
				}
			}
		}
	}
}

// Packing a globally-consistent field on the owner and unpacking on the
// receiver must reproduce the owner's values at every halo slot exactly.
func TestPackUnpackRoundTrip(t *testing.T) {
	g, locals, specs := decompose(t, 3, 3, 2)
	rng := rand.New(rand.NewSource(7))
	gcell := make([]float64, g.NCells)
	gedge := make([]float64, g.NEdges)
	for i := range gcell {
		gcell[i] = rng.NormFloat64()
	}
	for i := range gedge {
		gedge[i] = rng.NormFloat64()
	}
	// Local fields: owned slots from the global field, halo slots poisoned.
	cellF := make([][]float64, len(locals))
	edgeF := make([][]float64, len(locals))
	for r, l := range locals {
		cellF[r] = make([]float64, len(l.CellL2G))
		edgeF[r] = make([]float64, len(l.EdgeL2G))
		for lc, gc := range l.CellL2G {
			if lc < l.NOwnedCells {
				cellF[r][lc] = gcell[gc]
			} else {
				cellF[r][lc] = -1e300
			}
		}
		for le, ge := range l.EdgeL2G {
			if int(l.EdgeOwner[le]) == r {
				edgeF[r][le] = gedge[ge]
			} else {
				edgeF[r][le] = -1e300
			}
		}
	}
	// One full exchange through Pack/Unpack.
	for r, p := range specs {
		for _, peer := range p.Peers {
			buf := make([]float64, p.SendLen(peer))
			msg := p.PackSend(peer, cellF[r], edgeF[r], buf)
			if len(msg) != specs[peer].RecvLen(r) {
				t.Fatalf("rank %d -> %d: send len %d != recv len %d",
					r, peer, len(msg), specs[peer].RecvLen(r))
			}
			specs[peer].UnpackRecv(r, msg, cellF[peer], edgeF[peer])
		}
	}
	for r, l := range locals {
		for lc, gc := range l.CellL2G {
			if cellF[r][lc] != gcell[gc] {
				t.Fatalf("rank %d cell %d: got %v want %v", r, lc, cellF[r][lc], gcell[gc])
			}
		}
		for le, ge := range l.EdgeL2G {
			if edgeF[r][le] != gedge[ge] {
				t.Fatalf("rank %d edge %d: got %v want %v", r, le, edgeF[r][le], gedge[ge])
			}
		}
	}
}

func TestHaloBytesMatchesLists(t *testing.T) {
	_, _, specs := decompose(t, 3, 2, 1)
	for _, p := range specs {
		want := 0
		for _, peer := range p.Peers {
			want += (p.SendLen(peer) + p.RecvLen(peer)) * 8
		}
		if got := p.HaloBytes(); got != want {
			t.Fatalf("HaloBytes %d != %d", got, want)
		}
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	_, _, specs := decompose(t, 3, 2, 1)
	// Drop one element from a send list: lengths no longer match.
	p := specs[0]
	peer := p.Peers[0]
	p.SendCells[peer] = p.SendCells[peer][:len(p.SendCells[peer])-1]
	if err := Validate(specs); err == nil {
		t.Fatal("Validate accepted a truncated send list")
	}
}
