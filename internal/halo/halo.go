// Package halo defines the halo-exchange pattern of the distributed
// shallow-water runs: which local cell and edge slots each rank packs into
// its outgoing per-peer messages and which slots it fills from incoming
// ones. It is the single definition consumed by both message-passing
// substrates — the in-process channel simulator (internal/mpisim) and the
// real multi-process TCP runtime (internal/dist) — so the two cannot drift.
//
// Send lists on the owning rank are constructed in exactly the same order
// as the receiving rank's recv lists, so halo messages need no per-element
// headers: a message is the concatenation [cells..., edges...] in list
// order, and both sides agree on its length a priori (SendLen/RecvLen).
package halo

import (
	"fmt"
	"sort"

	"repro/internal/mesh"
	"repro/internal/partition"
)

// ExchangeSpec is one rank's halo-exchange pattern: for each peer, the local
// cell and edge slots to pack into outgoing messages and the slots to fill
// from incoming ones.
type ExchangeSpec struct {
	Rank      int
	Peers     []int
	SendCells map[int][]int32
	RecvCells map[int][]int32
	SendEdges map[int][]int32
	RecvEdges map[int][]int32
}

// HaloBytes returns the per-exchange message volume of this rank (one cell
// field plus one edge field, both directions, 8 bytes per value).
func (p *ExchangeSpec) HaloBytes() int {
	n := 0
	for _, peer := range p.Peers {
		n += len(p.SendCells[peer]) + len(p.RecvCells[peer])
		n += len(p.SendEdges[peer]) + len(p.RecvEdges[peer])
	}
	return n * 8
}

// SendLen returns the number of float64 values in one outgoing message to
// peer (cells then edges).
func (p *ExchangeSpec) SendLen(peer int) int {
	return len(p.SendCells[peer]) + len(p.SendEdges[peer])
}

// RecvLen returns the number of float64 values in one incoming message from
// peer.
func (p *ExchangeSpec) RecvLen(peer int) int {
	return len(p.RecvCells[peer]) + len(p.RecvEdges[peer])
}

// PackSend fills buf (which must have SendLen(peer) capacity) with the
// outgoing message for peer: owned cell values then owned edge values, in
// list order. Returns buf sliced to the message length.
func (p *ExchangeSpec) PackSend(peer int, cellField, edgeField, buf []float64) []float64 {
	sc, se := p.SendCells[peer], p.SendEdges[peer]
	buf = buf[:len(sc)+len(se)]
	for i, lc := range sc {
		buf[i] = cellField[lc]
	}
	off := len(sc)
	for i, le := range se {
		buf[off+i] = edgeField[le]
	}
	return buf
}

// UnpackRecv scatters an incoming message from peer into the halo slots of
// cellField and edgeField. buf must hold exactly RecvLen(peer) values.
func (p *ExchangeSpec) UnpackRecv(peer int, buf, cellField, edgeField []float64) {
	rc, re := p.RecvCells[peer], p.RecvEdges[peer]
	for i, lc := range rc {
		cellField[lc] = buf[i]
	}
	off := len(rc)
	for i, le := range re {
		edgeField[le] = buf[off+i]
	}
}

// Validate cross-checks a full set of specs: every send list must have the
// same length as the peer's matching recv list, and peer lists must be
// symmetric.
func Validate(specs []*ExchangeSpec) error {
	for r, p := range specs {
		if p.Rank != r {
			return fmt.Errorf("halo: spec %d carries rank %d", r, p.Rank)
		}
		for _, peer := range p.Peers {
			if peer < 0 || peer >= len(specs) || peer == r {
				return fmt.Errorf("halo: rank %d has invalid peer %d", r, peer)
			}
			q := specs[peer]
			if got, want := len(p.SendCells[peer]), len(q.RecvCells[r]); got != want {
				return fmt.Errorf("halo: rank %d sends %d cells to %d, peer expects %d", r, got, peer, want)
			}
			if got, want := len(p.SendEdges[peer]), len(q.RecvEdges[r]); got != want {
				return fmt.Errorf("halo: rank %d sends %d edges to %d, peer expects %d", r, got, peer, want)
			}
			found := false
			for _, pr := range q.Peers {
				if pr == r {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("halo: rank %d lists peer %d but not vice versa", r, peer)
			}
		}
	}
	return nil
}

// BuildSpecs constructs consistent exchange specs for all ranks of a
// decomposition: rank r receives every halo cell from its owner and every
// non-owned local edge from the edge's owner, and the owner's send lists
// are built in the receiver's local order.
func BuildSpecs(g *mesh.Mesh, locals []*partition.Local) []*ExchangeSpec {
	specs := make([]*ExchangeSpec, len(locals))
	for r := range specs {
		specs[r] = &ExchangeSpec{
			Rank:      r,
			SendCells: map[int][]int32{}, RecvCells: map[int][]int32{},
			SendEdges: map[int][]int32{}, RecvEdges: map[int][]int32{},
		}
	}
	for r, l := range locals {
		// Halo cells, in local order, grouped by owner.
		for lc := l.NOwnedCells; lc < len(l.CellL2G); lc++ {
			o := int(l.CellOwner[lc])
			specs[r].RecvCells[o] = append(specs[r].RecvCells[o], int32(lc))
			gcell := l.CellL2G[lc]
			specs[o].SendCells[r] = append(specs[o].SendCells[r], locals[o].CellG2L[gcell])
		}
		// Non-owned local edges.
		for le, ge := range l.EdgeL2G {
			o := int(l.EdgeOwner[le])
			if o == r {
				continue
			}
			specs[r].RecvEdges[o] = append(specs[r].RecvEdges[o], int32(le))
			specs[o].SendEdges[r] = append(specs[o].SendEdges[r], locals[o].EdgeG2L[ge])
		}
	}
	for r, p := range specs {
		peers := map[int]bool{}
		for o := range p.RecvCells {
			peers[o] = true
		}
		for o := range p.SendCells {
			peers[o] = true
		}
		for o := range p.RecvEdges {
			peers[o] = true
		}
		for o := range p.SendEdges {
			peers[o] = true
		}
		delete(peers, r)
		for o := range peers {
			p.Peers = append(p.Peers, o)
		}
		sort.Ints(p.Peers)
	}
	return specs
}
