package ladder

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

// TestRunSmallLevels climbs two cheap rungs for real and checks every
// report field is populated and self-consistent (closed-sphere counts,
// positive times, a per-kernel split that sums to ~the serial step).
func TestRunSmallLevels(t *testing.T) {
	rep, err := Run(Config{MinLevel: 3, MaxLevel: 4, Steps: 1}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Levels) != 2 {
		t.Fatalf("got %d levels, want 2", len(rep.Levels))
	}
	for i, lv := range rep.Levels {
		level := 3 + i
		wantCells := 10*(1<<(2*uint(level))) + 2
		if lv.Cells != wantCells {
			t.Errorf("level %d: %d cells, want %d", level, lv.Cells, wantCells)
		}
		if lv.Edges != 3*lv.Cells-6 || lv.Vertices != 2*lv.Cells-4 {
			t.Errorf("level %d: counts violate sphere identities: %+v", level, lv)
		}
		if lv.SerialStep <= 0 || lv.PlanStep <= 0 || lv.Fast32Step <= 0 {
			t.Errorf("level %d: non-positive step time: %+v", level, lv)
		}
		if lv.ModeledBytes <= 0 || lv.CSRBytes <= 0 || lv.HeapBytes == 0 {
			t.Errorf("level %d: missing footprint fields: %+v", level, lv)
		}
		if len(lv.PerKernel) == 0 {
			t.Errorf("level %d: empty per-kernel split", level)
		}
		var sum float64
		for name, sec := range lv.PerKernel {
			if sec < 0 {
				t.Errorf("level %d: negative kernel time %s", level, name)
			}
			sum += sec
		}
		// The kernels are the step: their sum must be within 2x of the
		// measured serial step (timer overhead and warm-up jitter aside).
		if sum < lv.SerialStep/2 || sum > 2*lv.SerialStep {
			t.Errorf("level %d: per-kernel sum %.2e inconsistent with serial step %.2e",
				level, sum, lv.SerialStep)
		}
	}
}

// TestRunReorderColumns climbs one cheap rung with the reorder columns on:
// the renumbered measurements and the locality pair must be populated, and
// renumbering must actually shrink the mean neighbor-index distance (that
// shrinkage is the entire mechanism the extra columns exist to show).
func TestRunReorderColumns(t *testing.T) {
	rep, err := Run(Config{MinLevel: 4, MaxLevel: 4, Steps: 1, Reorder: true}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	lv := rep.Levels[0]
	if lv.PlanStepReorder <= 0 || lv.Fast32StepReorder <= 0 {
		t.Errorf("reorder step columns not measured: %+v", lv)
	}
	if lv.PlanBandwidth <= 0 || lv.PlanBandwidthReorder <= 0 {
		t.Errorf("achieved-bandwidth columns not derived: %+v", lv)
	}
	if lv.NeighborDistBefore <= 0 || lv.NeighborDistAfter <= 0 {
		t.Errorf("neighbor-distance columns not measured: %+v", lv)
	}
	if lv.NeighborDistAfter >= lv.NeighborDistBefore {
		t.Errorf("renumbering did not improve locality: %.1f -> %.1f",
			lv.NeighborDistBefore, lv.NeighborDistAfter)
	}
}

// TestCheckLinear feeds fabricated ladders to the scaling assertion:
// linear growth (constant ns/cell) passes, mild cache-fallout growth passes
// within the slack, quadratic growth fails, and the failure names the mode.
func TestCheckLinear(t *testing.T) {
	mk := func(times ...float64) []Level {
		var out []Level
		cells := 40962
		for _, s := range times {
			out = append(out, Level{Level: 6, Cells: cells, SerialStep: s, PlanStep: s, Fast32Step: s})
			cells *= 4
		}
		return out
	}
	if err := CheckLinear(mk(0.1, 0.4, 1.6), 1.8); err != nil {
		t.Errorf("linear ladder rejected: %v", err)
	}
	if err := CheckLinear(mk(0.1, 0.6, 2.4), 1.8); err != nil {
		t.Errorf("1.5x/rung cache-fallout ladder rejected: %v", err)
	}
	err := CheckLinear(mk(0.1, 1.6, 25.6), 1.8)
	if err == nil {
		t.Fatal("quadratic ladder accepted")
	}
	if !strings.Contains(err.Error(), "serial") {
		t.Errorf("failure does not name the mode column: %v", err)
	}

	// A column missing on one rung (e.g. fast32 skipped) is not an error.
	lv := mk(0.1, 0.4)
	lv[1].Fast32Step = 0
	if err := CheckLinear(lv, 1.8); err != nil {
		t.Errorf("missing column rejected: %v", err)
	}
}

// TestModeledBytesScalesLinearly pins the traffic model the measured times
// are read against: bytes/step is linear in cell count by construction.
func TestModeledBytesScalesLinearly(t *testing.T) {
	a := ModeledBytesPerStep(perfmodel.CountsForCells(40962))
	b := ModeledBytesPerStep(perfmodel.CountsForCells(4 * 40962))
	if a <= 0 {
		t.Fatalf("non-positive modeled bytes %v", a)
	}
	if ratio := b / a; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("modeled bytes ratio %.3f for 4x cells, want ~4", ratio)
	}
}

// TestMergeJSON round-trips the report into a pre-existing benchmark JSON
// without clobbering its entries, and overwrites a stale ladder key.
func TestMergeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path,
		[]byte(`{"BenchmarkStepPlan/10242cells": {"ns_per_op": 5580000}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := &Report{Config: Config{MinLevel: 6, MaxLevel: 7, Steps: 2},
		Levels: []Level{{Level: 6, Cells: 40962}}}
	if err := MergeJSON(path, "ladder", rep); err != nil {
		t.Fatal(err)
	}
	// Merge again with a different report: the key must be replaced.
	rep.Levels[0].Cells = 40963
	if err := MergeJSON(path, "ladder", rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench  map[string]float64 `json:"BenchmarkStepPlan/10242cells"`
		Ladder Report             `json:"ladder"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("merged file is not valid JSON: %v\n%s", err, raw)
	}
	if doc.Bench["ns_per_op"] != 5580000 {
		t.Errorf("pre-existing benchmark entry clobbered: %s", raw)
	}
	if len(doc.Ladder.Levels) != 1 || doc.Ladder.Levels[0].Cells != 40963 {
		t.Errorf("ladder key not replaced: %+v", doc.Ladder)
	}
}
