// Package ladder is the Table-III big-mesh scaling harness: it climbs the
// icosahedral refinement ladder (level n has 10*4^n+2 cells; the paper's
// Table III runs 163842 → 2621442 cells, levels 7–9), measures real
// seconds/step for the serial, compiled-plan, and float32 fast-mode
// executions on each rung, and attaches the per-kernel wall-time split and
// the modeled streaming traffic (perfmodel.WorkTable bytes) so measured
// times can be read against the bandwidth ceiling.
//
// The harness exists to pin the scaling CLAIM, not a specific speed: step
// time must grow no worse than ~linearly in cell count (CheckLinear), which
// is what the SoA/CSR layout and bounds-check-free kernels buy once the
// working set falls out of cache. cmd/bigmesh is the CLI; scripts/bench.sh
// merges the report into the benchmark JSON under the "ladder" key.
package ladder

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	mpas "repro"
	"repro/internal/mesh"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
)

// Config selects the rungs and the measurement effort per rung.
type Config struct {
	// MinLevel..MaxLevel are the icosahedral subdivision levels to climb
	// (inclusive). Defaults 6..7 — the cheap rungs; Table III proper is 7..9.
	MinLevel, MaxLevel int
	// Steps is the number of timed steps per execution mode per rung
	// (after one untimed warm-up step). Default 2.
	Steps int
	// Workers is the pool size for the plan and fast32 runs (0 = GOMAXPROCS).
	Workers int
	// Lloyd is the number of Lloyd relaxation sweeps in mesh construction.
	// Default 0: relaxation cost grows superlinearly and does not change
	// the scaling exponent being measured.
	Lloyd int
	// Reorder additionally measures the plan and fast32 rungs on the SFC
	// locality-renumbered mesh (mpas.Options.Reorder) and records the mean
	// neighbor-index distance before/after — the pair of columns that shows
	// where renumbering starts paying (the rungs whose working set has
	// fallen out of cache).
	Reorder bool
}

func (c Config) withDefaults() Config {
	if c.MinLevel == 0 {
		c.MinLevel = 6
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = 7
	}
	if c.Steps <= 0 {
		c.Steps = 2
	}
	return c
}

// Level is one rung's measurements.
type Level struct {
	Level    int `json:"level"`
	Cells    int `json:"cells"`
	Edges    int `json:"edges"`
	Vertices int `json:"vertices"`

	BuildSeconds float64 `json:"build_seconds"`

	// Measured seconds per RK-4 step (mean over Config.Steps timed steps).
	SerialStep float64 `json:"serial_step_seconds"`
	PlanStep   float64 `json:"plan_step_seconds"`
	Fast32Step float64 `json:"fast32_step_seconds"`

	// Task-graph columns: the same compiled plan executed as a
	// dependency-counted task graph (mpas.TaskPlan, no level barriers), with
	// the scheduler's per-step steal count and summed per-worker idle time
	// from the par_taskplan_* telemetry. Steals/idle are recorded even when
	// zero — "measured zero" (a one-worker pool never steals or parks) must
	// stay distinguishable from "not measured".
	TaskStep        float64 `json:"taskplan_step_seconds"`
	TaskSteals      float64 `json:"taskplan_steals_per_step"`
	TaskIdleSeconds float64 `json:"taskplan_idle_seconds_per_step"`

	// Reorder columns (Config.Reorder): the same plan/fast32 measurements
	// on the SFC-renumbered mesh, and the mean neighbor-index distance (in
	// cell units) before and after renumbering — the locality the columns
	// are buying.
	PlanStepReorder    float64 `json:"plan_step_reorder_seconds,omitempty"`
	Fast32StepReorder  float64 `json:"fast32_step_reorder_seconds,omitempty"`
	NeighborDistBefore float64 `json:"neighbor_dist_before,omitempty"`
	NeighborDistAfter  float64 `json:"neighbor_dist_after,omitempty"`

	// PerKernel is the serial run's wall-time split by Algorithm-1 kernel
	// (seconds per step, from the sw_kernel_*_seconds telemetry timers).
	PerKernel map[string]float64 `json:"per_kernel_seconds"`

	// ModeledBytes is the Table-I streaming traffic of one step
	// (perfmodel.WorkTable bytes summed over the four RK stages plus the
	// driver's state copies) — the denominator for a bandwidth reading.
	ModeledBytes float64 `json:"modeled_bytes_per_step"`
	// PlanBandwidth is the achieved streaming rate implied by the plan
	// measurement (ModeledBytes / PlanStep): modeled traffic over measured
	// time, directly comparable to the device bandwidth ceiling. The
	// reorder variant reads the renumbered measurement against the SAME
	// modeled traffic — renumbering changes none of the arithmetic or the
	// bytes, only how far apart they sit.
	PlanBandwidth        float64 `json:"plan_achieved_bytes_per_second,omitempty"`
	PlanBandwidthReorder float64 `json:"plan_reorder_achieved_bytes_per_second,omitempty"`
	// CSRBytes is the measured footprint of the packed adjacency.
	CSRBytes int64 `json:"csr_bytes"`
	// HeapBytes is the live heap after the rung's solvers were built.
	HeapBytes uint64 `json:"heap_bytes"`
}

// Report is the whole ladder, merged into the benchmark JSON by MergeJSON.
type Report struct {
	Config Config  `json:"config"`
	Levels []Level `json:"levels"`
}

// Run climbs the ladder. logf (may be nil) receives one progress line per
// measurement so long rungs are visibly alive.
func Run(cfg Config, logf func(format string, args ...any)) (*Report, error) {
	cfg = cfg.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.MinLevel > cfg.MaxLevel {
		return nil, fmt.Errorf("ladder: min level %d > max level %d", cfg.MinLevel, cfg.MaxLevel)
	}
	rep := &Report{Config: cfg}
	for level := cfg.MinLevel; level <= cfg.MaxLevel; level++ {
		lv, err := runLevel(cfg, level, logf)
		if err != nil {
			return nil, err
		}
		rep.Levels = append(rep.Levels, *lv)
	}
	return rep, nil
}

func runLevel(cfg Config, level int, logf func(string, ...any)) (*Level, error) {
	t0 := time.Now()
	m, err := mesh.Build(level, mesh.Options{LloydIterations: cfg.Lloyd})
	if err != nil {
		return nil, fmt.Errorf("ladder: level %d: %w", level, err)
	}
	lv := &Level{
		Level:        level,
		Cells:        m.NCells,
		Edges:        m.NEdges,
		Vertices:     m.NVertices,
		BuildSeconds: time.Since(t0).Seconds(),
	}
	logf("level %d: %d cells built in %.1fs", level, m.NCells, lv.BuildSeconds)

	csr, err := m.PackCSR()
	if err != nil {
		return nil, fmt.Errorf("ladder: level %d: %w", level, err)
	}
	lv.CSRBytes = csr.Bytes()
	mc := perfmodel.MeshCounts{Cells: m.NCells, Edges: m.NEdges, Vertices: m.NVertices}
	lv.ModeledBytes = ModeledBytesPerStep(mc)

	// Serial rung, with the per-kernel wall-time split.
	reg := telemetry.NewRegistry()
	sec, err := timeMode(m, mpas.Serial, "", cfg, false, func(mod *mpas.Model) {
		mod.EnableTelemetry(nil, reg)
	})
	if err != nil {
		return nil, err
	}
	lv.SerialStep = sec
	lv.PerKernel = map[string]float64{}
	// One warm-up step was also timed by the registry: divide by Steps+1.
	for _, name := range kernelNames(m) {
		if t := reg.Timer("sw_kernel_" + name + "_seconds"); t.Count() > 0 {
			lv.PerKernel[name] = t.Total().Seconds() / float64(cfg.Steps+1)
		}
	}
	logf("level %d: serial %.3fs/step", level, lv.SerialStep)

	if lv.PlanStep, err = timeMode(m, mpas.Plan, "", cfg, false, nil); err != nil {
		return nil, err
	}
	lv.PlanBandwidth = lv.ModeledBytes / lv.PlanStep
	logf("level %d: plan   %.3fs/step (%.1f GB/s achieved)", level, lv.PlanStep, lv.PlanBandwidth/1e9)

	if lv.Fast32Step, err = timeMode(m, mpas.Plan, "float32", cfg, false, nil); err != nil {
		return nil, err
	}
	logf("level %d: fast32 %.3fs/step", level, lv.Fast32Step)

	// Task-graph rung, with the scheduler telemetry. The registry covers the
	// warm-up step too, hence the Steps+1 divisor.
	treg := telemetry.NewRegistry()
	if lv.TaskStep, err = timeMode(m, mpas.TaskPlan, "", cfg, false, func(mod *mpas.Model) {
		mod.EnableTelemetry(nil, treg)
	}); err != nil {
		return nil, err
	}
	perRun := float64(cfg.Steps + 1)
	lv.TaskSteals = float64(treg.Counter("par_taskplan_steals_total").Value()) / perRun
	nw := cfg.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	for w := 0; w < nw; w++ {
		if t := treg.Timer(fmt.Sprintf("par_taskplan_w%d_idle_seconds", w)); t != nil {
			lv.TaskIdleSeconds += t.Total().Seconds() / perRun
		}
	}
	logf("level %d: taskplan %.3fs/step (%.0f steals/step, %.3fs idle/step)",
		level, lv.TaskStep, lv.TaskSteals, lv.TaskIdleSeconds)

	if cfg.Reorder {
		if err := measureReorder(cfg, m, lv, logf); err != nil {
			return nil, err
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	lv.HeapBytes = ms.HeapAlloc
	return lv, nil
}

// measureReorder adds the renumbered plan/fast32 columns and the
// locality-before/after pair to an already measured rung.
func measureReorder(cfg Config, m *mesh.Mesh, lv *Level, logf func(string, ...any)) error {
	lv.NeighborDistBefore = m.NeighborLocality().Mean
	rm, err := mesh.ComputeReorder(m).Apply(m)
	if err != nil {
		return fmt.Errorf("ladder: level %d: %w", lv.Level, err)
	}
	lv.NeighborDistAfter = rm.NeighborLocality().Mean

	if lv.PlanStepReorder, err = timeMode(m, mpas.Plan, "", cfg, true, nil); err != nil {
		return err
	}
	lv.PlanBandwidthReorder = lv.ModeledBytes / lv.PlanStepReorder
	logf("level %d: plan+reorder   %.3fs/step (%.2fx, neighbor dist %.0f -> %.0f)",
		lv.Level, lv.PlanStepReorder, lv.PlanStep/lv.PlanStepReorder,
		lv.NeighborDistBefore, lv.NeighborDistAfter)

	if lv.Fast32StepReorder, err = timeMode(m, mpas.Plan, "float32", cfg, true, nil); err != nil {
		return err
	}
	logf("level %d: fast32+reorder %.3fs/step (%.2fx)",
		lv.Level, lv.Fast32StepReorder, lv.Fast32Step/lv.Fast32StepReorder)
	return nil
}

// timeMode builds a TC5 model on msh under the given mode/precision, runs
// one warm-up step, then returns the mean of cfg.Steps timed steps.
func timeMode(msh *mesh.Mesh, mode mpas.Mode, precision string, cfg Config,
	reorder bool, prep func(*mpas.Model)) (float64, error) {
	mod, err := mpas.New(mpas.Options{
		Mesh: msh, TestCase: mpas.TC5, Mode: mode,
		Workers: cfg.Workers, Precision: precision, Reorder: reorder,
	})
	if err != nil {
		return 0, err
	}
	defer mod.Close()
	if prep != nil {
		prep(mod)
	}
	mod.Step() // warm-up: page in the working set, compile-on-first-use paths
	t0 := time.Now()
	for i := 0; i < cfg.Steps; i++ {
		mod.Step()
	}
	return time.Since(t0).Seconds() / float64(cfg.Steps), nil
}

// kernelNames returns the Algorithm-1 kernel names (for timer lookup)
// without keeping the probe solver alive.
func kernelNames(m *mesh.Mesh) []string {
	mod, err := mpas.New(mpas.Options{Mesh: m, TestCase: mpas.TC5})
	if err != nil {
		return nil
	}
	defer mod.Close()
	var names []string
	for _, k := range mod.Solver.Kernels() {
		names = append(names, k.Name)
	}
	return names
}

// ModeledBytesPerStep sums the Table-I per-pattern streaming traffic over
// the four RK substages plus the driver's two state copies — the same
// accounting perfmodel.StepTime divides by device bandwidth.
func ModeledBytesPerStep(mc perfmodel.MeshCounts) float64 {
	byKernel := map[string][]perfmodel.PatternWork{}
	for _, pw := range perfmodel.Workload(mc, false) {
		byKernel[pw.Inst.Kernel] = append(byKernel[pw.Inst.Kernel], pw)
	}
	total := 0.0
	for stage := 0; stage < 4; stage++ {
		for _, k := range perfmodel.StageKernels(stage) {
			for _, pw := range byKernel[k] {
				total += float64(pw.N) * pw.Bytes
			}
		}
	}
	total += float64(mc.Cells+mc.Edges) * 8 * 2 * 2
	return total
}

// CheckLinear asserts step time grows no worse than ~linearly in cell
// count: between consecutive rungs, seconds-per-cell may grow by at most
// slack (e.g. 1.8 tolerates falling out of last-level cache plus timer
// noise, but fails any superlinear blow-up). Checked for every measured
// mode column that is present on both rungs.
func CheckLinear(levels []Level, slack float64) error {
	if slack <= 0 {
		slack = 1.8
	}
	cols := []struct {
		name string
		get  func(Level) float64
	}{
		{"serial", func(l Level) float64 { return l.SerialStep }},
		{"plan", func(l Level) float64 { return l.PlanStep }},
		{"fast32", func(l Level) float64 { return l.Fast32Step }},
		{"taskplan", func(l Level) float64 { return l.TaskStep }},
		{"plan+reorder", func(l Level) float64 { return l.PlanStepReorder }},
		{"fast32+reorder", func(l Level) float64 { return l.Fast32StepReorder }},
	}
	for i := 1; i < len(levels); i++ {
		a, b := levels[i-1], levels[i]
		if a.Cells <= 0 || b.Cells <= 0 {
			return fmt.Errorf("ladder: level %d/%d: missing cell counts", a.Level, b.Level)
		}
		for _, col := range cols {
			ta, tb := col.get(a), col.get(b)
			if ta <= 0 || tb <= 0 {
				continue // column not measured on this rung
			}
			perA, perB := ta/float64(a.Cells), tb/float64(b.Cells)
			if perB > slack*perA {
				return fmt.Errorf(
					"ladder: %s step superlinear from level %d to %d: %.2f ns/cell -> %.2f ns/cell (slack %.2fx)",
					col.name, a.Level, b.Level, perA*1e9, perB*1e9, slack)
			}
		}
	}
	return nil
}

// MergeJSON inserts the report under the given key of the JSON object at
// path (creating the file if absent), preserving existing entries — the
// benchmark summaries from scripts/bench.sh and the ladder share one file.
func MergeJSON(path, key string, rep *Report) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("ladder: %s exists but is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.MarshalIndent(rep, "  ", "  ")
	if err != nil {
		return err
	}
	doc[key] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
