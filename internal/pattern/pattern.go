// Package pattern defines the paper's basic computation patterns (§3.A,
// Figure 3): the three C-grid point types of the SCVT mesh, the eight
// stencil pattern shapes A–H between them, the local pattern shape X, and
// the Table I registry of every pattern instance in the shallow-water model
// together with its input and output variables.
//
// Pattern instances are the scheduling unit of the whole reproduction: the
// data-flow graph (package dataflow) connects them by variable def/use, and
// the hybrid executors (package hybrid) place them on host or device.
package pattern

import "fmt"

// PointType is a mesh point class of the C-grid staggering (paper Fig. 1).
type PointType uint8

const (
	// Mass points: Voronoi cell centers (h, ke, divergence, pv_cell ...).
	Mass PointType = iota
	// Velocity points: edge midpoints (u, v, h_edge, pv_edge ...).
	Velocity
	// Vorticity points: Delaunay triangle corners (vorticity, pv_vertex).
	Vorticity
)

func (p PointType) String() string {
	switch p {
	case Mass:
		return "mass"
	case Velocity:
		return "velocity"
	case Vorticity:
		return "vorticity"
	}
	return fmt.Sprintf("PointType(%d)", uint8(p))
}

// Shape identifies one of the eight stencil pattern shapes of Figure 3, or
// the local (pointwise) shape X. A shape is characterized by the point type
// of the output variable and the point type(s) gathered as input.
type Shape uint8

const (
	// ShapeA : mass point from the surrounding velocity points
	// (divergence, kinetic energy, flux divergence, reconstruction).
	ShapeA Shape = iota
	// ShapeB : velocity point from a wide mixed neighborhood (velocity,
	// mass and vorticity points) — the momentum tendency and APVM stencils.
	ShapeB
	// ShapeC : mass point from the neighboring mass points (second
	// derivative fit) or from the surrounding vorticity points.
	ShapeC
	// ShapeD : velocity point from its two adjacent mass points.
	ShapeD
	// ShapeE : vorticity point from its three velocity points.
	ShapeE
	// ShapeF : velocity point from the velocity points on the two adjacent
	// cells (the TRiSK edgesOnEdge stencil).
	ShapeF
	// ShapeG : vorticity point from its three mass points.
	ShapeG
	// ShapeH : velocity or mass point from adjacent vorticity points.
	ShapeH
	// ShapeX : local (pointwise) computation, embarrassingly parallel.
	ShapeX
)

func (s Shape) String() string {
	if s > ShapeX {
		return fmt.Sprintf("Shape(%d)", uint8(s))
	}
	return string("ABCDEFGHX"[s])
}

// Instance is one pattern instance of Table I: a concrete computation with a
// fixed output variable, input variables, shape and kernel membership.
type Instance struct {
	// ID is the Table I label: "A1", "B2", "X4", ...
	ID string
	// Kernel is the original MPAS kernel the instance belongs to.
	Kernel string
	// Shape of the stencil.
	Shape Shape
	// Out is the point type of the output variable.
	Out PointType
	// Reads and Writes are the model variable names consumed/produced.
	Reads  []string
	Writes []string
	// Optional marks instances that run only under non-default
	// configuration (high-order thickness, Rayleigh friction).
	Optional bool
}

// Kernel names, in the execution order of Algorithm 1.
const (
	KernelComputeTend         = "compute_tend"
	KernelEnforceBoundaryEdge = "enforce_boundary_edge"
	KernelNextSubstepState    = "compute_next_substep_state"
	KernelSolveDiagnostics    = "compute_solve_diagnostics"
	KernelAccumulativeUpdate  = "accumulative_update"
	KernelReconstruct         = "mpas_reconstruct"
)

// Table1 is the registry of all pattern instances of the shallow-water
// model, the reproduction of Table I of the paper. Order within a kernel is
// a valid sequential execution order.
var Table1 = []Instance{
	// --- compute_solve_diagnostics ---------------------------------------
	{ID: "C1", Kernel: KernelSolveDiagnostics, Shape: ShapeC, Out: Mass,
		Reads: []string{"h"}, Writes: []string{"d2fdx2_cell"}, Optional: true},
	{ID: "D1", Kernel: KernelSolveDiagnostics, Shape: ShapeD, Out: Velocity,
		Reads: []string{"h"}, Writes: []string{"h_edge"}},
	{ID: "D2", Kernel: KernelSolveDiagnostics, Shape: ShapeD, Out: Velocity,
		Reads: []string{"h", "d2fdx2_cell"}, Writes: []string{"h_edge"}, Optional: true},
	{ID: "E", Kernel: KernelSolveDiagnostics, Shape: ShapeE, Out: Vorticity,
		Reads: []string{"u"}, Writes: []string{"vorticity"}},
	{ID: "A2", Kernel: KernelSolveDiagnostics, Shape: ShapeA, Out: Mass,
		Reads: []string{"u"}, Writes: []string{"divergence"}},
	{ID: "A3", Kernel: KernelSolveDiagnostics, Shape: ShapeA, Out: Mass,
		Reads: []string{"u"}, Writes: []string{"ke"}},
	{ID: "F", Kernel: KernelSolveDiagnostics, Shape: ShapeF, Out: Velocity,
		Reads: []string{"u"}, Writes: []string{"v"}},
	{ID: "G", Kernel: KernelSolveDiagnostics, Shape: ShapeG, Out: Vorticity,
		Reads: []string{"h", "vorticity"}, Writes: []string{"h_vertex", "pv_vertex"}},
	{ID: "C2", Kernel: KernelSolveDiagnostics, Shape: ShapeC, Out: Mass,
		Reads: []string{"pv_vertex"}, Writes: []string{"pv_cell"}},
	{ID: "H2", Kernel: KernelSolveDiagnostics, Shape: ShapeH, Out: Mass,
		Reads: []string{"vorticity"}, Writes: []string{"vorticity_cell"}},
	{ID: "H1", Kernel: KernelSolveDiagnostics, Shape: ShapeH, Out: Velocity,
		Reads: []string{"pv_vertex"}, Writes: []string{"pv_edge"}},
	{ID: "B2", Kernel: KernelSolveDiagnostics, Shape: ShapeB, Out: Velocity,
		Reads: []string{"pv_vertex", "pv_cell", "u", "v", "pv_edge"}, Writes: []string{"pv_edge"}},

	// --- compute_tend -----------------------------------------------------
	{ID: "A1", Kernel: KernelComputeTend, Shape: ShapeA, Out: Mass,
		Reads: []string{"u", "h_edge"}, Writes: []string{"tend_h"}},
	{ID: "B1", Kernel: KernelComputeTend, Shape: ShapeB, Out: Velocity,
		Reads:  []string{"pv_edge", "u", "h_edge", "ke", "h", "divergence", "vorticity"},
		Writes: []string{"tend_u"}},

	// --- enforce_boundary_edge ---------------------------------------------
	{ID: "X1", Kernel: KernelEnforceBoundaryEdge, Shape: ShapeX, Out: Velocity,
		Reads: []string{"tend_u", "u"}, Writes: []string{"tend_u"}},

	// --- compute_next_substep_state -----------------------------------------
	{ID: "X2", Kernel: KernelNextSubstepState, Shape: ShapeX, Out: Mass,
		Reads: []string{"h0", "tend_h"}, Writes: []string{"h"}},
	{ID: "X3", Kernel: KernelNextSubstepState, Shape: ShapeX, Out: Velocity,
		Reads: []string{"u0", "tend_u"}, Writes: []string{"u"}},

	// --- accumulative_update -------------------------------------------------
	{ID: "X4", Kernel: KernelAccumulativeUpdate, Shape: ShapeX, Out: Mass,
		Reads: []string{"tend_h"}, Writes: []string{"h_new"}},
	{ID: "X5", Kernel: KernelAccumulativeUpdate, Shape: ShapeX, Out: Velocity,
		Reads: []string{"tend_u"}, Writes: []string{"u_new"}},

	// --- mpas_reconstruct ------------------------------------------------------
	{ID: "A4", Kernel: KernelReconstruct, Shape: ShapeA, Out: Mass,
		Reads: []string{"u"}, Writes: []string{"uReconstructX", "uReconstructY", "uReconstructZ"}},
	{ID: "X6", Kernel: KernelReconstruct, Shape: ShapeX, Out: Mass,
		Reads:  []string{"uReconstructX", "uReconstructY", "uReconstructZ"},
		Writes: []string{"uReconstructZonal", "uReconstructMeridional"}},
}

// ByID returns the Table I instance with the given label, or nil.
func ByID(id string) *Instance {
	for i := range Table1 {
		if Table1[i].ID == id {
			return &Table1[i]
		}
	}
	return nil
}

// KernelInstances returns the instances of a kernel in execution order.
func KernelInstances(kernel string) []Instance {
	var out []Instance
	for _, ins := range Table1 {
		if ins.Kernel == kernel {
			out = append(out, ins)
		}
	}
	return out
}

// Kernels returns the kernel names in Algorithm 1 execution order.
func Kernels() []string {
	return []string{
		KernelComputeTend,
		KernelEnforceBoundaryEdge,
		KernelNextSubstepState,
		KernelSolveDiagnostics,
		KernelAccumulativeUpdate,
		KernelReconstruct,
	}
}
