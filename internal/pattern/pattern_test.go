package pattern

import "testing"

func TestTable1Complete(t *testing.T) {
	// The paper identifies 8 stencil shapes and 6 local computations.
	ids := map[string]bool{}
	shapes := map[Shape]bool{}
	locals := 0
	for _, ins := range Table1 {
		if ids[ins.ID] {
			t.Errorf("duplicate instance %s", ins.ID)
		}
		ids[ins.ID] = true
		shapes[ins.Shape] = true
		if ins.Shape == ShapeX {
			locals++
		}
	}
	for _, want := range []Shape{ShapeA, ShapeB, ShapeC, ShapeD, ShapeE, ShapeF, ShapeG, ShapeH} {
		if !shapes[want] {
			t.Errorf("stencil shape %s unused", want)
		}
	}
	if locals != 6 {
		t.Errorf("%d local (X) patterns, want 6 (X1..X6)", locals)
	}
	// Paper Table I instances all present.
	for _, id := range []string{"A1", "A2", "A3", "A4", "B1", "B2", "C1", "C2",
		"D1", "D2", "E", "F", "G", "H1", "H2", "X1", "X2", "X3", "X4", "X5", "X6"} {
		if !ids[id] {
			t.Errorf("missing Table I instance %s", id)
		}
	}
}

func TestInstancesHaveReadsWrites(t *testing.T) {
	for _, ins := range Table1 {
		if len(ins.Writes) == 0 {
			t.Errorf("%s writes nothing", ins.ID)
		}
		if len(ins.Reads) == 0 {
			t.Errorf("%s reads nothing", ins.ID)
		}
		if ins.Kernel == "" {
			t.Errorf("%s has no kernel", ins.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("B1") == nil {
		t.Fatal("B1 missing")
	}
	if ByID("B1").Kernel != KernelComputeTend {
		t.Error("B1 kernel wrong")
	}
	if ByID("nope") != nil {
		t.Error("bogus ID found")
	}
}

func TestKernelInstancesOrder(t *testing.T) {
	sd := KernelInstances(KernelSolveDiagnostics)
	if len(sd) != 12 {
		t.Fatalf("%d solve_diagnostics instances, want 12", len(sd))
	}
	// E (vorticity) must come before G (pv_vertex) which reads it.
	pos := map[string]int{}
	for i, ins := range sd {
		pos[ins.ID] = i
	}
	if pos["E"] > pos["G"] {
		t.Error("E after G")
	}
	if pos["G"] > pos["H1"] || pos["H1"] > pos["B2"] || pos["C2"] > pos["B2"] {
		t.Error("pv chain out of order")
	}
}

func TestKernelsOrderMatchesAlgorithm1(t *testing.T) {
	ks := Kernels()
	want := []string{"compute_tend", "enforce_boundary_edge",
		"compute_next_substep_state", "compute_solve_diagnostics",
		"accumulative_update", "mpas_reconstruct"}
	if len(ks) != len(want) {
		t.Fatalf("kernels: %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Errorf("kernel %d = %s, want %s", i, ks[i], want[i])
		}
	}
}

func TestPointTypeStrings(t *testing.T) {
	if Mass.String() != "mass" || Velocity.String() != "velocity" || Vorticity.String() != "vorticity" {
		t.Error("PointType strings")
	}
	if PointType(9).String() == "" {
		t.Error("unknown PointType empty")
	}
}

func TestShapeStrings(t *testing.T) {
	if ShapeA.String() != "A" || ShapeH.String() != "H" || ShapeX.String() != "X" {
		t.Error("Shape strings")
	}
	if Shape(42).String() == "" {
		t.Error("unknown shape empty")
	}
}

func TestShapeOutputTypes(t *testing.T) {
	// Shape semantics: A and C produce mass points, D/F/B produce velocity
	// points, E/G produce vorticity points.
	for _, ins := range Table1 {
		switch ins.Shape {
		case ShapeA, ShapeC:
			if ins.Out != Mass {
				t.Errorf("%s: shape %s output %s", ins.ID, ins.Shape, ins.Out)
			}
		case ShapeD, ShapeF, ShapeB:
			if ins.Out != Velocity {
				t.Errorf("%s: shape %s output %s", ins.ID, ins.Shape, ins.Out)
			}
		case ShapeE, ShapeG:
			if ins.Out != Vorticity {
				t.Errorf("%s: shape %s output %s", ins.ID, ins.Shape, ins.Out)
			}
		}
	}
}
