package partition

import (
	"testing"

	"repro/internal/mesh"
)

func TestSFCPartitionValidBalanced(t *testing.T) {
	m := mesh.MustBuild(3, mesh.Options{})
	for _, nparts := range []int{1, 2, 4, 7} {
		p, err := SFC(m, nparts)
		if err != nil {
			t.Fatalf("SFC(%d): %v", nparts, err)
		}
		if err := p.Validate(m); err != nil {
			t.Fatalf("SFC(%d): %v", nparts, err)
		}
		if imb := p.Imbalance(); imb > 1.01 {
			t.Fatalf("SFC(%d): imbalance %.3f, chunks should be balanced to one cell", nparts, imb)
		}
	}
	if _, err := SFC(m, 0); err == nil {
		t.Fatal("SFC accepted 0 parts")
	}
	if _, err := SFC(m, m.NCells+1); err == nil {
		t.Fatal("SFC accepted more parts than cells")
	}
}

// TestSFCContiguousOnReorderedMesh is the property the renumbering and the
// partitioner are designed to share: after mesh.ComputeReorder relabels the
// cells along the curve, the SFC partition of the relabeled mesh is a set of
// contiguous index ranges — every rank owns one block of the renumbered
// arrays.
func TestSFCContiguousOnReorderedMesh(t *testing.T) {
	m := mesh.MustBuild(3, mesh.Options{})
	nm, err := mesh.ComputeReorder(m).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, nparts := range []int{2, 4} {
		p, err := SFC(nm, nparts)
		if err != nil {
			t.Fatal(err)
		}
		next := int32(0)
		for part, cells := range p.Cells {
			for i, c := range cells {
				if c != next {
					t.Fatalf("nparts=%d part %d cell %d: index %d breaks the contiguous run at %d",
						nparts, part, i, c, next)
				}
				next++
			}
		}
		if int(next) != nm.NCells {
			t.Fatalf("nparts=%d: ranges cover %d of %d cells", nparts, next, nm.NCells)
		}
	}
}
