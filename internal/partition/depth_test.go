package partition

import (
	"testing"

	"repro/internal/mesh"
)

func extractAll(t *testing.T, level, nranks, layers int) (*mesh.Mesh, []*Local) {
	t.Helper()
	g, err := mesh.Build(level, mesh.Options{})
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	p, err := Bisect(g, nranks)
	if err != nil {
		t.Fatalf("bisect: %v", err)
	}
	locals := make([]*Local, nranks)
	for r := 0; r < nranks; r++ {
		locals[r] = Extract(g, p, r, layers)
	}
	return g, locals
}

// Depth arrays must be non-increasing (the interior is a contiguous prefix),
// and depth 0 must coincide exactly with the entities a halo exchange
// overwrites: halo cells and non-owned edges.
func TestDepthOrderingAndSources(t *testing.T) {
	for _, nranks := range []int{2, 3, 4} {
		_, locals := extractAll(t, 3, nranks, 3)
		for _, l := range locals {
			for _, depths := range [][]int32{l.CellDepth, l.EdgeDepth, l.VertDepth} {
				for i := 1; i < len(depths); i++ {
					if depths[i] > depths[i-1] {
						t.Fatalf("part %d: depth array increases at %d (%d -> %d)",
							l.Part, i, depths[i-1], depths[i])
					}
				}
			}
			for lc, d := range l.CellDepth {
				isHalo := lc >= l.NOwnedCells
				if (d == 0) != isHalo {
					t.Fatalf("part %d cell %d: depth %d, halo=%v", l.Part, lc, d, isHalo)
				}
			}
			for le, d := range l.EdgeDepth {
				nonOwned := l.EdgeOwner[le] != int32(l.Part)
				if (d == 0) != nonOwned {
					t.Fatalf("part %d edge %d: depth %d, nonOwned=%v", l.Part, le, d, nonOwned)
				}
			}
			for lv, d := range l.VertDepth {
				if d == 0 {
					t.Fatalf("part %d vertex %d: vertices are never exchanged, depth 0", l.Part, lv)
				}
			}
		}
	}
}

// The invariant comm/compute overlap rests on: every entity a LOCAL-mesh
// stencil of an element at depth d reads sits at depth >= d-1. An op whose
// inputs are stale within halo distance t can then compute every element at
// depth > t without reading any depth-<=t-1 entity — in particular, never a
// depth-0 slot an in-flight exchange may be concurrently overwriting.
// Clamped missing-neighbor slots alias local index 0 (or self), which after
// depth-descending reordering is a maximum-depth entity, so they pass too.
func TestDepthStencilSafety(t *testing.T) {
	for _, nranks := range []int{2, 4} {
		_, locals := extractAll(t, 3, nranks, 3)
		for _, l := range locals {
			m := l.M
			check := func(kind string, i int, di, dj int32) {
				if dj < di-1 {
					t.Fatalf("part %d %s %d at depth %d reads an entity at depth %d",
						l.Part, kind, i, di, dj)
				}
			}
			for lc := 0; lc < m.NCells; lc++ {
				di := l.CellDepth[lc]
				base := lc * mesh.MaxEdges
				for j := 0; j < int(m.NEdgesOnCell[lc]); j++ {
					check("cell", lc, di, l.CellDepth[m.CellsOnCell[base+j]])
					check("cell", lc, di, l.EdgeDepth[m.EdgesOnCell[base+j]])
					check("cell", lc, di, l.VertDepth[m.VerticesOnCell[base+j]])
				}
			}
			for le := 0; le < m.NEdges; le++ {
				di := l.EdgeDepth[le]
				check("edge", le, di, l.CellDepth[m.CellsOnEdge[2*le]])
				check("edge", le, di, l.CellDepth[m.CellsOnEdge[2*le+1]])
				check("edge", le, di, l.VertDepth[m.VerticesOnEdge[2*le]])
				check("edge", le, di, l.VertDepth[m.VerticesOnEdge[2*le+1]])
				base := le * mesh.MaxEdgesOnEdge
				for j := 0; j < int(m.NEdgesOnEdge[le]); j++ {
					check("edge", le, di, l.EdgeDepth[m.EdgesOnEdge[base+j]])
				}
			}
			for lv := 0; lv < m.NVertices; lv++ {
				di := l.VertDepth[lv]
				base := lv * mesh.VertexDegree
				for j := 0; j < mesh.VertexDegree; j++ {
					check("vertex", lv, di, l.CellDepth[m.CellsOnVertex[base+j]])
					check("vertex", lv, di, l.EdgeDepth[m.EdgesOnVertex[base+j]])
				}
			}
		}
	}
}

// InteriorCells/Edges/Vertices must count exactly the entities at depth > t.
func TestInteriorCounts(t *testing.T) {
	_, locals := extractAll(t, 3, 3, 3)
	for _, l := range locals {
		for tt := 0; tt <= 8; tt++ {
			wantC, wantE, wantV := 0, 0, 0
			for _, d := range l.CellDepth {
				if d > int32(tt) {
					wantC++
				}
			}
			for _, d := range l.EdgeDepth {
				if d > int32(tt) {
					wantE++
				}
			}
			for _, d := range l.VertDepth {
				if d > int32(tt) {
					wantV++
				}
			}
			if got := l.InteriorCells(tt); got != wantC {
				t.Fatalf("part %d InteriorCells(%d)=%d want %d", l.Part, tt, got, wantC)
			}
			if got := l.InteriorEdges(tt); got != wantE {
				t.Fatalf("part %d InteriorEdges(%d)=%d want %d", l.Part, tt, got, wantE)
			}
			if got := l.InteriorVertices(tt); got != wantV {
				t.Fatalf("part %d InteriorVertices(%d)=%d want %d", l.Part, tt, got, wantV)
			}
		}
	}
}

// A single-rank extraction has no exchanged entities: every depth is
// unbounded and the interior is the whole domain at any threshold.
func TestDepthSingleRank(t *testing.T) {
	g, locals := extractAll(t, 2, 1, 3)
	l := locals[0]
	if l.InteriorCells(100) != g.NCells || l.InteriorEdges(100) != g.NEdges || l.InteriorVertices(100) != g.NVertices {
		t.Fatalf("single-rank interior must span the whole mesh")
	}
	for _, d := range l.CellDepth {
		if d != DepthUnbounded {
			t.Fatalf("single-rank cell depth %d != DepthUnbounded", d)
		}
	}
}

// FromOwner must reproduce a valid partition whose per-part cell sets match
// the original's (as sets), and reject malformed owner maps.
func TestFromOwner(t *testing.T) {
	g, err := mesh.Build(3, mesh.Options{})
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	orig, err := Bisect(g, 4)
	if err != nil {
		t.Fatalf("bisect: %v", err)
	}
	p, err := FromOwner(orig.Owner, 4)
	if err != nil {
		t.Fatalf("FromOwner: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("validate: %v", err)
	}
	for part := range p.Cells {
		if len(p.Cells[part]) != len(orig.Cells[part]) {
			t.Fatalf("part %d size %d != %d", part, len(p.Cells[part]), len(orig.Cells[part]))
		}
		for _, c := range p.Cells[part] {
			if orig.Owner[c] != int32(part) {
				t.Fatalf("part %d claims cell %d owned by %d", part, c, orig.Owner[c])
			}
		}
	}
	bad := append([]int32(nil), orig.Owner...)
	bad[0] = 99
	if _, err := FromOwner(bad, 4); err == nil {
		t.Fatal("FromOwner accepted an out-of-range owner")
	}
}
