package partition

import (
	"math"
	"testing"

	"repro/internal/mesh"
)

var cached *mesh.Mesh

func mesh4(t testing.TB) *mesh.Mesh {
	if cached == nil {
		var err error
		cached, err = mesh.Build(4, mesh.Options{LloydIterations: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cached
}

func TestBisectPartitionsValid(t *testing.T) {
	m := mesh4(t)
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		part, err := Bisect(m, p)
		if err != nil {
			t.Fatalf("Bisect(%d): %v", p, err)
		}
		if err := part.Validate(m); err != nil {
			t.Fatalf("Bisect(%d): %v", p, err)
		}
		if imb := part.Imbalance(); imb > 1.05 {
			t.Errorf("Bisect(%d): imbalance %v", p, imb)
		}
	}
}

func TestBisectErrors(t *testing.T) {
	m := mesh4(t)
	if _, err := Bisect(m, 0); err == nil {
		t.Error("nparts=0 accepted")
	}
	if _, err := Bisect(m, m.NCells+1); err == nil {
		t.Error("nparts>ncells accepted")
	}
}

func TestHaloLayersDisjointAndAdjacent(t *testing.T) {
	m := mesh4(t)
	part, _ := Bisect(m, 8)
	halos := part.Halo(m, 3, 3)
	if len(halos) != 3 {
		t.Fatalf("%d layers", len(halos))
	}
	seen := map[int32]bool{}
	for _, c := range part.Cells[3] {
		seen[c] = true
	}
	for li, layer := range halos {
		if len(layer) == 0 {
			t.Fatalf("layer %d empty", li)
		}
		for _, c := range layer {
			if seen[c] {
				t.Fatalf("cell %d repeated across layers", c)
			}
			seen[c] = true
			if part.Owner[c] == 3 {
				t.Fatalf("owned cell %d in halo", c)
			}
		}
	}
	// Layer 1 cells must neighbor an owned cell.
	owned := map[int32]bool{}
	for _, c := range part.Cells[3] {
		owned[c] = true
	}
	for _, c := range halos[0] {
		touches := false
		for _, nb := range m.CellNeighbors(c) {
			if owned[nb] {
				touches = true
			}
		}
		if !touches {
			t.Fatalf("layer-1 cell %d not adjacent to owned set", c)
		}
	}
}

func TestHaloCellsModelMatchesReality(t *testing.T) {
	// The analytic halo estimate used at paper scale must be within 2x of
	// measured halos on a real partition.
	m := mesh4(t)
	for _, p := range []int{4, 8} {
		part, _ := Bisect(m, p)
		perPart := m.NCells / p
		for r := 0; r < p; r++ {
			halos := part.Halo(m, r, 1)
			model := HaloCellsModel(perPart, 1)
			real := len(halos[0])
			if ratio := float64(model) / float64(real); ratio < 0.5 || ratio > 2.5 {
				t.Errorf("p=%d rank=%d: model %d vs real %d halo cells", p, r, model, real)
			}
		}
	}
}

func TestExtractLocalStructure(t *testing.T) {
	m := mesh4(t)
	part, _ := Bisect(m, 4)
	for r := 0; r < 4; r++ {
		l := Extract(m, part, r, 3)
		if l.NOwnedCells != len(part.Cells[r]) {
			t.Fatalf("rank %d: owned %d want %d", r, l.NOwnedCells, len(part.Cells[r]))
		}
		if l.M.NCells != len(l.CellL2G) || l.M.NEdges != len(l.EdgeL2G) || l.M.NVertices != len(l.VertL2G) {
			t.Fatal("local mesh counts inconsistent")
		}
		// Round trip of the maps.
		for lc, gc := range l.CellL2G {
			if l.CellG2L[gc] != int32(lc) {
				t.Fatal("cell map not a bijection")
			}
		}
		for le, ge := range l.EdgeL2G {
			if l.EdgeG2L[ge] != int32(le) {
				t.Fatal("edge map not a bijection")
			}
		}
		// Owned cells come first and belong to r.
		for lc := 0; lc < l.NOwnedCells; lc++ {
			if l.CellOwner[lc] != int32(r) {
				t.Fatal("owned cell not owned")
			}
		}
		for lc := l.NOwnedCells; lc < l.M.NCells; lc++ {
			if l.CellOwner[lc] == int32(r) {
				t.Fatal("halo cell owned by self")
			}
		}
	}
}

func TestExtractGeometryMatchesGlobal(t *testing.T) {
	m := mesh4(t)
	part, _ := Bisect(m, 4)
	l := Extract(m, part, 1, 3)
	for lc, gc := range l.CellL2G {
		if l.M.AreaCell[lc] != m.AreaCell[gc] || l.M.XCell[lc] != m.XCell[gc] {
			t.Fatal("cell geometry not copied")
		}
		if l.M.NEdgesOnCell[lc] != m.NEdgesOnCell[gc] {
			t.Fatal("cell degree changed")
		}
	}
	for le, ge := range l.EdgeL2G {
		if l.M.DcEdge[le] != m.DcEdge[ge] || l.M.DvEdge[le] != m.DvEdge[ge] {
			t.Fatal("edge metrics not copied")
		}
		if l.M.AngleEdge[le] != m.AngleEdge[ge] {
			t.Fatal("angle not copied")
		}
	}
}

func TestExtractInteriorConnectivityExact(t *testing.T) {
	// For owned cells, every connectivity slot must map exactly to the
	// global mesh (no clamping in the interior).
	m := mesh4(t)
	part, _ := Bisect(m, 4)
	l := Extract(m, part, 2, 3)
	for lc := 0; lc < l.NOwnedCells; lc++ {
		gc := l.CellL2G[lc]
		n := int(m.NEdgesOnCell[gc])
		for j := 0; j < n; j++ {
			ge := m.EdgesOnCell[int(gc)*mesh.MaxEdges+j]
			le := l.M.EdgesOnCell[lc*mesh.MaxEdges+j]
			if l.EdgeL2G[le] != ge {
				t.Fatalf("owned cell %d edge slot %d clamped", lc, j)
			}
			gnb := m.CellsOnCell[int(gc)*mesh.MaxEdges+j]
			lnb := l.M.CellsOnCell[lc*mesh.MaxEdges+j]
			if l.CellL2G[lnb] != gnb {
				t.Fatalf("owned cell %d neighbor slot %d clamped", lc, j)
			}
		}
	}
	// Owned edges keep full TRiSK stencils with original weights.
	for le := 0; le < l.M.NEdges; le++ {
		if l.EdgeOwner[le] != 2 {
			continue
		}
		ge := l.EdgeL2G[le]
		n := int(m.NEdgesOnEdge[ge])
		for j := 0; j < n; j++ {
			gw := m.WeightsOnEdge[int(ge)*mesh.MaxEdgesOnEdge+j]
			lw := l.M.WeightsOnEdge[le*mesh.MaxEdgesOnEdge+j]
			if lw != gw {
				t.Fatalf("owned edge %d stencil weight %d clamped (%v vs %v)", le, j, lw, gw)
			}
		}
	}
}

func TestImbalanceSinglePart(t *testing.T) {
	m := mesh4(t)
	part, _ := Bisect(m, 1)
	if math.Abs(part.Imbalance()-1) > 1e-12 {
		t.Error("single part imbalance != 1")
	}
}
