package partition

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// SFC partitions the mesh's cells into nparts balanced chunks of the
// spherical space-filling curve (the same geom.SFCKey order that
// mesh.ComputeReorder renumbers by). Chunks of a space-filling curve are
// compact patches, so halo sizes are comparable to Bisect's — but because
// partitioner and renumbering share one curve, on an SFC-renumbered mesh
// every part is a CONTIGUOUS index range: owned cells, worker partition
// blocks and cache-locality blocks all coincide.
func SFC(m *mesh.Mesh, nparts int) (*Partition, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts %d < 1", nparts)
	}
	if nparts > m.NCells {
		return nil, fmt.Errorf("partition: nparts %d exceeds %d cells", nparts, m.NCells)
	}
	order := make([]int32, m.NCells)
	for i := range order {
		order[i] = int32(i)
	}
	keys := make([]uint64, m.NCells)
	for c := range keys {
		keys[c] = geom.SFCKey(m.XCell[c])
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	})
	owner := make([]int32, m.NCells)
	for i, c := range order {
		owner[c] = int32(i * nparts / m.NCells)
	}
	return FromOwner(owner, nparts)
}
