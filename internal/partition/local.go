package partition

import (
	"sort"

	"repro/internal/mesh"
)

// DepthUnbounded is the halo distance assigned to entities no stencil path
// connects to an exchanged entity (everything, in a single-rank run).
const DepthUnbounded = int32(1 << 30)

// Local is one process's view of the global mesh: its owned cells followed
// by halo layers, with all connectivity remapped to local indices.
// References that leave the local set are clamped to safe local indices (or
// zero-weight stencil slots); the resulting garbage is confined to the
// outermost halo layer, which is overwritten by halo exchange before any
// owned value can consume it (the halo is deeper than the per-substage
// dependency radius of the RK-4 kernels).
type Local struct {
	Part int
	M    *mesh.Mesh

	NOwnedCells int // local cells [0, NOwnedCells) are owned

	CellL2G []int32
	EdgeL2G []int32
	VertL2G []int32
	CellG2L map[int32]int32
	EdgeG2L map[int32]int32

	// EdgeOwner[le] is the part owning local edge le (the owner of the
	// first global cell of the edge).
	EdgeOwner []int32
	// CellOwner[lc] is the part owning local cell lc.
	CellOwner []int32

	// CellDepth[lc] is the halo distance of local cell lc: the length of the
	// shortest stencil path (through the union of every kernel adjacency —
	// cellsOnCell, edgesOnCell/cellsOnEdge, verticesOnCell/cellsOnVertex,
	// edgesOnEdge, verticesOnEdge/edgesOnVertex) connecting it to an entity
	// the halo exchange overwrites (a halo cell or a non-owned edge; those
	// are depth 0). Extract orders entities by descending depth within each
	// class — owned cells, then halo cells; all edges; all vertices — so
	// every depth array is non-increasing and "the entities safe to compute
	// while an exchange is in flight" is a contiguous prefix (InteriorCells
	// and friends). Reordering is arithmetic-neutral: per-entity stencil
	// gather order is untouched, so owned values stay bitwise identical to a
	// serial run.
	CellDepth []int32
	EdgeDepth []int32
	VertDepth []int32
}

// InteriorCells returns the number of leading local cells at halo distance
// strictly greater than t. A kernel writing cells whose inputs are stale
// within distance t can safely compute local cells [0, InteriorCells(t))
// while the exchange is in flight, deferring the rest until it lands.
func (l *Local) InteriorCells(t int) int {
	return sort.Search(len(l.CellDepth), func(i int) bool { return l.CellDepth[i] <= int32(t) })
}

// InteriorEdges is InteriorCells for the edge index space.
func (l *Local) InteriorEdges(t int) int {
	return sort.Search(len(l.EdgeDepth), func(i int) bool { return l.EdgeDepth[i] <= int32(t) })
}

// InteriorVertices is InteriorCells for the vertex index space.
func (l *Local) InteriorVertices(t int) int {
	return sort.Search(len(l.VertDepth), func(i int) bool { return l.VertDepth[i] <= int32(t) })
}

// Extract builds the local view of part with the given halo depth.
func Extract(g *mesh.Mesh, p *Partition, part, layers int) *Local {
	l := &Local{
		Part:    part,
		CellG2L: map[int32]int32{},
		EdgeG2L: map[int32]int32{},
	}

	// --- cells: owned, then halo layers ----------------------------------
	owned := p.Cells[part]
	l.NOwnedCells = len(owned)
	l.CellL2G = append(l.CellL2G, owned...)
	for _, layer := range p.Halo(g, part, layers) {
		l.CellL2G = append(l.CellL2G, layer...)
	}
	for lc, gc := range l.CellL2G {
		l.CellG2L[gc] = int32(lc)
	}

	// --- edges: every global edge with both cells local ------------------
	for _, gc := range l.CellL2G {
		for _, ge := range g.CellEdges(gc) {
			if _, done := l.EdgeG2L[ge]; done {
				continue
			}
			c1, c2 := g.CellsOnEdge[2*ge], g.CellsOnEdge[2*ge+1]
			_, ok1 := l.CellG2L[c1]
			_, ok2 := l.CellG2L[c2]
			if ok1 && ok2 {
				l.EdgeG2L[ge] = int32(len(l.EdgeL2G))
				l.EdgeL2G = append(l.EdgeL2G, ge)
			}
		}
	}

	// --- vertices: every vertex of a local edge --------------------------
	vertG2L := map[int32]int32{}
	for _, ge := range l.EdgeL2G {
		for k := int32(0); k < 2; k++ {
			gv := g.VerticesOnEdge[2*ge+k]
			if _, done := vertG2L[gv]; !done {
				vertG2L[gv] = int32(len(l.VertL2G))
				l.VertL2G = append(l.VertL2G, gv)
			}
		}
	}

	// --- halo depths + interior-first ordering ---------------------------
	l.computeDepths(g, p, vertG2L)
	vertG2L = l.reorderByDepth(vertG2L)

	l.M = l.buildLocalMesh(g, vertG2L)

	l.CellOwner = make([]int32, len(l.CellL2G))
	for lc, gc := range l.CellL2G {
		l.CellOwner[lc] = p.Owner[gc]
	}
	l.EdgeOwner = make([]int32, len(l.EdgeL2G))
	for le, ge := range l.EdgeL2G {
		l.EdgeOwner[le] = p.Owner[g.CellsOnEdge[2*ge]]
	}
	return l
}

// computeDepths runs a multi-source BFS over the union stencil adjacency of
// all local entities, seeded at the entities the halo exchange overwrites
// (halo cells, non-owned edges). It walks the GLOBAL adjacency arrays
// restricted to the local sets — never the clamped local mesh, whose
// missing-neighbor slots alias entity 0 and would fabricate shortcuts.
func (l *Local) computeDepths(g *mesh.Mesh, p *Partition, vertG2L map[int32]int32) {
	nc, ne, nv := len(l.CellL2G), len(l.EdgeL2G), len(l.VertL2G)
	// One flat id space: cell lc -> lc, edge le -> nc+le, vertex lv -> nc+ne+lv.
	d := make([]int32, nc+ne+nv)
	for i := range d {
		d[i] = DepthUnbounded
	}
	q := make([]int32, 0, nc+ne+nv)
	add := func(id, dep int32) {
		if d[id] > dep {
			d[id] = dep
			q = append(q, id)
		}
	}
	for lc := l.NOwnedCells; lc < nc; lc++ {
		add(int32(lc), 0)
	}
	for le, ge := range l.EdgeL2G {
		if p.Owner[g.CellsOnEdge[2*ge]] != int32(l.Part) {
			add(int32(nc+le), 0)
		}
	}
	for head := 0; head < len(q); head++ {
		id := q[head]
		nd := d[id] + 1
		switch {
		case id < int32(nc): // cell
			gc := l.CellL2G[id]
			base := int(gc) * mesh.MaxEdges
			for j := 0; j < int(g.NEdgesOnCell[gc]); j++ {
				if lcc, ok := l.CellG2L[g.CellsOnCell[base+j]]; ok {
					add(lcc, nd)
				}
				if le, ok := l.EdgeG2L[g.EdgesOnCell[base+j]]; ok {
					add(int32(nc)+le, nd)
				}
				if lv, ok := vertG2L[g.VerticesOnCell[base+j]]; ok {
					add(int32(nc+ne)+lv, nd)
				}
			}
		case id < int32(nc+ne): // edge
			ge := int(l.EdgeL2G[id-int32(nc)])
			for k := 0; k < 2; k++ {
				if lcc, ok := l.CellG2L[g.CellsOnEdge[2*ge+k]]; ok {
					add(lcc, nd)
				}
				if lv, ok := vertG2L[g.VerticesOnEdge[2*ge+k]]; ok {
					add(int32(nc+ne)+lv, nd)
				}
			}
			base := ge * mesh.MaxEdgesOnEdge
			for j := 0; j < int(g.NEdgesOnEdge[ge]); j++ {
				if le2, ok := l.EdgeG2L[g.EdgesOnEdge[base+j]]; ok {
					add(int32(nc)+le2, nd)
				}
			}
		default: // vertex
			gv := l.VertL2G[id-int32(nc+ne)]
			base := int(gv) * mesh.VertexDegree
			for j := 0; j < mesh.VertexDegree; j++ {
				if lcc, ok := l.CellG2L[g.CellsOnVertex[base+j]]; ok {
					add(lcc, nd)
				}
				if le2, ok := l.EdgeG2L[g.EdgesOnVertex[base+j]]; ok {
					add(int32(nc)+le2, nd)
				}
			}
		}
	}
	l.CellDepth = d[:nc:nc]
	l.EdgeDepth = d[nc : nc+ne : nc+ne]
	l.VertDepth = d[nc+ne:]
}

// reorderByDepth stably permutes each entity class to descending halo depth
// (owned cells keep their [0, NOwnedCells) block; halo cells are all depth 0
// and stay behind them), rewrites the L2G/G2L maps and depth arrays, and
// returns the rebuilt vertex map.
func (l *Local) reorderByDepth(vertG2L map[int32]int32) map[int32]int32 {
	permute := func(n int, depth []int32, l2g []int32) []int32 {
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.SliceStable(perm, func(i, j int) bool { return depth[perm[i]] > depth[perm[j]] })
		nd := make([]int32, n)
		ng := make([]int32, n)
		for newIdx, oldIdx := range perm {
			nd[newIdx] = depth[oldIdx]
			ng[newIdx] = l2g[oldIdx]
		}
		copy(depth, nd)
		copy(l2g, ng)
		return perm
	}
	// Cells: only the owned block is permuted (halo cells are all sources).
	permute(l.NOwnedCells, l.CellDepth[:l.NOwnedCells], l.CellL2G[:l.NOwnedCells])
	for lc, gc := range l.CellL2G {
		l.CellG2L[gc] = int32(lc)
	}
	permute(len(l.EdgeL2G), l.EdgeDepth, l.EdgeL2G)
	for le, ge := range l.EdgeL2G {
		l.EdgeG2L[ge] = int32(le)
	}
	permute(len(l.VertL2G), l.VertDepth, l.VertL2G)
	nvg := make(map[int32]int32, len(l.VertL2G))
	for lv, gv := range l.VertL2G {
		nvg[gv] = int32(lv)
	}
	return nvg
}

// buildLocalMesh assembles the local mesh arrays from the global mesh.
func (l *Local) buildLocalMesh(g *mesh.Mesh, vertG2L map[int32]int32) *mesh.Mesh {
	nc, ne, nv := len(l.CellL2G), len(l.EdgeL2G), len(l.VertL2G)
	m := mesh.NewEmpty(g.Radius, nc, ne, nv, g.Level)

	for lc, gc := range l.CellL2G {
		m.XCell[lc] = g.XCell[gc]
		m.LatCell[lc] = g.LatCell[gc]
		m.LonCell[lc] = g.LonCell[gc]
		m.AreaCell[lc] = g.AreaCell[gc]
		m.NEdgesOnCell[lc] = g.NEdgesOnCell[gc]
		gbase := int(gc) * mesh.MaxEdges
		lbase := lc * mesh.MaxEdges
		for j := 0; j < int(g.NEdgesOnCell[gc]); j++ {
			// Edges of the cell: clamp missing edges to slot-self with the
			// convention edge 0 (garbage confined to outer halo).
			if le, ok := l.EdgeG2L[g.EdgesOnCell[gbase+j]]; ok {
				m.EdgesOnCell[lbase+j] = le
			} else {
				m.EdgesOnCell[lbase+j] = 0
			}
			if lcc, ok := l.CellG2L[g.CellsOnCell[gbase+j]]; ok {
				m.CellsOnCell[lbase+j] = lcc
			} else {
				m.CellsOnCell[lbase+j] = int32(lc)
			}
			if lv, ok := vertG2L[g.VerticesOnCell[gbase+j]]; ok {
				m.VerticesOnCell[lbase+j] = lv
			} else {
				m.VerticesOnCell[lbase+j] = 0
			}
			m.EdgeSignOnCell[lbase+j] = g.EdgeSignOnCell[gbase+j]
		}
	}

	for le, ge := range l.EdgeL2G {
		m.XEdge[le] = g.XEdge[ge]
		m.LatEdge[le] = g.LatEdge[ge]
		m.LonEdge[le] = g.LonEdge[ge]
		m.DcEdge[le] = g.DcEdge[ge]
		m.DvEdge[le] = g.DvEdge[ge]
		m.AngleEdge[le] = g.AngleEdge[ge]
		m.EdgeNormal[le] = g.EdgeNormal[ge]
		m.EdgeTangent[le] = g.EdgeTangent[ge]
		m.CellsOnEdge[2*le] = l.CellG2L[g.CellsOnEdge[2*ge]]
		m.CellsOnEdge[2*le+1] = l.CellG2L[g.CellsOnEdge[2*ge+1]]
		m.VerticesOnEdge[2*le] = vertG2L[g.VerticesOnEdge[2*ge]]
		m.VerticesOnEdge[2*le+1] = vertG2L[g.VerticesOnEdge[2*ge+1]]
		gbase := int(ge) * mesh.MaxEdgesOnEdge
		lbase := le * mesh.MaxEdgesOnEdge
		m.NEdgesOnEdge[le] = g.NEdgesOnEdge[ge]
		for j := 0; j < int(g.NEdgesOnEdge[ge]); j++ {
			if leoe, ok := l.EdgeG2L[g.EdgesOnEdge[gbase+j]]; ok {
				m.EdgesOnEdge[lbase+j] = leoe
				m.WeightsOnEdge[lbase+j] = g.WeightsOnEdge[gbase+j]
			} else {
				// Missing stencil member: zero weight, safe index.
				m.EdgesOnEdge[lbase+j] = 0
				m.WeightsOnEdge[lbase+j] = 0
			}
		}
	}

	for lv, gv := range l.VertL2G {
		m.XVertex[lv] = g.XVertex[gv]
		m.LatVertex[lv] = g.LatVertex[gv]
		m.AreaTriangle[lv] = g.AreaTriangle[gv]
		gbase := int(gv) * mesh.VertexDegree
		lbase := lv * mesh.VertexDegree
		for j := 0; j < mesh.VertexDegree; j++ {
			if lc, ok := l.CellG2L[g.CellsOnVertex[gbase+j]]; ok {
				m.CellsOnVertex[lbase+j] = lc
			} else {
				m.CellsOnVertex[lbase+j] = 0
			}
			if le, ok := l.EdgeG2L[g.EdgesOnVertex[gbase+j]]; ok {
				m.EdgesOnVertex[lbase+j] = le
			} else {
				m.EdgesOnVertex[lbase+j] = 0
			}
			m.KiteAreasOnVertex[lbase+j] = g.KiteAreasOnVertex[gbase+j]
			m.EdgeSignOnVertex[lbase+j] = g.EdgeSignOnVertex[gbase+j]
		}
	}
	return m
}
