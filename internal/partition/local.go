package partition

import (
	"repro/internal/mesh"
)

// Local is one process's view of the global mesh: its owned cells followed
// by halo layers, with all connectivity remapped to local indices.
// References that leave the local set are clamped to safe local indices (or
// zero-weight stencil slots); the resulting garbage is confined to the
// outermost halo layer, which is overwritten by halo exchange before any
// owned value can consume it (the halo is deeper than the per-substage
// dependency radius of the RK-4 kernels).
type Local struct {
	Part int
	M    *mesh.Mesh

	NOwnedCells int // local cells [0, NOwnedCells) are owned

	CellL2G []int32
	EdgeL2G []int32
	VertL2G []int32
	CellG2L map[int32]int32
	EdgeG2L map[int32]int32

	// EdgeOwner[le] is the part owning local edge le (the owner of the
	// first global cell of the edge).
	EdgeOwner []int32
	// CellOwner[lc] is the part owning local cell lc.
	CellOwner []int32
}

// Extract builds the local view of part with the given halo depth.
func Extract(g *mesh.Mesh, p *Partition, part, layers int) *Local {
	l := &Local{
		Part:    part,
		CellG2L: map[int32]int32{},
		EdgeG2L: map[int32]int32{},
	}

	// --- cells: owned, then halo layers ----------------------------------
	owned := p.Cells[part]
	l.NOwnedCells = len(owned)
	l.CellL2G = append(l.CellL2G, owned...)
	for _, layer := range p.Halo(g, part, layers) {
		l.CellL2G = append(l.CellL2G, layer...)
	}
	for lc, gc := range l.CellL2G {
		l.CellG2L[gc] = int32(lc)
	}

	// --- edges: every global edge with both cells local ------------------
	for _, gc := range l.CellL2G {
		for _, ge := range g.CellEdges(gc) {
			if _, done := l.EdgeG2L[ge]; done {
				continue
			}
			c1, c2 := g.CellsOnEdge[2*ge], g.CellsOnEdge[2*ge+1]
			_, ok1 := l.CellG2L[c1]
			_, ok2 := l.CellG2L[c2]
			if ok1 && ok2 {
				l.EdgeG2L[ge] = int32(len(l.EdgeL2G))
				l.EdgeL2G = append(l.EdgeL2G, ge)
			}
		}
	}

	// --- vertices: every vertex of a local edge --------------------------
	vertG2L := map[int32]int32{}
	for _, ge := range l.EdgeL2G {
		for k := int32(0); k < 2; k++ {
			gv := g.VerticesOnEdge[2*ge+k]
			if _, done := vertG2L[gv]; !done {
				vertG2L[gv] = int32(len(l.VertL2G))
				l.VertL2G = append(l.VertL2G, gv)
			}
		}
	}

	l.M = l.buildLocalMesh(g, vertG2L)

	l.CellOwner = make([]int32, len(l.CellL2G))
	for lc, gc := range l.CellL2G {
		l.CellOwner[lc] = p.Owner[gc]
	}
	l.EdgeOwner = make([]int32, len(l.EdgeL2G))
	for le, ge := range l.EdgeL2G {
		l.EdgeOwner[le] = p.Owner[g.CellsOnEdge[2*ge]]
	}
	return l
}

// buildLocalMesh assembles the local mesh arrays from the global mesh.
func (l *Local) buildLocalMesh(g *mesh.Mesh, vertG2L map[int32]int32) *mesh.Mesh {
	nc, ne, nv := len(l.CellL2G), len(l.EdgeL2G), len(l.VertL2G)
	m := mesh.NewEmpty(g.Radius, nc, ne, nv, g.Level)

	for lc, gc := range l.CellL2G {
		m.XCell[lc] = g.XCell[gc]
		m.LatCell[lc] = g.LatCell[gc]
		m.LonCell[lc] = g.LonCell[gc]
		m.AreaCell[lc] = g.AreaCell[gc]
		m.NEdgesOnCell[lc] = g.NEdgesOnCell[gc]
		gbase := int(gc) * mesh.MaxEdges
		lbase := lc * mesh.MaxEdges
		for j := 0; j < int(g.NEdgesOnCell[gc]); j++ {
			// Edges of the cell: clamp missing edges to slot-self with the
			// convention edge 0 (garbage confined to outer halo).
			if le, ok := l.EdgeG2L[g.EdgesOnCell[gbase+j]]; ok {
				m.EdgesOnCell[lbase+j] = le
			} else {
				m.EdgesOnCell[lbase+j] = 0
			}
			if lcc, ok := l.CellG2L[g.CellsOnCell[gbase+j]]; ok {
				m.CellsOnCell[lbase+j] = lcc
			} else {
				m.CellsOnCell[lbase+j] = int32(lc)
			}
			if lv, ok := vertG2L[g.VerticesOnCell[gbase+j]]; ok {
				m.VerticesOnCell[lbase+j] = lv
			} else {
				m.VerticesOnCell[lbase+j] = 0
			}
			m.EdgeSignOnCell[lbase+j] = g.EdgeSignOnCell[gbase+j]
		}
	}

	for le, ge := range l.EdgeL2G {
		m.XEdge[le] = g.XEdge[ge]
		m.LatEdge[le] = g.LatEdge[ge]
		m.LonEdge[le] = g.LonEdge[ge]
		m.DcEdge[le] = g.DcEdge[ge]
		m.DvEdge[le] = g.DvEdge[ge]
		m.AngleEdge[le] = g.AngleEdge[ge]
		m.EdgeNormal[le] = g.EdgeNormal[ge]
		m.EdgeTangent[le] = g.EdgeTangent[ge]
		m.CellsOnEdge[2*le] = l.CellG2L[g.CellsOnEdge[2*ge]]
		m.CellsOnEdge[2*le+1] = l.CellG2L[g.CellsOnEdge[2*ge+1]]
		m.VerticesOnEdge[2*le] = vertG2L[g.VerticesOnEdge[2*ge]]
		m.VerticesOnEdge[2*le+1] = vertG2L[g.VerticesOnEdge[2*ge+1]]
		gbase := int(ge) * mesh.MaxEdgesOnEdge
		lbase := le * mesh.MaxEdgesOnEdge
		m.NEdgesOnEdge[le] = g.NEdgesOnEdge[ge]
		for j := 0; j < int(g.NEdgesOnEdge[ge]); j++ {
			if leoe, ok := l.EdgeG2L[g.EdgesOnEdge[gbase+j]]; ok {
				m.EdgesOnEdge[lbase+j] = leoe
				m.WeightsOnEdge[lbase+j] = g.WeightsOnEdge[gbase+j]
			} else {
				// Missing stencil member: zero weight, safe index.
				m.EdgesOnEdge[lbase+j] = 0
				m.WeightsOnEdge[lbase+j] = 0
			}
		}
	}

	for lv, gv := range l.VertL2G {
		m.XVertex[lv] = g.XVertex[gv]
		m.LatVertex[lv] = g.LatVertex[gv]
		m.AreaTriangle[lv] = g.AreaTriangle[gv]
		gbase := int(gv) * mesh.VertexDegree
		lbase := lv * mesh.VertexDegree
		for j := 0; j < mesh.VertexDegree; j++ {
			if lc, ok := l.CellG2L[g.CellsOnVertex[gbase+j]]; ok {
				m.CellsOnVertex[lbase+j] = lc
			} else {
				m.CellsOnVertex[lbase+j] = 0
			}
			if le, ok := l.EdgeG2L[g.EdgesOnVertex[gbase+j]]; ok {
				m.EdgesOnVertex[lbase+j] = le
			} else {
				m.EdgesOnVertex[lbase+j] = 0
			}
			m.KiteAreasOnVertex[lbase+j] = g.KiteAreasOnVertex[gbase+j]
			m.EdgeSignOnVertex[lbase+j] = g.EdgeSignOnVertex[gbase+j]
		}
	}
	return m
}
