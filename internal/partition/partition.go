// Package partition decomposes an SCVT mesh into the per-process domains of
// the distributed (MPI-style) runs: contiguous cell partitions via recursive
// coordinate bisection, multi-layer halos, and local mesh extraction with
// global<->local index maps. It is the stand-in for the METIS decomposition
// MPAS uses; partition quality only shifts constants, not the scaling
// behaviour the paper's Figures 8 and 9 probe.
package partition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// Partition is a disjoint assignment of every global cell to one of P parts.
type Partition struct {
	NParts int
	Owner  []int32 // global cell -> part
	Cells  [][]int32
}

// Bisect partitions the mesh's cells into nparts contiguous chunks by
// recursive coordinate bisection of the cell-center unit vectors.
func Bisect(m *mesh.Mesh, nparts int) (*Partition, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts %d < 1", nparts)
	}
	if nparts > m.NCells {
		return nil, fmt.Errorf("partition: nparts %d exceeds %d cells", nparts, m.NCells)
	}
	p := &Partition{
		NParts: nparts,
		Owner:  make([]int32, m.NCells),
		Cells:  make([][]int32, nparts),
	}
	all := make([]int32, m.NCells)
	for i := range all {
		all[i] = int32(i)
	}
	var rec func(cells []int32, lo, hi int)
	rec = func(cells []int32, lo, hi int) {
		parts := hi - lo
		if parts == 1 {
			for _, c := range cells {
				p.Owner[c] = int32(lo)
			}
			p.Cells[lo] = append([]int32(nil), cells...)
			return
		}
		// Split along the coordinate with the largest spread.
		var min, max geom.Vec3
		min = geom.V(math.Inf(1), math.Inf(1), math.Inf(1))
		max = geom.V(math.Inf(-1), math.Inf(-1), math.Inf(-1))
		for _, c := range cells {
			x := m.XCell[c]
			min = geom.V(math.Min(min.X, x.X), math.Min(min.Y, x.Y), math.Min(min.Z, x.Z))
			max = geom.V(math.Max(max.X, x.X), math.Max(max.Y, x.Y), math.Max(max.Z, x.Z))
		}
		d := max.Sub(min)
		key := func(c int32) float64 { return m.XCell[c].X }
		if d.Y >= d.X && d.Y >= d.Z {
			key = func(c int32) float64 { return m.XCell[c].Y }
		} else if d.Z >= d.X && d.Z >= d.Y {
			key = func(c int32) float64 { return m.XCell[c].Z }
		}
		sort.Slice(cells, func(i, j int) bool { return key(cells[i]) < key(cells[j]) })
		leftParts := parts / 2
		cut := len(cells) * leftParts / parts
		rec(cells[:cut], lo, lo+leftParts)
		rec(cells[cut:], lo+leftParts, hi)
	}
	rec(all, 0, nparts)
	return p, nil
}

// FromOwner reconstructs a Partition from a bare owner map (the form rank 0
// distributes during the dist rendezvous). Cell lists come out in ascending
// global order — NOT the recursion order Bisect produces — so every process
// of a distributed run must build its Partition through FromOwner (rank 0
// included) for the local numberings to agree.
func FromOwner(owner []int32, nparts int) (*Partition, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts %d < 1", nparts)
	}
	p := &Partition{
		NParts: nparts,
		Owner:  append([]int32(nil), owner...),
		Cells:  make([][]int32, nparts),
	}
	for c, o := range owner {
		if o < 0 || int(o) >= nparts {
			return nil, fmt.Errorf("partition: cell %d has owner %d outside [0,%d)", c, o, nparts)
		}
		p.Cells[o] = append(p.Cells[o], int32(c))
	}
	for part, cells := range p.Cells {
		if len(cells) == 0 {
			return nil, fmt.Errorf("partition: part %d owns no cells", part)
		}
	}
	return p, nil
}

// Validate checks that the partition covers every cell exactly once.
func (p *Partition) Validate(m *mesh.Mesh) error {
	seen := make([]bool, m.NCells)
	total := 0
	for part, cells := range p.Cells {
		for _, c := range cells {
			if seen[c] {
				return fmt.Errorf("partition: cell %d in two parts", c)
			}
			seen[c] = true
			if p.Owner[c] != int32(part) {
				return fmt.Errorf("partition: owner mismatch for cell %d", c)
			}
			total++
		}
	}
	if total != m.NCells {
		return fmt.Errorf("partition: covers %d of %d cells", total, m.NCells)
	}
	return nil
}

// Imbalance returns max part size over mean part size.
func (p *Partition) Imbalance() float64 {
	maxSz, total := 0, 0
	for _, cells := range p.Cells {
		if len(cells) > maxSz {
			maxSz = len(cells)
		}
		total += len(cells)
	}
	mean := float64(total) / float64(p.NParts)
	return float64(maxSz) / mean
}

// Halo computes the cells at BFS distance 1..layers from the owned set of
// one part, layer by layer.
func (p *Partition) Halo(m *mesh.Mesh, part, layers int) [][]int32 {
	inSet := map[int32]bool{}
	for _, c := range p.Cells[part] {
		inSet[c] = true
	}
	frontier := p.Cells[part]
	var halos [][]int32
	for l := 0; l < layers; l++ {
		var next []int32
		for _, c := range frontier {
			for _, nb := range m.CellNeighbors(c) {
				if !inSet[nb] {
					inSet[nb] = true
					next = append(next, nb)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		halos = append(halos, next)
		frontier = next
	}
	return halos
}

// HaloCellsModel estimates the halo size of one layer around a compact
// patch of n cells: the patch boundary is ~ 2*sqrt(pi*n) cells long on a
// quasi-uniform mesh. Used for paper-scale meshes too large to build; tests
// validate it against real partitions.
func HaloCellsModel(cellsPerPart int, layer int) int {
	return int(2*math.Sqrt(math.Pi*float64(cellsPerPart))) + 6*layer
}
