package raster

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mesh"
)

var m4 *mesh.Mesh

func mesh4(t testing.TB) *mesh.Mesh {
	if m4 == nil {
		var err error
		m4, err = mesh.Build(4, mesh.Options{LloydIterations: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	return m4
}

func TestConstantFieldRastersConstant(t *testing.T) {
	m := mesh4(t)
	f := make([]float64, m.NCells)
	for i := range f {
		f[i] = 42
	}
	g := FromCellField(m, f, 18, 36)
	min, max := g.MinMax()
	if math.Abs(min-42) > 1e-12 || math.Abs(max-42) > 1e-12 {
		t.Errorf("constant field rasters to [%v, %v]", min, max)
	}
}

func TestLatitudeFieldOrdering(t *testing.T) {
	// A field equal to latitude must increase from the bottom row to the
	// top row of the raster.
	m := mesh4(t)
	f := make([]float64, m.NCells)
	for c := range f {
		f[c] = m.LatCell[c]
	}
	g := FromCellField(m, f, 12, 24)
	g.FillEmpty()
	for j := 0; j < g.NLon; j++ {
		bottom, top := g.At(0, j), g.At(g.NLat-1, j)
		if math.IsNaN(bottom) || math.IsNaN(top) {
			continue
		}
		if top <= bottom {
			t.Fatalf("column %d: top %v <= bottom %v", j, top, bottom)
		}
	}
}

func TestFillEmpty(t *testing.T) {
	m := mesh4(t)
	f := make([]float64, m.NCells)
	// A fine raster guarantees empty bins on a 2562-cell mesh.
	g := FromCellField(m, f, 60, 120)
	empty := 0
	for _, v := range g.Values {
		if math.IsNaN(v) {
			empty++
		}
	}
	if empty == 0 {
		t.Skip("no empty bins at this resolution")
	}
	g.FillEmpty()
	for _, v := range g.Values {
		if math.IsNaN(v) {
			t.Fatal("empty bin survived FillEmpty")
		}
	}
}

func TestASCIIShape(t *testing.T) {
	m := mesh4(t)
	f := make([]float64, m.NCells)
	for c := range f {
		f[c] = math.Sin(2 * m.LonCell[c])
	}
	g := FromCellField(m, f, 10, 40)
	g.FillEmpty()
	art := g.ASCII()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) != 40 {
			t.Fatalf("line width %d", len(l))
		}
	}
	if !strings.Contains(g.Legend("m"), "m") {
		t.Error("legend missing unit")
	}
}

func TestDegenerateGrid(t *testing.T) {
	m := mesh4(t)
	f := make([]float64, m.NCells)
	g := FromCellField(m, f, 0, 0) // clamped to 1x1
	if g.NLat != 1 || g.NLon != 1 {
		t.Fatal("degenerate grid not clamped")
	}
	if math.IsNaN(g.At(0, 0)) {
		t.Fatal("1x1 grid empty")
	}
}

func TestWritePGM(t *testing.T) {
	m := mesh4(t)
	f := make([]float64, m.NCells)
	for c := range f {
		f[c] = m.LatCell[c]
	}
	g := FromCellField(m, f, 8, 16)
	g.FillEmpty()
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	wantHeader := "P5\n16 8\n255\n"
	if !bytes.HasPrefix(b, []byte(wantHeader)) {
		t.Fatalf("header %q", b[:len(wantHeader)])
	}
	pix := b[len(wantHeader):]
	if len(pix) != 8*16 {
		t.Fatalf("%d pixels", len(pix))
	}
	// Top row (north) must be brighter than bottom row for a latitude field.
	var top, bottom int
	for j := 0; j < 16; j++ {
		top += int(pix[j])
		bottom += int(pix[7*16+j])
	}
	if top <= bottom {
		t.Errorf("north (%d) not brighter than south (%d)", top, bottom)
	}
}

func TestSavePGM(t *testing.T) {
	m := mesh4(t)
	f := make([]float64, m.NCells)
	g := FromCellField(m, f, 4, 8)
	path := filepath.Join(t.TempDir(), "x.pgm")
	if err := g.SavePGM(path); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatal("PGM not written")
	}
}
