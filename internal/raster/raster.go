// Package raster bins unstructured cell fields onto regular latitude-
// longitude grids for inspection — the reproduction's substitute for the
// contour plots of the paper's Figure 5 — and renders them as ASCII maps.
package raster

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/mesh"
)

// Grid is a regular lat-lon raster of a cell field.
type Grid struct {
	NLat, NLon int
	// Values[i*NLon+j] is the area-weighted mean of the field over cells
	// whose centers fall in bin (i, j); NaN when the bin is empty.
	Values []float64
}

// FromCellField bins the field (one value per mesh cell).
func FromCellField(m *mesh.Mesh, field []float64, nlat, nlon int) *Grid {
	if nlat < 1 || nlon < 1 {
		nlat, nlon = 1, 1
	}
	g := &Grid{NLat: nlat, NLon: nlon, Values: make([]float64, nlat*nlon)}
	wsum := make([]float64, nlat*nlon)
	for c := 0; c < m.NCells; c++ {
		i := int((m.LatCell[c] + math.Pi/2) / math.Pi * float64(nlat))
		if i >= nlat {
			i = nlat - 1
		}
		if i < 0 {
			i = 0
		}
		j := int(m.LonCell[c] / (2 * math.Pi) * float64(nlon))
		if j >= nlon {
			j = nlon - 1
		}
		if j < 0 {
			j = 0
		}
		w := m.AreaCell[c]
		g.Values[i*nlon+j] += w * field[c]
		wsum[i*nlon+j] += w
	}
	for k := range g.Values {
		if wsum[k] > 0 {
			g.Values[k] /= wsum[k]
		} else {
			g.Values[k] = math.NaN()
		}
	}
	return g
}

// At returns the bin value at (lat row i from south, lon column j).
func (g *Grid) At(i, j int) float64 { return g.Values[i*g.NLon+j] }

// MinMax returns the extrema over non-empty bins.
func (g *Grid) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range g.Values {
		if math.IsNaN(v) {
			continue
		}
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	return min, max
}

// FillEmpty replaces empty bins with the nearest non-empty value on the same
// latitude row (wrapping in longitude), so coarse meshes still render as a
// full map.
func (g *Grid) FillEmpty() {
	for i := 0; i < g.NLat; i++ {
		row := g.Values[i*g.NLon : (i+1)*g.NLon]
		for j, v := range row {
			if !math.IsNaN(v) {
				continue
			}
			for d := 1; d <= g.NLon/2; d++ {
				l := row[(j+d)%g.NLon]
				r := row[(j-d+g.NLon)%g.NLon]
				if !math.IsNaN(l) {
					row[j] = l
					break
				}
				if !math.IsNaN(r) {
					row[j] = r
					break
				}
			}
		}
	}
}

// ASCII renders the grid (north at the top) with a 10-glyph ramp scaled to
// the grid extrema. Empty bins render as spaces.
func (g *Grid) ASCII() string {
	min, max := g.MinMax()
	span := max - min
	if span <= 0 {
		span = 1
	}
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	for i := g.NLat - 1; i >= 0; i-- {
		for j := 0; j < g.NLon; j++ {
			v := g.At(i, j)
			if math.IsNaN(v) {
				b.WriteByte(' ')
				continue
			}
			k := int((v - min) / span * float64(len(ramp)-1))
			if k < 0 {
				k = 0
			}
			if k >= len(ramp) {
				k = len(ramp) - 1
			}
			b.WriteByte(ramp[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Legend returns a one-line description of the ramp scaling.
func (g *Grid) Legend(unit string) string {
	min, max := g.MinMax()
	return fmt.Sprintf("[' '=%.1f %s .. '@'=%.1f %s]", min, unit, max, unit)
}
