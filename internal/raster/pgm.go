package raster

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
)

// WritePGM renders the grid as a binary PGM (portable graymap) image, north
// at the top, values linearly mapped to 0..255 between the grid extrema —
// an actual image artifact for the Figure 5 field, viewable by any image
// tool. Empty bins render black.
func (g *Grid) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.NLon, g.NLat); err != nil {
		return err
	}
	min, max := g.MinMax()
	span := max - min
	if span <= 0 {
		span = 1
	}
	for i := g.NLat - 1; i >= 0; i-- {
		for j := 0; j < g.NLon; j++ {
			v := g.At(i, j)
			b := byte(0)
			if !math.IsNaN(v) {
				x := (v - min) / span * 255
				if x < 0 {
					x = 0
				}
				if x > 255 {
					x = 255
				}
				b = byte(x)
			}
			if err := bw.WriteByte(b); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SavePGM writes the PGM to a file.
func (g *Grid) SavePGM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WritePGM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
