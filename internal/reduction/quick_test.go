package reduction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/par"
)

// randomTopology generates an arbitrary edge->cell incidence (no geometric
// meaning) together with its exact transpose, so the gather forms are
// well-defined for any input the generator produces.
func randomTopology(rng *rand.Rand, ncells, nedges int) *Topology {
	if ncells < 2 {
		ncells = 2
	}
	if nedges < 1 {
		nedges = 1
	}
	tp := &Topology{
		NCells:      ncells,
		NEdges:      nedges,
		CellsOnEdge: make([]int32, 2*nedges),
	}
	deg := make([]int, ncells)
	for e := 0; e < nedges; e++ {
		c1 := rng.Intn(ncells)
		c2 := rng.Intn(ncells - 1)
		if c2 >= c1 {
			c2++
		}
		tp.CellsOnEdge[2*e] = int32(c1)
		tp.CellsOnEdge[2*e+1] = int32(c2)
		deg[c1]++
		deg[c2]++
	}
	maxDeg := 1
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	tp.MaxEdgesPerCell = maxDeg
	tp.NEdgesOnCell = make([]int32, ncells)
	tp.EdgesOnCell = make([]int32, ncells*maxDeg)
	for e := 0; e < nedges; e++ {
		for k := 0; k < 2; k++ {
			c := tp.CellsOnEdge[2*e+k]
			tp.EdgesOnCell[int(c)*maxDeg+int(tp.NEdgesOnCell[c])] = int32(e)
			tp.NEdgesOnCell[c]++
		}
	}
	return tp
}

// TestQuickGatherEqualsScatter is the property-based version of the
// refactoring correctness claim: for ARBITRARY incidence structures and
// inputs, the gather forms agree with the serial scatter.
func TestQuickGatherEqualsScatter(t *testing.T) {
	p := par.NewPool(3)
	defer p.Close()
	f := func(seed int64, nc, ne uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randomTopology(rng, int(nc)%64+2, int(ne)%256+1)
		x := make([]float64, tp.NEdges)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, tp.NCells)
		ScatterSerial(tp, ref, x)
		y := make([]float64, tp.NCells)
		GatherBranchy(p, tp, y, x)
		l := BuildLabels(tp)
		z := make([]float64, tp.NCells)
		GatherBranchFree(p, tp, l, z, x)
		for c := range ref {
			if math.Abs(ref[c]-y[c]) > 1e-12 || y[c] != z[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGlobalSumZero: the +/- structure cancels globally for any
// topology and input.
func TestQuickGlobalSumZero(t *testing.T) {
	f := func(seed int64, nc, ne uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randomTopology(rng, int(nc)%64+2, int(ne)%256+1)
		x := make([]float64, tp.NEdges)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, tp.NCells)
		ScatterSerial(tp, y, x)
		sum, mag := 0.0, 0.0
		for _, v := range y {
			sum += v
			mag += math.Abs(v)
		}
		return mag == 0 || math.Abs(sum)/(mag+1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
