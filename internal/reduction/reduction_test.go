package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/par"
)

// topoFromMesh adapts a real SCVT mesh to the reduction Topology.
func topoFromMesh(m *mesh.Mesh) *Topology {
	return &Topology{
		NCells:          m.NCells,
		NEdges:          m.NEdges,
		CellsOnEdge:     m.CellsOnEdge,
		NEdgesOnCell:    m.NEdgesOnCell,
		EdgesOnCell:     m.EdgesOnCell,
		MaxEdgesPerCell: mesh.MaxEdges,
	}
}

// ringTopology builds a synthetic 1-D periodic topology: cell i has edges
// i (to i+1) and i-1 (from i-1); edge e joins cells (e, e+1 mod n).
func ringTopology(n int) *Topology {
	tp := &Topology{
		NCells:          n,
		NEdges:          n,
		CellsOnEdge:     make([]int32, 2*n),
		NEdgesOnCell:    make([]int32, n),
		EdgesOnCell:     make([]int32, 2*n),
		MaxEdgesPerCell: 2,
	}
	for e := 0; e < n; e++ {
		tp.CellsOnEdge[2*e] = int32(e)
		tp.CellsOnEdge[2*e+1] = int32((e + 1) % n)
	}
	for c := 0; c < n; c++ {
		tp.NEdgesOnCell[c] = 2
		tp.EdgesOnCell[2*c] = int32(c)
		tp.EdgesOnCell[2*c+1] = int32((c + n - 1) % n)
	}
	return tp
}

func randomX(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestRingAllVariantsAgree(t *testing.T) {
	tp := ringTopology(257)
	x := randomX(tp.NEdges, 1)
	l := BuildLabels(tp)
	p := par.NewPool(4)
	defer p.Close()

	ref := make([]float64, tp.NCells)
	ScatterSerial(tp, ref, x)

	for name, run := range map[string]func(y []float64){
		"atomic":     func(y []float64) { ScatterAtomic(p, tp, y, x) },
		"branchy":    func(y []float64) { GatherBranchy(p, tp, y, x) },
		"branchfree": func(y []float64) { GatherBranchFree(p, tp, l, y, x) },
	} {
		y := make([]float64, tp.NCells)
		run(y)
		if d := maxAbsDiff(ref, y); d > 1e-12 {
			t.Errorf("%s differs from serial scatter by %v", name, d)
		}
	}
}

func TestMeshAllVariantsAgree(t *testing.T) {
	m, err := mesh.Build(3, mesh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := topoFromMesh(m)
	x := randomX(tp.NEdges, 2)
	l := BuildLabels(tp)
	p := par.NewPool(4)
	defer p.Close()

	ref := make([]float64, tp.NCells)
	ScatterSerial(tp, ref, x)

	y1 := make([]float64, tp.NCells)
	ScatterAtomic(p, tp, y1, x)
	y2 := make([]float64, tp.NCells)
	GatherBranchy(p, tp, y2, x)
	y3 := make([]float64, tp.NCells)
	GatherBranchFree(p, tp, l, y3, x)

	if d := maxAbsDiff(ref, y1); d > 1e-12 {
		t.Errorf("atomic scatter off by %v", d)
	}
	if d := maxAbsDiff(ref, y2); d > 1e-12 {
		t.Errorf("branchy gather off by %v", d)
	}
	// The two gather forms traverse identically, so they agree bitwise.
	for c := range y2 {
		if y2[c] != y3[c] {
			t.Fatalf("gather forms differ at cell %d: %v vs %v", c, y2[c], y3[c])
		}
	}
}

func TestLabelsAreSigns(t *testing.T) {
	m, err := mesh.Build(2, mesh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := topoFromMesh(m)
	l := BuildLabels(tp)
	for c := 0; c < tp.NCells; c++ {
		base := c * tp.MaxEdgesPerCell
		for j := 0; j < int(tp.NEdgesOnCell[c]); j++ {
			if v := l[base+j]; v != 1 && v != -1 {
				t.Fatalf("label[%d][%d] = %v", c, j, v)
			}
			// Label must match the mesh's own edge sign.
			if got, want := l[base+j], float64(m.EdgeSignOnCell[base+j]); got != want {
				t.Fatalf("label disagrees with EdgeSignOnCell at cell %d slot %d", c, j)
			}
		}
	}
}

func TestGlobalSumIsZero(t *testing.T) {
	// Every edge contributes +x to one cell and -x to another, so the sum of
	// y over cells vanishes identically — the discrete mass-conservation
	// property the solver relies on.
	tp := ringTopology(1000)
	x := randomX(tp.NEdges, 3)
	y := make([]float64, tp.NCells)
	ScatterSerial(tp, y, x)
	sum := 0.0
	for _, v := range y {
		sum += v
	}
	if math.Abs(sum) > 1e-10 {
		t.Errorf("global sum %v", sum)
	}
}

func TestScatterRacySerialPoolCorrect(t *testing.T) {
	// With a 1-worker pool the racy form is well-defined and must equal the
	// serial scatter exactly.
	tp := ringTopology(100)
	x := randomX(tp.NEdges, 4)
	p := par.NewPool(1)
	defer p.Close()
	ref := make([]float64, tp.NCells)
	ScatterSerial(tp, ref, x)
	y := make([]float64, tp.NCells)
	ScatterRacy(p, tp, y, x)
	for i := range ref {
		if ref[i] != y[i] {
			t.Fatalf("racy scatter on 1 worker differs at %d", i)
		}
	}
}

func benchTopo(b *testing.B) (*Topology, []float64, Labels) {
	m, err := mesh.Build(5, mesh.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tp := topoFromMesh(m)
	return tp, randomX(tp.NEdges, 5), BuildLabels(tp)
}

// BenchmarkReduction is the §4.C/§4.D ablation: the four reduction forms on
// a real SCVT mesh (10242 cells).
func BenchmarkReduction(b *testing.B) {
	tp, x, l := benchTopo(b)
	y := make([]float64, tp.NCells)
	p := par.NewPool(0)
	defer p.Close()
	b.Run("ScatterSerial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScatterSerial(tp, y, x)
		}
	})
	b.Run("ScatterAtomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScatterAtomic(p, tp, y, x)
		}
	})
	b.Run("GatherBranchy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GatherBranchy(p, tp, y, x)
		}
	})
	b.Run("GatherBranchFree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GatherBranchFree(p, tp, l, y, x)
		}
	})
}
