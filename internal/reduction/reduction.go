// Package reduction implements the irregular-reduction forms at the heart of
// the paper's regularity-aware loop refactoring (§3.D, §4.C, §4.D):
//
//   - Algorithm 2: the original edge-order scatter loop, which traverses
//     edges and accumulates ± contributions into the two adjacent cells. It
//     races under thread parallelism.
//   - A scatter variant with atomic adds — race-free but contended, the
//     naive "just add OpenMP" port whose poor speedup Figure 6 shows.
//   - Algorithm 3: the refactored cell-order gather loop, race-free by
//     construction, with a conditional branch per incident edge.
//   - Algorithm 4: the branch-free gather using a precomputed ±1 label
//     matrix, which is what the SIMD lanes of the accelerator want.
//
// The functions all compute, for every cell c,
//
//	y[c] = sum over incident edges e of sign(c,e) * x[e],
//
// where sign(c,e) is +1 when c is the first cell of e. All variants must
// agree; the tests verify gather forms agree bitwise with each other and
// with scatter up to roundoff reordering.
package reduction

import (
	"repro/internal/par"
)

// Topology is the minimal mesh slice needed by the reduction kernels: the
// edge->cell incidence and its cell->edge transpose.
type Topology struct {
	NCells      int
	NEdges      int
	CellsOnEdge []int32 // 2 per edge: [2e], [2e+1]
	// Transpose, stride MaxEdgesPerCell:
	NEdgesOnCell    []int32
	EdgesOnCell     []int32
	MaxEdgesPerCell int
}

// Labels is the precomputed ±1 label matrix of Algorithm 4, parallel to
// EdgesOnCell.
type Labels []float64

// BuildLabels precomputes L[c][j] = +1 if cell c is the first cell of its
// j-th incident edge, else -1 (paper §4.D).
func BuildLabels(tp *Topology) Labels {
	l := make(Labels, len(tp.EdgesOnCell))
	for c := 0; c < tp.NCells; c++ {
		base := c * tp.MaxEdgesPerCell
		for j := 0; j < int(tp.NEdgesOnCell[c]); j++ {
			e := tp.EdgesOnCell[base+j]
			if tp.CellsOnEdge[2*e] == int32(c) {
				l[base+j] = 1
			} else {
				l[base+j] = -1
			}
		}
	}
	return l
}

// ScatterSerial is Algorithm 2 run serially: the original MPAS loop shape.
func ScatterSerial(tp *Topology, y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for e := 0; e < tp.NEdges; e++ {
		c1 := tp.CellsOnEdge[2*e]
		c2 := tp.CellsOnEdge[2*e+1]
		y[c1] += x[e]
		y[c2] -= x[e]
	}
}

// ScatterRacy is Algorithm 2 parallelized directly over edges. It is
// INTENTIONALLY data-racy — multiple workers read-modify-write the same cell
// — and exists only to demonstrate (in tests, with results compared against
// the serial form) why the refactoring is needed. Do not use with a pool of
// more than one worker except to observe the race.
func ScatterRacy(p *par.Pool, tp *Topology, y, x []float64) {
	p.For(tp.NCells, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = 0
		}
	})
	p.For(tp.NEdges, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			c1 := tp.CellsOnEdge[2*e]
			c2 := tp.CellsOnEdge[2*e+1]
			y[c1] += x[e]
			y[c2] -= x[e]
		}
	})
}

// ScatterAtomic is Algorithm 2 parallelized over edges with atomic
// accumulation: race-free but heavily contended and unvectorizable — the
// performance trap the refactoring removes.
func ScatterAtomic(p *par.Pool, tp *Topology, y, x []float64) {
	p.For(tp.NCells, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = 0
		}
	})
	p.For(tp.NEdges, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			c1 := tp.CellsOnEdge[2*e]
			c2 := tp.CellsOnEdge[2*e+1]
			par.AtomicAddFloat64(&y[c1], x[e])
			par.AtomicAddFloat64(&y[c2], -x[e])
		}
	})
}

// GatherBranchy is Algorithm 3: loop over cells, gather incident edge values,
// resolving the sign with a conditional. Race-free under cell-parallel
// execution because each worker writes only its own cells.
func GatherBranchy(p *par.Pool, tp *Topology, y, x []float64) {
	p.For(tp.NCells, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			base := c * tp.MaxEdgesPerCell
			acc := 0.0
			for j := 0; j < int(tp.NEdgesOnCell[c]); j++ {
				e := tp.EdgesOnCell[base+j]
				if tp.CellsOnEdge[2*e] == int32(c) {
					acc += x[e]
				} else {
					acc -= x[e]
				}
			}
			y[c] = acc
		}
	})
}

// GatherBranchFree is Algorithm 4: the gather loop with the conditional
// replaced by a multiply against the precomputed label matrix, leaving a
// pure multiply-accumulate body.
func GatherBranchFree(p *par.Pool, tp *Topology, l Labels, y, x []float64) {
	p.For(tp.NCells, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			base := c * tp.MaxEdgesPerCell
			acc := 0.0
			for j := 0; j < int(tp.NEdgesOnCell[c]); j++ {
				acc += l[base+j] * x[tp.EdgesOnCell[base+j]]
			}
			y[c] = acc
		}
	})
}
