package reduction_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
	"repro/internal/reduction"
)

// randomTopology builds a random edge->cell incidence (a multigraph — the
// reduction kernels only need the incidence, not a planar mesh) with the
// cell->edge transpose listed in ascending edge order, which is what makes
// the serial scatter and the gather forms accumulate each cell's
// contributions in the identical sequence and therefore agree bitwise.
func randomTopology(rng *rand.Rand) *reduction.Topology {
	ncells := 4 + rng.Intn(21)
	nedges := ncells + rng.Intn(3*ncells)
	tp := &reduction.Topology{NCells: ncells, NEdges: nedges}
	tp.CellsOnEdge = make([]int32, 2*nedges)
	lists := make([][]int32, ncells)
	for e := 0; e < nedges; e++ {
		c1 := rng.Intn(ncells)
		c2 := rng.Intn(ncells - 1)
		if c2 >= c1 {
			c2++
		}
		tp.CellsOnEdge[2*e] = int32(c1)
		tp.CellsOnEdge[2*e+1] = int32(c2)
		lists[c1] = append(lists[c1], int32(e))
		lists[c2] = append(lists[c2], int32(e))
	}
	for _, l := range lists {
		if len(l) > tp.MaxEdgesPerCell {
			tp.MaxEdgesPerCell = len(l)
		}
	}
	tp.NEdgesOnCell = make([]int32, ncells)
	tp.EdgesOnCell = make([]int32, ncells*tp.MaxEdgesPerCell)
	for c, l := range lists {
		tp.NEdgesOnCell[c] = int32(len(l))
		copy(tp.EdgesOnCell[c*tp.MaxEdgesPerCell:], l)
	}
	return tp
}

// FuzzReductionForms cross-checks the four reduction forms of §4.C/4.D on
// random incidences: serial scatter (Algorithm 2), branchy gather
// (Algorithm 3) and branch-free gather (Algorithm 4) must agree BITWISE;
// atomic scatter reorders its accumulations and must agree to roundoff.
func FuzzReductionForms(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(13))
	f.Add(uint64(987654))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		tp := randomTopology(rng)
		x := make([]float64, tp.NEdges)
		scale := 0.0
		for i := range x {
			x[i] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(20)-10)
			scale += math.Abs(x[i])
		}
		labels := reduction.BuildLabels(tp)
		pool := par.NewPool(2)
		defer pool.Close()

		ser := make([]float64, tp.NCells)
		branchy := make([]float64, tp.NCells)
		branchfree := make([]float64, tp.NCells)
		atomic := make([]float64, tp.NCells)
		reduction.ScatterSerial(tp, ser, x)
		reduction.GatherBranchy(pool, tp, branchy, x)
		reduction.GatherBranchFree(pool, tp, labels, branchfree, x)
		reduction.ScatterAtomic(pool, tp, atomic, x)

		for c := 0; c < tp.NCells; c++ {
			if math.Float64bits(ser[c]) != math.Float64bits(branchy[c]) {
				t.Errorf("cell %d: branchy %v != serial scatter %v (want bitwise)",
					c, branchy[c], ser[c])
			}
			if math.Float64bits(branchy[c]) != math.Float64bits(branchfree[c]) {
				t.Errorf("cell %d: branch-free %v != branchy %v (want bitwise)",
					c, branchfree[c], branchy[c])
			}
			if d := math.Abs(atomic[c] - ser[c]); d > 1e-13*scale {
				t.Errorf("cell %d: atomic scatter off by %v (band %v)", c, d, 1e-13*scale)
			}
		}
	})
}
