package testcases

import (
	"math"
	"testing"

	"repro/internal/sw"
)

func TestGalewskyJetProfile(t *testing.T) {
	// Zero outside the jet band, positive inside, peaked near the middle.
	if galewskyU(0) != 0 || galewskyU(math.Pi/2) != 0 {
		t.Error("jet not confined")
	}
	mid := (galPhi0 + galPhi1) / 2
	if u := galewskyU(mid); math.Abs(u-galUMax) > 1 {
		t.Errorf("jet peak %v, want ~%v", u, galUMax)
	}
	if galewskyU(galPhi0+0.01) >= galewskyU(mid) {
		t.Error("jet not peaked in the middle")
	}
	// Continuous at the edges (smooth decay to zero).
	if galewskyU(galPhi0+1e-6) > 1e-3 {
		t.Error("jet discontinuous at south edge")
	}
}

func TestGalewskyBalancedStateNearlySteady(t *testing.T) {
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	s, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	SetupGalewsky(s, false)
	h0 := append([]float64(nil), s.State.H...)
	inv0 := s.ComputeInvariants()
	s.Run(int(0.5 * Day / cfg.Dt))
	inv := s.ComputeInvariants()
	if rel := math.Abs(inv.Mass-inv0.Mass) / inv0.Mass; rel > 1e-13 {
		t.Errorf("mass drift %v", rel)
	}
	n := HeightNorms(m, s.State.H, h0)
	// The balanced jet is steady; discretization error on the sharp jet at
	// ~480 km is visible but small.
	if n.L2 > 5e-3 {
		t.Errorf("balanced jet drifted: l2 %v", n.L2)
	}
	if inv.MaxSpeed > 100 {
		t.Errorf("jet accelerated: max speed %v", inv.MaxSpeed)
	}
}

func TestGalewskyPerturbationGrows(t *testing.T) {
	// The height bump first disperses into gravity waves (days 1-2), then
	// the barotropic instability amplifies it exponentially (days 3-5).
	// We check for the growth phase: the perturbed-vs-balanced difference
	// at day 4 must clearly exceed the day-2 minimum.
	if testing.Short() {
		t.Skip("4-day integration")
	}
	m := mesh4(t)
	cfg := sw.DefaultConfig(m)
	base, _ := sw.NewSolver(m, cfg)
	SetupGalewsky(base, false)
	pert, _ := sw.NewSolver(m, cfg)
	SetupGalewsky(pert, true)
	diff := func() float64 {
		d := 0.0
		for c := range base.State.H {
			if v := math.Abs(pert.State.H[c] - base.State.H[c]); v > d {
				d = v
			}
		}
		return d
	}
	perDay := int(Day / cfg.Dt)
	base.Run(2 * perDay)
	pert.Run(2 * perDay)
	d2 := diff()
	base.Run(2 * perDay)
	pert.Run(2 * perDay)
	d4 := diff()
	if d4 < 2*d2 {
		t.Errorf("no instability growth: day 2 %.1f m -> day 4 %.1f m", d2, d4)
	}
	inv := pert.ComputeInvariants()
	if math.IsNaN(inv.TotalEnergy) || inv.MinH <= 0 {
		t.Fatalf("perturbed run unstable: %+v", inv)
	}
}

func TestGalewskyBalanceTableMonotonicSouthOfJet(t *testing.T) {
	b := newGalewskyBalance(6.371e6, 9.80616, Omega, 5000)
	// South of the jet the integral is constant (integrand zero).
	if math.Abs(b.at(-0.5)-b.at(-1.0)) > 1e-9 {
		t.Error("balance integral changes where u=0")
	}
	// Across the jet the height must DROP from south to north (westerly
	// geostrophic jet on a rotating sphere).
	if !(b.at(galPhi1+0.05) < b.at(galPhi0-0.05)) {
		t.Error("height does not drop across the jet")
	}
}
