package testcases

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/sw"
)

var m4cache *mesh.Mesh

func mesh4(t testing.TB) *mesh.Mesh {
	if m4cache == nil {
		var err error
		m4cache, err = mesh.Build(4, mesh.Options{LloydIterations: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	return m4cache
}

func tc1Solver(t *testing.T, alpha float64) *sw.Solver {
	return tc1SolverOn(t, mesh3(t), alpha)
}

func tc1SolverOn(t *testing.T, m *mesh.Mesh, alpha float64) *sw.Solver {
	cfg := sw.DefaultConfig(m)
	cfg.AdvectionOnly = true
	s, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	SetupTC1(s, alpha)
	return s
}

func TestTC1VelocityFrozen(t *testing.T) {
	s := tc1Solver(t, 0)
	u0 := append([]float64(nil), s.State.U...)
	s.Run(10)
	for e := range u0 {
		if s.State.U[e] != u0[e] {
			t.Fatalf("velocity changed at edge %d in advection-only mode", e)
		}
	}
}

func TestTC1MassConserved(t *testing.T) {
	s := tc1Solver(t, 0.3)
	m0 := s.ComputeInvariants().Mass
	s.Run(20)
	if rel := math.Abs(s.ComputeInvariants().Mass-m0) / m0; rel > 1e-13 {
		t.Errorf("mass drift %v", rel)
	}
}

func TestTC1BellAdvectsEquatorially(t *testing.T) {
	// Quarter revolution with alpha=0: the bell center moves 90 degrees
	// east. Compare against the exact rotated bell.
	s := tc1SolverOn(t, mesh4(t), 0)
	m := s.M
	quarter := 3 * Day
	steps := int(quarter / s.Cfg.Dt)
	s.Run(steps)
	exact := TC1Exact(m.XCell, m.Radius, 0, float64(steps)*s.Cfg.Dt)
	n := HeightNorms(m, s.State.H, exact)
	// Coarse 480-km mesh with 2nd-order fluxes is diffusive but the bell
	// must clearly track the exact position.
	if n.L2 > 0.05 {
		t.Errorf("TC1 l2 error %v after quarter revolution", n.L2)
	}
	// The numeric bell peak must be near the exact peak.
	argmax := func(h []float64) int {
		best := 0
		for c := range h {
			if h[c] > h[best] {
				best = c
			}
		}
		return best
	}
	pn, pe := argmax(s.State.H), argmax(exact)
	if d := m.Radius * geom.ArcLength(m.XCell[pn], m.XCell[pe]); d > 1.0e6 {
		t.Errorf("bell peak displaced %v m from exact", d)
	}
}

func TestTC1OverThePoles(t *testing.T) {
	// alpha = pi/2 carries the bell across both poles — the configuration
	// that breaks lat-lon models. The SCVT mesh has no pole singularity,
	// so the run must stay stable and conservative.
	s := tc1Solver(t, math.Pi/2)
	m0 := s.ComputeInvariants().Mass
	s.Run(int(2 * Day / s.Cfg.Dt))
	inv := s.ComputeInvariants()
	if math.IsNaN(inv.Mass) || math.Abs(inv.Mass-m0)/m0 > 1e-13 {
		t.Errorf("polar advection broke conservation: %+v", inv)
	}
	// Centered fluxes are dispersive for a bell only a couple of cells wide
	// at this coarse resolution; allow the classic over/undershoots but
	// catch blow-up.
	if inv.MaxH > TC1Base+1.3*1000 || inv.MinH < TC1Base-700 {
		t.Errorf("polar advection produced out-of-band h: %+v", inv)
	}
}

func TestTC1ExactPeriodicity(t *testing.T) {
	// The exact solution after a full revolution equals the initial field.
	m := mesh3(t)
	h0 := TC1Exact(m.XCell, m.Radius, 0.7, 0)
	h12 := TC1Exact(m.XCell, m.Radius, 0.7, 12*Day)
	for c := range h0 {
		if math.Abs(h0[c]-h12[c]) > 1e-9 {
			t.Fatalf("exact solution not periodic at cell %d", c)
		}
	}
}
