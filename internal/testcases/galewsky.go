package testcases

import (
	"math"

	"repro/internal/sw"
)

// Galewsky et al. (2004) barotropic instability: a balanced mid-latitude
// zonal jet, optionally seeded with a small height perturbation whose
// instability rolls the jet up into vortices within a few days. It is the
// standard "hard" shallow-water test beyond the Williamson suite and
// exercises exactly the sharp-gradient dynamics the paper's model targets.

const (
	galUMax = 80.0                // jet speed, m/s
	galPhi0 = math.Pi / 7         // jet south edge
	galPhi1 = math.Pi/2 - galPhi0 // jet north edge
	galH0   = 10000.0             // mean layer depth, m
	// Perturbation parameters.
	galHHat  = 120.0
	galAlpha = 1.0 / 3.0
	galBeta  = 1.0 / 15.0
	galPhi2  = math.Pi / 4
)

// galewskyU is the zonal jet profile.
func galewskyU(phi float64) float64 {
	if phi <= galPhi0 || phi >= galPhi1 {
		return 0
	}
	en := math.Exp(-4 / ((galPhi1 - galPhi0) * (galPhi1 - galPhi0)))
	return galUMax / en * math.Exp(1/((phi-galPhi0)*(phi-galPhi1)))
}

// galewskyBalance tabulates the geostrophically balanced height integral
//
//	h(phi) = -(a/g) * Int_{-pi/2}^{phi} u(f + u tan(phi')/a) dphi'
//
// on a uniform grid for later interpolation.
type galewskyBalance struct {
	dphi float64
	tab  []float64
}

func newGalewskyBalance(a, g, omega float64, n int) *galewskyBalance {
	b := &galewskyBalance{dphi: math.Pi / float64(n), tab: make([]float64, n+1)}
	integrand := func(phi float64) float64 {
		u := galewskyU(phi)
		if u == 0 {
			return 0
		}
		f := 2 * omega * math.Sin(phi)
		return a / g * u * (f + math.Tan(phi)*u/a)
	}
	// Composite trapezoid from the south pole.
	acc := 0.0
	prev := integrand(-math.Pi / 2)
	b.tab[0] = 0
	for i := 1; i <= n; i++ {
		phi := -math.Pi/2 + float64(i)*b.dphi
		cur := integrand(phi)
		acc += 0.5 * (prev + cur) * b.dphi
		b.tab[i] = -acc
		prev = cur
	}
	return b
}

// mean returns the spherical area-weighted mean of the balance profile,
// (1/2) Int bal(phi) cos(phi) dphi, by trapezoid over the table. Using the
// analytic mean (rather than a mesh sum) keeps the initial condition a pure
// function of position, so distributed ranks reconstruct the identical state
// on their local meshes.
func (b *galewskyBalance) mean() float64 {
	acc := 0.0
	for i := 1; i < len(b.tab); i++ {
		p0 := -math.Pi/2 + float64(i-1)*b.dphi
		p1 := p0 + b.dphi
		acc += 0.5 * (b.tab[i-1]*math.Cos(p0) + b.tab[i]*math.Cos(p1)) * b.dphi
	}
	return acc / 2
}

// at interpolates the tabulated balance at latitude phi.
func (b *galewskyBalance) at(phi float64) float64 {
	x := (phi + math.Pi/2) / b.dphi
	i := int(x)
	if i < 0 {
		i = 0
	}
	if i >= len(b.tab)-1 {
		i = len(b.tab) - 2
	}
	fr := x - float64(i)
	return b.tab[i]*(1-fr) + b.tab[i+1]*fr
}

// SetupGalewsky initializes the balanced jet; perturbed adds the height
// bump that triggers the instability.
func SetupGalewsky(s *sw.Solver, perturbed bool) {
	m := s.M
	bal := newGalewskyBalance(m.Radius, s.Cfg.Gravity, s.Cfg.Omega, 20000)

	// Offset so the (analytic) area-weighted mean depth is galH0.
	offset := galH0 - bal.mean()

	for c := 0; c < m.NCells; c++ {
		lat, lon := m.LatCell[c], m.LonCell[c]
		h := offset + bal.at(lat)
		if perturbed {
			l := lon
			if l > math.Pi {
				l -= 2 * math.Pi
			}
			h += galHHat * math.Cos(lat) *
				math.Exp(-(l/galAlpha)*(l/galAlpha)) *
				math.Exp(-((galPhi2-lat)/galBeta)*((galPhi2-lat)/galBeta))
		}
		s.State.H[c] = h
		s.B[c] = 0
	}
	zonalWind(s, func(lat, lon float64) (float64, float64) {
		return galewskyU(lat), 0
	})
	s.Init()
}
