// Package testcases implements the standard Williamson et al. (1992) test
// suite for the spherical shallow-water equations, as used by the paper's
// correctness validation (§5.A): test case 2 (steady zonal geostrophic
// flow), test case 5 (zonal flow over an isolated mountain — Figure 5) and
// test case 6 (Rossby–Haurwitz wave), plus the area-weighted error norms of
// the Williamson suite.
package testcases

import (
	"math"

	"repro/internal/mesh"
	"repro/internal/sw"
)

// Day is one day in seconds.
const Day = 86400.0

// Omega is Earth's rotation rate (rad/s), the Williamson standard value.
const Omega = 7.292e-5

// Gravity is the Williamson standard gravitational acceleration.
const Gravity = 9.80616

// zonalWind fills the edge normal velocities from an analytic wind given as
// (zonal, meridional) components at a point.
func zonalWind(s *sw.Solver, wind func(lat, lon float64) (zo, me float64)) {
	m := s.M
	for e := 0; e < m.NEdges; e++ {
		zo, me := wind(m.LatEdge[e], m.LonEdge[e])
		s.State.U[e] = zo*math.Cos(m.AngleEdge[e]) + me*math.Sin(m.AngleEdge[e])
	}
}

// SetupTC2 initializes Williamson test case 2: a steady zonal geostrophic
// flow. The exact solution is the initial condition, so any departure is
// numerical error.
func SetupTC2(s *sw.Solver) {
	m := s.M
	a := m.Radius
	u0 := 2 * math.Pi * a / (12 * Day)
	gh0 := 2.94e4
	g := s.Cfg.Gravity
	for c := 0; c < m.NCells; c++ {
		sl := math.Sin(m.LatCell[c])
		s.State.H[c] = (gh0 - (a*Omega*u0+u0*u0/2)*sl*sl) / g
		s.B[c] = 0
	}
	zonalWind(s, func(lat, lon float64) (float64, float64) {
		return u0 * math.Cos(lat), 0
	})
	s.Init()
}

// TC5MountainCenterLon and TC5MountainCenterLat locate the isolated
// mountain of test case 5.
const (
	TC5MountainCenterLon = 3 * math.Pi / 2
	TC5MountainCenterLat = math.Pi / 6
	tc5MountainRadius    = math.Pi / 9
	tc5MountainHeight    = 2000.0
)

// TC5Topography returns the mountain height at (lat, lon).
func TC5Topography(lat, lon float64) float64 {
	dlon := math.Abs(lon - TC5MountainCenterLon)
	if dlon > math.Pi {
		dlon = 2*math.Pi - dlon
	}
	dlat := lat - TC5MountainCenterLat
	r := math.Min(tc5MountainRadius, math.Hypot(dlon, dlat))
	return tc5MountainHeight * (1 - r/tc5MountainRadius)
}

// SetupTC5 initializes Williamson test case 5: zonal flow over an isolated
// mountain (the paper's Figure 5 case; run to day 15).
func SetupTC5(s *sw.Solver) {
	m := s.M
	a := m.Radius
	u0 := 20.0
	h0 := 5960.0
	g := s.Cfg.Gravity
	for c := 0; c < m.NCells; c++ {
		lat, lon := m.LatCell[c], m.LonCell[c]
		sl := math.Sin(lat)
		s.B[c] = TC5Topography(lat, lon)
		s.State.H[c] = h0 - (a*Omega*u0+u0*u0/2)*sl*sl/g - s.B[c]
	}
	zonalWind(s, func(lat, lon float64) (float64, float64) {
		return u0 * math.Cos(lat), 0
	})
	s.Init()
}

// SetupTC6 initializes Williamson test case 6: the wavenumber-4
// Rossby–Haurwitz wave.
func SetupTC6(s *sw.Solver) {
	m := s.M
	a := m.Radius
	const (
		w  = 7.848e-6
		kk = 7.848e-6
		r  = 4.0
		h0 = 8000.0
	)
	g := s.Cfg.Gravity
	for c := 0; c < m.NCells; c++ {
		lat, lon := m.LatCell[c], m.LonCell[c]
		cphi := math.Cos(lat)
		cr := math.Pow(cphi, r)
		c2r := cr * cr
		A := w/2*(2*Omega+w)*cphi*cphi +
			kk*kk/4*c2r*((r+1)*cphi*cphi+(2*r*r-r-2)-2*r*r/(cphi*cphi))
		B := 2 * (Omega + w) * kk / ((r + 1) * (r + 2)) * cr *
			((r*r + 2*r + 2) - (r+1)*(r+1)*cphi*cphi)
		C := kk * kk / 4 * c2r * ((r+1)*cphi*cphi - (r + 2))
		s.State.H[c] = h0 + a*a/g*(A+B*math.Cos(r*lon)+C*math.Cos(2*r*lon))
		s.B[c] = 0
	}
	zonalWind(s, func(lat, lon float64) (float64, float64) {
		cphi := math.Cos(lat)
		sphi := math.Sin(lat)
		crm1 := math.Pow(cphi, r-1)
		zo := a*w*cphi + a*kk*crm1*(r*sphi*sphi-cphi*cphi)*math.Cos(r*lon)
		me := -a * kk * r * crm1 * sphi * math.Sin(r*lon)
		return zo, me
	})
	s.Init()
}

// Norms are the Williamson area-weighted normalized error norms.
type Norms struct {
	L1, L2, LInf float64
}

// HeightNorms computes the normalized l1/l2/linf error of h against ref on
// mesh m.
func HeightNorms(m *mesh.Mesh, h, ref []float64) Norms {
	var n Norms
	var sum1, ref1, sum2, ref2, refInf float64
	for c := 0; c < m.NCells; c++ {
		a := m.AreaCell[c]
		d := h[c] - ref[c]
		sum1 += a * math.Abs(d)
		ref1 += a * math.Abs(ref[c])
		sum2 += a * d * d
		ref2 += a * ref[c] * ref[c]
		if v := math.Abs(d); v > n.LInf {
			n.LInf = v
		}
		if v := math.Abs(ref[c]); v > refInf {
			refInf = v
		}
	}
	n.L1 = sum1 / ref1
	n.L2 = math.Sqrt(sum2) / math.Sqrt(ref2)
	n.LInf /= refInf
	return n
}

// TotalHeight returns h+b per cell — the field plotted in the paper's
// Figure 5.
func TotalHeight(s *sw.Solver) []float64 {
	out := make([]float64, s.M.NCells)
	for c := range out {
		out[c] = s.State.H[c] + s.B[c]
	}
	return out
}

// MaxAbsDiff returns the maximum absolute pointwise difference of two
// fields, and the maximum absolute value of the first — the "difference vs
// machine precision" comparison of Figure 5(c).
func MaxAbsDiff(a, b []float64) (diff, scale float64) {
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > diff {
			diff = d
		}
		if v := math.Abs(a[i]); v > scale {
			scale = v
		}
	}
	return diff, scale
}
