package testcases

import (
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sw"
)

var m3 *mesh.Mesh

func mesh3(t testing.TB) *mesh.Mesh {
	if m3 == nil {
		var err error
		m3, err = mesh.Build(3, mesh.Options{LloydIterations: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	return m3
}

func solver(t testing.TB) *sw.Solver {
	m := mesh3(t)
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTC2GeostrophicBalance(t *testing.T) {
	// The initial TC2 state is in geostrophic balance: tendencies after one
	// diagnostic evaluation must be small relative to the dynamic scales.
	s := solver(t)
	SetupTC2(s)
	s.Step()
	// After one step the height changed by at most a tiny fraction.
	var maxDh float64
	for c := range s.State.H {
		want := (2.94e4 - (s.M.Radius*Omega*38.6+38.6*38.6/2)*math.Pow(math.Sin(s.M.LatCell[c]), 2)) / s.Cfg.Gravity
		if d := math.Abs(s.State.H[c] - want); d > maxDh {
			maxDh = d
		}
	}
	if maxDh > 10 { // meters, of a ~3000 m field
		t.Errorf("TC2 drifted %v m after one step", maxDh)
	}
}

func TestTC2WindProfile(t *testing.T) {
	s := solver(t)
	SetupTC2(s)
	u0 := 2 * math.Pi * s.M.Radius / (12 * Day)
	// Normal velocities are bounded by u0.
	for e, u := range s.State.U {
		if math.Abs(u) > u0*(1+1e-9) {
			t.Fatalf("edge %d |u|=%v exceeds u0=%v", e, u, u0)
		}
	}
}

func TestTC5TopographyShape(t *testing.T) {
	// Peak at the center, zero outside the radius.
	if h := TC5Topography(TC5MountainCenterLat, TC5MountainCenterLon); math.Abs(h-2000) > 1e-9 {
		t.Errorf("peak height %v", h)
	}
	if h := TC5Topography(-math.Pi/4, 0); h != 0 {
		t.Errorf("antipodal height %v", h)
	}
	// Monotone decay with distance.
	h1 := TC5Topography(TC5MountainCenterLat+0.05, TC5MountainCenterLon)
	h2 := TC5Topography(TC5MountainCenterLat+0.15, TC5MountainCenterLon)
	if !(2000 > h1 && h1 > h2 && h2 > 0) {
		t.Errorf("not monotone: %v %v", h1, h2)
	}
	// Longitude wraparound: the mountain is at 3*pi/2, so lon slightly
	// above 0 is far away but must not see a discontinuity artifact.
	if h := TC5Topography(TC5MountainCenterLat, TC5MountainCenterLon+2*math.Pi-0.05); h <= 0 {
		t.Error("wraparound not handled")
	}
}

func TestTC5InitialHPositive(t *testing.T) {
	s := solver(t)
	SetupTC5(s)
	for c, h := range s.State.H {
		if h <= 0 {
			t.Fatalf("cell %d h=%v", c, h)
		}
		if h+s.B[c] > 6000 {
			t.Fatalf("cell %d total height %v", c, h+s.B[c])
		}
	}
}

func TestTC6HeightField(t *testing.T) {
	s := solver(t)
	SetupTC6(s)
	// Rossby-Haurwitz h around 8000-10500 m.
	for c, h := range s.State.H {
		if h < 7000 || h > 11000 {
			t.Fatalf("cell %d h=%v out of expected band", c, h)
		}
	}
	// Wavenumber 4: h along the equator has 4 maxima; check the field is
	// 90-degree periodic at the equator to good accuracy by comparing two
	// analytic evaluations (sanity of the formula, not the mesh).
}

func TestHeightNormsProperties(t *testing.T) {
	m := mesh3(t)
	ref := make([]float64, m.NCells)
	same := make([]float64, m.NCells)
	for i := range ref {
		ref[i] = 1000 + float64(i%7)
		same[i] = ref[i]
	}
	n := HeightNorms(m, same, ref)
	if n.L1 != 0 || n.L2 != 0 || n.LInf != 0 {
		t.Errorf("identical fields give nonzero norms: %+v", n)
	}
	off := append([]float64(nil), ref...)
	off[10] += 5
	n = HeightNorms(m, off, ref)
	if n.L1 <= 0 || n.L2 <= 0 || n.LInf <= 0 {
		t.Errorf("perturbed field gives zero norms: %+v", n)
	}
	if n.LInf < n.L2 || n.L2 < n.L1 {
		// For a single-point perturbation linf >= l2 >= l1.
		t.Errorf("norm ordering violated: %+v", n)
	}
}

func TestTotalHeightAndMaxAbsDiff(t *testing.T) {
	s := solver(t)
	SetupTC5(s)
	th := TotalHeight(s)
	for c := range th {
		if math.Abs(th[c]-(s.State.H[c]+s.B[c])) > 1e-12 {
			t.Fatal("TotalHeight mismatch")
		}
	}
	d, scale := MaxAbsDiff(th, th)
	if d != 0 || scale <= 0 {
		t.Errorf("MaxAbsDiff self = %v, scale %v", d, scale)
	}
}
