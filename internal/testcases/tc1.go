package testcases

import (
	"math"

	"repro/internal/geom"
	"repro/internal/sw"
)

// Williamson test case 1: advection of a cosine bell by a solid-body wind
// whose rotation axis is tilted by alpha from the pole (alpha = pi/2 carries
// the bell straight over both poles — the classic robustness configuration).
// The solver runs in AdvectionOnly mode so the wind is prescribed; after one
// 12-day revolution the exact solution equals the initial condition, and at
// any intermediate time it is the rigidly rotated bell, which TC1Exact
// evaluates.

// TC1Base is the constant background thickness added to the bell so the
// potential-vorticity diagnostics (which divide by h) stay finite; adding a
// constant is exact for the continuous advection equation because the
// prescribed wind is non-divergent.
const TC1Base = 1000.0

// tc1BellHeight is the bell amplitude h0 of the Williamson suite.
const tc1BellHeight = 1000.0

// tc1Radius is the bell radius R = a/3 (in radians on the unit sphere).
const tc1Radius = 1.0 / 3.0

// tc1U0 returns the advecting wind speed: one revolution in 12 days.
func tc1U0(radius float64) float64 { return 2 * math.Pi * radius / (12 * Day) }

// tc1Axis returns the rotation axis tilted alpha from the z axis (in the
// x-z plane, matching the Williamson convention of flow angle alpha).
func tc1Axis(alpha float64) geom.Vec3 {
	return geom.V(-math.Sin(alpha), 0, math.Cos(alpha))
}

// tc1Center0 is the initial bell center (lon = 3*pi/2, lat = 0).
func tc1Center0() geom.Vec3 { return geom.FromLatLon(0, 3*math.Pi/2) }

// rotate applies Rodrigues' rotation of p about unit axis a by angle th.
func rotate(p, a geom.Vec3, th float64) geom.Vec3 {
	c, s := math.Cos(th), math.Sin(th)
	return p.Scale(c).Add(a.Cross(p).Scale(s)).Add(a.Scale(a.Dot(p) * (1 - c)))
}

// tc1Bell evaluates the cosine bell (plus base) at unit position p for bell
// center ctr.
func tc1Bell(p, ctr geom.Vec3) float64 {
	r := geom.ArcLength(p, ctr)
	if r >= tc1Radius {
		return TC1Base
	}
	return TC1Base + tc1BellHeight/2*(1+math.Cos(math.Pi*r/tc1Radius))
}

// SetupTC1 initializes Williamson test case 1 with flow angle alpha. The
// solver's config must have AdvectionOnly set (SetupTC1 enforces it).
func SetupTC1(s *sw.Solver, alpha float64) {
	s.Cfg.AdvectionOnly = true
	m := s.M
	ctr := tc1Center0()
	for c := 0; c < m.NCells; c++ {
		s.State.H[c] = tc1Bell(m.XCell[c], ctr)
		s.B[c] = 0
	}
	u0 := tc1U0(m.Radius)
	axis := tc1Axis(alpha)
	for e := 0; e < m.NEdges; e++ {
		v := axis.Cross(m.XEdge[e]).Scale(u0)
		s.State.U[e] = v.Dot(m.EdgeNormal[e])
	}
	s.Init()
}

// TC1Exact returns the exact thickness field at time t (seconds) for flow
// angle alpha on mesh positions xcell.
func TC1Exact(xcell []geom.Vec3, radius, alpha, t float64) []float64 {
	omega := tc1U0(radius) / radius
	ctr := rotate(tc1Center0(), tc1Axis(alpha), omega*t)
	out := make([]float64, len(xcell))
	for c, p := range xcell {
		out[c] = tc1Bell(p, ctr)
	}
	return out
}
