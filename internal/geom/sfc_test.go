package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestHilbertCurveAdjacency checks the Hilbert walk itself. The curve is
// self-similar: the top 2k bits of hilbertD are the order-k curve over the
// top k bits of the coordinates, so evaluating on a coarse 32x32 subgrid
// must yield a permutation of 0..1023 in which consecutive curve positions
// are Manhattan-adjacent grid cells — the defining property of a Hilbert
// ordering.
func TestHilbertCurveAdjacency(t *testing.T) {
	const k = 5
	const n = 1 << k
	shift := uint(sfcOrder - k)
	pos := make([][2]int, n*n) // curve distance -> (x, y)
	seen := make([]bool, n*n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			d := hilbertD(uint32(x)<<shift, uint32(y)<<shift) >> (2 * shift)
			if d >= uint64(n*n) {
				t.Fatalf("hilbertD(%d,%d) coarse index %d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("curve distance %d visited twice", d)
			}
			seen[d] = true
			pos[d] = [2]int{x, y}
		}
	}
	for d := 1; d < n*n; d++ {
		dx := pos[d][0] - pos[d-1][0]
		dy := pos[d][1] - pos[d-1][1]
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve positions %d->%d jump from %v to %v", d-1, d, pos[d-1], pos[d])
		}
	}
}

func TestSFCKeyDeterministicAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		p := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalize()
		k1, k2 := SFCKey(p), SFCKey(p)
		if k1 != k2 {
			t.Fatalf("SFCKey not deterministic at %v: %d vs %d", p, k1, k2)
		}
		if face := k1 >> (2 * sfcOrder); face > 5 {
			t.Fatalf("SFCKey face %d out of range at %v", face, p)
		}
	}
}

// TestSFCKeyLocality is the statistical property the renumbering relies on:
// pairs of nearby points on the sphere must be far closer in key space, on
// average, than arbitrary pairs. The margin is coarse (10x) so the test is
// robust to the occasional pair straddling a curve seam.
func TestSFCKeyLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randPoint := func() Vec3 {
		return V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalize()
	}
	const samples = 4000
	var nearSum, farSum float64
	for i := 0; i < samples; i++ {
		p := randPoint()
		// A point ~0.01 rad away along a random tangent.
		dir := ProjectToTangent(p, randPoint()).Normalize()
		q := p.Add(dir.Scale(0.01)).Normalize()
		nearSum += math.Abs(float64(SFCKey(p)) - float64(SFCKey(q)))
		farSum += math.Abs(float64(SFCKey(p)) - float64(SFCKey(randPoint())))
	}
	if nearSum*10 >= farSum {
		t.Fatalf("SFC keys show no locality: near mean %g vs far mean %g",
			nearSum/samples, farSum/samples)
	}
}
