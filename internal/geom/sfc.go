package geom

import "math"

// This file provides the spherical space-filling-curve (SFC) key used for
// locality renumbering (mesh.ComputeReorder) and contiguous-range
// partitioning (partition.SFC). Points on the unit sphere are gnomonically
// projected onto the six faces of an enclosing cube and ordered by a Hilbert
// curve within each face, so points that are close on the sphere get close
// keys almost everywhere (the only seams are the cube-face boundaries).
// Keeping one key function shared by the renumbering pass and the
// partitioner is what makes the two coincide: on an SFC-renumbered mesh,
// sorting by key is sorting by index, so SFC partitions become contiguous
// index ranges.

const (
	// sfcOrder is the Hilbert curve refinement order per cube face. 2^20
	// grid cells per face side resolves ~1e12 positions per face — far
	// below the spacing of any buildable mesh, so distinct generators
	// essentially never collide (ties are broken by index upstream).
	sfcOrder = 20
	sfcGrid  = 1 << sfcOrder
)

// SFCKey maps a unit vector to its position along a spherical space-filling
// curve: 3 bits of cube face above 2*sfcOrder bits of intra-face Hilbert
// index. Keys are comparable with < and deterministic in the input bits.
func SFCKey(p Vec3) uint64 {
	face, u, v := cubeFace(p)
	return uint64(face)<<(2*sfcOrder) | hilbertD(sfcCoord(u), sfcCoord(v))
}

// cubeFace gnomonically projects unit vector p onto the face of the cube
// [-1,1]^3 that its dominant axis selects, returning the face index and the
// in-face coordinates u,v in [-1,1].
func cubeFace(p Vec3) (face int, u, v float64) {
	ax, ay, az := math.Abs(p.X), math.Abs(p.Y), math.Abs(p.Z)
	switch {
	case ax >= ay && ax >= az:
		if p.X >= 0 {
			return 0, p.Y / ax, p.Z / ax
		}
		return 1, p.Z / ax, p.Y / ax
	case ay >= ax && ay >= az:
		if p.Y >= 0 {
			return 2, p.Z / ay, p.X / ay
		}
		return 3, p.X / ay, p.Z / ay
	default:
		if p.Z >= 0 {
			return 4, p.X / az, p.Y / az
		}
		return 5, p.Y / az, p.X / az
	}
}

// sfcCoord maps t in [-1,1] to a grid coordinate in [0, sfcGrid).
func sfcCoord(t float64) uint32 {
	i := int64((t + 1) * 0.5 * sfcGrid)
	if i < 0 {
		i = 0
	}
	if i >= sfcGrid {
		i = sfcGrid - 1
	}
	return uint32(i)
}

// hilbertD returns the distance along the order-sfcOrder Hilbert curve of
// grid cell (x, y); the classic xy2d bit-interleaving walk from coarse to
// fine quadrants.
func hilbertD(x, y uint32) uint64 {
	var d uint64
	for s := uint32(sfcGrid / 2); s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		if ry == 0 {
			if rx == 1 {
				x = sfcGrid - 1 - x
				y = sfcGrid - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
