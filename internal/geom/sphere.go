package geom

import "math"

// SphericalTriangleArea returns the area of the spherical triangle with unit
// vertices a, b, c on the unit sphere, using L'Huilier's theorem. The result
// is non-negative and independent of vertex orientation.
func SphericalTriangleArea(a, b, c Vec3) float64 {
	ta := ArcLength(b, c)
	tb := ArcLength(c, a)
	tc := ArcLength(a, b)
	s := (ta + tb + tc) / 2
	inner := math.Tan(s/2) * math.Tan((s-ta)/2) * math.Tan((s-tb)/2) * math.Tan((s-tc)/2)
	if inner <= 0 {
		// Degenerate (collinear) triangle; area is zero to roundoff.
		return 0
	}
	return 4 * math.Atan(math.Sqrt(inner))
}

// SphericalPolygonArea returns the area of the spherical polygon with unit
// vertices verts (in order, either orientation) on the unit sphere. The
// polygon is assumed star-shaped about its vertex centroid, which holds for
// Voronoi cells and kites on quasi-uniform meshes; the polygon is fanned into
// triangles about that centroid.
func SphericalPolygonArea(verts []Vec3) float64 {
	n := len(verts)
	if n < 3 {
		return 0
	}
	var c Vec3
	for _, v := range verts {
		c = c.Add(v)
	}
	c = c.Normalize()
	area := 0.0
	for i := 0; i < n; i++ {
		area += SphericalTriangleArea(c, verts[i], verts[(i+1)%n])
	}
	return area
}

// Circumcenter returns the spherical circumcenter of the triangle with unit
// vertices a, b, c: the unit vector equidistant from all three, on the same
// side of the plane abc as the triangle's orientation. For a
// counterclockwise-ordered triangle (seen from outside the sphere) the
// returned center lies inside the triangle for well-shaped meshes.
func Circumcenter(a, b, c Vec3) Vec3 {
	// The circumcenter direction is normal to the plane through the three
	// points: (b-a) x (c-a).
	n := b.Sub(a).Cross(c.Sub(a))
	if n.Norm() < 1e-30 {
		// Degenerate; fall back to the vertex centroid.
		return a.Add(b).Add(c).Normalize()
	}
	n = n.Normalize()
	// Pick the hemisphere containing the triangle.
	if n.Dot(a.Add(b).Add(c)) < 0 {
		n = n.Scale(-1)
	}
	return n
}

// TriangleCentroid returns the normalized vertex centroid of a spherical
// triangle — adequate as an approximation of the spherical centroid for the
// small, well-shaped triangles arising in SCVT construction.
func TriangleCentroid(a, b, c Vec3) Vec3 {
	return a.Add(b).Add(c).Normalize()
}

// PolygonCentroid returns the (approximate) spherical centroid of the polygon
// with unit vertices verts: the area-weighted average of the centroids of the
// triangles of the fan about the vertex centroid, projected back to the
// sphere. This is the update step used by Lloyd iteration when relaxing a
// Voronoi mesh toward a centroidal (SCVT) one.
func PolygonCentroid(verts []Vec3) Vec3 {
	n := len(verts)
	if n == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, v := range verts {
		c = c.Add(v)
	}
	c = c.Normalize()
	if n < 3 {
		return c
	}
	var acc Vec3
	for i := 0; i < n; i++ {
		v1, v2 := verts[i], verts[(i+1)%n]
		w := SphericalTriangleArea(c, v1, v2)
		acc = acc.Add(TriangleCentroid(c, v1, v2).Scale(w))
	}
	if acc.Norm() < 1e-30 {
		return c
	}
	return acc.Normalize()
}

// WeightedPolygonCentroid returns the density-weighted spherical centroid of
// the polygon: the mass centroid under surface density rho, projected back
// to the sphere. With rho == nil it reduces to PolygonCentroid. This is the
// generator update of a *variable-resolution* SCVT: Lloyd iteration under a
// density function concentrates cells where rho is large (cell spacing
// scales as rho^(-1/4) in the continuum limit).
func WeightedPolygonCentroid(verts []Vec3, rho func(Vec3) float64) Vec3 {
	if rho == nil {
		return PolygonCentroid(verts)
	}
	n := len(verts)
	if n == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, v := range verts {
		c = c.Add(v)
	}
	c = c.Normalize()
	if n < 3 {
		return c
	}
	var acc Vec3
	for i := 0; i < n; i++ {
		v1, v2 := verts[i], verts[(i+1)%n]
		g := TriangleCentroid(c, v1, v2)
		w := SphericalTriangleArea(c, v1, v2) * rho(g)
		acc = acc.Add(g.Scale(w))
	}
	if acc.Norm() < 1e-30 {
		return c
	}
	return acc.Normalize()
}

// CCW reports whether the spherical triangle (a, b, c) is counterclockwise
// when viewed from outside the sphere, i.e. its vertices wind positively
// about the outward normal.
func CCW(a, b, c Vec3) bool {
	return a.Dot(b.Cross(c)) > 0
}

// SphereArea is the surface area of the unit sphere.
const SphereArea = 4 * math.Pi

// EarthRadius is the mean Earth radius in meters, matching the value used by
// the MPAS shallow-water test cases.
const EarthRadius = 6371220.0
