// Package geom provides the spherical geometry primitives used to build and
// measure SCVT (spherical centroidal Voronoi tessellation) meshes: unit
// vectors on the sphere, great-circle arcs, spherical triangle and polygon
// areas, circumcenters and centroids.
//
// All positions are represented as unit vectors in R^3 (type Vec3). Distances
// are geodesic (great-circle) distances on a sphere of configurable radius;
// most routines work on the unit sphere and scale by radius at the call site.
package geom

import "math"

// Vec3 is a vector in R^3. Mesh points are unit vectors on the sphere.
type Vec3 struct {
	X, Y, Z float64
}

// V is a convenience constructor for Vec3.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v|. The zero vector is returned unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lat returns the latitude of the unit vector v in radians, in [-pi/2, pi/2].
func (v Vec3) Lat() float64 { return math.Asin(clamp(v.Z, -1, 1)) }

// Lon returns the longitude of the unit vector v in radians, in [0, 2*pi).
func (v Vec3) Lon() float64 {
	l := math.Atan2(v.Y, v.X)
	if l < 0 {
		l += 2 * math.Pi
	}
	return l
}

// FromLatLon returns the unit vector at the given latitude and longitude
// (radians).
func FromLatLon(lat, lon float64) Vec3 {
	cl := math.Cos(lat)
	return Vec3{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}

// ArcLength returns the great-circle distance between unit vectors a and b on
// the unit sphere. It is robust for nearly identical and nearly antipodal
// points (uses atan2 of chord components rather than acos of the dot
// product).
func ArcLength(a, b Vec3) float64 {
	return math.Atan2(a.Cross(b).Norm(), a.Dot(b))
}

// East returns the local unit vector pointing east at unit vector p.
// At the poles the result is arbitrary but still unit length.
func East(p Vec3) Vec3 {
	e := Vec3{-p.Y, p.X, 0}
	if e.Norm() < 1e-14 {
		return Vec3{1, 0, 0}
	}
	return e.Normalize()
}

// North returns the local unit vector pointing north at unit vector p.
func North(p Vec3) Vec3 {
	return p.Cross(East(p)).Normalize()
}

// TangentComponents decomposes a vector w (assumed tangent to the sphere at
// unit point p) into its zonal (east) and meridional (north) components.
func TangentComponents(p, w Vec3) (zonal, meridional float64) {
	return w.Dot(East(p)), w.Dot(North(p))
}

// ProjectToTangent removes from w its component along p, returning the
// projection of w onto the tangent plane at p.
func ProjectToTangent(p, w Vec3) Vec3 {
	return w.Sub(p.Scale(w.Dot(p)))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
