package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func randUnit(rng *rand.Rand) Vec3 {
	for {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if n := v.Norm(); n > 1e-3 {
			return v.Scale(1 / n)
		}
	}
}

func TestVecBasicOps(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := randUnit(rng), randUnit(rng)
		c := a.Cross(b)
		if math.Abs(c.Dot(a)) > 1e-12 || math.Abs(c.Dot(b)) > 1e-12 {
			t.Fatalf("cross not orthogonal: %v", c)
		}
	}
}

func TestCrossAnticommutative(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Keep magnitudes bounded so products cannot overflow to Inf.
		trim := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		a := Vec3{trim(ax), trim(ay), trim(az)}
		b := Vec3{trim(bx), trim(by), trim(bz)}
		c1 := a.Cross(b)
		c2 := b.Cross(a).Scale(-1)
		return almostEqual(c1.X, c2.X, tol) && almostEqual(c1.Y, c2.Y, tol) && almostEqual(c1.Z, c2.Z, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		v := Vec3{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		if v.Norm() == 0 {
			continue
		}
		n := v.Normalize()
		if !almostEqual(n.Norm(), 1, tol) {
			t.Fatalf("|normalize| = %v", n.Norm())
		}
	}
	z := Vec3{}
	if z.Normalize() != (Vec3{}) {
		t.Error("normalize(0) should be 0")
	}
}

func TestLatLonRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		lat := (rng.Float64() - 0.5) * math.Pi * 0.999
		lon := rng.Float64() * 2 * math.Pi
		p := FromLatLon(lat, lon)
		if !almostEqual(p.Norm(), 1, tol) {
			t.Fatalf("FromLatLon not unit: %v", p.Norm())
		}
		if !almostEqual(p.Lat(), lat, 1e-10) {
			t.Fatalf("lat round trip: want %v got %v", lat, p.Lat())
		}
		if math.Abs(math.Mod(p.Lon()-lon+3*math.Pi, 2*math.Pi)-math.Pi) > 1e-10 {
			t.Fatalf("lon round trip: want %v got %v", lon, p.Lon())
		}
	}
}

func TestArcLengthKnownValues(t *testing.T) {
	np := Vec3{0, 0, 1}
	eq := Vec3{1, 0, 0}
	if !almostEqual(ArcLength(np, eq), math.Pi/2, tol) {
		t.Errorf("pole-equator arc = %v", ArcLength(np, eq))
	}
	if !almostEqual(ArcLength(np, Vec3{0, 0, -1}), math.Pi, tol) {
		t.Errorf("antipodal arc = %v", ArcLength(np, Vec3{0, 0, -1}))
	}
	if ArcLength(eq, eq) != 0 {
		t.Errorf("self arc = %v", ArcLength(eq, eq))
	}
}

func TestArcLengthSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		a, b := randUnit(rng), randUnit(rng)
		if !almostEqual(ArcLength(a, b), ArcLength(b, a), tol) {
			t.Fatal("arc length not symmetric")
		}
	}
}

func TestArcLengthTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a, b, c := randUnit(rng), randUnit(rng), randUnit(rng)
		if ArcLength(a, c) > ArcLength(a, b)+ArcLength(b, c)+1e-12 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestOctantTriangleArea(t *testing.T) {
	// One octant of the sphere has area 4*pi/8 = pi/2.
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	c := Vec3{0, 0, 1}
	if got := SphericalTriangleArea(a, b, c); !almostEqual(got, math.Pi/2, 1e-10) {
		t.Errorf("octant area = %v want %v", got, math.Pi/2)
	}
}

func TestSmallTriangleAreaMatchesPlanar(t *testing.T) {
	// For a tiny triangle, the spherical area approaches the planar area.
	eps := 1e-4
	a := FromLatLon(0, 0)
	b := FromLatLon(0, eps)
	c := FromLatLon(eps, 0)
	planar := eps * eps / 2
	got := SphericalTriangleArea(a, b, c)
	if math.Abs(got-planar)/planar > 1e-4 {
		t.Errorf("small triangle area = %v want ~%v", got, planar)
	}
}

func TestDegenerateTriangleArea(t *testing.T) {
	a := Vec3{1, 0, 0}
	if got := SphericalTriangleArea(a, a, a); got != 0 {
		t.Errorf("degenerate area = %v", got)
	}
	b := FromLatLon(0, 0.5)
	c := FromLatLon(0, 1.0) // collinear along equator
	if got := SphericalTriangleArea(a, b, c); got > 1e-12 {
		t.Errorf("collinear area = %v", got)
	}
}

func TestPolygonAreaOctantSquare(t *testing.T) {
	// A "square" covering a quarter of the northern hemisphere:
	// vertices at equator lon 0, pi/2 and the north pole fan.
	verts := []Vec3{
		FromLatLon(0, 0),
		FromLatLon(0, math.Pi/2),
		FromLatLon(math.Pi/2, 0),
	}
	if got := SphericalPolygonArea(verts); !almostEqual(got, math.Pi/2, 1e-10) {
		t.Errorf("octant polygon area = %v", got)
	}
}

func TestPolygonAreaOrientationInvariant(t *testing.T) {
	verts := []Vec3{
		FromLatLon(0.1, 0.1),
		FromLatLon(0.1, 0.4),
		FromLatLon(0.4, 0.45),
		FromLatLon(0.45, 0.1),
	}
	fwd := SphericalPolygonArea(verts)
	rev := SphericalPolygonArea([]Vec3{verts[3], verts[2], verts[1], verts[0]})
	if !almostEqual(fwd, rev, 1e-10) {
		t.Errorf("area depends on orientation: %v vs %v", fwd, rev)
	}
	if fwd <= 0 {
		t.Errorf("area not positive: %v", fwd)
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		// Build a moderately sized triangle around a random point.
		p := randUnit(rng)
		e := East(p)
		n := North(p)
		mk := func(dx, dy float64) Vec3 {
			return p.Add(e.Scale(dx)).Add(n.Scale(dy)).Normalize()
		}
		a := mk(0.1*rng.Float64()+0.02, 0.1*rng.Float64()+0.02)
		b := mk(-0.1*rng.Float64()-0.02, 0.1*rng.Float64()+0.02)
		c := mk(0.05*(rng.Float64()-0.5), -0.1*rng.Float64()-0.02)
		cc := Circumcenter(a, b, c)
		da, db, dc := ArcLength(cc, a), ArcLength(cc, b), ArcLength(cc, c)
		if !almostEqual(da, db, 1e-10) || !almostEqual(db, dc, 1e-10) {
			t.Fatalf("circumcenter not equidistant: %v %v %v", da, db, dc)
		}
		if !almostEqual(cc.Norm(), 1, tol) {
			t.Fatalf("circumcenter not unit: %v", cc.Norm())
		}
	}
}

func TestCircumcenterHemisphere(t *testing.T) {
	// The circumcenter must be on the triangle's side of the sphere.
	a := FromLatLon(0.2, 0.1)
	b := FromLatLon(0.25, 0.3)
	c := FromLatLon(0.4, 0.2)
	cc := Circumcenter(a, b, c)
	if cc.Dot(a) < 0 {
		t.Errorf("circumcenter on wrong hemisphere: %v", cc)
	}
}

func TestEastNorthOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := randUnit(rng)
		if math.Abs(p.Lat()) > 1.5 {
			continue // skip near-pole where east is ill-defined
		}
		e, n := East(p), North(p)
		if !almostEqual(e.Norm(), 1, tol) || !almostEqual(n.Norm(), 1, tol) {
			t.Fatal("east/north not unit")
		}
		if math.Abs(e.Dot(n)) > 1e-12 || math.Abs(e.Dot(p)) > 1e-12 || math.Abs(n.Dot(p)) > 1e-12 {
			t.Fatal("east/north/up not orthogonal")
		}
		// Right-handed: east x north = up.
		up := e.Cross(n)
		if up.Sub(p).Norm() > 1e-10 {
			t.Fatalf("east x north != up: %v vs %v", up, p)
		}
	}
}

func TestNorthPointsNorth(t *testing.T) {
	p := FromLatLon(0.3, 1.2)
	n := North(p)
	// Moving slightly along n must increase latitude.
	q := p.Add(n.Scale(1e-4)).Normalize()
	if q.Lat() <= p.Lat() {
		t.Errorf("north does not increase latitude: %v -> %v", p.Lat(), q.Lat())
	}
	e := East(p)
	q = p.Add(e.Scale(1e-4)).Normalize()
	if q.Lon() <= p.Lon() {
		t.Errorf("east does not increase longitude")
	}
}

func TestTangentComponentsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		p := FromLatLon((rng.Float64()-0.5)*2.8, rng.Float64()*2*math.Pi)
		ze, me := rng.NormFloat64(), rng.NormFloat64()
		w := East(p).Scale(ze).Add(North(p).Scale(me))
		gz, gm := TangentComponents(p, w)
		if !almostEqual(gz, ze, 1e-10) || !almostEqual(gm, me, 1e-10) {
			t.Fatalf("components: want (%v,%v) got (%v,%v)", ze, me, gz, gm)
		}
	}
}

func TestProjectToTangent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		p := randUnit(rng)
		w := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		tw := ProjectToTangent(p, w)
		if math.Abs(tw.Dot(p)) > 1e-12 {
			t.Fatal("projection not tangent")
		}
		// Projecting twice is idempotent.
		tw2 := ProjectToTangent(p, tw)
		if tw2.Sub(tw).Norm() > 1e-12 {
			t.Fatal("projection not idempotent")
		}
	}
}

func TestPolygonCentroidSymmetric(t *testing.T) {
	// A regular polygon centered at a point should have its centroid there.
	p := FromLatLon(0.4, 0.7)
	e, n := East(p), North(p)
	var verts []Vec3
	r := 0.05
	for k := 0; k < 6; k++ {
		th := 2 * math.Pi * float64(k) / 6
		verts = append(verts, p.Add(e.Scale(r*math.Cos(th))).Add(n.Scale(r*math.Sin(th))).Normalize())
	}
	c := PolygonCentroid(verts)
	if ArcLength(c, p) > 1e-6 {
		t.Errorf("centroid off center by %v", ArcLength(c, p))
	}
}

func TestCCW(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	c := Vec3{0, 0, 1}
	if !CCW(a, b, c) {
		t.Error("octant triangle should be CCW")
	}
	if CCW(a, c, b) {
		t.Error("reversed triangle should be CW")
	}
}

func TestTriangleCentroidInside(t *testing.T) {
	a := FromLatLon(0.1, 0.1)
	b := FromLatLon(0.1, 0.2)
	c := FromLatLon(0.2, 0.15)
	g := TriangleCentroid(a, b, c)
	if !almostEqual(g.Norm(), 1, tol) {
		t.Error("centroid not unit")
	}
	// Centroid should be close to all three vertices.
	for _, v := range []Vec3{a, b, c} {
		if ArcLength(g, v) > ArcLength(a, b)+ArcLength(b, c) {
			t.Error("centroid far from triangle")
		}
	}
}

func TestClamp(t *testing.T) {
	if clamp(2, -1, 1) != 1 || clamp(-2, -1, 1) != -1 || clamp(0.5, -1, 1) != 0.5 {
		t.Error("clamp wrong")
	}
}

func TestWeightedPolygonCentroidUniformMatchesPlain(t *testing.T) {
	p := FromLatLon(0.3, 1.0)
	e, n := East(p), North(p)
	var verts []Vec3
	for k := 0; k < 5; k++ {
		th := 2 * math.Pi * float64(k) / 5
		verts = append(verts, p.Add(e.Scale(0.07*math.Cos(th))).Add(n.Scale(0.07*math.Sin(th))).Normalize())
	}
	plain := PolygonCentroid(verts)
	uniform := WeightedPolygonCentroid(verts, func(Vec3) float64 { return 3.7 })
	if ArcLength(plain, uniform) > 1e-12 {
		t.Errorf("uniform density shifts centroid by %v", ArcLength(plain, uniform))
	}
	if WeightedPolygonCentroid(verts, nil) != plain {
		t.Error("nil density must reduce to PolygonCentroid")
	}
}

func TestWeightedPolygonCentroidPullsTowardDensity(t *testing.T) {
	p := FromLatLon(0.0, 0.0)
	e, n := East(p), North(p)
	var verts []Vec3
	for k := 0; k < 6; k++ {
		th := 2 * math.Pi * float64(k) / 6
		verts = append(verts, p.Add(e.Scale(0.1*math.Cos(th))).Add(n.Scale(0.1*math.Sin(th))).Normalize())
	}
	// Density increasing eastward pulls the centroid east.
	dens := func(q Vec3) float64 { return math.Exp(20 * q.Dot(e)) }
	c := WeightedPolygonCentroid(verts, dens)
	if c.Sub(p).Dot(e) <= 0 {
		t.Error("centroid not pulled toward high density")
	}
	if math.Abs(c.Norm()-1) > 1e-12 {
		t.Error("weighted centroid not on sphere")
	}
}

func TestWeightedPolygonCentroidDegenerate(t *testing.T) {
	if (WeightedPolygonCentroid(nil, func(Vec3) float64 { return 1 }) != Vec3{}) {
		t.Error("empty polygon should give zero vector")
	}
	two := []Vec3{FromLatLon(0, 0), FromLatLon(0, 0.1)}
	c := WeightedPolygonCentroid(two, func(Vec3) float64 { return 1 })
	if math.Abs(c.Norm()-1) > 1e-12 {
		t.Error("2-vertex fallback not unit")
	}
}
