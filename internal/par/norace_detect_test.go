//go:build !race

package par

const raceDetectorEnabled = false
