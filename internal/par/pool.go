// Package par is the thread-level parallel runtime used in place of OpenMP
// (paper §4.B): a persistent worker pool with fork-join parallel loops and —
// crucial for the paper's "one parallel region per kernel" optimization —
// long-lived parallel regions inside which several loops run back to back
// with explicit barriers only where the data flow requires one.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Pool is a team of persistent worker goroutines, the analogue of an OpenMP
// thread team. A Pool with Workers()==1 degenerates to serial execution with
// no goroutine dispatch at all.
type Pool struct {
	nw   int
	work []chan func(id int)
	done chan struct{}
	wg   sync.WaitGroup

	// Telemetry counters (nil when uninstrumented — every call below is a
	// nil-safe no-op): dispatches counts parallel-loop launches and regions,
	// elements counts loop iterations handed out, so elements/dispatches is
	// the mean grain size.
	dispatches *telemetry.Counter
	elements   *telemetry.Counter
}

// Instrument attaches dispatch and grain-size counters from reg, named
// par_<name>_dispatches_total and par_<name>_elements_total. A nil registry
// leaves the pool uninstrumented.
func (p *Pool) Instrument(reg *telemetry.Registry, name string) {
	p.dispatches = reg.Counter("par_" + name + "_dispatches_total")
	p.elements = reg.Counter("par_" + name + "_elements_total")
}

// NewPool creates a pool with n workers. n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{nw: n, done: make(chan struct{})}
	if n > 1 {
		p.work = make([]chan func(id int), n-1)
		for i := range p.work {
			p.work[i] = make(chan func(id int))
			go p.worker(i)
		}
	}
	return p
}

func (p *Pool) worker(i int) {
	for {
		select {
		case fn := <-p.work[i]:
			fn(i + 1)
			p.wg.Done()
		case <-p.done:
			return
		}
	}
}

// Workers returns the team size.
func (p *Pool) Workers() int { return p.nw }

// Close shuts the worker goroutines down. The pool must be idle.
func (p *Pool) Close() {
	if p.work != nil {
		close(p.done)
	}
}

// run executes fn(id) on every worker (ids 0..nw-1, id 0 being the caller)
// and waits for all of them.
func (p *Pool) run(fn func(id int)) {
	if p.nw == 1 {
		fn(0)
		return
	}
	p.wg.Add(p.nw - 1)
	for i := range p.work {
		p.work[i] <- fn
	}
	fn(0)
	p.wg.Wait()
}

// chunk returns the static half-open range of worker id over n iterations.
func chunk(n, nw, id int) (lo, hi int) {
	q, r := n/nw, n%nw
	lo = id*q + min(id, r)
	hi = lo + q
	if id < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// For runs body over [0,n) split statically across the team, and waits for
// completion (a self-contained parallel region: fork + implicit barrier).
func (p *Pool) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p.dispatches.Add(1)
	p.elements.Add(int64(n))
	if p.nw == 1 || n < 2*p.nw {
		body(0, n)
		return
	}
	p.run(func(id int) {
		lo, hi := chunk(n, p.nw, id)
		if lo < hi {
			body(lo, hi)
		}
	})
}

// ForDynamic runs body over [0,n) in fixed-size chunks claimed dynamically
// from a shared atomic counter — OpenMP's schedule(dynamic, chunk). Static
// chunking (For) is the paper's choice for uniform patterns; dynamic
// scheduling wins when per-element cost varies (e.g. variable-resolution
// meshes, where pentagon/hexagon and refined/coarse regions differ).
func (p *Pool) ForDynamic(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p.dispatches.Add(1)
	p.elements.Add(int64(n))
	if chunk < 1 {
		chunk = 1
	}
	if p.nw == 1 || n <= chunk {
		body(0, n)
		return
	}
	var next int64
	p.run(func(int) {
		for {
			lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	})
}

// ForRange is For over the half-open interval [lo, hi).
func (p *Pool) ForRange(lo, hi int, body func(lo, hi int)) {
	if hi <= lo {
		return
	}
	p.For(hi-lo, func(l, h int) { body(l+lo, h+lo) })
}

// Team is the per-worker view inside a Region: it exposes barrier-free
// statically-chunked loops plus an explicit Barrier, so a kernel can run many
// loops in one region and synchronize only where the data flow demands it —
// the paper's "remove all unnecessary implicit synchronizations".
type Team struct {
	ID      int // worker id, 0..Size-1
	Size    int
	barrier *Barrier
}

// For runs body on this worker's static chunk of [0,n). No synchronization:
// back-to-back Team.For loops over the same index space that only touch the
// worker's own chunk compose without barriers.
func (t *Team) For(n int, body func(lo, hi int)) {
	lo, hi := chunk(n, t.Size, t.ID)
	if lo < hi {
		body(lo, hi)
	}
}

// Barrier blocks until every worker in the region has reached it.
func (t *Team) Barrier() { t.barrier.Wait() }

// ForBarrier is For followed by Barrier — the shape of an OpenMP loop with
// its implicit barrier kept.
func (t *Team) ForBarrier(n int, body func(lo, hi int)) {
	t.For(n, body)
	t.Barrier()
}

// Region runs fn once per worker as a single long-lived parallel region.
func (p *Pool) Region(fn func(t *Team)) {
	p.dispatches.Add(1)
	b := NewBarrier(p.nw)
	p.run(func(id int) {
		fn(&Team{ID: id, Size: p.nw, barrier: b})
	})
}

// Barrier is a reusable counting barrier for a fixed-size team.
type Barrier struct {
	size int
	mu   sync.Mutex
	cnt  int
	gen  uint64
	cond *sync.Cond
}

// NewBarrier creates a barrier for size participants.
func NewBarrier(size int) *Barrier {
	b := &Barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until size goroutines have called Wait, then releases them all
// and resets for reuse.
func (b *Barrier) Wait() {
	if b.size == 1 {
		return
	}
	b.mu.Lock()
	gen := b.gen
	b.cnt++
	if b.cnt == b.size {
		b.cnt = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// AtomicAddFloat64 adds delta to *addr atomically via a compare-and-swap
// loop. It is the building block of the "scatter with atomics" irregular
// reduction variant that the regularity-aware refactoring replaces.
func AtomicAddFloat64(addr *float64, delta float64) {
	p := (*uint64)(atomicPtr(addr))
	for {
		old := atomic.LoadUint64(p)
		next := float64frombits(old) + delta
		if atomic.CompareAndSwapUint64(p, old, float64bits(next)) {
			return
		}
	}
}
