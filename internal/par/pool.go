// Package par is the thread-level parallel runtime used in place of OpenMP
// (paper §4.B): a persistent worker pool with fork-join parallel loops and —
// crucial for the paper's "one parallel region per kernel" optimization —
// long-lived parallel regions inside which several loops run back to back
// with explicit barriers only where the data flow requires one.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Work-slot opcodes: what a dispatch executes on each worker.
const (
	opFor uint32 = iota
	opDynamic
	opRegion
)

// DefaultDynamicChunk is the default floor ForDynamic clamps non-positive
// chunk sizes to. Claiming a chunk costs one contended atomic add; at 64
// elements per claim the claim traffic stays far below the memory traffic of
// the loop body even for the cheapest per-element work
// (BenchmarkDynamicChunkFloor measures the claim overhead per chunk size;
// see DESIGN.md for the numbers behind 64).
const DefaultDynamicChunk = 64

// DynamicChunkFloor is the floor actually applied; it starts at
// DefaultDynamicChunk and may be tuned (e.g. lowered on machines whose
// per-element work is unusually expensive, raised when claim contention
// shows up in profiles). Set it before launching concurrent dispatches —
// it is read unsynchronized on the dispatch path.
var DynamicChunkFloor = DefaultDynamicChunk

// paddedCounter is an atomic counter alone on its own cache line, so the
// workers hammering it in ForDynamic do not false-share with the pool's
// read-mostly dispatch fields (or with anything the loop bodies touch).
type paddedCounter struct {
	_ linePad
	v atomic.Int64
	_ linePad
}

// Pool is a team of persistent worker goroutines, the analogue of an OpenMP
// thread team. A Pool with Workers()==1 degenerates to serial execution with
// no goroutine dispatch at all.
//
// Dispatch is allocation-free: the pending operation lives in a work slot
// inside the Pool (opcode + body + range), workers are woken through
// per-worker empty-struct channels, and Region reuses one pooled Barrier and
// a preallocated Team per worker. The channel send/receive pair publishes
// the work slot to the workers; the WaitGroup join publishes their writes
// back to the caller. A Pool is single-owner: launches must not overlap
// (distinct pools may run concurrently, as the hybrid executor does).
type Pool struct {
	nw int

	// The work slot. Written by the launching goroutine before the start
	// signals, cleared after the join so the pool never retains a caller's
	// closure across calls.
	op      uint32
	n       int
	off     int
	chunkSz int
	body    func(lo, hi int)
	region  func(t *Team)

	// next is ForDynamic's shared claim counter (see paddedCounter).
	next paddedCounter

	barrier *Barrier
	teams   []Team
	start   []chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	// Telemetry counters (nil when uninstrumented — every call below is a
	// nil-safe no-op): dispatches counts parallel-loop launches and regions,
	// elements counts loop iterations handed out, so elements/dispatches is
	// the mean grain size.
	dispatches *telemetry.Counter
	elements   *telemetry.Counter
}

// Instrument attaches dispatch and grain-size counters from reg, named
// par_<name>_dispatches_total and par_<name>_elements_total. A nil registry
// leaves the pool uninstrumented.
func (p *Pool) Instrument(reg *telemetry.Registry, name string) {
	p.dispatches = reg.Counter("par_" + name + "_dispatches_total")
	p.elements = reg.Counter("par_" + name + "_elements_total")
}

// NewPool creates a pool with n workers. n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{nw: n, done: make(chan struct{}), barrier: NewBarrier(n)}
	p.teams = make([]Team, n)
	for i := range p.teams {
		p.teams[i] = Team{ID: i, Size: n, barrier: p.barrier}
	}
	if n > 1 {
		p.start = make([]chan struct{}, n-1)
		for i := range p.start {
			p.start[i] = make(chan struct{})
			go p.worker(i)
		}
	}
	return p
}

func (p *Pool) worker(i int) {
	for {
		select {
		case <-p.start[i]:
			p.dispatch(i + 1)
			p.wg.Done()
		case <-p.done:
			return
		}
	}
}

// dispatch runs the work slot's operation as worker id.
func (p *Pool) dispatch(id int) {
	switch p.op {
	case opFor:
		lo, hi := chunk(p.n, p.nw, id)
		if lo < hi {
			p.body(lo+p.off, hi+p.off)
		}
	case opDynamic:
		n, c := p.n, p.chunkSz
		for {
			lo := int(p.next.v.Add(int64(c))) - c
			if lo >= n {
				return
			}
			hi := lo + c
			if hi > n {
				hi = n
			}
			p.body(lo, hi)
		}
	case opRegion:
		p.region(&p.teams[id])
	}
}

// launch signals every worker, participates as worker 0, joins, and clears
// the work slot. No allocation on this path.
func (p *Pool) launch() {
	p.wg.Add(p.nw - 1)
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	p.dispatch(0)
	p.wg.Wait()
	p.body = nil
	p.region = nil
}

// Workers returns the team size.
func (p *Pool) Workers() int { return p.nw }

// Close shuts the worker goroutines down. The pool must be idle.
func (p *Pool) Close() {
	if p.start != nil {
		close(p.done)
	}
}

// chunk returns the static half-open range of worker id over n iterations.
func chunk(n, nw, id int) (lo, hi int) {
	q, r := n/nw, n%nw
	lo = id*q + min(id, r)
	hi = lo + q
	if id < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// For runs body over [0,n) split statically across the team, and waits for
// completion (a self-contained parallel region: fork + implicit barrier).
func (p *Pool) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p.dispatches.Add(1)
	p.elements.Add(int64(n))
	if p.nw == 1 || n < 2*p.nw {
		body(0, n)
		return
	}
	p.op, p.n, p.off, p.body = opFor, n, 0, body
	p.launch()
}

// ForDynamic runs body over [0,n) in fixed-size chunks claimed dynamically
// from a shared atomic counter — OpenMP's schedule(dynamic, chunk). Static
// chunking (For) is the paper's choice for uniform patterns; dynamic
// scheduling wins when per-element cost varies (e.g. variable-resolution
// meshes, where pentagon/hexagon and refined/coarse regions differ).
// A chunk below 1 is clamped to DynamicChunkFloor.
func (p *Pool) ForDynamic(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p.dispatches.Add(1)
	p.elements.Add(int64(n))
	if chunk < 1 {
		chunk = DynamicChunkFloor
	}
	if p.nw == 1 || n <= chunk {
		body(0, n)
		return
	}
	p.op, p.n, p.chunkSz, p.body = opDynamic, n, chunk, body
	p.next.v.Store(0)
	p.launch()
}

// ForRange is For over the half-open interval [lo, hi).
func (p *Pool) ForRange(lo, hi int, body func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	p.dispatches.Add(1)
	p.elements.Add(int64(n))
	if p.nw == 1 || n < 2*p.nw {
		body(lo, hi)
		return
	}
	p.op, p.n, p.off, p.body = opFor, n, lo, body
	p.launch()
}

// Team is the per-worker view inside a Region: it exposes barrier-free
// statically-chunked loops plus an explicit Barrier, so a kernel can run many
// loops in one region and synchronize only where the data flow demands it —
// the paper's "remove all unnecessary implicit synchronizations".
type Team struct {
	ID      int // worker id, 0..Size-1
	Size    int
	barrier *Barrier
}

// For runs body on this worker's static chunk of [0,n). No synchronization:
// back-to-back Team.For loops over the same index space that only touch the
// worker's own chunk compose without barriers.
func (t *Team) For(n int, body func(lo, hi int)) {
	lo, hi := chunk(n, t.Size, t.ID)
	if lo < hi {
		body(lo, hi)
	}
}

// Barrier blocks until every worker in the region has reached it.
func (t *Team) Barrier() { t.barrier.Wait() }

// ForBarrier is For followed by Barrier — the shape of an OpenMP loop with
// its implicit barrier kept.
func (t *Team) ForBarrier(n int, body func(lo, hi int)) {
	t.For(n, body)
	t.Barrier()
}

// Region runs fn once per worker as a single long-lived parallel region.
// The team's barrier is the pool's pooled barrier and the Team values are
// preallocated, so entering a region allocates nothing.
func (p *Pool) Region(fn func(t *Team)) {
	p.dispatches.Add(1)
	if p.nw == 1 {
		fn(&p.teams[0])
		return
	}
	p.op, p.region = opRegion, fn
	p.launch()
}

// AtomicAddFloat64 adds delta to *addr atomically via a compare-and-swap
// loop. It is the building block of the "scatter with atomics" irregular
// reduction variant that the regularity-aware refactoring replaces.
func AtomicAddFloat64(addr *float64, delta float64) {
	p := (*uint64)(atomicPtr(addr))
	for {
		old := atomic.LoadUint64(p)
		next := float64frombits(old) + delta
		if atomic.CompareAndSwapUint64(p, old, float64bits(next)) {
			return
		}
	}
}
