package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunkCoversExactly(t *testing.T) {
	f := func(n uint16, nw uint8) bool {
		N := int(n)
		W := int(nw)%16 + 1
		covered := 0
		prevHi := 0
		for id := 0; id < W; id++ {
			lo, hi := chunk(N, W, id)
			if lo != prevHi {
				return false
			}
			if hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == N && prevHi == N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkBalanced(t *testing.T) {
	// Chunks differ in size by at most one.
	for _, n := range []int{0, 1, 7, 100, 101, 1023} {
		for _, w := range []int{1, 2, 3, 7, 16} {
			minSz, maxSz := n+1, -1
			for id := 0; id < w; id++ {
				lo, hi := chunk(n, w, id)
				sz := hi - lo
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
			}
			if maxSz-minSz > 1 {
				t.Errorf("n=%d w=%d: chunk sizes %d..%d", n, w, minSz, maxSz)
			}
		}
	}
}

func TestPoolForCoversAllIndices(t *testing.T) {
	for _, nw := range []int{1, 2, 4, 8} {
		p := NewPool(nw)
		n := 10007
		marks := make([]int32, n)
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("nw=%d: index %d visited %d times", nw, i, m)
			}
		}
		p.Close()
	}
}

func TestPoolForEmpty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	called := false
	p.For(0, func(lo, hi int) { called = true })
	if called {
		t.Error("body called for n=0")
	}
	p.For(-5, func(lo, hi int) { called = true })
	if called {
		t.Error("body called for n<0")
	}
}

func TestPoolForSmallN(t *testing.T) {
	// n smaller than team size must still cover all indices.
	p := NewPool(8)
	defer p.Close()
	var sum int64
	p.For(3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&sum, int64(i))
		}
	})
	if sum != 0+1+2 {
		t.Errorf("sum = %d", sum)
	}
}

func TestPoolMatchesSerialSum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := 0.0
	for _, v := range x {
		serial += v
	}
	p := NewPool(4)
	defer p.Close()
	partial := make([]float64, p.Workers())
	var mu sync.Mutex
	next := 0
	p.For(len(x), func(lo, hi int) {
		mu.Lock()
		slot := next
		next++
		mu.Unlock()
		s := 0.0
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		partial[slot] = s
	})
	got := 0.0
	for _, v := range partial {
		got += v
	}
	if d := got - serial; d > 1e-9 || d < -1e-9 {
		t.Errorf("parallel sum %v != serial %v", got, serial)
	}
}

func TestRegionTeamForNoBarrierSameChunks(t *testing.T) {
	// Two back-to-back Team.For loops see the same static chunks, so a
	// worker may read in loop 2 what it wrote in loop 1 without a barrier.
	p := NewPool(4)
	defer p.Close()
	n := 1000
	a := make([]float64, n)
	b := make([]float64, n)
	p.Region(func(tm *Team) {
		tm.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a[i] = float64(i)
			}
		})
		tm.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				b[i] = 2 * a[i]
			}
		})
	})
	for i := 0; i < n; i++ {
		if b[i] != 2*float64(i) {
			t.Fatalf("b[%d] = %v", i, b[i])
		}
	}
}

func TestRegionBarrierOrdering(t *testing.T) {
	// With a barrier, a worker can safely read another worker's writes.
	p := NewPool(4)
	defer p.Close()
	n := 64
	a := make([]int64, n)
	ok := int32(1)
	p.Region(func(tm *Team) {
		tm.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a[i] = 1
			}
		})
		tm.Barrier()
		// Every worker now checks the whole array.
		var sum int64
		for i := 0; i < n; i++ {
			sum += a[i]
		}
		if sum != int64(n) {
			atomic.StoreInt32(&ok, 0)
		}
	})
	if ok != 1 {
		t.Fatal("barrier did not order writes")
	}
}

func TestForBarrier(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	n := 100
	a := make([]int64, n)
	var total int64
	p.Region(func(tm *Team) {
		tm.ForBarrier(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a[i] = int64(i)
			}
		})
		tm.For(n, func(lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += a[i]
			}
			atomic.AddInt64(&total, s)
		})
	})
	want := int64(n*(n-1)) / 2
	if total != want {
		t.Errorf("total = %d want %d", total, want)
	}
}

func TestBarrierReusable(t *testing.T) {
	const workers, rounds = 4, 50
	b := NewBarrier(workers)
	var counter int32
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				atomic.AddInt32(&counter, 1)
				b.Wait()
				// After the barrier, all workers of this round have
				// incremented.
				if got := atomic.LoadInt32(&counter); got < int32(workers*round) {
					errs <- "barrier released early"
					return
				}
				b.Wait() // second barrier keeps rounds from overlapping
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if counter != workers*rounds {
		t.Errorf("counter = %d", counter)
	}
}

func TestBarrierSizeOne(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must not block
	}
}

func TestAtomicAddFloat64(t *testing.T) {
	var x float64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				AtomicAddFloat64(&x, 0.5)
			}
		}()
	}
	wg.Wait()
	if x != 4000 {
		t.Errorf("x = %v want 4000", x)
	}
}

func TestNewPoolDefaults(t *testing.T) {
	p := NewPool(0)
	if p.Workers() < 1 {
		t.Error("no workers")
	}
	p.Close()
	p1 := NewPool(1)
	if p1.Workers() != 1 {
		t.Error("want 1 worker")
	}
	p1.Close() // Close on serial pool must be safe
}

func BenchmarkPoolForOverhead(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	x := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(len(x), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				x[j]++
			}
		})
	}
}

// BenchmarkRegionFusion measures the paper's §4.B claim: one parallel region
// per kernel (many loops inside one Region) vs one region per loop.
func BenchmarkRegionFusion(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	n := 4096
	a := make([]float64, n)
	const loops = 8
	b.Run("RegionPerLoop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for l := 0; l < loops; l++ {
				p.For(n, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						a[j] += 1
					}
				})
			}
		}
	})
	b.Run("FusedRegion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Region(func(tm *Team) {
				for l := 0; l < loops; l++ {
					tm.For(n, func(lo, hi int) {
						for j := lo; j < hi; j++ {
							a[j] += 1
						}
					})
				}
			})
		}
	})
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	for _, nw := range []int{1, 2, 4} {
		for _, chunk := range []int{1, 7, 64} {
			p := NewPool(nw)
			n := 1009
			marks := make([]int32, n)
			p.ForDynamic(n, chunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("nw=%d chunk=%d: index %d visited %d times", nw, chunk, i, m)
				}
			}
			p.Close()
		}
	}
}

func TestForDynamicEdgeCases(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	called := false
	p.ForDynamic(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("body called for n=0")
	}
	// chunk < 1 is clamped.
	sum := int64(0)
	p.ForDynamic(5, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt64(&sum, int64(i))
		}
	})
	if sum != 10 {
		t.Errorf("sum = %d", sum)
	}
}

// BenchmarkDynamicVsStaticImbalanced shows dynamic scheduling absorbing an
// artificial load imbalance that static chunking cannot.
func BenchmarkDynamicVsStaticImbalanced(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	n := 4096
	work := func(i int) float64 {
		// The last quarter of the range is 8x more expensive.
		iters := 10
		if i > 3*n/4 {
			iters = 80
		}
		s := 0.0
		for k := 0; k < iters; k++ {
			s += float64(k * i)
		}
		return s
	}
	sink := make([]float64, n)
	b.Run("Static", func(b *testing.B) {
		for r := 0; r < b.N; r++ {
			p.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sink[i] = work(i)
				}
			})
		}
	})
	b.Run("Dynamic", func(b *testing.B) {
		for r := 0; r < b.N; r++ {
			p.ForDynamic(n, 64, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sink[i] = work(i)
				}
			})
		}
	})
}
