package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// This file implements task-dataflow execution: a static task graph with
// precomputed dependency counters, executed by the pool's workers through
// per-worker work-stealing deques. It is the point-to-point alternative to
// the level-barrier schedule a Pool.Region otherwise runs — instead of every
// worker stalling at each dependency frontier behind the slowest tile, a
// finished task releases exactly its successor tasks (one atomic decrement
// per edge), so independent work flows through what a barrier would make a
// hard frontier.
//
// The graph is compiled once (AddTask/AddDep/Freeze) and replayed many
// times (Run): tasks, edges, counters and deques are all preallocated at
// freeze time, and a Run only resets counters and re-seeds the root tasks,
// so steady-state execution allocates nothing.
//
// Scheduling is a bounded Chase-Lev deque per worker: the owner pushes and
// pops at the bottom (LIFO — a task's just-released successors run next,
// while their inputs are still in cache), thieves steal from the top (FIFO —
// the oldest task is the root of the largest untouched subgraph). Each deque
// is sized to hold the whole graph and its indices are monotone within a
// run, so pushes can never overflow or lap a concurrent steal.
//
// Idle workers spin briefly on a generation word, yield, then park on a
// condition variable, reusing the exact lost-wakeup-free protocol of the
// sense-reversing Barrier: a releasing worker bumps the generation FIRST and
// only then checks for sleepers, while a parking worker registers as a
// sleeper and then re-checks the generation — sequential consistency of the
// four atomic operations guarantees one side always sees the other.

// taskDeque is a bounded Chase-Lev work-stealing deque of task ids. bottom
// is owned by one worker (push/pop); top is claimed by thieves (and by the
// owner for the last element) through compare-and-swap. The buffer is a
// power-of-two ring at least as large as the task graph, so within one run
// (monotone indices, at most one push per task) a slot is never rewritten
// while a thief may still read it.
type taskDeque struct {
	_      linePad
	bottom atomic.Int64
	_      linePad
	top    atomic.Int64
	_      linePad
	buf    []atomic.Int32
	mask   int64
}

// push appends t at the bottom. Owner only (or single-threaded setup before
// the region starts).
func (d *taskDeque) push(t int32) {
	b := d.bottom.Load()
	d.buf[b&d.mask].Store(t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task (LIFO). Owner only.
func (d *taskDeque) pop() (int32, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bottom.Store(b + 1)
		return -1, false
	}
	v := d.buf[b&d.mask].Load()
	if t == b {
		// Last element: race thieves for it on top.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !won {
			return -1, false
		}
	}
	return v, true
}

// steal removes the oldest task (FIFO). Any worker but the owner.
func (d *taskDeque) steal() (int32, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return -1, false
		}
		v := d.buf[t&d.mask].Load()
		if d.top.CompareAndSwap(t, t+1) {
			return v, true
		}
		// Lost the race for this element; the deque may hold more.
	}
}

// depth returns a point-in-time element count (for the queue-depth gauge).
func (d *taskDeque) depth() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}

// taskIdler parks workers that found every deque empty while tasks are still
// in flight. The protocol is the Barrier's parking protocol verbatim; see
// the package comment above and barrier.go.
type taskIdler struct {
	_        linePad
	gen      atomic.Uint32
	_        linePad
	sleepers atomic.Int32
	mu       sync.Mutex
	cond     *sync.Cond
}

// wake publishes "new work (or completion) exists": bump the generation
// first, then broadcast if anyone is parked or committed to parking. The
// empty critical section orders the broadcast after a parker that has
// incremented sleepers but not yet reached cond.Wait (see Barrier.Wait).
func (id *taskIdler) wake() {
	id.gen.Add(1)
	if id.sleepers.Load() > 0 {
		id.mu.Lock()
		//lint:ignore SA2001 handshake with the parking protocol in park
		id.mu.Unlock()
		id.cond.Broadcast()
	}
}

// park sleeps until the generation moves past g. The caller must have
// captured g BEFORE scanning for work, so any work published after the scan
// bumps gen past g and the re-check under the mutex aborts the sleep.
func (id *taskIdler) park(g uint32) {
	id.mu.Lock()
	id.sleepers.Add(1)
	for id.gen.Load() == g {
		id.cond.Wait()
	}
	id.sleepers.Add(-1)
	id.mu.Unlock()
}

// taskStats is one worker's per-run scheduling counters, padded so workers
// never false-share. Written only by the owning worker during a run, read by
// the coordinator after the region join.
type taskStats struct {
	_         linePad
	executed  int64
	steals    int64
	maxDepth  int64
	idleNanos int64
	_         linePad
}

// TaskGraph is a frozen dependency-counted task DAG replayed by Run. Build
// one with NewTaskGraph + AddTask/AddDep + Freeze.
type TaskGraph struct {
	pool *Pool
	nw   int
	// spin is the empty-handed steal-loop budget before yielding and
	// parking; zero on a single-P runtime (same policy as Barrier).
	spin int32

	// Frozen graph: run closures, initial dependency counts, successor
	// adjacency in CSR form, seed tasks (initDeps==0) in insertion order,
	// and each task's home worker (initial deque placement — execution may
	// move through stealing).
	runs     []func()
	home     []int32
	initDeps []int32
	succPtr  []int32
	succs    []int32
	seeds    []int32

	// Replayed state: live counters (reset, never reallocated), one deque
	// per worker, the parking machinery, and per-worker counters.
	deps      []atomic.Int32
	_         linePad
	remaining atomic.Int64
	_         linePad
	deques    []taskDeque
	idler     taskIdler
	stats     []taskStats
	// execFn is the bound worker-loop method handed to Pool.Region, created
	// once at freeze time so launching a run allocates nothing.
	execFn func(t *Team)

	// Builder state, dropped at freeze.
	edges  [][2]int32
	frozen bool

	// Cumulative scheduling totals across runs (single-owner, updated after
	// each region join) and the telemetry instruments they flush into.
	totalTasks  int64
	totalSteals int64
	instr       bool
	tasksC      *telemetry.Counter
	stealsC     *telemetry.Counter
	depthG      *telemetry.Gauge
	idleT       []*telemetry.Timer
}

// NewTaskGraph starts building a task graph executed by pool's workers.
func NewTaskGraph(pool *Pool) *TaskGraph {
	g := &TaskGraph{pool: pool, nw: pool.Workers()}
	if runtime.GOMAXPROCS(0) > 1 {
		g.spin = 1 << 12
	}
	g.idler.cond = sync.NewCond(&g.idler.mu)
	return g
}

// AddTask registers a task and returns its id. home is the worker whose
// deque seeds or receives the task's releases (clamped into the team); run
// must be self-contained — it receives no worker identity, because stealing
// may execute it anywhere.
func (g *TaskGraph) AddTask(home int, run func()) int32 {
	if g.frozen {
		panic("par: AddTask after Freeze")
	}
	if home < 0 || home >= g.nw {
		home = 0
	}
	id := int32(len(g.runs))
	g.runs = append(g.runs, run)
	g.home = append(g.home, int32(home))
	return id
}

// AddDep records that succ cannot start before pred finished. Duplicate
// edges are deduplicated at freeze time.
func (g *TaskGraph) AddDep(pred, succ int32) {
	if g.frozen {
		panic("par: AddDep after Freeze")
	}
	if pred == succ || pred < 0 || succ < 0 ||
		int(pred) >= len(g.runs) || int(succ) >= len(g.runs) {
		panic(fmt.Sprintf("par: bad dependency %d -> %d (have %d tasks)", pred, succ, len(g.runs)))
	}
	g.edges = append(g.edges, [2]int32{pred, succ})
}

// Freeze dedupes the edges, builds the successor CSR, computes the initial
// dependency counters and the seed set, validates acyclicity (a cycle would
// deadlock Run), and preallocates the deques. After Freeze the graph is
// immutable and Run may be called any number of times.
func (g *TaskGraph) Freeze() error {
	if g.frozen {
		return fmt.Errorf("par: task graph already frozen")
	}
	n := len(g.runs)
	if n == 0 {
		return fmt.Errorf("par: task graph has no tasks")
	}
	// Sort + unique the edge list, then lower to CSR.
	edges := g.edges
	g.edges = nil
	sortEdges(edges)
	uniq := edges[:0]
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	g.succPtr = make([]int32, n+1)
	g.succs = make([]int32, len(uniq))
	g.initDeps = make([]int32, n)
	for _, e := range uniq {
		g.succPtr[e[0]+1]++
		g.initDeps[e[1]]++
	}
	for i := 0; i < n; i++ {
		g.succPtr[i+1] += g.succPtr[i]
	}
	fill := make([]int32, n)
	for _, e := range uniq {
		g.succs[g.succPtr[e[0]]+fill[e[0]]] = e[1]
		fill[e[0]]++
	}
	for i := 0; i < n; i++ {
		if g.initDeps[i] == 0 {
			g.seeds = append(g.seeds, int32(i))
		}
	}
	// Kahn's algorithm over a scratch copy of the counters: every task must
	// become ready, or the graph has a cycle.
	deg := append([]int32(nil), g.initDeps...)
	queue := append([]int32(nil), g.seeds...)
	done := 0
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for i := g.succPtr[t]; i < g.succPtr[t+1]; i++ {
			s := g.succs[i]
			deg[s]--
			if deg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if done != n {
		return fmt.Errorf("par: task graph has a cycle (%d of %d tasks reachable)", done, n)
	}

	g.deps = make([]atomic.Int32, n)
	cap := int64(1)
	for cap < int64(n) {
		cap <<= 1
	}
	g.deques = make([]taskDeque, g.nw)
	for w := range g.deques {
		g.deques[w].buf = make([]atomic.Int32, cap)
		g.deques[w].mask = cap - 1
	}
	g.stats = make([]taskStats, g.nw)
	g.execFn = g.exec
	g.frozen = true
	return nil
}

// sortEdges sorts by (pred, succ) without the sort package's interface
// allocations mattering — freeze-time only, but keep it simple.
func sortEdges(edges [][2]int32) {
	if len(edges) < 2 {
		return
	}
	// Insertion sort degrades on large graphs; use a simple merge via the
	// standard library pattern: pack to int64 keys and sort those.
	keys := make([]int64, len(edges))
	for i, e := range edges {
		keys[i] = int64(e[0])<<32 | int64(uint32(e[1]))
	}
	sortInt64(keys)
	for i, k := range keys {
		edges[i] = [2]int32{int32(k >> 32), int32(uint32(k))}
	}
}

func sortInt64(a []int64) {
	// Heapsort: in-place, no recursion, O(n log n) worst case.
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDown(a, 0, i)
	}
}

func siftDown(a []int64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// Instrument attaches scheduling telemetry from reg: par_<name>_tasks_total,
// par_<name>_steals_total, a par_<name>_queue_depth_peak gauge (the deepest
// deque observed during the latest run), and per-worker
// par_<name>_w<i>_idle_seconds timers accumulating time spent stealing,
// spinning and parked. A nil registry leaves the graph uninstrumented (and
// Run skips the clock reads entirely).
func (g *TaskGraph) Instrument(reg *telemetry.Registry, name string) {
	if reg == nil {
		return
	}
	g.instr = true
	g.tasksC = reg.Counter("par_" + name + "_tasks_total")
	g.stealsC = reg.Counter("par_" + name + "_steals_total")
	g.depthG = reg.Gauge("par_" + name + "_queue_depth_peak")
	g.idleT = make([]*telemetry.Timer, g.nw)
	for i := range g.idleT {
		g.idleT[i] = reg.Timer(fmt.Sprintf("par_%s_w%d_idle_seconds", name, i))
	}
}

// Tasks returns the number of tasks in the frozen graph.
func (g *TaskGraph) Tasks() int { return len(g.runs) }

// EachEdge calls f for every dependency edge of the frozen graph, in
// ascending (pred, succ) order — the shape independent verifiers want for a
// single-pass transitive-closure sweep.
func (g *TaskGraph) EachEdge(f func(pred, succ int32)) {
	for t := int32(0); t < int32(len(g.runs)); t++ {
		for i := g.succPtr[t]; i < g.succPtr[t+1]; i++ {
			f(t, g.succs[i])
		}
	}
}

// Edges returns the number of (deduplicated) dependency edges.
func (g *TaskGraph) Edges() int { return len(g.succs) }

// Seeds returns the number of root tasks (no predecessors).
func (g *TaskGraph) Seeds() int { return len(g.seeds) }

// TasksExecuted returns the cumulative task count across all runs.
func (g *TaskGraph) TasksExecuted() int64 { return g.totalTasks }

// Steals returns the cumulative number of stolen tasks across all runs.
func (g *TaskGraph) Steals() int64 { return g.totalSteals }

// Run replays the graph once: reset the dependency counters from the frozen
// image, seed the root tasks (in reverse insertion order, so the owner's
// LIFO pop starts with the earliest-inserted root), and run the worker loop
// as one parallel region. Allocation-free after Freeze.
func (g *TaskGraph) Run() {
	if !g.frozen {
		panic("par: Run before Freeze")
	}
	for i := range g.deps {
		g.deps[i].Store(g.initDeps[i])
	}
	g.remaining.Store(int64(len(g.runs)))
	for i := len(g.seeds) - 1; i >= 0; i-- {
		s := g.seeds[i]
		g.deques[g.home[s]].push(s)
	}
	g.pool.Region(g.execFn)
	g.flushStats()
}

// flushStats folds the per-worker counters of the finished run into the
// cumulative totals and the telemetry instruments, then clears them.
func (g *TaskGraph) flushStats() {
	var tasks, steals, peak int64
	for w := range g.stats {
		st := &g.stats[w]
		tasks += st.executed
		steals += st.steals
		if st.maxDepth > peak {
			peak = st.maxDepth
		}
		if g.instr {
			g.idleT[w].Observe(time.Duration(st.idleNanos))
		}
		*st = taskStats{}
	}
	g.totalTasks += tasks
	g.totalSteals += steals
	if g.instr {
		g.tasksC.Add(tasks)
		g.stealsC.Add(steals)
		g.depthG.Set(float64(peak))
	}
}

// exec is the per-worker loop of one run: drain the own deque, otherwise
// steal; park when everything is empty but tasks are still in flight; exit
// when the remaining count hits zero.
func (g *TaskGraph) exec(t *Team) {
	w := t.ID
	st := &g.stats[w]
	d := &g.deques[w]
	for {
		id, ok := d.pop()
		if !ok {
			id, ok = g.acquire(w, st)
			if !ok {
				return
			}
		}
		g.exec1(w, id, st, d)
	}
}

// exec1 runs one task and releases its successors: each successor's counter
// drops by one, and the releaser pushes those that hit zero onto its own
// deque (LIFO locality), then wakes idle workers once. The atomic decrement
// chain is also the memory fence: the worker that takes a counter to zero
// happens-after every predecessor's writes.
func (g *TaskGraph) exec1(w int, id int32, st *taskStats, d *taskDeque) {
	g.runs[id]()
	st.executed++
	released := false
	for i := g.succPtr[id]; i < g.succPtr[id+1]; i++ {
		s := g.succs[i]
		if g.deps[s].Add(-1) == 0 {
			d.push(s)
			released = true
		}
	}
	if released {
		if dep := d.depth(); dep > st.maxDepth {
			st.maxDepth = dep
		}
		if g.nw > 1 {
			g.idler.wake()
		}
	}
	if g.remaining.Add(-1) == 0 && g.nw > 1 {
		g.idler.wake()
	}
}

// acquire finds work for an empty-handed worker: capture the idle
// generation, check for completion, sweep the other deques, then spin /
// yield / park until the generation moves. The capture-then-scan order makes
// the park race-free: any push (and the final completion) bumps the
// generation after publishing, so either the scan sees the work or the
// parking re-check sees the bump.
func (g *TaskGraph) acquire(w int, st *taskStats) (int32, bool) {
	if g.nw == 1 {
		// Single worker: an empty deque means an empty graph (Freeze
		// validated acyclicity, so serial execution cannot stall).
		if g.remaining.Load() != 0 {
			panic("par: task graph stalled with tasks remaining")
		}
		return -1, false
	}
	var t0 time.Time
	if g.instr {
		t0 = time.Now()
	}
	defer func() {
		if g.instr {
			st.idleNanos += time.Since(t0).Nanoseconds()
		}
	}()
	for {
		gen := g.idler.gen.Load()
		if g.remaining.Load() == 0 {
			return -1, false
		}
		for i := 1; i < g.nw; i++ {
			v := w + i
			if v >= g.nw {
				v -= g.nw
			}
			if id, ok := g.deques[v].steal(); ok {
				st.steals++
				return id, true
			}
		}
		if g.stillIdle(gen) {
			g.idler.park(gen)
		}
	}
}

// stillIdle burns the spin budget and a few cooperative yields on the idle
// generation; it reports whether the caller should park (generation still
// unchanged) or rescan immediately.
func (g *TaskGraph) stillIdle(gen uint32) bool {
	for i := g.spin; i > 0; i-- {
		if g.idler.gen.Load() != gen {
			return false
		}
	}
	for i := 0; i < 64; i++ {
		if g.idler.gen.Load() != gen {
			return false
		}
		runtime.Gosched()
	}
	return g.idler.gen.Load() == gen
}
