package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// cacheLine separates the barrier's hot fields so arrivals (cnt), releases
// (gen) and the parking bookkeeping never share a line.
const cacheLine = 64

type linePad [cacheLine]byte

// Barrier is a reusable sense-reversing barrier for a fixed-size team,
// designed for the hot path of a compiled execution plan: arrival is one
// atomic add, release is one atomic generation bump, and waiters spin
// briefly on the generation word before parking on a condition variable.
// The mutex+condvar slow path only engages when a waiter has been left
// behind long enough to park, so back-to-back barriers inside a parallel
// region cost no lock operations at all when the team stays busy.
type Barrier struct {
	size int32
	// spin is the busy-wait budget before yielding and parking; zero on a
	// single-P runtime, where spinning can only steal time from the worker
	// we are waiting for.
	spin int32
	_    linePad
	// cnt counts arrivals in the current round; the last arriver resets it
	// before publishing the new generation.
	cnt atomic.Int32
	_   linePad
	// gen is the round number ("sense"): waiters of round g are released
	// the moment gen != g.
	gen atomic.Uint32
	_   linePad
	// sleepers counts waiters parked (or committed to parking) on cond.
	// The releasing worker broadcasts only when it observes sleepers > 0;
	// the SC-atomic ordering of (sleepers.Add ; gen.Load) in the parker
	// against (gen.Add ; sleepers.Load) in the releaser guarantees one of
	// the two sides always sees the other, so no wakeup is lost.
	sleepers atomic.Int32
	mu       sync.Mutex
	cond     *sync.Cond
}

// NewBarrier creates a barrier for size participants.
func NewBarrier(size int) *Barrier {
	b := &Barrier{size: int32(size)}
	if runtime.GOMAXPROCS(0) > 1 {
		b.spin = 1 << 12
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until size goroutines have called Wait, then releases them all
// and resets for reuse.
func (b *Barrier) Wait() {
	if b.size == 1 {
		return
	}
	g := b.gen.Load()
	if b.cnt.Add(1) == b.size {
		// Last arriver: reset the arrival count for the next round first —
		// released waiters may re-enter Wait immediately — then publish the
		// new generation. A waiter of round g cannot have arrived at round
		// g+1 yet, so the reset cannot be observed by a stale round.
		b.cnt.Store(0)
		b.gen.Add(1)
		if b.sleepers.Load() > 0 {
			// The empty critical section orders this broadcast after any
			// parker that incremented sleepers but has not reached
			// cond.Wait yet: once we hold mu, that parker either released
			// it inside cond.Wait (broadcast reaches it) or has not taken
			// it (it will re-check gen under mu and never wait).
			b.mu.Lock()
			//lint:ignore SA2001 handshake with the parking protocol above
			b.mu.Unlock()
			b.cond.Broadcast()
		}
		return
	}
	for i := b.spin; i > 0; i-- {
		if b.gen.Load() != g {
			return
		}
	}
	// A few cooperative yields: on a loaded or single-P runtime the peer we
	// wait for needs the processor more than we need the low latency.
	for i := 0; i < 64; i++ {
		if b.gen.Load() != g {
			return
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	b.sleepers.Add(1)
	for b.gen.Load() == g {
		b.cond.Wait()
	}
	b.sleepers.Add(-1)
	b.mu.Unlock()
}
