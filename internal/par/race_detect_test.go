//go:build race

package par

// raceDetectorEnabled mirrors the build's -race flag for tests whose
// allocation or timing assertions do not hold under the detector.
const raceDetectorEnabled = true
