package par

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

func TestTaskDequeOwnerLIFOThiefFIFO(t *testing.T) {
	d := &taskDeque{buf: make([]atomic.Int32, 8), mask: 7}
	for i := int32(0); i < 5; i++ {
		d.push(i)
	}
	if v, ok := d.steal(); !ok || v != 0 {
		t.Fatalf("steal got (%d,%v), want oldest (0,true)", v, ok)
	}
	if v, ok := d.pop(); !ok || v != 4 {
		t.Fatalf("pop got (%d,%v), want newest (4,true)", v, ok)
	}
	if v, ok := d.pop(); !ok || v != 3 {
		t.Fatalf("pop got (%d,%v), want (3,true)", v, ok)
	}
	if v, ok := d.steal(); !ok || v != 1 {
		t.Fatalf("steal got (%d,%v), want (1,true)", v, ok)
	}
	if v, ok := d.pop(); !ok || v != 2 {
		t.Fatalf("pop got (%d,%v), want last (2,true)", v, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque succeeded")
	}
	// Emptied deque is reusable: indices are monotone, the ring wraps.
	for i := int32(10); i < 14; i++ {
		d.push(i)
	}
	if v, ok := d.steal(); !ok || v != 10 {
		t.Fatalf("steal after reuse got (%d,%v), want (10,true)", v, ok)
	}
}

func TestTaskGraphChainRunsInOrder(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	g := NewTaskGraph(pool)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		g.AddTask(0, func() { got = append(got, i) })
	}
	for i := int32(0); i < 9; i++ {
		g.AddDep(i, i+1)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	g.Run()
	if len(got) != 10 {
		t.Fatalf("executed %d tasks, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("chain executed out of order: %v", got)
		}
	}
}

func TestTaskGraphSingleWorkerSchedulesSeedsInInsertionOrder(t *testing.T) {
	// With one worker and no edges, reverse-order seeding plus LIFO pop
	// replays the insertion order — the property that makes single-worker
	// task mode execute the plan's schedule order exactly.
	pool := NewPool(1)
	defer pool.Close()
	g := NewTaskGraph(pool)
	var got []int
	for i := 0; i < 7; i++ {
		i := i
		g.AddTask(0, func() { got = append(got, i) })
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	g.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("seed order not preserved: %v", got)
		}
	}
}

func TestTaskGraphRejectsCycle(t *testing.T) {
	g := NewTaskGraph(NewPool(1))
	a := g.AddTask(0, func() {})
	b := g.AddTask(0, func() {})
	c := g.AddTask(0, func() {})
	g.AddDep(a, b)
	g.AddDep(b, c)
	g.AddDep(c, a)
	if err := g.Freeze(); err == nil {
		t.Fatal("Freeze accepted a cyclic graph")
	}
}

func TestTaskGraphRejectsEmpty(t *testing.T) {
	if err := NewTaskGraph(NewPool(1)).Freeze(); err == nil {
		t.Fatal("Freeze accepted an empty graph")
	}
}

func TestTaskGraphDedupesEdges(t *testing.T) {
	g := NewTaskGraph(NewPool(1))
	a := g.AddTask(0, func() {})
	b := g.AddTask(0, func() {})
	for i := 0; i < 5; i++ {
		g.AddDep(a, b)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 1 {
		t.Fatalf("duplicate edges survived: %d", g.Edges())
	}
	if g.initDeps[b] != 1 {
		t.Fatalf("initDeps[b] = %d after dedup, want 1", g.initDeps[b])
	}
	g.Run() // and the deduped counter must release b exactly at zero
	if g.TasksExecuted() != 2 {
		t.Fatalf("executed %d, want 2", g.TasksExecuted())
	}
}

// randomDAG builds a random layered DAG where every task records a global
// completion sequence number, and returns a checker asserting each edge's
// predecessor finished before its successor started being observable.
func randomDAG(g *TaskGraph, rng *rand.Rand, ntasks int) (seq []atomic.Int64, edges [][2]int32) {
	seq = make([]atomic.Int64, ntasks)
	order := &atomic.Int64{}
	for i := 0; i < ntasks; i++ {
		i := i
		g.AddTask(rng.Intn(g.nw), func() {
			// A little uneven work so interleavings vary.
			x := 0
			for k := 0; k < 50*(i%7); k++ {
				x += k
			}
			_ = x
			seq[i].Store(order.Add(1))
		})
	}
	for i := 1; i < ntasks; i++ {
		for _, p := range rng.Perm(i)[:rng.Intn(min(i, 4))] {
			e := [2]int32{int32(p), int32(i)}
			g.AddDep(e[0], e[1])
			edges = append(edges, e)
		}
	}
	return seq, edges
}

func TestTaskGraphRandomDAGRespectsDependencies(t *testing.T) {
	for _, nw := range []int{1, 2, 4, 8} {
		pool := NewPool(nw)
		rng := rand.New(rand.NewSource(int64(7 + nw)))
		g := NewTaskGraph(pool)
		const ntasks = 300
		seq, edges := randomDAG(g, rng, ntasks)
		if err := g.Freeze(); err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 5; run++ {
			for i := range seq {
				seq[i].Store(0)
			}
			g.Run()
			for i := range seq {
				if seq[i].Load() == 0 {
					t.Fatalf("nw=%d run %d: task %d never executed", nw, run, i)
				}
			}
			for _, e := range edges {
				if seq[e[0]].Load() >= seq[e[1]].Load() {
					t.Fatalf("nw=%d run %d: dependency %d -> %d violated (seq %d >= %d)",
						nw, run, e[0], e[1], seq[e[0]].Load(), seq[e[1]].Load())
				}
			}
		}
		if got := g.TasksExecuted(); got != 5*ntasks {
			t.Fatalf("nw=%d: cumulative tasks %d, want %d", nw, got, 5*ntasks)
		}
		pool.Close()
	}
}

func TestTaskGraphWideFanOutFanIn(t *testing.T) {
	// One root releases 64 independent tasks funneling into one sink: the
	// stress shape for the wake protocol (a burst of releases while every
	// other worker is parked) and for the fan-in counter.
	pool := NewPool(4)
	defer pool.Close()
	g := NewTaskGraph(pool)
	var ran atomic.Int64
	root := g.AddTask(0, func() { ran.Add(1) })
	sink := g.AddTask(0, func() { ran.Add(1) })
	for i := 0; i < 64; i++ {
		mid := g.AddTask(i%4, func() { ran.Add(1) })
		g.AddDep(root, mid)
		g.AddDep(mid, sink)
	}
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	if g.initDeps[sink] != 64 {
		t.Fatalf("sink initDeps = %d, want 64", g.initDeps[sink])
	}
	for run := 0; run < 20; run++ {
		ran.Store(0)
		g.Run()
		if ran.Load() != 66 {
			t.Fatalf("run %d executed %d tasks, want 66", run, ran.Load())
		}
	}
}

func TestTaskGraphRunAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	for _, nw := range []int{1, 4} {
		pool := NewPool(nw)
		g := NewTaskGraph(pool)
		rng := rand.New(rand.NewSource(11))
		randomDAG(g, rng, 200)
		if err := g.Freeze(); err != nil {
			t.Fatal(err)
		}
		g.Run() // warm-up
		if n := testing.AllocsPerRun(10, g.Run); n != 0 {
			t.Errorf("nw=%d: TaskGraph.Run allocates %v times per run, want 0", nw, n)
		}
		pool.Close()
	}
}

func TestTaskGraphInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	pool := NewPool(2)
	defer pool.Close()
	g := NewTaskGraph(pool)
	rng := rand.New(rand.NewSource(3))
	randomDAG(g, rng, 100)
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	g.Instrument(reg, "test")
	for i := 0; i < 3; i++ {
		g.Run()
	}
	if got := reg.Counter("par_test_tasks_total").Value(); got != 300 {
		t.Errorf("par_test_tasks_total = %v, want 300", got)
	}
	if got := reg.Counter("par_test_steals_total").Value(); int64(got) != g.Steals() {
		t.Errorf("par_test_steals_total = %v, accessor says %d", got, g.Steals())
	}
	// The per-worker idle timers exist and observed one interval per run in
	// which the worker went idle; just assert they are registered.
	if reg.Timer("par_test_w0_idle_seconds") == nil {
		t.Error("per-worker idle timer not registered")
	}
}

func BenchmarkTaskGraphOverhead(b *testing.B) {
	// Per-task scheduling cost on an empty-bodied layered graph: 8 layers of
	// 16 tasks, all-to-all between layers — the pure runtime overhead a plan
	// step pays on top of its kernel arithmetic.
	for _, nw := range []int{1, 4} {
		pool := NewPool(nw)
		g := NewTaskGraph(pool)
		const layers, width = 8, 16
		var prev []int32
		for l := 0; l < layers; l++ {
			var cur []int32
			for k := 0; k < width; k++ {
				id := g.AddTask(k%nw, func() {})
				for _, p := range prev {
					g.AddDep(p, id)
				}
				cur = append(cur, id)
			}
			prev = cur
		}
		if err := g.Freeze(); err != nil {
			b.Fatal(err)
		}
		g.Run()
		name := map[int]string{1: "w1", 4: "w4"}[nw]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Run()
			}
		})
		pool.Close()
	}
}
