package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDispatchAllocFree pins the allocation-free dispatch guarantee the
// compiled execution plan depends on: once the body closure exists, For,
// ForRange, ForDynamic and Region launches allocate nothing — the work
// travels through the pool's stored work slot, the region reuses the pooled
// barrier and preallocated teams.
func TestDispatchAllocFree(t *testing.T) {
	for _, nw := range []int{1, 4} {
		p := NewPool(nw)
		defer p.Close()
		x := make([]float64, 4096)
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i]++
			}
		}
		region := func(tm *Team) {
			tm.ForBarrier(len(x), body)
			tm.For(len(x), body)
			tm.Barrier()
		}
		checks := []struct {
			name string
			fn   func()
		}{
			{"For", func() { p.For(len(x), body) }},
			{"ForRange", func() { p.ForRange(64, len(x), body) }},
			{"ForDynamic", func() { p.ForDynamic(len(x), 256, body) }},
			{"Region", func() { p.Region(region) }},
		}
		for _, c := range checks {
			if a := testing.AllocsPerRun(50, c.fn); a != 0 {
				t.Errorf("nw=%d: %s allocates %.1f objects per launch, want 0", nw, c.name, a)
			}
		}
	}
}

// TestDynamicChunkFloorTunable pins that ForDynamic's clamp for non-positive
// chunk sizes reads the package-level DynamicChunkFloor, not the frozen
// default — the floor is the tuning knob for machines where 64-element claims
// are the wrong trade.
func TestDynamicChunkFloorTunable(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	old := DynamicChunkFloor
	defer func() { DynamicChunkFloor = old }()

	var mu sync.Mutex
	// Floor >= n: the whole range is one chunk on the calling goroutine.
	DynamicChunkFloor = 1000
	calls := 0
	p.ForDynamic(1000, 0, func(lo, hi int) {
		mu.Lock()
		calls++
		mu.Unlock()
	})
	if calls != 1 {
		t.Errorf("floor 1000 over n=1000 ran %d chunks, want 1", calls)
	}

	// Floor 250 over 1000: exactly four 250-element claims.
	DynamicChunkFloor = 250
	var sizes []int
	p.ForDynamic(1000, 0, func(lo, hi int) {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		mu.Unlock()
	})
	if len(sizes) != 4 {
		t.Errorf("floor 250 over n=1000 ran %d chunks, want 4 (%v)", len(sizes), sizes)
	}
	for _, s := range sizes {
		if s != 250 {
			t.Errorf("chunk of %d elements under floor 250", s)
		}
	}
}

// TestPoolReleasesClosure checks the work slot is cleared after the join, so
// a pool kept alive does not pin the last caller's captures.
func TestPoolReleasesClosure(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.For(100, func(lo, hi int) {})
	if p.body != nil || p.region != nil {
		t.Error("work slot still holds the last dispatched closure")
	}
}

// TestBarrierManyRounds stresses the spin-then-park barrier across rounds
// with workers racing through consecutive barriers (no inter-round pause),
// the exact shape of a compiled plan's schedule. Run under -race this also
// validates the generation-publication ordering.
func TestBarrierManyRounds(t *testing.T) {
	const workers, rounds = 5, 300
	b := NewBarrier(workers)
	var phase atomic.Int64
	var wg sync.WaitGroup
	bad := make(chan int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				phase.Add(1)
				b.Wait()
				if got := phase.Load(); got < int64(workers*r) {
					bad <- got
					return
				}
				b.Wait()
			}
		}()
	}
	wg.Wait()
	select {
	case got := <-bad:
		t.Fatalf("barrier released a worker early (phase %d)", got)
	default:
	}
}

// TestBarrierParkedWaiter forces the park path: one waiter arrives far ahead
// of the rest (past any spin budget) and must still be released.
func TestBarrierParkedWaiter(t *testing.T) {
	b := NewBarrier(2)
	released := make(chan struct{})
	go func() {
		b.Wait()
		close(released)
	}()
	// Let the early waiter burn its spin budget and park.
	for i := 0; i < 200; i++ {
		runtime.Gosched()
	}
	b.Wait()
	<-released
}

// BenchmarkBarrier measures one barrier round-trip for the team, comparing
// the spin-then-park barrier against the mutex+condvar design it replaced.
func BenchmarkBarrier(b *testing.B) {
	run := func(b *testing.B, wait func()) {
		const workers = 4
		var wg sync.WaitGroup
		start := make(chan int)
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := <-start
				for i := 0; i < n; i++ {
					wait()
				}
			}()
		}
		b.ResetTimer()
		for w := 1; w < workers; w++ {
			start <- b.N
		}
		for i := 0; i < b.N; i++ {
			wait()
		}
		wg.Wait()
	}
	b.Run("SpinPark", func(b *testing.B) {
		bar := NewBarrier(4)
		run(b, bar.Wait)
	})
	b.Run("CondvarRef", func(b *testing.B) {
		bar := newCondBarrier(4)
		run(b, bar.Wait)
	})
}

// condBarrier is the previous mutex+condvar barrier, kept here only as the
// benchmark reference point.
type condBarrier struct {
	size int
	mu   sync.Mutex
	cnt  int
	gen  uint64
	cond *sync.Cond
}

func newCondBarrier(size int) *condBarrier {
	b := &condBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *condBarrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.cnt++
	if b.cnt == b.size {
		b.cnt = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// BenchmarkDispatchOverhead is the per-launch cost of the allocation-free
// work slot: an effectively empty body isolates the fork-join machinery.
func BenchmarkDispatchOverhead(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	body := func(lo, hi int) { sink.Add(1) }
	b.Run("For", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.For(1<<14, body)
		}
	})
	region := func(tm *Team) { tm.ForBarrier(1<<14, body) }
	b.Run("Region", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Region(region)
		}
	})
}

// BenchmarkDynamicChunkFloor shows why ForDynamic clamps tiny chunks to
// DefaultDynamicChunk: per-chunk claims on the shared counter dominate when
// chunks are small, even before inter-core cache-line ping-pong is counted.
func BenchmarkDynamicChunkFloor(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	n := 1 << 16
	x := make([]float64, n)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += 1
		}
	}
	for _, c := range []int{1, 8, DefaultDynamicChunk, 512} {
		name := map[int]string{1: "chunk1", 8: "chunk8", DefaultDynamicChunk: "chunk64floor", 512: "chunk512"}[c]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.ForDynamic(n, c, body)
			}
		})
	}
}
