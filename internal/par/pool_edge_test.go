package par

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

func TestForRangeEmpty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	called := false
	p.ForRange(5, 5, func(lo, hi int) { called = true })
	p.ForRange(7, 3, func(lo, hi int) { called = true })
	if called {
		t.Error("body called for empty or inverted range")
	}
}

func TestForRangeOffsets(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var hit [20]int32
	p.ForRange(4, 17, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hit[i], 1)
		}
	})
	for i := range hit {
		want := int32(0)
		if i >= 4 && i < 17 {
			want = 1
		}
		if hit[i] != want {
			t.Errorf("index %d visited %d times, want %d", i, hit[i], want)
		}
	}
}

// A single-worker pool degenerates to serial execution: the body always sees
// the full range, in the caller's goroutine, and Region runs exactly once.
func TestSingleWorkerPool(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
	var spans [][2]int
	p.For(10, func(lo, hi int) { spans = append(spans, [2]int{lo, hi}) })
	if len(spans) != 1 || spans[0] != [2]int{0, 10} {
		t.Errorf("single-worker For spans = %v, want one [0,10)", spans)
	}
	regions := 0
	p.Region(func(tm *Team) {
		regions++
		if tm.ID != 0 || tm.Size != 1 {
			t.Errorf("team = id %d size %d, want 0/1", tm.ID, tm.Size)
		}
		tm.Barrier() // size-1 barrier must not block
	})
	if regions != 1 {
		t.Errorf("region body ran %d times, want 1", regions)
	}
}

// A range smaller than the team still covers every index exactly once and
// leaves no worker running a degenerate (lo==hi) chunk.
func TestRangeSmallerThanWorkers(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	for _, n := range []int{1, 2, 3, 7} {
		var hit = make([]int32, n)
		p.For(n, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d: degenerate chunk [%d,%d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
		})
		for i, c := range hit {
			if c != 1 {
				t.Errorf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// Independent pools may be driven concurrently from multiple goroutines
// (e.g. the hybrid executor runs its host pool and device pools in
// parallel). Run under -race this also checks dispatch accounting.
func TestNestedPoolsFromMultipleGoroutines(t *testing.T) {
	reg := telemetry.NewRegistry()
	const outer = 4
	pools := make([]*Pool, outer)
	for i := range pools {
		pools[i] = NewPool(3)
		pools[i].Instrument(reg, "edge"+string(rune('a'+i)))
		defer pools[i].Close()
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := range pools {
		wg.Add(1)
		go func(p *Pool) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				p.For(100, func(lo, hi int) {
					s := int64(0)
					for j := lo; j < hi; j++ {
						s += int64(j)
					}
					total.Add(s)
				})
			}
		}(pools[i])
	}
	wg.Wait()
	want := int64(outer * 5 * (99 * 100 / 2))
	if total.Load() != want {
		t.Errorf("total = %d, want %d", total.Load(), want)
	}
	for i := range pools {
		name := "par_edge" + string(rune('a'+i))
		if got := reg.Counter(name + "_dispatches_total").Value(); got != 5 {
			t.Errorf("%s dispatches = %d, want 5", name, got)
		}
		if got := reg.Counter(name + "_elements_total").Value(); got != 500 {
			t.Errorf("%s elements = %d, want 500", name, got)
		}
	}
}

// Instrument with a nil registry must leave the pool usable (nil-safe
// counters), and an empty loop must not count a dispatch.
func TestInstrumentNilAndEmptyLoop(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Instrument(nil, "nil")
	p.For(10, func(lo, hi int) {})

	reg := telemetry.NewRegistry()
	p.Instrument(reg, "real")
	p.For(0, func(lo, hi int) {})
	p.ForDynamic(-3, 4, func(lo, hi int) {})
	if got := reg.Counter("par_real_dispatches_total").Value(); got != 0 {
		t.Errorf("empty loops counted %d dispatches, want 0", got)
	}
}
