package par

import (
	"math"
	"unsafe"
)

func atomicPtr(f *float64) unsafe.Pointer { return unsafe.Pointer(f) }

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
