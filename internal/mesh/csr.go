package mesh

import (
	"fmt"
	"unsafe"
)

// This file packs the strided, padded connectivity of Mesh into CSR
// (compressed sparse row) form and provides the aligned SoA allocators the
// big-mesh execution paths build on. Motivation (paper Figure 6 ladder,
// Table III): at 2.6M cells the strided MaxEdges/MaxEdgesOnEdge rows waste
// both footprint and — more importantly — memory streams, because every
// inner gather loop must load a row length and re-slice a padded row. The
// CSR image stores only the valid entries back to back, so the hot loops
// become stride-1 sweeps over int32 column indices, the form the compiler
// can keep bounds-check-free (see internal/sw/plan_kernels.go) and the
// hardware prefetcher likes.
//
// PackCSR validates EVERY index it emits against the owning entity count.
// That validation is load-bearing: the solver's compiled kernels gather
// through these columns with unchecked loads, so "no column escapes its
// array" must be established here, once, at pack time.

// CSR is the compressed-sparse-row image of a Mesh's variable-degree
// connectivity. Fixed-degree adjacency (CellsOnEdge, VerticesOnEdge,
// CellsOnVertex, EdgesOnVertex) is already dense and keeps its layout.
type CSR struct {
	NCells, NEdges, NVertices int

	// CellPtr[c]..CellPtr[c+1] spans cell c's incident entries in the three
	// parallel column arrays below, in the same counterclockwise j-order as
	// the strided originals (so reductions reassociate nothing).
	CellPtr   []int32
	CellEdges []int32 // EdgesOnCell packed
	CellCells []int32 // CellsOnCell packed (neighbor across CellEdges[k])
	CellVerts []int32 // VerticesOnCell packed

	// EdgePtr[e]..EdgePtr[e+1] spans edge e's TRiSK tangential stencil.
	EdgePtr     []int32
	EdgeEdges   []int32   // EdgesOnEdge packed
	EdgeWeights []float64 // WeightsOnEdge packed, same j-order
}

// PackCSR builds the CSR image of m's connectivity, validating every row
// length and every emitted column index. The returned arrays are aligned
// and tail-padded via the Aligned* allocators.
func (m *Mesh) PackCSR() (*CSR, error) {
	c := &CSR{NCells: m.NCells, NEdges: m.NEdges, NVertices: m.NVertices}

	c.CellPtr = AlignedInt32(m.NCells + 1)
	total := 0
	for i := 0; i < m.NCells; i++ {
		n := int(m.NEdgesOnCell[i])
		if n < 1 || n > MaxEdges {
			return nil, fmt.Errorf("mesh: cell %d has degree %d outside [1,%d]", i, n, MaxEdges)
		}
		total += n
		c.CellPtr[i+1] = int32(total)
	}
	c.CellEdges = AlignedInt32(total)
	c.CellCells = AlignedInt32(total)
	c.CellVerts = AlignedInt32(total)
	k := 0
	for i := 0; i < m.NCells; i++ {
		base := i * MaxEdges
		n := int(m.NEdgesOnCell[i])
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			nb := m.CellsOnCell[base+j]
			v := m.VerticesOnCell[base+j]
			if e < 0 || int(e) >= m.NEdges {
				return nil, fmt.Errorf("mesh: EdgesOnCell[%d][%d] = %d out of range", i, j, e)
			}
			if nb < 0 || int(nb) >= m.NCells {
				return nil, fmt.Errorf("mesh: CellsOnCell[%d][%d] = %d out of range", i, j, nb)
			}
			if v < 0 || int(v) >= m.NVertices {
				return nil, fmt.Errorf("mesh: VerticesOnCell[%d][%d] = %d out of range", i, j, v)
			}
			c.CellEdges[k] = e
			c.CellCells[k] = nb
			c.CellVerts[k] = v
			k++
		}
	}

	c.EdgePtr = AlignedInt32(m.NEdges + 1)
	total = 0
	for e := 0; e < m.NEdges; e++ {
		n := int(m.NEdgesOnEdge[e])
		if n < 0 || n > MaxEdgesOnEdge {
			return nil, fmt.Errorf("mesh: edge %d has stencil size %d outside [0,%d]", e, n, MaxEdgesOnEdge)
		}
		total += n
		c.EdgePtr[e+1] = int32(total)
	}
	c.EdgeEdges = AlignedInt32(total)
	c.EdgeWeights = AlignedFloat64(total)
	k = 0
	for e := 0; e < m.NEdges; e++ {
		base := e * MaxEdgesOnEdge
		n := int(m.NEdgesOnEdge[e])
		for j := 0; j < n; j++ {
			eoe := m.EdgesOnEdge[base+j]
			if eoe < 0 || int(eoe) >= m.NEdges {
				return nil, fmt.Errorf("mesh: EdgesOnEdge[%d][%d] = %d out of range", e, j, eoe)
			}
			c.EdgeEdges[k] = eoe
			c.EdgeWeights[k] = m.WeightsOnEdge[base+j]
			k++
		}
	}

	// The fixed-degree arrays the compiled kernels also gather through are
	// validated here too, so every index an unchecked kernel can load is
	// covered by one pack-time pass.
	for e := 0; e < 2*m.NEdges; e++ {
		if ci := m.CellsOnEdge[e]; ci < 0 || int(ci) >= m.NCells {
			return nil, fmt.Errorf("mesh: CellsOnEdge[%d] = %d out of range", e, ci)
		}
		if vi := m.VerticesOnEdge[e]; vi < 0 || int(vi) >= m.NVertices {
			return nil, fmt.Errorf("mesh: VerticesOnEdge[%d] = %d out of range", e, vi)
		}
	}
	for i := 0; i < m.NVertices*VertexDegree; i++ {
		if ci := m.CellsOnVertex[i]; ci < 0 || int(ci) >= m.NCells {
			return nil, fmt.Errorf("mesh: CellsOnVertex[%d] = %d out of range", i, ci)
		}
		if ei := m.EdgesOnVertex[i]; ei < 0 || int(ei) >= m.NEdges {
			return nil, fmt.Errorf("mesh: EdgesOnVertex[%d] = %d out of range", i, ei)
		}
	}
	return c, nil
}

// CellRow returns the half-open [lo,hi) span of cell c's columns.
func (c *CSR) CellRow(i int) (int, int) { return int(c.CellPtr[i]), int(c.CellPtr[i+1]) }

// EdgeRow returns the half-open [lo,hi) span of edge e's stencil columns.
func (c *CSR) EdgeRow(e int) (int, int) { return int(c.EdgePtr[e]), int(c.EdgePtr[e+1]) }

// Bytes returns the resident size of the CSR image in bytes.
func (c *CSR) Bytes() int64 {
	n := len(c.CellPtr) + len(c.CellEdges) + len(c.CellCells) + len(c.CellVerts) +
		len(c.EdgePtr) + len(c.EdgeEdges)
	return int64(n)*4 + int64(len(c.EdgeWeights))*8
}

// --- aligned, padded SoA allocators ----------------------------------------

// alignBytes is the allocation alignment: one cache line, which is also a
// full 512-bit vector lane.
const alignBytes = 64

// alignedOff returns the element offset that aligns &buf[off] to alignBytes,
// for elements of size elem bytes.
func alignedOff(p unsafe.Pointer, elem uintptr) int {
	rem := uintptr(p) % alignBytes
	if rem == 0 {
		return 0
	}
	return int((alignBytes - rem) / elem)
}

// AlignedFloat64 returns a zeroed float64 slice of length n whose first
// element sits on a cache-line boundary and whose capacity is padded to a
// multiple of 8 elements, so vectorized sweeps and static worker partitions
// rounded to 8-element boundaries never share a line across owners.
func AlignedFloat64(n int) []float64 {
	buf := make([]float64, n+2*alignBytes/8)
	off := alignedOff(unsafe.Pointer(unsafe.SliceData(buf)), 8)
	return buf[off : off+n : off+n+(8-n%8)%8]
}

// AlignedFloat32 is AlignedFloat64 for float32 (16-element pad).
func AlignedFloat32(n int) []float32 {
	buf := make([]float32, n+2*alignBytes/4)
	off := alignedOff(unsafe.Pointer(unsafe.SliceData(buf)), 4)
	return buf[off : off+n : off+n+(16-n%16)%16]
}

// AlignedInt32 is AlignedFloat64 for int32 (16-element pad).
func AlignedInt32(n int) []int32 {
	buf := make([]int32, n+2*alignBytes/4)
	off := alignedOff(unsafe.Pointer(unsafe.SliceData(buf)), 4)
	return buf[off : off+n : off+n+(16-n%16)%16]
}
