package mesh

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/icosa"
)

// FuzzMeshRoundTrip builds the SCVT mesh from randomly jittered icosahedral
// generators and checks that the binary format round-trips every table
// exactly (the format stores raw float bits, so reflect.DeepEqual is the
// correct comparison) and that the loaded mesh still validates. Seeds that
// jitter a triangle inside out are skipped — mesh construction rejecting
// them is the behavior under test elsewhere (Validate), not here.
func FuzzMeshRoundTrip(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(5))
	f.Add(uint64(314159))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		tri := icosa.Generate(2)
		spacing := math.Sqrt(4 * math.Pi / float64(len(tri.Nodes)))
		for i, p := range tri.Nodes {
			w := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			tri.Nodes[i] = p.Add(geom.ProjectToTangent(p, w).Scale(0.12 * spacing)).Normalize()
		}
		m, err := FromTriangulation(tri, Options{})
		if err != nil {
			t.Skipf("jitter broke the triangulation: %v", err)
		}
		if err := m.Validate(); err != nil {
			t.Skipf("jittered mesh invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatal("mesh did not round-trip bit-exactly through the binary format")
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("round-tripped mesh invalid: %v", err)
		}
	})
}
