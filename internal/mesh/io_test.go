package mesh

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestMeshRoundTrip(t *testing.T) {
	m := testMesh(t, 3)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NCells != m.NCells || got.NEdges != m.NEdges || got.NVertices != m.NVertices || got.Level != m.Level {
		t.Fatalf("counts differ: %v vs %v", got, m)
	}
	// Bitwise identical geometry and connectivity.
	for i := range m.XCell {
		if got.XCell[i] != m.XCell[i] {
			t.Fatal("XCell differs")
		}
	}
	for i := range m.WeightsOnEdge {
		if got.WeightsOnEdge[i] != m.WeightsOnEdge[i] {
			t.Fatal("weights differ")
		}
	}
	for i := range m.EdgesOnCell {
		if got.EdgesOnCell[i] != m.EdgesOnCell[i] {
			t.Fatal("EdgesOnCell differs")
		}
	}
	for i := range m.EdgeSignOnCell {
		if got.EdgeSignOnCell[i] != m.EdgeSignOnCell[i] {
			t.Fatal("signs differ")
		}
	}
	// And the loaded mesh passes the full invariant suite.
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeshFileRoundTrip(t *testing.T) {
	m := testMesh(t, 2)
	path := filepath.Join(t.TempDir(), "mesh.scvt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NCells != m.NCells {
		t.Fatal("file round trip lost cells")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a mesh at all........"))); err == nil {
		t.Error("garbage accepted")
	}
	// Valid magic, wrong version.
	var buf bytes.Buffer
	mw := &meshWriter{w: newBufWriter(&buf)}
	mw.u64(meshMagic)
	mw.u64(999)
	mw.w.Flush()
	if _, err := ReadFrom(&buf); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated stream.
	var buf2 bytes.Buffer
	m := testMesh(t, 2)
	if err := m.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()/2]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.scvt")); err == nil {
		t.Error("missing file accepted")
	}
}
