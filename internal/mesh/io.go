package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/geom"
)

// Binary mesh serialization: building the 15-km paper mesh takes minutes,
// so tools build once and reload. The format is a fixed little-endian
// layout — magic, version, counts, then every array in declaration order —
// with no reflection on the hot path.

const (
	meshMagic   = 0x53435654 // "SCVT"
	meshVersion = 1
)

type meshWriter struct {
	w   *bufio.Writer
	err error
}

func (mw *meshWriter) u64(v uint64) {
	if mw.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, mw.err = mw.w.Write(b[:])
}

func (mw *meshWriter) f64(v float64) { mw.u64(math.Float64bits(v)) }
func (mw *meshWriter) i64(v int)     { mw.u64(uint64(v)) }

func (mw *meshWriter) f64s(v []float64) {
	mw.i64(len(v))
	for _, x := range v {
		mw.f64(x)
	}
}

func (mw *meshWriter) i32s(v []int32) {
	mw.i64(len(v))
	if mw.err != nil {
		return
	}
	var b [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		if _, mw.err = mw.w.Write(b[:]); mw.err != nil {
			return
		}
	}
}

func (mw *meshWriter) i8s(v []int8) {
	mw.i64(len(v))
	if mw.err != nil {
		return
	}
	for _, x := range v {
		if mw.err = mw.w.WriteByte(byte(x)); mw.err != nil {
			return
		}
	}
}

func (mw *meshWriter) vecs(v []geom.Vec3) {
	mw.i64(len(v))
	for _, x := range v {
		mw.f64(x.X)
		mw.f64(x.Y)
		mw.f64(x.Z)
	}
}

// Write serializes the mesh to w.
func (m *Mesh) Write(w io.Writer) error {
	mw := &meshWriter{w: bufio.NewWriterSize(w, 1<<20)}
	mw.u64(meshMagic)
	mw.u64(meshVersion)
	mw.f64(m.Radius)
	mw.i64(m.NCells)
	mw.i64(m.NEdges)
	mw.i64(m.NVertices)
	mw.i64(m.Level)
	mw.vecs(m.XCell)
	mw.vecs(m.XEdge)
	mw.vecs(m.XVertex)
	mw.f64s(m.LatCell)
	mw.f64s(m.LonCell)
	mw.f64s(m.LatEdge)
	mw.f64s(m.LonEdge)
	mw.f64s(m.LatVertex)
	mw.vecs(m.EdgeNormal)
	mw.vecs(m.EdgeTangent)
	mw.f64s(m.AngleEdge)
	mw.i32s(m.CellsOnEdge)
	mw.i32s(m.VerticesOnEdge)
	mw.i32s(m.NEdgesOnCell)
	mw.i32s(m.EdgesOnCell)
	mw.i32s(m.VerticesOnCell)
	mw.i32s(m.CellsOnCell)
	mw.i32s(m.CellsOnVertex)
	mw.i32s(m.EdgesOnVertex)
	mw.i32s(m.NEdgesOnEdge)
	mw.i32s(m.EdgesOnEdge)
	mw.f64s(m.WeightsOnEdge)
	mw.f64s(m.DcEdge)
	mw.f64s(m.DvEdge)
	mw.f64s(m.AreaCell)
	mw.f64s(m.AreaTriangle)
	mw.f64s(m.KiteAreasOnVertex)
	mw.i8s(m.EdgeSignOnCell)
	mw.i8s(m.EdgeSignOnVertex)
	if mw.err != nil {
		return mw.err
	}
	return mw.w.Flush()
}

type meshReader struct {
	r   *bufio.Reader
	err error
}

func (mr *meshReader) u64() uint64 {
	if mr.err != nil {
		return 0
	}
	var b [8]byte
	_, mr.err = io.ReadFull(mr.r, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (mr *meshReader) f64() float64 { return math.Float64frombits(mr.u64()) }
func (mr *meshReader) i64() int     { return int(mr.u64()) }

func (mr *meshReader) length(max int) int {
	n := mr.i64()
	if n < 0 || n > max {
		mr.fail(fmt.Errorf("mesh: corrupt array length %d", n))
		return 0
	}
	return n
}

func (mr *meshReader) fail(err error) {
	if mr.err == nil {
		mr.err = err
	}
}

const maxArray = 1 << 28 // sanity bound on array lengths (268M entries)

func (mr *meshReader) f64s() []float64 {
	n := mr.length(maxArray)
	v := make([]float64, n)
	for i := range v {
		v[i] = mr.f64()
	}
	return v
}

func (mr *meshReader) i32s() []int32 {
	n := mr.length(maxArray)
	v := make([]int32, n)
	if mr.err != nil {
		return v
	}
	var b [4]byte
	for i := range v {
		if _, mr.err = io.ReadFull(mr.r, b[:]); mr.err != nil {
			return v
		}
		v[i] = int32(binary.LittleEndian.Uint32(b[:]))
	}
	return v
}

func (mr *meshReader) i8s() []int8 {
	n := mr.length(maxArray)
	v := make([]int8, n)
	for i := range v {
		c, err := mr.r.ReadByte()
		if err != nil {
			mr.fail(err)
			return v
		}
		v[i] = int8(c)
	}
	return v
}

func (mr *meshReader) vecs() []geom.Vec3 {
	n := mr.length(maxArray)
	v := make([]geom.Vec3, n)
	for i := range v {
		v[i] = geom.V(mr.f64(), mr.f64(), mr.f64())
	}
	return v
}

// ReadFrom deserializes a mesh written by Write.
func ReadFrom(r io.Reader) (*Mesh, error) {
	mr := &meshReader{r: bufio.NewReaderSize(r, 1<<20)}
	if magic := mr.u64(); mr.err == nil && magic != meshMagic {
		return nil, fmt.Errorf("mesh: bad magic %#x", magic)
	}
	if ver := mr.u64(); mr.err == nil && ver != meshVersion {
		return nil, fmt.Errorf("mesh: unsupported version %d", ver)
	}
	m := &Mesh{}
	m.Radius = mr.f64()
	m.NCells = mr.i64()
	m.NEdges = mr.i64()
	m.NVertices = mr.i64()
	m.Level = mr.i64()
	m.XCell = mr.vecs()
	m.XEdge = mr.vecs()
	m.XVertex = mr.vecs()
	m.LatCell = mr.f64s()
	m.LonCell = mr.f64s()
	m.LatEdge = mr.f64s()
	m.LonEdge = mr.f64s()
	m.LatVertex = mr.f64s()
	m.EdgeNormal = mr.vecs()
	m.EdgeTangent = mr.vecs()
	m.AngleEdge = mr.f64s()
	m.CellsOnEdge = mr.i32s()
	m.VerticesOnEdge = mr.i32s()
	m.NEdgesOnCell = mr.i32s()
	m.EdgesOnCell = mr.i32s()
	m.VerticesOnCell = mr.i32s()
	m.CellsOnCell = mr.i32s()
	m.CellsOnVertex = mr.i32s()
	m.EdgesOnVertex = mr.i32s()
	m.NEdgesOnEdge = mr.i32s()
	m.EdgesOnEdge = mr.i32s()
	m.WeightsOnEdge = mr.f64s()
	m.DcEdge = mr.f64s()
	m.DvEdge = mr.f64s()
	m.AreaCell = mr.f64s()
	m.AreaTriangle = mr.f64s()
	m.KiteAreasOnVertex = mr.f64s()
	m.EdgeSignOnCell = mr.i8s()
	m.EdgeSignOnVertex = mr.i8s()
	if mr.err != nil {
		return nil, mr.err
	}
	if len(m.XCell) != m.NCells || len(m.XEdge) != m.NEdges || len(m.XVertex) != m.NVertices {
		return nil, fmt.Errorf("mesh: counts disagree with arrays")
	}
	// Coriolis arrays are derived; allocate fresh.
	m.FCell = make([]float64, m.NCells)
	m.FEdge = make([]float64, m.NEdges)
	m.FVertex = make([]float64, m.NVertices)
	return m, nil
}

// SaveFile writes the mesh to path.
func (m *Mesh) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a mesh from path.
func LoadFile(path string) (*Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

func newBufWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }
