// Package mesh builds and represents spherical centroidal Voronoi
// tessellation (SCVT) meshes with the full MPAS connectivity: Voronoi cells
// (mass points), dual Delaunay triangle corners (vorticity points) and edges
// (velocity points), exactly the C-grid staggering of Figure 1 of the paper.
//
// Index conventions (all 0-based, int32):
//
//   - CellsOnEdge[2e], CellsOnEdge[2e+1]: the two cells adjacent to edge e.
//     The positive normal direction of edge e points from the first cell to
//     the second.
//   - VerticesOnEdge[2e], VerticesOnEdge[2e+1]: the two vertices of edge e,
//     ordered so the direction from the first to the second is k x n (90°
//     counterclockwise from the positive normal, seen from outside).
//   - EdgesOnCell/VerticesOnCell/CellsOnCell: stride MaxEdges rows, the first
//     NEdgesOnCell[c] entries valid, in counterclockwise order around the
//     cell; VerticesOnCell[c][j] is the vertex shared by EdgesOnCell[c][j]
//     and EdgesOnCell[c][j+1 mod n].
//   - CellsOnVertex/EdgesOnVertex: stride VertexDegree (= 3) rows,
//     counterclockwise; EdgesOnVertex[v][j] joins CellsOnVertex[v][j] and
//     CellsOnVertex[v][j+1 mod 3].
//   - EdgesOnEdge/WeightsOnEdge: stride MaxEdgesOnEdge rows with
//     NEdgesOnEdge[e] valid entries — the TRiSK tangential-reconstruction
//     stencil (pattern F of the paper).
//
// All lengths and areas are in physical units on a sphere of radius Radius.
package mesh

import (
	"fmt"

	"repro/internal/geom"
)

const (
	// MaxEdges is the maximum number of edges (and vertices) of a Voronoi
	// cell on an icosahedral SCVT mesh: hexagons everywhere except the 12
	// pentagons.
	MaxEdges = 6
	// VertexDegree is the number of cells meeting at a dual-mesh vertex;
	// the dual of a Voronoi tessellation is a triangulation, so always 3.
	VertexDegree = 3
	// MaxEdgesOnEdge is the maximum size of the TRiSK edge stencil: all
	// edges of the two cells adjacent to an edge, excluding the edge
	// itself.
	MaxEdgesOnEdge = 2*MaxEdges - 2
)

// Mesh is a complete SCVT mesh on the sphere.
type Mesh struct {
	Radius float64 // sphere radius in meters

	NCells    int
	NEdges    int
	NVertices int

	// Positions as unit vectors; scale by Radius for physical positions.
	XCell   []geom.Vec3
	XEdge   []geom.Vec3
	XVertex []geom.Vec3

	// Precomputed spherical coordinates of cell centers (radians).
	LatCell, LonCell []float64
	LatEdge, LonEdge []float64
	LatVertex        []float64

	// Edge-local orthonormal frame: EdgeNormal points from the first to the
	// second cell of the edge; EdgeTangent = k x EdgeNormal.
	EdgeNormal  []geom.Vec3
	EdgeTangent []geom.Vec3

	// AngleEdge is the angle between the edge normal and local east, so an
	// analytic wind (zonal, meridional) has normal component
	// zonal*cos(AngleEdge) + meridional*sin(AngleEdge).
	AngleEdge []float64

	// Connectivity (see package comment for conventions).
	CellsOnEdge    []int32 // 2 per edge
	VerticesOnEdge []int32 // 2 per edge
	NEdgesOnCell   []int32
	EdgesOnCell    []int32 // stride MaxEdges
	VerticesOnCell []int32 // stride MaxEdges
	CellsOnCell    []int32 // stride MaxEdges
	CellsOnVertex  []int32 // stride VertexDegree
	EdgesOnVertex  []int32 // stride VertexDegree

	// TRiSK tangential reconstruction stencil.
	NEdgesOnEdge  []int32
	EdgesOnEdge   []int32   // stride MaxEdgesOnEdge
	WeightsOnEdge []float64 // stride MaxEdgesOnEdge

	// Metrics.
	DcEdge            []float64 // distance between the two cells of an edge
	DvEdge            []float64 // distance between the two vertices of an edge
	AreaCell          []float64
	AreaTriangle      []float64
	KiteAreasOnVertex []float64 // stride VertexDegree, paired with CellsOnVertex

	// Orientation signs.
	//
	// EdgeSignOnCell[c*MaxEdges+j] is +1 when the positive normal of
	// EdgesOnCell[c][j] points out of cell c, else -1.
	//
	// EdgeSignOnVertex[v*VertexDegree+j] is +1 when traversing
	// EdgesOnVertex[v][j] along its positive normal circulates
	// counterclockwise around vertex v, else -1.
	EdgeSignOnCell   []int8
	EdgeSignOnVertex []int8

	// Coriolis parameter at each point type (set by SetRotation).
	FCell   []float64
	FEdge   []float64
	FVertex []float64

	// Level is the icosahedral subdivision level this mesh was built from
	// (-1 if unknown).
	Level int
}

// CellEdges returns the valid slice of edges of cell c, counterclockwise.
func (m *Mesh) CellEdges(c int32) []int32 {
	n := m.NEdgesOnCell[c]
	return m.EdgesOnCell[int(c)*MaxEdges : int(c)*MaxEdges+int(n)]
}

// CellVertices returns the valid slice of vertices of cell c,
// counterclockwise.
func (m *Mesh) CellVertices(c int32) []int32 {
	n := m.NEdgesOnCell[c]
	return m.VerticesOnCell[int(c)*MaxEdges : int(c)*MaxEdges+int(n)]
}

// CellNeighbors returns the valid slice of cells adjacent to cell c.
func (m *Mesh) CellNeighbors(c int32) []int32 {
	n := m.NEdgesOnCell[c]
	return m.CellsOnCell[int(c)*MaxEdges : int(c)*MaxEdges+int(n)]
}

// VertexCells returns the three cells meeting at vertex v.
func (m *Mesh) VertexCells(v int32) []int32 {
	return m.CellsOnVertex[v*VertexDegree : v*VertexDegree+VertexDegree]
}

// VertexEdges returns the three edges meeting at vertex v.
func (m *Mesh) VertexEdges(v int32) []int32 {
	return m.EdgesOnVertex[v*VertexDegree : v*VertexDegree+VertexDegree]
}

// EdgeStencil returns the TRiSK stencil (edges, weights) of edge e.
func (m *Mesh) EdgeStencil(e int32) ([]int32, []float64) {
	n := int(m.NEdgesOnEdge[e])
	base := int(e) * MaxEdgesOnEdge
	return m.EdgesOnEdge[base : base+n], m.WeightsOnEdge[base : base+n]
}

// SetRotation fills FCell/FEdge/FVertex with the Coriolis parameter
// f = 2*omega*sin(lat) for planetary rotation rate omega (rad/s).
func (m *Mesh) SetRotation(omega float64) {
	for i := 0; i < m.NCells; i++ {
		m.FCell[i] = 2 * omega * m.XCell[i].Z
	}
	for i := 0; i < m.NEdges; i++ {
		m.FEdge[i] = 2 * omega * m.XEdge[i].Z
	}
	for i := 0; i < m.NVertices; i++ {
		m.FVertex[i] = 2 * omega * m.XVertex[i].Z
	}
}

// String summarizes the mesh.
func (m *Mesh) String() string {
	return fmt.Sprintf("SCVT mesh level %d: %d cells, %d edges, %d vertices, R=%.0f m",
		m.Level, m.NCells, m.NEdges, m.NVertices, m.Radius)
}

// NewEmpty allocates a mesh with the given entity counts and zeroed arrays.
// It is used by the partitioner to assemble per-process local meshes; such
// meshes are not closed surfaces and must not be passed to Validate.
func NewEmpty(radius float64, ncells, nedges, nvertices, level int) *Mesh {
	m := &Mesh{Radius: radius, NCells: ncells, NEdges: nedges, NVertices: nvertices, Level: level}
	m.alloc()
	return m
}

func (m *Mesh) alloc() {
	m.XCell = make([]geom.Vec3, m.NCells)
	m.XEdge = make([]geom.Vec3, m.NEdges)
	m.XVertex = make([]geom.Vec3, m.NVertices)
	m.LatCell = make([]float64, m.NCells)
	m.LonCell = make([]float64, m.NCells)
	m.LatEdge = make([]float64, m.NEdges)
	m.LonEdge = make([]float64, m.NEdges)
	m.LatVertex = make([]float64, m.NVertices)
	m.EdgeNormal = make([]geom.Vec3, m.NEdges)
	m.EdgeTangent = make([]geom.Vec3, m.NEdges)
	m.AngleEdge = make([]float64, m.NEdges)
	m.CellsOnEdge = make([]int32, 2*m.NEdges)
	m.VerticesOnEdge = make([]int32, 2*m.NEdges)
	m.NEdgesOnCell = make([]int32, m.NCells)
	m.EdgesOnCell = make([]int32, m.NCells*MaxEdges)
	m.VerticesOnCell = make([]int32, m.NCells*MaxEdges)
	m.CellsOnCell = make([]int32, m.NCells*MaxEdges)
	m.CellsOnVertex = make([]int32, m.NVertices*VertexDegree)
	m.EdgesOnVertex = make([]int32, m.NVertices*VertexDegree)
	m.NEdgesOnEdge = make([]int32, m.NEdges)
	m.EdgesOnEdge = make([]int32, m.NEdges*MaxEdgesOnEdge)
	m.WeightsOnEdge = make([]float64, m.NEdges*MaxEdgesOnEdge)
	m.DcEdge = make([]float64, m.NEdges)
	m.DvEdge = make([]float64, m.NEdges)
	m.AreaCell = make([]float64, m.NCells)
	m.AreaTriangle = make([]float64, m.NVertices)
	m.KiteAreasOnVertex = make([]float64, m.NVertices*VertexDegree)
	m.EdgeSignOnCell = make([]int8, m.NCells*MaxEdges)
	m.EdgeSignOnVertex = make([]int8, m.NVertices*VertexDegree)
	m.FCell = make([]float64, m.NCells)
	m.FEdge = make([]float64, m.NEdges)
	m.FVertex = make([]float64, m.NVertices)
}
