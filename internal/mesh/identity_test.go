package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickGlobalDivergenceZeroAnyField: the telescoping-sum identity
// sum_c A_c*div_c = 0 holds exactly for ARBITRARY edge fields, not just
// smooth ones — this is the discrete mass-conservation mechanism.
func TestQuickGlobalDivergenceZeroAnyField(t *testing.T) {
	m := testMesh(t, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := make([]float64, m.NEdges)
		for i := range u {
			u[i] = rng.NormFloat64() * 100
		}
		total, mag := 0.0, 0.0
		for c := int32(0); c < int32(m.NCells); c++ {
			for j, e := range m.CellEdges(c) {
				term := float64(m.EdgeSignOnCell[int(c)*MaxEdges+j]) * m.DvEdge[e] * u[e]
				total += term
				mag += math.Abs(term)
			}
		}
		return math.Abs(total)/mag < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGlobalCirculationZeroAnyField: the same telescoping identity for
// the vertex circulation operator (potential-vorticity bookkeeping).
func TestQuickGlobalCirculationZeroAnyField(t *testing.T) {
	m := testMesh(t, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := make([]float64, m.NEdges)
		for i := range u {
			u[i] = rng.NormFloat64() * 100
		}
		total, mag := 0.0, 0.0
		for v := int32(0); v < int32(m.NVertices); v++ {
			for j, e := range m.VertexEdges(v) {
				term := float64(m.EdgeSignOnVertex[int(v)*VertexDegree+j]) * m.DcEdge[e] * u[e]
				total += term
				mag += math.Abs(term)
			}
		}
		return math.Abs(total)/mag < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCurlGradZeroAnyField: curl(grad(psi)) = 0 to roundoff for
// arbitrary (not merely smooth) cell fields — a purely combinatorial
// mimetic identity.
func TestQuickCurlGradZeroAnyField(t *testing.T) {
	m := testMesh(t, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		psi := make([]float64, m.NCells)
		for i := range psi {
			psi[i] = rng.NormFloat64() * 1e4
		}
		grad := make([]float64, m.NEdges)
		for e := int32(0); e < int32(m.NEdges); e++ {
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			grad[e] = (psi[c2] - psi[c1]) / m.DcEdge[e]
		}
		for v := int32(0); v < int32(m.NVertices); v++ {
			circ, mag := 0.0, 0.0
			for j, e := range m.VertexEdges(v) {
				term := float64(m.EdgeSignOnVertex[int(v)*VertexDegree+j]) * m.DcEdge[e] * grad[e]
				circ += term
				mag += math.Abs(term)
			}
			if mag > 0 && math.Abs(circ)/mag > 1e-11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
