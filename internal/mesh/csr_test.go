package mesh

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"

	"repro/internal/geom"
	"repro/internal/icosa"
)

func addrOf64(s []float64) uintptr { return uintptr(unsafe.Pointer(unsafe.SliceData(s))) }
func addrOf32(s []float32) uintptr { return uintptr(unsafe.Pointer(unsafe.SliceData(s))) }
func addrOfI32(s []int32) uintptr  { return uintptr(unsafe.Pointer(unsafe.SliceData(s))) }

// jitteredMesh builds a valid SCVT mesh from seeded tangential jitter of the
// icosahedral generators (the same construction internal/conform uses for
// its random cases, reproduced here because mesh cannot import conform).
func jitteredMesh(t *testing.T, seed uint64, level int) *Mesh {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	tri := icosa.Generate(level)
	base := append([]geom.Vec3(nil), tri.Nodes...)
	spacing := math.Sqrt(4 * math.Pi / float64(len(base)))
	jitter := 0.15 * spacing
	dx := make([]geom.Vec3, len(base))
	for i, p := range base {
		w := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		dx[i] = geom.ProjectToTangent(p, w)
	}
	for try := 0; try < 5; try++ {
		for i, p := range base {
			tri.Nodes[i] = p.Add(dx[i].Scale(jitter)).Normalize()
		}
		m, err := FromTriangulation(tri, Options{})
		if err == nil {
			if err = m.Validate(); err == nil {
				return m
			}
		}
		jitter /= 2
	}
	copy(tri.Nodes, base)
	m, err := FromTriangulation(tri, Options{})
	if err != nil {
		t.Fatalf("unperturbed icosa mesh failed: %v", err)
	}
	return m
}

// TestPackCSRRoundTrip is the property test backing the unchecked compiled
// kernels: on a family of seeded jittered meshes, the CSR image must
// reproduce the strided connectivity exactly — same rows, same j-order, same
// weights bit for bit — and every emitted column must be in range.
func TestPackCSRRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		seed  uint64
		level int
	}{{1, 2}, {2, 2}, {3, 3}, {4, 3}, {0xdead, 3}, {42, 4}} {
		m := jitteredMesh(t, tc.seed, tc.level)
		c, err := m.PackCSR()
		if err != nil {
			t.Fatalf("seed %d level %d: PackCSR: %v", tc.seed, tc.level, err)
		}
		if c.NCells != m.NCells || c.NEdges != m.NEdges || c.NVertices != m.NVertices {
			t.Fatalf("seed %d: entity counts differ", tc.seed)
		}
		if got, want := len(c.CellPtr), m.NCells+1; got != want {
			t.Fatalf("seed %d: len(CellPtr) = %d, want %d", tc.seed, got, want)
		}
		for cell := 0; cell < m.NCells; cell++ {
			lo, hi := c.CellRow(cell)
			n := int(m.NEdgesOnCell[cell])
			if hi-lo != n {
				t.Fatalf("seed %d: cell %d row length %d, want %d", tc.seed, cell, hi-lo, n)
			}
			base := cell * MaxEdges
			for j := 0; j < n; j++ {
				if c.CellEdges[lo+j] != m.EdgesOnCell[base+j] {
					t.Fatalf("seed %d: CellEdges[%d][%d] mismatch", tc.seed, cell, j)
				}
				if c.CellCells[lo+j] != m.CellsOnCell[base+j] {
					t.Fatalf("seed %d: CellCells[%d][%d] mismatch", tc.seed, cell, j)
				}
				if c.CellVerts[lo+j] != m.VerticesOnCell[base+j] {
					t.Fatalf("seed %d: CellVerts[%d][%d] mismatch", tc.seed, cell, j)
				}
			}
		}
		for e := 0; e < m.NEdges; e++ {
			lo, hi := c.EdgeRow(e)
			n := int(m.NEdgesOnEdge[e])
			if hi-lo != n {
				t.Fatalf("seed %d: edge %d stencil length %d, want %d", tc.seed, e, hi-lo, n)
			}
			base := e * MaxEdgesOnEdge
			for j := 0; j < n; j++ {
				if c.EdgeEdges[lo+j] != m.EdgesOnEdge[base+j] {
					t.Fatalf("seed %d: EdgeEdges[%d][%d] mismatch", tc.seed, e, j)
				}
				if c.EdgeWeights[lo+j] != m.WeightsOnEdge[base+j] {
					t.Fatalf("seed %d: EdgeWeights[%d][%d] not bitwise equal", tc.seed, e, j)
				}
			}
		}
		// The in-range property the unchecked kernels rely on.
		for k, e := range c.CellEdges {
			if e < 0 || int(e) >= m.NEdges {
				t.Fatalf("seed %d: CellEdges[%d] = %d out of range", tc.seed, k, e)
			}
		}
		for k, e := range c.EdgeEdges {
			if e < 0 || int(e) >= m.NEdges {
				t.Fatalf("seed %d: EdgeEdges[%d] = %d out of range", tc.seed, k, e)
			}
		}
		if c.Bytes() <= 0 {
			t.Fatalf("seed %d: CSR Bytes() not positive", tc.seed)
		}
	}
}

// TestPackCSRRejectsCorruptIndex pins the validation contract: a column
// outside its entity range must fail the pack, never escape into the image.
func TestPackCSRRejectsCorruptIndex(t *testing.T) {
	m := jitteredMesh(t, 7, 2)
	corrupt := []struct {
		name string
		poke func()
	}{
		{"EdgesOnCell", func() { m.EdgesOnCell[0] = int32(m.NEdges) }},
		{"CellsOnCell", func() { m.CellsOnCell[0] = -1 }},
		{"VerticesOnCell", func() { m.VerticesOnCell[0] = int32(m.NVertices) }},
		{"EdgesOnEdge", func() { m.EdgesOnEdge[0] = int32(m.NEdges) }},
		{"CellsOnEdge", func() { m.CellsOnEdge[0] = -2 }},
		{"VerticesOnEdge", func() { m.VerticesOnEdge[0] = int32(m.NVertices) }},
		{"CellsOnVertex", func() { m.CellsOnVertex[0] = int32(m.NCells) }},
		{"EdgesOnVertex", func() { m.EdgesOnVertex[0] = -1 }},
		{"NEdgesOnCell", func() { m.NEdgesOnCell[0] = MaxEdges + 1 }},
		{"NEdgesOnEdge", func() { m.NEdgesOnEdge[0] = -1 }},
	}
	for _, tc := range corrupt {
		mm := jitteredMesh(t, 7, 2)
		*m = *mm // fresh copy per corruption
		tc.poke()
		if _, err := m.PackCSR(); err == nil {
			t.Errorf("%s: corrupt index passed PackCSR", tc.name)
		}
	}
}

// TestAlignedAllocators checks alignment, length and tail padding of the SoA
// allocators across awkward sizes.
func TestAlignedAllocators(t *testing.T) {
	for _, n := range []int{0, 1, 5, 7, 8, 9, 63, 64, 65, 1000, 40962} {
		f64 := AlignedFloat64(n)
		f32 := AlignedFloat32(n)
		i32 := AlignedInt32(n)
		if len(f64) != n || len(f32) != n || len(i32) != n {
			t.Fatalf("n=%d: wrong length", n)
		}
		if cap(f64)%8 != 0 || cap(f32)%16 != 0 || cap(i32)%16 != 0 {
			t.Errorf("n=%d: capacity not padded to a full line block (%d/%d/%d)",
				n, cap(f64), cap(f32), cap(i32))
		}
		if n == 0 {
			continue
		}
		if a := addrOf64(f64); a%64 != 0 {
			t.Errorf("n=%d: float64 base %#x not 64-byte aligned", n, a)
		}
		if a := addrOf32(f32); a%64 != 0 {
			t.Errorf("n=%d: float32 base %#x not 64-byte aligned", n, a)
		}
		if a := addrOfI32(i32); a%64 != 0 {
			t.Errorf("n=%d: int32 base %#x not 64-byte aligned", n, a)
		}
	}
}
