package mesh

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// This file implements locality renumbering: relabel the mesh's cells along
// a spherical space-filling curve (geom.SFCKey) and induce edge and vertex
// numberings by first touch from the new cell order. The paper's Figure-6
// ladder is a memory-access-pattern ladder; after the SoA/CSR/BCE rungs
// (PR 7) the remaining large-mesh fallout is that the raw icosahedral
// subdivision numbering scatters every indirect gather (cellsOnCell,
// edgesOnCell, the TRiSK stencil) across distant cache lines. Renumbering
// brings geometric neighbors together in index space so those gathers land
// in lines that are already resident.
//
// The renumbering is a pure relabeling: every per-entity row keeps its
// counterclockwise j-order and its orientation signs, so every kernel
// gather performs the identical per-element arithmetic and a reordered run
// is exactly a permutation of the canonical run (0 ULP; internal/conform
// proves this). External-facing state — checkpoints, result files, gathered
// fields, hashes — stays in canonical numbering via the retained
// forward/inverse maps.

// Reorder is a locality renumbering of one mesh: mutually inverse
// permutations for cells, edges and vertices. Perm maps canonical (old)
// indices to renumbered (new) indices; Inv maps back.
type Reorder struct {
	CellPerm []int32 // canonical cell -> renumbered cell
	CellInv  []int32 // renumbered cell -> canonical cell
	EdgePerm []int32
	EdgeInv  []int32
	VertPerm []int32
	VertInv  []int32
}

// ComputeReorder derives the locality renumbering of m: cells sorted by
// spherical SFC key (ties broken by canonical index, so the result is
// deterministic), edges and vertices numbered in first-touch order of the
// new cell sweep — the order the compiled kernels' gathers will visit them.
func ComputeReorder(m *Mesh) *Reorder {
	r := &Reorder{
		CellPerm: make([]int32, m.NCells),
		CellInv:  make([]int32, m.NCells),
		EdgePerm: make([]int32, m.NEdges),
		EdgeInv:  make([]int32, m.NEdges),
		VertPerm: make([]int32, m.NVertices),
		VertInv:  make([]int32, m.NVertices),
	}
	keys := make([]uint64, m.NCells)
	for c := range keys {
		keys[c] = geom.SFCKey(m.XCell[c])
	}
	order := make([]int32, m.NCells)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	})
	for n, old := range order {
		r.CellInv[n] = old
		r.CellPerm[old] = int32(n)
	}

	// First-touch edge/vertex numbering: sweep cells in the new order and
	// hand out indices the first time each incident edge/vertex appears.
	// On a closed mesh every edge and vertex is incident to some cell, so
	// both sweeps assign every index exactly once.
	for i := range r.EdgePerm {
		r.EdgePerm[i] = -1
	}
	for i := range r.VertPerm {
		r.VertPerm[i] = -1
	}
	var ne, nv int32
	for n := 0; n < m.NCells; n++ {
		old := r.CellInv[n]
		for _, e := range m.CellEdges(old) {
			if r.EdgePerm[e] < 0 {
				r.EdgePerm[e] = ne
				r.EdgeInv[ne] = e
				ne++
			}
		}
		for _, v := range m.CellVertices(old) {
			if r.VertPerm[v] < 0 {
				r.VertPerm[v] = nv
				r.VertInv[nv] = v
				nv++
			}
		}
	}
	return r
}

// Validate checks that r is a complete set of mutually inverse bijections
// sized for m. Apply calls it, so a corrupt permutation can never produce a
// silently mis-wired mesh.
func (r *Reorder) Validate(m *Mesh) error {
	if err := checkPerm("cell", r.CellPerm, r.CellInv, m.NCells); err != nil {
		return err
	}
	if err := checkPerm("edge", r.EdgePerm, r.EdgeInv, m.NEdges); err != nil {
		return err
	}
	return checkPerm("vertex", r.VertPerm, r.VertInv, m.NVertices)
}

func checkPerm(kind string, perm, inv []int32, n int) error {
	if len(perm) != n || len(inv) != n {
		return fmt.Errorf("reorder: %s maps sized %d/%d, mesh has %d", kind, len(perm), len(inv), n)
	}
	for old, nw := range perm {
		if nw < 0 || int(nw) >= n {
			return fmt.Errorf("reorder: %s %d maps to %d outside [0,%d)", kind, old, nw, n)
		}
		if inv[nw] != int32(old) {
			return fmt.Errorf("reorder: %s maps not inverse at %d -> %d -> %d", kind, old, nw, inv[nw])
		}
	}
	return nil
}

// Apply returns a new mesh relabeled by r; m is not modified (callers such
// as the serve daemon share one cached canonical mesh across jobs). Every
// connectivity row keeps its j-order and signs, entries are remapped through
// the permutations, and geometry/metric/weight values are carried over
// bitwise, so kernels on the result perform a 0-ULP permutation of the
// canonical run.
func (r *Reorder) Apply(m *Mesh) (*Mesh, error) {
	if err := r.Validate(m); err != nil {
		return nil, err
	}
	nm := NewEmpty(m.Radius, m.NCells, m.NEdges, m.NVertices, m.Level)
	for old := 0; old < m.NCells; old++ {
		n := int(r.CellPerm[old])
		nm.XCell[n] = m.XCell[old]
		nm.LatCell[n] = m.LatCell[old]
		nm.LonCell[n] = m.LonCell[old]
		nm.AreaCell[n] = m.AreaCell[old]
		nm.FCell[n] = m.FCell[old]
		deg := int(m.NEdgesOnCell[old])
		nm.NEdgesOnCell[n] = int32(deg)
		ob, nb := old*MaxEdges, n*MaxEdges
		for j := 0; j < deg; j++ {
			nm.EdgesOnCell[nb+j] = r.EdgePerm[m.EdgesOnCell[ob+j]]
			nm.VerticesOnCell[nb+j] = r.VertPerm[m.VerticesOnCell[ob+j]]
			nm.CellsOnCell[nb+j] = r.CellPerm[m.CellsOnCell[ob+j]]
			nm.EdgeSignOnCell[nb+j] = m.EdgeSignOnCell[ob+j]
		}
	}
	for old := 0; old < m.NEdges; old++ {
		n := int(r.EdgePerm[old])
		nm.XEdge[n] = m.XEdge[old]
		nm.LatEdge[n] = m.LatEdge[old]
		nm.LonEdge[n] = m.LonEdge[old]
		nm.EdgeNormal[n] = m.EdgeNormal[old]
		nm.EdgeTangent[n] = m.EdgeTangent[old]
		nm.AngleEdge[n] = m.AngleEdge[old]
		nm.DcEdge[n] = m.DcEdge[old]
		nm.DvEdge[n] = m.DvEdge[old]
		nm.FEdge[n] = m.FEdge[old]
		// The cell pair keeps its order, so the positive normal direction
		// (first cell -> second cell) and with it every orientation sign is
		// unchanged by the relabeling.
		nm.CellsOnEdge[2*n] = r.CellPerm[m.CellsOnEdge[2*old]]
		nm.CellsOnEdge[2*n+1] = r.CellPerm[m.CellsOnEdge[2*old+1]]
		nm.VerticesOnEdge[2*n] = r.VertPerm[m.VerticesOnEdge[2*old]]
		nm.VerticesOnEdge[2*n+1] = r.VertPerm[m.VerticesOnEdge[2*old+1]]
		ns := int(m.NEdgesOnEdge[old])
		nm.NEdgesOnEdge[n] = int32(ns)
		ob, nb := old*MaxEdgesOnEdge, n*MaxEdgesOnEdge
		for j := 0; j < ns; j++ {
			nm.EdgesOnEdge[nb+j] = r.EdgePerm[m.EdgesOnEdge[ob+j]]
			nm.WeightsOnEdge[nb+j] = m.WeightsOnEdge[ob+j]
		}
	}
	for old := 0; old < m.NVertices; old++ {
		n := int(r.VertPerm[old])
		nm.XVertex[n] = m.XVertex[old]
		nm.LatVertex[n] = m.LatVertex[old]
		nm.AreaTriangle[n] = m.AreaTriangle[old]
		nm.FVertex[n] = m.FVertex[old]
		ob, nb := old*VertexDegree, n*VertexDegree
		for j := 0; j < VertexDegree; j++ {
			nm.CellsOnVertex[nb+j] = r.CellPerm[m.CellsOnVertex[ob+j]]
			nm.EdgesOnVertex[nb+j] = r.EdgePerm[m.EdgesOnVertex[ob+j]]
			nm.KiteAreasOnVertex[nb+j] = m.KiteAreasOnVertex[ob+j]
			nm.EdgeSignOnVertex[nb+j] = m.EdgeSignOnVertex[ob+j]
		}
	}
	return nm, nil
}

// Canonical-order converters. "Canonical" is the numbering of the mesh
// ComputeReorder was called on; src and dst must not alias. These are the
// only bridge external-facing state needs: checkpoints, gathered result
// fields and hashes stay canonical at the boundary while the solver runs
// renumbered.

// CellToCanonical scatters a renumbered cell field into canonical order.
func (r *Reorder) CellToCanonical(dst, src []float64) {
	for nw, old := range r.CellInv {
		dst[old] = src[nw]
	}
}

// CellFromCanonical gathers a canonical cell field into renumbered order.
func (r *Reorder) CellFromCanonical(dst, src []float64) {
	for nw, old := range r.CellInv {
		dst[nw] = src[old]
	}
}

// EdgeToCanonical scatters a renumbered edge field into canonical order.
func (r *Reorder) EdgeToCanonical(dst, src []float64) {
	for nw, old := range r.EdgeInv {
		dst[old] = src[nw]
	}
}

// EdgeFromCanonical gathers a canonical edge field into renumbered order.
func (r *Reorder) EdgeFromCanonical(dst, src []float64) {
	for nw, old := range r.EdgeInv {
		dst[nw] = src[old]
	}
}

// Locality summarizes how far, in index space, the mesh's gather stencils
// reach. All numbers are mean absolute index distances in CELL units
// (edge-space distances are scaled by NCells/NEdges ~ 1/3) so they are
// comparable across entity kinds and mesh sizes; smaller means gathers land
// nearer in memory.
type Locality struct {
	MeanCellCell float64 `json:"mean_cell_cell"` // cellsOnCell vs owning cell
	MeanCellEdge float64 `json:"mean_cell_edge"` // edgesOnCell vs expected edge position
	MeanEdgeCell float64 `json:"mean_edge_cell"` // cellsOnEdge vs expected cell position
	MeanEdgeEdge float64 `json:"mean_edge_edge"` // TRiSK stencil vs owning edge
	Mean         float64 `json:"mean"`           // weighted over all stencil entries
}

// NeighborLocality measures the mean neighbor index distance of every
// gather stencil the step kernels traverse. The cross-space terms compare
// against the proportional position (cell c expects its edges near
// c*NEdges/NCells and vice versa), which is exactly where a first-touch
// numbering puts them.
func (m *Mesh) NeighborLocality() Locality {
	var l Locality
	edgePerCell := float64(m.NEdges) / float64(m.NCells)
	toCells := 1 / edgePerCell // edge-index distance -> cell units
	var nCC, nCE, nEC, nEE int
	for c := int32(0); c < int32(m.NCells); c++ {
		for _, nb := range m.CellNeighbors(c) {
			l.MeanCellCell += absInt32(nb - c)
			nCC++
		}
		expect := float64(c) * edgePerCell
		for _, e := range m.CellEdges(c) {
			l.MeanCellEdge += absFloat(float64(e)-expect) * toCells
			nCE++
		}
	}
	for e := int32(0); e < int32(m.NEdges); e++ {
		expect := float64(e) * toCells
		l.MeanEdgeCell += absFloat(float64(m.CellsOnEdge[2*e]) - expect)
		l.MeanEdgeCell += absFloat(float64(m.CellsOnEdge[2*e+1]) - expect)
		nEC += 2
		stencil, _ := m.EdgeStencil(e)
		for _, eoe := range stencil {
			l.MeanEdgeEdge += absInt32(eoe-e) * toCells
			nEE++
		}
	}
	l.Mean = (l.MeanCellCell + l.MeanCellEdge + l.MeanEdgeCell + l.MeanEdgeEdge) /
		float64(nCC+nCE+nEC+nEE)
	l.MeanCellCell /= float64(nCC)
	l.MeanCellEdge /= float64(nCE)
	l.MeanEdgeCell /= float64(nEC)
	l.MeanEdgeEdge /= float64(nEE)
	return l
}

func absInt32(d int32) float64 {
	if d < 0 {
		return float64(-d)
	}
	return float64(d)
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
