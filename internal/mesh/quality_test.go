package mesh

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestQualityUniformMesh(t *testing.T) {
	q := testMesh(t, 4).ComputeQuality()
	// Voronoi-Delaunay duality makes primal and dual edges orthogonal by
	// construction (up to the edge-midpoint approximation).
	if q.MaxOrthogonality > 0.06 {
		t.Errorf("max orthogonality deviation %v rad", q.MaxOrthogonality)
	}
	if q.MeanOrthogonality > 0.01 {
		t.Errorf("mean orthogonality deviation %v rad", q.MeanOrthogonality)
	}
	if q.MaxOffCentering > 0.25 {
		t.Errorf("off-centering %v", q.MaxOffCentering)
	}
	if q.AreaRatio > 1.9 {
		t.Errorf("area ratio %v on quasi-uniform mesh", q.AreaRatio)
	}
	if q.MinDistortion < 0.7 {
		t.Errorf("distortion %v", q.MinDistortion)
	}
	if q.MaxCentroidDrift > 0.12 {
		t.Errorf("centroid drift %v after Lloyd", q.MaxCentroidDrift)
	}
}

func TestQualityLloydReducesCentroidDrift(t *testing.T) {
	q0 := MustBuild(3, Options{}).ComputeQuality()
	q4 := MustBuild(3, Options{LloydIterations: 6}).ComputeQuality()
	if q4.MaxCentroidDrift >= q0.MaxCentroidDrift {
		t.Errorf("Lloyd did not reduce centroid drift: %v -> %v",
			q0.MaxCentroidDrift, q4.MaxCentroidDrift)
	}
}

func TestQualityVariableResolutionAreaRatio(t *testing.T) {
	center := geom.FromLatLon(math.Pi/6, 3*math.Pi/2)
	vr := MustBuild(3, Options{LloydIterations: 60, LloydRelaxation: 1.5,
		Density: refinementDensity(center, 0.5)})
	qv := vr.ComputeQuality()
	qu := testMesh(t, 3).ComputeQuality()
	if qv.AreaRatio <= qu.AreaRatio {
		t.Errorf("variable-resolution area ratio %v not above uniform %v",
			qv.AreaRatio, qu.AreaRatio)
	}
	// Orthogonality must survive the deformation (TRiSK stays valid).
	if qv.MaxOrthogonality > 0.25 {
		t.Errorf("variable-resolution orthogonality %v too degraded", qv.MaxOrthogonality)
	}
}
