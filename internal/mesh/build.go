package mesh

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/icosa"
)

// Options controls SCVT mesh construction.
type Options struct {
	// Radius is the sphere radius in meters. Zero means geom.EarthRadius.
	Radius float64
	// LloydIterations is the number of centroidal relaxation sweeps applied
	// after the icosahedral Voronoi mesh is built. The subdivided
	// icosahedron is already quasi-uniform; a few sweeps push the
	// generators toward the Voronoi centroids (the "C" in SCVT). The cell
	// connectivity is unchanged by relaxation, which is valid for the small
	// displacements involved on these meshes.
	LloydIterations int
	// Density, when non-nil, makes the Lloyd sweeps density-weighted,
	// producing a VARIABLE-RESOLUTION SCVT: cell spacing scales as
	// Density^(-1/4), concentrating resolution where Density is large —
	// the multiresolution capability MPAS is built around (paper §2.B,
	// Ringler et al. 2011). Because connectivity stays fixed to the
	// icosahedral topology, keep the implied spacing contrast mild
	// (roughly 2:1, i.e. Density contrast up to ~16:1). Lloyd converges
	// slowly for large-scale density redistribution (information moves
	// about one cell per sweep); production SCVT generators run thousands
	// of sweeps, and LloydRelaxation accelerates the drift here.
	Density func(p geom.Vec3) float64
	// LloydRelaxation over-relaxes each sweep: the generator moves
	// LloydRelaxation times the distance to its (weighted) centroid.
	// Zero means 1 (plain Lloyd); values up to ~1.9 are stable and speed
	// up variable-resolution convergence roughly proportionally.
	LloydRelaxation float64
}

// Build constructs the SCVT mesh for the given icosahedral subdivision level.
func Build(level int, opt Options) (*Mesh, error) {
	tri := icosa.Generate(level)
	return FromTriangulation(tri, opt)
}

// MustBuild is Build, panicking on error; construction errors indicate a
// programming bug rather than bad input.
func MustBuild(level int, opt Options) *Mesh {
	m, err := Build(level, opt)
	if err != nil {
		panic(err)
	}
	return m
}

// FromTriangulation constructs the Voronoi mesh whose generators are the
// triangulation nodes and whose dual is the given triangulation.
func FromTriangulation(tri *icosa.Triangulation, opt Options) (*Mesh, error) {
	radius := opt.Radius
	if radius == 0 {
		radius = geom.EarthRadius
	}

	m := &Mesh{
		Radius:    radius,
		NCells:    len(tri.Nodes),
		NVertices: len(tri.Triangles),
		Level:     tri.Level,
	}

	// --- Edge extraction from triangle sides -----------------------------
	type edgeRec struct {
		t1, t2 int32 // adjacent triangles (vertices); t2 = -1 until found
	}
	edgeIndex := make(map[[2]int32]int32, len(tri.Triangles)*3/2)
	var edges []edgeRec
	var edgeCells [][2]int32
	for ti, t := range tri.Triangles {
		for k := 0; k < 3; k++ {
			a, b := t[k], t[(k+1)%3]
			key := [2]int32{a, b}
			if a > b {
				key = [2]int32{b, a}
			}
			if ei, ok := edgeIndex[key]; ok {
				if edges[ei].t2 != -1 {
					return nil, fmt.Errorf("mesh: edge %v on more than two triangles", key)
				}
				edges[ei].t2 = int32(ti)
			} else {
				edgeIndex[key] = int32(len(edges))
				edges = append(edges, edgeRec{t1: int32(ti), t2: -1})
				edgeCells = append(edgeCells, key)
			}
		}
	}
	for ei, e := range edges {
		if e.t2 == -1 {
			return nil, fmt.Errorf("mesh: boundary edge %d on closed surface", ei)
		}
	}
	m.NEdges = len(edges)
	m.alloc()

	// --- Positions --------------------------------------------------------
	copy(m.XCell, tri.Nodes)
	for vi, t := range tri.Triangles {
		m.XVertex[vi] = geom.Circumcenter(tri.Nodes[t[0]], tri.Nodes[t[1]], tri.Nodes[t[2]])
	}
	for ei := range edges {
		c1, c2 := edgeCells[ei][0], edgeCells[ei][1]
		m.CellsOnEdge[2*ei] = c1
		m.CellsOnEdge[2*ei+1] = c2
		m.XEdge[ei] = m.XCell[c1].Add(m.XCell[c2]).Normalize()
	}

	// --- VerticesOnEdge with tangent orientation --------------------------
	for ei, e := range edges {
		m.orientEdge(int32(ei), e.t1, e.t2)
	}

	// --- Cell adjacency, counterclockwise ---------------------------------
	if err := m.buildCellAdjacency(edgeIndex); err != nil {
		return nil, err
	}

	// --- Vertex adjacency --------------------------------------------------
	if err := m.buildVertexAdjacency(tri, edgeIndex); err != nil {
		return nil, err
	}

	m.computeMetrics()
	m.computeSigns()

	omega := opt.LloydRelaxation
	if omega == 0 {
		omega = 1
	}
	for it := 0; it < opt.LloydIterations; it++ {
		m.lloydSweep(opt.Density, omega)
	}

	m.computeWeightsOnEdge()
	m.computeEdgeFrames()
	m.computeLatLon()
	return m, nil
}

// orientEdge fills VerticesOnEdge for edge e so that the first->second vertex
// direction matches k x n (n = normal from first to second cell).
func (m *Mesh) orientEdge(e, t1, t2 int32) {
	c1 := m.CellsOnEdge[2*e]
	c2 := m.CellsOnEdge[2*e+1]
	xe := m.XEdge[e]
	n := geom.ProjectToTangent(xe, m.XCell[c2].Sub(m.XCell[c1])).Normalize()
	t := xe.Cross(n) // k x n
	d := m.XVertex[t2].Sub(m.XVertex[t1])
	if d.Dot(t) >= 0 {
		m.VerticesOnEdge[2*e] = t1
		m.VerticesOnEdge[2*e+1] = t2
	} else {
		m.VerticesOnEdge[2*e] = t2
		m.VerticesOnEdge[2*e+1] = t1
	}
}

// buildCellAdjacency fills NEdgesOnCell, EdgesOnCell (CCW), CellsOnCell and
// VerticesOnCell.
func (m *Mesh) buildCellAdjacency(edgeIndex map[[2]int32]int32) error {
	incident := make([][]int32, m.NCells)
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		incident[c1] = append(incident[c1], int32(e))
		incident[c2] = append(incident[c2], int32(e))
	}
	for c := 0; c < m.NCells; c++ {
		es := incident[c]
		n := len(es)
		if n < 5 || n > MaxEdges {
			return fmt.Errorf("mesh: cell %d has %d edges", c, n)
		}
		m.NEdgesOnCell[c] = int32(n)
		// Sort edges counterclockwise by azimuth of the edge midpoint in
		// the cell's local (east, north) frame.
		xc := m.XCell[c]
		east, north := geom.East(xc), geom.North(xc)
		sort.Slice(es, func(i, j int) bool {
			return edgeAzimuth(xc, east, north, m.XEdge[es[i]]) < edgeAzimuth(xc, east, north, m.XEdge[es[j]])
		})
		base := c * MaxEdges
		for j, e := range es {
			m.EdgesOnCell[base+j] = e
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			if c1 == int32(c) {
				m.CellsOnCell[base+j] = c2
			} else {
				m.CellsOnCell[base+j] = c1
			}
		}
		// VerticesOnCell[j] = vertex shared by edges j and j+1.
		for j := 0; j < n; j++ {
			e1 := m.EdgesOnCell[base+j]
			e2 := m.EdgesOnCell[base+(j+1)%n]
			v, ok := sharedVertex(m, e1, e2)
			if !ok {
				return fmt.Errorf("mesh: cell %d consecutive edges %d,%d share no vertex", c, e1, e2)
			}
			m.VerticesOnCell[base+j] = v
		}
	}
	_ = edgeIndex
	return nil
}

func edgeAzimuth(xc, east, north, xe geom.Vec3) float64 {
	d := geom.ProjectToTangent(xc, xe.Sub(xc))
	return math.Atan2(d.Dot(north), d.Dot(east))
}

func sharedVertex(m *Mesh, e1, e2 int32) (int32, bool) {
	a1, a2 := m.VerticesOnEdge[2*e1], m.VerticesOnEdge[2*e1+1]
	b1, b2 := m.VerticesOnEdge[2*e2], m.VerticesOnEdge[2*e2+1]
	switch {
	case a1 == b1 || a1 == b2:
		return a1, true
	case a2 == b1 || a2 == b2:
		return a2, true
	}
	return -1, false
}

// buildVertexAdjacency fills CellsOnVertex (CCW) and EdgesOnVertex, where
// EdgesOnVertex[v][j] joins CellsOnVertex[v][j] and CellsOnVertex[v][j+1].
func (m *Mesh) buildVertexAdjacency(tri *icosa.Triangulation, edgeIndex map[[2]int32]int32) error {
	for v, t := range tri.Triangles {
		// Triangulation triangles are CCW already.
		base := v * VertexDegree
		for j := 0; j < 3; j++ {
			m.CellsOnVertex[base+j] = t[j]
		}
		for j := 0; j < 3; j++ {
			a, b := t[j], t[(j+1)%3]
			key := [2]int32{a, b}
			if a > b {
				key = [2]int32{b, a}
			}
			e, ok := edgeIndex[key]
			if !ok {
				return fmt.Errorf("mesh: vertex %d missing edge (%d,%d)", v, a, b)
			}
			m.EdgesOnVertex[base+j] = e
		}
	}
	return nil
}

// computeMetrics fills all lengths and areas from current positions.
func (m *Mesh) computeMetrics() {
	r := m.Radius
	r2 := r * r
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
		m.DcEdge[e] = r * geom.ArcLength(m.XCell[c1], m.XCell[c2])
		m.DvEdge[e] = r * geom.ArcLength(m.XVertex[v1], m.XVertex[v2])
	}
	var poly [MaxEdges]geom.Vec3
	for c := 0; c < m.NCells; c++ {
		vs := m.CellVertices(int32(c))
		for j, v := range vs {
			poly[j] = m.XVertex[v]
		}
		m.AreaCell[c] = r2 * geom.SphericalPolygonArea(poly[:len(vs)])
	}
	for v := 0; v < m.NVertices; v++ {
		cs := m.VertexCells(int32(v))
		m.AreaTriangle[v] = r2 * geom.SphericalTriangleArea(m.XCell[cs[0]], m.XCell[cs[1]], m.XCell[cs[2]])
		// Kite for cell cs[j]: quadrilateral (cell center, midpoint of edge
		// into j, vertex position, midpoint of edge out of j). With the
		// EdgesOnVertex convention, edge j joins cells j and j+1, so cell j
		// touches edges j-1 (from cell j-1) and j (to cell j+1).
		es := m.VertexEdges(int32(v))
		for j := 0; j < VertexDegree; j++ {
			ein := es[(j+VertexDegree-1)%VertexDegree]
			eout := es[j]
			quad := []geom.Vec3{m.XCell[cs[j]], m.XEdge[eout], m.XVertex[v], m.XEdge[ein]}
			m.KiteAreasOnVertex[v*VertexDegree+j] = r2 * geom.SphericalPolygonArea(quad)
		}
	}
}

// computeSigns fills EdgeSignOnCell and EdgeSignOnVertex.
func (m *Mesh) computeSigns() {
	for c := 0; c < m.NCells; c++ {
		base := c * MaxEdges
		for j, e := range m.CellEdges(int32(c)) {
			if m.CellsOnEdge[2*e] == int32(c) {
				m.EdgeSignOnCell[base+j] = 1 // normal points out of c
			} else {
				m.EdgeSignOnCell[base+j] = -1
			}
		}
	}
	for v := 0; v < m.NVertices; v++ {
		base := v * VertexDegree
		for j, e := range m.VertexEdges(int32(v)) {
			// Positive normal direction (cell1 -> cell2) circulates CCW
			// around the vertex on its left, which is VerticesOnEdge[2e+1].
			if m.VerticesOnEdge[2*e+1] == int32(v) {
				m.EdgeSignOnVertex[base+j] = 1
			} else {
				m.EdgeSignOnVertex[base+j] = -1
			}
		}
	}
}

// lloydSweep moves each generator to the (optionally density-weighted)
// centroid of its Voronoi cell and rebuilds the dependent geometry, keeping
// connectivity fixed.
func (m *Mesh) lloydSweep(density func(geom.Vec3) float64, omega float64) {
	newX := make([]geom.Vec3, m.NCells)
	var poly [MaxEdges]geom.Vec3
	for c := 0; c < m.NCells; c++ {
		vs := m.CellVertices(int32(c))
		for j, v := range vs {
			poly[j] = m.XVertex[v]
		}
		g := geom.WeightedPolygonCentroid(poly[:len(vs)], density)
		if omega == 1 {
			newX[c] = g
		} else {
			step := g.Sub(m.XCell[c]).Scale(omega)
			newX[c] = m.XCell[c].Add(step).Normalize()
		}
	}
	copy(m.XCell, newX)
	m.recomputeDerivedGeometry()
}

// recomputeDerivedGeometry refreshes vertex and edge positions, metrics and
// signs after generators move (connectivity unchanged).
func (m *Mesh) recomputeDerivedGeometry() {
	for v := 0; v < m.NVertices; v++ {
		cs := m.VertexCells(int32(v))
		m.XVertex[v] = geom.Circumcenter(m.XCell[cs[0]], m.XCell[cs[1]], m.XCell[cs[2]])
	}
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		m.XEdge[e] = m.XCell[c1].Add(m.XCell[c2]).Normalize()
	}
	m.computeMetrics()
}

// computeEdgeFrames fills EdgeNormal, EdgeTangent and AngleEdge.
func (m *Mesh) computeEdgeFrames() {
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		xe := m.XEdge[e]
		n := geom.ProjectToTangent(xe, m.XCell[c2].Sub(m.XCell[c1])).Normalize()
		m.EdgeNormal[e] = n
		m.EdgeTangent[e] = xe.Cross(n)
		zonal, meridional := geom.TangentComponents(xe, n)
		m.AngleEdge[e] = math.Atan2(meridional, zonal)
	}
}

func (m *Mesh) computeLatLon() {
	for c := 0; c < m.NCells; c++ {
		m.LatCell[c] = m.XCell[c].Lat()
		m.LonCell[c] = m.XCell[c].Lon()
	}
	for e := 0; e < m.NEdges; e++ {
		m.LatEdge[e] = m.XEdge[e].Lat()
		m.LonEdge[e] = m.XEdge[e].Lon()
	}
	for v := 0; v < m.NVertices; v++ {
		m.LatVertex[v] = m.XVertex[v].Lat()
	}
}
