package mesh

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// refinementDensity concentrates resolution around (lat 30N, lon 270E) —
// e.g. to resolve the TC5 mountain region — with a 16:1 density contrast
// (about 2:1 in cell spacing).
func refinementDensity(center geom.Vec3, width float64) func(geom.Vec3) float64 {
	return func(p geom.Vec3) float64 {
		d := geom.ArcLength(p, center)
		t := 0.5 * (1 + math.Tanh((width-d)/(width/2)))
		return 1 + 15*t
	}
}

func TestVariableResolutionMesh(t *testing.T) {
	center := geom.FromLatLon(math.Pi/6, 3*math.Pi/2)
	m, err := Build(4, Options{
		LloydIterations: 120,
		LloydRelaxation: 1.5,
		Density:         refinementDensity(center, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The full invariant suite must still hold on the deformed mesh.
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cells near the density peak must be markedly smaller than antipodal
	// ones.
	anti := center.Scale(-1)
	var nearArea, farArea float64
	var nNear, nFar int
	for c := 0; c < m.NCells; c++ {
		switch {
		case geom.ArcLength(m.XCell[c], center) < 0.3:
			nearArea += m.AreaCell[c]
			nNear++
		case geom.ArcLength(m.XCell[c], anti) < 0.3:
			farArea += m.AreaCell[c]
			nFar++
		}
	}
	if nNear == 0 || nFar == 0 {
		t.Fatal("no cells sampled")
	}
	ratio := (farArea / float64(nFar)) / (nearArea / float64(nNear))
	if ratio < 1.3 {
		t.Errorf("refined region not refined: far/near area ratio %.2f", ratio)
	}
	// More cells end up in the refined cap than a uniform mesh would put
	// there.
	uniform := MustBuild(4, Options{LloydIterations: 2})
	uNear := 0
	for c := 0; c < uniform.NCells; c++ {
		if geom.ArcLength(uniform.XCell[c], center) < 0.3 {
			uNear++
		}
	}
	if nNear <= uNear {
		t.Errorf("refined mesh has %d cells in cap, uniform has %d", nNear, uNear)
	}
}

func TestVariableResolutionSolverStable(t *testing.T) {
	// The TRiSK machinery (weights, signs, kites) is rebuilt for the
	// deformed geometry, so the solver should remain conservative on a
	// variable-resolution mesh. (Exercised further in the sw tests via the
	// public API.)
	center := geom.FromLatLon(math.Pi/6, 3*math.Pi/2)
	m, err := Build(3, Options{LloydIterations: 40, LloydRelaxation: 1.5, Density: refinementDensity(center, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform-flow tangential reconstruction must still be accurate.
	u := normalVelocity(m, solidBody(20))
	maxErr, maxV := 0.0, 0.0
	for e := int32(0); e < int32(m.NEdges); e++ {
		es, ws := m.EdgeStencil(e)
		v := 0.0
		for j := range es {
			v += ws[j] * u[es[j]]
		}
		want := solidBody(20)(m.XEdge[e]).Dot(m.EdgeTangent[e])
		if a := math.Abs(want); a > maxV {
			maxV = a
		}
		if d := math.Abs(v - want); d > maxErr {
			maxErr = d
		}
	}
	if maxErr/maxV > 0.12 {
		t.Errorf("tangential reconstruction error %v on variable mesh", maxErr/maxV)
	}
}
