package mesh

import (
	"testing"
)

// reorderSeeds is the jittered-mesh family the reorder property tests run
// over — same construction as the CSR round-trip tests.
var reorderSeeds = []struct {
	seed  uint64
	level int
}{{1, 2}, {2, 2}, {3, 3}, {0xbeef, 3}, {42, 4}}

// TestReorderBijectionAndValidate: the computed maps are mutually inverse
// bijections and the relabeled mesh still satisfies every structural and
// geometric mesh invariant.
func TestReorderBijectionAndValidate(t *testing.T) {
	for _, tc := range reorderSeeds {
		m := jitteredMesh(t, tc.seed, tc.level)
		r := ComputeReorder(m)
		if err := r.Validate(m); err != nil {
			t.Fatalf("seed %d level %d: %v", tc.seed, tc.level, err)
		}
		nm, err := r.Apply(m)
		if err != nil {
			t.Fatalf("seed %d level %d: Apply: %v", tc.seed, tc.level, err)
		}
		if err := nm.Validate(); err != nil {
			t.Fatalf("seed %d level %d: reordered mesh invalid: %v", tc.seed, tc.level, err)
		}
		// Apply must not touch the input mesh (serve shares cached meshes).
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d level %d: Apply corrupted its input: %v", tc.seed, tc.level, err)
		}
	}
}

// TestReorderDeterministic: the same mesh always yields the same maps.
func TestReorderDeterministic(t *testing.T) {
	m := jitteredMesh(t, 5, 3)
	r1, r2 := ComputeReorder(m), ComputeReorder(m)
	for i := range r1.CellPerm {
		if r1.CellPerm[i] != r2.CellPerm[i] {
			t.Fatalf("cell perm differs at %d", i)
		}
	}
	for i := range r1.EdgePerm {
		if r1.EdgePerm[i] != r2.EdgePerm[i] {
			t.Fatalf("edge perm differs at %d", i)
		}
	}
	for i := range r1.VertPerm {
		if r1.VertPerm[i] != r2.VertPerm[i] {
			t.Fatalf("vertex perm differs at %d", i)
		}
	}
}

// TestReorderGeometryCarriedBitwise: values ride the permutation unchanged —
// position, metric and weight arrays of the relabeled mesh are bitwise
// copies of the originals at the mapped indices, and connectivity rows are
// entrywise remapped without any j-order shuffle.
func TestReorderGeometryCarriedBitwise(t *testing.T) {
	m := jitteredMesh(t, 9, 3)
	r := ComputeReorder(m)
	nm, err := r.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	for old := 0; old < m.NCells; old++ {
		n := r.CellPerm[old]
		if nm.XCell[n] != m.XCell[old] || nm.AreaCell[n] != m.AreaCell[old] {
			t.Fatalf("cell %d geometry not carried bitwise", old)
		}
		deg := int(m.NEdgesOnCell[old])
		if int(nm.NEdgesOnCell[n]) != deg {
			t.Fatalf("cell %d degree changed", old)
		}
		for j := 0; j < deg; j++ {
			if nm.EdgesOnCell[int(n)*MaxEdges+j] != r.EdgePerm[m.EdgesOnCell[old*MaxEdges+j]] {
				t.Fatalf("cell %d edge slot %d not remapped in place", old, j)
			}
			if nm.EdgeSignOnCell[int(n)*MaxEdges+j] != m.EdgeSignOnCell[old*MaxEdges+j] {
				t.Fatalf("cell %d sign slot %d changed", old, j)
			}
		}
	}
	for old := 0; old < m.NEdges; old++ {
		n := r.EdgePerm[old]
		if nm.DcEdge[n] != m.DcEdge[old] || nm.EdgeNormal[n] != m.EdgeNormal[old] {
			t.Fatalf("edge %d geometry not carried bitwise", old)
		}
		if nm.CellsOnEdge[2*n] != r.CellPerm[m.CellsOnEdge[2*old]] ||
			nm.CellsOnEdge[2*n+1] != r.CellPerm[m.CellsOnEdge[2*old+1]] {
			t.Fatalf("edge %d cell pair reordered", old)
		}
		ns := int(m.NEdgesOnEdge[old])
		for j := 0; j < ns; j++ {
			if nm.WeightsOnEdge[int(n)*MaxEdgesOnEdge+j] != m.WeightsOnEdge[old*MaxEdgesOnEdge+j] {
				t.Fatalf("edge %d TRiSK weight %d changed", old, j)
			}
		}
	}
}

// TestReorderCSRRoundTrip: the CSR image of the relabeled mesh is exactly
// the permuted CSR image of the original — row of new cell n equals the
// entrywise-remapped row of canonical cell CellInv[n], weights bit for bit.
func TestReorderCSRRoundTrip(t *testing.T) {
	for _, tc := range reorderSeeds {
		m := jitteredMesh(t, tc.seed, tc.level)
		r := ComputeReorder(m)
		nm, err := r.Apply(m)
		if err != nil {
			t.Fatal(err)
		}
		c0, err := m.PackCSR()
		if err != nil {
			t.Fatalf("canonical PackCSR: %v", err)
		}
		c1, err := nm.PackCSR()
		if err != nil {
			t.Fatalf("reordered PackCSR: %v", err)
		}
		for n := 0; n < nm.NCells; n++ {
			old := int(r.CellInv[n])
			lo1, hi1 := c1.CellRow(n)
			lo0, hi0 := c0.CellRow(old)
			if hi1-lo1 != hi0-lo0 {
				t.Fatalf("cell %d CSR row length changed", old)
			}
			for j := 0; j < hi0-lo0; j++ {
				if c1.CellEdges[lo1+j] != r.EdgePerm[c0.CellEdges[lo0+j]] ||
					c1.CellCells[lo1+j] != r.CellPerm[c0.CellCells[lo0+j]] ||
					c1.CellVerts[lo1+j] != r.VertPerm[c0.CellVerts[lo0+j]] {
					t.Fatalf("cell %d CSR row entry %d not the remapped original", old, j)
				}
			}
		}
		for n := 0; n < nm.NEdges; n++ {
			old := int(r.EdgeInv[n])
			lo1, hi1 := c1.EdgeRow(n)
			lo0, hi0 := c0.EdgeRow(old)
			if hi1-lo1 != hi0-lo0 {
				t.Fatalf("edge %d stencil length changed", old)
			}
			for j := 0; j < hi0-lo0; j++ {
				if c1.EdgeEdges[lo1+j] != r.EdgePerm[c0.EdgeEdges[lo0+j]] {
					t.Fatalf("edge %d stencil entry %d not the remapped original", old, j)
				}
				if c1.EdgeWeights[lo1+j] != c0.EdgeWeights[lo0+j] {
					t.Fatalf("edge %d stencil weight %d changed", old, j)
				}
			}
		}
	}
}

// TestReorderRejectsCorruptPermutation: a tampered map must fail Validate
// and Apply, never silently mis-wire a mesh.
func TestReorderRejectsCorruptPermutation(t *testing.T) {
	m := jitteredMesh(t, 3, 2)
	corrupt := []struct {
		name string
		mut  func(r *Reorder)
	}{
		{"duplicate cell target", func(r *Reorder) { r.CellPerm[1] = r.CellPerm[0] }},
		{"cell out of range", func(r *Reorder) { r.CellPerm[0] = int32(m.NCells) }},
		{"negative edge", func(r *Reorder) { r.EdgePerm[2] = -1 }},
		{"inverse mismatch", func(r *Reorder) { r.VertInv[0], r.VertInv[1] = r.VertInv[1], r.VertInv[0] }},
		{"truncated edge map", func(r *Reorder) { r.EdgePerm = r.EdgePerm[:m.NEdges-1] }},
	}
	for _, tc := range corrupt {
		r := ComputeReorder(m)
		tc.mut(r)
		if err := r.Validate(m); err == nil {
			t.Errorf("%s: Validate accepted a corrupt permutation", tc.name)
		}
		if _, err := r.Apply(m); err == nil {
			t.Errorf("%s: Apply accepted a corrupt permutation", tc.name)
		}
	}
}

// TestReorderFieldConvertersRoundTrip: FromCanonical then ToCanonical is the
// identity (and vice versa) for cell and edge fields.
func TestReorderFieldConvertersRoundTrip(t *testing.T) {
	m := jitteredMesh(t, 12, 3)
	r := ComputeReorder(m)
	cell := make([]float64, m.NCells)
	for i := range cell {
		cell[i] = float64(i) * 1.5
	}
	tmp := make([]float64, m.NCells)
	back := make([]float64, m.NCells)
	r.CellFromCanonical(tmp, cell)
	r.CellToCanonical(back, tmp)
	for i := range cell {
		if back[i] != cell[i] {
			t.Fatalf("cell field round trip broke at %d", i)
		}
	}
	edge := make([]float64, m.NEdges)
	for i := range edge {
		edge[i] = float64(i) - 0.25
	}
	etmp := make([]float64, m.NEdges)
	eback := make([]float64, m.NEdges)
	r.EdgeFromCanonical(etmp, edge)
	r.EdgeToCanonical(eback, etmp)
	for i := range edge {
		if eback[i] != edge[i] {
			t.Fatalf("edge field round trip broke at %d", i)
		}
	}
}

// TestReorderImprovesLocality: the point of the pass — the mean neighbor
// index distance must drop on a real subdivision mesh, whose raw numbering
// interleaves refinement generations.
func TestReorderImprovesLocality(t *testing.T) {
	m := MustBuild(4, Options{})
	before := m.NeighborLocality()
	r := ComputeReorder(m)
	nm, err := r.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	after := nm.NeighborLocality()
	t.Logf("locality mean: %.1f cells before, %.1f cells after", before.Mean, after.Mean)
	if after.Mean >= before.Mean {
		t.Fatalf("reordering did not improve locality: %.1f -> %.1f", before.Mean, after.Mean)
	}
}
