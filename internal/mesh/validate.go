package mesh

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Validate checks the structural and geometric invariants of the mesh and
// returns the first violation found. It is O(N) and intended for tests and
// tools, not inner loops.
func (m *Mesh) Validate() error {
	if err := m.validateCounts(); err != nil {
		return err
	}
	if err := m.validateConnectivity(); err != nil {
		return err
	}
	if err := m.validateAreas(); err != nil {
		return err
	}
	if err := m.validateOrientation(); err != nil {
		return err
	}
	return nil
}

func (m *Mesh) validateCounts() error {
	// Euler characteristic of the sphere.
	if m.NCells-m.NEdges+m.NVertices != 2 {
		return fmt.Errorf("mesh: Euler characteristic %d != 2", m.NCells-m.NEdges+m.NVertices)
	}
	// Every vertex has degree 3, so 3*NVertices = 2*NEdges.
	if 3*m.NVertices != 2*m.NEdges {
		return fmt.Errorf("mesh: 3V=%d != 2E=%d", 3*m.NVertices, 2*m.NEdges)
	}
	return nil
}

func (m *Mesh) validateConnectivity() error {
	for e := int32(0); e < int32(m.NEdges); e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		if c1 == c2 {
			return fmt.Errorf("mesh: edge %d joins cell %d to itself", e, c1)
		}
		v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
		if v1 == v2 {
			return fmt.Errorf("mesh: edge %d has equal vertices", e)
		}
		// Both cells of the edge must be on both vertices of the edge? No:
		// each vertex of the edge must contain both cells of the edge.
		for _, v := range []int32{v1, v2} {
			found1, found2 := false, false
			for _, c := range m.VertexCells(v) {
				if c == c1 {
					found1 = true
				}
				if c == c2 {
					found2 = true
				}
			}
			if !found1 || !found2 {
				return fmt.Errorf("mesh: edge %d cells not on vertex %d", e, v)
			}
		}
	}
	for c := int32(0); c < int32(m.NCells); c++ {
		n := int(m.NEdgesOnCell[c])
		if n < 5 || n > MaxEdges {
			return fmt.Errorf("mesh: cell %d has %d edges", c, n)
		}
		es := m.CellEdges(c)
		vs := m.CellVertices(c)
		for j := 0; j < n; j++ {
			e := es[j]
			if m.CellsOnEdge[2*e] != c && m.CellsOnEdge[2*e+1] != c {
				return fmt.Errorf("mesh: cell %d lists edge %d not adjacent to it", c, e)
			}
			// VerticesOnCell[j] must be shared by edges j and j+1.
			v, ok := sharedVertex(m, es[j], es[(j+1)%n])
			if !ok || v != vs[j] {
				return fmt.Errorf("mesh: cell %d vertex %d not between edges %d,%d", c, vs[j], es[j], es[(j+1)%n])
			}
		}
	}
	for v := int32(0); v < int32(m.NVertices); v++ {
		cs := m.VertexCells(v)
		es := m.VertexEdges(v)
		for j := 0; j < VertexDegree; j++ {
			e := es[j]
			a, b := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			want1, want2 := cs[j], cs[(j+1)%VertexDegree]
			if !((a == want1 && b == want2) || (a == want2 && b == want1)) {
				return fmt.Errorf("mesh: vertex %d edge %d does not join cells %d,%d", v, e, want1, want2)
			}
		}
	}
	return nil
}

func (m *Mesh) validateAreas() error {
	sphere := geom.SphereArea * m.Radius * m.Radius
	sumCells, sumTris := 0.0, 0.0
	for c := 0; c < m.NCells; c++ {
		if m.AreaCell[c] <= 0 {
			return fmt.Errorf("mesh: cell %d non-positive area", c)
		}
		sumCells += m.AreaCell[c]
	}
	for v := 0; v < m.NVertices; v++ {
		if m.AreaTriangle[v] <= 0 {
			return fmt.Errorf("mesh: vertex %d non-positive triangle area", v)
		}
		sumTris += m.AreaTriangle[v]
		// Kites partition the triangle.
		ks := 0.0
		for j := 0; j < VertexDegree; j++ {
			k := m.KiteAreasOnVertex[v*VertexDegree+j]
			if k <= 0 {
				return fmt.Errorf("mesh: vertex %d kite %d non-positive", v, j)
			}
			ks += k
		}
		if rel := math.Abs(ks-m.AreaTriangle[v]) / m.AreaTriangle[v]; rel > 1e-9 {
			return fmt.Errorf("mesh: vertex %d kites sum to %g, triangle area %g", v, ks, m.AreaTriangle[v])
		}
	}
	if rel := math.Abs(sumCells-sphere) / sphere; rel > 1e-9 {
		return fmt.Errorf("mesh: cell areas cover %g of sphere %g", sumCells, sphere)
	}
	if rel := math.Abs(sumTris-sphere) / sphere; rel > 1e-9 {
		return fmt.Errorf("mesh: triangle areas cover %g of sphere %g", sumTris, sphere)
	}
	// Kites grouped by cell partition the cell.
	kiteByCell := make([]float64, m.NCells)
	for v := 0; v < m.NVertices; v++ {
		for j := 0; j < VertexDegree; j++ {
			kiteByCell[m.CellsOnVertex[v*VertexDegree+j]] += m.KiteAreasOnVertex[v*VertexDegree+j]
		}
	}
	for c := 0; c < m.NCells; c++ {
		if rel := math.Abs(kiteByCell[c]-m.AreaCell[c]) / m.AreaCell[c]; rel > 1e-9 {
			return fmt.Errorf("mesh: cell %d kites sum to %g, cell area %g", c, kiteByCell[c], m.AreaCell[c])
		}
	}
	return nil
}

func (m *Mesh) validateOrientation() error {
	// Edge signs on a cell must mark the normal as outward exactly when the
	// cell is first on the edge, and every edge contributes +1 to one cell
	// and -1 to the other.
	sign := make([]int, m.NEdges)
	for c := int32(0); c < int32(m.NCells); c++ {
		for j, e := range m.CellEdges(c) {
			s := m.EdgeSignOnCell[int(c)*MaxEdges+j]
			if s != 1 && s != -1 {
				return fmt.Errorf("mesh: cell %d edge slot %d sign %d", c, j, s)
			}
			sign[e] += int(s)
		}
	}
	for e, s := range sign {
		if s != 0 {
			return fmt.Errorf("mesh: edge %d cell signs do not cancel (%d)", e, s)
		}
	}
	// Same for vertices.
	vsign := make([]int, m.NEdges)
	for v := int32(0); v < int32(m.NVertices); v++ {
		for j, e := range m.VertexEdges(v) {
			s := m.EdgeSignOnVertex[int(v)*VertexDegree+j]
			if s != 1 && s != -1 {
				return fmt.Errorf("mesh: vertex %d edge slot %d sign %d", v, j, s)
			}
			vsign[e] += int(s)
		}
	}
	for e, s := range vsign {
		if s != 0 {
			return fmt.Errorf("mesh: edge %d vertex signs do not cancel (%d)", e, s)
		}
	}
	// Edge frames are orthonormal right-handed.
	for e := 0; e < m.NEdges; e++ {
		n, t := m.EdgeNormal[e], m.EdgeTangent[e]
		if math.Abs(n.Norm()-1) > 1e-10 || math.Abs(t.Norm()-1) > 1e-10 {
			return fmt.Errorf("mesh: edge %d frame not unit", e)
		}
		if math.Abs(n.Dot(t)) > 1e-10 {
			return fmt.Errorf("mesh: edge %d frame not orthogonal", e)
		}
	}
	return nil
}

// Stats summarizes mesh resolution.
type Stats struct {
	NCells, NEdges, NVertices int
	MinDc, MaxDc, MeanDc      float64 // meters
	MinArea, MaxArea          float64 // m^2
	ResolutionKm              float64 // mean cell spacing in km
}

// ComputeStats returns summary statistics of the mesh.
func (m *Mesh) ComputeStats() Stats {
	s := Stats{NCells: m.NCells, NEdges: m.NEdges, NVertices: m.NVertices,
		MinDc: math.Inf(1), MinArea: math.Inf(1)}
	sum := 0.0
	for e := 0; e < m.NEdges; e++ {
		d := m.DcEdge[e]
		s.MinDc = math.Min(s.MinDc, d)
		s.MaxDc = math.Max(s.MaxDc, d)
		sum += d
	}
	s.MeanDc = sum / float64(m.NEdges)
	for c := 0; c < m.NCells; c++ {
		s.MinArea = math.Min(s.MinArea, m.AreaCell[c])
		s.MaxArea = math.Max(s.MaxArea, m.AreaCell[c])
	}
	s.ResolutionKm = s.MeanDc / 1000
	return s
}
