package mesh

import (
	"math"

	"repro/internal/geom"
)

// Quality summarizes the geometric health of an SCVT mesh. The C-grid TRiSK
// scheme relies on Voronoi-Delaunay duality: the primal edge (between cell
// generators) and the dual edge (between triangle circumcenters) must be
// orthogonal and mutually bisecting; departures degrade the truncation
// error, which is why these are worth monitoring — especially on
// variable-resolution meshes.
type Quality struct {
	// MaxOrthogonality is the worst deviation (radians) of the angle
	// between an edge's primal and dual directions from pi/2.
	MaxOrthogonality float64
	// MeanOrthogonality is the mean deviation (radians).
	MeanOrthogonality float64
	// MaxOffCentering is the worst distance between the primal-edge
	// midpoint and the dual-edge crossing, as a fraction of the edge
	// length dc.
	MaxOffCentering float64
	// MinDistortion/MaxDistortion bound the cell distortion ratio
	// (shortest/longest vertex distance from the generator).
	MinDistortion float64
	// AreaRatio is max cell area over min cell area (1 for perfectly
	// uniform meshes; ~ (spacing contrast)^2 for variable resolution).
	AreaRatio float64
	// MaxCentroidDrift is the worst distance between a generator and its
	// Voronoi cell centroid, as a fraction of the mean cell spacing — the
	// "how centroidal is this SCVT" number Lloyd iteration drives down.
	MaxCentroidDrift float64
}

// ComputeQuality evaluates the quality metrics.
func (m *Mesh) ComputeQuality() Quality {
	q := Quality{MinDistortion: 1}
	var orthoSum float64
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
		// Primal direction (between generators) and dual direction
		// (between circumcenters), both projected at the edge point.
		xe := m.XEdge[e]
		dp := geom.ProjectToTangent(xe, m.XCell[c2].Sub(m.XCell[c1])).Normalize()
		dd := geom.ProjectToTangent(xe, m.XVertex[v2].Sub(m.XVertex[v1])).Normalize()
		dev := math.Abs(math.Asin(clampQ(dp.Dot(dd)))) // 0 when orthogonal
		orthoSum += dev
		if dev > q.MaxOrthogonality {
			q.MaxOrthogonality = dev
		}
		// Off-centering: distance from the primal midpoint to the dual
		// great circle through v1,v2 (approximated by the distance from
		// xe to the closest point on the chord).
		mid := m.XCell[c1].Add(m.XCell[c2]).Normalize()
		chord := m.XVertex[v2].Sub(m.XVertex[v1])
		if n := chord.Norm(); n > 0 {
			chord = chord.Scale(1 / n)
			off := geom.ProjectToTangent(mid, m.XVertex[v1].Sub(mid))
			perp := off.Sub(chord.Scale(off.Dot(chord))).Norm() * m.Radius
			if frac := perp / m.DcEdge[e]; frac > q.MaxOffCentering {
				q.MaxOffCentering = frac
			}
		}
	}
	q.MeanOrthogonality = orthoSum / float64(m.NEdges)

	minArea, maxArea := math.Inf(1), 0.0
	var poly [MaxEdges]geom.Vec3
	stats := m.ComputeStats()
	for c := 0; c < m.NCells; c++ {
		minArea = math.Min(minArea, m.AreaCell[c])
		maxArea = math.Max(maxArea, m.AreaCell[c])
		// Distortion: min/max generator-to-vertex distance.
		minD, maxD := math.Inf(1), 0.0
		vs := m.CellVertices(int32(c))
		for j, v := range vs {
			poly[j] = m.XVertex[v]
			d := geom.ArcLength(m.XCell[c], m.XVertex[v])
			minD = math.Min(minD, d)
			maxD = math.Max(maxD, d)
		}
		if r := minD / maxD; r < q.MinDistortion {
			q.MinDistortion = r
		}
		drift := geom.ArcLength(m.XCell[c], geom.PolygonCentroid(poly[:len(vs)])) * m.Radius
		if frac := drift / stats.MeanDc; frac > q.MaxCentroidDrift {
			q.MaxCentroidDrift = frac
		}
	}
	q.AreaRatio = maxArea / minArea
	return q
}

func clampQ(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}
