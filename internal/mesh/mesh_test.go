package mesh

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// testMesh caches meshes per level across tests in this package.
var meshCache = map[int]*Mesh{}

func testMesh(t testing.TB, level int) *Mesh {
	if m, ok := meshCache[level]; ok {
		return m
	}
	m, err := Build(level, Options{LloydIterations: 2})
	if err != nil {
		t.Fatalf("Build(%d): %v", level, err)
	}
	meshCache[level] = m
	return m
}

func TestBuildValidatesLevels(t *testing.T) {
	for level := 0; level <= 4; level++ {
		m, err := Build(level, Options{})
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
	}
}

func TestBuildWithLloydValidates(t *testing.T) {
	m, err := Build(3, Options{LloydIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLloydImprovesCentroidality(t *testing.T) {
	// Lloyd iterations must reduce the mean distance between generators and
	// their Voronoi cell centroids.
	dist := func(m *Mesh) float64 {
		var poly [MaxEdges]geom.Vec3
		sum := 0.0
		for c := 0; c < m.NCells; c++ {
			vs := m.CellVertices(int32(c))
			for j, v := range vs {
				poly[j] = m.XVertex[v]
			}
			sum += geom.ArcLength(m.XCell[c], geom.PolygonCentroid(poly[:len(vs)]))
		}
		return sum / float64(m.NCells)
	}
	m0, _ := Build(3, Options{})
	m4, _ := Build(3, Options{LloydIterations: 4})
	if dist(m4) >= dist(m0) {
		t.Errorf("Lloyd did not improve centroidality: %g -> %g", dist(m0), dist(m4))
	}
}

func TestMeshCounts(t *testing.T) {
	m := testMesh(t, 3)
	if m.NCells != 642 {
		t.Errorf("NCells = %d", m.NCells)
	}
	if m.NVertices != 2*m.NCells-4 {
		t.Errorf("NVertices = %d, want %d", m.NVertices, 2*m.NCells-4)
	}
	if m.NEdges != 3*m.NCells-6 {
		t.Errorf("NEdges = %d, want %d", m.NEdges, 3*m.NCells-6)
	}
}

func TestTable3MeshSizes(t *testing.T) {
	// Table III of the paper: resolutions and cell counts. We check the
	// cell-count formula and that the built low-level meshes extrapolate to
	// the right resolution family (dx halves per level).
	want := map[int]int{6: 40962, 7: 163842, 8: 655362, 9: 2621442}
	for level, n := range want {
		if got := 10*(1<<(2*uint(level))) + 2; got != n {
			t.Errorf("level %d: %d cells, want %d", level, got, n)
		}
	}
	s4 := testMesh(t, 4).ComputeStats()
	s5 := testMesh(t, 5).ComputeStats()
	ratio := s4.MeanDc / s5.MeanDc
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("resolution ratio between levels = %v, want ~2", ratio)
	}
	// Level 5 (10242 cells) is ~240 km; level 6 would be ~120 km (Table III).
	if s5.ResolutionKm < 200 || s5.ResolutionKm > 280 {
		t.Errorf("level 5 resolution %v km, want ~240", s5.ResolutionKm)
	}
}

func TestDcDvPositive(t *testing.T) {
	m := testMesh(t, 3)
	for e := 0; e < m.NEdges; e++ {
		if m.DcEdge[e] <= 0 || m.DvEdge[e] <= 0 {
			t.Fatalf("edge %d: dc=%v dv=%v", e, m.DcEdge[e], m.DvEdge[e])
		}
	}
}

func TestEdgeFrameOrientation(t *testing.T) {
	m := testMesh(t, 3)
	for e := int32(0); e < int32(m.NEdges); e++ {
		// Tangent = k x normal at the edge point.
		k := m.XEdge[e]
		want := k.Cross(m.EdgeNormal[e])
		if want.Sub(m.EdgeTangent[e]).Norm() > 1e-12 {
			t.Fatalf("edge %d tangent != k x n", e)
		}
		// Vertex order matches tangent direction.
		v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
		if m.XVertex[v2].Sub(m.XVertex[v1]).Dot(m.EdgeTangent[e]) <= 0 {
			t.Fatalf("edge %d vertices not ordered along tangent", e)
		}
		// Normal points from cell1 to cell2.
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		if m.XCell[c2].Sub(m.XCell[c1]).Dot(m.EdgeNormal[e]) <= 0 {
			t.Fatalf("edge %d normal does not point cell1->cell2", e)
		}
	}
}

func TestAngleEdgeConsistent(t *testing.T) {
	m := testMesh(t, 3)
	for e := 0; e < m.NEdges; e++ {
		east, north := geom.East(m.XEdge[e]), geom.North(m.XEdge[e])
		rebuilt := east.Scale(math.Cos(m.AngleEdge[e])).Add(north.Scale(math.Sin(m.AngleEdge[e])))
		if rebuilt.Sub(m.EdgeNormal[e]).Norm() > 1e-10 {
			t.Fatalf("edge %d AngleEdge inconsistent with normal", e)
		}
	}
}

// normalVelocity evaluates u_e = V(x_e)·n_e for an analytic tangent field.
func normalVelocity(m *Mesh, field func(geom.Vec3) geom.Vec3) []float64 {
	u := make([]float64, m.NEdges)
	for e := 0; e < m.NEdges; e++ {
		u[e] = field(m.XEdge[e]).Dot(m.EdgeNormal[e])
	}
	return u
}

// solidBody returns the velocity field of solid-body rotation about the z
// axis with max speed u0 at the equator: V = u0 * (z_hat x r).
func solidBody(u0 float64) func(geom.Vec3) geom.Vec3 {
	zhat := geom.V(0, 0, 1)
	return func(p geom.Vec3) geom.Vec3 { return zhat.Cross(p).Scale(u0) }
}

func TestTangentialReconstruction(t *testing.T) {
	// TRiSK weights must reconstruct the tangential component of a smooth
	// flow from normal components (pattern F of the paper).
	m := testMesh(t, 4)
	field := solidBody(20)
	u := normalVelocity(m, field)
	maxErr, maxV := 0.0, 0.0
	for e := int32(0); e < int32(m.NEdges); e++ {
		es, ws := m.EdgeStencil(e)
		v := 0.0
		for j := range es {
			v += ws[j] * u[es[j]]
		}
		want := field(m.XEdge[e]).Dot(m.EdgeTangent[e])
		if a := math.Abs(want); a > maxV {
			maxV = a
		}
		if d := math.Abs(v - want); d > maxErr {
			maxErr = d
		}
	}
	if maxErr/maxV > 0.05 {
		t.Errorf("tangential reconstruction max rel error %v", maxErr/maxV)
	}
}

func TestWeightsAntisymmetryEnergyConservation(t *testing.T) {
	// The TRiSK Coriolis operator conserves energy iff
	// w_{e,e'} dc_e dv_e? — concretely, the condition from Thuburn et al. is
	// w_{e,e'} * dv_e * dc_e'?; in the MPAS normalization it reads
	// WeightsOnEdge[e][e'] * dc_e * dv_e' is antisymmetric... We verify the
	// operational consequence directly: sum_e dc_e*dv_e*u_e*(qF)perp_e = 0
	// for constant q and F=u, i.e. the reconstruction matrix is
	// antisymmetric under the (dc*dv) inner product.
	m := testMesh(t, 3)
	// Build dense pair map w[e][e'] and check dc_e*dv_e... the discrete
	// antisymmetry: w_{e,e'} dv_{e'} dc_e = -w_{e',e} dv_e dc_{e'} in our
	// stored normalization where stored = w*dv_{e'}/dc_e.
	type pair struct{ a, b int32 }
	stored := map[pair]float64{}
	for e := int32(0); e < int32(m.NEdges); e++ {
		es, ws := m.EdgeStencil(e)
		for j := range es {
			stored[pair{e, es[j]}] += ws[j]
		}
	}
	// Asymmetry is measured against the largest dimensionless weight on the
	// mesh: many weights are legitimately ~0 and carry only roundoff.
	maxAbs := 0.0
	dimensionless := func(p pair, w float64) float64 {
		return w * m.DcEdge[p.a] / m.DvEdge[p.b]
	}
	for p, w := range stored {
		if a := math.Abs(dimensionless(p, w)); a > maxAbs {
			maxAbs = a
		}
	}
	maxAsym := 0.0
	for p, w := range stored {
		wT, ok := stored[pair{p.b, p.a}]
		if !ok {
			t.Fatalf("pair (%d,%d) has no transpose entry", p.a, p.b)
		}
		if d := math.Abs(dimensionless(p, w) + dimensionless(pair{p.b, p.a}, wT)); d > maxAsym {
			maxAsym = d
		}
	}
	if maxAsym/maxAbs > 1e-12 {
		t.Errorf("weights not antisymmetric: max asymmetry %v of scale %v", maxAsym, maxAbs)
	}
}

func TestDivergenceOfUniformFlow(t *testing.T) {
	// div(V) of a solid-body flow is zero; the discrete divergence should be
	// small compared to |V|/dx.
	m := testMesh(t, 4)
	u := normalVelocity(m, solidBody(20))
	stats := m.ComputeStats()
	scale := 20 / stats.MeanDc
	for c := int32(0); c < int32(m.NCells); c++ {
		div := 0.0
		for j, e := range m.CellEdges(c) {
			div += float64(m.EdgeSignOnCell[int(c)*MaxEdges+j]) * m.DvEdge[e] * u[e]
		}
		div /= m.AreaCell[c]
		if math.Abs(div)/scale > 0.02 {
			t.Fatalf("cell %d divergence %v too large (scale %v)", c, div, scale)
		}
	}
}

func TestCurlOfGradientIsZero(t *testing.T) {
	// Discrete identity: the curl (circulation per area at vertices) of a
	// discrete gradient field vanishes to roundoff — a TRiSK mimetic
	// property the solver relies on.
	m := testMesh(t, 3)
	// Arbitrary smooth scalar at cells.
	psi := make([]float64, m.NCells)
	for c := 0; c < m.NCells; c++ {
		p := m.XCell[c]
		psi[c] = math.Sin(2*p.Lat()) * math.Cos(3*p.Lon())
	}
	grad := make([]float64, m.NEdges)
	for e := int32(0); e < int32(m.NEdges); e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		grad[e] = (psi[c2] - psi[c1]) / m.DcEdge[e]
	}
	for v := int32(0); v < int32(m.NVertices); v++ {
		circ := 0.0
		mag := 0.0
		for j, e := range m.VertexEdges(v) {
			term := float64(m.EdgeSignOnVertex[int(v)*VertexDegree+j]) * m.DcEdge[e] * grad[e]
			circ += term
			mag += math.Abs(term)
		}
		if mag > 0 && math.Abs(circ)/mag > 1e-12 {
			t.Fatalf("vertex %d curl(grad) = %v (mag %v)", v, circ, mag)
		}
	}
}

func TestGlobalDivergenceTheoremExact(t *testing.T) {
	// Sum over cells of area*div is exactly zero (each edge contributes +
	// and - once) — this is why the scheme conserves mass to roundoff.
	m := testMesh(t, 3)
	u := normalVelocity(m, solidBody(35))
	total, mag := 0.0, 0.0
	for c := int32(0); c < int32(m.NCells); c++ {
		for j, e := range m.CellEdges(c) {
			term := float64(m.EdgeSignOnCell[int(c)*MaxEdges+j]) * m.DvEdge[e] * u[e]
			total += term
			mag += math.Abs(term)
		}
	}
	if math.Abs(total)/mag > 1e-12 {
		t.Errorf("global divergence %v (magnitude %v)", total, mag)
	}
}

func TestVorticityOfSolidBody(t *testing.T) {
	// Relative vorticity of solid-body rotation V = u0 (zhat x r) is
	// 2*(u0/R)*sin(lat) on a sphere of radius R. Positions are unit
	// vectors, so the discrete circulation uses physical lengths.
	m := testMesh(t, 4)
	u0 := 25.0
	u := normalVelocity(m, solidBody(u0))
	maxErr := 0.0
	scale := 2 * u0 / m.Radius
	for v := int32(0); v < int32(m.NVertices); v++ {
		circ := 0.0
		for j, e := range m.VertexEdges(v) {
			circ += float64(m.EdgeSignOnVertex[int(v)*VertexDegree+j]) * m.DcEdge[e] * u[e]
		}
		zeta := circ / m.AreaTriangle[v]
		want := 2 * (u0 / m.Radius) * m.XVertex[v].Z
		if d := math.Abs(zeta - want); d > maxErr {
			maxErr = d
		}
	}
	if maxErr/scale > 0.05 {
		t.Errorf("vorticity max error %v of scale %v", maxErr, scale)
	}
}

func TestSetRotation(t *testing.T) {
	m := testMesh(t, 2)
	omega := 7.292e-5
	m.SetRotation(omega)
	for c := 0; c < m.NCells; c++ {
		want := 2 * omega * math.Sin(m.LatCell[c])
		if math.Abs(m.FCell[c]-want) > 1e-15 {
			t.Fatalf("FCell[%d] = %v want %v", c, m.FCell[c], want)
		}
	}
}

func TestAccessorsConsistent(t *testing.T) {
	m := testMesh(t, 2)
	for c := int32(0); c < int32(m.NCells); c++ {
		if len(m.CellEdges(c)) != int(m.NEdgesOnCell[c]) {
			t.Fatal("CellEdges length")
		}
		if len(m.CellVertices(c)) != int(m.NEdgesOnCell[c]) {
			t.Fatal("CellVertices length")
		}
		for _, nb := range m.CellNeighbors(c) {
			if nb == c {
				t.Fatal("cell is its own neighbor")
			}
		}
	}
	for e := int32(0); e < int32(m.NEdges); e++ {
		es, ws := m.EdgeStencil(e)
		if len(es) != len(ws) {
			t.Fatal("stencil length mismatch")
		}
		if len(es) < 8 || len(es) > MaxEdgesOnEdge {
			t.Fatalf("edge %d stencil size %d", e, len(es))
		}
		for _, eoe := range es {
			if eoe == e {
				t.Fatal("edge in its own stencil")
			}
		}
	}
}

func TestPentagonCount(t *testing.T) {
	m := testMesh(t, 3)
	pent := 0
	for c := 0; c < m.NCells; c++ {
		if m.NEdgesOnCell[c] == 5 {
			pent++
		}
	}
	if pent != 12 {
		t.Errorf("%d pentagons, want 12", pent)
	}
}

func TestComputeStats(t *testing.T) {
	m := testMesh(t, 3)
	s := m.ComputeStats()
	if s.MinDc <= 0 || s.MaxDc < s.MinDc || s.MeanDc < s.MinDc || s.MeanDc > s.MaxDc {
		t.Errorf("bad stats: %+v", s)
	}
	if s.MaxDc/s.MinDc > 1.6 {
		t.Errorf("mesh not quasi-uniform: ratio %v", s.MaxDc/s.MinDc)
	}
}

func TestStringer(t *testing.T) {
	m := testMesh(t, 2)
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkBuildLevel4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(4, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLloydSweepLevel4(b *testing.B) {
	m := testMesh(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.lloydSweep(nil, 1)
	}
	b.StopTimer()
	meshCache[4] = nil
	delete(meshCache, 4)
}
