package mesh

// computeWeightsOnEdge fills the TRiSK tangential-reconstruction stencil
// (EdgesOnEdge, WeightsOnEdge) following Thuburn et al. (2009) / Ringler et
// al. (2010): for each edge e, the tangential velocity is reconstructed from
// the normal velocities on all other edges of the two adjacent cells,
//
//	v_e = sum_j WeightsOnEdge[e][j] * u[EdgesOnEdge[e][j]],
//
// with weights built from accumulated kite-area fractions so that the
// resulting discrete Coriolis operator conserves energy and the scheme
// recovers uniform flow consistently.
func (m *Mesh) computeWeightsOnEdge() {
	for e := int32(0); e < int32(m.NEdges); e++ {
		ne := 0
		base := int(e) * MaxEdgesOnEdge
		for side := 0; side < 2; side++ {
			cell := m.CellsOnEdge[2*e+int32(side)]
			// s encodes which side of e the cell lies on; the two walks
			// contribute with opposite orientation.
			s := 1.0
			if side == 1 {
				s = -1.0
			}
			n := int(m.NEdgesOnCell[cell])
			cbase := int(cell) * MaxEdges
			j0 := -1
			for j := 0; j < n; j++ {
				if m.EdgesOnCell[cbase+j] == e {
					j0 = j
					break
				}
			}
			if j0 < 0 {
				panic("mesh: edge not found on its own cell")
			}
			r := 0.0
			for i := 1; i < n; i++ {
				j := (j0 + i) % n
				eoe := m.EdgesOnCell[cbase+j]
				// Vertex crossed between the previous edge and this one.
				vprev := m.VerticesOnCell[cbase+(j0+i-1)%n]
				r += m.kiteArea(vprev, cell) / m.AreaCell[cell]
				de := 1.0
				if m.CellsOnEdge[2*eoe] != cell {
					de = -1.0
				}
				m.EdgesOnEdge[base+ne] = eoe
				m.WeightsOnEdge[base+ne] = s * (0.5 - r) * de * m.DvEdge[eoe] / m.DcEdge[e]
				ne++
			}
		}
		m.NEdgesOnEdge[e] = int32(ne)
	}
}

// kiteArea returns the kite area associated with (vertex v, cell c). The cell
// must be one of the three cells on the vertex.
func (m *Mesh) kiteArea(v, c int32) float64 {
	base := int(v) * VertexDegree
	for j := 0; j < VertexDegree; j++ {
		if m.CellsOnVertex[base+j] == c {
			return m.KiteAreasOnVertex[base+j]
		}
	}
	panic("mesh: cell not on vertex")
}
