// Package stencil is a declarative execution engine for the eight SCVT
// stencil shapes: a pattern is described by an index map (who gathers from
// whom, with what coefficients) instead of a hand-written loop, and one
// generic executor runs any of them — the reproduction's take on the
// paper's §6 future work of "leveraging automatic code generation
// techniques for the ease of implementation and optimization".
//
// The hand-written kernels in internal/sw remain the production path; this
// package proves the pattern abstraction is strong enough to generate the
// computations mechanically, and its tests pin the generic executor to the
// hand-written results.
package stencil

import (
	"repro/internal/mesh"
	"repro/internal/par"
)

// Map is a gather stencil over flat arrays: for every output element i,
//
//	out[i] = Finalize(sum_j Coef(i,j) * in[Idx(i,j)], i)
//
// with j ranging over Deg(i) neighbors. Finalize may be nil (identity).
type Map struct {
	N        int
	Deg      func(i int) int
	Idx      func(i, j int) int32
	Coef     func(i, j int) float64
	Finalize func(acc float64, i int) float64
}

// ApplyRange executes outputs [lo, hi).
func (m Map) ApplyRange(in, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		acc := 0.0
		n := m.Deg(i)
		for j := 0; j < n; j++ {
			acc += m.Coef(i, j) * in[m.Idx(i, j)]
		}
		if m.Finalize != nil {
			acc = m.Finalize(acc, i)
		}
		out[i] = acc
	}
}

// Apply executes the whole map serially.
func (m Map) Apply(in, out []float64) { m.ApplyRange(in, out, 0, m.N) }

// ApplyParallel executes the map race-free on a worker pool (each output is
// written by exactly one iteration — the regularity-aware gather property).
func (m Map) ApplyParallel(p *par.Pool, in, out []float64) {
	p.For(m.N, func(lo, hi int) { m.ApplyRange(in, out, lo, hi) })
}

// --- Constructors for the paper's stencil shapes on an SCVT mesh ---------

// DivergenceMap builds shape A2: cell <- incident edges, the discrete
// divergence (1/A_c) * sum sign*dv*u.
func DivergenceMap(msh *mesh.Mesh) Map {
	return Map{
		N:   msh.NCells,
		Deg: func(c int) int { return int(msh.NEdgesOnCell[c]) },
		Idx: func(c, j int) int32 { return msh.EdgesOnCell[c*mesh.MaxEdges+j] },
		Coef: func(c, j int) float64 {
			e := msh.EdgesOnCell[c*mesh.MaxEdges+j]
			return float64(msh.EdgeSignOnCell[c*mesh.MaxEdges+j]) * msh.DvEdge[e]
		},
		Finalize: func(acc float64, c int) float64 { return acc / msh.AreaCell[c] },
	}
}

// VorticityMap builds shape E: vertex <- incident edges, the discrete curl.
func VorticityMap(msh *mesh.Mesh) Map {
	return Map{
		N:   msh.NVertices,
		Deg: func(int) int { return mesh.VertexDegree },
		Idx: func(v, j int) int32 { return msh.EdgesOnVertex[v*mesh.VertexDegree+j] },
		Coef: func(v, j int) float64 {
			e := msh.EdgesOnVertex[v*mesh.VertexDegree+j]
			return float64(msh.EdgeSignOnVertex[v*mesh.VertexDegree+j]) * msh.DcEdge[e]
		},
		Finalize: func(acc float64, v int) float64 { return acc / msh.AreaTriangle[v] },
	}
}

// TangentialMap builds shape F: edge <- edgesOnEdge with the TRiSK weights.
func TangentialMap(msh *mesh.Mesh) Map {
	return Map{
		N:    msh.NEdges,
		Deg:  func(e int) int { return int(msh.NEdgesOnEdge[e]) },
		Idx:  func(e, j int) int32 { return msh.EdgesOnEdge[e*mesh.MaxEdgesOnEdge+j] },
		Coef: func(e, j int) float64 { return msh.WeightsOnEdge[e*mesh.MaxEdgesOnEdge+j] },
	}
}

// MidpointMap builds shape D1: edge <- its two cells, the centered average.
func MidpointMap(msh *mesh.Mesh) Map {
	return Map{
		N:    msh.NEdges,
		Deg:  func(int) int { return 2 },
		Idx:  func(e, j int) int32 { return msh.CellsOnEdge[2*e+j] },
		Coef: func(int, int) float64 { return 0.5 },
	}
}

// GradientMap builds the normal-gradient stencil (part of shape B):
// edge <- its two cells, (psi_2 - psi_1)/dc.
func GradientMap(msh *mesh.Mesh) Map {
	return Map{
		N:   msh.NEdges,
		Deg: func(int) int { return 2 },
		Idx: func(e, j int) int32 { return msh.CellsOnEdge[2*e+j] },
		Coef: func(e, j int) float64 {
			s := -1.0
			if j == 1 {
				s = 1.0
			}
			return s / msh.DcEdge[e]
		},
	}
}

// VertexAverageMap builds shape G's thickness part: vertex <- three cells,
// kite-area weighted.
func VertexAverageMap(msh *mesh.Mesh) Map {
	return Map{
		N:   msh.NVertices,
		Deg: func(int) int { return mesh.VertexDegree },
		Idx: func(v, j int) int32 { return msh.CellsOnVertex[v*mesh.VertexDegree+j] },
		Coef: func(v, j int) float64 {
			return msh.KiteAreasOnVertex[v*mesh.VertexDegree+j]
		},
		Finalize: func(acc float64, v int) float64 { return acc / msh.AreaTriangle[v] },
	}
}

// EdgeFromVerticesMap builds shape H1: edge <- its two vertices, centered.
func EdgeFromVerticesMap(msh *mesh.Mesh) Map {
	return Map{
		N:    msh.NEdges,
		Deg:  func(int) int { return 2 },
		Idx:  func(e, j int) int32 { return msh.VerticesOnEdge[2*e+j] },
		Coef: func(int, int) float64 { return 0.5 },
	}
}

// CellFromVerticesMap builds shapes C2/H2: cell <- surrounding vertices,
// kite-weighted. kiteOnCell must hold kite(v_j,c)/AreaCell[c] with stride
// mesh.MaxEdges (as the solver precomputes).
func CellFromVerticesMap(msh *mesh.Mesh, kiteOnCell []float64) Map {
	return Map{
		N:    msh.NCells,
		Deg:  func(c int) int { return int(msh.NEdgesOnCell[c]) },
		Idx:  func(c, j int) int32 { return msh.VerticesOnCell[c*mesh.MaxEdges+j] },
		Coef: func(c, j int) float64 { return kiteOnCell[c*mesh.MaxEdges+j] },
	}
}

// KineticEnergyMap builds shape A3 as a stencil over u^2 (pass in = u*u
// elementwise, or use ApplySquared).
func KineticEnergyMap(msh *mesh.Mesh) Map {
	return Map{
		N:   msh.NCells,
		Deg: func(c int) int { return int(msh.NEdgesOnCell[c]) },
		Idx: func(c, j int) int32 { return msh.EdgesOnCell[c*mesh.MaxEdges+j] },
		Coef: func(c, j int) float64 {
			e := msh.EdgesOnCell[c*mesh.MaxEdges+j]
			return 0.25 * msh.DcEdge[e] * msh.DvEdge[e]
		},
		Finalize: func(acc float64, c int) float64 { return acc / msh.AreaCell[c] },
	}
}
