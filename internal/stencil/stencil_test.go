package stencil

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/sw"
	"repro/internal/testcases"
)

var cached *mesh.Mesh

func mesh3(t testing.TB) *mesh.Mesh {
	if cached == nil {
		var err error
		cached, err = mesh.Build(3, mesh.Options{LloydIterations: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cached
}

// solverDiag runs the hand-written solver diagnostics on a TC5 state and
// returns solver + diagnostics for cross-checking the generic engine.
func solverDiag(t testing.TB) *sw.Solver {
	m := mesh3(t)
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(s)
	s.Run(2)
	return s
}

func maxAbs(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestGenericMatchesHandWrittenKernels(t *testing.T) {
	s := solverDiag(t)
	m := s.M

	out := make([]float64, m.NCells)
	DivergenceMap(m).Apply(s.State.U, out)
	if d := maxAbs(out, s.Diag.Divergence); d > 1e-14 {
		t.Errorf("divergence: generic vs hand-written diff %v", d)
	}

	outV := make([]float64, m.NVertices)
	VorticityMap(m).Apply(s.State.U, outV)
	if d := maxAbs(outV, s.Diag.Vorticity); d > 1e-14 {
		t.Errorf("vorticity: diff %v", d)
	}

	outE := make([]float64, m.NEdges)
	TangentialMap(m).Apply(s.State.U, outE)
	if d := maxAbs(outE, s.Diag.V); d > 1e-14 {
		t.Errorf("tangential: diff %v", d)
	}

	MidpointMap(m).Apply(s.State.H, outE)
	if d := maxAbs(outE, s.Diag.HEdge); d > 1e-14 {
		t.Errorf("h_edge: diff %v", d)
	}

	VertexAverageMap(m).Apply(s.State.H, outV)
	if d := maxAbs(outV, s.Diag.HVertex); d > 1e-14 {
		t.Errorf("h_vertex: diff %v", d)
	}

	EdgeFromVerticesMap(m).Apply(s.Diag.PVVertex, outE)
	// pv_edge has the APVM correction on top of the centered average, so
	// compare against a fresh centered average computed by the solver path
	// with APVM disabled.
	cfg := s.Cfg
	cfg.APVM = 0
	s2, _ := sw.NewSolver(m, cfg)
	s2.State.CopyFrom(s.State)
	s2.Init()
	if d := maxAbs(outE, s2.Diag.PVEdge); d > 1e-10 {
		t.Errorf("pv_edge centered: diff %v", d)
	}

	// Kinetic energy needs u^2 as input.
	u2 := make([]float64, m.NEdges)
	for e, u := range s.State.U {
		u2[e] = u * u
	}
	KineticEnergyMap(m).Apply(u2, out)
	if d := maxAbs(out, s.Diag.KE); d > 1e-12 {
		t.Errorf("ke: diff %v", d)
	}
}

func TestGradientMapIsDiscreteGradient(t *testing.T) {
	m := mesh3(t)
	psi := make([]float64, m.NCells)
	for c := range psi {
		psi[c] = math.Sin(m.LatCell[c]) * math.Cos(2*m.LonCell[c])
	}
	grad := make([]float64, m.NEdges)
	GradientMap(m).Apply(psi, grad)
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		want := (psi[c2] - psi[c1]) / m.DcEdge[e]
		if math.Abs(grad[e]-want) > 1e-15 {
			t.Fatalf("edge %d: %v vs %v", e, grad[e], want)
		}
	}
	// Mimetic identity through the generic engine too: curl(grad) == 0.
	curl := make([]float64, m.NVertices)
	VorticityMap(m).Apply(grad, curl)
	for v, z := range curl {
		if math.Abs(z)*m.AreaTriangle[v] > 1e-9 {
			t.Fatalf("vertex %d: curl(grad) = %v", v, z)
		}
	}
}

func TestApplyParallelMatchesSerial(t *testing.T) {
	m := mesh3(t)
	rng := rand.New(rand.NewSource(7))
	in := make([]float64, m.NEdges)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	serial := make([]float64, m.NCells)
	parallel := make([]float64, m.NCells)
	mp := DivergenceMap(m)
	mp.Apply(in, serial)
	p := par.NewPool(4)
	defer p.Close()
	mp.ApplyParallel(p, in, parallel)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel apply differs at %d", i)
		}
	}
}

func TestApplyRangePartial(t *testing.T) {
	m := mesh3(t)
	in := make([]float64, m.NEdges)
	for i := range in {
		in[i] = 1
	}
	out := make([]float64, m.NCells)
	for i := range out {
		out[i] = -999
	}
	mp := DivergenceMap(m)
	mp.ApplyRange(in, out, 10, 20)
	for i, v := range out {
		if i >= 10 && i < 20 {
			if v == -999 {
				t.Fatalf("range element %d not written", i)
			}
		} else if v != -999 {
			t.Fatalf("element %d outside range written", i)
		}
	}
}

func BenchmarkGenericVsHandWritten(b *testing.B) {
	m := mesh3(b)
	in := make([]float64, m.NEdges)
	for i := range in {
		in[i] = float64(i % 17)
	}
	out := make([]float64, m.NCells)
	mp := DivergenceMap(m)
	b.Run("Generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mp.Apply(in, out)
		}
	})
	b.Run("HandWritten", func(b *testing.B) {
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		copy(s.State.U, in)
		pat := s.PatternByID("A2")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pat.Run(0, pat.N)
		}
	})
}
