package dataflow

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
)

// randomProgram builds an arbitrary sequence of instances over a small
// variable alphabet.
func randomProgram(rng *rand.Rand, n int) []pattern.Instance {
	vars := []string{"a", "b", "c", "d", "e", "f"}
	pick := func() []string {
		k := rng.Intn(3) + 1
		out := make([]string, k)
		for i := range out {
			out[i] = vars[rng.Intn(len(vars))]
		}
		return out
	}
	prog := make([]pattern.Instance, n)
	for i := range prog {
		prog[i] = pattern.Instance{
			ID:     fmt.Sprintf("n%d", i),
			Kernel: "k",
			Reads:  pick(),
			Writes: pick(),
		}
	}
	return prog
}

// TestQuickGraphProperties: for arbitrary programs, the graph is acyclic
// with edges oriented forward in program order, program order validates,
// topological order validates, and levels partition the nodes.
func TestQuickGraphProperties(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz)%24 + 1
		g := Build(randomProgram(rng, n))
		for _, e := range g.Edges {
			if e.From >= e.To {
				return false // must be forward in program order
			}
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		if g.ValidateOrder(order) != nil {
			return false
		}
		topo, err := g.TopoOrder()
		if err != nil || g.ValidateOrder(topo) != nil {
			return false
		}
		seen := map[int]bool{}
		for _, lv := range g.Levels() {
			for _, v := range lv {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCriticalPathBounds: the unit-weight critical path length is
// between 1 and n, and a flattened level schedule has exactly as many
// levels as the critical path has nodes.
func TestQuickCriticalPathBounds(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz)%24 + 1
		g := Build(randomProgram(rng, n))
		path, cost := g.CriticalPath(func(int) float64 { return 1 })
		if len(path) < 1 || len(path) > n || cost != float64(len(path)) {
			return false
		}
		return len(g.Levels()) == len(path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
