// Package dataflow builds and analyzes the data-flow diagram of the paper's
// §3.B (Figure 4): a graph whose nodes are pattern instances and whose edges
// are the variable def/use dependencies between them. The graph is "a
// perfect indicator to recognize data dependencies and exploit inherent
// parallelism": its topological levels are the sets of patterns that may run
// concurrently, and its critical path bounds the achievable overlap of the
// hybrid schedule.
package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pattern"
)

// DepKind classifies a dependency edge.
type DepKind uint8

const (
	// RAW: the consumer reads a variable the producer writes (true dep).
	RAW DepKind = iota
	// WAR: the writer overwrites a variable the earlier node reads
	// (anti-dependency).
	WAR
	// WAW: both nodes write the same variable (output dependency).
	WAW
)

func (k DepKind) String() string {
	switch k {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	}
	return "?"
}

// Edge is a dependency from node From to node To (From must complete first).
type Edge struct {
	From, To int
	Kind     DepKind
	Variable string
}

// Graph is the data-flow diagram over a sequence of pattern instances.
type Graph struct {
	Nodes []pattern.Instance
	Edges []Edge
	out   [][]int // adjacency: edge indices leaving each node
	in    [][]int
}

// Build constructs the graph for the given instance sequence. The sequence
// order is the program order used to orient WAR/WAW edges; an instance
// depends on the most recent earlier writer of each variable it reads.
func Build(instances []pattern.Instance) *Graph {
	g := &Graph{Nodes: instances}
	n := len(instances)
	g.out = make([][]int, n)
	g.in = make([][]int, n)

	lastWriter := map[string]int{}
	readersSince := map[string][]int{}

	addEdge := func(from, to int, kind DepKind, v string) {
		if from == to {
			return
		}
		idx := len(g.Edges)
		g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: kind, Variable: v})
		g.out[from] = append(g.out[from], idx)
		g.in[to] = append(g.in[to], idx)
	}

	for i, ins := range instances {
		for _, v := range ins.Reads {
			if w, ok := lastWriter[v]; ok {
				addEdge(w, i, RAW, v)
			}
			readersSince[v] = append(readersSince[v], i)
		}
		for _, v := range ins.Writes {
			if w, ok := lastWriter[v]; ok {
				addEdge(w, i, WAW, v)
			}
			for _, r := range readersSince[v] {
				addEdge(r, i, WAR, v)
			}
			readersSince[v] = nil
			lastWriter[v] = i
		}
	}
	return g
}

// BuildModel returns the data-flow graph of one full RK substage of the
// shallow-water model: all Table I instances in Algorithm 1 kernel order,
// optionally including the optional (high-order / friction) instances.
func BuildModel(includeOptional bool) *Graph {
	var seq []pattern.Instance
	for _, k := range pattern.Kernels() {
		for _, ins := range pattern.KernelInstances(k) {
			if ins.Optional && !includeOptional {
				continue
			}
			seq = append(seq, ins)
		}
	}
	return Build(seq)
}

// Preds returns the distinct predecessor node indices of node i.
func (g *Graph) Preds(i int) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range g.in[i] {
		f := g.Edges[e].From
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}

// Succs returns the distinct successor node indices of node i.
func (g *Graph) Succs(i int) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range g.out[i] {
		t := g.Edges[e].To
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// TopoOrder returns a topological order of the nodes, or an error if the
// graph has a cycle. Build always orients edges forward in program order, so
// a cycle indicates corrupted input.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.Nodes)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.out[v] {
			t := g.Edges[ei].To
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dataflow: cycle detected (%d of %d ordered)", len(order), n)
	}
	return order, nil
}

// Levels returns the ASAP schedule levels: level[k] is the set of node
// indices whose predecessors all lie in earlier levels. Nodes within a level
// have no mutual dependencies and may run concurrently — the "inherent
// parallelism" the paper's hybrid algorithm exploits.
func (g *Graph) Levels() [][]int {
	return g.LevelsBy(nil)
}

// LevelsBy generalizes Levels with an edge-locality predicate, the analysis
// behind barrier elision in a compiled execution plan: an edge for which
// local returns true is satisfied without a level break, because under
// stable static chunking both endpoints touch only the worker's own slice of
// the shared index space (e.g. a pointwise consumer reading the element its
// own worker just produced). Such an edge constrains only the order within a
// level, not the level itself: depth[v] = max over incoming edges of
// depth[from] + (0 if local else 1). Within each level, nodes are returned
// in ascending index (program) order, so executing a level's nodes in slice
// order satisfies every local edge. A nil predicate reproduces Levels.
func (g *Graph) LevelsBy(local func(Edge) bool) [][]int {
	n := len(g.Nodes)
	depth := make([]int, n)
	order, err := g.TopoOrder()
	if err != nil {
		return nil
	}
	maxDepth := 0
	for _, v := range order {
		for _, ei := range g.in[v] {
			e := g.Edges[ei]
			step := 1
			if local != nil && local(e) {
				step = 0
			}
			if d := depth[e.From] + step; d > depth[v] {
				depth[v] = d
			}
		}
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	levels := make([][]int, maxDepth+1)
	for v, d := range depth {
		levels[d] = append(levels[d], v)
	}
	for _, lv := range levels {
		sort.Ints(lv)
	}
	return levels
}

// CriticalPath returns the node sequence of maximum total weight along
// dependency edges, and its weight. The weight function gives each node's
// cost (e.g. the performance model's time for the pattern).
func (g *Graph) CriticalPath(weight func(node int) float64) ([]int, float64) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0
	}
	n := len(g.Nodes)
	best := make([]float64, n)
	pred := make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	var endNode int
	var endCost float64
	for _, v := range order {
		best[v] += weight(v)
		if best[v] > endCost {
			endCost = best[v]
			endNode = v
		}
		for _, ei := range g.out[v] {
			t := g.Edges[ei].To
			if best[v] > best[t] {
				best[t] = best[v]
				pred[t] = v
			}
		}
	}
	var path []int
	for v := endNode; v != -1; v = pred[v] {
		path = append(path, v)
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, endCost
}

// ValidateOrder checks that the given node order respects every dependency
// edge (producer before consumer). Used to verify that a hybrid schedule is
// legal before executing it.
func (g *Graph) ValidateOrder(order []int) error {
	pos := make(map[int]int, len(order))
	for p, v := range order {
		pos[v] = p
	}
	if len(pos) != len(g.Nodes) {
		return fmt.Errorf("dataflow: order covers %d of %d nodes", len(pos), len(g.Nodes))
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			return fmt.Errorf("dataflow: order violates %s dependency %s: %s before %s",
				e.Kind, e.Variable, g.Nodes[e.To].ID, g.Nodes[e.From].ID)
		}
	}
	return nil
}

// DOT renders the graph in Graphviz format, clustered by kernel, with
// stencil shapes as node labels — a textual reproduction of Figure 4(a).
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph dataflow {\n  rankdir=TB;\n  node [shape=box];\n")
	byKernel := map[string][]int{}
	var kernels []string
	for i, n := range g.Nodes {
		if _, ok := byKernel[n.Kernel]; !ok {
			kernels = append(kernels, n.Kernel)
		}
		byKernel[n.Kernel] = append(byKernel[n.Kernel], i)
	}
	for ci, k := range kernels {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", ci, k)
		for _, i := range byKernel[k] {
			n := g.Nodes[i]
			shape := "box"
			if n.Shape != pattern.ShapeX { // stencils are circles, as in Fig. 4
				shape = "ellipse"
			}
			fmt.Fprintf(&b, "    n%d [label=\"%s\\n%s -> %s\" shape=%s];\n",
				i, n.ID, strings.Join(n.Reads, ","), strings.Join(n.Writes, ","), shape)
		}
		b.WriteString("  }\n")
	}
	for _, e := range g.Edges {
		if e.Kind != RAW {
			continue // render true dependencies only, as Figure 4 does
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.From, e.To, e.Variable)
	}
	b.WriteString("}\n")
	return b.String()
}
