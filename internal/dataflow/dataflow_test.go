package dataflow

import (
	"strings"
	"testing"

	"repro/internal/pattern"
)

func modelGraph(t testing.TB) *Graph {
	g := BuildModel(false)
	if g == nil || len(g.Nodes) == 0 {
		t.Fatal("empty model graph")
	}
	return g
}

func TestBuildModelNodeCount(t *testing.T) {
	g := modelGraph(t)
	want := 0
	for _, ins := range pattern.Table1 {
		if !ins.Optional {
			want++
		}
	}
	if len(g.Nodes) != want {
		t.Errorf("%d nodes, want %d", len(g.Nodes), want)
	}
	gOpt := BuildModel(true)
	if len(gOpt.Nodes) != len(pattern.Table1) {
		t.Errorf("optional graph has %d nodes, want %d", len(gOpt.Nodes), len(pattern.Table1))
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := modelGraph(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateOrder(order); err != nil {
		t.Fatal(err)
	}
}

func TestProgramOrderIsValid(t *testing.T) {
	// The Table I order within Algorithm 1 must itself be a legal schedule.
	g := modelGraph(t)
	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	if err := g.ValidateOrder(order); err != nil {
		t.Fatal(err)
	}
}

func TestValidateOrderDetectsViolation(t *testing.T) {
	g := modelGraph(t)
	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	// Swap a producer/consumer pair: find any RAW edge and invert it.
	var e Edge
	found := false
	for _, ed := range g.Edges {
		if ed.Kind == RAW {
			e = ed
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no RAW edges in model graph")
	}
	order[e.From], order[e.To] = order[e.To], order[e.From]
	if err := g.ValidateOrder(order); err == nil {
		t.Error("violated order accepted")
	}
}

func TestValidateOrderIncomplete(t *testing.T) {
	g := modelGraph(t)
	if err := g.ValidateOrder([]int{0, 1, 2}); err == nil {
		t.Error("incomplete order accepted")
	}
}

func TestKnownDependencies(t *testing.T) {
	g := modelGraph(t)
	idx := map[string]int{}
	for i, n := range g.Nodes {
		idx[n.ID] = i
	}
	hasRAW := func(from, to string) bool {
		for _, e := range g.Edges {
			if e.Kind == RAW && e.From == idx[from] && e.To == idx[to] {
				return true
			}
		}
		return false
	}
	// The pv chain of Figure 4: E -> G -> H1 -> B2, and C2 -> B2.
	for _, dep := range [][2]string{{"E", "G"}, {"G", "H1"}, {"H1", "B2"}, {"G", "C2"}, {"C2", "B2"}} {
		if !hasRAW(dep[0], dep[1]) {
			t.Errorf("missing RAW edge %s -> %s", dep[0], dep[1])
		}
	}
	// tend_h (A1) must not depend on the pv chain.
	if hasRAW("B2", "A1") || hasRAW("G", "A1") {
		t.Error("A1 spuriously depends on pv chain")
	}
}

func TestLevelsExposeConcurrency(t *testing.T) {
	g := modelGraph(t)
	levels := g.Levels()
	if len(levels) == 0 {
		t.Fatal("no levels")
	}
	// All nodes covered exactly once.
	seen := map[int]bool{}
	for _, lv := range levels {
		for _, n := range lv {
			if seen[n] {
				t.Fatalf("node %d in two levels", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != len(g.Nodes) {
		t.Errorf("levels cover %d of %d nodes", len(seen), len(g.Nodes))
	}
	// Some level must contain more than one node (inherent parallelism
	// exists — the paper's premise).
	concurrent := false
	for _, lv := range levels {
		if len(lv) > 1 {
			concurrent = true
		}
	}
	if !concurrent {
		t.Error("no concurrency found in model graph")
	}
	// No dependency inside a level.
	levelOf := map[int]int{}
	for li, lv := range levels {
		for _, n := range lv {
			levelOf[n] = li
		}
	}
	for _, e := range g.Edges {
		if levelOf[e.From] >= levelOf[e.To] {
			t.Errorf("edge %s->%s not level-increasing", g.Nodes[e.From].ID, g.Nodes[e.To].ID)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	g := modelGraph(t)
	path, cost := g.CriticalPath(func(int) float64 { return 1 })
	if len(path) == 0 || cost != float64(len(path)) {
		t.Fatalf("unit critical path: len %d cost %v", len(path), cost)
	}
	// Path must follow dependency edges.
	idx := map[string]int{}
	for i, n := range g.Nodes {
		idx[n.ID] = i
	}
	for i := 0; i+1 < len(path); i++ {
		found := false
		for _, s := range g.Succs(path[i]) {
			if s == path[i+1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("path step %s -> %s is not an edge",
				g.Nodes[path[i]].ID, g.Nodes[path[i+1]].ID)
		}
	}
	// The path must be at least as long as the pv chain (5 nodes to B1).
	if cost < 5 {
		t.Errorf("critical path %v suspiciously short", cost)
	}
}

func TestPredsSuccs(t *testing.T) {
	g := Build([]pattern.Instance{
		{ID: "w", Reads: []string{"a"}, Writes: []string{"b"}},
		{ID: "r1", Reads: []string{"b"}, Writes: []string{"c"}},
		{ID: "r2", Reads: []string{"b"}, Writes: []string{"d"}},
	})
	if s := g.Succs(0); len(s) != 2 {
		t.Errorf("succs(0) = %v", s)
	}
	if p := g.Preds(1); len(p) != 1 || p[0] != 0 {
		t.Errorf("preds(1) = %v", p)
	}
	if p := g.Preds(0); len(p) != 0 {
		t.Errorf("preds(0) = %v", p)
	}
}

func TestWARWAWEdges(t *testing.T) {
	g := Build([]pattern.Instance{
		{ID: "p1", Reads: []string{"x"}, Writes: []string{"y"}},
		{ID: "p2", Reads: []string{"y"}, Writes: []string{"z"}},
		{ID: "p3", Reads: []string{"q"}, Writes: []string{"y"}}, // WAW with p1, WAR with p2
	})
	var kinds []string
	for _, e := range g.Edges {
		kinds = append(kinds, e.Kind.String()+":"+g.Nodes[e.From].ID+"->"+g.Nodes[e.To].ID)
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"RAW:p1->p2", "WAW:p1->p3", "WAR:p2->p3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing edge %s in %s", want, joined)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := modelGraph(t)
	dot := g.DOT()
	for _, want := range []string{"digraph dataflow", "compute_tend", "B1", "pv_edge", "subgraph"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestDepKindString(t *testing.T) {
	if RAW.String() != "RAW" || WAR.String() != "WAR" || WAW.String() != "WAW" {
		t.Error("DepKind strings")
	}
	if DepKind(9).String() != "?" {
		t.Error("unknown DepKind")
	}
}

func TestLevelsByLocalEdges(t *testing.T) {
	g := modelGraph(t)

	// A predicate rejecting everything reproduces Levels exactly.
	strict := g.LevelsBy(func(Edge) bool { return false })
	plain := g.Levels()
	if len(strict) != len(plain) {
		t.Fatalf("all-non-local LevelsBy has %d levels, Levels has %d", len(strict), len(plain))
	}
	for i := range plain {
		if len(strict[i]) != len(plain[i]) {
			t.Fatalf("level %d sizes differ: %d vs %d", i, len(strict[i]), len(plain[i]))
		}
		for j := range plain[i] {
			if strict[i][j] != plain[i][j] {
				t.Fatalf("level %d node %d differs", i, j)
			}
		}
	}

	// A predicate accepting everything collapses the graph to one level.
	if lv := g.LevelsBy(func(Edge) bool { return true }); len(lv) != 1 || len(lv[0]) != len(g.Nodes) {
		t.Fatalf("all-local LevelsBy should give a single full level, got %d levels", len(lv))
	}

	// With a partial predicate, the invariants the plan compiler relies on:
	// every node in exactly one level, program order within a level, and any
	// level-internal edge is one the predicate called local.
	local := func(e Edge) bool { return e.Kind != RAW }
	levels := g.LevelsBy(local)
	levelOf := map[int]int{}
	count := 0
	for li, lv := range levels {
		for i, n := range lv {
			if i > 0 && lv[i-1] >= n {
				t.Fatalf("level %d not in ascending program order", li)
			}
			if _, dup := levelOf[n]; dup {
				t.Fatalf("node %d in two levels", n)
			}
			levelOf[n] = li
			count++
		}
	}
	if count != len(g.Nodes) {
		t.Fatalf("levels cover %d of %d nodes", count, len(g.Nodes))
	}
	for _, e := range g.Edges {
		lf, lt := levelOf[e.From], levelOf[e.To]
		if lf > lt {
			t.Errorf("edge %s->%s decreases level", g.Nodes[e.From].ID, g.Nodes[e.To].ID)
		}
		if lf == lt && !local(e) {
			t.Errorf("non-local edge %s->%s inside level %d", g.Nodes[e.From].ID, g.Nodes[e.To].ID, lf)
		}
		if lf == lt && e.From >= e.To {
			t.Errorf("level-internal edge %s->%s against program order", g.Nodes[e.From].ID, g.Nodes[e.To].ID)
		}
	}
}
