// Package serve is the simulation-as-a-service layer of the reproduction:
// an HTTP job subsystem that runs shallow-water integrations as managed,
// durable jobs on a bounded worker pool.
//
// The paper schedules an adjustable set of pattern instances across
// heterogeneous executors (§4, Algorithm 1); this package generalizes that
// shape one level up — a queue of whole solver runs multiplexed across a
// worker pool, with the same concerns the in-node scheduler has:
//
//   - Admission control: the run queue is bounded; a full queue rejects
//     submissions (HTTP 429) instead of growing without bound, and a
//     draining server rejects them with 503.
//   - Durability: workers periodically write sw.Solver checkpoints to a
//     per-job spool directory (atomic rename), so jobs survive a crash —
//     a recovery scan on startup re-enqueues interrupted jobs from their
//     last checkpoint.
//   - Mode mobility: the internal/conform guarantee that every execution
//     strategy computes the same trajectory means a checkpointed job can be
//     RESUMED UNDER A DIFFERENT MODE (serial → threaded → hybrid) with a
//     conform-identical result; resume_test.go asserts this end to end.
//   - Observability: GET /jobs/{id}/events streams NDJSON invariant
//     diagnostics (mass/energy/enstrophy per report interval), and /metrics
//     exposes the internal/telemetry registry (queue depth, jobs by state,
//     admission rejects, per-stage timers).
//   - Graceful drain: SIGTERM stops admission, checkpoints in-flight jobs
//     as suspended-by-drain, and exits; the next start resumes them.
//
// This file holds the shared vocabulary: job specs, lifecycle states,
// status snapshots, and the NDJSON event schema.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sw"
)

// JobState is one station of the job lifecycle. Transitions:
//
//	queued → running → completed | failed | canceled
//	queued | running → suspended → queued  (resume, possibly new mode)
//
// DESIGN.md §9 maps these onto the paper's scheduling concepts.
type JobState string

// The job lifecycle states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSuspended JobState = "suspended"
	StateCompleted JobState = "completed"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final.
func (st JobState) Terminal() bool {
	return st == StateCompleted || st == StateFailed || st == StateCanceled
}

// Suspension reasons recorded in JobStatus.SuspendReason. A drain
// suspension is auto-resumed by the recovery scan on the next start; a user
// suspension waits for an explicit resume call.
const (
	SuspendUser  = "user"
	SuspendDrain = "drain"
)

// JobSpec is a simulation request — the POST /jobs body.
type JobSpec struct {
	// Name is an optional client label echoed in statuses and listings.
	Name string `json:"name,omitempty"`
	// TestCase selects the initial condition: 1, 2, 5, 6 (Williamson) or
	// 8 (Galewsky). Default 5.
	TestCase int `json:"test_case,omitempty"`
	// Level is the icosahedral subdivision level (cells = 10*4^level + 2).
	// Default 2; capped at MaxLevel to keep admission bounded.
	Level int `json:"level,omitempty"`
	// Mode is the execution design: serial | threaded | kernel | pattern | plan.
	// Default serial. A suspended job may be resumed under a different mode.
	Mode string `json:"mode,omitempty"`
	// Steps is the total RK-4 step count; exactly one of Steps or Days must
	// be positive. Days is converted using the level's stable time step once
	// the mesh is built.
	Steps int     `json:"steps,omitempty"`
	Days  float64 `json:"days,omitempty"`
	// Workers sizes the host (and device) worker pools for threaded/hybrid
	// modes; default 2, capped at 16.
	Workers int `json:"workers,omitempty"`
	// HighOrder enables the C1+D2 high-order thickness interpolation.
	HighOrder bool `json:"high_order,omitempty"`
	// Priority orders the run queue (higher first; FIFO within a priority).
	Priority int `json:"priority,omitempty"`
	// ReportEvery is the diagnostics cadence in steps (default 10): each
	// report computes the invariants and publishes a "diag" event.
	ReportEvery int `json:"report_every,omitempty"`
	// CheckpointEvery is the spool checkpoint cadence in steps (default:
	// the server's configured cadence).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// TimeoutSec is the per-job wall-clock deadline (0 = server default).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// StepDelayMS inserts a wall-clock pause before each step — a pacing
	// knob for demos and for tests that need a suspend/kill window on small
	// meshes. Capped at 1000.
	StepDelayMS int `json:"step_delay_ms,omitempty"`
	// Ensemble is the batch-admission member count K: K perturbed
	// trajectories accepted as ONE job, multiplexed through one solver so
	// the immutable mesh and (in plan mode) the compiled execution plan are
	// built once and shared by every member. 0 or 1 means a plain single
	// run. Capped at MaxEnsemble.
	Ensemble int `json:"ensemble,omitempty"`
	// PerturbSeed seeds the deterministic thickness jitter of members
	// 1..K-1 (member 0 is the unperturbed control run).
	PerturbSeed uint64 `json:"perturb_seed,omitempty"`
	// PerturbEps is the relative jitter amplitude; default 1e-8 for
	// ensembles, must stay within (0, 1e-3].
	PerturbEps float64 `json:"perturb_eps,omitempty"`
	// Precision selects the step arithmetic: "" or "float64" for the
	// reference path, "float32" for the fast mode (serial/threaded/plan
	// modes only; see mpas.Options.Precision). Checkpoints stay float64, so
	// a suspended job may be resumed under a different precision.
	Precision string `json:"precision,omitempty"`
	// Reorder runs the job on the SFC locality-renumbered mesh
	// (mpas.Options.Reorder). Checkpoints stay in canonical numbering, so
	// the flag may differ between a suspension and its resume, and a stolen
	// job may land on a worker with the opposite setting.
	Reorder bool `json:"reorder,omitempty"`
}

// MaxEnsemble bounds the batch-admission member count: 16 members of a
// MaxLevel mesh keep a worker's resident state under a few tens of MB.
const MaxEnsemble = 16

// MaxLevel bounds the admissible mesh level: level 6 (~40962 cells) builds
// in seconds; beyond that a submission could occupy a worker for minutes in
// mesh construction alone before its first checkpoint.
const MaxLevel = 6

// validModes are the execution designs a job may request (or be resumed
// under), matching cmd/swmodel -mode.
var validModes = map[string]bool{
	"serial": true, "threaded": true, "kernel": true, "pattern": true, "plan": true,
	"taskplan": true,
}

// float32Modes are the host-only modes the float32 fast path can execute
// under (mpas.Options.Precision).
var float32Modes = map[string]bool{
	"serial": true, "threaded": true, "plan": true, "taskplan": true,
}

// Normalize validates sp and fills defaults, returning the first problem.
func (sp *JobSpec) Normalize() error {
	if sp.TestCase == 0 {
		sp.TestCase = 5
	}
	switch sp.TestCase {
	case 1, 2, 5, 6, 8:
	default:
		return fmt.Errorf("serve: unknown test case %d (want 1, 2, 5, 6 or 8)", sp.TestCase)
	}
	if sp.Level == 0 {
		sp.Level = 2
	}
	if sp.Level < 1 || sp.Level > MaxLevel {
		return fmt.Errorf("serve: level %d out of range [1,%d]", sp.Level, MaxLevel)
	}
	if sp.Mode == "" {
		sp.Mode = "serial"
	}
	if !validModes[sp.Mode] {
		return fmt.Errorf("serve: unknown mode %q (want serial|threaded|kernel|pattern|plan|taskplan)", sp.Mode)
	}
	if sp.Steps < 0 || sp.Days < 0 {
		return fmt.Errorf("serve: steps and days must be non-negative")
	}
	if (sp.Steps > 0) == (sp.Days > 0) {
		return fmt.Errorf("serve: exactly one of steps or days must be positive")
	}
	if sp.Workers <= 0 {
		sp.Workers = 2
	}
	if sp.Workers > 16 {
		sp.Workers = 16
	}
	if sp.ReportEvery <= 0 {
		sp.ReportEvery = 10
	}
	if sp.TimeoutSec < 0 {
		return fmt.Errorf("serve: timeout_sec must be non-negative")
	}
	if sp.StepDelayMS > 1000 {
		sp.StepDelayMS = 1000
	}
	if sp.StepDelayMS < 0 {
		sp.StepDelayMS = 0
	}
	if sp.Ensemble < 0 {
		return fmt.Errorf("serve: ensemble must be non-negative")
	}
	if sp.Ensemble > MaxEnsemble {
		return fmt.Errorf("serve: ensemble %d out of range [0,%d]", sp.Ensemble, MaxEnsemble)
	}
	if sp.Ensemble > 1 && sp.PerturbEps == 0 {
		sp.PerturbEps = 1e-8
	}
	if sp.PerturbEps < 0 || sp.PerturbEps > 1e-3 {
		return fmt.Errorf("serve: perturb_eps %g out of range (0, 1e-3]", sp.PerturbEps)
	}
	switch sp.Precision {
	case "":
		sp.Precision = "float64"
	case "float64", "float32":
	default:
		return fmt.Errorf("serve: unknown precision %q (want float64 or float32)", sp.Precision)
	}
	if sp.Precision == "float32" && !float32Modes[sp.Mode] {
		return fmt.Errorf("serve: precision float32 requires mode serial, threaded or plan, not %q", sp.Mode)
	}
	return nil
}

// Diag is the flattened invariant set carried by "diag" events and the
// final result — sw.Invariants with stable JSON names.
type Diag struct {
	Mass               float64 `json:"mass"`
	TotalEnergy        float64 `json:"total_energy"`
	PotentialEnstrophy float64 `json:"potential_enstrophy"`
	MinH               float64 `json:"min_h"`
	MaxH               float64 `json:"max_h"`
	MaxSpeed           float64 `json:"max_speed"`
}

func diagOf(inv sw.Invariants) *Diag {
	return &Diag{
		Mass:               inv.Mass,
		TotalEnergy:        inv.TotalEnergy,
		PotentialEnstrophy: inv.PotentialEnstrophy,
		MinH:               inv.MinH,
		MaxH:               inv.MaxH,
		MaxSpeed:           inv.MaxSpeed,
	}
}

// Event is one NDJSON line of a job's event stream.
type Event struct {
	// Type: "state" (lifecycle transition), "diag" (invariant report),
	// "checkpoint" (durable state written), or "done" (terminal, closes
	// the stream).
	Type  string   `json:"type"`
	JobID string   `json:"job_id"`
	Seq   int      `json:"seq"`
	State JobState `json:"state,omitempty"`
	// Step/TotalSteps/SimTime locate the event on the trajectory.
	Step       int     `json:"step,omitempty"`
	TotalSteps int     `json:"total_steps,omitempty"`
	SimTime    float64 `json:"sim_time_s,omitempty"`
	// Member is the 1-based ensemble member a "diag" event describes
	// (0 = the whole job / a single-run job).
	Member int    `json:"member,omitempty"`
	Diag   *Diag  `json:"diag,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Result is the final record of a completed job (GET /jobs/{id}/result,
// persisted as result.json in the spool).
type Result struct {
	JobID       string  `json:"job_id"`
	Steps       int     `json:"steps"`
	SimTime     float64 `json:"sim_time_s"`
	WallSeconds float64 `json:"wall_seconds"`
	Mode        string  `json:"mode"`
	Resumes     int     `json:"resumes"`
	Final       *Diag   `json:"final"`
	// Members holds the per-member final invariants of an ensemble job
	// (Final is then member 0, the unperturbed control).
	Members []*Diag `json:"members,omitempty"`
}

// JobStatus is a consistent snapshot of one job (GET /jobs/{id}); it is
// also the shape persisted to the spool as status.json, which is all the
// recovery scan needs to re-admit a job after a crash.
type JobStatus struct {
	ID    string   `json:"id"`
	Name  string   `json:"name,omitempty"`
	State JobState `json:"state"`
	// Mode is the currently effective execution mode — Spec.Mode unless the
	// job was resumed under a different one.
	Mode          string  `json:"mode"`
	StepsDone     int     `json:"steps_done"`
	TotalSteps    int     `json:"total_steps,omitempty"`
	SimTime       float64 `json:"sim_time_s"`
	Resumes       int     `json:"resumes"`
	SuspendReason string  `json:"suspend_reason,omitempty"`
	Error         string  `json:"error,omitempty"`
	Spec          JobSpec `json:"spec"`
}

// Job is one managed simulation. All mutable fields are guarded by mu;
// handlers and workers only touch them through the methods below.
type Job struct {
	ID string

	mu            sync.Mutex
	spec          JobSpec
	state         JobState
	mode          string
	stepsDone     int
	totalSteps    int
	simTime       float64
	resumes       int
	suspendReason string
	errMsg        string
	cancel        func() // cancels the running context; nil unless running

	// suspend is the cooperative suspend request flag, checked by the
	// worker's per-step interrupt hook.
	suspend atomic.Bool
	// suspendWhy records who asked (SuspendUser or SuspendDrain).
	suspendWhy atomic.Value

	broker *broker

	created time.Time
}

func newJob(id string, spec JobSpec) *Job {
	j := &Job{
		ID:      id,
		spec:    spec,
		state:   StateQueued,
		mode:    spec.Mode,
		broker:  newBroker(),
		created: time.Now(),
	}
	return j
}

// Status returns a consistent snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() JobStatus {
	return JobStatus{
		ID:            j.ID,
		Name:          j.spec.Name,
		State:         j.state,
		Mode:          j.mode,
		StepsDone:     j.stepsDone,
		TotalSteps:    j.totalSteps,
		SimTime:       j.simTime,
		Resumes:       j.resumes,
		SuspendReason: j.suspendReason,
		Error:         j.errMsg,
		Spec:          j.spec,
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// requestSuspend flags the job for cooperative suspension; the worker
// honors it at the next step boundary.
func (j *Job) requestSuspend(why string) {
	j.suspendWhy.Store(why)
	j.suspend.Store(true)
}

// suspendRequested returns the pending suspension reason, or "".
func (j *Job) suspendRequested() string {
	if !j.suspend.Load() {
		return ""
	}
	if why, ok := j.suspendWhy.Load().(string); ok {
		return why
	}
	return SuspendUser
}
