package serve

import "sync"

// broker is the per-job event fan-out: an append-only replay log plus live
// subscriber channels. A subscriber first receives every past event (so a
// client attaching after completion still sees the whole stream) and then
// live events until the job ends or it unsubscribes.

// maxReplayEvents bounds the replay log. A long job emits one diag event
// per report interval; past the cap the oldest events are dropped (Seq
// numbering makes the gap visible to clients).
const maxReplayEvents = 4096

// subBuffer is the per-subscriber channel depth; a subscriber that falls
// further behind than this has events dropped rather than stalling the
// worker (the Seq field again exposes the gap).
const subBuffer = 256

type broker struct {
	mu     sync.Mutex
	nextSq int
	events []Event
	subs   map[chan Event]struct{}
}

func newBroker() *broker {
	return &broker{subs: make(map[chan Event]struct{})}
}

// publish assigns the next sequence number, appends to the replay log and
// fans out to subscribers (dropping for slow ones).
func (b *broker) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSq++
	ev.Seq = b.nextSq
	b.events = append(b.events, ev)
	if len(b.events) > maxReplayEvents {
		b.events = b.events[len(b.events)-maxReplayEvents:]
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than block the worker
		}
	}
}

// subscribe returns a copy of the replay log and a live channel; call
// cancel to unsubscribe (the channel is then closed).
func (b *broker) subscribe() (replay []Event, ch chan Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = append([]Event(nil), b.events...)
	ch = make(chan Event, subBuffer)
	b.subs[ch] = struct{}{}
	cancel = func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
	}
	return replay, ch, cancel
}
