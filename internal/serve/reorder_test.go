package serve

import (
	"io"
	"net/http"
	"testing"
)

// fetchCheckpointBytes downloads a job's raw spooled checkpoint.
func fetchCheckpointBytes(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestReorderJobCanonical submits the same trajectory twice — once on the
// canonical mesh, once locality-renumbered — and requires the spooled
// checkpoints to be BYTE-IDENTICAL: the reorder flag changes only the
// in-memory layout the kernels walk, never any externally visible state.
// That byte equality is exactly what lets a reordered job's checkpoint be
// resumed (or stolen by a cluster peer) under the opposite setting.
func TestReorderJobCanonical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	const steps = 8

	spec := JobSpec{TestCase: 5, Level: 2, Mode: "plan", Steps: steps}
	plain := submitJob(t, ts.URL, spec)
	plain = waitState(t, ts.URL, plain.ID, StateCompleted)

	spec.Reorder = true
	reord := submitJob(t, ts.URL, spec)
	reord = waitState(t, ts.URL, reord.ID, StateCompleted)
	if !reord.Spec.Reorder {
		t.Fatalf("completed spec lost its reorder flag: %+v", reord.Spec)
	}

	a := fetchCheckpointBytes(t, ts.URL, plain.ID)
	b := fetchCheckpointBytes(t, ts.URL, reord.ID)
	if len(a) == 0 {
		t.Fatal("empty checkpoint")
	}
	if string(a) != string(b) {
		t.Fatalf("reordered job's checkpoint differs from canonical (%d vs %d bytes)", len(a), len(b))
	}
}
