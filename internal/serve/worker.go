package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	mpas "repro"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// Worker-internal sentinels threaded through sw.RunControl.Interrupt.
var (
	errStopped   = errors.New("serve: server stopping")
	errSuspended = errors.New("serve: job suspended")
)

// workerLoop is one worker: pop, claim, run, repeat until the queue closes.
func (s *Server) workerLoop(i int) {
	defer s.wg.Done()
	for {
		job, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.mQueueDepth.Set(float64(s.queue.Len()))
		s.runJob(job)
	}
}

// modeFor maps a JobSpec mode string onto the facade's execution design.
func modeFor(mode string) mpas.Mode {
	switch mode {
	case "threaded":
		return mpas.Threaded
	case "kernel":
		return mpas.KernelLevel
	case "pattern":
		return mpas.PatternDriven
	case "plan":
		return mpas.Plan
	case "taskplan":
		return mpas.TaskPlan
	default:
		return mpas.Serial
	}
}

// claimRun atomically moves a queued job to running, installing the cancel
// function. Jobs canceled or suspended while queued fail the claim and are
// simply skipped (their state is already persisted and published).
func (j *Job) claimRun(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	return true
}

// setProgress records trajectory position (in memory; durability rides on
// the checkpoint cadence).
func (j *Job) setProgress(steps, total int, simTime float64) {
	j.mu.Lock()
	j.stepsDone = steps
	j.totalSteps = total
	j.simTime = simTime
	j.mu.Unlock()
}

// runJob executes one claimed job to its next lifecycle boundary:
// completion, failure, cancellation, suspension (user or drain), or a
// crash-like server stop.
func (s *Server) runJob(job *Job) {
	spec := job.Status().Spec // immutable after admission

	timeout := spec.TimeoutSec
	if timeout <= 0 {
		timeout = s.cfg.JobTimeoutSec
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeout*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	if !job.claimRun(cancel) {
		return
	}
	s.mStateGauges[StateQueued].Add(-1)
	s.mStateGauges[StateRunning].Add(1)
	st := s.updateJob(job, func(*Job) {}) // persist the running state
	job.broker.publish(Event{Type: "state", JobID: job.ID, State: StateRunning,
		Step: st.StepsDone, TotalSteps: st.TotalSteps, SimTime: st.SimTime})
	runCtx := s.tRun.Start()
	defer runCtx.Stop()
	start := time.Now()

	// Build the model under the job's currently effective mode.
	mode := st.Mode
	buildCtx := s.tBuild.Start()
	m, err := s.meshForLevel(spec.Level)
	if err != nil {
		buildCtx.Stop()
		s.finishFailed(job, fmt.Errorf("building mesh: %w", err))
		return
	}
	model, err := mpas.New(mpas.Options{
		Mesh:               m,
		Level:              spec.Level,
		TestCase:           mpas.TestCase(spec.TestCase),
		Mode:               modeFor(mode),
		Workers:            spec.Workers,
		DeviceWorkers:      spec.Workers,
		AdjustableFraction: -1,
		HighOrderThickness: spec.HighOrder,
		Precision:          spec.Precision,
		Reorder:            spec.Reorder,
	})
	buildCtx.Stop()
	if err != nil {
		s.finishFailed(job, fmt.Errorf("building model: %w", err))
		return
	}
	defer model.Close()
	solver := model.Solver

	total := spec.Steps
	if spec.Days > 0 {
		total = int(spec.Days*testcases.Day/model.Config.Dt + 0.5)
	}
	ckptEvery := spec.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = s.cfg.CheckpointEvery
	}
	stepDelay := time.Duration(spec.StepDelayMS) * time.Millisecond

	// Ensemble jobs multiplex K member trajectories through this one
	// solver (shared mesh + compiled plan); their checkpoint format and
	// round-robin step loop live in ensemble_run.go.
	if spec.Ensemble > 1 {
		s.runEnsemble(ctx, job, solver, spec, mode, st.Resumes, total, ckptEvery, stepDelay, start)
		return
	}

	// Resume from the spooled checkpoint when one exists; the test-case
	// setup above fixed the topography and initial condition, the
	// checkpoint overwrites the prognostic state and clock.
	if s.spool.hasCheckpoint(job.ID) {
		if err := solver.LoadCheckpoint(s.spool.checkpointPath(job.ID)); err != nil {
			s.finishFailed(job, fmt.Errorf("loading checkpoint: %w", err))
			return
		}
	}

	job.setProgress(solver.StepCount, total, solver.Time)
	remaining := total - solver.StepCount
	if remaining < 0 {
		remaining = 0
	}

	publishDiag := func(sv *sw.Solver) {
		job.broker.publish(Event{Type: "diag", JobID: job.ID,
			Step: sv.StepCount, TotalSteps: total, SimTime: sv.Time,
			Diag: diagOf(sv.ComputeInvariants())})
	}
	publishDiag(solver) // position at (re)start, before the first step

	lastCounted := solver.StepCount
	countSteps := func(sv *sw.Solver) {
		s.mSteps.Add(int64(sv.StepCount - lastCounted))
		lastCounted = sv.StepCount
	}

	runErr := solver.RunControlled(remaining, sw.RunControl{
		Interrupt:   s.interruptFor(ctx, job, stepDelay),
		ReportEvery: spec.ReportEvery,
		Report: func(sv *sw.Solver) error {
			job.setProgress(sv.StepCount, total, sv.Time)
			countSteps(sv)
			publishDiag(sv)
			return nil
		},
		CheckpointEvery: ckptEvery,
		Checkpoint: func(sv *sw.Solver) error {
			if err := s.checkpoint(job, sv, total); err != nil {
				return fmt.Errorf("writing checkpoint: %w", err)
			}
			return nil
		},
	})
	job.setProgress(solver.StepCount, total, solver.Time)
	countSteps(solver)

	switch {
	case runErr == nil:
		// Final checkpoint first: the durable state a client downloads (or
		// a conformance test compares) is exactly the completed trajectory.
		if err := s.checkpoint(job, solver, total); err != nil {
			s.finishFailed(job, fmt.Errorf("writing final checkpoint: %w", err))
			return
		}
		res := Result{
			JobID:       job.ID,
			Steps:       solver.StepCount,
			SimTime:     solver.Time,
			WallSeconds: time.Since(start).Seconds(),
			Mode:        mode,
			Resumes:     st.Resumes,
			Final:       diagOf(solver.ComputeInvariants()),
		}
		if err := s.spool.writeResult(res); err != nil {
			s.finishFailed(job, fmt.Errorf("writing result: %w", err))
			return
		}
		done := s.updateJob(job, func(j *Job) {
			j.state = StateCompleted
			j.cancel = nil
		})
		s.mCompleted.Inc()
		job.broker.publish(Event{Type: "done", JobID: job.ID, State: StateCompleted,
			Step: done.StepsDone, TotalSteps: total, SimTime: done.SimTime, Diag: res.Final})
		s.cfg.Logf("serve: %s completed (%d steps, %.2fs wall)", job.ID, res.Steps, res.WallSeconds)

	case errors.Is(runErr, errStopped):
		// Crash-like stop: leave the spool exactly as the last periodic
		// checkpoint/status write left it; recovery re-admits the job.
		return

	case errors.Is(runErr, errSuspended):
		why := job.suspendRequested()
		if err := s.checkpoint(job, solver, total); err != nil {
			s.finishFailed(job, fmt.Errorf("suspending: %w", err))
			return
		}
		susp := s.updateJob(job, func(j *Job) {
			j.state = StateSuspended
			j.suspendReason = why
			j.cancel = nil
		})
		s.mSuspended.Inc()
		job.broker.publish(Event{Type: "state", JobID: job.ID, State: StateSuspended,
			Step: susp.StepsDone, TotalSteps: total, SimTime: susp.SimTime})
		s.cfg.Logf("serve: %s suspended (%s) at step %d/%d", job.ID, why, susp.StepsDone, total)

	case errors.Is(runErr, context.Canceled):
		// Keep the last state durable for forensics, then close the job.
		_ = s.checkpoint(job, solver, total)
		done := s.updateJob(job, func(j *Job) {
			j.state = StateCanceled
			j.cancel = nil
		})
		s.mCanceled.Inc()
		job.broker.publish(Event{Type: "done", JobID: job.ID, State: StateCanceled,
			Step: done.StepsDone, TotalSteps: total, SimTime: done.SimTime})

	case errors.Is(runErr, context.DeadlineExceeded):
		_ = s.checkpoint(job, solver, total)
		s.finishFailed(job, fmt.Errorf("job deadline exceeded after %d/%d steps", solver.StepCount, total))

	default:
		s.finishFailed(job, runErr)
	}
}

// interruptFor builds the per-step cooperative interrupt for a job: the
// optional pacing delay, the crash-like server stop, pending suspend
// requests, and context cancellation/deadline, in that order.
func (s *Server) interruptFor(ctx context.Context, job *Job, stepDelay time.Duration) func() error {
	return func() error {
		if stepDelay > 0 {
			t := time.NewTimer(stepDelay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			case <-s.stopCh:
				t.Stop()
			}
		}
		select {
		case <-s.stopCh:
			return errStopped
		default:
		}
		if job.suspendRequested() != "" {
			return errSuspended
		}
		return ctx.Err()
	}
}

// checkpoint writes the durable pair (ckpt.bin, status.json) and publishes
// a checkpoint event.
func (s *Server) checkpoint(job *Job, sv *sw.Solver, total int) error {
	tctx := s.tCheckpoint.Start()
	err := s.spool.writeCheckpoint(job.ID, sv)
	tctx.Stop()
	if err != nil {
		return err
	}
	job.setProgress(sv.StepCount, total, sv.Time)
	st := job.Status()
	if err := s.spool.writeStatus(st); err != nil {
		return err
	}
	job.broker.publish(Event{Type: "checkpoint", JobID: job.ID,
		Step: sv.StepCount, TotalSteps: total, SimTime: sv.Time})
	return nil
}

// finishFailed moves a job to the failed terminal state.
func (s *Server) finishFailed(job *Job, err error) {
	st := s.updateJob(job, func(j *Job) {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.cancel = nil
	})
	s.mFailed.Inc()
	job.broker.publish(Event{Type: "done", JobID: job.ID, State: StateFailed,
		Step: st.StepsDone, TotalSteps: st.TotalSteps, SimTime: st.SimTime, Error: err.Error()})
	s.cfg.Logf("serve: %s failed: %v", job.ID, err)
}
