package serve

import (
	"container/heap"
	"errors"
	"sync"
)

// The run queue is the admission-control point of the service: a bounded
// priority queue (higher JobSpec.Priority first, FIFO within a priority).
// Push on a full queue fails fast — the HTTP layer turns that into 429 —
// so queue depth, not heap growth, is the backpressure signal.

// ErrQueueFull is returned by Push when the queue is at capacity.
var ErrQueueFull = errors.New("serve: run queue full")

// ErrQueueClosed is returned by Push after Close.
var ErrQueueClosed = errors.New("serve: run queue closed")

type queueItem struct {
	job      *Job
	priority int
	seq      int64 // FIFO tiebreak within a priority
}

type queueHeap []queueItem

func (h queueHeap) Len() int { return len(h) }
func (h queueHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h queueHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *queueHeap) Push(x any)        { *h = append(*h, x.(queueItem)) }
func (h *queueHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  queueHeap
	cap    int
	seq    int64
	closed bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues j, failing when the queue is full or closed.
func (q *queue) Push(j *Job, priority int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.items) >= q.cap {
		return ErrQueueFull
	}
	q.seq++
	heap.Push(&q.items, queueItem{job: j, priority: priority, seq: q.seq})
	q.cond.Signal()
	return nil
}

// forcePush enqueues j ignoring the capacity bound — used only by the
// startup recovery scan, whose jobs were already admitted once; bouncing
// them would lose durable work.
func (q *queue) forcePush(j *Job, priority int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.seq++
	heap.Push(&q.items, queueItem{job: j, priority: priority, seq: q.seq})
	q.cond.Signal()
}

// Pop blocks until a job is available or the queue is closed. A closed
// queue returns (nil, false) immediately even if items remain — on drain
// the leftover queued jobs stay durable in the spool and are re-admitted by
// the next start's recovery scan.
func (q *queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if len(q.items) > 0 {
			it := heap.Pop(&q.items).(queueItem)
			return it.job, true
		}
		q.cond.Wait()
	}
}

// Len returns the current depth.
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops the queue: waiting Pops return false, further Pushes fail.
func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
