package serve

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestResumeUnderDifferentMode is the mode-mobility guarantee end to end:
// a job suspended mid-run can be resumed under every other execution
// design and still land on a trajectory conform-identical (within the
// exact-strategy ULP band) to an uninterrupted serial run.
func TestResumeUnderDifferentMode(t *testing.T) {
	const (
		level = 2
		steps = 20
	)
	ref := referenceRun(t, level, steps)

	for _, resumeMode := range []string{"serial", "threaded", "kernel", "pattern", "plan", "taskplan"} {
		t.Run("serial_to_"+resumeMode, func(t *testing.T) {
			_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, CheckpointEvery: 100})

			st := submitJob(t, ts.URL, JobSpec{TestCase: 5, Level: level, Mode: "serial",
				Steps: steps, ReportEvery: 2, StepDelayMS: 5, Workers: 3})
			waitState(t, ts.URL, st.ID, StateRunning)

			// Suspend once some (but not all) steps are done.
			deadline := time.Now().Add(60 * time.Second)
			for getStatus(t, ts.URL, st.ID).StepsDone < 4 {
				if time.Now().After(deadline) {
					t.Fatal("job made no progress")
				}
				if got := getStatus(t, ts.URL, st.ID); got.State.Terminal() {
					t.Fatalf("job finished before suspend (%s); widen the window", got.State)
				}
				time.Sleep(5 * time.Millisecond)
			}
			resp := postJSON(t, ts.URL+"/jobs/"+st.ID+"/suspend", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("suspend: %d", resp.StatusCode)
			}
			resp.Body.Close()
			susp := waitState(t, ts.URL, st.ID, StateSuspended)
			if susp.SuspendReason != SuspendUser {
				t.Fatalf("suspend reason %q, want user", susp.SuspendReason)
			}
			if susp.StepsDone <= 0 || susp.StepsDone >= steps {
				t.Fatalf("suspended at step %d, want strictly mid-run", susp.StepsDone)
			}

			// Resume under the target mode.
			resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/resume", "application/json",
				strings.NewReader(`{"mode":"`+resumeMode+`"}`))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("resume: %d", resp.StatusCode)
			}
			resp.Body.Close()

			fin := waitState(t, ts.URL, st.ID, StateCompleted)
			if fin.Mode != resumeMode {
				t.Fatalf("effective mode %q, want %q", fin.Mode, resumeMode)
			}
			if fin.Resumes != 1 {
				t.Fatalf("resumes %d, want 1", fin.Resumes)
			}
			if fin.StepsDone != steps {
				t.Fatalf("finished at step %d, want %d", fin.StepsDone, steps)
			}

			served := fetchFinalState(t, ts.URL, st.ID, level)
			assertConformIdentical(t, ref, served, "serial→"+resumeMode)

			// The result records the resume count and effective mode.
			res := decodeJSON[Result](t, mustGet(t, ts.URL+"/jobs/"+st.ID+"/result"))
			if res.Mode != resumeMode || res.Resumes != 1 {
				t.Fatalf("result mode/resumes %q/%d", res.Mode, res.Resumes)
			}
		})
	}
}
