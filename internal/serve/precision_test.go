package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/conform"
)

// TestFloat32JobRuns submits a float32 fast-mode job through the HTTP API,
// lets it complete, and holds the served trajectory to the documented
// fast-mode band against a float64 reference — while also requiring it to
// actually differ from the reference (a silent float64 fallback would pass
// any band). Checkpoints are float64 regardless of job precision, so the
// final state reads back through the ordinary checkpoint path.
func TestFloat32JobRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	const steps = 8

	st := submitJob(t, ts.URL, JobSpec{TestCase: 5, Level: 2, Mode: "plan",
		Precision: "float32", Steps: steps})
	st = waitState(t, ts.URL, st.ID, StateCompleted)
	if st.Spec.Precision != "float32" {
		t.Fatalf("completed spec lost its precision: %+v", st.Spec)
	}

	served := fetchFinalState(t, ts.URL, st.ID, 2)
	ref := referenceRun(t, 2, steps)
	d := conform.CompareStates(ref.State.H, ref.State.U, served.State.H, served.State.U)
	band := conform.Fast32Band * float64(steps+1)
	if d.RelLInf > band || d.RelL2 > band {
		t.Errorf("float32 job outside the documented band %.1e: %v", band, d)
	}
	if d.RelLInf < 1e-9 {
		t.Errorf("float32 job is float64-close to the reference (%v); fast path did not run", d)
	}
}

// TestFloat32JobValidation pins the spec-level contract: float32 requires a
// host-only mode, both at submission and on resume under a mode override.
func TestFloat32JobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})

	resp := postJSON(t, ts.URL+"/jobs", JobSpec{TestCase: 5, Level: 2,
		Mode: "kernel", Precision: "float32", Steps: 4})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "float32") {
		t.Fatalf("float32 under the kernel hybrid mode: status %d body %q, want 400 naming float32",
			resp.StatusCode, body)
	}

	var sp JobSpec
	sp = JobSpec{TestCase: 5, Level: 2, Precision: "float32", Steps: 4}
	if err := sp.Normalize(); err != nil {
		t.Fatalf("float32 with default mode rejected: %v", err)
	}
	if sp.Precision != "float32" || sp.Mode == "" {
		t.Fatalf("normalize dropped fields: %+v", sp)
	}

	sp = JobSpec{TestCase: 5, Level: 2, Precision: "float16", Steps: 4}
	if err := sp.Normalize(); err == nil ||
		!strings.Contains(err.Error(), "precision") {
		t.Fatalf("unknown precision accepted (err=%v)", err)
	}
}
