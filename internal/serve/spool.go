package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/sw"
)

// The spool is the durability layer: one directory per job holding
//
//	spec.json    — the submitted JobSpec (written once at admission)
//	status.json  — the latest JobStatus (atomically replaced)
//	ckpt.bin     — the latest sw.Solver checkpoint (atomically replaced)
//	result.json  — the final Result (completed jobs only)
//
// Every file is written tmp-then-rename, so a crash (kill -9 included)
// leaves either the previous or the next version, never a torn one. The
// recovery scan on startup reads spec+status of every job directory and
// re-admits the interrupted ones from their last checkpoint.
type spool struct {
	dir string
}

func newSpool(dir string) (*spool, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: spool directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spool: %w", err)
	}
	return &spool{dir: dir}, nil
}

func (sp *spool) jobDir(id string) string { return filepath.Join(sp.dir, id) }

// writeJSONAtomic marshals v and atomically replaces path with it.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// createJob makes the job directory and writes the immutable spec.
func (sp *spool) createJob(id string, spec JobSpec) error {
	if err := os.MkdirAll(sp.jobDir(id), 0o755); err != nil {
		return err
	}
	return writeJSONAtomic(filepath.Join(sp.jobDir(id), "spec.json"), spec)
}

func (sp *spool) writeStatus(st JobStatus) error {
	return writeJSONAtomic(filepath.Join(sp.jobDir(st.ID), "status.json"), st)
}

func (sp *spool) readStatus(id string) (JobStatus, error) {
	var st JobStatus
	err := readJSON(filepath.Join(sp.jobDir(id), "status.json"), &st)
	return st, err
}

func (sp *spool) writeResult(res Result) error {
	return writeJSONAtomic(filepath.Join(sp.jobDir(res.JobID), "result.json"), res)
}

func (sp *spool) readResult(id string) (Result, error) {
	var res Result
	err := readJSON(filepath.Join(sp.jobDir(id), "result.json"), &res)
	return res, err
}

// checkpointPath returns the job's checkpoint file path (which may not
// exist yet).
func (sp *spool) checkpointPath(id string) string {
	return filepath.Join(sp.jobDir(id), "ckpt.bin")
}

// hasCheckpoint reports whether a durable checkpoint exists.
func (sp *spool) hasCheckpoint(id string) bool {
	_, err := os.Stat(sp.checkpointPath(id))
	return err == nil
}

// writeCheckpoint atomically replaces the job's checkpoint with the
// solver's current prognostic state.
func (sp *spool) writeCheckpoint(id string, s *sw.Solver) error {
	path := sp.checkpointPath(id)
	tmp := path + ".tmp"
	if err := s.SaveCheckpoint(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeEnsembleCheckpoint atomically replaces the job's checkpoint with the
// ensemble's current member states.
func (sp *spool) writeEnsembleCheckpoint(id string, e *sw.Ensemble) error {
	path := sp.checkpointPath(id)
	tmp := path + ".tmp"
	if err := e.SaveCheckpoint(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// importCheckpoint atomically installs checkpoint bytes streamed from
// elsewhere (the cluster coordinator's mirror) as the job's checkpoint.
func (sp *spool) importCheckpoint(id string, r io.Reader) error {
	path := sp.checkpointPath(id)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// removeJob deletes a job's spool directory (admission rollback).
func (sp *spool) removeJob(id string) error {
	return os.RemoveAll(sp.jobDir(id))
}

// scan enumerates every spooled job (sorted by id for determinism),
// returning the persisted spec and last status. Directories missing either
// file — e.g. a crash between mkdir and the first status write — are
// skipped with their ids collected in `skipped`.
func (sp *spool) scan() (jobs []JobStatus, skipped []string, err error) {
	entries, err := os.ReadDir(sp.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		id := e.Name()
		st, err := sp.readStatus(id)
		if err != nil || st.ID != id {
			skipped = append(skipped, id)
			continue
		}
		jobs = append(jobs, st)
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	return jobs, skipped, nil
}
