package serve

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func mkJob(id string) *Job { return newJob(id, JobSpec{}) }

func TestQueueFIFOWithinPriority(t *testing.T) {
	q := newQueue(8)
	for _, id := range []string{"a", "b", "c"} {
		if err := q.Push(mkJob(id), 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"a", "b", "c"} {
		j, ok := q.Pop()
		if !ok || j.ID != want {
			t.Fatalf("popped %v, want %s", j, want)
		}
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newQueue(8)
	_ = q.Push(mkJob("low"), 0)
	_ = q.Push(mkJob("high"), 5)
	_ = q.Push(mkJob("mid"), 2)
	_ = q.Push(mkJob("high2"), 5) // FIFO among equals
	var got []string
	for i := 0; i < 4; i++ {
		j, _ := q.Pop()
		got = append(got, j.ID)
	}
	want := []string{"high", "high2", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestQueueBounded(t *testing.T) {
	q := newQueue(2)
	_ = q.Push(mkJob("a"), 0)
	_ = q.Push(mkJob("b"), 0)
	if err := q.Push(mkJob("c"), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// forcePush (recovery) bypasses the cap.
	q.forcePush(mkJob("r"), 0)
	if q.Len() != 3 {
		t.Fatalf("len %d, want 3", q.Len())
	}
}

func TestQueuePopBlocksUntilPushOrClose(t *testing.T) {
	q := newQueue(2)
	var wg sync.WaitGroup
	wg.Add(1)
	got := make(chan string, 1)
	go func() {
		defer wg.Done()
		j, ok := q.Pop()
		if ok {
			got <- j.ID
		}
	}()
	time.Sleep(10 * time.Millisecond)
	_ = q.Push(mkJob("x"), 0)
	select {
	case id := <-got:
		if id != "x" {
			t.Fatalf("popped %s", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Push")
	}
	wg.Wait()

	// Close unblocks waiters with ok=false.
	done := make(chan bool, 1)
	go func() { _, ok := q.Pop(); done <- ok }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Pop returned a job from a closed queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Close")
	}
	// And a closed queue returns false even when items remain (drain
	// leaves them for the recovery scan).
	q2 := newQueue(2)
	_ = q2.Push(mkJob("leftover"), 0)
	q2.Close()
	if _, ok := q2.Pop(); ok {
		t.Fatal("closed non-empty queue handed out a job")
	}
	if err := q.Push(mkJob("z"), 0); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close: %v, want ErrQueueClosed", err)
	}
}

func TestBrokerReplayAndLive(t *testing.T) {
	b := newBroker()
	b.publish(Event{Type: "state", JobID: "j"})
	b.publish(Event{Type: "diag", JobID: "j"})

	replay, live, cancel := b.subscribe()
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 1 || replay[1].Seq != 2 {
		t.Fatalf("replay %+v", replay)
	}
	b.publish(Event{Type: "done", JobID: "j"})
	select {
	case ev := <-live:
		if ev.Type != "done" || ev.Seq != 3 {
			t.Fatalf("live event %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("live event not delivered")
	}
	cancel()
	if _, ok := <-live; ok {
		t.Fatal("channel not closed after cancel")
	}
	// Double-cancel is safe.
	cancel()
}

func TestBrokerReplayBounded(t *testing.T) {
	b := newBroker()
	for i := 0; i < maxReplayEvents+10; i++ {
		b.publish(Event{Type: "diag"})
	}
	replay, _, cancel := b.subscribe()
	defer cancel()
	if len(replay) != maxReplayEvents {
		t.Fatalf("replay length %d, want %d", len(replay), maxReplayEvents)
	}
	// Seq keeps counting across the drop, exposing the gap.
	if replay[0].Seq != 11 {
		t.Fatalf("first retained seq %d, want 11", replay[0].Seq)
	}
}
