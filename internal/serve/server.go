package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sync"
	"sync/atomic"

	"repro/internal/mesh"
	"repro/internal/telemetry"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("serve: draining, not admitting jobs")
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrConflict reports an operation invalid in the job's current state (409).
	ErrConflict = errors.New("serve: operation invalid in current job state")
	// ErrExists reports an import under an already-registered job id (409).
	ErrExists = errors.New("serve: job id already exists")
)

// Config configures a Server.
type Config struct {
	// Workers is the worker-pool size — the maximum number of concurrently
	// running jobs. Default 2.
	Workers int
	// QueueCap bounds the run queue; a full queue rejects submissions
	// (ErrQueueFull → HTTP 429). Default 16.
	QueueCap int
	// SpoolDir is the durable job store. Required.
	SpoolDir string
	// CheckpointEvery is the default checkpoint cadence in steps for jobs
	// that do not set their own. Default 50.
	CheckpointEvery int
	// JobTimeoutSec is the default per-job wall-clock deadline (0 = none).
	JobTimeoutSec float64
	// Registry receives the service metrics; nil creates a private one (the
	// /metrics endpoint serves whichever is in effect).
	Registry *telemetry.Registry
	// Logf logs operational events; nil discards.
	Logf func(format string, args ...any)
}

// Server is the job service: admission, queue, worker pool, spool, metrics.
type Server struct {
	cfg   Config
	reg   *telemetry.Registry
	spool *spool
	queue *queue

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order for listings

	meshMu sync.Mutex
	meshes map[int]*meshEntry

	draining atomic.Bool
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Metrics.
	mSubmitted   *telemetry.Counter
	mImported    *telemetry.Counter
	mRejects     *telemetry.Counter
	mCompleted   *telemetry.Counter
	mFailed      *telemetry.Counter
	mCanceled    *telemetry.Counter
	mSuspended   *telemetry.Counter
	mResumed     *telemetry.Counter
	mRecovered   *telemetry.Counter
	mSteps       *telemetry.Counter
	mQueueDepth  *telemetry.Gauge
	mStateGauges map[JobState]*telemetry.Gauge
	tRun         *telemetry.Timer
	tBuild       *telemetry.Timer
	tCheckpoint  *telemetry.Timer
}

// meshEntry caches one level's serialized mesh; every job decodes a private
// copy, so concurrently running solvers never share (and never race on)
// mesh arrays.
type meshEntry struct {
	once sync.Once
	data []byte
	err  error
}

// New builds a server over cfg.SpoolDir, runs the recovery scan
// (re-admitting interrupted jobs from their last checkpoint), and starts
// the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 50
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	sp, err := newSpool(cfg.SpoolDir)
	if err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		spool:  sp,
		queue:  newQueue(cfg.QueueCap),
		jobs:   make(map[string]*Job),
		meshes: make(map[int]*meshEntry),
		stopCh: make(chan struct{}),

		mSubmitted:  reg.Counter("serve_jobs_submitted_total"),
		mImported:   reg.Counter("serve_jobs_imported_total"),
		mRejects:    reg.Counter("serve_admission_rejects_total"),
		mCompleted:  reg.Counter("serve_jobs_completed_total"),
		mFailed:     reg.Counter("serve_jobs_failed_total"),
		mCanceled:   reg.Counter("serve_jobs_canceled_total"),
		mSuspended:  reg.Counter("serve_jobs_suspended_total"),
		mResumed:    reg.Counter("serve_jobs_resumed_total"),
		mRecovered:  reg.Counter("serve_jobs_recovered_total"),
		mSteps:      reg.Counter("serve_steps_total"),
		mQueueDepth: reg.Gauge("serve_queue_depth"),
		tRun:        reg.Timer("serve_job_run_seconds"),
		tBuild:      reg.Timer("serve_model_build_seconds"),
		tCheckpoint: reg.Timer("serve_checkpoint_seconds"),
	}
	s.mStateGauges = make(map[JobState]*telemetry.Gauge)
	for _, st := range []JobState{StateQueued, StateRunning, StateSuspended,
		StateCompleted, StateFailed, StateCanceled} {
		s.mStateGauges[st] = reg.Gauge("serve_jobs_" + string(st))
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop(i)
	}
	return s, nil
}

// Registry exposes the metrics registry backing /metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// recover scans the spool and re-admits interrupted jobs: queued and
// running jobs (a crash mid-run) resume from their last checkpoint, as do
// jobs suspended by a previous drain; user-suspended jobs stay suspended
// until an explicit resume; terminal jobs are registered for listing only.
// Event streams do not survive a restart — a recovered job's stream starts
// with its recovery transition.
func (s *Server) recover() error {
	sts, skipped, err := s.spool.scan()
	if err != nil {
		return err
	}
	for _, id := range skipped {
		s.cfg.Logf("serve: spool %s: incomplete job directory, ignoring", id)
	}
	for _, st := range sts {
		job := newJob(st.ID, st.Spec)
		job.state = st.State
		job.mode = st.Mode
		job.stepsDone = st.StepsDone
		job.totalSteps = st.TotalSteps
		job.simTime = st.SimTime
		job.resumes = st.Resumes
		job.suspendReason = st.SuspendReason
		job.errMsg = st.Error
		s.jobs[st.ID] = job
		s.order = append(s.order, st.ID)
		s.mStateGauges[job.state].Add(1)

		readmit := st.State == StateQueued || st.State == StateRunning ||
			(st.State == StateSuspended && st.SuspendReason == SuspendDrain)
		if !readmit {
			continue
		}
		s.updateJob(job, func(j *Job) {
			if j.state != StateQueued {
				j.resumes++
			}
			j.state = StateQueued
			j.suspendReason = ""
		})
		job.broker.publish(Event{Type: "state", JobID: job.ID, State: StateQueued,
			Step: st.StepsDone, TotalSteps: st.TotalSteps, SimTime: st.SimTime})
		// Recovery bypasses the admission cap: these jobs were already
		// admitted once and are durable; bouncing them would lose work.
		s.queue.forcePush(job, job.spec.Priority)
		s.mRecovered.Inc()
		s.cfg.Logf("serve: recovered %s (%s, step %d/%d)", job.ID, st.State, st.StepsDone, st.TotalSteps)
	}
	s.mQueueDepth.Set(float64(s.queue.Len()))
	return nil
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the host is broken
	}
	return "j-" + hex.EncodeToString(b[:])
}

// Submit admits a new job: validates the spec, persists it to the spool,
// and enqueues it. Returns ErrDraining during shutdown, ErrQueueFull when
// the queue is at capacity, or a validation error.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	if s.draining.Load() {
		s.mRejects.Inc()
		return JobStatus{}, ErrDraining
	}
	if err := spec.Normalize(); err != nil {
		return JobStatus{}, err
	}
	job := newJob(newJobID(), spec)

	s.mu.Lock()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()

	if err := s.spool.createJob(job.ID, spec); err != nil {
		s.unregister(job.ID)
		return JobStatus{}, err
	}
	st := s.updateJob(job, func(*Job) {})
	s.mStateGauges[StateQueued].Add(1)
	if err := s.queue.Push(job, spec.Priority); err != nil {
		s.mStateGauges[StateQueued].Add(-1)
		s.unregister(job.ID)
		s.spool.removeJob(job.ID)
		s.mRejects.Inc()
		return JobStatus{}, err
	}
	s.mSubmitted.Inc()
	s.mQueueDepth.Set(float64(s.queue.Len()))
	job.broker.publish(Event{Type: "state", JobID: job.ID, State: StateQueued})
	s.cfg.Logf("serve: admitted %s (%s tc%d level %d, %s)", job.ID, spec.Mode, spec.TestCase, spec.Level, describeLength(spec))
	return st, nil
}

// importIDPattern bounds caller-chosen ids to the shapes this system mints
// ("j-…" locally, "c-…" from a cluster coordinator) — a flat lowercase
// token, never a path.
var importIDPattern = regexp.MustCompile(`^[a-z]-[0-9a-f]{8,32}$`)

// Import admits a job under a caller-chosen id, optionally seeding its
// spool with a checkpoint to resume from — the cluster coordinator's
// submit and work-stealing path. The status carries the effective mode,
// progress and resume count of the migrating job; the job is enqueued as
// queued and its worker resumes from the imported checkpoint exactly like
// a recovered crash. Returns ErrExists when the id is taken, ErrDraining /
// ErrQueueFull under admission pressure.
func (s *Server) Import(st JobStatus, ckpt io.Reader) (JobStatus, error) {
	if s.draining.Load() {
		s.mRejects.Inc()
		return JobStatus{}, ErrDraining
	}
	if !importIDPattern.MatchString(st.ID) {
		return JobStatus{}, fmt.Errorf("serve: invalid import job id %q", st.ID)
	}
	spec := st.Spec
	if err := spec.Normalize(); err != nil {
		return JobStatus{}, err
	}
	mode := st.Mode
	if mode == "" {
		mode = spec.Mode
	}
	if !validModes[mode] {
		return JobStatus{}, fmt.Errorf("serve: unknown mode %q", mode)
	}
	if spec.Precision == "float32" && !float32Modes[mode] {
		return JobStatus{}, fmt.Errorf("serve: precision float32 cannot run under mode %q", mode)
	}

	job := newJob(st.ID, spec)
	job.mode = mode
	job.stepsDone = st.StepsDone
	job.totalSteps = st.TotalSteps
	job.simTime = st.SimTime
	job.resumes = st.Resumes

	s.mu.Lock()
	if _, taken := s.jobs[job.ID]; taken {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: %s", ErrExists, job.ID)
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()

	if err := s.spool.createJob(job.ID, spec); err != nil {
		s.unregister(job.ID)
		return JobStatus{}, err
	}
	if ckpt != nil {
		if err := s.spool.importCheckpoint(job.ID, ckpt); err != nil {
			s.unregister(job.ID)
			s.spool.removeJob(job.ID)
			return JobStatus{}, fmt.Errorf("serve: importing checkpoint: %w", err)
		}
	}
	out := s.updateJob(job, func(*Job) {})
	s.mStateGauges[StateQueued].Add(1)
	if err := s.queue.Push(job, spec.Priority); err != nil {
		s.mStateGauges[StateQueued].Add(-1)
		s.unregister(job.ID)
		s.spool.removeJob(job.ID)
		s.mRejects.Inc()
		return JobStatus{}, err
	}
	s.mImported.Inc()
	s.mQueueDepth.Set(float64(s.queue.Len()))
	job.broker.publish(Event{Type: "state", JobID: job.ID, State: StateQueued,
		Step: out.StepsDone, TotalSteps: out.TotalSteps, SimTime: out.SimTime})
	s.cfg.Logf("serve: imported %s (%s, step %d/%d, checkpoint=%v)",
		job.ID, mode, out.StepsDone, out.TotalSteps, ckpt != nil)
	return out, nil
}

func describeLength(spec JobSpec) string {
	if spec.Days > 0 {
		return fmt.Sprintf("%g days", spec.Days)
	}
	return fmt.Sprintf("%d steps", spec.Steps)
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Job returns a job by id.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs lists every known job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// updateJob applies f under the job lock, persists the resulting status to
// the spool, and keeps the per-state gauges consistent. It returns the
// post-mutation snapshot.
func (s *Server) updateJob(j *Job, f func(*Job)) JobStatus {
	j.mu.Lock()
	old := j.state
	f(j)
	st := j.statusLocked()
	j.mu.Unlock()
	if old != st.State {
		s.mStateGauges[old].Add(-1)
		s.mStateGauges[st.State].Add(1)
	}
	if err := s.spool.writeStatus(st); err != nil {
		s.cfg.Logf("serve: %s: persisting status: %v", st.ID, err)
	}
	return st
}

// Cancel terminates a job: a queued or suspended job is canceled in place;
// a running one has its context canceled and the worker finishes the
// transition (checkpointing first, so the state remains inspectable).
func (s *Server) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateSuspended:
		j.mu.Unlock()
		st := s.updateJob(j, func(j *Job) {
			j.state = StateCanceled
			j.suspendReason = ""
		})
		s.mCanceled.Inc()
		j.broker.publish(Event{Type: "done", JobID: id, State: StateCanceled,
			Step: st.StepsDone, TotalSteps: st.TotalSteps, SimTime: st.SimTime})
		return nil
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("%w: cannot cancel %s job", ErrConflict, st)
	}
}

// Suspend checkpoints and parks a job: a running job suspends at its next
// step boundary; a queued job is parked immediately.
func (s *Server) Suspend(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch j.state {
	case StateRunning:
		j.mu.Unlock()
		j.requestSuspend(SuspendUser)
		return nil
	case StateQueued:
		j.mu.Unlock()
		s.updateJob(j, func(j *Job) {
			j.state = StateSuspended
			j.suspendReason = SuspendUser
		})
		s.mSuspended.Inc()
		j.broker.publish(Event{Type: "state", JobID: id, State: StateSuspended})
		return nil
	default:
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("%w: cannot suspend %s job", ErrConflict, st)
	}
}

// Resume re-enqueues a suspended job, optionally under a different
// execution mode — the internal/conform equivalence guarantee makes the
// trajectory independent of that choice.
func (s *Server) Resume(id, mode string) error {
	if s.draining.Load() {
		return ErrDraining
	}
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	if mode != "" && !validModes[mode] {
		return fmt.Errorf("serve: unknown mode %q (want serial|threaded|kernel|pattern|plan)", mode)
	}
	if mode != "" && !float32Modes[mode] {
		if sp := j.Status().Spec; sp.Precision == "float32" {
			return fmt.Errorf("serve: precision float32 cannot resume under mode %q", mode)
		}
	}
	j.mu.Lock()
	if j.state != StateSuspended {
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("%w: cannot resume %s job", ErrConflict, st)
	}
	j.mu.Unlock()
	j.suspend.Store(false)
	st := s.updateJob(j, func(j *Job) {
		j.state = StateQueued
		j.suspendReason = ""
		j.resumes++
		if mode != "" {
			j.mode = mode
		}
	})
	if err := s.queue.Push(j, st.Spec.Priority); err != nil {
		s.updateJob(j, func(j *Job) {
			j.state = StateSuspended
			j.suspendReason = SuspendUser
			j.resumes--
		})
		s.mRejects.Inc()
		return err
	}
	s.mResumed.Inc()
	s.mQueueDepth.Set(float64(s.queue.Len()))
	j.broker.publish(Event{Type: "state", JobID: id, State: StateQueued,
		Step: st.StepsDone, TotalSteps: st.TotalSteps, SimTime: st.SimTime})
	return nil
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth returns the current run-queue depth.
func (s *Server) QueueDepth() int { return s.queue.Len() }

// Drain gracefully shuts the service down: admission stops (submissions
// get ErrDraining), queued jobs stay durable in the spool for the next
// start, running jobs are checkpointed and suspended with reason "drain"
// (auto-resumed by the next start's recovery scan), and the worker pool
// exits. Returns ctx.Err() if the workers do not finish in time.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.State() == StateRunning {
			j.requestSuspend(SuspendDrain)
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.cfg.Logf("serve: drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the server immediately, crash-like: running jobs are
// abandoned mid-step-loop without any further spool write, exactly as a
// kill -9 would leave them (their last periodic checkpoint is the recovery
// point). Worker goroutines are joined so tests stay leak-free.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.draining.Store(true)
	s.queue.Close()
	s.wg.Wait()
}

// meshForLevel returns a private copy of the level's mesh. The build runs
// once per level (serialized to bytes); each job decodes its own copy, so
// no two solvers ever share mutable mesh arrays.
func (s *Server) meshForLevel(level int) (*mesh.Mesh, error) {
	s.meshMu.Lock()
	e, ok := s.meshes[level]
	if !ok {
		e = &meshEntry{}
		s.meshes[level] = e
	}
	s.meshMu.Unlock()
	e.once.Do(func() {
		// The same Lloyd default as mpas.New, so served trajectories are
		// bitwise comparable with CLI runs at the same level.
		m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
		if err != nil {
			e.err = err
			return
		}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			e.err = err
			return
		}
		e.data = buf.Bytes()
	})
	if e.err != nil {
		return nil, e.err
	}
	return mesh.ReadFrom(bytes.NewReader(e.data))
}
