package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/conform"
	"repro/internal/mesh"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// newTestServer builds a server over a fresh spool plus an httptest front.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func submitJob(t *testing.T, base string, spec JobSpec) JobStatus {
	t.Helper()
	resp := postJSON(t, base+"/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	return decodeJSON[JobStatus](t, resp)
}

func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("status: %d", resp.StatusCode)
	}
	return decodeJSON[JobStatus](t, resp)
}

// waitState polls until the job reaches want (fatal on a terminal detour
// or timeout).
func waitState(t *testing.T, base, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached terminal %s (err %q) while waiting for %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// fetchFinalState downloads the job's checkpoint and loads it into a fresh
// solver on an identically built mesh.
func fetchFinalState(t *testing.T, base, id string, level int) *sw.Solver {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReadCheckpoint(resp.Body); err != nil {
		t.Fatal(err)
	}
	return s
}

// referenceRun integrates the same case uninterrupted, in process.
func referenceRun(t *testing.T, level, steps int) *sw.Solver {
	t.Helper()
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(s)
	s.Run(steps)
	return s
}

// assertConformIdentical compares two final states within the established
// exact-strategy ULP band.
func assertConformIdentical(t *testing.T, a, b *sw.Solver, what string) {
	t.Helper()
	d := conform.CompareStates(a.State.H, a.State.U, b.State.H, b.State.U)
	if !conform.ExactTol.Accepts(d) {
		t.Fatalf("%s: trajectories diverge: %v", what, d)
	}
}

// TestSubmitRunStreamResult is the happy-path end-to-end: submit over
// HTTP, watch NDJSON diagnostics, fetch the result, download the final
// checkpoint, and prove the served trajectory is conform-identical to an
// uninterrupted in-process run.
func TestSubmitRunStreamResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, CheckpointEvery: 10})
	const steps = 24

	st := submitJob(t, ts.URL, JobSpec{TestCase: 5, Level: 2, Mode: "serial",
		Steps: steps, ReportEvery: 6})
	if st.State != StateQueued || !strings.HasPrefix(st.ID, "j-") {
		t.Fatalf("submitted status %+v", st)
	}

	// Follow the event stream to completion (exercises live streaming).
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type %q", ct)
	}
	var events []Event
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		events = append(events, ev)
		if ev.Type == "done" {
			break
		}
	}
	var diags, ckpts int
	var final Event
	for _, ev := range events {
		switch ev.Type {
		case "diag":
			diags++
			if ev.Diag == nil || ev.Diag.Mass <= 0 {
				t.Fatalf("diag event without invariants: %+v", ev)
			}
		case "checkpoint":
			ckpts++
		case "done":
			final = ev
		}
	}
	// 1 initial + steps/ReportEvery periodic diagnostics.
	if diags < 1+steps/6 {
		t.Errorf("%d diag events, want >= %d", diags, 1+steps/6)
	}
	if ckpts < steps/10 {
		t.Errorf("%d checkpoint events, want >= %d", ckpts, steps/10)
	}
	if final.State != StateCompleted || final.Step != steps {
		t.Fatalf("final event %+v", final)
	}

	// Result endpoint.
	res := decodeJSON[Result](t, mustGet(t, ts.URL+"/jobs/"+st.ID+"/result"))
	if res.Steps != steps || res.Final == nil || res.Final.Mass <= 0 {
		t.Fatalf("result %+v", res)
	}

	// Served trajectory == uninterrupted in-process trajectory.
	served := fetchFinalState(t, ts.URL, st.ID, 2)
	ref := referenceRun(t, 2, steps)
	assertConformIdentical(t, ref, served, "served vs in-process")

	// Listing includes the job as completed.
	list := decodeJSON[[]JobStatus](t, mustGet(t, ts.URL+"/jobs"))
	if len(list) != 1 || list[0].State != StateCompleted {
		t.Fatalf("listing %+v", list)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return resp
}

// TestAdmissionControl: a saturated queue returns 429 with Retry-After
// rather than growing; healthz reports the depth.
func TestAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})

	// One slow job occupies the single worker; two more fill the queue.
	slow := JobSpec{TestCase: 2, Level: 1, Steps: 4000, StepDelayMS: 10, ReportEvery: 1000}
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		ids = append(ids, submitJob(t, ts.URL, slow).ID)
	}
	// Give the worker a moment to claim the first job, freeing a slot —
	// we only require that SOME submission past the bound is rejected.
	deadline := time.Now().Add(30 * time.Second)
	var rejected bool
	for time.Now().Before(deadline) && !rejected {
		resp := postJSON(t, ts.URL+"/jobs", slow)
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			rejected = true
		case http.StatusAccepted:
			st := decodeJSON[JobStatus](t, resp)
			ids = append(ids, st.ID)
			continue
		default:
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("unexpected submit status %d: %s", resp.StatusCode, body)
		}
		resp.Body.Close()
	}
	if !rejected {
		t.Fatal("queue never saturated into a 429")
	}

	health := decodeJSON[map[string]any](t, mustGet(t, ts.URL+"/healthz"))
	if health["status"] != "ok" {
		t.Fatalf("healthz %+v", health)
	}
	if depth, ok := health["queue_depth"].(float64); !ok || depth < 1 {
		t.Fatalf("healthz queue_depth %v", health["queue_depth"])
	}

	// Metrics exposure includes the admission reject counter.
	body, _ := io.ReadAll(mustGet(t, ts.URL+"/metrics").Body)
	if !strings.Contains(string(body), "serve_admission_rejects_total") {
		t.Errorf("metrics missing serve_admission_rejects_total:\n%s", body)
	}
	if !strings.Contains(string(body), "serve_jobs_submitted_total") {
		t.Errorf("metrics missing serve_jobs_submitted_total")
	}

	// Cancel everything so cleanup is fast.
	for _, id := range ids {
		resp := postJSON(t, ts.URL+"/jobs/"+id+"/cancel", nil)
		resp.Body.Close()
	}
}

// TestCancel covers canceling both a running and a queued job.
func TestCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})

	running := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 4000,
		StepDelayMS: 10, ReportEvery: 1000})
	queued := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 10})

	waitState(t, ts.URL, running.ID, StateRunning)
	// Cancel the queued job first (it is parked behind the slow one).
	resp := postJSON(t, ts.URL+"/jobs/"+queued.ID+"/cancel", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %d", resp.StatusCode)
	}
	resp.Body.Close()
	if st := getStatus(t, ts.URL, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job state %s, want canceled", st.State)
	}

	resp = postJSON(t, ts.URL+"/jobs/"+running.ID+"/cancel", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: %d", resp.StatusCode)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts.URL, running.ID)
		if st.State == StateCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running job stuck in %s after cancel", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Canceling a terminal job conflicts.
	resp = postJSON(t, ts.URL+"/jobs/"+running.ID+"/cancel", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestDeadline: a per-job timeout moves the job to failed with a deadline
// message, leaving a checkpoint behind.
func TestDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	st := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 100000,
		StepDelayMS: 5, ReportEvery: 10000, TimeoutSec: 0.3})
	deadline := time.Now().Add(60 * time.Second)
	for {
		got := getStatus(t, ts.URL, st.ID)
		if got.State == StateFailed {
			if !strings.Contains(got.Error, "deadline") {
				t.Fatalf("failure message %q, want deadline", got.Error)
			}
			break
		}
		if got.State.Terminal() {
			t.Fatalf("terminal state %s, want failed", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never hit its deadline (state %s)", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !s.spool.hasCheckpoint(st.ID) {
		t.Error("no forensic checkpoint after deadline failure")
	}
}

// TestHTTPValidation walks the 4xx surfaces.
func TestHTTPValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})

	post := func(path, body string) *http.Response {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	check := func(resp *http.Response, want int, what string) {
		t.Helper()
		if resp.StatusCode != want {
			body, _ := io.ReadAll(resp.Body)
			t.Errorf("%s: status %d, want %d (%s)", what, resp.StatusCode, want, body)
		}
		resp.Body.Close()
	}

	check(post("/jobs", "{not json"), http.StatusBadRequest, "malformed JSON")
	check(post("/jobs", `{"bogus_field":1,"steps":5}`), http.StatusBadRequest, "unknown field")
	check(post("/jobs", `{"steps":5,"mode":"gpu"}`), http.StatusBadRequest, "bad mode")
	check(post("/jobs", `{"steps":5,"level":9}`), http.StatusBadRequest, "bad level")
	check(post("/jobs", `{}`), http.StatusBadRequest, "no length")

	resp, _ := http.Get(ts.URL + "/jobs/j-nope")
	check(resp, http.StatusNotFound, "unknown job status")
	resp, _ = http.Get(ts.URL + "/jobs/j-nope/events")
	check(resp, http.StatusNotFound, "unknown job events")
	resp, _ = http.Get(ts.URL + "/jobs/j-nope/checkpoint")
	check(resp, http.StatusNotFound, "unknown job checkpoint")
	check(post("/jobs/j-nope/cancel", ""), http.StatusNotFound, "unknown job cancel")

	// Valid job: wrong-state operations conflict.
	st := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 4})
	waitState(t, ts.URL, st.ID, StateCompleted)
	check(post("/jobs/"+st.ID+"/suspend", ""), http.StatusConflict, "suspend completed")
	check(post("/jobs/"+st.ID+"/resume", ""), http.StatusConflict, "resume completed")
	resp, _ = http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("result of completed job: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Result of a non-completed job conflicts.
	slow := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 4000,
		StepDelayMS: 10, ReportEvery: 1000})
	resp, _ = http.Get(ts.URL + "/jobs/" + slow.ID + "/result")
	check(resp, http.StatusConflict, "result before completion")
	resp = post("/jobs/"+slow.ID+"/cancel", "")
	resp.Body.Close()
}

// TestCrashRecovery simulates kill -9: hard-stop the server mid-job (no
// final spool writes), then boot a fresh server over the same spool and
// verify the job resumes from its periodic checkpoint and finishes with a
// trajectory conform-identical to an uninterrupted run.
func TestCrashRecovery(t *testing.T) {
	spoolDir := t.TempDir()
	const steps = 40

	s1, err := New(Config{Workers: 1, QueueCap: 4, SpoolDir: spoolDir,
		CheckpointEvery: 5, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	st := submitJob(t, ts1.URL, JobSpec{TestCase: 5, Level: 2, Mode: "serial",
		Steps: steps, ReportEvery: 5, CheckpointEvery: 5, StepDelayMS: 5})

	// Wait until at least one periodic checkpoint is durable, then "crash".
	deadline := time.Now().Add(60 * time.Second)
	for !s1.spool.hasCheckpoint(st.ID) || getStatus(t, ts1.URL, st.ID).StepsDone < 7 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		if got := getStatus(t, ts1.URL, st.ID); got.State.Terminal() {
			t.Fatalf("job finished before the crash window (%s) — increase steps", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	s1.Close() // crash-like: abandons the run mid-loop, no further writes

	// The spool must still say "running" — exactly what a kill -9 leaves.
	crashSt, err := s1.spool.readStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if crashSt.State != StateRunning {
		t.Fatalf("spooled state after crash: %s, want running", crashSt.State)
	}

	// Reboot over the same spool: the recovery scan re-admits the job.
	s2, err := New(Config{Workers: 1, QueueCap: 4, SpoolDir: spoolDir,
		CheckpointEvery: 5, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	fin := waitState(t, ts2.URL, st.ID, StateCompleted)
	if fin.Resumes < 1 {
		t.Errorf("recovered job reports %d resumes, want >= 1", fin.Resumes)
	}
	if fin.StepsDone != steps {
		t.Errorf("recovered job finished at step %d, want %d", fin.StepsDone, steps)
	}

	served := fetchFinalState(t, ts2.URL, st.ID, 2)
	ref := referenceRun(t, 2, steps)
	assertConformIdentical(t, ref, served, "crash-recovered vs uninterrupted")
}

// TestDrain: graceful shutdown stops admission (503), checkpoints and
// suspends the in-flight job with reason "drain", and a restart over the
// same spool auto-resumes and completes it.
func TestDrain(t *testing.T) {
	spoolDir := t.TempDir()
	const steps = 40

	s1, err := New(Config{Workers: 1, QueueCap: 4, SpoolDir: spoolDir,
		CheckpointEvery: 100, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	st := submitJob(t, ts1.URL, JobSpec{TestCase: 5, Level: 2, Steps: steps,
		ReportEvery: 5, StepDelayMS: 5})
	waitState(t, ts1.URL, st.ID, StateRunning)

	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s1.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Admission is closed.
	resp := postJSON(t, ts1.URL+"/jobs", JobSpec{TestCase: 2, Level: 1, Steps: 2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	drained := getStatus(t, ts1.URL, st.ID)
	if drained.State != StateSuspended || drained.SuspendReason != SuspendDrain {
		t.Fatalf("after drain: %+v, want suspended/drain", drained)
	}
	if !s1.spool.hasCheckpoint(st.ID) {
		t.Fatal("drain did not checkpoint the in-flight job")
	}
	ts1.Close()
	s1.Close()

	// Restart: drain-suspended jobs auto-resume.
	s2, err := New(Config{Workers: 1, QueueCap: 4, SpoolDir: spoolDir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	fin := waitState(t, ts2.URL, st.ID, StateCompleted)
	if fin.StepsDone != steps {
		t.Errorf("finished at step %d, want %d", fin.StepsDone, steps)
	}

	served := fetchFinalState(t, ts2.URL, st.ID, 2)
	ref := referenceRun(t, 2, steps)
	assertConformIdentical(t, ref, served, "drain-resumed vs uninterrupted")
}

// TestEventsReplayOnly: ?follow=0 returns the replay and closes even for a
// live job.
func TestEventsReplayOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	st := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 4000,
		StepDelayMS: 10, ReportEvery: 1000})
	waitState(t, ts.URL, st.ID, StateRunning)
	resp := mustGet(t, ts.URL+"/jobs/"+st.ID+"/events?follow=0")
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"type":"state"`) {
		t.Errorf("replay missing state events: %s", body)
	}
	resp2 := postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", nil)
	resp2.Body.Close()
}

// TestPriorityOrdering: with one worker busy, a high-priority submission
// overtakes earlier low-priority ones in the queue.
func TestPriorityOrdering(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	blocker := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 4000,
		StepDelayMS: 10, ReportEvery: 1000})
	waitState(t, ts.URL, blocker.ID, StateRunning)

	low := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 2})
	high := submitJob(t, ts.URL, JobSpec{TestCase: 2, Level: 1, Steps: 2, Priority: 9})

	resp := postJSON(t, ts.URL+"/jobs/"+blocker.ID+"/cancel", nil)
	resp.Body.Close()

	waitState(t, ts.URL, high.ID, StateCompleted)
	if st := getStatus(t, ts.URL, low.ID); st.State == StateCompleted {
		// Possible only if high finished first; verify by completion order:
		// high must already be completed when low is — which waitState
		// established. Nothing further to assert.
		_ = st
	}
}
