package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/sw"
)

// Ensemble job execution: K perturbed trajectories admitted as ONE job and
// multiplexed through the worker's single solver, so the mesh, the kernel
// scaffolding and (in plan mode) the compiled execution plan are built once
// and shared by every member — the batch-admission shape the ROADMAP asks
// for. Members advance in rounds of ReportEvery steps; each round streams
// one "diag" event per member (Event.Member is 1-based), and checkpoints
// capture the whole ensemble, so suspension, crash recovery and cluster
// work stealing migrate all K members together.

// runEnsemble executes one claimed ensemble job to its next lifecycle
// boundary. The caller (runJob) has claimed the job, built the model, and
// published the running transition; total/ckptEvery/stepDelay are already
// defaulted.
func (s *Server) runEnsemble(ctx context.Context, job *Job, solver *sw.Solver,
	spec JobSpec, mode string, resumes, total, ckptEvery int,
	stepDelay time.Duration, start time.Time) {

	ens, err := sw.NewEnsemble(solver, spec.Ensemble)
	if err != nil {
		s.finishFailed(job, err)
		return
	}
	if s.spool.hasCheckpoint(job.ID) {
		if err := ens.LoadCheckpoint(s.spool.checkpointPath(job.ID)); err != nil {
			s.finishFailed(job, fmt.Errorf("loading ensemble checkpoint: %w", err))
			return
		}
	} else {
		// First run: jitter members 1..K-1; member 0 stays the control.
		// The perturbation is a pure function of (seed, member, cell), so
		// a stolen-and-restarted job without a checkpoint regenerates the
		// identical ensemble.
		for i := 1; i < ens.K(); i++ {
			ens.PerturbH(i, spec.PerturbSeed, spec.PerturbEps)
		}
	}
	job.setProgress(ens.MinStep(), total, ens.MinTime())

	interrupt := s.interruptFor(ctx, job, stepDelay)
	publishMemberDiag := func(i int, sv *sw.Solver) {
		job.broker.publish(Event{Type: "diag", JobID: job.ID, Member: i + 1,
			Step: sv.StepCount, TotalSteps: total, SimTime: sv.Time,
			Diag: diagOf(sv.ComputeInvariants())})
	}

	// Position at (re)start, one event per member, before the first step.
	for i := 0; i < ens.K(); i++ {
		_ = ens.WithMember(i, func(sv *sw.Solver) error {
			publishMemberDiag(i, sv)
			return nil
		})
	}

	// Rounds: advance every member to the next ReportEvery frontier. After
	// a resume mid-round, lagging members catch up first (the frontier is
	// min+ReportEvery, so mixed-step checkpoints converge naturally).
	var runErr error
rounds:
	for {
		minStep := ens.MinStep()
		if minStep >= total {
			break
		}
		target := minStep + spec.ReportEvery
		if target > total {
			target = total
		}
		for i := 0; i < ens.K(); i++ {
			n := target - ens.StepOf(i)
			if n <= 0 {
				continue
			}
			before := ens.StepOf(i)
			err := ens.WithMember(i, func(sv *sw.Solver) error {
				rErr := sv.RunControlled(n, sw.RunControl{Interrupt: interrupt})
				publishMemberDiag(i, sv)
				return rErr
			})
			s.mSteps.Add(int64(ens.StepOf(i) - before))
			job.setProgress(ens.MinStep(), total, ens.MinTime())
			if err != nil {
				runErr = err
				break rounds
			}
		}
		if ckptEvery > 0 && target%ckptEvery == 0 && target < total {
			if err := s.checkpointEnsemble(job, ens, total); err != nil {
				s.finishFailed(job, fmt.Errorf("writing ensemble checkpoint: %w", err))
				return
			}
		}
	}
	job.setProgress(ens.MinStep(), total, ens.MinTime())

	switch {
	case runErr == nil:
		// Final checkpoint first, exactly like the single-run path: the
		// durable state a client (or a stealing coordinator) downloads is
		// the completed ensemble.
		if err := s.checkpointEnsemble(job, ens, total); err != nil {
			s.finishFailed(job, fmt.Errorf("writing final ensemble checkpoint: %w", err))
			return
		}
		finals := make([]*Diag, ens.K())
		var simTime float64
		for i := 0; i < ens.K(); i++ {
			if err := ens.WithMember(i, func(sv *sw.Solver) error {
				finals[i] = diagOf(sv.ComputeInvariants())
				simTime = sv.Time
				return nil
			}); err != nil {
				s.finishFailed(job, err)
				return
			}
		}
		res := Result{
			JobID:       job.ID,
			Steps:       total,
			SimTime:     simTime,
			WallSeconds: time.Since(start).Seconds(),
			Mode:        mode,
			Resumes:     resumes,
			Final:       finals[0],
			Members:     finals,
		}
		if err := s.spool.writeResult(res); err != nil {
			s.finishFailed(job, fmt.Errorf("writing result: %w", err))
			return
		}
		done := s.updateJob(job, func(j *Job) {
			j.state = StateCompleted
			j.cancel = nil
		})
		s.mCompleted.Inc()
		job.broker.publish(Event{Type: "done", JobID: job.ID, State: StateCompleted,
			Step: done.StepsDone, TotalSteps: total, SimTime: done.SimTime, Diag: res.Final})
		s.cfg.Logf("serve: %s completed (%d members x %d steps, %.2fs wall)",
			job.ID, ens.K(), res.Steps, res.WallSeconds)

	case errors.Is(runErr, errStopped):
		// Crash-like stop: the last periodic ensemble checkpoint is the
		// recovery point.
		return

	case errors.Is(runErr, errSuspended):
		why := job.suspendRequested()
		if err := s.checkpointEnsemble(job, ens, total); err != nil {
			s.finishFailed(job, fmt.Errorf("suspending ensemble: %w", err))
			return
		}
		susp := s.updateJob(job, func(j *Job) {
			j.state = StateSuspended
			j.suspendReason = why
			j.cancel = nil
		})
		s.mSuspended.Inc()
		job.broker.publish(Event{Type: "state", JobID: job.ID, State: StateSuspended,
			Step: susp.StepsDone, TotalSteps: total, SimTime: susp.SimTime})
		s.cfg.Logf("serve: %s suspended (%s) at ensemble step %d/%d", job.ID, why, susp.StepsDone, total)

	case errors.Is(runErr, context.Canceled):
		_ = s.checkpointEnsemble(job, ens, total)
		done := s.updateJob(job, func(j *Job) {
			j.state = StateCanceled
			j.cancel = nil
		})
		s.mCanceled.Inc()
		job.broker.publish(Event{Type: "done", JobID: job.ID, State: StateCanceled,
			Step: done.StepsDone, TotalSteps: total, SimTime: done.SimTime})

	case errors.Is(runErr, context.DeadlineExceeded):
		_ = s.checkpointEnsemble(job, ens, total)
		s.finishFailed(job, fmt.Errorf("job deadline exceeded after ensemble step %d/%d", ens.MinStep(), total))

	default:
		s.finishFailed(job, runErr)
	}
}

// checkpointEnsemble writes the durable (ckpt.bin, status.json) pair for
// the whole ensemble and publishes a checkpoint event.
func (s *Server) checkpointEnsemble(job *Job, ens *sw.Ensemble, total int) error {
	tctx := s.tCheckpoint.Start()
	err := s.spool.writeEnsembleCheckpoint(job.ID, ens)
	tctx.Stop()
	if err != nil {
		return err
	}
	job.setProgress(ens.MinStep(), total, ens.MinTime())
	st := job.Status()
	if err := s.spool.writeStatus(st); err != nil {
		return err
	}
	job.broker.publish(Event{Type: "checkpoint", JobID: job.ID,
		Step: st.StepsDone, TotalSteps: total, SimTime: st.SimTime})
	return nil
}
