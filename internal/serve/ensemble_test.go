package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"testing"
	"time"

	"repro/internal/conform"
	"repro/internal/mesh"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// ensembleReference runs the identical K-member ensemble uninterrupted, in
// process, under the serial baseline — mesh built exactly as the server
// builds it, members perturbed with the same (seed, eps).
func ensembleReference(t *testing.T, level, k, steps int, seed uint64, eps float64) *sw.Ensemble {
	t.Helper()
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	s.Runner = sw.SerialRunner{}
	testcases.SetupTC5(s)
	s.Init()
	e, err := sw.NewEnsemble(s, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		e.PerturbH(i, seed, eps)
	}
	for i := 0; i < k; i++ {
		if err := e.WithMember(i, func(sv *sw.Solver) error {
			sv.Run(steps)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// fetchEnsembleFinal downloads the job's (ensemble) checkpoint and loads it
// into a fresh k-member ensemble on an identically built mesh.
func fetchEnsembleFinal(t *testing.T, base, id string, level, k int) *sw.Ensemble {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	s.Runner = sw.SerialRunner{}
	e, err := sw.NewEnsemble(s, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadCheckpoint(resp.Body); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEnsembleJobEndToEnd: an ensemble job streams per-member diagnostics,
// produces per-member finals, and its durable final ensemble state matches
// an uninterrupted in-process ensemble within the exact-strategy ULP band
// — member by member.
func TestEnsembleJobEndToEnd(t *testing.T) {
	const (
		level = 2
		k     = 4
		steps = 12
		seed  = 12345
		eps   = 1e-8
	)
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, CheckpointEvery: 4})

	st := submitJob(t, ts.URL, JobSpec{TestCase: 5, Level: level, Mode: "plan",
		Steps: steps, ReportEvery: 4, Ensemble: k, PerturbSeed: seed, PerturbEps: eps})

	// Follow events to completion, counting per-member diagnostics.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	memberDiags := map[int]int{}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		if ev.Type == "diag" {
			if ev.Member < 1 || ev.Member > k {
				t.Fatalf("diag event with member %d outside [1,%d]", ev.Member, k)
			}
			memberDiags[ev.Member]++
		}
		if ev.Type == "done" {
			if ev.State != StateCompleted {
				t.Fatalf("job ended %s", ev.State)
			}
			break
		}
	}
	for i := 1; i <= k; i++ {
		// One positioning diag + one per round (steps/ReportEvery rounds).
		if memberDiags[i] < 1+steps/4 {
			t.Errorf("member %d got %d diag events, want >= %d", i, memberDiags[i], 1+steps/4)
		}
	}

	// Result carries per-member finals.
	rresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	res := decodeJSON[Result](t, rresp)
	if len(res.Members) != k {
		t.Fatalf("result has %d member finals, want %d", len(res.Members), k)
	}
	if res.Final == nil || res.Final.Mass != res.Members[0].Mass {
		t.Fatalf("result final %+v is not member 0 %+v", res.Final, res.Members[0])
	}
	if res.Steps != steps {
		t.Fatalf("result steps %d, want %d", res.Steps, steps)
	}

	// Durable final ensemble state vs the uninterrupted reference.
	ref := ensembleReference(t, level, k, steps, seed, eps)
	got := fetchEnsembleFinal(t, ts.URL, st.ID, level, k)
	for i := 0; i < k; i++ {
		a, b := ref.Member(i), got.Member(i)
		d := conform.CompareStates(a.State.H, a.State.U, b.State.H, b.State.U)
		if !conform.ExactTol.Accepts(d) {
			t.Errorf("member %d: served ensemble diverges from reference: %v", i, d)
		}
	}

	// Perturbed members really are distinct trajectories.
	if res.Members[1].TotalEnergy == res.Members[0].TotalEnergy {
		t.Error("member 1 final energy identical to control — perturbation lost")
	}
}

// TestEnsembleJobSharesOnePlan is the batch-admission acceptance check at
// the service level: serving a K=8 ensemble job in plan mode compiles
// exactly ONE execution plan on the worker.
func TestEnsembleJobSharesOnePlan(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, CheckpointEvery: 100})

	before := sw.PlanCompileCount()
	st := submitJob(t, ts.URL, JobSpec{TestCase: 5, Level: 2, Mode: "plan",
		Steps: 4, ReportEvery: 2, Ensemble: 8})
	waitState(t, ts.URL, st.ID, StateCompleted)
	if got := sw.PlanCompileCount() - before; got != 1 {
		t.Fatalf("K=8 ensemble job compiled %d plans, want exactly 1", got)
	}
}

// TestEnsembleSuspendResume: an ensemble job suspended mid-run and resumed
// under a different mode still lands member-for-member on the
// uninterrupted reference trajectory.
func TestEnsembleSuspendResume(t *testing.T) {
	const (
		level = 2
		k     = 3
		steps = 16
		seed  = 7
		eps   = 1e-8
	)
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, CheckpointEvery: 100})

	st := submitJob(t, ts.URL, JobSpec{TestCase: 5, Level: level, Mode: "serial",
		Steps: steps, ReportEvery: 2, Ensemble: k, PerturbSeed: seed, PerturbEps: eps,
		StepDelayMS: 5})
	waitState(t, ts.URL, st.ID, StateRunning)

	deadline := time.Now().Add(60 * time.Second)
	for getStatus(t, ts.URL, st.ID).StepsDone < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ensemble made no progress")
		}
		if got := getStatus(t, ts.URL, st.ID); got.State.Terminal() {
			t.Fatalf("job finished before suspend (%s)", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp := postJSON(t, ts.URL+"/jobs/"+st.ID+"/suspend", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suspend: %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitState(t, ts.URL, st.ID, StateSuspended)

	resp = postJSON(t, ts.URL+"/jobs/"+st.ID+"/resume", map[string]string{"mode": "threaded"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitState(t, ts.URL, st.ID, StateCompleted)

	ref := ensembleReference(t, level, k, steps, seed, eps)
	got := fetchEnsembleFinal(t, ts.URL, st.ID, level, k)
	for i := 0; i < k; i++ {
		a, b := ref.Member(i), got.Member(i)
		d := conform.CompareStates(a.State.H, a.State.U, b.State.H, b.State.U)
		if !conform.ExactTol.Accepts(d) {
			t.Errorf("member %d after suspend/resume diverges: %v", i, d)
		}
	}
}

// importJob posts a multipart import (status JSON + optional checkpoint).
func importJob(t *testing.T, base string, st JobStatus, ckpt []byte) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	stJSON, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.WriteField("status", string(stJSON)); err != nil {
		t.Fatal(err)
	}
	if ckpt != nil {
		fw, err := mw.CreateFormFile("checkpoint", "ckpt.bin")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(ckpt); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs/import", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestImportWithCheckpoint is checkpoint migration over HTTP: a job
// checkpointed mid-trajectory elsewhere is imported (id, status and
// checkpoint) and completes here, landing on the uninterrupted trajectory.
func TestImportWithCheckpoint(t *testing.T) {
	const (
		level = 2
		steps = 12
		mid   = 5
	)
	ref := referenceRun(t, level, steps)

	// Checkpoint mid-trajectory, out of band.
	first := referenceRun(t, level, mid)
	var ckpt bytes.Buffer
	if err := first.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, CheckpointEvery: 100})
	spec := JobSpec{TestCase: 5, Level: level, Mode: "plan", Steps: steps, ReportEvery: 4}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	id := "c-00112233aabbccdd"
	resp := importJob(t, ts.URL, JobStatus{ID: id, State: StateQueued, Mode: "plan",
		StepsDone: mid, TotalSteps: steps, Resumes: 1, Spec: spec}, ckpt.Bytes())
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("import: status %d: %s", resp.StatusCode, body)
	}
	got := decodeJSON[JobStatus](t, resp)
	if got.ID != id || got.StepsDone != mid || got.Resumes != 1 {
		t.Fatalf("imported status %+v", got)
	}

	// A second import under the same id conflicts.
	resp = importJob(t, ts.URL, JobStatus{ID: id, State: StateQueued, Spec: spec}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate import: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// An invalid id is rejected outright.
	resp = importJob(t, ts.URL, JobStatus{ID: "../evil", State: StateQueued, Spec: spec}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-id import: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	waitState(t, ts.URL, id, StateCompleted)
	final := fetchFinalState(t, ts.URL, id, level)
	assertConformIdentical(t, ref, final, "imported-and-resumed job")
	if final.StepCount != steps {
		t.Fatalf("final step %d, want %d", final.StepCount, steps)
	}
}

// TestHealthzDraining: once a drain starts, /healthz reports status
// "draining" so a cluster coordinator can stop routing submissions before
// any submit fails.
func TestHealthzDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})

	var h struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = decodeJSON[struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}](t, resp)
	if h.Status != "ok" || h.Draining {
		t.Fatalf("healthz before drain: %+v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = decodeJSON[struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}](t, resp)
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("healthz during drain: %+v, want status=draining", h)
	}
}
