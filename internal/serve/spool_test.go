package serve

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sw"
	"repro/internal/testcases"
)

func TestSpoolStatusRoundTrip(t *testing.T) {
	sp, err := newSpool(filepath.Join(t.TempDir(), "spool"))
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{TestCase: 5, Level: 2, Mode: "serial", Steps: 10}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := sp.createJob("j-1", spec); err != nil {
		t.Fatal(err)
	}
	st := JobStatus{ID: "j-1", State: StateRunning, Mode: "serial", StepsDone: 4, TotalSteps: 10, Spec: spec}
	if err := sp.writeStatus(st); err != nil {
		t.Fatal(err)
	}
	got, err := sp.readStatus("j-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateRunning || got.StepsDone != 4 || got.Spec.Steps != 10 {
		t.Fatalf("status round trip: %+v", got)
	}

	// Scan finds it; incomplete directories are skipped, not fatal.
	if err := os.MkdirAll(sp.jobDir("j-torn"), 0o755); err != nil {
		t.Fatal(err)
	}
	jobs, skipped, err := sp.scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j-1" {
		t.Fatalf("scan jobs %+v", jobs)
	}
	if len(skipped) != 1 || skipped[0] != "j-torn" {
		t.Fatalf("scan skipped %v", skipped)
	}

	if err := sp.removeJob("j-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.readStatus("j-1"); err == nil {
		t.Fatal("status survived removeJob")
	}
}

func TestSpoolCheckpointAtomicReplace(t *testing.T) {
	sp, err := newSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.Build(1, mesh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC2(s)
	if err := os.MkdirAll(sp.jobDir("j"), 0o755); err != nil {
		t.Fatal(err)
	}
	if sp.hasCheckpoint("j") {
		t.Fatal("phantom checkpoint")
	}
	if err := sp.writeCheckpoint("j", s); err != nil {
		t.Fatal(err)
	}
	if !sp.hasCheckpoint("j") {
		t.Fatal("checkpoint not written")
	}
	s.Run(2)
	if err := sp.writeCheckpoint("j", s); err != nil {
		t.Fatal(err)
	}
	// No leftover temp file after replacement.
	if _, err := os.Stat(sp.checkpointPath("j") + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	s2, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	if err := s2.LoadCheckpoint(sp.checkpointPath("j")); err != nil {
		t.Fatal(err)
	}
	if s2.StepCount != 2 || s2.Time != s.Time {
		t.Fatalf("restored step %d time %v", s2.StepCount, s2.Time)
	}
}

func TestSpoolResultRoundTrip(t *testing.T) {
	sp, err := newSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(sp.jobDir("j"), 0o755); err != nil {
		t.Fatal(err)
	}
	res := Result{JobID: "j", Steps: 12, SimTime: 3600, Mode: "pattern", Final: &Diag{Mass: 1.5}}
	if err := sp.writeResult(res); err != nil {
		t.Fatal(err)
	}
	got, err := sp.readResult("j")
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != 12 || got.Final == nil || got.Final.Mass != 1.5 {
		t.Fatalf("result round trip: %+v", got)
	}
}

func TestSpoolRequiresDir(t *testing.T) {
	if _, err := newSpool(""); err == nil {
		t.Fatal("empty spool dir accepted")
	}
}

func TestJobSpecNormalize(t *testing.T) {
	ok := JobSpec{Steps: 5}
	if err := ok.Normalize(); err != nil {
		t.Fatal(err)
	}
	if ok.TestCase != 5 || ok.Level != 2 || ok.Mode != "serial" || ok.ReportEvery != 10 || ok.Workers != 2 {
		t.Fatalf("defaults not filled: %+v", ok)
	}
	bad := []JobSpec{
		{},                          // neither steps nor days
		{Steps: 5, Days: 1},         // both
		{Steps: 5, TestCase: 3},     // unknown test case
		{Steps: 5, Level: 9},        // beyond MaxLevel
		{Steps: 5, Mode: "gpu"},     // unknown mode
		{Steps: -1},                 // negative
		{Steps: 5, TimeoutSec: -1},  // negative timeout
	}
	for i, spec := range bad {
		if err := spec.Normalize(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	clamp := JobSpec{Steps: 1, Workers: 99, StepDelayMS: 9999}
	if err := clamp.Normalize(); err != nil {
		t.Fatal(err)
	}
	if clamp.Workers != 16 || clamp.StepDelayMS != 1000 {
		t.Fatalf("clamps not applied: %+v", clamp)
	}
}
