package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
)

// Handler returns the service's HTTP API:
//
//	POST /jobs                  submit (202; 429 queue full; 503 draining)
//	GET  /jobs                  list job statuses
//	GET  /jobs/{id}             one job's status
//	GET  /jobs/{id}/events      NDJSON event stream (replay + follow;
//	                            ?follow=0 for replay-only)
//	GET  /jobs/{id}/result      final result (409 until completed)
//	GET  /jobs/{id}/checkpoint  latest durable checkpoint (binary)
//	POST /jobs/{id}/cancel      cancel
//	POST /jobs/{id}/suspend     checkpoint + park
//	POST /jobs/{id}/resume      re-enqueue; body {"mode": "..."} optional
//	GET  /healthz               liveness + queue depth + drain flag
//	GET  /metrics               Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("POST /jobs/import", s.handleImport)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/suspend", s.handleSuspend)
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.reg.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errCode maps service errors onto HTTP statuses.
func errCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrConflict), errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		code := errCode(err)
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeErr(w, code, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// maxImportBytes bounds an import body: the largest admissible checkpoint
// (a MaxEnsemble ensemble on a MaxLevel mesh) stays well under this.
const maxImportBytes = 256 << 20

// handleImport accepts a migrating job: multipart/form-data with a
// "status" field (the JobStatus JSON of the job being moved — id, spec,
// mode, progress) and an optional "checkpoint" file part holding the spool
// checkpoint to resume from. This is the cluster coordinator's submit and
// work-stealing entry point; 409 on a taken id, 429/503 under admission
// pressure like a plain submit.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxImportBytes)
	if err := r.ParseMultipartForm(8 << 20); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing import form: %w", err))
		return
	}
	defer r.MultipartForm.RemoveAll()
	var st JobStatus
	if err := json.Unmarshal([]byte(r.FormValue("status")), &st); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding import status: %w", err))
		return
	}
	var ckpt io.Reader
	if f, _, err := r.FormFile("checkpoint"); err == nil {
		defer f.Close()
		ckpt = f
	}
	out, err := s.Import(st, ckpt)
	if err != nil {
		code := errCode(err)
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeErr(w, code, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+out.ID)
	writeJSON(w, http.StatusAccepted, out)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's events as NDJSON: the full replay first,
// then live events until the job reaches a terminal state (the "done"
// event closes the stream) or the client disconnects. ?follow=0 returns
// the replay only.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	replay, live, unsub := j.broker.subscribe()
	defer unsub()
	terminal := false
	for _, ev := range replay {
		if err := enc.Encode(ev); err != nil {
			return
		}
		terminal = terminal || ev.Type == "done"
	}
	if flusher != nil {
		flusher.Flush()
	}
	if !follow || terminal {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Type == "done" {
				return
			}
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	st := j.Status()
	if st.State != StateCompleted {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("%w: job is %s, result exists only for completed jobs", ErrConflict, st.State))
		return
	}
	res, err := s.spool.readResult(st.ID)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("reading result: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleCheckpoint serves the latest durable checkpoint — for a completed
// job, the exact final prognostic state, loadable with sw.LoadCheckpoint
// (the conformance tests compare trajectories through this endpoint).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	path := s.spool.checkpointPath(j.ID)
	if _, err := os.Stat(path); err != nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: no checkpoint yet", ErrNotFound))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "action": "cancel"})
}

func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Suspend(id); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "action": "suspend"})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var body struct {
		Mode string `json:"mode"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes)).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding resume body: %w", err))
			return
		}
	}
	if err := s.Resume(id, body.Mode); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "action": "resume", "mode": body.Mode})
}

// handleHealthz reports liveness AND routability: a draining worker says
// so in "status", so a cluster coordinator stops routing submissions to it
// instead of discovering the drain through failed submits.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := map[JobState]int{}
	for _, st := range s.Jobs() {
		counts[st.State]++
	}
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"draining":    s.Draining(),
		"queue_depth": s.QueueDepth(),
		"workers":     s.cfg.Workers,
		"jobs":        counts,
	})
}
