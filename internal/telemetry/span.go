package telemetry

import (
	"sync"
	"time"
)

// Tracer collects completed spans from any number of goroutines. Spans are
// organized into tracks (Chrome trace "threads"): spans on one track render
// as a nested flame when their time ranges nest, so sequential layers
// (RK stage -> kernel -> data-flow level) share a track while concurrent
// actors (host pool, device pools, MPI ranks) get tracks of their own.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	spans  []spanRecord
	tracks []string // index = track id; track 0 always exists
}

type spanRecord struct {
	name    string
	track   int
	startNs int64
	durNs   int64
	args    map[string]interface{}
}

// NewTracer creates a tracer; its wall clock starts now. The default track 0
// is named "main".
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), tracks: []string{"main"}}
}

// NewTrack registers a named track and returns its id. Returns 0 on a nil
// receiver (span methods taking a track id are nil-safe anyway).
func (t *Tracer) NewTrack(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracks = append(t.tracks, name)
	return len(t.tracks) - 1
}

// Span is an in-flight traced operation. A nil *Span is a valid no-op: all
// methods return immediately and StartChild returns nil.
type Span struct {
	tr    *Tracer
	name  string
	track int
	start time.Time
	args  map[string]interface{}
}

// StartSpan begins a span on track 0. Returns nil on a nil receiver.
func (t *Tracer) StartSpan(name string) *Span { return t.StartSpanOnTrack(name, 0) }

// StartSpanOnTrack begins a span on the given track. Returns nil on a nil
// receiver.
func (t *Tracer) StartSpanOnTrack(name string, track int) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, track: track, start: time.Now()}
}

// StartChild begins a child span on the parent's track. Returns nil on a nil
// receiver, so unconfigured call sites chain without checks.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpanOnTrack(name, s.track)
}

// StartChildOnTrack begins a child span on an explicit track — the shape for
// handing work to a concurrent actor (host/device pool, rank goroutine).
func (s *Span) StartChildOnTrack(name string, track int) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpanOnTrack(name, track)
}

// SetArg attaches a key/value shown in the trace viewer's detail pane.
// No-op on a nil receiver.
func (s *Span) SetArg(key string, value interface{}) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]interface{}{}
	}
	s.args[key] = value
}

// End completes the span and records it with the tracer. No-op on a nil
// receiver. Safe to call from the goroutine that started the span while
// other goroutines end their own spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	rec := spanRecord{
		name:    s.name,
		track:   s.track,
		startNs: s.start.Sub(s.tr.start).Nanoseconds(),
		durNs:   now.Sub(s.start).Nanoseconds(),
		args:    s.args,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, rec)
	s.tr.mu.Unlock()
}

// RecordSpan records an already-completed span with explicit timing relative
// to the tracer's start — the deterministic entry point for importing
// externally timed events (and what the exporter golden tests are built on,
// since StartSpan/End read the wall clock). No-op on a nil receiver.
func (t *Tracer) RecordSpan(name string, track int, start, dur time.Duration) {
	if t == nil {
		return
	}
	rec := spanRecord{
		name:    name,
		track:   track,
		startNs: start.Nanoseconds(),
		durNs:   dur.Nanoseconds(),
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// NumSpans returns the number of completed spans (zero on a nil receiver).
func (t *Tracer) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
