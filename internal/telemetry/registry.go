// Package telemetry is the observability substrate of the reproduction: a
// zero-dependency registry of typed metric instruments (Counter, Gauge,
// Histogram, Timer), span-based tracing exportable as Chrome trace_event
// JSON, and a Prometheus text-format exporter.
//
// Everything is nil-safe by design: every method on a nil *Registry, nil
// instrument, nil *Tracer or nil *Span is a no-op that performs no
// allocation, so hot paths can be instrumented unconditionally and an
// unconfigured run pays nothing — the profiling-first workflow of the paper
// (§2.C) without a configuration flag on every call site.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta atomically. No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: fixed log-scale (base-2) upper bounds
// 2^(i-histExpBias) for i in [0, histBuckets), spanning ~9.3e-10 .. 8.6e9.
// One layout for every histogram keeps the implementation allocation-free
// and the Prometheus export uniform; the range covers both sub-microsecond
// kernel timings (seconds) and element counts up to billions.
const (
	histBuckets = 64
	histExpBias = 30
)

// Histogram counts observations in fixed log-scale buckets.
type Histogram struct {
	name    string
	counts  [histBuckets + 1]atomic.Int64 // last slot = overflow (+Inf)
	sumBits atomic.Uint64
	count   atomic.Int64
}

// bucketIndex returns the index of the smallest upper bound >= v.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if frac == 0.5 {
		exp-- // exact power of two sits on its own bound
	}
	idx := exp + histExpBias
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets // overflow bucket (+Inf)
	}
	return idx
}

// BucketBound returns the upper bound of bucket i (math.Inf(1) for the
// overflow bucket).
func BucketBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return math.Ldexp(1, i-histExpBias)
}

// Observe records v. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (zero on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Timer accumulates durations: an exact nanosecond sum and call count plus a
// log-scale histogram of seconds for the Prometheus export.
type Timer struct {
	name  string
	nanos atomic.Int64
	calls atomic.Int64
	hist  Histogram
}

// Observe records one duration. No-op on a nil receiver.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.nanos.Add(int64(d))
	t.calls.Add(1)
	t.hist.Observe(d.Seconds())
}

// TimerCtx is an in-flight timing started by Timer.Start. It is a value type
// so starting and stopping a timing never allocates.
type TimerCtx struct {
	t     *Timer
	start time.Time
}

// Start begins a timing. On a nil receiver it returns a zero TimerCtx whose
// Stop is a no-op, and does not read the clock.
func (t *Timer) Start() TimerCtx {
	if t == nil {
		return TimerCtx{}
	}
	return TimerCtx{t: t, start: time.Now()}
}

// Stop records the elapsed time since Start. No-op on a zero TimerCtx.
func (c TimerCtx) Stop() {
	if c.t != nil {
		c.t.Observe(time.Since(c.start))
	}
}

// Count returns the number of recorded durations (zero on a nil receiver).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.calls.Load()
}

// Total returns the exact accumulated duration (zero on a nil receiver).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.nanos.Load())
}

// Registry holds named instruments. Get-or-create accessors are
// concurrency-safe; a nil *Registry returns nil instruments, whose methods
// are all no-ops, so the whole pipeline degrades to nothing when telemetry
// is not configured.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		timers:   map[string]*Timer{},
	}
}

// Counter returns the counter with the given name, creating it on first use.
// Returns nil on a nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Returns nil on a nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use. Returns nil on a nil receiver.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Timer returns the timer with the given name, creating it on first use.
// Returns nil on a nil receiver.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{name: name}
		r.timers[name] = t
	}
	return t
}

// sortedKeys returns the map keys in sorted order (deterministic exports).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
