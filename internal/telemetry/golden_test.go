package telemetry

// Golden-file tests for the two text exporters. The emitted bytes are part of
// the contract — Prometheus scrapers and trace viewers parse them — so the
// exact output for a fixed instrument population is pinned under testdata/.
// Regenerate with: go test ./internal/telemetry -run Golden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenRegistry populates one instrument of every kind with fixed values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("halo_exchanges_total").Add(42)
	r.Counter("steps_total").Add(7)
	r.Gauge("host_fraction").Set(0.35)
	r.Gauge("residual").Set(2.5e-11)
	h := r.Histogram("kernel_elems")
	for _, v := range []float64{1, 2, 3, 100, 1000, 1e6} {
		h.Observe(v)
	}
	tm := r.Timer("step_seconds")
	tm.Observe(1500 * time.Microsecond)
	tm.Observe(3 * time.Millisecond)
	tm.Observe(40 * time.Millisecond)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prometheus.golden", buf.Bytes())
}

// TestPrometheusOrderingStable re-renders the same population twice with
// different registration orders; the exposition output must be identical
// (sorted by metric name, not registration order).
func TestPrometheusOrderingStable(t *testing.T) {
	a := NewRegistry()
	a.Counter("zzz").Inc()
	a.Counter("aaa").Inc()
	a.Gauge("mmm").Set(1)
	b := NewRegistry()
	b.Gauge("mmm").Set(1)
	b.Counter("aaa").Inc()
	b.Counter("zzz").Inc()
	var ba, bb bytes.Buffer
	if err := a.WritePrometheus(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Errorf("output depends on registration order:\n%s\nvs\n%s", ba.Bytes(), bb.Bytes())
	}
}

// goldenTracer builds a fixed span population via RecordSpan (wall-clock-free).
func goldenTracer() *Tracer {
	tr := NewTracer()
	host := tr.NewTrack("host-pool")
	dev := tr.NewTrack("device-pool")
	tr.RecordSpan("step", 0, 0, 10*time.Millisecond)
	tr.RecordSpan("compute_tend", 0, 100*time.Microsecond, 4*time.Millisecond)
	tr.RecordSpan("B1", host, 200*time.Microsecond, 3*time.Millisecond)
	tr.RecordSpan("B1", dev, 200*time.Microsecond, 2500*time.Microsecond)
	tr.RecordSpan("halo_exchange", 0, 4300*time.Microsecond, 700*time.Microsecond)
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The golden bytes must also be valid JSON of the expected shape.
	var parsed struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exporter emitted unparseable JSON: %v", err)
	}
	// 3 thread_name metadata events + 5 spans.
	if len(parsed.TraceEvents) != 8 {
		t.Errorf("%d trace events, want 8", len(parsed.TraceEvents))
	}
	checkGolden(t, "chrometrace.golden", buf.Bytes())
}

func TestChromeTraceSpanOrderStable(t *testing.T) {
	// Record the same spans in two different completion orders; the sorted
	// output must be identical.
	mk := func(reverse bool) []byte {
		tr := NewTracer()
		spans := [][2]time.Duration{
			{0, 10 * time.Millisecond},
			{time.Millisecond, 2 * time.Millisecond},
			{time.Millisecond, 5 * time.Millisecond}, // same start, longer: must sort first
		}
		if reverse {
			for i, j := 0, len(spans)-1; i < j; i, j = i+1, j-1 {
				spans[i], spans[j] = spans[j], spans[i]
			}
		}
		for _, s := range spans {
			tr.RecordSpan("k", 0, s[0], s[1])
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := mk(false), mk(true); !bytes.Equal(a, b) {
		t.Errorf("trace output depends on span completion order:\n%s\nvs\n%s", a, b)
	}
}
