package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSample is one un-labeled sample from a Prometheus text exposition,
// plus the family type its # TYPE line declared ("counter", "gauge",
// "histogram", or "" when untyped).
type PromSample struct {
	Name  string
	Value float64
	Type  string
}

// ParseProm reads a Prometheus text exposition (the format WritePrometheus
// emits) and returns its scalar samples in document order. Labeled samples
// — histogram buckets — are skipped; the derived `_sum` and `_count`
// samples of a histogram family come through (typed "histogram"). The
// parser is deliberately small: it exists so a cluster coordinator can
// federate worker /metrics pages, not to be a general scraper.
func ParseProm(r io.Reader) ([]PromSample, error) {
	types := map[string]string{}
	var out []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Only "# TYPE <name> <type>" carries information we keep.
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		if strings.ContainsRune(line, '{') {
			continue // labeled sample (bucket) — cumulative, not federable by addition
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("telemetry: malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: sample %s: %w", f[0], err)
		}
		name := f[0]
		typ := types[name]
		if typ == "" {
			// _sum/_count belong to their histogram family.
			for _, suf := range []string{"_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suf); ok && types[base] != "" {
					typ = types[base]
					break
				}
			}
		}
		out = append(out, PromSample{Name: name, Value: v, Type: typ})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
