package telemetry

import "net/http"

// PrometheusContentType is the Content-Type of the text exposition format
// WritePrometheus emits (version 0.0.4, the scrape format every Prometheus
// server accepts).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that serves the registry in the
// Prometheus text exposition format — the one implementation behind
// swserver's /metrics and any future daemon endpoint. Consistent with the
// rest of the package, a nil receiver is valid and serves an empty (but
// well-formed) exposition, so servers can mount /metrics unconditionally.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		// The registry renders from live atomics and cannot fail; an error
		// here is the client hanging up mid-scrape, which needs no handling.
		_ = r.WritePrometheus(w)
	})
}
