package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// The parser must round-trip what WritePrometheus emits — that pairing is
// the cluster federation contract.
func TestParsePromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total").Add(7)
	reg.Gauge("queue_depth").Set(2.5)
	reg.Histogram("sizes").Observe(3)
	reg.Timer("step_seconds").Observe(10 * time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]PromSample{}
	for _, s := range samples {
		if _, dup := byName[s.Name]; dup {
			t.Fatalf("duplicate sample %s", s.Name)
		}
		byName[s.Name] = s
	}
	if s := byName["jobs_total"]; s.Value != 7 || s.Type != "counter" {
		t.Fatalf("jobs_total = %+v", s)
	}
	if s := byName["queue_depth"]; s.Value != 2.5 || s.Type != "gauge" {
		t.Fatalf("queue_depth = %+v", s)
	}
	// Histogram families surface only their _sum/_count scalars, typed.
	if s := byName["sizes_count"]; s.Value != 1 || s.Type != "histogram" {
		t.Fatalf("sizes_count = %+v", s)
	}
	if s := byName["sizes_sum"]; s.Value != 3 {
		t.Fatalf("sizes_sum = %+v", s)
	}
	if s := byName["step_seconds_count"]; s.Value != 1 || s.Type != "histogram" {
		t.Fatalf("step_seconds_count = %+v", s)
	}
	for name := range byName {
		if strings.Contains(name, "bucket") {
			t.Fatalf("labeled bucket sample leaked through: %s", name)
		}
	}
}

func TestParsePromMalformed(t *testing.T) {
	if _, err := ParseProm(strings.NewReader("lonely_name\n")); err == nil {
		t.Fatal("missing value must error")
	}
	if _, err := ParseProm(strings.NewReader("x not-a-number\n")); err == nil {
		t.Fatal("bad value must error")
	}
	samples, err := ParseProm(strings.NewReader("\n# random comment\n"))
	if err != nil || len(samples) != 0 {
		t.Fatalf("comments/blanks should parse to nothing: %v %v", samples, err)
	}
}
