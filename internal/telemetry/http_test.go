package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestHandlerGolden serves the fixed golden instrument population through
// the HTTP handler and pins the scrape body to the same golden file the
// direct exporter test uses — one implementation, one contract.
func TestHandlerGolden(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("Content-Type %q, want %q", ct, PrometheusContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "prometheus.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("scrape body drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}
}

// TestHandlerNilRegistry: a nil registry still serves an empty, well-typed
// exposition, so daemons can mount /metrics unconditionally.
func TestHandlerNilRegistry(t *testing.T) {
	var r *Registry
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 0 {
		t.Errorf("nil registry served %q, want empty", body)
	}
}
