package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// sanitizeMetricName maps an arbitrary instrument name onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// formatPromValue renders a float in the Prometheus exposition format.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every instrument in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// and timers as cumulative-bucket histogram families (timers observe
// seconds). Writes nothing on a nil receiver.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	for _, name := range sortedKeys(r.counters) {
		n := sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			n, n, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		n := sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			n, n, formatPromValue(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		if err := writePromHistogram(w, sanitizeMetricName(name), r.hists[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.timers) {
		if err := writePromHistogram(w, sanitizeMetricName(name), &r.timers[name].hist); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family with cumulative buckets.
// Empty buckets below the first and above the last occupied one are elided
// (the cumulative +Inf bucket always closes the family), keeping the output
// readable without changing its meaning.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	first, last := histBuckets, -1
	for i := 0; i < histBuckets; i++ {
		if h.counts[i].Load() > 0 {
			if first > i {
				first = i
			}
			last = i
		}
	}
	cum := int64(0)
	for i := first; i <= last; i++ {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			name, formatPromValue(BucketBound(i)), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, h.Count(), name, formatPromValue(h.Sum()), name, h.Count())
	return err
}
