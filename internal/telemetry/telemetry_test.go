package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes")
	h.Observe(1.0) // exact power of two: on its own bound
	h.Observe(1.5)
	h.Observe(0)          // clamps to bucket 0
	h.Observe(-3)         // clamps to bucket 0
	h.Observe(1e30)       // overflow bucket
	h.Observe(math.NaN()) // bucket 0, sum becomes NaN but must not panic
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	// 1.0 = 2^0 must land in the bucket with upper bound exactly 1.
	if idx := bucketIndex(1.0); BucketBound(idx) != 1.0 {
		t.Fatalf("bucketIndex(1.0) bound = %g, want 1", BucketBound(idx))
	}
	// 1.5 lands in the next bucket (bound 2).
	if idx := bucketIndex(1.5); BucketBound(idx) != 2.0 {
		t.Fatalf("bucketIndex(1.5) bound = %g, want 2", BucketBound(idx))
	}
	if idx := bucketIndex(1e30); idx != histBuckets {
		t.Fatalf("bucketIndex(1e30) = %d, want overflow %d", idx, histBuckets)
	}
	// Monotone: larger values never land in lower buckets.
	prev := 0
	for v := 1e-12; v < 1e12; v *= 3 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %g: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("phase_seconds")
	tm.Observe(3 * time.Millisecond)
	tm.Observe(5 * time.Millisecond)
	if got := tm.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := tm.Total(); got != 8*time.Millisecond {
		t.Fatalf("total = %v, want 8ms", got)
	}
	ctx := tm.Start()
	ctx.Stop()
	if got := tm.Count(); got != 3 {
		t.Fatalf("count after Start/Stop = %d, want 3", got)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j))
				r.Timer("t").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Timer("t").Count(); got != 8000 {
		t.Fatalf("timer count = %d, want 8000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total").Add(42)
	r.Gauge("sim time").Set(1.25) // space must be sanitized
	r.Histogram("imbalance").Observe(1.5)
	r.Timer("halo_seconds").Observe(2 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE steps_total counter\nsteps_total 42\n",
		"# TYPE sim_time gauge\nsim_time 1.25\n",
		"# TYPE imbalance histogram\n",
		"imbalance_bucket{le=\"2\"} 1\n",
		"imbalance_bucket{le=\"+Inf\"} 1\n",
		"imbalance_sum 1.5\n",
		"imbalance_count 1\n",
		"# TYPE halo_seconds histogram\n",
		"halo_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing and end at count.
	h := r.Histogram("multi")
	for _, v := range []float64{0.5, 0.5, 3, 100} {
		h.Observe(v)
	}
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "multi_bucket{le=\"+Inf\"} 4") {
		t.Errorf("cumulative +Inf bucket wrong:\n%s", b.String())
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(7)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Timer("x").Observe(time.Second)
	ctx := r.Timer("x").Start()
	ctx.Stop()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
	if r.Counter("x").Value() != 0 || r.Timer("x").Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestTracerNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("step")
	child := root.StartChild("kernel")
	child.SetArg("elems", 128)
	grand := child.StartChild("level0")
	grand.End()
	child.End()
	root.End()
	devTrack := tr.NewTrack("dev-pool")
	d := tr.StartSpanOnTrack("dev work", devTrack)
	d.End()
	if got := tr.NumSpans(); got != 4 {
		t.Fatalf("spans = %d, want 4", got)
	}

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for i, ev := range decoded.TraceEvents {
		byName[ev.Name] = i
	}
	for _, name := range []string{"step", "kernel", "level0", "dev work", "thread_name"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing event %q", name)
		}
	}
	step := decoded.TraceEvents[byName["step"]]
	kernel := decoded.TraceEvents[byName["kernel"]]
	level := decoded.TraceEvents[byName["level0"]]
	// Children nest in time within their parents, on the same track.
	if kernel.Tid != step.Tid || level.Tid != kernel.Tid {
		t.Fatal("children must inherit the parent's track")
	}
	if kernel.Ts < step.Ts || kernel.Ts+kernel.Dur > step.Ts+step.Dur+1e-3 {
		t.Fatalf("kernel [%g,%g] not inside step [%g,%g]",
			kernel.Ts, kernel.Ts+kernel.Dur, step.Ts, step.Ts+step.Dur)
	}
	if kernel.Args["elems"] != float64(128) {
		t.Fatalf("kernel args = %v", kernel.Args)
	}
	if dev := decoded.TraceEvents[byName["dev work"]]; dev.Tid == step.Tid {
		t.Fatal("explicit track must differ from track 0")
	}
}

func TestTracerConcurrentEnds(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		track := tr.NewTrack("worker")
		go func(track int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.StartSpanOnTrack("op", track)
				sp.End()
			}
		}(track)
	}
	wg.Wait()
	if got := tr.NumSpans(); got != 1600 {
		t.Fatalf("spans = %d, want 1600", got)
	}
}

func TestSummary(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 3; i++ {
		sp := tr.StartSpan("stage")
		sp.End()
	}
	tab := tr.Summary()
	if tab.NumRows() != 1 {
		t.Fatalf("summary rows = %d, want 1", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "stage") {
		t.Fatalf("summary missing span name:\n%s", tab)
	}
	var nilTr *Tracer
	if nilTr.Summary().NumRows() != 0 {
		t.Fatal("nil tracer summary must be empty")
	}
	var b strings.Builder
	if err := nilTr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatal("nil tracer must still emit valid JSON")
	}
}
