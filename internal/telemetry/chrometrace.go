package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"repro/internal/results"
)

// traceEvent is one entry of the Chrome trace_event format (the JSON Array
// / Object format consumed by chrome://tracing and Perfetto).
type traceEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders all completed spans as Chrome trace_event JSON:
// one "complete" (ph:"X") event per span plus thread_name metadata naming
// every track. Open the file at chrome://tracing or ui.perfetto.dev.
// Writes an empty trace on a nil receiver.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	out := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	if t != nil {
		t.mu.Lock()
		spans := append([]spanRecord(nil), t.spans...)
		tracks := append([]string(nil), t.tracks...)
		t.mu.Unlock()

		for tid, name := range tracks {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]interface{}{"name": name},
			})
		}
		// Sort by start time (ties: longer span first) so nesting events
		// appear in the stack order viewers expect.
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].startNs != spans[j].startNs {
				return spans[i].startNs < spans[j].startNs
			}
			return spans[i].durNs > spans[j].durNs
		})
		for _, s := range spans {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: s.name, Ph: "X",
				Ts:  float64(s.startNs) / 1e3,
				Dur: float64(s.durNs) / 1e3,
				Pid: 1, Tid: s.track,
				Args: s.args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary aggregates completed spans by name into an aligned-text table:
// call count, total/mean duration, and share of the busiest span's total.
// Returns an empty table on a nil receiver.
func (t *Tracer) Summary() *results.Table {
	tab := results.NewTable("span summary",
		"span", "count", "total_ms", "mean_us", "min_us", "max_us")
	if t == nil {
		return tab
	}
	type agg struct {
		name     string
		count    int
		total    int64
		min, max int64
	}
	t.mu.Lock()
	byName := map[string]*agg{}
	for _, s := range t.spans {
		a, ok := byName[s.name]
		if !ok {
			a = &agg{name: s.name, min: s.durNs, max: s.durNs}
			byName[s.name] = a
		}
		a.count++
		a.total += s.durNs
		if s.durNs < a.min {
			a.min = s.durNs
		}
		if s.durNs > a.max {
			a.max = s.durNs
		}
	}
	t.mu.Unlock()
	var rows []*agg
	for _, a := range byName {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].name < rows[j].name
	})
	for _, a := range rows {
		mean := time.Duration(a.total / int64(a.count))
		tab.AddRow(a.name, a.count,
			float64(a.total)/1e6,
			float64(mean.Nanoseconds())/1e3,
			float64(a.min)/1e3,
			float64(a.max)/1e3)
	}
	return tab
}
