package telemetry

import (
	"testing"
	"time"
)

// The whole point of nil-safety is that an unconfigured pipeline costs
// nothing on hot paths: no allocations, no clock reads. This pins the
// no-allocation half of that contract.
func TestNilPathAllocations(t *testing.T) {
	var r *Registry
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c := r.Counter("c")
		c.Add(1)
		c.Inc()
		r.Gauge("g").Set(1)
		r.Histogram("h").Observe(2.5)
		tm := r.Timer("t")
		tm.Observe(time.Millisecond)
		ctx := tm.Start()
		ctx.Stop()
		sp := tr.StartSpan("root")
		child := sp.StartChild("child")
		child.SetArg("k", 1)
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry path allocated %.1f times per run, want 0", allocs)
	}
}

// Enabled instruments must also stay allocation-free once created (spans
// intentionally allocate; instruments must not).
func TestEnabledInstrumentAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tm := r.Timer("t")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(1.25)
		ctx := tm.Start()
		ctx.Stop()
	})
	if allocs != 0 {
		t.Fatalf("enabled instruments allocated %.1f times per run, want 0", allocs)
	}
}
