// Package dist is the real multi-process distribution runtime: the TCP
// message-passing substrate that turns the repository's simulated MPI world
// (internal/mpisim, goroutines + channels) into separate OS processes
// exchanging length-prefixed frames over persistent per-neighbor
// connections.
//
// The layering mirrors mpisim deliberately so the two substrates stay
// interchangeable under the same solver code:
//
//   - frame.go      — the wire format: a fixed 18-byte header (magic,
//     version, type, sender, tag, payload length) followed by the payload.
//     Decoding is defensive: bad magic, unknown version, or an oversized
//     length field is a protocol error, never a panic or an unbounded read.
//   - comm.go       — Comm: one writer and one reader goroutine per peer
//     link, nonblocking PostSend/PostRecv plus a Wait that drains all
//     outstanding operations, deadline-bounded so a dead peer surfaces as
//     an error naming the culprit rank instead of a hang. Rank-0-rooted
//     collectives (AllreduceSum/Max, Barrier) ride the same links.
//   - rendezvous.go — Connect: rank 0 listens and announces, every other
//     rank dials with retry and backoff, rank 0 distributes the roster and
//     the partition owner map, then neighbor links are established
//     (higher rank dials lower).
//   - exchanger.go  — Exchanger: halo.ExchangeSpec bound to persistent
//     pack/unpack buffers with Post/Wait halves for the comm/compute
//     overlap (sw.Overlap) and a blocking Exchange for the baseline, plus
//     per-rank telemetry (bytes sent/received, wait-time histogram,
//     overlap-efficiency gauge).
//   - launcher.go   — Launch: spawn N local ranks of cmd/swrank, parse the
//     rank-0 announce line, supervise, and on any abnormal exit kill the
//     remaining ranks and report which rank failed.
package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire format constants. The magic doubles as a byte-order sanity check:
// every multi-byte field on the wire is little-endian.
const (
	frameMagic   uint32 = 0x53574446 // "SWDF"
	frameVersion uint8  = 1

	// headerSize is the fixed frame header length in bytes:
	// magic(4) version(1) type(1) sender(4) tag(4) length(4).
	headerSize = 18

	// MaxPayload bounds the payload length a decoder will accept. The
	// largest legitimate frame is a gathered global field on the biggest
	// supported mesh (level 9, ~2.6M cells, two float64 per entry); 64 MiB
	// covers it with headroom while keeping a garbage length field from
	// provoking a giant allocation.
	MaxPayload = 64 << 20
)

// frameType tags what a frame carries. Data frames (halo payloads, scalar
// collectives, gathers) are the steady state; hello and roster appear only
// during rendezvous.
type frameType uint8

const (
	frameHello  frameType = 1 // rank k -> rank 0 / peer: identity + listen addr
	frameRoster frameType = 2 // rank 0 -> rank k: addresses + partition owner map
	frameData   frameType = 3 // float64 payload, in-order per link, tag-checked
)

// header is the decoded fixed-size frame prefix.
type header struct {
	Type   frameType
	Sender uint32
	Tag    uint32
	Length uint32 // payload bytes following the header
}

// putHeader encodes h into b, which must have room for headerSize bytes.
func putHeader(b []byte, h header) {
	binary.LittleEndian.PutUint32(b[0:], frameMagic)
	b[4] = frameVersion
	b[5] = byte(h.Type)
	binary.LittleEndian.PutUint32(b[6:], h.Sender)
	binary.LittleEndian.PutUint32(b[10:], h.Tag)
	binary.LittleEndian.PutUint32(b[14:], h.Length)
}

// parseHeader decodes and validates a frame header. It rejects short input,
// bad magic, unknown versions, unknown frame types and oversized lengths —
// the full defensive surface the fuzz target exercises.
func parseHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("dist: short frame header: %d bytes", len(b))
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != frameMagic {
		return h, fmt.Errorf("dist: bad frame magic %#08x", m)
	}
	if v := b[4]; v != frameVersion {
		return h, fmt.Errorf("dist: unsupported frame version %d", v)
	}
	h.Type = frameType(b[5])
	switch h.Type {
	case frameHello, frameRoster, frameData:
	default:
		return h, fmt.Errorf("dist: unknown frame type %d", b[5])
	}
	h.Sender = binary.LittleEndian.Uint32(b[6:])
	h.Tag = binary.LittleEndian.Uint32(b[10:])
	h.Length = binary.LittleEndian.Uint32(b[14:])
	if h.Length > MaxPayload {
		return h, fmt.Errorf("dist: frame payload %d exceeds limit %d", h.Length, MaxPayload)
	}
	return h, nil
}

// readHeader reads and validates exactly one frame header from r.
func readHeader(r io.Reader, scratch []byte) (header, error) {
	if _, err := io.ReadFull(r, scratch[:headerSize]); err != nil {
		return header{}, err
	}
	return parseHeader(scratch[:headerSize])
}

// writeFrame writes one complete frame (header + payload) with a single
// Write call, using scratch as the staging buffer (grown as needed) so the
// steady state allocates nothing. It returns the staging buffer for reuse
// and the total bytes written.
func writeFrame(w io.Writer, h header, payload []byte, scratch []byte) ([]byte, int, error) {
	n := headerSize + len(payload)
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	h.Length = uint32(len(payload))
	putHeader(scratch, h)
	copy(scratch[headerSize:], payload)
	_, err := w.Write(scratch)
	return scratch, n, err
}

// readFrame reads one complete frame, returning the (possibly regrown)
// payload scratch buffer sliced to the payload and the total bytes read.
func readFrame(r io.Reader, scratch []byte) (header, []byte, int, error) {
	var hdr [headerSize]byte
	h, err := readHeader(r, hdr[:])
	if err != nil {
		return h, scratch, 0, err
	}
	if cap(scratch) < int(h.Length) {
		scratch = make([]byte, h.Length)
	}
	scratch = scratch[:h.Length]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return h, scratch, 0, fmt.Errorf("dist: truncated frame payload: %w", err)
	}
	return h, scratch, headerSize + int(h.Length), nil
}

// Float payload helpers: data frames carry float64 slices little-endian.

func putFloats(dst []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

func getFloats(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}
