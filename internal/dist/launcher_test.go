package dist

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestFakeRank is not a real test: it is the child-process body for the
// launcher tests below (helper-process pattern — the test binary re-execs
// itself with -test.run pinned here). Launch appends "-rank N -ranks N
// -addr0 A" after our "--" separator, so they arrive as positional args
// and are parsed by hand. The DIST_FAKE_RANK env var selects the failure
// scenario being rehearsed.
func TestFakeRank(t *testing.T) {
	mode := os.Getenv("DIST_FAKE_RANK")
	if mode == "" {
		t.Skip("not a launcher child process")
	}
	rank := -1
	for i, a := range os.Args {
		if a == "-rank" && i+1 < len(os.Args) {
			fmt.Sscan(os.Args[i+1], &rank)
		}
	}
	if rank == 0 && mode != "noannounce" {
		fmt.Println(AnnouncePrefix + "127.0.0.1:1")
	}
	fmt.Printf("fake rank %d ran\n", rank)
	switch {
	case mode == "fail2" && rank == 2:
		os.Exit(3)
	case mode == "kill1" && rank == 1:
		// Die after the witness (rank 2) has already exited non-zero, so
		// pickCulprit must look past the first reported failure.
		time.Sleep(200 * time.Millisecond)
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	case mode == "kill1" && rank == 2:
		os.Exit(1)
	case mode == "hang":
		time.Sleep(time.Minute)
	}
	os.Exit(0)
}

// syncBuffer guards a bytes.Buffer against the concurrent per-rank copy
// goroutines that exec spawns for each child's stdout.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func launchSelf(t *testing.T, mode string, ranks int, timeout time.Duration, out io.Writer) error {
	t.Helper()
	t.Setenv("DIST_FAKE_RANK", mode)
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return Launch(bin, ranks, []string{"-test.run=^TestFakeRank$", "--"}, timeout, out, io.Discard)
}

func TestLaunchSuccessForwardsOutput(t *testing.T) {
	var out syncBuffer
	if err := launchSelf(t, "ok", 3, 30*time.Second, &out); err != nil {
		t.Fatalf("launch: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, AnnouncePrefix) {
		t.Errorf("announce line not forwarded:\n%s", got)
	}
	for r := 0; r < 3; r++ {
		if !strings.Contains(got, fmt.Sprintf("fake rank %d ran", r)) {
			t.Errorf("rank %d output missing:\n%s", r, got)
		}
	}
}

func TestLaunchNamesNonzeroExit(t *testing.T) {
	err := launchSelf(t, "fail2", 3, 30*time.Second, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("want error naming rank 2, got: %v", err)
	}
}

func TestLaunchPrefersSignaledCulprit(t *testing.T) {
	// Rank 2 exits non-zero immediately (the witness); rank 1 SIGKILLs
	// itself 200ms later (the culprit). The drain window must collect both
	// and blame the signal-killed one.
	err := launchSelf(t, "kill1", 3, 30*time.Second, io.Discard)
	if err == nil {
		t.Fatal("launch with a killed rank returned nil")
	}
	if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("want signal-killed rank 1 blamed, got: %v", err)
	}
}

func TestLaunchRank0ExitsWithoutAnnouncing(t *testing.T) {
	err := launchSelf(t, "noannounce", 2, 30*time.Second, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "before announcing") {
		t.Fatalf("want announce failure, got: %v", err)
	}
}

func TestLaunchTimeoutKillsHungRanks(t *testing.T) {
	start := time.Now()
	err := launchSelf(t, "hang", 2, 2*time.Second, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("want timeout error, got: %v", err)
	}
	if el := time.Since(start); el > 15*time.Second {
		t.Fatalf("timeout took %v to enforce", el)
	}
}

func TestLaunchArgumentErrors(t *testing.T) {
	if err := Launch("/no/such/binary", 2, nil, time.Second, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "starting rank 0") {
		t.Fatalf("want start error, got: %v", err)
	}
	if err := Launch("true", 0, nil, time.Second, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "at least 1 rank") {
		t.Fatalf("want rank-count error, got: %v", err)
	}
}
