package dist

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	want := header{Type: frameData, Sender: 7, Tag: 0x2000_0003, Length: 4096}
	var b [headerSize]byte
	putHeader(b[:], want)
	got, err := parseHeader(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip %+v != %+v", got, want)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"short":       make([]byte, headerSize-1),
		"zero":        make([]byte, headerSize),
		"bad magic":   {0xde, 0xad, 0xbe, 0xef, 1, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"bad version": {0x46, 0x44, 0x57, 0x53, 9, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"bad type":    {0x46, 0x44, 0x57, 0x53, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"oversize":    {0x46, 0x44, 0x57, 0x53, 1, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, err := parseHeader(b); err == nil {
			t.Errorf("%s header accepted", name)
		}
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var b [headerSize]byte
	putHeader(b[:], header{Type: frameData, Sender: 1, Tag: 2, Length: 100})
	r := bytes.NewReader(append(b[:], make([]byte, 10)...)) // 90 bytes short
	if _, _, _, err := readFrame(r, nil); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestWriteReadFrame(t *testing.T) {
	payload := make([]byte, 8*3)
	putFloats(payload, []float64{1.5, -2.25, math.Pi})
	var buf bytes.Buffer
	if _, n, err := writeFrame(&buf, header{Type: frameData, Sender: 3, Tag: 9}, payload, nil); err != nil || n != headerSize+24 {
		t.Fatalf("writeFrame: n=%d err=%v", n, err)
	}
	h, got, n, err := readFrame(&buf, nil)
	if err != nil || n != headerSize+24 {
		t.Fatalf("readFrame: n=%d err=%v", n, err)
	}
	if h.Sender != 3 || h.Tag != 9 || !bytes.Equal(got, payload) {
		t.Fatalf("frame mismatch: %+v", h)
	}
	out := make([]float64, 3)
	getFloats(out, got)
	if out[0] != 1.5 || out[1] != -2.25 || out[2] != math.Pi {
		t.Fatalf("float round trip: %v", out)
	}
}

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder: it must
// reject or accept cleanly — no panic, no over-read — and an accepted frame
// must re-encode to the bytes it was decoded from.
func FuzzFrameDecode(f *testing.F) {
	var seed [headerSize]byte
	putHeader(seed[:], header{Type: frameData, Sender: 1, Tag: 2, Length: 8})
	f.Add(append(seed[:], 1, 2, 3, 4, 5, 6, 7, 8))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x53}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		h, payload, n, err := readFrame(r, nil)
		if err != nil {
			return
		}
		if n != headerSize+len(payload) || int(h.Length) != len(payload) {
			t.Fatalf("inconsistent decode: n=%d len=%d h.Length=%d", n, len(payload), h.Length)
		}
		var buf bytes.Buffer
		if _, m, err := writeFrame(&buf, h, payload, nil); err != nil || m != n {
			t.Fatalf("re-encode: m=%d err=%v", m, err)
		}
		if !bytes.Equal(buf.Bytes(), data[:n]) {
			t.Fatalf("re-encode differs from wire bytes")
		}
	})
}

// The decoder must never read past the declared frame, so back-to-back
// frames on one stream decode independently.
func TestReadFrameStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		p := make([]byte, 8)
		putFloats(p, []float64{float64(i)})
		if _, _, err := writeFrame(&buf, header{Type: frameData, Sender: 0, Tag: uint32(i)}, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		h, p, _, err := readFrame(&buf, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		v := make([]float64, 1)
		getFloats(v, p)
		if h.Tag != uint32(i) || v[0] != float64(i) {
			t.Fatalf("frame %d: tag %d value %v", i, h.Tag, v[0])
		}
	}
	if _, _, _, err := readFrame(&buf, nil); err != io.EOF {
		t.Fatalf("want EOF after last frame, got %v", err)
	}
}
