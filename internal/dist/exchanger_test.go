package dist

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/halo"
	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sw"
	"repro/internal/telemetry"
	"repro/internal/testcases"
)

var meshCache sync.Map // level -> *mesh.Mesh

func testMesh(t testing.TB, level int) *mesh.Mesh {
	if m, ok := meshCache.Load(level); ok {
		return m.(*mesh.Mesh)
	}
	m, err := DefaultMesh(level)
	if err != nil {
		t.Fatal(err)
	}
	meshCache.Store(level, m)
	return m
}

func bisectOwner(t testing.TB, m *mesh.Mesh, n int) []int32 {
	p, err := partition.Bisect(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return p.Owner
}

// The halo exchange over real TCP: every rank publishes its owned entities'
// global ids, poisons its halo slots, exchanges, and checks every halo slot
// now holds the correct global id. Exercises spec construction from the
// distributed owner map, pack/send/recv/unpack through the frame layer, and
// the per-peer persistent buffers.
func TestExchangerFillsHalos(t *testing.T) {
	m := testMesh(t, 3)
	const n = 3
	owner := bisectOwner(t, m, n)
	runWorld(t, n, owner, nil, func(b *Bootstrap) error {
		part, err := partition.FromOwner(b.Owner, n)
		if err != nil {
			return err
		}
		locals := make([]*partition.Local, n)
		for r := 0; r < n; r++ {
			locals[r] = partition.Extract(m, part, r, HaloLayers)
		}
		l := locals[b.Comm.Rank]
		// runWorld already linked all-to-all; the exchanger only uses its
		// spec's peers, extra links stay idle.
		spec := halo.BuildSpecs(m, locals)[b.Comm.Rank]
		e := NewExchanger(b.Comm, spec)
		e.EnableTelemetry(telemetry.NewRegistry())

		cellF := make([]float64, len(l.CellL2G))
		edgeF := make([]float64, len(l.EdgeL2G))
		for lc, g := range l.CellL2G {
			if lc < l.NOwnedCells {
				cellF[lc] = float64(g)
			} else {
				cellF[lc] = -1e300
			}
		}
		for le, g := range l.EdgeL2G {
			if int(l.EdgeOwner[le]) == b.Comm.Rank {
				edgeF[le] = 1e6 + float64(g)
			} else {
				edgeF[le] = -1e300
			}
		}
		for round := 0; round < 3; round++ {
			if err := e.Exchange(cellF, edgeF); err != nil {
				return err
			}
		}
		for lc, g := range l.CellL2G {
			if cellF[lc] != float64(g) {
				return fmt.Errorf("cell %d (global %d): %v", lc, g, cellF[lc])
			}
		}
		for le, g := range l.EdgeL2G {
			if edgeF[le] != 1e6+float64(g) {
				return fmt.Errorf("edge %d (global %d): %v", le, g, edgeF[le])
			}
		}
		if e.Exchanges != 3 {
			return fmt.Errorf("exchange count %d", e.Exchanges)
		}
		return nil
	})
}

// The decisive conformance test of the TCP substrate: multi-rank solver
// runs — blocking and overlapped — through real sockets must reproduce the
// single-process serial trajectory BITWISE on owned entities, exactly like
// the channel-based mpisim world.
func TestRankSolverBitwiseMatchesSerial(t *testing.T) {
	m := testMesh(t, 3)
	cfg := sw.DefaultConfig(m)
	steps := 2

	serial, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(serial)
	serial.Run(steps)

	for _, tc := range []struct {
		ranks    int
		overlap  bool
		taskplan bool
		workers  int
	}{
		{2, false, false, 1}, {2, true, false, 1}, {3, true, false, 2},
		{2, false, true, 1}, {2, true, true, 2}, {3, true, true, 2},
	} {
		owner := bisectOwner(t, m, tc.ranks)
		runWorldBoot(t, tc.ranks, owner, func(b *Bootstrap) error {
			defer b.Comm.Close()
			var pool *par.Pool
			if tc.workers > 1 {
				pool = par.NewPool(tc.workers)
				defer pool.Close()
			}
			rs, err := NewRankSolverOpts(b, m, cfg, testcases.SetupTC5, pool,
				RankOptions{Overlap: tc.overlap, TaskPlan: tc.taskplan})
			if err != nil {
				return err
			}
			if err := rs.Run(steps); err != nil {
				return err
			}
			if rs.Ex.Exchanges != 4*steps+1 { // +1 bootstrap
				return fmt.Errorf("exchange count %d, want %d", rs.Ex.Exchanges, 4*steps+1)
			}
			for lc := 0; lc < rs.Local.NOwnedCells; lc++ {
				if rs.S.State.H[lc] != serial.State.H[rs.Local.CellL2G[lc]] {
					return fmt.Errorf("H diverges at owned cell %d", lc)
				}
			}
			for le := range rs.Local.EdgeL2G {
				if int(rs.Local.EdgeOwner[le]) != b.Comm.Rank {
					continue
				}
				if rs.S.State.U[le] != serial.State.U[rs.Local.EdgeL2G[le]] {
					return fmt.Errorf("U diverges at owned edge %d", le)
				}
			}
			// Gathered fields on rank 0 must equal the serial state exactly.
			h, err := rs.GatherCellField(rs.S.State.H)
			if err != nil {
				return err
			}
			u, err := rs.GatherEdgeField(rs.S.State.U)
			if err != nil {
				return err
			}
			gm, err := rs.GlobalMass()
			if err != nil {
				return err
			}
			_ = gm
			if b.Comm.Rank == 0 {
				for i := range h {
					if h[i] != serial.State.H[i] {
						return fmt.Errorf("gathered H[%d] diverges", i)
					}
				}
				for i := range u {
					if u[i] != serial.State.U[i] {
						return fmt.Errorf("gathered U[%d] diverges", i)
					}
				}
			}
			return nil
		})
	}
}

// A blocking and an overlapped run through the SAME substrate must agree on
// the global mass series exactly (same owned values, same reduction order).
func TestBlockingAndOverlapMassAgree(t *testing.T) {
	m := testMesh(t, 3)
	cfg := sw.DefaultConfig(m)
	steps := 2
	owner := bisectOwner(t, m, 2)
	massOf := func(overlap bool) []float64 {
		var mu sync.Mutex
		out := make([]float64, 0, steps)
		runWorldBoot(t, 2, owner, func(b *Bootstrap) error {
			defer b.Comm.Close()
			rs, err := NewRankSolver(b, m, cfg, testcases.SetupTC5, nil, overlap)
			if err != nil {
				return err
			}
			for i := 0; i < steps; i++ {
				if err := rs.Step(); err != nil {
					return err
				}
				gm, err := rs.GlobalMass()
				if err != nil {
					return err
				}
				if b.Comm.Rank == 0 {
					mu.Lock()
					out = append(out, gm)
					mu.Unlock()
				}
			}
			return nil
		})
		return out
	}
	blocking := massOf(false)
	overlap := massOf(true)
	if len(blocking) != steps || len(overlap) != steps {
		t.Fatalf("mass series lengths %d/%d, want %d", len(blocking), len(overlap), steps)
	}
	for i := range blocking {
		if blocking[i] != overlap[i] {
			t.Fatalf("step %d: mass %v (blocking) != %v (overlap)", i, blocking[i], overlap[i])
		}
	}
}
