package dist

import (
	"os"
	"path/filepath"
	"testing"
)

func TestResultRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.bin")
	want := &RunResult{
		Level: 3, Steps: 2,
		H:    []float64{1.5, -2.25, 0, 3e100},
		U:    []float64{-0.5, 1e-300},
		Mass: []float64{10, 10.000001, 9.999999},
	}
	if err := WriteResult(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != want.Level || got.Steps != want.Steps {
		t.Fatalf("header mismatch: %+v", got)
	}
	for name, pair := range map[string][2][]float64{
		"H": {want.H, got.H}, "U": {want.U, got.U}, "Mass": {want.Mass, got.Mass},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s length %d != %d", name, len(pair[1]), len(pair[0]))
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, pair[1][i], pair[0][i])
			}
		}
	}
}

func TestResultRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.bin")
	if err := WriteResult(path, &RunResult{Level: 1, Steps: 1,
		H: []float64{1}, U: []float64{2}, Mass: []float64{3}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	trunc := filepath.Join(t.TempDir(), "trunc.bin")
	if err := os.WriteFile(trunc, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResult(trunc); err == nil {
		t.Fatal("truncated file accepted")
	}

	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	badPath := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResult(badPath); err == nil {
		t.Fatal("bad magic accepted")
	}

	if _, err := ReadResult(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}
