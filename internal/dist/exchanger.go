package dist

import (
	"strconv"
	"time"

	"repro/internal/halo"
	"repro/internal/telemetry"
)

// Exchanger binds one rank's halo.ExchangeSpec to its Comm with persistent
// per-peer pack/unpack buffers: the steady-state halo exchange allocates
// nothing.
//
// The split Post/Wait halves are the TCP realization of sw.Overlap: Post
// packs and enqueues the sends AND registers the receives (the reader
// goroutines then progress the transfer while the rank computes its
// interior), Wait drains the comm and unpacks. Exchange is the blocking
// composition, used by the baseline schedule and for bootstrap.
type Exchanger struct {
	C    *Comm
	Spec *halo.ExchangeSpec

	send map[int][]float64
	recv map[int][]float64
	seq  uint32

	// Exchanges counts completed exchanges (4 per RK step).
	Exchanges int

	// Overlap-efficiency telemetry: the fraction of the post->wait-return
	// window NOT spent blocked in Wait, cumulative over the run. 1.0 means
	// communication fully hidden behind interior compute; 0 means fully
	// exposed (the blocking baseline by construction).
	effGauge  *telemetry.Gauge
	postedAt  time.Time
	winTotal  time.Duration
	waitTotal time.Duration
}

// NewExchanger allocates the per-peer buffers up front.
func NewExchanger(c *Comm, spec *halo.ExchangeSpec) *Exchanger {
	e := &Exchanger{C: c, Spec: spec,
		send: make(map[int][]float64, len(spec.Peers)),
		recv: make(map[int][]float64, len(spec.Peers))}
	for _, p := range spec.Peers {
		e.send[p] = make([]float64, spec.SendLen(p))
		e.recv[p] = make([]float64, spec.RecvLen(p))
	}
	return e
}

// EnableTelemetry attaches the dist_rank<k>_overlap_efficiency gauge (the
// comm's byte counters and wait timer are attached via Comm.EnableTelemetry).
func (e *Exchanger) EnableTelemetry(reg *telemetry.Registry) {
	e.effGauge = reg.Gauge("dist_rank" + strconv.Itoa(e.C.Rank) + "_overlap_efficiency")
}

// tag returns the halo-exchange tag for the current sequence number. The
// sequence advances identically on all ranks (same exchange schedule), and
// the space is disjoint from the collective and point-to-point tags.
func (e *Exchanger) tag() uint32 { return 0x2000_0000 | e.seq }

// Post packs the owned entities every neighbor needs, enqueues all sends,
// and registers all receives. It returns immediately; transfer progresses
// on the link goroutines while the caller computes. cellF/edgeF must not
// have their OWNED entries mutated before Wait (the RK schedule guarantees
// this: interior slices never write h or u).
func (e *Exchanger) Post(cellF, edgeF []float64) {
	t := e.tag()
	for _, p := range e.Spec.Peers {
		e.Spec.PackSend(p, cellF, edgeF, e.send[p])
		e.C.PostSend(p, t, e.send[p])
		e.C.PostRecv(p, t, e.recv[p])
	}
	e.postedAt = time.Now()
}

// Wait drains the posted operations and scatters the received values into
// the halo slots of cellF/edgeF. It must be called exactly once per Post,
// with the same fields.
func (e *Exchanger) Wait(cellF, edgeF []float64) error {
	t0 := time.Now()
	err := e.C.Wait()
	waited := time.Since(t0)
	for _, p := range e.Spec.Peers {
		e.Spec.UnpackRecv(p, e.recv[p], cellF, edgeF)
	}
	e.seq++
	e.Exchanges++
	e.waitTotal += waited
	e.winTotal += time.Since(e.postedAt)
	if e.effGauge != nil && e.winTotal > 0 {
		e.effGauge.Set(1 - e.waitTotal.Seconds()/e.winTotal.Seconds())
	}
	return err
}

// Exchange is the blocking halo exchange: Post immediately followed by
// Wait. The baseline (non-overlapped) schedule uses exactly this through
// the same links, buffers and frames, so overlap-vs-blocking comparisons
// measure scheduling alone.
func (e *Exchanger) Exchange(cellF, edgeF []float64) error {
	e.Post(cellF, edgeF)
	return e.Wait(cellF, edgeF)
}

// OverlapEfficiency returns the cumulative overlap efficiency (0 when no
// exchange has completed).
func (e *Exchanger) OverlapEfficiency() float64 {
	if e.winTotal <= 0 {
		return 0
	}
	return 1 - e.waitTotal.Seconds()/e.winTotal.Seconds()
}
