package dist

import (
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// exit is one supervised rank's termination report.
type exit struct {
	rank int
	err  error
}

// announceSink is rank 0's stdout sink: it reassembles lines, delivers
// the first announce line's address on addrCh, and forwards everything to
// out. It is an io.Writer (not a StdoutPipe scanner) deliberately — exec
// drains a Stdout writer completely before Wait returns, whereas Wait
// closes a StdoutPipe on process exit and races any concurrent reader,
// losing the final lines under load.
type announceSink struct {
	mu        sync.Mutex
	buf       []byte
	out       io.Writer
	addrCh    chan string
	announced bool
}

func (a *announceSink) Write(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.buf = append(a.buf, p...)
	for {
		i := bytes.IndexByte(a.buf, '\n')
		if i < 0 {
			break
		}
		line := string(a.buf[:i])
		a.buf = a.buf[i+1:]
		if !a.announced {
			if rest, ok := strings.CutPrefix(line, AnnouncePrefix); ok {
				a.announced = true
				a.addrCh <- strings.TrimSpace(rest)
			}
		}
		if a.out != nil {
			fmt.Fprintln(a.out, line)
		}
	}
	return len(p), nil
}

// Launch spawns a local N-rank run of the given swrank binary and
// supervises it. Rank 0 is started first with an ephemeral listen address;
// its announce line is parsed off stdout to obtain the actual address,
// which is then passed to ranks 1..N-1.
//
// Failure policy: the first rank to exit abnormally (non-zero status or
// killed by a signal) is the culprit; every other rank is killed
// immediately and the returned error names the culprit rank. The whole
// launch is bounded by timeout — a hung rank is killed and reported rather
// than waited on forever. A nil return means every rank exited zero.
func Launch(bin string, ranks int, commonArgs []string, timeout time.Duration, stdout, stderr io.Writer) error {
	if ranks < 1 {
		return fmt.Errorf("dist: launch needs at least 1 rank, got %d", ranks)
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()

	rankArgs := func(rank int, addr0 string) []string {
		return append(append([]string{}, commonArgs...),
			"-rank", strconv.Itoa(rank), "-ranks", strconv.Itoa(ranks), "-addr0", addr0)
	}

	cmds := make([]*exec.Cmd, ranks)
	exits := make(chan exit, ranks)
	var wg sync.WaitGroup
	startSupervised := func(rank int, cmd *exec.Cmd) error {
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("dist: starting rank %d: %w", rank, err)
		}
		cmds[rank] = cmd
		wg.Add(1)
		go func() {
			defer wg.Done()
			exits <- exit{rank, cmd.Wait()}
		}()
		return nil
	}
	killAll := func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	}
	// Always reap every started child before returning, so no zombie or
	// stray writer to our pipes outlives Launch.
	defer func() {
		killAll()
		wg.Wait()
	}()

	// Rank 0: ephemeral port, stdout scanned for the announce line and
	// forwarded onward.
	cmd0 := exec.Command(bin, rankArgs(0, "127.0.0.1:0")...)
	cmd0.Stderr = stderr
	addrCh := make(chan string, 1)
	cmd0.Stdout = &announceSink{out: stdout, addrCh: addrCh}
	if err := startSupervised(0, cmd0); err != nil {
		return err
	}

	var addr0 string
	select {
	case addr0 = <-addrCh:
	case e := <-exits:
		// Rank 0 may have announced and then exited cleanly before this
		// select ran (e.g. a 1-rank run): the announce send happens-before
		// its exit report, so if the address isn't ready now it never came.
		select {
		case addr0 = <-addrCh:
			exits <- e // re-queue for the supervision loop below
		default:
			return fmt.Errorf("dist: rank 0 exited before announcing: %v", e.err)
		}
	case <-deadline.C:
		return fmt.Errorf("dist: rank 0 did not announce within %s", timeout)
	}

	for r := 1; r < ranks; r++ {
		cmd := exec.Command(bin, rankArgs(r, addr0)...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := startSupervised(r, cmd); err != nil {
			return err
		}
	}

	// Supervision: collect all exits. On the first abnormal exit, drain
	// briefly so near-simultaneous failures are all seen — a killed rank
	// and the peers that witnessed the broken connection race to exit, and
	// the actual culprit (the signal-killed process) may be reported to us
	// after a witness. Then kill the survivors and name the culprit.
	for done := 0; done < ranks; {
		select {
		case e := <-exits:
			done++
			if e.err == nil {
				continue
			}
			failed := []exit{e}
			grace := time.After(1 * time.Second)
		drain:
			for done < ranks {
				select {
				case e2 := <-exits:
					done++
					if e2.err != nil {
						failed = append(failed, e2)
					}
				case <-grace:
					break drain
				}
			}
			killAll()
			culprit := pickCulprit(failed)
			return fmt.Errorf("dist: rank %d failed: %w (remaining ranks killed)", culprit.rank, culprit.err)
		case <-deadline.C:
			killAll()
			return fmt.Errorf("dist: launch exceeded %s; all ranks killed", timeout)
		}
	}
	return nil
}

// pickCulprit chooses which of several near-simultaneous failures to blame:
// a signal-killed rank (a crashed/killed process) over a rank that exited
// non-zero — the latter are usually witnesses reporting the broken link —
// and the earliest-reported failure within each class.
func pickCulprit(failed []exit) exit {
	for _, e := range failed {
		if ee, ok := e.err.(*exec.ExitError); ok {
			if ws, ok := ee.ProcessState.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				return e
			}
		}
	}
	return failed[0]
}
