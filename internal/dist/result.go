package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// RunResult is the final-state record a distributed (or serial reference)
// swrank run writes with -out: the gathered global fields plus the global
// mass series, enough for the conformance harness to compare trajectories
// across process counts without sharing memory.
type RunResult struct {
	Level int
	Steps int
	H     []float64
	U     []float64
	Mass  []float64 // per step, index 0 = initial state
}

// resultMagic identifies the binary result file ("SWRK"), little-endian
// throughout like the repository's checkpoint format.
const resultMagic uint32 = 0x5357524B

// WriteResult writes r to path atomically enough for our purposes (single
// writer, readers open only after the writing process exited).
func WriteResult(path string, r *RunResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	var u8 [8]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u8[:4], v)
		w.Write(u8[:4])
	}
	putU32(resultMagic)
	putU32(1) // version
	putU32(uint32(r.Level))
	putU32(uint32(r.Steps))
	putU32(uint32(len(r.H)))
	putU32(uint32(len(r.U)))
	putU32(uint32(len(r.Mass)))
	for _, field := range [][]float64{r.H, r.U, r.Mass} {
		for _, v := range field {
			binary.LittleEndian.PutUint64(u8[:], math.Float64bits(v))
			w.Write(u8[:])
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadResult reads a file written by WriteResult.
func ReadResult(path string) (*RunResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var u8 [8]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, u8[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u8[:4]), nil
	}
	magic, err := getU32()
	if err != nil || magic != resultMagic {
		return nil, fmt.Errorf("dist: %s is not a swrank result file (magic %#x, err %v)", path, magic, err)
	}
	ver, err := getU32()
	if err != nil || ver != 1 {
		return nil, fmt.Errorf("dist: %s: unsupported result version %d", path, ver)
	}
	hdr := make([]uint32, 5)
	for i := range hdr {
		if hdr[i], err = getU32(); err != nil {
			return nil, fmt.Errorf("dist: %s: truncated header: %w", path, err)
		}
	}
	const maxField = 1 << 28 // defensive bound, far above any supported mesh
	if hdr[2] > maxField || hdr[3] > maxField || hdr[4] > maxField {
		return nil, fmt.Errorf("dist: %s: implausible field sizes %v", path, hdr[2:])
	}
	r := &RunResult{Level: int(hdr[0]), Steps: int(hdr[1]),
		H: make([]float64, hdr[2]), U: make([]float64, hdr[3]), Mass: make([]float64, hdr[4])}
	for _, field := range [][]float64{r.H, r.U, r.Mass} {
		for i := range field {
			if _, err := io.ReadFull(br, u8[:]); err != nil {
				return nil, fmt.Errorf("dist: %s: truncated data: %w", path, err)
			}
			field[i] = math.Float64frombits(binary.LittleEndian.Uint64(u8[:]))
		}
	}
	return r, nil
}
