package dist

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// announceWriter captures the rank-0 announce line and hands the bound
// address to the leaf goroutines.
type announceWriter chan string

func (w announceWriter) Write(p []byte) (int, error) {
	line := strings.TrimSpace(string(p))
	w <- strings.TrimPrefix(line, AnnouncePrefix)
	return len(p), nil
}

// runWorld runs an N-rank world in-process: one goroutine per rank, each
// performing the full TCP rendezvous on loopback, connecting to the given
// peers (nil = all-to-all) and executing body. Any body error fails the
// test.
func runWorld(t *testing.T, n int, owner []int32, peersOf func(rank int) []int, body func(b *Bootstrap) error) {
	t.Helper()
	runWorldBoot(t, n, owner, func(b *Bootstrap) error {
		peers := allPeers(b.Comm.Rank, n)
		if peersOf != nil {
			peers = peersOf(b.Comm.Rank)
		}
		if err := b.ConnectPeers(peers); err != nil {
			return err
		}
		defer b.Comm.Close()
		return body(b)
	})
}

// runWorldBoot is runWorld without the peer-linking step: body receives the
// freshly rendezvoused Bootstrap and is responsible for ConnectPeers (e.g.
// via NewRankSolver) and Close.
func runWorldBoot(t *testing.T, n int, owner []int32, body func(b *Bootstrap) error) {
	t.Helper()
	addrCh := make(announceWriter, 1)
	errs := make(chan error, n)
	var addr0 string
	var mu sync.Mutex
	getAddr := func() string {
		mu.Lock()
		defer mu.Unlock()
		if addr0 == "" {
			addr0 = <-addrCh
		}
		return addr0
	}
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := Config{Rank: rank, N: n, Timeout: 20 * time.Second}
			var own []int32
			if rank == 0 {
				cfg.Addr0 = "127.0.0.1:0"
				cfg.Announce = addrCh
				own = owner
			} else {
				cfg.Addr0 = getAddr()
			}
			b, err := Connect(cfg, own)
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			if err := body(b); err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
			}
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func allPeers(rank, n int) []int {
	var out []int
	for r := 0; r < n; r++ {
		if r != rank {
			out = append(out, r)
		}
	}
	return out
}

func TestRendezvousDistributesOwnerMap(t *testing.T) {
	owner := []int32{0, 1, 2, 0, 1, 2, 0, 1}
	runWorld(t, 3, owner, nil, func(b *Bootstrap) error {
		if len(b.Owner) != len(owner) {
			return fmt.Errorf("owner map length %d, want %d", len(b.Owner), len(owner))
		}
		for i := range owner {
			if b.Owner[i] != owner[i] {
				return fmt.Errorf("owner[%d] = %d, want %d", i, b.Owner[i], owner[i])
			}
		}
		return nil
	})
}

// Ring traffic through the posted-operation path: each rank sends its rank
// to the next and receives from the previous, with both operations in
// flight across one Wait.
func TestPostSendRecvRing(t *testing.T) {
	const n = 4
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = int32(i)
	}
	runWorld(t, n, owner, nil, func(b *Bootstrap) error {
		c := b.Comm
		next, prev := (c.Rank+1)%n, (c.Rank+n-1)%n
		for round := 0; round < 50; round++ {
			out := []float64{float64(c.Rank*1000 + round)}
			in := make([]float64, 1)
			tag := uint32(round)
			c.PostSend(next, tag, out)
			c.PostRecv(prev, tag, in)
			if err := c.Wait(); err != nil {
				return err
			}
			if want := float64(prev*1000 + round); in[0] != want {
				return fmt.Errorf("round %d: got %v, want %v", round, in[0], want)
			}
		}
		return nil
	})
}

func TestCollectives(t *testing.T) {
	const n = 4
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = int32(i)
	}
	runWorld(t, n, owner, nil, func(b *Bootstrap) error {
		c := b.Comm
		sum, err := c.AllreduceSum(float64(c.Rank + 1))
		if err != nil {
			return err
		}
		if sum != 10 { // 1+2+3+4
			return fmt.Errorf("allreduce sum %v, want 10", sum)
		}
		max, err := c.AllreduceMax(float64(c.Rank))
		if err != nil {
			return err
		}
		if max != n-1 {
			return fmt.Errorf("allreduce max %v, want %d", max, n-1)
		}
		return c.Barrier()
	})
}

// Star topology (only rank-0 links, the minimum ConnectPeers leaves in
// place): collectives must still work, and a posted op to an unlinked peer
// must fail cleanly at Wait rather than panic or hang.
func TestStarTopologyAndMissingLink(t *testing.T) {
	const n = 3
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = int32(i)
	}
	runWorld(t, n, owner, func(rank int) []int { return nil }, func(b *Bootstrap) error {
		c := b.Comm
		sum, err := c.AllreduceSum(1)
		if err != nil {
			return err
		}
		if sum != n {
			return fmt.Errorf("allreduce sum %v, want %d", sum, n)
		}
		if c.Rank == 1 {
			c.PostSend(2, 0, []float64{1})
			if err := c.Wait(); err == nil {
				return fmt.Errorf("send to unlinked peer succeeded")
			}
		}
		return nil
	})
}

// A rank that dies mid-protocol must surface at its peers as an error
// NAMING the dead rank, within the timeout — the no-hang guarantee the
// launcher's failure policy is built on.
func TestDeadPeerNamedWithinTimeout(t *testing.T) {
	owner := []int32{0, 1}
	addrCh := make(announceWriter, 1)
	results := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // rank 0: waits on a message rank 1 never sends
		defer wg.Done()
		b, err := Connect(Config{Rank: 0, N: 2, Addr0: "127.0.0.1:0",
			Announce: addrCh, Timeout: 10 * time.Second}, owner)
		if err != nil {
			results <- err
			return
		}
		if err := b.ConnectPeers([]int{1}); err != nil {
			results <- err
			return
		}
		defer b.Comm.Close()
		// Tighten the deadline now that links are up: rendezvous needed
		// slack, but the dead-peer detection bound is what we measure.
		b.Comm.Timeout = 1 * time.Second
		in := make([]float64, 4)
		start := time.Now()
		b.Comm.PostRecv(1, 7, in)
		err = b.Comm.Wait()
		if err == nil {
			results <- fmt.Errorf("wait on dead peer returned nil")
			return
		}
		if !strings.Contains(err.Error(), "rank 1") {
			results <- fmt.Errorf("error does not name the culprit: %v", err)
			return
		}
		if el := time.Since(start); el > 8*time.Second {
			results <- fmt.Errorf("dead peer took %v to surface", el)
			return
		}
		results <- nil
	}()
	go func() { // rank 1: completes rendezvous then drops dead
		defer wg.Done()
		b, err := Connect(Config{Rank: 1, N: 2, Addr0: <-addrCh, Timeout: 10 * time.Second}, nil)
		if err != nil {
			return
		}
		b.ConnectPeers([]int{0})
		b.Comm.Close() // abrupt death: all conns closed, nothing sent
	}()
	wg.Wait()
	if err := <-results; err != nil {
		t.Fatal(err)
	}
}

// Protocol desync (wrong tag) is detected, not silently mismatched.
func TestTagMismatchDetected(t *testing.T) {
	owner := []int32{0, 1}
	runWorld(t, 2, owner, nil, func(b *Bootstrap) error {
		c := b.Comm
		if c.Rank == 0 {
			c.PostSend(1, 111, []float64{1})
		} else {
			c.PostRecv(0, 222, make([]float64, 1))
		}
		err := c.Wait()
		if c.Rank == 1 {
			if err == nil {
				return fmt.Errorf("tag mismatch accepted")
			}
			if !strings.Contains(err.Error(), "desync") {
				return fmt.Errorf("unexpected error: %v", err)
			}
		}
		return nil
	})
}

func TestTelemetryCounters(t *testing.T) {
	owner := []int32{0, 1}
	runWorld(t, 2, owner, nil, func(b *Bootstrap) error {
		c := b.Comm
		reg := telemetry.NewRegistry()
		c.EnableTelemetry(reg)
		peer := 1 - c.Rank
		c.PostSend(peer, 5, []float64{1, 2, 3})
		c.PostRecv(peer, 5, make([]float64, 3))
		if err := c.Wait(); err != nil {
			return err
		}
		wantBytes := int64(headerSize + 24)
		if got := c.BytesSent.Value(); got != wantBytes {
			return fmt.Errorf("bytes sent %d, want %d", got, wantBytes)
		}
		if got := c.BytesRecv.Value(); got != wantBytes {
			return fmt.Errorf("bytes recv %d, want %d", got, wantBytes)
		}
		if c.WaitTimer.Count() != 1 {
			return fmt.Errorf("wait timer count %d, want 1", c.WaitTimer.Count())
		}
		return nil
	})
}
