package dist

import (
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// DefaultTimeout bounds every blocking network operation (connect, frame
// read, frame write) when the caller does not set one. A rank that dies
// mid-step therefore surfaces at its peers as a deadline error naming the
// dead link within this bound — never a hang.
const DefaultTimeout = 30 * time.Second

// Comm is one rank's view of the process group: persistent TCP links to its
// neighbors (and to rank 0 for collectives), each driven by a dedicated
// writer and reader goroutine so posted operations progress while the rank
// computes.
//
// The completion semantics mirror MPI's nonblocking pairs: PostSend and
// PostRecv enqueue and return immediately; Wait blocks until every
// outstanding operation on every link has completed (or failed). Matching
// is in-order per link — the k-th posted receive on a link consumes the
// k-th arriving data frame — with the frame tag checked against the posted
// tag as a protocol-consistency assertion. That is sufficient here because
// both endpoints of a link execute the same deterministic program order
// (the solver's exchange schedule), exactly like the channel-based mpisim
// world.
//
// Only one goroutine (the rank's driver) may call Post*/Wait/collectives;
// the writer/reader goroutines are internal.
type Comm struct {
	Rank int
	N    int

	// Timeout bounds each network operation. Set by Connect.
	Timeout time.Duration

	links []*link // indexed by peer rank; nil where no link exists

	wg sync.WaitGroup // outstanding posted operations

	errMu    sync.Mutex
	firstErr error

	collSeq uint32 // collective sequence number, advances identically on all ranks

	// Per-peer one-element scratch for scalar collectives, allocated once.
	scalarIn  [][]float64
	scalarOut [][]float64

	// Telemetry (nil-safe): byte counters cover every frame on every link,
	// the wait timer every Wait call (its histogram is the wait-time
	// distribution the ISSUE asks for).
	BytesSent *telemetry.Counter
	BytesRecv *telemetry.Counter
	WaitTimer *telemetry.Timer
}

// link is one persistent connection to a peer with its IO goroutines' work
// queues. Buffers wbuf/rbuf are owned by the writer/reader goroutine
// respectively and reused across frames.
type link struct {
	peer  int
	conn  net.Conn
	sendQ chan sendReq
	recvQ chan recvReq
	wbuf  []byte
	rbuf  []byte
}

type sendReq struct {
	tag  uint32
	data []float64 // must stay untouched until the next Wait returns
}

type recvReq struct {
	tag uint32
	buf []float64 // filled by the reader; exact expected length
}

// queueDepth sizes the per-link work queues. Four in-flight operations per
// link per RK substep (post send + post recv on each of H and U would be 2;
// collectives add a couple) never approach this, so Post* never blocks in
// practice.
const queueDepth = 16

// EnableTelemetry attaches per-rank instruments to reg:
// dist_rank<k>_bytes_sent_total / _bytes_recv_total counters and the
// dist_rank<k>_wait_seconds timer (count, exact total, log-scale
// histogram). Safe to call before links are started.
func (c *Comm) EnableTelemetry(reg *telemetry.Registry) {
	r := strconv.Itoa(c.Rank)
	c.BytesSent = reg.Counter("dist_rank" + r + "_bytes_sent_total")
	c.BytesRecv = reg.Counter("dist_rank" + r + "_bytes_recv_total")
	c.WaitTimer = reg.Timer("dist_rank" + r + "_wait_seconds")
}

func newComm(rank, n int, timeout time.Duration) *Comm {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c := &Comm{Rank: rank, N: n, Timeout: timeout, links: make([]*link, n)}
	c.scalarIn = make([][]float64, n)
	c.scalarOut = make([][]float64, n)
	for i := 0; i < n; i++ {
		c.scalarIn[i] = make([]float64, 1)
		c.scalarOut[i] = make([]float64, 1)
	}
	return c
}

// addLink registers conn as the persistent link to peer. TCP_NODELAY is set
// so small halo frames leave immediately instead of waiting for Nagle
// coalescing.
func (c *Comm) addLink(peer int, conn net.Conn) error {
	if peer < 0 || peer >= c.N || peer == c.Rank {
		return fmt.Errorf("dist: rank %d: invalid peer %d", c.Rank, peer)
	}
	if c.links[peer] != nil {
		return fmt.Errorf("dist: rank %d: duplicate link to peer %d", c.Rank, peer)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c.links[peer] = &link{
		peer:  peer,
		conn:  conn,
		sendQ: make(chan sendReq, queueDepth),
		recvQ: make(chan recvReq, queueDepth),
	}
	return nil
}

// start launches the writer/reader goroutines of every registered link.
// After start, the connections belong exclusively to those goroutines.
func (c *Comm) start() {
	for _, l := range c.links {
		if l != nil {
			go c.writer(l)
			go c.reader(l)
		}
	}
}

// Close tears the links down. Outstanding operations fail fast; a peer
// blocked on this rank gets a connection error rather than a timeout.
func (c *Comm) Close() {
	for _, l := range c.links {
		if l != nil {
			close(l.sendQ)
			close(l.recvQ)
			l.conn.Close()
		}
	}
}

// fail records the first error. Subsequent operations complete immediately
// without touching the network, so a dead peer costs one timeout, not one
// per posted operation.
func (c *Comm) fail(peer int, err error) {
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = fmt.Errorf("dist: rank %d: link to rank %d: %w", c.Rank, peer, err)
	}
	c.errMu.Unlock()
}

// Err returns the sticky first link error, if any.
func (c *Comm) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

func (c *Comm) writer(l *link) {
	for req := range l.sendQ {
		if c.Err() != nil {
			c.wg.Done()
			continue
		}
		n := 8 * len(req.data)
		if cap(l.wbuf) < headerSize+n {
			l.wbuf = make([]byte, headerSize+n)
		}
		l.wbuf = l.wbuf[:headerSize+n]
		putHeader(l.wbuf, header{Type: frameData, Sender: uint32(c.Rank), Tag: req.tag, Length: uint32(n)})
		putFloats(l.wbuf[headerSize:], req.data)
		l.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
		if _, err := l.conn.Write(l.wbuf); err != nil {
			c.fail(l.peer, err)
		} else {
			c.BytesSent.Add(int64(headerSize + n))
		}
		c.wg.Done()
	}
}

func (c *Comm) reader(l *link) {
	var hdr [headerSize]byte
	for req := range l.recvQ {
		if c.Err() != nil {
			c.wg.Done()
			continue
		}
		l.conn.SetReadDeadline(time.Now().Add(c.Timeout))
		h, err := readHeader(l.conn, hdr[:])
		switch {
		case err != nil:
			c.fail(l.peer, err)
		case h.Type != frameData:
			c.fail(l.peer, fmt.Errorf("unexpected frame type %d", h.Type))
		case int(h.Sender) != l.peer:
			c.fail(l.peer, fmt.Errorf("frame sender %d on link to %d", h.Sender, l.peer))
		case h.Tag != req.tag:
			c.fail(l.peer, fmt.Errorf("frame tag %#x, expected %#x (protocol desync)", h.Tag, req.tag))
		case int(h.Length) != 8*len(req.buf):
			c.fail(l.peer, fmt.Errorf("frame length %d, expected %d", h.Length, 8*len(req.buf)))
		default:
			if cap(l.rbuf) < int(h.Length) {
				l.rbuf = make([]byte, h.Length)
			}
			l.rbuf = l.rbuf[:h.Length]
			if _, err := io.ReadFull(l.conn, l.rbuf); err != nil {
				c.fail(l.peer, fmt.Errorf("truncated payload: %w", err))
			} else {
				getFloats(req.buf, l.rbuf)
				c.BytesRecv.Add(int64(headerSize + int(h.Length)))
			}
		}
		c.wg.Done()
	}
}

// PostSend enqueues data for transmission to peer and returns immediately.
// The slice must not be modified until the next Wait returns. Errors
// (including a missing link) surface at Wait.
func (c *Comm) PostSend(peer int, tag uint32, data []float64) {
	l := c.linkTo(peer)
	if l == nil {
		return
	}
	c.wg.Add(1)
	l.sendQ <- sendReq{tag: tag, data: data}
}

// PostRecv registers buf to receive the next data frame from peer and
// returns immediately. The frame's length must equal len(buf) exactly; the
// reader goroutine fills buf in place, so it must not be read until the
// next Wait returns.
func (c *Comm) PostRecv(peer int, tag uint32, buf []float64) {
	l := c.linkTo(peer)
	if l == nil {
		return
	}
	c.wg.Add(1)
	l.recvQ <- recvReq{tag: tag, buf: buf}
}

func (c *Comm) linkTo(peer int) *link {
	if peer < 0 || peer >= c.N || c.links[peer] == nil {
		c.fail(peer, fmt.Errorf("no link"))
		return nil
	}
	return c.links[peer]
}

// Wait blocks until every posted operation has completed, then reports the
// first link error (sticky). Because every network operation carries a
// deadline, Wait returns within O(Timeout) even when a peer is dead.
func (c *Comm) Wait() error {
	ctx := c.WaitTimer.Start()
	c.wg.Wait()
	ctx.Stop()
	return c.Err()
}

// collTag returns the next tag in the collective tag space. Collective call
// sequences are identical on every rank (same program), so both endpoints
// of every link agree on the tag.
func (c *Comm) collTag() uint32 {
	c.collSeq++
	return 0x8000_0000 | c.collSeq
}

// allreduce runs a rank-0-rooted reduce-then-broadcast of one scalar.
func (c *Comm) allreduce(x float64, combine func(a, b float64) float64) (float64, error) {
	if c.N == 1 {
		return x, nil
	}
	tagUp, tagDown := c.collTag(), c.collTag()
	if c.Rank == 0 {
		for r := 1; r < c.N; r++ {
			c.PostRecv(r, tagUp, c.scalarIn[r])
		}
		if err := c.Wait(); err != nil {
			return 0, err
		}
		acc := x
		for r := 1; r < c.N; r++ {
			acc = combine(acc, c.scalarIn[r][0])
		}
		for r := 1; r < c.N; r++ {
			c.scalarOut[r][0] = acc
			c.PostSend(r, tagDown, c.scalarOut[r])
		}
		return acc, c.Wait()
	}
	c.scalarOut[0][0] = x
	c.PostSend(0, tagUp, c.scalarOut[0])
	c.PostRecv(0, tagDown, c.scalarIn[0])
	if err := c.Wait(); err != nil {
		return 0, err
	}
	return c.scalarIn[0][0], nil
}

// AllreduceSum returns the sum of x over all ranks, combined in rank order
// on rank 0 — the same deterministic reduction order as mpisim, so global
// invariants are bitwise-reproducible run to run.
func (c *Comm) AllreduceSum(x float64) (float64, error) {
	return c.allreduce(x, func(a, b float64) float64 { return a + b })
}

// AllreduceMax returns the maximum of x over all ranks.
func (c *Comm) AllreduceMax(x float64) (float64, error) {
	return c.allreduce(x, func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	})
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	_, err := c.AllreduceSum(0)
	return err
}

// p2pTag is the constant tag of the blocking Send/Recv pair. A fresh
// collTag here would desynchronize the collective sequence (a gather makes
// rank 0 receive N-1 times while each sender sends once); the in-order
// matching per link already pairs the operations, so a constant tag is the
// correct consistency check.
const p2pTag = 0x4000_0000

// Send transmits data to peer and waits for local completion. There must be
// no other outstanding operations (Wait drains them all).
func (c *Comm) Send(peer int, data []float64) error {
	c.PostSend(peer, p2pTag, data)
	return c.Wait()
}

// Recv fills buf with the next frame from peer (which must have been sent
// with the matching Send in the same program position).
func (c *Comm) Recv(peer int, buf []float64) error {
	c.PostRecv(peer, p2pTag, buf)
	return c.Wait()
}
