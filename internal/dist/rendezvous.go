package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"time"
)

// AnnouncePrefix starts the line rank 0 prints once its listener is bound;
// the launcher (and scripts/ci.sh) parse the address after it. Keeping the
// format in one place keeps the parser honest.
const AnnouncePrefix = "swrank rank 0 listening on "

// Config parameterizes Connect.
type Config struct {
	Rank int
	N    int
	// Addr0 is rank 0's listen address (host:port, port 0 for ephemeral)
	// on rank 0, and the address to dial on every other rank.
	Addr0 string
	// ListenAddr is where non-zero ranks bind their peer listener
	// (default "127.0.0.1:0").
	ListenAddr string
	// Timeout bounds every rendezvous step and every subsequent network
	// operation (default DefaultTimeout).
	Timeout time.Duration
	// Announce, when non-nil on rank 0, receives the AnnouncePrefix line.
	Announce io.Writer
}

// Bootstrap is the connected state Connect returns: the comm (rank-0 links
// established, goroutines NOT yet started), the owner map distributed by
// rank 0, and the roster of peer listener addresses for ConnectPeers.
type Bootstrap struct {
	Comm   *Comm
	Owner  []int32
	addrs  []string
	ln     net.Listener // non-zero ranks: peer listener, closed by ConnectPeers
	linked bool
}

// Connect performs the rendezvous phase. Rank 0 listens on cfg.Addr0,
// announces the bound address, accepts a hello from every other rank and
// replies with the roster (every rank's peer-listener address) plus the
// partition owner map; other ranks dial rank 0 with retry and backoff.
// owner must be the global cell->rank map on rank 0 and nil elsewhere.
func Connect(cfg Config, owner []int32) (*Bootstrap, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.N < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.N {
		return nil, fmt.Errorf("dist: invalid rank %d of %d", cfg.Rank, cfg.N)
	}
	if cfg.Rank == 0 {
		return connectRoot(cfg, owner)
	}
	if owner != nil {
		return nil, fmt.Errorf("dist: rank %d: owner map is rank 0's to provide", cfg.Rank)
	}
	return connectLeaf(cfg)
}

func connectRoot(cfg Config, owner []int32) (*Bootstrap, error) {
	if owner == nil {
		return nil, fmt.Errorf("dist: rank 0 must provide the owner map")
	}
	ln, err := net.Listen("tcp", cfg.Addr0)
	if err != nil {
		return nil, fmt.Errorf("dist: rank 0 listen %s: %w", cfg.Addr0, err)
	}
	defer ln.Close()
	if cfg.Announce != nil {
		fmt.Fprintf(cfg.Announce, "%s%s\n", AnnouncePrefix, ln.Addr())
	}
	c := newComm(0, cfg.N, cfg.Timeout)
	b := &Bootstrap{Comm: c, Owner: owner, addrs: make([]string, cfg.N)}
	b.addrs[0] = ln.Addr().String()
	deadline := time.Now().Add(cfg.Timeout)
	var scratch []byte
	for got := 1; got < cfg.N; got++ {
		if d, ok := ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: rank 0 rendezvous: %d of %d ranks checked in: %w", got-1, cfg.N-1, err)
		}
		conn.SetReadDeadline(deadline)
		var h header
		var payload []byte
		h, payload, _, err = readFrame(conn, scratch)
		scratch = payload
		if err != nil || h.Type != frameHello {
			conn.Close()
			return nil, fmt.Errorf("dist: rank 0 rendezvous: bad hello: %v (type %d)", err, h.Type)
		}
		rank, addr, err := parseHello(payload)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if int(h.Sender) != rank {
			conn.Close()
			return nil, fmt.Errorf("dist: hello rank %d in frame from sender %d", rank, h.Sender)
		}
		if err := c.addLink(rank, conn); err != nil {
			conn.Close()
			return nil, err
		}
		b.addrs[rank] = addr
	}
	roster := encodeRoster(b.addrs, owner)
	for r := 1; r < cfg.N; r++ {
		l := c.links[r]
		l.conn.SetWriteDeadline(deadline)
		var n int
		l.wbuf, n, err = writeFrame(l.conn, header{Type: frameRoster, Sender: 0}, roster, l.wbuf)
		if err != nil {
			return nil, fmt.Errorf("dist: rank 0 roster to rank %d: %w", r, err)
		}
		c.BytesSent.Add(int64(n))
	}
	return b, nil
}

func connectLeaf(cfg Config) (*Bootstrap, error) {
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d peer listener: %w", cfg.Rank, err)
	}
	deadline := time.Now().Add(cfg.Timeout)
	conn, err := dialRetry(cfg.Addr0, deadline)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("dist: rank %d dial rank 0 at %s: %w", cfg.Rank, cfg.Addr0, err)
	}
	c := newComm(cfg.Rank, cfg.N, cfg.Timeout)
	hello := encodeHello(cfg.Rank, ln.Addr().String())
	conn.SetWriteDeadline(deadline)
	if _, _, err := writeFrame(conn, header{Type: frameHello, Sender: uint32(cfg.Rank)}, hello, nil); err != nil {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("dist: rank %d hello: %w", cfg.Rank, err)
	}
	conn.SetReadDeadline(deadline)
	h, payload, _, err := readFrame(conn, nil)
	if err != nil || h.Type != frameRoster {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("dist: rank %d roster: %v (type %d)", cfg.Rank, err, h.Type)
	}
	addrs, owner, err := parseRoster(payload, cfg.N)
	if err != nil {
		conn.Close()
		ln.Close()
		return nil, err
	}
	if err := c.addLink(0, conn); err != nil {
		conn.Close()
		ln.Close()
		return nil, err
	}
	return &Bootstrap{Comm: c, Owner: owner, addrs: addrs, ln: ln}, nil
}

// ConnectPeers establishes the remaining neighbor links (peers is this
// rank's halo-neighbor set, e.g. halo.ExchangeSpec.Peers — symmetric by
// construction) and starts every link's IO goroutines. Direction is
// deterministic: the higher rank dials the lower rank's listener. After
// ConnectPeers the Bootstrap's comm is fully operational.
func (b *Bootstrap) ConnectPeers(peers []int) error {
	if b.linked {
		return fmt.Errorf("dist: ConnectPeers called twice")
	}
	b.linked = true
	c := b.Comm
	deadline := time.Now().Add(c.Timeout)
	var expect []int // peers that will dial us
	for _, p := range peers {
		if p == c.Rank || p == 0 || c.links[p] != nil {
			continue // rank-0 links exist from rendezvous
		}
		if p < c.Rank {
			conn, err := dialRetry(b.addrs[p], deadline)
			if err != nil {
				b.close()
				return fmt.Errorf("dist: rank %d dial peer %d at %s: %w", c.Rank, p, b.addrs[p], err)
			}
			conn.SetWriteDeadline(deadline)
			if _, _, err := writeFrame(conn, header{Type: frameHello, Sender: uint32(c.Rank)},
				encodeHello(c.Rank, ""), nil); err != nil {
				conn.Close()
				b.close()
				return fmt.Errorf("dist: rank %d hello to peer %d: %w", c.Rank, p, err)
			}
			if err := c.addLink(p, conn); err != nil {
				conn.Close()
				b.close()
				return err
			}
		} else {
			expect = append(expect, p)
		}
	}
	sort.Ints(expect)
	var scratch []byte
	for range expect {
		if d, ok := b.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		conn, err := b.ln.Accept()
		if err != nil {
			b.close()
			return fmt.Errorf("dist: rank %d accepting peer links (want %v): %w", c.Rank, expect, err)
		}
		conn.SetReadDeadline(deadline)
		h, payload, _, err := readFrame(conn, scratch)
		scratch = payload
		if err != nil || h.Type != frameHello {
			conn.Close()
			b.close()
			return fmt.Errorf("dist: rank %d bad peer hello: %v", c.Rank, err)
		}
		rank, _, err := parseHello(payload)
		if err != nil || rank != int(h.Sender) || !contains(expect, rank) {
			conn.Close()
			b.close()
			return fmt.Errorf("dist: rank %d unexpected peer hello from rank %d (want one of %v)", c.Rank, rank, expect)
		}
		if err := c.addLink(rank, conn); err != nil {
			conn.Close()
			b.close()
			return err
		}
	}
	if b.ln != nil {
		b.ln.Close()
		b.ln = nil
	}
	c.start()
	return nil
}

func (b *Bootstrap) close() {
	if b.ln != nil {
		b.ln.Close()
		b.ln = nil
	}
	for _, l := range b.Comm.links {
		if l != nil {
			l.conn.Close()
		}
	}
}

// dialRetry dials addr with exponential backoff until the deadline — the
// rendezvous window during which the target process may not have bound its
// listener yet.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 5 * time.Millisecond
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("deadline exceeded")
			}
			return nil, lastErr
		}
		d := remain
		if d > time.Second {
			d = time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, d)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Hello payload: u32 rank, u16 addr length, addr bytes.
func encodeHello(rank int, addr string) []byte {
	b := make([]byte, 6+len(addr))
	binary.LittleEndian.PutUint32(b[0:], uint32(rank))
	binary.LittleEndian.PutUint16(b[4:], uint16(len(addr)))
	copy(b[6:], addr)
	return b
}

func parseHello(b []byte) (int, string, error) {
	if len(b) < 6 {
		return 0, "", fmt.Errorf("dist: short hello payload (%d bytes)", len(b))
	}
	rank := int(binary.LittleEndian.Uint32(b[0:]))
	n := int(binary.LittleEndian.Uint16(b[4:]))
	if len(b) != 6+n {
		return 0, "", fmt.Errorf("dist: hello payload length %d, want %d", len(b), 6+n)
	}
	return rank, string(b[6 : 6+n]), nil
}

// Roster payload: u32 nranks, per rank (u16 len + addr), u32 ncells,
// ncells little-endian int32 owners.
func encodeRoster(addrs []string, owner []int32) []byte {
	n := 4
	for _, a := range addrs {
		n += 2 + len(a)
	}
	n += 4 + 4*len(owner)
	b := make([]byte, 0, n)
	var u4 [4]byte
	var u2 [2]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(len(addrs)))
	b = append(b, u4[:]...)
	for _, a := range addrs {
		binary.LittleEndian.PutUint16(u2[:], uint16(len(a)))
		b = append(b, u2[:]...)
		b = append(b, a...)
	}
	binary.LittleEndian.PutUint32(u4[:], uint32(len(owner)))
	b = append(b, u4[:]...)
	for _, o := range owner {
		binary.LittleEndian.PutUint32(u4[:], uint32(o))
		b = append(b, u4[:]...)
	}
	return b
}

func parseRoster(b []byte, wantRanks int) ([]string, []int32, error) {
	bad := func(what string) ([]string, []int32, error) {
		return nil, nil, fmt.Errorf("dist: malformed roster: %s", what)
	}
	if len(b) < 4 {
		return bad("short")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n != wantRanks {
		return bad(fmt.Sprintf("%d ranks, want %d", n, wantRanks))
	}
	b = b[4:]
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return bad("truncated addr table")
		}
		al := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < al {
			return bad("truncated addr")
		}
		addrs[i] = string(b[:al])
		b = b[al:]
	}
	if len(b) < 4 {
		return bad("missing owner map")
	}
	nc := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != 4*nc {
		return bad(fmt.Sprintf("owner map %d bytes, want %d", len(b), 4*nc))
	}
	owner := make([]int32, nc)
	for i := range owner {
		owner[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return addrs, owner, nil
}
