package dist

import (
	"fmt"

	"repro/internal/halo"
	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sw"
)

// HaloLayers is the halo depth of distributed runs — three layers cover the
// dependency radius of one RK substage (see mpisim.HaloLayers for the
// derivation; the two substrates must agree so a trajectory is substrate-
// independent).
const HaloLayers = 3

// DefaultMesh builds the canonical global mesh for distributed runs at the
// given icosahedral level. EVERY process of a run — and any serial process
// whose trajectory is compared against the run — must construct its mesh
// through this function: the ranks rebuild the global mesh independently
// rather than shipping it, which is only sound because construction is
// deterministic for fixed options.
func DefaultMesh(level int) (*mesh.Mesh, error) {
	return mesh.Build(level, mesh.Options{LloydIterations: 2})
}

// RankSolver is one process-rank of a distributed shallow-water run: the
// TCP counterpart of mpisim.RankSolver. Overlap mode steps through the
// comm/compute-overlapped compiled plan (sw.NewOverlapPlanRunner); blocking
// mode steps through the plain compiled plan with the exchange in the
// PostSubstep hook slot. Both modes use the same Exchanger, links and
// frames, so their difference is scheduling alone.
type RankSolver struct {
	Comm  *Comm
	Local *partition.Local
	Ex    *Exchanger
	S     *sw.Solver

	globalCells int
	globalEdges int
	// Rank 0 keeps every rank's owned-entity counts to size gather
	// receives; nil elsewhere.
	ownedCells []int
	ownedEdges []int

	err error // first exchange error observed inside a step
}

// RankOptions selects how a rank schedules its local step.
type RankOptions struct {
	// Overlap steps through the comm/compute-overlapped compiled plan; off
	// means the blocking plan with the exchange in the PostSubstep slot.
	Overlap bool
	// TaskPlan lowers whichever schedule Overlap selected into the
	// dependency-counted task graph (sw.NewTaskPlanRunner /
	// sw.NewOverlapTaskPlanRunner): same ops, same ranges, no level
	// barriers. With Overlap, a stage's halo Wait gates only that stage's
	// boundary-slice tasks, so interior work keeps flowing while frames are
	// in flight. Trajectories are bitwise-unchanged either way.
	TaskPlan bool
}

// NewRankSolver completes the bootstrap into a running rank: partition from
// the distributed owner map, extraction of the rank-local mesh (halo-depth
// ordered), halo spec construction, neighbor link establishment, and solver
// wiring. pool supplies the rank-local worker team (nil = serial).
//
// Every rank calls partition.FromOwner on the SAME owner map and extracts
// every part, so local numberings agree across processes without any
// further communication.
func NewRankSolver(b *Bootstrap, g *mesh.Mesh, cfg sw.Config, setup func(*sw.Solver), pool *par.Pool, overlap bool) (*RankSolver, error) {
	return NewRankSolverOpts(b, g, cfg, setup, pool, RankOptions{Overlap: overlap})
}

// NewRankSolverOpts is NewRankSolver with the full scheduling options.
func NewRankSolverOpts(b *Bootstrap, g *mesh.Mesh, cfg sw.Config, setup func(*sw.Solver), pool *par.Pool, opts RankOptions) (*RankSolver, error) {
	c := b.Comm
	if len(b.Owner) != g.NCells {
		return nil, fmt.Errorf("dist: owner map covers %d cells, mesh has %d", len(b.Owner), g.NCells)
	}
	part, err := partition.FromOwner(b.Owner, c.N)
	if err != nil {
		return nil, err
	}
	locals := make([]*partition.Local, c.N)
	for r := 0; r < c.N; r++ {
		locals[r] = partition.Extract(g, part, r, HaloLayers)
	}
	specs := halo.BuildSpecs(g, locals)
	if err := halo.Validate(specs); err != nil {
		return nil, err
	}
	spec := specs[c.Rank]
	if err := b.ConnectPeers(spec.Peers); err != nil {
		return nil, err
	}

	l := locals[c.Rank]
	s, err := sw.NewSolver(l.M, cfg)
	if err != nil {
		return nil, err
	}
	rs := &RankSolver{Comm: c, Local: l, Ex: NewExchanger(c, spec), S: s,
		globalCells: g.NCells, globalEdges: g.NEdges}
	if c.Rank == 0 {
		rs.ownedCells = make([]int, c.N)
		rs.ownedEdges = make([]int, c.N)
		for r, lr := range locals {
			rs.ownedCells[r] = lr.NOwnedCells
			for _, o := range lr.EdgeOwner {
				if int(o) == r {
					rs.ownedEdges[r]++
				}
			}
		}
	}

	if opts.Overlap {
		ov := &sw.Overlap{
			Post: func(stage int, st *sw.State) { rs.Ex.Post(st.H, st.U) },
			Wait: func(stage int, st *sw.State) {
				if err := rs.Ex.Wait(st.H, st.U); err != nil && rs.err == nil {
					rs.err = err
				}
			},
			InteriorCells:    l.InteriorCells,
			InteriorEdges:    l.InteriorEdges,
			InteriorVertices: l.InteriorVertices,
		}
		newRunner := sw.NewOverlapPlanRunner
		if opts.TaskPlan {
			newRunner = sw.NewOverlapTaskPlanRunner
		}
		runner, err := newRunner(s, pool, ov)
		if err != nil {
			return nil, err
		}
		s.Runner = runner
	} else {
		newRunner := sw.NewPlanRunner
		if opts.TaskPlan {
			newRunner = sw.NewTaskPlanRunner
		}
		runner, err := newRunner(s, pool)
		if err != nil {
			return nil, err
		}
		s.Runner = runner
		s.PostSubstep = func(stage int, st *sw.State) {
			if err := rs.Ex.Exchange(st.H, st.U); err != nil && rs.err == nil {
				rs.err = err
			}
		}
	}

	setup(s)
	// Same bootstrap as mpisim: one exchange so a not-purely-analytic setup
	// still starts consistent, then refresh the diagnostics.
	if err := rs.Ex.Exchange(s.State.H, s.State.U); err != nil {
		return nil, err
	}
	s.Init()
	return rs, nil
}

// Step advances one RK-4 step (4 halo exchanges) and reports any exchange
// error raised inside it.
func (r *RankSolver) Step() error {
	r.S.Step()
	return r.Err()
}

// Run advances n steps, stopping at the first exchange error.
func (r *RankSolver) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Err reports the sticky first exchange error.
func (r *RankSolver) Err() error {
	if r.err != nil {
		return r.err
	}
	return r.Comm.Err()
}

// GlobalMass is the distributed mass invariant: sum over owned cells of
// area*h, allreduced in rank order.
func (r *RankSolver) GlobalMass() (float64, error) {
	local := 0.0
	for lc := 0; lc < r.Local.NOwnedCells; lc++ {
		local += r.S.M.AreaCell[lc] * r.S.State.H[lc]
	}
	return r.Comm.AllreduceSum(local)
}

// GatherCellField reconstructs the global cell field from every rank's
// owned portion: rank 0 returns the full field, others nil. Protocol as in
// mpisim: [globalIdx, value] pairs, one frame per rank.
func (r *RankSolver) GatherCellField(local []float64) ([]float64, error) {
	if r.Comm.Rank != 0 {
		buf := make([]float64, 2*r.Local.NOwnedCells)
		for lc := 0; lc < r.Local.NOwnedCells; lc++ {
			buf[2*lc] = float64(r.Local.CellL2G[lc])
			buf[2*lc+1] = local[lc]
		}
		return nil, r.Comm.Send(0, buf)
	}
	out := make([]float64, r.globalCells)
	for lc := 0; lc < r.Local.NOwnedCells; lc++ {
		out[r.Local.CellL2G[lc]] = local[lc]
	}
	for from := 1; from < r.Comm.N; from++ {
		buf := make([]float64, 2*r.ownedCells[from])
		if err := r.Comm.Recv(from, buf); err != nil {
			return nil, err
		}
		for i := 0; i+1 < len(buf); i += 2 {
			out[int(buf[i])] = buf[i+1]
		}
	}
	return out, nil
}

// GatherEdgeField reconstructs the global edge field from the portions each
// rank owns (EdgeOwner), same protocol as GatherCellField.
func (r *RankSolver) GatherEdgeField(local []float64) ([]float64, error) {
	if r.Comm.Rank != 0 {
		var buf []float64
		for le, owner := range r.Local.EdgeOwner {
			if int(owner) == r.Comm.Rank {
				buf = append(buf, float64(r.Local.EdgeL2G[le]), local[le])
			}
		}
		return nil, r.Comm.Send(0, buf)
	}
	out := make([]float64, r.globalEdges)
	for le, owner := range r.Local.EdgeOwner {
		if owner == 0 {
			out[r.Local.EdgeL2G[le]] = local[le]
		}
	}
	for from := 1; from < r.Comm.N; from++ {
		buf := make([]float64, 2*r.ownedEdges[from])
		if err := r.Comm.Recv(from, buf); err != nil {
			return nil, err
		}
		for i := 0; i+1 < len(buf); i += 2 {
			out[int(buf[i])] = buf[i+1]
		}
	}
	return out, nil
}
