// Package icosa generates spherical triangulations by recursive subdivision
// of the regular icosahedron. The nodes of the level-n triangulation are the
// generator points of a quasi-uniform spherical centroidal Voronoi
// tessellation with 10*4^n + 2 cells — exactly the mesh family used by the
// MPAS shallow-water experiments (Table III of the paper: levels 6..9 give
// 40962, 163842, 655362 and 2621442 cells).
package icosa

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Triangulation is a triangulated closed surface on the unit sphere. Nodes
// become Voronoi generators (mesh cells); triangles become Voronoi corners
// (dual-mesh vertices).
type Triangulation struct {
	Nodes     []geom.Vec3 // unit vectors
	Triangles [][3]int32  // node indices, counterclockwise seen from outside
	Level     int
}

// NumCells returns the number of Voronoi cells a level-n subdivision
// produces: 10*4^n + 2.
func NumCells(level int) int {
	return 10*(1<<(2*uint(level))) + 2
}

// LevelForCells returns the subdivision level whose cell count is n, or an
// error if n is not of the form 10*4^level + 2.
func LevelForCells(n int) (int, error) {
	for level := 0; level <= 12; level++ {
		if NumCells(level) == n {
			return level, nil
		}
	}
	return 0, fmt.Errorf("icosa: %d is not 10*4^n+2 for any n<=12", n)
}

// Base returns the regular icosahedron: 12 nodes, 20 triangles.
func Base() *Triangulation {
	phi := (1 + math.Sqrt(5)) / 2
	raw := []geom.Vec3{
		geom.V(-1, phi, 0), geom.V(1, phi, 0), geom.V(-1, -phi, 0), geom.V(1, -phi, 0),
		geom.V(0, -1, phi), geom.V(0, 1, phi), geom.V(0, -1, -phi), geom.V(0, 1, -phi),
		geom.V(phi, 0, -1), geom.V(phi, 0, 1), geom.V(-phi, 0, -1), geom.V(-phi, 0, 1),
	}
	nodes := make([]geom.Vec3, len(raw))
	for i, v := range raw {
		nodes[i] = v.Normalize()
	}
	tris := [][3]int32{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	tr := &Triangulation{Nodes: nodes, Triangles: tris, Level: 0}
	tr.orientCCW()
	return tr
}

// Subdivide returns a new triangulation with each triangle split into four,
// midpoints projected onto the sphere.
func (t *Triangulation) Subdivide() *Triangulation {
	type edgeKey struct{ a, b int32 }
	mid := make(map[edgeKey]int32, len(t.Triangles)*3/2)
	nodes := make([]geom.Vec3, len(t.Nodes), len(t.Nodes)+len(t.Triangles)*3/2)
	copy(nodes, t.Nodes)

	midpoint := func(a, b int32) int32 {
		k := edgeKey{a, b}
		if a > b {
			k = edgeKey{b, a}
		}
		if idx, ok := mid[k]; ok {
			return idx
		}
		p := nodes[a].Add(nodes[b]).Normalize()
		idx := int32(len(nodes))
		nodes = append(nodes, p)
		mid[k] = idx
		return idx
	}

	tris := make([][3]int32, 0, len(t.Triangles)*4)
	for _, tri := range t.Triangles {
		a, b, c := tri[0], tri[1], tri[2]
		ab := midpoint(a, b)
		bc := midpoint(b, c)
		ca := midpoint(c, a)
		tris = append(tris,
			[3]int32{a, ab, ca},
			[3]int32{b, bc, ab},
			[3]int32{c, ca, bc},
			[3]int32{ab, bc, ca},
		)
	}
	nt := &Triangulation{Nodes: nodes, Triangles: tris, Level: t.Level + 1}
	nt.orientCCW()
	return nt
}

// Generate returns the level-n subdivision of the icosahedron.
func Generate(level int) *Triangulation {
	if level < 0 {
		level = 0
	}
	t := Base()
	for i := 0; i < level; i++ {
		t = t.Subdivide()
	}
	return t
}

// orientCCW flips any triangle whose winding is clockwise as seen from
// outside the sphere, so all triangles wind counterclockwise.
func (t *Triangulation) orientCCW() {
	for i, tri := range t.Triangles {
		a, b, c := t.Nodes[tri[0]], t.Nodes[tri[1]], t.Nodes[tri[2]]
		if !geom.CCW(a, b, c) {
			t.Triangles[i][1], t.Triangles[i][2] = tri[2], tri[1]
		}
	}
}

// Validate checks structural invariants: node/triangle counts for the level,
// the Euler characteristic of a sphere (V - E + F = 2), unit nodes, and CCW
// winding. It returns the first violation found.
func (t *Triangulation) Validate() error {
	if len(t.Nodes) != NumCells(t.Level) {
		return fmt.Errorf("icosa: level %d has %d nodes, want %d", t.Level, len(t.Nodes), NumCells(t.Level))
	}
	wantTris := 20 * (1 << (2 * uint(t.Level)))
	if len(t.Triangles) != wantTris {
		return fmt.Errorf("icosa: level %d has %d triangles, want %d", t.Level, len(t.Triangles), wantTris)
	}
	edges := make(map[[2]int32]int)
	for ti, tri := range t.Triangles {
		for k := 0; k < 3; k++ {
			a, b := tri[k], tri[(k+1)%3]
			if a == b {
				return fmt.Errorf("icosa: triangle %d repeats node %d", ti, a)
			}
			key := [2]int32{a, b}
			if a > b {
				key = [2]int32{b, a}
			}
			edges[key]++
		}
		va, vb, vc := t.Nodes[tri[0]], t.Nodes[tri[1]], t.Nodes[tri[2]]
		if !geom.CCW(va, vb, vc) {
			return fmt.Errorf("icosa: triangle %d not CCW", ti)
		}
	}
	for key, n := range edges {
		if n != 2 {
			return fmt.Errorf("icosa: edge %v used by %d triangles, want 2 (closed surface)", key, n)
		}
	}
	v, e, f := len(t.Nodes), len(edges), len(t.Triangles)
	if v-e+f != 2 {
		return fmt.Errorf("icosa: Euler characteristic %d != 2", v-e+f)
	}
	for i, p := range t.Nodes {
		if math.Abs(p.Norm()-1) > 1e-12 {
			return fmt.Errorf("icosa: node %d not on unit sphere (|p|=%v)", i, p.Norm())
		}
	}
	return nil
}
