package icosa

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestNumCells(t *testing.T) {
	want := map[int]int{0: 12, 1: 42, 2: 162, 3: 642, 4: 2562, 5: 10242, 6: 40962, 7: 163842, 8: 655362, 9: 2621442}
	for level, n := range want {
		if got := NumCells(level); got != n {
			t.Errorf("NumCells(%d) = %d, want %d", level, got, n)
		}
	}
}

func TestLevelForCells(t *testing.T) {
	for _, n := range []int{40962, 163842, 655362, 2621442} {
		level, err := LevelForCells(n)
		if err != nil {
			t.Fatalf("LevelForCells(%d): %v", n, err)
		}
		if NumCells(level) != n {
			t.Errorf("round trip failed for %d", n)
		}
	}
	if _, err := LevelForCells(1000); err == nil {
		t.Error("expected error for non-icosahedral count")
	}
}

func TestBaseIcosahedron(t *testing.T) {
	b := Base()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Nodes) != 12 || len(b.Triangles) != 20 {
		t.Fatalf("base: %d nodes %d triangles", len(b.Nodes), len(b.Triangles))
	}
	// All base edges should have the same arc length (regular polyhedron).
	ref := geom.ArcLength(b.Nodes[b.Triangles[0][0]], b.Nodes[b.Triangles[0][1]])
	for _, tri := range b.Triangles {
		for k := 0; k < 3; k++ {
			d := geom.ArcLength(b.Nodes[tri[k]], b.Nodes[tri[(k+1)%3]])
			if math.Abs(d-ref) > 1e-12 {
				t.Fatalf("irregular base edge: %v vs %v", d, ref)
			}
		}
	}
}

func TestSubdivisionLevels(t *testing.T) {
	for level := 0; level <= 4; level++ {
		tr := Generate(level)
		if err := tr.Validate(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
	}
}

func TestTriangleAreasCoverSphere(t *testing.T) {
	tr := Generate(3)
	sum := 0.0
	for _, tri := range tr.Triangles {
		sum += geom.SphericalTriangleArea(tr.Nodes[tri[0]], tr.Nodes[tri[1]], tr.Nodes[tri[2]])
	}
	if math.Abs(sum-geom.SphereArea)/geom.SphereArea > 1e-10 {
		t.Errorf("triangles cover %v, want %v", sum, geom.SphereArea)
	}
}

func TestNodeDegrees(t *testing.T) {
	// Exactly 12 nodes (the original icosahedron vertices) have degree 5;
	// all others have degree 6.
	tr := Generate(3)
	deg := make([]int, len(tr.Nodes))
	for _, tri := range tr.Triangles {
		for _, n := range tri {
			deg[n]++
		}
	}
	five, six := 0, 0
	for _, d := range deg {
		switch d {
		case 5:
			five++
		case 6:
			six++
		default:
			t.Fatalf("unexpected node degree %d", d)
		}
	}
	if five != 12 {
		t.Errorf("%d pentagonal nodes, want 12", five)
	}
	if six != len(tr.Nodes)-12 {
		t.Errorf("%d hexagonal nodes, want %d", six, len(tr.Nodes)-12)
	}
}

func TestQuasiUniformity(t *testing.T) {
	// Edge lengths should vary by no more than ~40% across the mesh
	// (icosahedral grids are quasi-uniform).
	tr := Generate(4)
	minD, maxD := math.Inf(1), 0.0
	for _, tri := range tr.Triangles {
		for k := 0; k < 3; k++ {
			d := geom.ArcLength(tr.Nodes[tri[k]], tr.Nodes[tri[(k+1)%3]])
			minD = math.Min(minD, d)
			maxD = math.Max(maxD, d)
		}
	}
	if maxD/minD > 1.5 {
		t.Errorf("edge length ratio %v too large", maxD/minD)
	}
}

func TestGenerateNegativeLevel(t *testing.T) {
	tr := Generate(-3)
	if tr.Level != 0 || len(tr.Nodes) != 12 {
		t.Error("negative level should yield the base icosahedron")
	}
}

func TestSubdivideSharedMidpoints(t *testing.T) {
	// Subdivision must not duplicate midpoints: node count must match the
	// closed-form formula, which only holds if shared edges share midpoints.
	tr := Base().Subdivide().Subdivide()
	if len(tr.Nodes) != NumCells(2) {
		t.Errorf("got %d nodes, want %d (midpoints duplicated?)", len(tr.Nodes), NumCells(2))
	}
}

func BenchmarkGenerateLevel5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(5)
	}
}
