package sw

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/pattern"
)

// This file extends the compiled plan with split interior/halo scheduling —
// the comm/compute overlap of a distributed rank. The blocking rank step
// (mpisim's PostSubstep hook) serializes exchange and compute:
//
//	tendency -> [exchange h,u] -> diagnostics
//
// The overlaid schedule instead posts the exchange and computes the interior
// of every halo-consuming diagnostic while the messages are in flight:
//
//	tendency -> Post -> diagnostics[interior] -> Wait+unpack -> diagnostics[boundary]
//
// Which elements are "interior" comes from the halo-distance ordering
// partition.Extract bakes into each rank's local mesh: entities are numbered
// by descending distance to the nearest exchanged entity (halo cell or
// non-owned edge), so the elements safe to compute while the halo is stale
// form a contiguous prefix of every index space.
//
// Safety is a taint argument. At Post time the exchanged fields (h, u — or
// h0, u0 at stage 3) are stale exactly at depth-0 entities: taint 0. An op
// whose tainted inputs carry taint t produces outputs correct at every
// entity of depth > t+1 for a stencil read (neighbors sit at most one hop
// closer to the halo) and > t for a pointwise (ShapeX) read; that bound is
// its threshold, and its interior slice is the depth prefix the Interior*
// callbacks report. An interior element at depth d > t >= 0 only ever reads
// entities at depth >= d-1 > t-1 >= 0 — never a depth-0 slot — so Wait may
// unpack into halo slots concurrently with interior compute without a race
// (interior ops write diagnostics, never the exchanged prognostic arrays).
// After the boundary slices run, every field is complete and identical to
// the blocking schedule's, so the taint map resets at each stage boundary
// and the overlap is bitwise-neutral.

// Overlap wires a compiled plan to a communication substrate. Post must
// initiate the halo exchange of st (nonblocking: pack and hand off); Wait
// must complete it (block for the messages and unpack into st's halo slots).
// The Interior* callbacks report, for a staleness threshold t, how many
// leading elements of each index space are safe to compute while the
// exchange is in flight (partition.Local's InteriorCells/Edges/Vertices).
type Overlap struct {
	Post func(stage int, st *State)
	Wait func(stage int, st *State)

	InteriorCells    func(t int) int
	InteriorEdges    func(t int) int
	InteriorVertices func(t int) int
}

// NewOverlapPlanRunner compiles the step plan for s and overlays every
// stage's hook slot with the Post / interior / Wait / boundary split. The
// solver must have no PostSubstep hook installed when stepping through the
// returned runner (Step falls back to the blocking kernel loop otherwise);
// the exchange rides on ov instead. Init and tracer paths still run the
// full-range kernel plans — callers must only invoke them when halos are
// consistent, exactly as with the blocking rank solver.
func NewOverlapPlanRunner(s *Solver, pool *par.Pool, ov *Overlap) (*PlanRunner, error) {
	if ov == nil || ov.Post == nil || ov.Wait == nil ||
		ov.InteriorCells == nil || ov.InteriorEdges == nil || ov.InteriorVertices == nil {
		return nil, fmt.Errorf("sw: overlap runner needs all Overlap callbacks")
	}
	r, err := NewPlanRunner(s, pool)
	if err != nil {
		return nil, err
	}
	op, err := r.overlayPlan(r.stepPlan, ov)
	if err != nil {
		return nil, err
	}
	if err := verifyOverlay(r.stepPlan, op); err != nil {
		return nil, err
	}
	r.stepPlan = op
	r.ov = ov
	return r, nil
}

// threshold returns the staleness threshold of sp given the current taint
// map: the maximum over its tainted reads of taint+1 (stencil) or taint+0
// (pointwise ShapeX), or -1 if it reads nothing tainted. Non-X shapes treat
// every read as a stencil read — conservative for the few pointwise operands
// they carry (e.g. G's vorticity), costing a slightly thinner interior.
func threshold(sp opSpec, taint map[string]int) int {
	t := -1
	inc := 1
	if sp.shape == pattern.ShapeX {
		inc = 0
	}
	for _, v := range sp.reads {
		if tv, ok := taint[v]; ok && tv+inc > t {
			t = tv + inc
		}
	}
	return t
}

// interiorCount maps an op's output index space to its interior prefix
// length at threshold t.
func (r *PlanRunner) interiorCount(ov *Overlap, sp opSpec, t int) (int, error) {
	var n int
	switch sp.out {
	case pattern.Mass:
		n = ov.InteriorCells(t)
	case pattern.Velocity:
		n = ov.InteriorEdges(t)
	case pattern.Vorticity:
		n = ov.InteriorVertices(t)
	default:
		return 0, fmt.Errorf("sw: overlay: op %s has no interior index space", sp.id)
	}
	if n < 0 || n > sp.n {
		return 0, fmt.Errorf("sw: overlay: op %s interior %d outside [0,%d]", sp.id, n, sp.n)
	}
	return n, nil
}

// offsetRanges statically partitions [lo,hi) across nw workers (chunk
// boundaries 8-aligned relative to lo, like alignedRanges).
func offsetRanges(lo, hi, nw int) [][2]int32 {
	rs := alignedRanges(hi-lo, nw)
	for w := range rs {
		rs[w][0] += int32(lo)
		rs[w][1] += int32(lo)
	}
	return rs
}

// overlayPlan rewrites a compiled (and verified) step plan: each stage's
// hook slot becomes a Post op, every subsequent op of the stage splits into
// an interior slice (before Wait, runs during the exchange) and a boundary
// slice (after Wait), and a Wait op lands between them. Ops before the hook
// (tendency + provisional updates) keep their full ranges and barriers —
// they read only the previous stage's completed fields. Interior and
// boundary slices get conservative all-barriers: splitting ranges breaks
// the identical-partition premise of the locality predicate that let the
// original schedule elide some of them.
func (r *PlanRunner) overlayPlan(p *plan, ov *Overlap) (*plan, error) {
	nw := r.pool.Workers()
	q := &plan{s: p.s, ov: ov, specs: p.specs}
	for i := 0; i < len(p.ops); i++ {
		op := p.ops[i]
		if !op.hook {
			// Pre-hook op of some stage: keep as compiled.
			q.ops = append(q.ops, op)
			q.order = append(q.order, p.order[i])
			continue
		}
		hookSpec := p.specs[p.order[i]]
		stage := op.stage
		// The exchanged fields go stale at depth-0 entities the moment the
		// exchange is posted.
		taint := map[string]int{}
		for _, v := range hookSpec.writes {
			taint[v] = 0
		}
		q.ops = append(q.ops, planOp{id: fmt.Sprintf("post@%d", stage), stage: stage, post: true})
		q.order = append(q.order, p.order[i])
		// Collect the rest of this stage (everything after the hook up to
		// the next stage boundary; one hook per stage).
		j := i + 1
		for j < len(p.ops) && p.ops[j].stage == stage && !p.ops[j].hook {
			j++
		}
		type split struct {
			pos int // position in p.ops
			ic  int // interior prefix length, -1 = unsplit
		}
		splits := make([]split, 0, j-i-1)
		for k := i + 1; k < j; k++ {
			sp := p.specs[p.order[k]]
			t := threshold(sp, taint)
			ic := -1
			if t >= 0 {
				var err error
				ic, err = r.interiorCount(ov, sp, t)
				if err != nil {
					return nil, err
				}
				for _, v := range sp.writes {
					taint[v] = t
				}
			}
			splits = append(splits, split{pos: k, ic: ic})
		}
		// Interior slices, in compiled order, every one a barrier.
		for _, sl := range splits {
			o := p.ops[sl.pos]
			sp := p.specs[p.order[sl.pos]]
			hi := sp.n
			if sl.ic >= 0 {
				hi = sl.ic
				o.id = sp.id + ":int"
			}
			o.ranges = offsetRanges(0, hi, nw)
			o.barrier = true
			q.ops = append(q.ops, o)
			q.order = append(q.order, p.order[sl.pos])
		}
		// Wait: worker 0 completes the exchange and unpacks; the barrier
		// after it releases the boundary slices.
		q.ops = append(q.ops, planOp{id: fmt.Sprintf("wait@%d", stage), stage: stage,
			wait: true, barrier: true})
		q.order = append(q.order, p.order[i])
		// Boundary slices, same compiled order.
		for _, sl := range splits {
			if sl.ic < 0 {
				continue
			}
			o := p.ops[sl.pos]
			sp := p.specs[p.order[sl.pos]]
			o.id = sp.id + ":bnd"
			o.ranges = offsetRanges(sl.ic, sp.n, nw)
			o.barrier = true
			q.ops = append(q.ops, o)
			q.order = append(q.order, p.order[sl.pos])
		}
		i = j - 1
	}
	// The region join provides the final synchronization.
	if n := len(q.ops); n > 0 {
		q.ops[n-1].barrier = false
	}
	q.barrierAfter = make([]bool, len(q.ops))
	for i, op := range q.ops {
		q.barrierAfter[i] = op.barrier
		if op.barrier && !op.wait {
			q.barriers++
		}
	}
	q.exec = q.run
	return q, nil
}

// verifyOverlay structurally checks an overlaid plan against the plan it was
// derived from: every original compute op must reappear exactly once
// (unsplit) or exactly twice (interior before the stage's wait, boundary
// after, slices tiling [0,n) with per-worker ranges tiling each slice);
// every stage must carry one post before its interior slices and one
// barriered wait before its boundary slices; and relative compute order must
// be preserved.
func verifyOverlay(orig, ov *plan) error {
	type span struct{ lo, hi int32 }
	covered := map[string][]span{} // original op id -> slices seen, in order
	var origIDs, ovIDs []string
	for _, op := range orig.ops {
		if !op.hook {
			origIDs = append(origIDs, op.id)
		}
	}
	posted := map[int]bool{}
	waited := map[int]bool{}
	for _, op := range ov.ops {
		switch {
		case op.post:
			if posted[op.stage] {
				return fmt.Errorf("sw: overlay: stage %d posts twice", op.stage)
			}
			posted[op.stage] = true
		case op.wait:
			if !posted[op.stage] {
				return fmt.Errorf("sw: overlay: stage %d waits before posting", op.stage)
			}
			if waited[op.stage] {
				return fmt.Errorf("sw: overlay: stage %d waits twice", op.stage)
			}
			waited[op.stage] = true
		case op.hook:
			return fmt.Errorf("sw: overlay kept hook op")
		default:
			base := op.id
			isInt := false
			if n := len(base); n > 4 && (base[n-4:] == ":int" || base[n-4:] == ":bnd") {
				isInt = base[n-4:] == ":int"
				base = base[:n-4]
			}
			if isInt && waited[op.stage] {
				return fmt.Errorf("sw: overlay: interior op %s after its stage's wait", op.id)
			}
			if len(op.id) != len(base) && !isInt && !waited[op.stage] {
				return fmt.Errorf("sw: overlay: boundary op %s before its stage's wait", op.id)
			}
			ovIDs = append(ovIDs, base)
			// Worker ranges must tile the slice contiguously.
			lo := op.ranges[0][0]
			hi := lo
			for _, rg := range op.ranges {
				if rg[0] != hi || rg[1] < rg[0] {
					return fmt.Errorf("sw: overlay: op %s worker ranges do not tile", op.id)
				}
				hi = rg[1]
			}
			covered[base] = append(covered[base], span{lo, hi})
		}
	}
	for st := 0; st < 4; st++ {
		if !posted[st] || !waited[st] {
			return fmt.Errorf("sw: overlay: stage %d missing post or wait", st)
		}
	}
	// Compute order preserved: a split op appears as :int ... (others) ...
	// :bnd, so compare the subsequence of FIRST occurrences.
	seen := map[string]bool{}
	var firsts []string
	for _, id := range ovIDs {
		if !seen[id] {
			seen[id] = true
			firsts = append(firsts, id)
		}
	}
	if len(firsts) != len(origIDs) {
		return fmt.Errorf("sw: overlay covers %d ops, original has %d", len(firsts), len(origIDs))
	}
	for i := range firsts {
		if firsts[i] != origIDs[i] {
			return fmt.Errorf("sw: overlay reorders op %s (expected %s)", firsts[i], origIDs[i])
		}
	}
	// Slices tile each op's full index space.
	for i, id := range origIDs {
		spans := covered[id]
		var hi int32
		for _, s := range spans {
			if s.lo != hi {
				return fmt.Errorf("sw: overlay: op %s slices leave a gap at %d", id, hi)
			}
			hi = s.hi
		}
		n := int32(0)
		for _, op := range orig.ops {
			if op.hook {
				continue
			}
			if origIDs[i] == op.id {
				n = op.ranges[len(op.ranges)-1][1]
				break
			}
		}
		if hi != n {
			return fmt.Errorf("sw: overlay: op %s slices cover [0,%d), index space is [0,%d)", id, hi, n)
		}
	}
	return nil
}
