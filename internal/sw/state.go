// Package sw implements the MPAS shallow-water model core: the TRiSK
// C-grid finite-volume discretization of the spherical shallow-water
// equations (paper Eq. 1) on an SCVT mesh, advanced with the RK-4 scheme of
// Algorithm 1, organized — exactly as the paper's §3 prescribes — as a
// sequence of named kernels, each composed of basic computation pattern
// instances (local X patterns plus the eight stencil patterns A–H).
//
// Every stencil kernel is written in the regularity-aware gather form
// (paper Algorithm 3/4), so each pattern parallelizes race-free over its
// output point set. A serial scatter-form reference (the original MPAS loop
// shapes, Algorithm 2) lives in scatter_ref.go and is used by tests to prove
// the refactored kernels compute the same fields.
package sw

import (
	"fmt"

	"repro/internal/mesh"
)

// State holds the prognostic variables: fluid thickness h at mass points
// (cells) and normal velocity u at velocity points (edges).
type State struct {
	H []float64 // thickness, one per cell [m]
	U []float64 // normal velocity, one per edge [m/s]
}

// NewState allocates a zero state for mesh m.
func NewState(m *mesh.Mesh) *State {
	return &State{H: make([]float64, m.NCells), U: make([]float64, m.NEdges)}
}

// CopyFrom copies src into s.
func (s *State) CopyFrom(src *State) {
	copy(s.H, src.H)
	copy(s.U, src.U)
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := &State{H: make([]float64, len(s.H)), U: make([]float64, len(s.U))}
	c.CopyFrom(s)
	return c
}

// Diagnostics holds every intermediate field of compute_solve_diagnostics
// (Table I of the paper).
type Diagnostics struct {
	HEdge         []float64 // thickness interpolated to edges (D1/D2)
	D2fdx2Cell    []float64 // second-derivative fit at cells (C1)
	Vorticity     []float64 // relative vorticity at vertices (E)
	Divergence    []float64 // divergence at cells (A2)
	KE            []float64 // kinetic energy at cells (A3)
	V             []float64 // tangential velocity at edges (F)
	HVertex       []float64 // thickness at vertices (part of G)
	PVVertex      []float64 // potential vorticity at vertices (G)
	PVCell        []float64 // potential vorticity at cells (C2)
	VorticityCell []float64 // relative vorticity at cells (H2)
	PVEdge        []float64 // potential vorticity at edges (H1 + B2 APVM)
}

// NewDiagnostics allocates diagnostics for mesh m.
func NewDiagnostics(m *mesh.Mesh) *Diagnostics {
	return &Diagnostics{
		HEdge:         make([]float64, m.NEdges),
		D2fdx2Cell:    make([]float64, m.NCells),
		Vorticity:     make([]float64, m.NVertices),
		Divergence:    make([]float64, m.NCells),
		KE:            make([]float64, m.NCells),
		V:             make([]float64, m.NEdges),
		HVertex:       make([]float64, m.NVertices),
		PVVertex:      make([]float64, m.NVertices),
		PVCell:        make([]float64, m.NCells),
		VorticityCell: make([]float64, m.NCells),
		PVEdge:        make([]float64, m.NEdges),
	}
}

// Tendencies holds the right-hand sides of the prognostic equations.
type Tendencies struct {
	H []float64 // cells
	U []float64 // edges
}

// NewTendencies allocates tendencies for mesh m.
func NewTendencies(m *mesh.Mesh) *Tendencies {
	return &Tendencies{H: make([]float64, m.NCells), U: make([]float64, m.NEdges)}
}

// Reconstructed holds the cell-centered velocity produced by
// mpas_reconstruct (patterns A4 + X6).
type Reconstructed struct {
	X, Y, Z    []float64 // Cartesian components at cells
	Zonal      []float64
	Meridional []float64
}

// NewReconstructed allocates reconstruction output for mesh m.
func NewReconstructed(m *mesh.Mesh) *Reconstructed {
	n := m.NCells
	return &Reconstructed{
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		Zonal: make([]float64, n), Meridional: make([]float64, n),
	}
}

// Config carries the physical and numerical constants of the model.
type Config struct {
	Gravity float64 // m/s^2
	Omega   float64 // planetary rotation rate, rad/s
	// APVM is the anticipated-potential-vorticity upwinding coefficient
	// (pattern B2); MPAS default 0.5. Zero disables the correction.
	APVM float64
	// HighOrderThickness enables the C1+D2 high-order edge thickness
	// interpolation; when false only D1 (midpoint average) runs.
	HighOrderThickness bool
	// RayleighFriction is the coefficient of the local damping applied by
	// pattern X1 in enforce_boundary_edge's slot; zero disables it.
	RayleighFriction float64
	// AdvectionOnly freezes the velocity field (tend_u forced to zero), so
	// the model advects thickness passively with the prescribed wind —
	// Williamson test case 1.
	AdvectionOnly bool
	// Viscosity is the del^2 horizontal momentum diffusion coefficient
	// (m^2/s), MPAS's config_visc: on the C-grid,
	// nu*Lap(u) = nu*(grad(divergence) - k x grad(vorticity)) evaluated at
	// edges. Zero disables it.
	Viscosity float64
	// Dt is the time step in seconds.
	Dt float64
}

// DefaultConfig returns Earth-standard constants with a time step chosen for
// mesh m by a conservative gravity-wave CFL bound.
func DefaultConfig(m *mesh.Mesh) Config {
	return Config{
		Gravity: 9.80616,
		Omega:   7.292e-5,
		APVM:    0.5,
		Dt:      StableDt(m),
	}
}

// StableDt returns a conservative RK-4 time step for mesh m: a Courant
// number of 0.4 against a 300 m/s combined gravity-wave + advection speed.
func StableDt(m *mesh.Mesh) float64 {
	s := m.ComputeStats()
	return 0.4 * s.MinDc / 300.0
}

// Validate reports obviously invalid configuration.
func (c Config) Validate() error {
	if c.Gravity <= 0 {
		return fmt.Errorf("sw: non-positive gravity %v", c.Gravity)
	}
	if c.Dt <= 0 {
		return fmt.Errorf("sw: non-positive time step %v", c.Dt)
	}
	if c.APVM < 0 || c.APVM > 1 {
		return fmt.Errorf("sw: APVM coefficient %v outside [0,1]", c.APVM)
	}
	return nil
}
