package sw

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Checkpointing: the prognostic state (h, u), the bottom topography and the
// clock are enough to resume a run exactly — diagnostics are recomputed by
// Init. Restart equivalence is bitwise and covered by tests.
//
// Checkpoints are ALWAYS in canonical mesh numbering: a solver running on a
// locality-renumbered mesh (s.Renumber non-nil) converts through the
// permutation maps on write and read, so the on-disk bytes are independent
// of the renumbering and a checkpoint moves freely between reordered and
// canonical runs (and between processes that disagree about reordering).

const (
	ckptMagic   = 0x53574350 // "SWCP"
	ckptVersion = 1
)

// WriteCheckpoint serializes the solver's prognostic state.
func (s *Solver) WriteCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	put := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	putF := func(v float64) error { return put(math.Float64bits(v)) }
	putArr := func(a []float64) error {
		if err := put(uint64(len(a))); err != nil {
			return err
		}
		for _, v := range a {
			if err := putF(v); err != nil {
				return err
			}
		}
		return nil
	}
	for _, step := range []func() error{
		func() error { return put(ckptMagic) },
		func() error { return put(ckptVersion) },
		func() error { return put(uint64(s.StepCount)) },
		func() error { return putF(s.Time) },
		func() error { return putArr(s.canonicalCell(s.State.H)) },
		func() error { return putArr(s.canonicalEdge(s.State.U)) },
		func() error { return putArr(s.canonicalCell(s.B)) },
	} {
		if err := step(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint restores a checkpoint written by WriteCheckpoint into the
// solver (whose mesh must match) and recomputes the diagnostics.
func (s *Solver) ReadCheckpoint(r io.Reader) error {
	br := bufio.NewReader(r)
	get := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	getArr := func(dst []float64, what string) error {
		n, err := get()
		if err != nil {
			return err
		}
		if int(n) != len(dst) {
			return fmt.Errorf("sw: checkpoint %s has %d entries, mesh needs %d", what, n, len(dst))
		}
		for i := range dst {
			v, err := get()
			if err != nil {
				return err
			}
			dst[i] = math.Float64frombits(v)
		}
		return nil
	}
	magic, err := get()
	if err != nil {
		return err
	}
	if magic != ckptMagic {
		return fmt.Errorf("sw: bad checkpoint magic %#x", magic)
	}
	ver, err := get()
	if err != nil {
		return err
	}
	if ver != ckptVersion {
		return fmt.Errorf("sw: unsupported checkpoint version %d", ver)
	}
	steps, err := get()
	if err != nil {
		return err
	}
	timeBits, err := get()
	if err != nil {
		return err
	}
	readArr := func(dst []float64, what string, fromCanon func(dst, src []float64)) error {
		if s.Renumber == nil {
			return getArr(dst, what)
		}
		tmp := make([]float64, len(dst))
		if err := getArr(tmp, what); err != nil {
			return err
		}
		fromCanon(dst, tmp)
		return nil
	}
	if err := readArr(s.State.H, "h", s.renumberCellFrom); err != nil {
		return err
	}
	if err := readArr(s.State.U, "u", s.renumberEdgeFrom); err != nil {
		return err
	}
	if err := readArr(s.B, "b", s.renumberCellFrom); err != nil {
		return err
	}
	s.StepCount = int(steps)
	s.Time = math.Float64frombits(timeBits)
	s.Init()
	return nil
}

// canonicalCell returns a cell field in canonical mesh order: a converted
// copy when the solver's mesh is renumbered, the slice itself otherwise.
func (s *Solver) canonicalCell(a []float64) []float64 {
	if s.Renumber == nil {
		return a
	}
	out := make([]float64, len(a))
	s.Renumber.CellToCanonical(out, a)
	return out
}

// canonicalEdge is canonicalCell for edge fields.
func (s *Solver) canonicalEdge(a []float64) []float64 {
	if s.Renumber == nil {
		return a
	}
	out := make([]float64, len(a))
	s.Renumber.EdgeToCanonical(out, a)
	return out
}

func (s *Solver) renumberCellFrom(dst, canon []float64) {
	s.Renumber.CellFromCanonical(dst, canon)
}

func (s *Solver) renumberEdgeFrom(dst, canon []float64) {
	s.Renumber.EdgeFromCanonical(dst, canon)
}

// SaveCheckpoint writes the checkpoint to a file.
func (s *Solver) SaveCheckpoint(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteCheckpoint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpoint restores a checkpoint from a file.
func (s *Solver) LoadCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.ReadCheckpoint(f)
}
