package sw

// RunControl configures a controlled long integration: a cooperative
// interrupt check plus periodic report and checkpoint hooks. It is the
// step-loop contract a serving layer (internal/serve) or a checkpointing CLI
// (cmd/swmodel -checkpoint) needs without owning the loop itself.
//
// Report and Checkpoint fire on a global cadence — whenever s.StepCount is a
// multiple of the interval — so callers that advance the solver in chunks
// keep a stable phase across chunk boundaries.
type RunControl struct {
	// Interrupt, when non-nil, is consulted before every step; returning a
	// non-nil error stops the run immediately and RunControlled returns that
	// error. Context cancellation adapts naturally:
	// func() error { return ctx.Err() }.
	Interrupt func() error

	// ReportEvery > 0 invokes Report after every step whose resulting
	// StepCount is a multiple of it.
	ReportEvery int
	Report      func(s *Solver) error

	// CheckpointEvery > 0 invokes Checkpoint on the same global cadence.
	// Checkpoint runs before Report when both fire on one step, so a report
	// always describes an already-durable state.
	CheckpointEvery int
	Checkpoint      func(s *Solver) error
}

// RunControlled advances up to n steps under rc. It returns nil after n
// steps, or the first non-nil error from Interrupt, Checkpoint or Report —
// leaving the solver at the last completed step so the caller can
// checkpoint, suspend or resume it.
func (s *Solver) RunControlled(n int, rc RunControl) error {
	for i := 0; i < n; i++ {
		if rc.Interrupt != nil {
			if err := rc.Interrupt(); err != nil {
				return err
			}
		}
		s.Step()
		if rc.CheckpointEvery > 0 && rc.Checkpoint != nil && s.StepCount%rc.CheckpointEvery == 0 {
			if err := rc.Checkpoint(s); err != nil {
				return err
			}
		}
		if rc.ReportEvery > 0 && rc.Report != nil && s.StepCount%rc.ReportEvery == 0 {
			if err := rc.Report(s); err != nil {
				return err
			}
		}
	}
	return nil
}
