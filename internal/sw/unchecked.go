//go:build !race

package sw

import "unsafe"

// Unchecked array views for the compiled hot kernels (plan_kernels.go,
// fast32_kernels.go). The Go compiler cannot eliminate bounds checks on
// data-dependent gather subscripts (u[EdgesOnCell[j]] and friends), so the
// compiled kernels read and write through these raw-pointer views instead.
//
// Soundness is established OUTSIDE the hot loops, once, by construction:
//
//   - every gather index comes from the mesh's CSR image, and
//     mesh.PackCSR validates every column against its entity count;
//   - every target array is allocated to its entity count by the solver and
//     its length is re-asserted against the mesh at plan compile time
//     (PlanRunner.checkShapes / Fast32Runner construction);
//   - loop bounds are the per-worker static ranges, partitions of [0, n).
//
// Under the race detector this file is replaced by unchecked_race.go, whose
// views are ordinary slice accesses — bounds-checked and, crucially,
// race-instrumented — so `go test -race` still watches the compiled
// schedules for real data races.

type f64v struct{ p *float64 }

func vf64(s []float64) f64v { return f64v{unsafe.SliceData(s)} }

func (v f64v) at(i int) float64 {
	return *(*float64)(unsafe.Add(unsafe.Pointer(v.p), uintptr(i)*8))
}

func (v f64v) set(i int, x float64) {
	*(*float64)(unsafe.Add(unsafe.Pointer(v.p), uintptr(i)*8)) = x
}

type f32v struct{ p *float32 }

func vf32(s []float32) f32v { return f32v{unsafe.SliceData(s)} }

func (v f32v) at(i int) float32 {
	return *(*float32)(unsafe.Add(unsafe.Pointer(v.p), uintptr(i)*4))
}

func (v f32v) set(i int, x float32) {
	*(*float32)(unsafe.Add(unsafe.Pointer(v.p), uintptr(i)*4)) = x
}

type i32v struct{ p *int32 }

func vi32(s []int32) i32v { return i32v{unsafe.SliceData(s)} }

func (v i32v) at(i int) int32 {
	return *(*int32)(unsafe.Add(unsafe.Pointer(v.p), uintptr(i)*4))
}
