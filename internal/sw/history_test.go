package sw_test

import (
	"strings"
	"testing"

	"repro/internal/sw"
	"repro/internal/testcases"
)

func TestHistoryRecordsAndDrift(t *testing.T) {
	s := newTC2Solver(t, 3)
	var h sw.History
	s.RunWithHistory(10, 2, &h)
	if h.Len() != 6 { // initial + 5 samples
		t.Fatalf("history length %d", h.Len())
	}
	mass, energy, enstrophy := h.MaxRelDrift()
	if mass > 1e-13 {
		t.Errorf("mass drift %v", mass)
	}
	if energy > 1e-7 || enstrophy > 1e-4 {
		t.Errorf("drifts: energy %v enstrophy %v", energy, enstrophy)
	}
	if h.Times[0] != 0 || h.Times[5] <= h.Times[1] {
		t.Errorf("times not increasing: %v", h.Times)
	}
}

func TestHistoryCSV(t *testing.T) {
	s := newTC2Solver(t, 2)
	var h sw.History
	s.RunWithHistory(2, 1, &h)
	var b strings.Builder
	if err := h.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+h.Len() {
		t.Errorf("CSV lines %d, want %d", len(lines), 1+h.Len())
	}
	if !strings.HasPrefix(lines[0], "time_s,mass") {
		t.Errorf("header %q", lines[0])
	}
}

func TestHistoryEmptyDrift(t *testing.T) {
	var h sw.History
	m, e, z := h.MaxRelDrift()
	if m != 0 || e != 0 || z != 0 {
		t.Error("empty history has drift")
	}
}

func TestHistoryIntervalClamped(t *testing.T) {
	s := newTC2Solver(t, 2)
	var h sw.History
	s.RunWithHistory(3, 0, &h) // interval 0 -> 1
	if h.Len() != 4 {
		t.Errorf("history length %d", h.Len())
	}
}

func TestProfilingRunner(t *testing.T) {
	m := testMesh(t, 3)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	prof := sw.NewProfilingRunner(sw.SerialRunner{})
	s.Runner = prof
	testcases.SetupTC5(s)
	s.Run(10)
	report := prof.Report()
	if len(report) != 19 { // all default pattern instances
		t.Fatalf("%d profile entries, want 19", len(report))
	}
	// Sorted descending, shares sum to ~1, the wide B1 stencil dominates.
	sum := 0.0
	for i, e := range report {
		if e.Calls <= 0 || e.Total < 0 {
			t.Errorf("entry %s has no data: %+v", e.ID, e)
		}
		if i > 0 && e.Total > report[i-1].Total {
			t.Error("report not sorted")
		}
		sum += e.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v", sum)
	}
	// A stencil pattern dominates; which one wins can vary with timer
	// noise and scheduler preemption on small meshes, but the trivial
	// local (X) patterns must never be on top.
	if top := report[0].ID; top[0] == 'X' {
		t.Errorf("most expensive pattern is local %s", top)
	}
	// The profiled solver still computes the right physics.
	ref := sw.NewDiagnostics(m)
	s.ReferenceDiagnostics(s.State, ref)
	if r := relDiff(s.Diag.KE, ref.KE); r > 1e-11 {
		t.Errorf("profiled run wrong: %v", r)
	}
}
