package sw

import "repro/internal/par"

// PoolRunner executes each kernel as ONE parallel region (paper §4.B: "we
// only set up one parallel region for each kernel, and remove all
// unnecessary implicit synchronizations"): the worker team is forked once
// per kernel and the member patterns run as statically-chunked loops with a
// barrier between consecutive patterns, since stencil patterns read
// neighbours written by other workers.
type PoolRunner struct {
	Pool *par.Pool
}

// RunKernel implements Runner.
func (r PoolRunner) RunKernel(k *Kernel) {
	if r.Pool.Workers() == 1 {
		SerialRunner{}.RunKernel(k)
		return
	}
	r.Pool.Region(func(t *par.Team) {
		for i, p := range k.Patterns {
			if i > 0 {
				t.Barrier()
			}
			t.For(p.N, p.Run)
		}
	})
}

// PerLoopRunner executes every pattern as its own fork-join parallel loop —
// the unfused baseline that PoolRunner's region fusion improves on. Used by
// the ablation benchmarks.
type PerLoopRunner struct {
	Pool *par.Pool
}

// RunKernel implements Runner.
func (r PerLoopRunner) RunKernel(k *Kernel) {
	for _, p := range k.Patterns {
		r.Pool.For(p.N, p.Run)
	}
}
