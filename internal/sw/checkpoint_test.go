package sw_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/sw"
	"repro/internal/testcases"
)

func TestCheckpointRestartBitwise(t *testing.T) {
	m := testMesh(t, 3)
	cfg := sw.DefaultConfig(m)

	// Continuous run of 10 steps.
	full, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC5(full)
	full.Run(10)

	// 5 steps, checkpoint, restore into a FRESH solver, 5 more steps.
	first, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC5(first)
	first.Run(5)
	var buf bytes.Buffer
	if err := first.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	second, _ := sw.NewSolver(m, cfg)
	if err := second.ReadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if second.StepCount != 5 || second.Time != first.Time {
		t.Fatalf("clock not restored: steps=%d time=%v", second.StepCount, second.Time)
	}
	second.Run(5)

	for c := range full.State.H {
		if full.State.H[c] != second.State.H[c] {
			t.Fatalf("restart diverges at cell %d", c)
		}
	}
	for e := range full.State.U {
		if full.State.U[e] != second.State.U[e] {
			t.Fatalf("restart diverges at edge %d", e)
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	m := testMesh(t, 2)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC2(s)
	s.Run(2)
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	s2, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	if err := s2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if s2.State.H[0] != s.State.H[0] || s2.Time != s.Time {
		t.Error("file checkpoint mismatch")
	}
}

func TestCheckpointRejectsMismatchedMesh(t *testing.T) {
	m2 := testMesh(t, 2)
	m3 := testMesh(t, 3)
	s2, _ := sw.NewSolver(m2, sw.DefaultConfig(m2))
	testcases.SetupTC2(s2)
	var buf bytes.Buffer
	if err := s2.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	s3, _ := sw.NewSolver(m3, sw.DefaultConfig(m3))
	if err := s3.ReadCheckpoint(&buf); err == nil {
		t.Error("checkpoint for wrong mesh accepted")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m := testMesh(t, 2)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	if err := s.ReadCheckpoint(bytes.NewReader([]byte("junkjunkjunkjunk"))); err == nil {
		t.Error("garbage checkpoint accepted")
	}
}

func TestViscosityDampsEnergyAndMatchesReference(t *testing.T) {
	m := testMesh(t, 3)
	cfg := sw.DefaultConfig(m)
	cfg.Viscosity = 1e5 // strong del^2 for a clear signal
	s, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC6(s)
	e0 := s.ComputeInvariants().TotalEnergy
	s.Run(20)
	e1 := s.ComputeInvariants().TotalEnergy
	if e1 >= e0 {
		t.Errorf("viscosity did not damp energy: %v -> %v", e0, e1)
	}
	// Mass still conserved (viscosity acts on momentum only).
	// And the gather kernel matches the scatter reference with viscosity on.
	refD := sw.NewDiagnostics(m)
	s.ReferenceDiagnostics(s.State, refD)
	refT := sw.NewTendencies(m)
	s.ReferenceTend(s.State, refD, refT)
	pat := s.PatternByID("B1")
	pat.Run(0, pat.N)
	if r := relDiff(s.Tend.U, refT.U); r > 1e-11 {
		t.Errorf("viscous tend_u: gather vs scatter %v", r)
	}
}

func TestViscositySmoothsVorticity(t *testing.T) {
	m := testMesh(t, 3)
	run := func(nu float64) float64 {
		cfg := sw.DefaultConfig(m)
		cfg.Viscosity = nu
		s, _ := sw.NewSolver(m, cfg)
		testcases.SetupTC6(s)
		s.Run(30)
		// Vorticity "roughness": l2 of the field.
		sum := 0.0
		for v := 0; v < m.NVertices; v++ {
			sum += s.Diag.Vorticity[v] * s.Diag.Vorticity[v] * m.AreaTriangle[v]
		}
		return sum
	}
	if rough, smooth := run(0), run(1e5); smooth >= rough {
		t.Errorf("viscosity did not smooth vorticity: %v vs %v", smooth, rough)
	}
}
