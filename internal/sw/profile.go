package sw

import (
	"sort"
	"time"
)

// ProfilingRunner wraps another Runner and measures real wall time per
// pattern instance — the profiling step that precedes a kernel-level design
// ("one usually profiles the code to identify the most time-consuming
// kernels", paper §2.C), here at the pattern granularity the paper's own
// design needs.
type ProfilingRunner struct {
	Inner   Runner
	elapsed map[string]time.Duration
	calls   map[string]int
	kernels map[string]string
}

// NewProfilingRunner wraps inner.
func NewProfilingRunner(inner Runner) *ProfilingRunner {
	return &ProfilingRunner{
		Inner:   inner,
		elapsed: map[string]time.Duration{},
		calls:   map[string]int{},
		kernels: map[string]string{},
	}
}

// RunKernel implements Runner: each pattern is executed through the inner
// runner individually so its time can be attributed.
func (p *ProfilingRunner) RunKernel(k *Kernel) {
	for _, pat := range k.Patterns {
		single := &Kernel{Name: k.Name, Patterns: []*Pattern{pat}}
		start := time.Now()
		p.Inner.RunKernel(single)
		p.elapsed[pat.Info.ID] += time.Since(start)
		p.calls[pat.Info.ID]++
		p.kernels[pat.Info.ID] = k.Name
	}
}

// ProfileEntry is one pattern's accumulated cost.
type ProfileEntry struct {
	ID      string
	Kernel  string
	Calls   int
	Total   time.Duration
	PerCall time.Duration
	Share   float64 // fraction of total profiled time
}

// Report returns per-pattern entries sorted by descending total time.
func (p *ProfilingRunner) Report() []ProfileEntry {
	var total time.Duration
	for _, d := range p.elapsed {
		total += d
	}
	var out []ProfileEntry
	for id, d := range p.elapsed {
		e := ProfileEntry{ID: id, Kernel: p.kernels[id], Calls: p.calls[id], Total: d}
		if e.Calls > 0 {
			e.PerCall = d / time.Duration(e.Calls)
		}
		if total > 0 {
			e.Share = float64(d) / float64(total)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}
