package sw

import (
	"sort"
	"time"

	"repro/internal/telemetry"
)

// ProfilingRunner wraps another Runner and measures real wall time per
// pattern instance — the profiling step that precedes a kernel-level design
// ("one usually profiles the code to identify the most time-consuming
// kernels", paper §2.C), here at the pattern granularity the paper's own
// design needs. Internally the measurements live in a telemetry.Registry
// (one Timer per pattern, named sw_pattern_<ID>_seconds), so a profiled run
// can also export its numbers in the Prometheus text format; Report keeps
// its original shape and ordering.
type ProfilingRunner struct {
	Inner   Runner
	reg     *telemetry.Registry
	timers  map[string]*telemetry.Timer
	kernels map[string]string
}

// NewProfilingRunner wraps inner.
func NewProfilingRunner(inner Runner) *ProfilingRunner {
	return &ProfilingRunner{
		Inner:   inner,
		reg:     telemetry.NewRegistry(),
		timers:  map[string]*telemetry.Timer{},
		kernels: map[string]string{},
	}
}

// Registry exposes the underlying metrics registry (sw_pattern_<ID>_seconds
// timers), e.g. for a Prometheus export of the profile.
func (p *ProfilingRunner) Registry() *telemetry.Registry { return p.reg }

// RunKernel implements Runner: each pattern is executed through the inner
// runner individually so its time can be attributed.
func (p *ProfilingRunner) RunKernel(k *Kernel) {
	for _, pat := range k.Patterns {
		id := pat.Info.ID
		tm, ok := p.timers[id]
		if !ok {
			tm = p.reg.Timer("sw_pattern_" + id + "_seconds")
			p.timers[id] = tm
		}
		single := &Kernel{Name: k.Name, Patterns: []*Pattern{pat}}
		ctx := tm.Start()
		p.Inner.RunKernel(single)
		ctx.Stop()
		p.kernels[id] = k.Name
	}
}

// ProfileEntry is one pattern's accumulated cost.
type ProfileEntry struct {
	ID      string
	Kernel  string
	Calls   int
	Total   time.Duration
	PerCall time.Duration
	Share   float64 // fraction of total profiled time
}

// Report returns per-pattern entries sorted by descending total time.
func (p *ProfilingRunner) Report() []ProfileEntry {
	var total time.Duration
	for _, tm := range p.timers {
		total += tm.Total()
	}
	var out []ProfileEntry
	for id, tm := range p.timers {
		e := ProfileEntry{
			ID:     id,
			Kernel: p.kernels[id],
			Calls:  int(tm.Count()),
			Total:  tm.Total(),
		}
		if e.Calls > 0 {
			e.PerCall = e.Total / time.Duration(e.Calls)
		}
		if total > 0 {
			e.Share = float64(e.Total) / float64(total)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}
