package sw

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// This file lowers a compiled (possibly overlaid) step plan one level
// further: from a level-barrier schedule to a static task graph. Each
// (op, worker-range) pair of the schedule becomes one task with a
// precomputed dependency counter; the ~21 global barriers per RK-4 step
// become point-to-point releases of successor tasks, executed by
// par.TaskGraph's work-stealing runtime.
//
// Because every task runs the SAME closure over the SAME half-open range as
// the corresponding schedule entry in barrier mode, and the dependency edges
// enforce every read/write hazard the barriers enforced, any interleaving
// the task runtime produces writes bit-for-bit the same values: each array
// element is produced by exactly one task per schedule position, with
// identical sequential arithmetic. Task mode is therefore bitwise identical
// to plan mode (proven end-to-end by internal/conform's taskplan strategy).
//
// Dependencies are derived by a schedule-order hazard walk over the plan's
// declared read/write sets (the same metadata dataflow.Build consumes):
// per-variable lists of accumulated writers and readers-since-last-full-write
// generate RAW/WAW/WAR edges. Two refinements keep the graph sparse and the
// overlap alive:
//
//   - An edge that is local under the plan's locality predicate (pointwise
//     consumer, identical tiling) connects tile k to tile k only — but it
//     DOES connect them: in barrier mode locality let the edge go entirely
//     unsynchronized because the same worker runs both tiles in order, and
//     work stealing breaks exactly that guarantee.
//   - On an overlaid schedule, a stage's halo Wait carries edges to the
//     stage's boundary (":bnd") tasks only. The interior (":int") tasks'
//     WAR hazard against Wait's halo unpack is vacuous by the overlay's
//     taint argument (interior elements never read depth-0 slots), so
//     interior tiles flow through what barrier mode makes a hard frontier.
//
// The builder is double-checked at compile time by an independent verifier:
// dataflow.Build recomputes the dependency edges of the whole program, and
// every required (writer-task, reader-task) pair must be connected in the
// task graph's transitive closure.

type taskNodeKind int8

const (
	nodeCompute taskNodeKind = iota
	nodeHook
	nodePost
	nodeWait
)

// taskNode is one schedule position's image in the task graph: its hazard
// metadata plus the ids of the tasks (one per non-empty worker range, or a
// single serial task for hook/post/wait positions).
type taskNode struct {
	pos     int // schedule position in plan.ops
	specIdx int // index into plan.specs
	stage   int
	kind    taskNodeKind
	// interior marks an overlay ":int" slice — the reader role of the
	// deliberate Wait-overlap exemption.
	interior bool
	// Write-span metadata for the hazard walk. spanKnown is false for Wait
	// (it scatters into halo slots, not a contiguous range); full means the
	// write covers the variable's whole index space and kills prior writers.
	lo, hi    int32
	spanKnown bool
	full      bool
	reads     []string
	writes    []string
	ranges    [][2]int32
	// tasks holds the task id per worker tile (-1 for an empty range), or a
	// single id for serial kinds.
	tasks []int32
}

func (n *taskNode) readsVar(v string) bool {
	for _, r := range n.reads {
		if r == v {
			return true
		}
	}
	return false
}

func (n *taskNode) writesVar(v string) bool {
	for _, w := range n.writes {
		if w == v {
			return true
		}
	}
	return false
}

func sameRanges(a, b [][2]int32) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) > 0 && &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NewTaskPlanRunner compiles the step plan for s and lowers it to task-graph
// execution: Step() runs the dependency-counted task graph instead of the
// level-barrier region. Everything else (RunKernel, Init, tracers) behaves
// exactly as NewPlanRunner's.
func NewTaskPlanRunner(s *Solver, pool *par.Pool) (*PlanRunner, error) {
	r, err := NewPlanRunner(s, pool)
	if err != nil {
		return nil, err
	}
	if err := r.taskify(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustNewTaskPlanRunner is NewTaskPlanRunner panicking on error.
func MustNewTaskPlanRunner(s *Solver, pool *par.Pool) *PlanRunner {
	r, err := NewTaskPlanRunner(s, pool)
	if err != nil {
		panic(err)
	}
	return r
}

// NewOverlapTaskPlanRunner compiles the overlaid step plan (comm/compute
// overlap, see overlap.go) and lowers it to task-graph execution. On top of
// the overlay's interior/boundary split, task mode removes the remaining
// frontier: a stage's halo Wait gates only its boundary tasks, so interior
// tiles of later ops keep flowing while the exchange is in flight.
func NewOverlapTaskPlanRunner(s *Solver, pool *par.Pool, ov *Overlap) (*PlanRunner, error) {
	r, err := NewOverlapPlanRunner(s, pool, ov)
	if err != nil {
		return nil, err
	}
	if err := r.taskify(); err != nil {
		return nil, err
	}
	return r, nil
}

// taskify lowers r's compiled step plan into a frozen task graph and
// verifies it against an independently built dependency graph. Kernel plans
// keep their (rarely hot) barrier schedules.
func (r *PlanRunner) taskify() error {
	g, nodes, err := r.buildTaskGraph(r.stepPlan)
	if err != nil {
		return fmt.Errorf("sw: task plan: %w", err)
	}
	if err := verifyTaskGraph(r.stepPlan, g, nodes, r.pool.Workers()); err != nil {
		return fmt.Errorf("sw: task plan verification: %w", err)
	}
	r.tasks = g
	return nil
}

// TaskGraph returns the compiled task graph, or nil when the runner executes
// the level-barrier schedule.
func (r *PlanRunner) TaskGraph() *par.TaskGraph { return r.tasks }

// TaskMode reports whether Step() runs the task graph.
func (r *PlanRunner) TaskMode() bool { return r.tasks != nil }

// InstrumentTasks attaches the task runtime's scheduling telemetry
// (par_taskplan_* tasks/steals/queue-depth/idle instruments) from reg.
// No-op on a barrier-mode runner or a nil registry.
func (r *PlanRunner) InstrumentTasks(reg *telemetry.Registry) {
	if r.tasks != nil {
		r.tasks.Instrument(reg, "taskplan")
	}
}

// buildTaskGraph turns every schedule position of p into tasks and derives
// the dependency edges with a schedule-order hazard walk.
func (r *PlanRunner) buildTaskGraph(p *plan) (*par.TaskGraph, []*taskNode, error) {
	nw := r.pool.Workers()
	s := p.s
	g := par.NewTaskGraph(r.pool)

	nodes := make([]*taskNode, 0, len(p.ops))
	for i := range p.ops {
		op := &p.ops[i]
		sp := p.specs[p.order[i]]
		n := &taskNode{pos: i, specIdx: p.order[i], stage: op.stage}
		stage := op.stage
		switch {
		case op.hook:
			// The serial PostSubstep slot: a single task reading and (per
			// its declared contract) rewriting the stage's prognostic
			// fields. It funnels the stage — exactly what its conditional
			// barrier did — but costs nothing when no hook is installed.
			n.kind = nodeHook
			n.reads, n.writes = sp.reads, sp.writes
			n.full = true
			id := g.AddTask(0, func() {
				if hook := s.PostSubstep; hook != nil {
					st := s.Provis
					if stage == 3 {
						st = s.State
					}
					hook(stage, st)
				}
			})
			n.tasks = []int32{id}
		case op.post:
			// Post packs and launches the halo exchange: it reads the
			// exchanged fields (the overlay stores the hook spec's writes as
			// this position's spec) and writes nothing.
			n.kind = nodePost
			n.reads = sp.writes
			ov := p.ov
			id := g.AddTask(0, func() {
				st := s.Provis
				if stage == 3 {
					st = s.State
				}
				ov.Post(stage, st)
			})
			n.tasks = []int32{id}
		case op.wait:
			// Wait completes the exchange and unpacks into the halo slots:
			// an opaque partial write of the exchanged fields.
			n.kind = nodeWait
			n.writes = sp.writes
			ov := p.ov
			id := g.AddTask(0, func() {
				st := s.Provis
				if stage == 3 {
					st = s.State
				}
				ov.Wait(stage, st)
			})
			n.tasks = []int32{id}
		default:
			n.kind = nodeCompute
			n.reads, n.writes = sp.reads, sp.writes
			n.ranges = op.ranges
			n.lo = op.ranges[0][0]
			n.hi = op.ranges[len(op.ranges)-1][1]
			n.spanKnown = true
			n.full = n.lo == 0 && int(n.hi) == sp.n
			n.interior = strings.HasSuffix(op.id, ":int")
			n.tasks = make([]int32, nw)
			run := op.run
			for w := 0; w < nw; w++ {
				rg := op.ranges[w]
				if rg[0] >= rg[1] {
					n.tasks[w] = -1
					continue
				}
				lo, hi := int(rg[0]), int(rg[1])
				n.tasks[w] = g.AddTask(w, func() { run(lo, hi) })
			}
		}
		nodes = append(nodes, n)
	}

	// connect adds the task-level edges for one node-level dependency:
	// tile k -> tile k when the edge is local under the plan's predicate and
	// both nodes share the tiling (stealing still needs the edge, but only
	// pointwise), all-to-all otherwise.
	connect := func(a, b *taskNode, kind dataflow.DepKind) {
		if a.kind == nodeCompute && b.kind == nodeCompute &&
			localEdge(p.specs[a.specIdx], p.specs[b.specIdx], kind) &&
			sameRanges(a.ranges, b.ranges) {
			for w := 0; w < nw; w++ {
				if a.tasks[w] >= 0 && b.tasks[w] >= 0 {
					g.AddDep(a.tasks[w], b.tasks[w])
				}
			}
			return
		}
		for _, at := range a.tasks {
			if at < 0 {
				continue
			}
			for _, bt := range b.tasks {
				if bt < 0 {
					continue
				}
				g.AddDep(at, bt)
			}
		}
	}

	// The hazard walk. writers[v] accumulates the nodes whose writes are
	// still visible somewhere in v (a full write resets the list; a partial
	// write prunes writers its span fully covers — their readers already got
	// edges); readers[v] accumulates readers since the last full write.
	writers := map[string][]*taskNode{}
	readers := map[string][]*taskNode{}
	var postNode [4]*taskNode
	for _, n := range nodes {
		for _, v := range n.reads {
			for _, w := range writers[v] {
				connect(w, n, dataflow.RAW)
			}
		}
		for _, v := range n.writes {
			for _, w := range writers[v] {
				if w != n {
					connect(w, n, dataflow.WAW)
				}
			}
			for _, rd := range readers[v] {
				if rd == n {
					continue
				}
				if n.kind == nodeWait && rd.kind == nodeCompute &&
					rd.interior && rd.stage == n.stage {
					// The overlap's raison d'être: Wait unpacks only halo
					// slots, which the stage's interior slices provably
					// never read (overlap.go's taint argument), so the WAR
					// hazard is vacuous and interior tiles run concurrently
					// with the exchange.
					continue
				}
				connect(rd, n, dataflow.WAR)
			}
			if n.full {
				writers[v] = []*taskNode{n}
				readers[v] = nil
			} else {
				kept := writers[v][:0]
				for _, w := range writers[v] {
					if n.spanKnown && w.spanKnown && w.lo >= n.lo && w.hi <= n.hi {
						continue
					}
					kept = append(kept, w)
				}
				writers[v] = append(kept, n)
			}
		}
		for _, v := range n.reads {
			readers[v] = append(readers[v], n)
		}
		// Post -> Wait of the same stage, explicitly. (The WAR hazard on the
		// exchanged fields implies it already; the explicit edge keeps the
		// exchange protocol correct even if the hook metadata ever changes.)
		switch n.kind {
		case nodePost:
			postNode[n.stage] = n
		case nodeWait:
			if pn := postNode[n.stage]; pn != nil {
				g.AddDep(pn.tasks[0], n.tasks[0])
			}
		}
	}

	if err := g.Freeze(); err != nil {
		return nil, nil, err
	}
	return g, nodes, nil
}

// verifyTaskGraph independently re-derives the program's dependency edges
// with dataflow.Build over the plan's specs and checks each one against the
// task graph's transitive closure: for every schedule-ordered pair of nodes
// playing the edge's two roles, the required tasks must be connected —
// tile-wise for local same-tiling edges, all-to-all otherwise. The only
// uncovered pairs are the overlay's deliberate Wait/interior exemption.
func verifyTaskGraph(p *plan, g *par.TaskGraph, nodes []*taskNode, nw int) error {
	// Ancestor bitsets in one forward sweep: the builder only creates
	// forward edges (pred id < succ id), which the sweep double-checks.
	ntasks := g.Tasks()
	words := (ntasks + 63) / 64
	anc := make([][]uint64, ntasks)
	bits := make([]uint64, ntasks*words)
	for t := range anc {
		anc[t] = bits[t*words : (t+1)*words]
	}
	var edgeErr error
	g.EachEdge(func(pred, succ int32) {
		if pred >= succ {
			edgeErr = fmt.Errorf("task graph edge %d -> %d is not forward", pred, succ)
			return
		}
		pb, sb := anc[pred], anc[succ]
		for i := range sb {
			sb[i] |= pb[i]
		}
		sb[pred/64] |= 1 << (pred % 64)
	})
	if edgeErr != nil {
		return edgeErr
	}
	reaches := func(a, b int32) bool {
		if a == b {
			return true
		}
		return anc[b][a/64]&(1<<(a%64)) != 0
	}

	nodesBySpec := make([][]*taskNode, len(p.specs))
	for _, n := range nodes {
		nodesBySpec[n.specIdx] = append(nodesBySpec[n.specIdx], n)
	}

	insts := make([]pattern.Instance, len(p.specs))
	for i, sp := range p.specs {
		insts[i] = sp.instance()
	}
	df := dataflow.Build(insts)
	for _, e := range df.Edges {
		for _, a := range nodesBySpec[e.From] {
			for _, b := range nodesBySpec[e.To] {
				if a.pos >= b.pos {
					// Reverse-schedule pairs (an overlay boundary slice vs a
					// later op's interior slice) are ordering-free by the
					// overlay's taint argument — barrier mode runs them in
					// this same reversed order.
					continue
				}
				switch e.Kind {
				case dataflow.RAW:
					if !a.writesVar(e.Variable) || !b.readsVar(e.Variable) {
						continue
					}
					if a.kind == nodeWait && b.interior && a.stage == b.stage {
						continue // the deliberate overlap exemption
					}
				case dataflow.WAR:
					if !a.readsVar(e.Variable) || !b.writesVar(e.Variable) {
						continue
					}
					if b.kind == nodeWait && a.interior && a.stage == b.stage {
						continue
					}
				case dataflow.WAW:
					if !a.writesVar(e.Variable) || !b.writesVar(e.Variable) {
						continue
					}
				}
				tileWise := a.kind == nodeCompute && b.kind == nodeCompute &&
					localEdge(p.specs[a.specIdx], p.specs[b.specIdx], e.Kind) &&
					sameRanges(a.ranges, b.ranges)
				if tileWise {
					for w := 0; w < nw; w++ {
						if a.tasks[w] < 0 || b.tasks[w] < 0 {
							continue
						}
						if !reaches(a.tasks[w], b.tasks[w]) {
							return fmt.Errorf("%s dependency %s (%s pos %d -> %s pos %d) unordered at tile %d",
								e.Kind, e.Variable, p.specs[e.From].id, a.pos, p.specs[e.To].id, b.pos, w)
						}
					}
					continue
				}
				for _, at := range a.tasks {
					if at < 0 {
						continue
					}
					for _, bt := range b.tasks {
						if bt < 0 {
							continue
						}
						if !reaches(at, bt) {
							return fmt.Errorf("%s dependency %s (%s pos %d -> %s pos %d) unordered",
								e.Kind, e.Variable, p.specs[e.From].id, a.pos, p.specs[e.To].id, b.pos)
						}
					}
				}
			}
		}
	}
	return nil
}
