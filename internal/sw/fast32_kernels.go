package sw

// This file holds the float32 kernel variants the fast-mode runner
// (fast32.go) executes. Each is the float32 transcription of the
// corresponding float64 form in kernels.go / plan_kernels.go: the same
// expression tree, the same left-to-right association, the same CSR gather
// structure — only the element type narrows. Scalar coefficients are
// computed in float64 (exactly as the solver holds them) and rounded once at
// compile time; see Fast32Runner.buildTables for the weight tables.
//
// THIS FILE MUST STAY FREE OF SLICE INDEXING: bce_test.go recompiles the
// package with -d=ssa/check_bce and fails on any bounds check attributed
// here (scripts/ci.sh runs the same gate). All access goes through the
// unchecked views of unchecked.go; soundness comes from mesh.PackCSR's
// column validation plus the fact that every float32 array is allocated to
// its exact entity count by the runner that owns it.
//
// Every constructor is marked //go:noinline for the same reason as in
// plan_kernels.go: a closure generated while inlining the constructor into
// its caller keeps the view accessors as real calls, turning every load in
// the hot loop into a function call.

// f32TendH is the fused float32 thickness tendency for one RK stage:
// A1 + X4, with X2 fused at stage 0 and the commit at stage 3.
//
//go:noinline
func (r *Fast32Runner) f32TendH(stage int) func(lo, hi int) {
	a, b := r.rkA[stage&3], r.rkB[stage&3]
	us := r.uP
	if stage == 0 {
		us = r.u0
	}
	cp := vi32(r.csr.CellPtr)
	ce := vi32(r.csr.CellEdges)
	w := vf32(r.wA1)
	area := vf32(r.areaCell)
	u := vf32(us)
	he := vf32(r.hEdge)
	th := vf32(r.tendH)
	hn := vf32(r.hN)
	h0 := vf32(r.h0)
	hp := vf32(r.hP)
	return func(lo, hi int) {
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			var acc float32
			for j := ps; j < pe; j++ {
				e := int(ce.at(j))
				acc += w.at(j) * he.at(e) * u.at(e)
			}
			t := -acc / area.at(c)
			th.set(c, t)
			switch stage {
			case 0:
				hn.set(c, h0.at(c)+b*t)
				hp.set(c, h0.at(c)+a*t)
			case 3:
				h0.set(c, hn.at(c)+b*t)
			default:
				hn.set(c, hn.at(c)+b*t)
			}
		}
	}
}

// f32TendU is the fused float32 momentum tendency for one RK stage:
// B1 (or its advection-only zeroing), optional viscosity and Rayleigh
// friction, X5, with X3 fused at stage 0 and the commit at stage 3.
//
//go:noinline
func (r *Fast32Runner) f32TendU(stage int) func(lo, hi int) {
	cfg := r.cfg
	g := float32(cfg.Gravity)
	nu := float32(cfg.Viscosity)
	rf := float32(cfg.RayleighFriction)
	a, bw := r.rkA[stage&3], r.rkB[stage&3]
	us, hs := r.uP, r.hP
	if stage == 0 {
		us, hs = r.u0, r.h0
	}
	advOnly := cfg.AdvectionOnly
	ep := vi32(r.csr.EdgePtr)
	eoe := vi32(r.csr.EdgeEdges)
	wts := vf32(r.wEdge)
	coe := vi32(r.s.M.CellsOnEdge)
	voe := vi32(r.s.M.VerticesOnEdge)
	dc := vf32(r.dcEdge)
	dv := vf32(r.dvEdge)
	u := vf32(us)
	h := vf32(hs)
	tu := vf32(r.tendU)
	he := vf32(r.hEdge)
	ke := vf32(r.ke)
	pve := vf32(r.pvEdge)
	b := vf32(r.b)
	div := vf32(r.div)
	vort := vf32(r.vort)
	un := vf32(r.uN)
	u0 := vf32(r.u0)
	up := vf32(r.uP)
	return func(lo, hi int) {
		if advOnly {
			for e := lo; e < hi; e++ {
				tu.set(e, 0)
			}
		} else {
			for e := lo; e < hi; e++ {
				ps, pend := int(ep.at(e)), int(ep.at(e+1))
				pe := pve.at(e)
				var q float32
				for j := ps; j < pend; j++ {
					k := int(eoe.at(j))
					workPV := 0.5 * (pe + pve.at(k))
					q += wts.at(j) * u.at(k) * he.at(k) * workPV
				}
				c1 := int(coe.at(2 * e))
				c2 := int(coe.at(2*e + 1))
				grad := (ke.at(c2) - ke.at(c1) + g*(h.at(c2)+b.at(c2)-h.at(c1)-b.at(c1))) / dc.at(e)
				tu.set(e, q-grad)
			}
			if nu != 0 {
				for e := lo; e < hi; e++ {
					c1 := int(coe.at(2 * e))
					c2 := int(coe.at(2*e + 1))
					v1 := int(voe.at(2 * e))
					v2 := int(voe.at(2*e + 1))
					tu.set(e, tu.at(e)+nu*((div.at(c2)-div.at(c1))/dc.at(e)-(vort.at(v2)-vort.at(v1))/dv.at(e)))
				}
			}
		}
		if rf != 0 {
			for e := lo; e < hi; e++ {
				tu.set(e, tu.at(e)-rf*u.at(e))
			}
		}
		switch stage {
		case 0:
			for e := lo; e < hi; e++ {
				t := tu.at(e)
				un.set(e, u0.at(e)+bw*t)
				up.set(e, u0.at(e)+a*t)
			}
		case 3:
			for e := lo; e < hi; e++ {
				u0.set(e, un.at(e)+bw*tu.at(e))
			}
		default:
			for e := lo; e < hi; e++ {
				un.set(e, un.at(e)+bw*tu.at(e))
			}
		}
	}
}

// f32X2 / f32X3: the provisional-state updates for stages 1 and 2.
//
//go:noinline
func (r *Fast32Runner) f32X2(stage int) func(lo, hi int) {
	a := r.rkA[stage&3]
	h0 := vf32(r.h0)
	th := vf32(r.tendH)
	hp := vf32(r.hP)
	return func(lo, hi int) {
		for c := lo; c < hi; c++ {
			hp.set(c, h0.at(c)+a*th.at(c))
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32X3(stage int) func(lo, hi int) {
	a := r.rkA[stage&3]
	u0 := vf32(r.u0)
	tu := vf32(r.tendU)
	up := vf32(r.uP)
	return func(lo, hi int) {
		for e := lo; e < hi; e++ {
			up.set(e, u0.at(e)+a*tu.at(e))
		}
	}
}

// --- float32 compute_solve_diagnostics variants ------------------------------
// Each takes the float32 state arrays the stage reads (h0/u0 at the step
// entry and stage 3, hP/uP for stages 0..2).

//go:noinline
func (r *Fast32Runner) f32C1(hs []float32) func(lo, hi int) {
	cp := vi32(r.csr.CellPtr)
	ce := vi32(r.csr.CellEdges)
	cc := vi32(r.csr.CellCells)
	dc := vf32(r.dcEdge)
	h := vf32(hs)
	d2 := vf32(r.d2)
	return func(lo, hi int) {
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			var acc float32
			for j := ps; j < pe; j++ {
				nb := int(cc.at(j))
				d := dc.at(int(ce.at(j)))
				acc += 2 * (h.at(nb) - h.at(c)) / (d * d)
			}
			d2.set(c, acc/float32(pe-ps))
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32D1(hs []float32) func(lo, hi int) {
	coe := vi32(r.s.M.CellsOnEdge)
	h := vf32(hs)
	he := vf32(r.hEdge)
	return func(lo, hi int) {
		for e := lo; e < hi; e++ {
			c1 := int(coe.at(2 * e))
			c2 := int(coe.at(2*e + 1))
			he.set(e, 0.5*(h.at(c1)+h.at(c2)))
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32D2(hs []float32) func(lo, hi int) {
	coe := vi32(r.s.M.CellsOnEdge)
	dcv := vf32(r.dcEdge)
	h := vf32(hs)
	d2 := vf32(r.d2)
	he := vf32(r.hEdge)
	return func(lo, hi int) {
		for e := lo; e < hi; e++ {
			c1 := int(coe.at(2 * e))
			c2 := int(coe.at(2*e + 1))
			dc := dcv.at(e)
			he.set(e, 0.5*(h.at(c1)+h.at(c2))-dc*dc/12*0.5*(d2.at(c1)+d2.at(c2)))
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32E(us []float32) func(lo, hi int) {
	w := vf32(r.wE)
	eov := vi32(r.s.M.EdgesOnVertex)
	at := vf32(r.areaTri)
	u := vf32(us)
	vort := vf32(r.vort)
	return func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := v * 3 // mesh.VertexDegree
			var circ float32
			for j := base; j < base+3; j++ {
				circ += w.at(j) * u.at(int(eov.at(j)))
			}
			vort.set(v, circ/at.at(v))
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32A2(us []float32) func(lo, hi int) {
	cp := vi32(r.csr.CellPtr)
	ce := vi32(r.csr.CellEdges)
	w := vf32(r.wA1)
	area := vf32(r.areaCell)
	u := vf32(us)
	div := vf32(r.div)
	return func(lo, hi int) {
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			var acc float32
			for j := ps; j < pe; j++ {
				acc += w.at(j) * u.at(int(ce.at(j)))
			}
			div.set(c, acc/area.at(c))
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32A3(us []float32) func(lo, hi int) {
	cp := vi32(r.csr.CellPtr)
	ce := vi32(r.csr.CellEdges)
	w := vf32(r.wA3)
	area := vf32(r.areaCell)
	u := vf32(us)
	ke := vf32(r.ke)
	return func(lo, hi int) {
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			var acc float32
			for j := ps; j < pe; j++ {
				ue := u.at(int(ce.at(j)))
				acc += w.at(j) * ue * ue
			}
			ke.set(c, acc/area.at(c))
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32F(us []float32) func(lo, hi int) {
	ep := vi32(r.csr.EdgePtr)
	eoe := vi32(r.csr.EdgeEdges)
	wts := vf32(r.wEdge)
	u := vf32(us)
	v := vf32(r.v)
	return func(lo, hi int) {
		for e := lo; e < hi; e++ {
			ps, pe := int(ep.at(e)), int(ep.at(e+1))
			var acc float32
			for j := ps; j < pe; j++ {
				acc += wts.at(j) * u.at(int(eoe.at(j)))
			}
			v.set(e, acc)
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32G(hs []float32) func(lo, hi int) {
	kv := vf32(r.kite)
	cv := vi32(r.s.M.CellsOnVertex)
	at := vf32(r.areaTri)
	fv := vf32(r.fVertex)
	h := vf32(hs)
	hvd := vf32(r.hVert)
	pv := vf32(r.pvVert)
	vort := vf32(r.vort)
	return func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := v * 3 // mesh.VertexDegree
			var acc float32
			for j := base; j < base+3; j++ {
				acc += kv.at(j) * h.at(int(cv.at(j)))
			}
			hv := acc / at.at(v)
			hvd.set(v, hv)
			pv.set(v, (fv.at(v)+vort.at(v))/hv)
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32C2() func(lo, hi int) {
	cp := vi32(r.csr.CellPtr)
	cvt := vi32(r.csr.CellVerts)
	w := vf32(r.wKite)
	pvc := vf32(r.pvCell)
	pvv := vf32(r.pvVert)
	return func(lo, hi int) {
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			var acc float32
			for j := ps; j < pe; j++ {
				acc += w.at(j) * pvv.at(int(cvt.at(j)))
			}
			pvc.set(c, acc)
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32H1() func(lo, hi int) {
	voe := vi32(r.s.M.VerticesOnEdge)
	pve := vf32(r.pvEdge)
	pvv := vf32(r.pvVert)
	return func(lo, hi int) {
		for e := lo; e < hi; e++ {
			v1 := int(voe.at(2 * e))
			v2 := int(voe.at(2*e + 1))
			pve.set(e, 0.5*(pvv.at(v1)+pvv.at(v2)))
		}
	}
}

//go:noinline
func (r *Fast32Runner) f32B2(us []float32) func(lo, hi int) {
	coef := float32(r.cfg.APVM * r.cfg.Dt)
	voe := vi32(r.s.M.VerticesOnEdge)
	coe := vi32(r.s.M.CellsOnEdge)
	dc := vf32(r.dcEdge)
	dv := vf32(r.dvEdge)
	pve := vf32(r.pvEdge)
	pvv := vf32(r.pvVert)
	pvc := vf32(r.pvCell)
	u := vf32(us)
	v := vf32(r.v)
	return func(lo, hi int) {
		for e := lo; e < hi; e++ {
			v1 := int(voe.at(2 * e))
			v2 := int(voe.at(2*e + 1))
			c1 := int(coe.at(2 * e))
			c2 := int(coe.at(2*e + 1))
			gradPVt := (pvv.at(v2) - pvv.at(v1)) / dv.at(e)
			gradPVn := (pvc.at(c2) - pvc.at(c1)) / dc.at(e)
			pve.set(e, pve.at(e)-coef*(v.at(e)*gradPVt+u.at(e)*gradPVn))
		}
	}
}
