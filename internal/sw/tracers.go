package sw

import "repro/internal/mesh"

// Tracer transport (an extension beyond the paper's Table I, handled by the
// RK driver alongside the prognostic pair): each tracer is prognosed in its
// conservative form Q = h*q, with tendency
//
//	dQ/dt = -div(F * q_edge),   F = h_edge*u,  q_edge centered,
//
// which gives exact tracer-mass conservation and exact constancy
// preservation: a tracer that starts uniform stays uniform to the last bit,
// because its flux divergence is then computed by literally the same sums
// as the thickness tendency.
type Tracer struct {
	Name string
	// Q is the conservative tracer density h*q at cells.
	Q []float64

	provis []float64
	next   []float64
	tend   []float64
}

// AddTracer registers a tracer with initial concentration q (per unit
// thickness); Q is initialized to h*q with the CURRENT state. Call after
// the test-case setup.
func (s *Solver) AddTracer(name string, q []float64) *Tracer {
	n := s.M.NCells
	tr := &Tracer{
		Name:   name,
		Q:      make([]float64, n),
		provis: make([]float64, n),
		next:   make([]float64, n),
		tend:   make([]float64, n),
	}
	for c := 0; c < n; c++ {
		tr.Q[c] = s.State.H[c] * q[c]
	}
	s.Tracers = append(s.Tracers, tr)
	return tr
}

// Concentration returns q = Q/h for the current state into dst (allocated
// if nil).
func (s *Solver) Concentration(tr *Tracer, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, s.M.NCells)
	}
	for c := range dst {
		dst[c] = tr.Q[c] / s.State.H[c]
	}
	return dst
}

// TracerMass returns the global integral of Q.
func (s *Solver) TracerMass(tr *Tracer) float64 {
	sum := 0.0
	for c := 0; c < s.M.NCells; c++ {
		sum += s.M.AreaCell[c] * tr.Q[c]
	}
	return sum
}

// tracerStepBegin mirrors the driver's state copies.
func (s *Solver) tracerStepBegin() {
	for _, tr := range s.Tracers {
		copy(tr.provis, tr.Q)
		copy(tr.next, tr.Q)
	}
}

// tracerTend computes each tracer's flux-divergence tendency from the
// CURRENT provisional velocity and edge thickness (pattern shape A, like
// tend_h).
func (s *Solver) tracerTend() {
	m := s.M
	u := s.cur.U
	he := s.Diag.HEdge
	hp := s.cur.H
	for _, tr := range s.Tracers {
		q := tr.provis
		for c := 0; c < m.NCells; c++ {
			base := c * mesh.MaxEdges
			n := int(m.NEdgesOnCell[c])
			acc := 0.0
			for j := 0; j < n; j++ {
				e := m.EdgesOnCell[base+j]
				c1 := m.CellsOnEdge[2*e]
				c2 := m.CellsOnEdge[2*e+1]
				qEdge := 0.5 * (q[c1]/hp[c1] + q[c2]/hp[c2])
				acc += s.signCell[base+j] * m.DvEdge[e] * he[e] * u[e] * qEdge
			}
			tr.tend[c] = -acc / m.AreaCell[c]
		}
	}
}

// tracerSubstep mirrors X2 (provisional update) and X4 (accumulation).
func (s *Solver) tracerSubstep() {
	a := s.rkA[s.stage]
	b := s.rkB[s.stage]
	for _, tr := range s.Tracers {
		if s.stage < 3 {
			for c := range tr.provis {
				tr.provis[c] = tr.Q[c] + a*tr.tend[c]
			}
		}
		for c := range tr.next {
			tr.next[c] += b * tr.tend[c]
		}
	}
}

// tracerStepEnd accepts the accumulated state.
func (s *Solver) tracerStepEnd() {
	for _, tr := range s.Tracers {
		copy(tr.Q, tr.next)
	}
}

// HaloField returns the tracer array a distributed run must halo-exchange
// at the given RK substage sync point: the provisional field during stages
// 0..2, the accepted field at stage 3 (mirroring how the driver exchanges
// h and u).
func (tr *Tracer) HaloField(stage int) []float64 {
	if stage < 3 {
		return tr.provis
	}
	return tr.Q
}
