package sw_test

import (
	"testing"

	"repro/internal/sw"
	"repro/internal/testcases"
)

func TestHighOrderGatherMatchesScatterReference(t *testing.T) {
	m := testMesh(t, 3)
	cfg := sw.DefaultConfig(m)
	cfg.HighOrderThickness = true
	s, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC5(s)
	s.Run(3)
	ref := sw.NewDiagnostics(m)
	s.ReferenceDiagnostics(s.State, ref)
	if r := relDiff(s.Diag.D2fdx2Cell, ref.D2fdx2Cell); r > 1e-11 {
		t.Errorf("d2fdx2: gather vs scatter %v", r)
	}
	if r := relDiff(s.Diag.HEdge, ref.HEdge); r > 1e-11 {
		t.Errorf("high-order h_edge: gather vs scatter %v", r)
	}
}

func TestHighOrderChangesHEdge(t *testing.T) {
	m := testMesh(t, 3)
	run := func(high bool) []float64 {
		cfg := sw.DefaultConfig(m)
		cfg.HighOrderThickness = high
		s, _ := sw.NewSolver(m, cfg)
		testcases.SetupTC5(s)
		s.Run(2)
		return append([]float64(nil), s.Diag.HEdge...)
	}
	lo := run(false)
	hi := run(true)
	if relDiff(lo, hi) == 0 {
		t.Error("high-order interpolation identical to second-order")
	}
	// But close: it is a correction term, not a different field. (On the
	// coarse 960-km test mesh the dc^2/12 term reaches a couple of percent
	// on the mountain slope.)
	if relDiff(lo, hi) > 0.05 {
		t.Errorf("high-order correction implausibly large: %v", relDiff(lo, hi))
	}
}

func TestHighOrderHybridBitwise(t *testing.T) {
	// The optional C1/D2 patterns must also schedule correctly in the
	// threaded runner (they enter the kernel list and its level analysis).
	m := testMesh(t, 3)
	cfg := sw.DefaultConfig(m)
	cfg.HighOrderThickness = true
	serial, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC5(serial)
	serial.Run(3)

	threaded, _ := sw.NewSolver(m, cfg)
	pool := newTestPool(t)
	threaded.Runner = sw.PoolRunner{Pool: pool}
	testcases.SetupTC5(threaded)
	threaded.Run(3)
	for c := range serial.State.H {
		if serial.State.H[c] != threaded.State.H[c] {
			t.Fatalf("high-order threaded run diverges at cell %d", c)
		}
	}
}
