package sw

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Ensemble stepping: K perturbed trajectories of the SAME configuration
// multiplexed through ONE Solver. The mesh, the precomputed label matrices,
// the gather weights and — when a PlanRunner is attached — the compiled
// execution plan are all built once and shared by every member; only the
// prognostic state (h, u) plus the clock is per-member. A member is
// activated by copying its state into the solver and re-deriving the
// diagnostics (exactly the checkpoint-resume path internal/conform proves
// lands on the uninterrupted trajectory within the exact-strategy ULP
// band), and consecutive activations of the SAME member skip the swap
// entirely, so chunked round-robin stepping pays one diagnostic solve per
// member per chunk and zero plan recompilations ever.
//
// This is the batch-admission substrate of the serving layer: an ensemble
// job is K jittered initial conditions advanced in rounds, their invariant
// diagnostics streamed per member, their states checkpointed together.

// EnsembleMember is one trajectory of an ensemble: a private prognostic
// state plus its clock. Diagnostics are not stored — they are re-derived
// on activation.
type EnsembleMember struct {
	State     *State
	StepCount int
	Time      float64
}

// Ensemble multiplexes K member trajectories through one shared Solver.
// Not safe for concurrent use; callers serialize access (the serve worker
// owns its job's ensemble exclusively).
type Ensemble struct {
	s       *Solver
	members []EnsembleMember
	// loaded is the member currently resident in the solver, -1 when none
	// (freshly built, after ReadCheckpoint, or after a direct member-state
	// mutation). Activating a non-resident member re-runs Init.
	loaded int
}

// NewEnsemble builds a k-member ensemble over s. Every member starts as a
// clone of s's current state and clock — perturb members afterwards with
// PerturbH. The solver keeps whatever Runner is attached; a compiled plan
// is therefore shared by all members.
func NewEnsemble(s *Solver, k int) (*Ensemble, error) {
	if k < 1 {
		return nil, fmt.Errorf("sw: ensemble needs at least 1 member, got %d", k)
	}
	e := &Ensemble{s: s, members: make([]EnsembleMember, k), loaded: -1}
	for i := range e.members {
		e.members[i] = EnsembleMember{
			State:     s.State.Clone(),
			StepCount: s.StepCount,
			Time:      s.Time,
		}
	}
	return e, nil
}

// K returns the member count.
func (e *Ensemble) K() int { return len(e.members) }

// Member returns member i's record. The returned state is live — mutating
// it invalidates the resident copy, so call only between WithMember
// activations (or use PerturbH, which handles residency).
func (e *Ensemble) Member(i int) *EnsembleMember { return &e.members[i] }

// StepOf returns member i's step count without activating it.
func (e *Ensemble) StepOf(i int) int {
	if i == e.loaded {
		return e.s.StepCount
	}
	return e.members[i].StepCount
}

// MinStep returns the least-advanced member's step count — the ensemble's
// committed progress frontier.
func (e *Ensemble) MinStep() int {
	min := e.StepOf(0)
	for i := 1; i < len(e.members); i++ {
		if st := e.StepOf(i); st < min {
			min = st
		}
	}
	return min
}

// MinTime returns the least-advanced member's simulation time.
func (e *Ensemble) MinTime() float64 {
	min := math.Inf(1)
	for i := range e.members {
		t := e.members[i].Time
		if i == e.loaded {
			t = e.s.Time
		}
		if t < min {
			min = t
		}
	}
	return min
}

// splitmix64 is the perturbation hash: a tiny, allocation-free generator
// with full 64-bit avalanche, so member jitter is a pure function of
// (seed, member, element) — identical across platforms and restarts.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PerturbH applies a deterministic relative perturbation to member i's
// thickness field: h[c] *= 1 + eps*u(seed, i, c) with u uniform in [-1, 1).
// The seeded-hash form keeps ensembles reproducible and lets a resubmitted
// job (work stealing, recovery) regenerate nothing — perturbation happens
// once, before the first step, and thereafter rides in checkpoints.
func (e *Ensemble) PerturbH(i int, seed uint64, eps float64) {
	e.stash()
	h := e.members[i].State.H
	base := splitmix64(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	for c := range h {
		bits := splitmix64(base ^ uint64(c))
		u := float64(int64(bits)) / (1 << 63) // uniform in [-1, 1)
		h[c] *= 1 + eps*u
	}
}

// stash syncs the resident member (if any) back into its record and marks
// the solver non-resident.
func (e *Ensemble) stash() {
	if e.loaded < 0 {
		return
	}
	m := &e.members[e.loaded]
	m.State.CopyFrom(e.s.State)
	m.StepCount = e.s.StepCount
	m.Time = e.s.Time
	e.loaded = -1
}

// activate makes member i resident: state copied into the solver and the
// diagnostics re-derived (the proven resume path). A no-op when i is
// already resident — consecutive chunks of the same member step exactly
// like an uninterrupted run.
func (e *Ensemble) activate(i int) {
	if e.loaded == i {
		return
	}
	e.stash()
	m := &e.members[i]
	e.s.State.CopyFrom(m.State)
	e.s.StepCount = m.StepCount
	e.s.Time = m.Time
	e.s.Init()
	e.loaded = i
}

// WithMember activates member i, runs f on the shared solver, and syncs
// the member's record afterwards (even when f errors, so cooperative
// interruptions — suspend, cancel — leave the record at the last completed
// step). f must not retarget the solver's Runner or mutate its Cfg.
func (e *Ensemble) WithMember(i int, f func(*Solver) error) error {
	if i < 0 || i >= len(e.members) {
		return fmt.Errorf("sw: ensemble member %d out of range [0,%d)", i, len(e.members))
	}
	e.activate(i)
	err := f(e.s)
	m := &e.members[i]
	m.State.CopyFrom(e.s.State)
	m.StepCount = e.s.StepCount
	m.Time = e.s.Time
	return err
}

// Ensemble checkpoint format: like the solver checkpoint (checkpoint.go)
// but with a member dimension — magic, version, K, the shared topography
// once, then per member (step, time, h, u). Written tmp-then-rename by the
// serving spool, so a crash never tears it.
const (
	ensembleCkptMagic   = 0x53574543 // "SWEC"
	ensembleCkptVersion = 1
)

// WriteCheckpoint serializes every member (the resident one is stashed
// first, so records are current).
func (e *Ensemble) WriteCheckpoint(w io.Writer) error {
	e.stash()
	bw := bufio.NewWriter(w)
	put := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	putF := func(v float64) error { return put(math.Float64bits(v)) }
	putArr := func(a []float64) error {
		if err := put(uint64(len(a))); err != nil {
			return err
		}
		for _, v := range a {
			if err := putF(v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := put(ensembleCkptMagic); err != nil {
		return err
	}
	if err := put(ensembleCkptVersion); err != nil {
		return err
	}
	if err := put(uint64(len(e.members))); err != nil {
		return err
	}
	// Like the solver checkpoint, the bytes are canonical-order regardless
	// of any locality renumbering of the resident mesh.
	if err := putArr(e.s.canonicalCell(e.s.B)); err != nil {
		return err
	}
	for i := range e.members {
		m := &e.members[i]
		if err := put(uint64(m.StepCount)); err != nil {
			return err
		}
		if err := putF(m.Time); err != nil {
			return err
		}
		if err := putArr(e.s.canonicalCell(m.State.H)); err != nil {
			return err
		}
		if err := putArr(e.s.canonicalEdge(m.State.U)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint restores an ensemble checkpoint written by
// WriteCheckpoint. The member count and mesh sizes must match; the shared
// topography is restored into the solver and every member becomes
// non-resident (the next activation re-derives diagnostics).
func (e *Ensemble) ReadCheckpoint(r io.Reader) error {
	br := bufio.NewReader(r)
	get := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	getArr := func(dst []float64, what string) error {
		n, err := get()
		if err != nil {
			return err
		}
		if int(n) != len(dst) {
			return fmt.Errorf("sw: ensemble checkpoint %s has %d entries, mesh needs %d", what, n, len(dst))
		}
		for i := range dst {
			v, err := get()
			if err != nil {
				return err
			}
			dst[i] = math.Float64frombits(v)
		}
		return nil
	}
	magic, err := get()
	if err != nil {
		return err
	}
	if magic != ensembleCkptMagic {
		return fmt.Errorf("sw: bad ensemble checkpoint magic %#x", magic)
	}
	ver, err := get()
	if err != nil {
		return err
	}
	if ver != ensembleCkptVersion {
		return fmt.Errorf("sw: unsupported ensemble checkpoint version %d", ver)
	}
	k, err := get()
	if err != nil {
		return err
	}
	if int(k) != len(e.members) {
		return fmt.Errorf("sw: ensemble checkpoint has %d members, ensemble has %d", k, len(e.members))
	}
	readArr := func(dst []float64, what string, fromCanon func(dst, src []float64)) error {
		if e.s.Renumber == nil {
			return getArr(dst, what)
		}
		tmp := make([]float64, len(dst))
		if err := getArr(tmp, what); err != nil {
			return err
		}
		fromCanon(dst, tmp)
		return nil
	}
	if err := readArr(e.s.B, "b", e.s.renumberCellFrom); err != nil {
		return err
	}
	for i := range e.members {
		m := &e.members[i]
		steps, err := get()
		if err != nil {
			return err
		}
		timeBits, err := get()
		if err != nil {
			return err
		}
		if err := readArr(m.State.H, fmt.Sprintf("member %d h", i), e.s.renumberCellFrom); err != nil {
			return err
		}
		if err := readArr(m.State.U, fmt.Sprintf("member %d u", i), e.s.renumberEdgeFrom); err != nil {
			return err
		}
		m.StepCount = int(steps)
		m.Time = math.Float64frombits(timeBits)
	}
	e.loaded = -1
	return nil
}

// SaveCheckpoint writes the ensemble checkpoint to a file.
func (e *Ensemble) SaveCheckpoint(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.WriteCheckpoint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpoint restores the ensemble from a file.
func (e *Ensemble) LoadCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.ReadCheckpoint(f)
}

// IsEnsembleCheckpoint sniffs whether the file at path begins with the
// ensemble checkpoint magic (false for single-solver checkpoints and on
// any read error).
func IsEnsembleCheckpoint(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var b [8]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return false
	}
	return binary.LittleEndian.Uint64(b[:]) == ensembleCkptMagic
}
