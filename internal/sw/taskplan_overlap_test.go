package sw_test

import (
	"testing"

	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// The overlay neutrality tests from overlap_test.go, replayed under task-graph
// execution: the same extremes and the same real-depth mid-split must stay
// bitwise-neutral when the wait no longer stalls the whole team but gates only
// the boundary-slice tasks of its stage.

func TestOverlapTaskPlanSplitExtremesBitwiseNeutral(t *testing.T) {
	for _, workers := range []int{1, 3} {
		for _, width := range []int{0, 1 << 20} {
			ref := newTC2Solver(t, 3)
			ref.Runner = sw.MustNewPlanRunner(ref, nil)
			ref.Run(3)

			s := newTC2Solver(t, 3)
			pool := par.NewPool(workers)
			defer pool.Close()
			m := s.M
			var posts, waits int
			r, err := sw.NewOverlapTaskPlanRunner(s, pool,
				noopOverlap(m.NCells, m.NEdges, m.NVertices, width, &posts, &waits))
			if err != nil {
				t.Fatalf("workers=%d width=%d: %v", workers, width, err)
			}
			if !r.TaskMode() {
				t.Fatal("overlay runner not in task mode")
			}
			s.Runner = r
			s.Run(3)
			if posts != 12 || waits != 12 {
				t.Fatalf("workers=%d width=%d: %d posts, %d waits; want 12 each (4/step x 3 steps)",
					workers, width, posts, waits)
			}
			for i := range ref.State.H {
				if s.State.H[i] != ref.State.H[i] {
					t.Fatalf("workers=%d width=%d: H[%d] %v != %v",
						workers, width, i, s.State.H[i], ref.State.H[i])
				}
			}
			for i := range ref.State.U {
				if s.State.U[i] != ref.State.U[i] {
					t.Fatalf("workers=%d width=%d: U[%d] %v != %v",
						workers, width, i, s.State.U[i], ref.State.U[i])
				}
			}
		}
	}
}

func TestOverlapTaskPlanRealDepthSplitBitwiseNeutral(t *testing.T) {
	g := testMesh(t, 3)
	p, err := partition.Bisect(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := partition.Extract(g, p, 0, 3)
	cfg := sw.DefaultConfig(l.M)

	newLocal := func() *sw.Solver {
		s, err := sw.NewSolver(l.M, cfg)
		if err != nil {
			t.Fatal(err)
		}
		testcases.SetupTC2(s)
		return s
	}
	ref := newLocal()
	ref.Runner = sw.MustNewPlanRunner(ref, nil)
	ref.Run(3)

	for _, workers := range []int{1, 2, 4} {
		s := newLocal()
		pool := par.NewPool(workers)
		defer pool.Close()
		var posts, waits int
		ov := &sw.Overlap{
			Post:             func(stage int, st *sw.State) { posts++ },
			Wait:             func(stage int, st *sw.State) { waits++ },
			InteriorCells:    l.InteriorCells,
			InteriorEdges:    l.InteriorEdges,
			InteriorVertices: l.InteriorVertices,
		}
		r, err := sw.NewOverlapTaskPlanRunner(s, pool, ov)
		if err != nil {
			t.Fatal(err)
		}
		if ic := l.InteriorCells(1); ic <= 0 || ic >= l.M.NCells {
			t.Fatalf("degenerate interior split %d of %d cells", ic, l.M.NCells)
		}
		s.Runner = r
		s.Run(3)
		if posts != 12 || waits != 12 {
			t.Fatalf("workers=%d: %d posts, %d waits; want 12 each", workers, posts, waits)
		}
		for i := range ref.State.H {
			if s.State.H[i] != ref.State.H[i] {
				t.Fatalf("workers=%d: H[%d] %v != %v (depth %d)",
					workers, i, s.State.H[i], ref.State.H[i], l.CellDepth[i])
			}
		}
		for i := range ref.State.U {
			if s.State.U[i] != ref.State.U[i] {
				t.Fatalf("workers=%d: U[%d] %v != %v (depth %d)",
					workers, i, s.State.U[i], ref.State.U[i], l.EdgeDepth[i])
			}
		}
	}
}

// TestOverlapTaskPlanFallsBackUnderHook: a PostSubstep hook invalidates the
// overlay contract (it may rewrite halo values the exchange already shipped),
// so the solver must drop to the kernel loop exactly as it does in barrier
// mode — the task graph must not run.
func TestOverlapTaskPlanFallsBackUnderHook(t *testing.T) {
	s := newTC2Solver(t, 2)
	m := s.M
	var posts, waits int
	r, err := sw.NewOverlapTaskPlanRunner(s, nil, noopOverlap(m.NCells, m.NEdges, m.NVertices, 5, &posts, &waits))
	if err != nil {
		t.Fatal(err)
	}
	s.Runner = r
	s.PostSubstep = func(stage int, st *sw.State) {}
	s.Step()
	if posts != 0 || waits != 0 {
		t.Fatalf("overlaid task runner ran under a hook: %d posts, %d waits", posts, waits)
	}
	if got := r.TaskGraph().TasksExecuted(); got != 0 {
		t.Fatalf("task graph executed %d tasks under a hook, want 0", got)
	}
}
