package sw

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/par"
)

// planConfigs is the configuration matrix the compiled plan must reproduce
// bitwise: every branch the compiler specializes on (thickness order, APVM,
// viscosity, friction, advection-only) appears at least once.
func planConfigs(m *mesh.Mesh) map[string]Config {
	cfgs := map[string]Config{}
	base := DefaultConfig(m)
	cfgs["default"] = base

	c := base
	c.APVM = 0
	cfgs["no_apvm"] = c

	c = base
	c.Viscosity = 1e5
	cfgs["viscous"] = c

	c = base
	c.RayleighFriction = 1e-5
	cfgs["rayleigh"] = c

	c = base
	c.AdvectionOnly = true
	cfgs["advection_only"] = c

	c = base
	c.HighOrderThickness = true
	cfgs["high_order"] = c

	c = base
	c.HighOrderThickness = true
	c.Viscosity = 1e5
	c.RayleighFriction = 1e-5
	cfgs["kitchen_sink"] = c
	return cfgs
}

func planTestSolver(tb testing.TB, m *mesh.Mesh, cfg Config, seed int64) *Solver {
	tb.Helper()
	s := MustNewSolver(m, cfg)
	rng := rand.New(rand.NewSource(seed))
	for c := range s.State.H {
		s.State.H[c] = 1000 + 100*rng.Float64()
	}
	for e := range s.State.U {
		s.State.U[e] = 20 * (rng.Float64() - 0.5)
	}
	s.Init()
	return s
}

func planTestMesh(tb testing.TB, level int) *mesh.Mesh {
	tb.Helper()
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func requireSame(tb testing.TB, name string, got, want []float64) {
	tb.Helper()
	for i := range want {
		if got[i] != want[i] {
			tb.Fatalf("%s: element %d differs bitwise: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// TestPlanBitwise checks that the compiled plan reproduces the serial RK-4
// trajectory bitwise — prognostic state every step, and the diagnostics the
// plan keeps live at the end — across the configuration matrix, for both a
// serial and a multi-worker team, with and without a PostSubstep hook.
func TestPlanBitwise(t *testing.T) {
	m := planTestMesh(t, 3)
	const steps = 5
	for name, cfg := range planConfigs(m) {
		for _, nw := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", name, nw), func(t *testing.T) {
				ref := planTestSolver(t, m, cfg, 11)
				var refHooks []string
				ref.PostSubstep = func(stage int, st *State) {
					refHooks = append(refHooks, fmt.Sprintf("%d:%x:%x", stage, st.H[1], st.U[1]))
				}

				pool := par.NewPool(nw)
				defer pool.Close()
				ps := planTestSolver(t, m, cfg, 11)
				ps.Runner = MustNewPlanRunner(ps, pool)
				var planHooks []string
				ps.PostSubstep = func(stage int, st *State) {
					planHooks = append(planHooks, fmt.Sprintf("%d:%x:%x", stage, st.H[1], st.U[1]))
				}

				for i := 0; i < steps; i++ {
					ref.Step()
					ps.Step()
					requireSame(t, fmt.Sprintf("step %d h", i), ps.State.H, ref.State.H)
					requireSame(t, fmt.Sprintf("step %d u", i), ps.State.U, ref.State.U)
				}
				requireSame(t, "ke", ps.Diag.KE, ref.Diag.KE)
				requireSame(t, "h_vertex", ps.Diag.HVertex, ref.Diag.HVertex)
				requireSame(t, "pv_vertex", ps.Diag.PVVertex, ref.Diag.PVVertex)
				requireSame(t, "h_edge", ps.Diag.HEdge, ref.Diag.HEdge)
				if len(refHooks) != 4*steps {
					t.Fatalf("reference hook fired %d times, want %d", len(refHooks), 4*steps)
				}
				for i := range refHooks {
					if planHooks[i] != refHooks[i] {
						t.Fatalf("hook observation %d differs: %s vs %s", i, planHooks[i], refHooks[i])
					}
				}
				ri := ref.ComputeInvariants()
				pi := ps.ComputeInvariants()
				if ri != pi {
					t.Fatalf("invariants differ: %+v vs %+v", pi, ri)
				}
			})
		}
	}
}

// TestPlanNoHookBitwise pins the hook-free schedule (the one with the hook
// slots and their conditional barriers skipped at runtime).
func TestPlanNoHookBitwise(t *testing.T) {
	m := planTestMesh(t, 3)
	cfg := DefaultConfig(m)
	ref := planTestSolver(t, m, cfg, 3)
	pool := par.NewPool(3)
	defer pool.Close()
	ps := planTestSolver(t, m, cfg, 3)
	ps.Runner = MustNewPlanRunner(ps, pool)
	for i := 0; i < 3; i++ {
		ref.Step()
		ps.Step()
	}
	requireSame(t, "h", ps.State.H, ref.State.H)
	requireSame(t, "u", ps.State.U, ref.State.U)
}

// TestPlanElision checks the liveness pass finds exactly the expected dead
// ops: under the default configuration the divergence, the cell-averaged
// vorticity and the velocity reconstruction have no consumer; under
// AdvectionOnly the momentum tendency reads nothing, so all of
// solve_diagnostics except the invariant fields of the final stage dies too.
func TestPlanElision(t *testing.T) {
	m := planTestMesh(t, 3)

	s := planTestSolver(t, m, DefaultConfig(m), 1)
	r := MustNewPlanRunner(s, nil)
	want := []string{"A2@0", "A2@1", "A2@2", "A2@3", "A4@3", "H2@0", "H2@1", "H2@2", "H2@3", "X6@3"}
	if got := fmt.Sprint(r.Elided()); got != fmt.Sprint(want) {
		t.Errorf("default elision = %v, want %v", r.Elided(), want)
	}

	cfg := DefaultConfig(m)
	cfg.AdvectionOnly = true
	sa := planTestSolver(t, m, cfg, 1)
	ra := MustNewPlanRunner(sa, nil)
	elided := map[string]bool{}
	for _, id := range ra.Elided() {
		elided[id] = true
	}
	// The full diagnostic chain B2/C2/F/H1 dies at every stage; E, A3 and G
	// survive only at stage 3, where the invariants read their outputs.
	for _, id := range []string{"B2@0", "B2@3", "C2@0", "C2@3", "F@0", "F@3", "H1@0", "H1@3",
		"E@0", "E@2", "A3@0", "A3@2", "G@0", "G@2"} {
		if !elided[id] {
			t.Errorf("advection-only: expected %s elided; elided set = %v", id, ra.Elided())
		}
	}
	for _, id := range []string{"E@3", "A3@3", "G@3", "D1@0", "D1@3"} {
		if elided[id] {
			t.Errorf("advection-only: %s must stay live; elided set = %v", id, ra.Elided())
		}
	}

	// A viscous run needs the divergence: A2 must come back.
	cfg = DefaultConfig(m)
	cfg.Viscosity = 1e5
	sv := planTestSolver(t, m, cfg, 1)
	rv := MustNewPlanRunner(sv, nil)
	for _, id := range rv.Elided() {
		if strings.HasPrefix(id, "A2@") {
			t.Errorf("viscous: A2 elided but the viscosity pass reads divergence")
		}
	}
}

// TestPlanScheduleVerified checks the compile-time schedule verification is
// effective: dropping any single barrier from the compiled step schedule
// must leave some dependency edge uncovered (either in the hook-carrying or
// the hook-free variant), across the configuration matrix and team sizes.
func TestPlanScheduleBarrierNecessity(t *testing.T) {
	m := planTestMesh(t, 3)
	for name, cfg := range planConfigs(m) {
		t.Run(name, func(t *testing.T) {
			s := planTestSolver(t, m, cfg, 1)
			pool := par.NewPool(4)
			defer pool.Close()
			r := MustNewPlanRunner(s, pool)
			p := r.stepPlan
			if err := p.verify(); err != nil {
				t.Fatalf("compiled schedule fails its own verification: %v", err)
			}
			dropped := 0
			for pos := range p.barrierAfter {
				if !p.barrierAfter[pos] {
					continue
				}
				p.barrierAfter[pos] = false
				err := p.verify()
				p.barrierAfter[pos] = true
				if err == nil {
					t.Errorf("dropping the barrier after %s (position %d) goes undetected",
						p.ops[pos].id, pos)
				}
				dropped++
			}
			if dropped == 0 {
				t.Fatal("schedule has no barriers to drop")
			}
		})
	}
}

// TestPlanScheduleShape pins structural facts of the default compiled step:
// fused ops present, the barrier count far below the kernel-by-kernel
// runner's synchronization count, and stage coverage of the hook slots.
func TestPlanScheduleShape(t *testing.T) {
	m := planTestMesh(t, 3)
	s := planTestSolver(t, m, DefaultConfig(m), 1)
	r := MustNewPlanRunner(s, nil)
	ids := r.OpIDs()
	joined := strings.Join(ids, " ")
	for _, want := range []string{"A1+X4+X2@0", "B1+X1+X5+X3@0", "A1+X4+commit@3", "X2@1", "hook@0", "hook@3", "B2@3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("schedule %v missing op %s", ids, want)
		}
	}
	// 4 stages x (levels-1) barriers; the PoolRunner equivalent pays 6 region
	// forks + ~11 intra-kernel barriers per stage. Exact count pinned so
	// schedule regressions are visible.
	if got := r.Barriers(); got < 16 || got > 24 {
		t.Errorf("default plan has %d barriers, expected roughly 21", got)
	}
	hooks := 0
	for _, id := range ids {
		if strings.HasPrefix(id, "hook@") {
			hooks++
		}
	}
	if hooks != 4 {
		t.Errorf("schedule has %d hook slots, want 4", hooks)
	}
}

// TestPlanStepAllocFree pins the allocation-free dispatch guarantee for the
// whole compiled step.
func TestPlanStepAllocFree(t *testing.T) {
	m := planTestMesh(t, 3)
	for _, nw := range []int{1, 4} {
		pool := par.NewPool(nw)
		defer pool.Close()
		s := planTestSolver(t, m, DefaultConfig(m), 5)
		s.Runner = MustNewPlanRunner(s, pool)
		if a := testing.AllocsPerRun(10, func() { s.Step() }); a != 0 {
			t.Errorf("nw=%d: plan step allocates %.1f objects, want 0", nw, a)
		}
	}
}

// TestPlanRace drives the multi-worker plan on a small mesh; meaningful
// under -race (scripts/ci.sh runs this package with the race detector).
func TestPlanRace(t *testing.T) {
	m := planTestMesh(t, 2)
	cfg := DefaultConfig(m)
	cfg.Viscosity = 1e5
	cfg.RayleighFriction = 1e-5
	pool := par.NewPool(4)
	defer pool.Close()
	s := planTestSolver(t, m, cfg, 9)
	s.Runner = MustNewPlanRunner(s, pool)
	s.PostSubstep = func(stage int, st *State) { _ = st.H[0] }
	s.Run(10)
	if s.StepCount != 10 {
		t.Fatalf("StepCount = %d, want 10", s.StepCount)
	}
}

// TestPlanRunnerKernelFallback checks the non-step path: Init through a
// PlanRunner (leveled per-kernel schedules over the original patterns) must
// match Init through the serial runner bitwise, including the diagnostics
// the step plan would elide.
func TestPlanRunnerKernelFallback(t *testing.T) {
	m := planTestMesh(t, 3)
	ref := planTestSolver(t, m, DefaultConfig(m), 13)

	pool := par.NewPool(4)
	defer pool.Close()
	ps := planTestSolver(t, m, DefaultConfig(m), 13)
	ps.Runner = MustNewPlanRunner(ps, pool)
	ps.Init()

	requireSame(t, "init h_edge", ps.Diag.HEdge, ref.Diag.HEdge)
	requireSame(t, "init divergence", ps.Diag.Divergence, ref.Diag.Divergence)
	requireSame(t, "init vorticity_cell", ps.Diag.VorticityCell, ref.Diag.VorticityCell)
	requireSame(t, "init pv_edge", ps.Diag.PVEdge, ref.Diag.PVEdge)
	requireSame(t, "init zonal", ps.Recon.Zonal, ref.Recon.Zonal)
}

// TestPlanTracersFallBack checks a solver with tracers keeps the original
// kernel-by-kernel step (tracer advection is outside the compiled program)
// and still matches the serial trajectory bitwise.
func TestPlanTracersFallBack(t *testing.T) {
	m := planTestMesh(t, 2)
	mkTracer := func(s *Solver) {
		q := make([]float64, m.NCells)
		for c := range q {
			q[c] = float64(c%7) * 0.1
		}
		s.AddTracer("q", q)
	}
	ref := planTestSolver(t, m, DefaultConfig(m), 17)
	mkTracer(ref)

	pool := par.NewPool(2)
	defer pool.Close()
	ps := planTestSolver(t, m, DefaultConfig(m), 17)
	mkTracer(ps)
	ps.Runner = MustNewPlanRunner(ps, pool)

	for i := 0; i < 3; i++ {
		ref.Step()
		ps.Step()
	}
	requireSame(t, "tracer h", ps.State.H, ref.State.H)
	requireSame(t, "tracer u", ps.State.U, ref.State.U)
	requireSame(t, "tracer q", ps.Tracers[0].Q, ref.Tracers[0].Q)
}

// TestAlignedRanges checks the partition invariants the locality predicate
// relies on: cover [0,n) exactly, monotone, and all interior boundaries on
// 8-element (64-byte) alignment.
func TestAlignedRanges(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 63, 642, 2562, 10242, 30720} {
		for _, nw := range []int{1, 2, 3, 4, 7, 16} {
			rs := alignedRanges(n, nw)
			if len(rs) != nw {
				t.Fatalf("n=%d nw=%d: %d ranges", n, nw, len(rs))
			}
			prev := int32(0)
			for w, r := range rs {
				if r[0] != prev {
					t.Fatalf("n=%d nw=%d: worker %d starts at %d, want %d", n, nw, w, r[0], prev)
				}
				if r[1] < r[0] {
					t.Fatalf("n=%d nw=%d: worker %d has negative range", n, nw, w)
				}
				if w < nw-1 && r[1]%8 != 0 && int(r[1]) != n {
					t.Fatalf("n=%d nw=%d: interior boundary %d not 8-aligned", n, nw, r[1])
				}
				prev = r[1]
			}
			if int(prev) != n {
				t.Fatalf("n=%d nw=%d: ranges cover %d", n, nw, prev)
			}
		}
	}
}
