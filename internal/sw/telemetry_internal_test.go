package sw

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/pattern"
)

// With no telemetry attached, the instrumented kernel dispatch path must add
// zero allocations — the nil-registry/nil-tracer no-op contract the whole
// subsystem rests on. (Internal test: runKernel is the hot path.)
func TestRunKernelNilTelemetryAllocs(t *testing.T) {
	m, err := mesh.Build(2, mesh.Options{LloydIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(m, DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	s.Init()
	for _, kernel := range []string{
		pattern.KernelComputeTend,
		pattern.KernelSolveDiagnostics,
		pattern.KernelAccumulativeUpdate,
	} {
		allocs := testing.AllocsPerRun(20, func() { s.runKernel(kernel) })
		if allocs != 0 {
			t.Errorf("runKernel(%s) with nil telemetry allocated %.1f per run, want 0",
				kernel, allocs)
		}
	}
}

// A full serial RK step must also stay allocation-free without telemetry.
func TestStepNilTelemetryAllocs(t *testing.T) {
	m, err := mesh.Build(2, mesh.Options{LloydIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(m, DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	s.Init()
	allocs := testing.AllocsPerRun(10, func() { s.Step() })
	if allocs != 0 {
		t.Errorf("Step with nil telemetry allocated %.1f per run, want 0", allocs)
	}
}
