package sw

import (
	"repro/internal/mesh"
)

// This file contains the gather-form (regularity-aware, paper Algorithm 3/4)
// range kernels for every pattern instance. Each method computes output
// elements [lo,hi) and is race-free when different workers receive disjoint
// ranges, because each output element is written by exactly one iteration.

// patC1 (cell <- neighboring cells): least-squares-style second-derivative
// estimate of the thickness field used by the high-order edge interpolation,
// the role MPAS's deriv_two coefficients play (see DESIGN.md substitutions).
func (s *Solver) patC1(lo, hi int) {
	m := s.M
	h := s.cur.H
	d2 := s.Diag.D2fdx2Cell
	for c := lo; c < hi; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			nb := m.CellsOnCell[base+j]
			d := m.DcEdge[e]
			acc += 2 * (h[nb] - h[c]) / (d * d)
		}
		// Average of directional second derivatives; the factor 1/2 maps
		// the Laplacian-like estimate onto a one-dimensional d2/dx2 along
		// an edge, which is how D2 consumes it.
		d2[c] = acc / float64(n)
	}
}

// patD1 (edge <- 2 cells): second-order midpoint thickness.
func (s *Solver) patD1(lo, hi int) {
	m := s.M
	h := s.cur.H
	he := s.Diag.HEdge
	for e := lo; e < hi; e++ {
		c1 := m.CellsOnEdge[2*e]
		c2 := m.CellsOnEdge[2*e+1]
		he[e] = 0.5 * (h[c1] + h[c2])
	}
}

// patD2 (edge <- cells + second derivatives): fourth-order-style blended
// thickness interpolation.
func (s *Solver) patD2(lo, hi int) {
	m := s.M
	h := s.cur.H
	d2 := s.Diag.D2fdx2Cell
	he := s.Diag.HEdge
	for e := lo; e < hi; e++ {
		c1 := m.CellsOnEdge[2*e]
		c2 := m.CellsOnEdge[2*e+1]
		dc := m.DcEdge[e]
		he[e] = 0.5*(h[c1]+h[c2]) - dc*dc/12*0.5*(d2[c1]+d2[c2])
	}
}

// patE (vertex <- 3 edges): relative vorticity, the circulation around the
// dual cell divided by its area.
func (s *Solver) patE(lo, hi int) {
	m := s.M
	u := s.cur.U
	vort := s.Diag.Vorticity
	for v := lo; v < hi; v++ {
		base := v * mesh.VertexDegree
		circ := 0.0
		for j := 0; j < mesh.VertexDegree; j++ {
			e := m.EdgesOnVertex[base+j]
			circ += s.signVertex[base+j] * m.DcEdge[e] * u[e]
		}
		vort[v] = circ / m.AreaTriangle[v]
	}
}

// patA2 (cell <- edges): velocity divergence.
func (s *Solver) patA2(lo, hi int) {
	m := s.M
	u := s.cur.U
	div := s.Diag.Divergence
	for c := lo; c < hi; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			acc += s.signCell[base+j] * m.DvEdge[e] * u[e]
		}
		div[c] = acc / m.AreaCell[c]
	}
}

// patA3 (cell <- edges): kinetic energy from the TRiSK edge quadrature.
func (s *Solver) patA3(lo, hi int) {
	m := s.M
	u := s.cur.U
	ke := s.Diag.KE
	for c := lo; c < hi; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			acc += 0.25 * m.DcEdge[e] * m.DvEdge[e] * u[e] * u[e]
		}
		ke[c] = acc / m.AreaCell[c]
	}
}

// patF (edge <- edgesOnEdge): TRiSK tangential velocity reconstruction.
func (s *Solver) patF(lo, hi int) {
	m := s.M
	u := s.cur.U
	v := s.Diag.V
	for e := lo; e < hi; e++ {
		base := e * mesh.MaxEdgesOnEdge
		n := int(m.NEdgesOnEdge[e])
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += m.WeightsOnEdge[base+j] * u[m.EdgesOnEdge[base+j]]
		}
		v[e] = acc
	}
}

// patG (vertex <- 3 cells): kite-area-weighted thickness at vertices and the
// potential vorticity q = (f + zeta)/h there.
func (s *Solver) patG(lo, hi int) {
	m := s.M
	h := s.cur.H
	hv := s.Diag.HVertex
	pv := s.Diag.PVVertex
	vort := s.Diag.Vorticity
	for v := lo; v < hi; v++ {
		base := v * mesh.VertexDegree
		acc := 0.0
		for j := 0; j < mesh.VertexDegree; j++ {
			acc += m.KiteAreasOnVertex[base+j] * h[m.CellsOnVertex[base+j]]
		}
		hv[v] = acc / m.AreaTriangle[v]
		pv[v] = (m.FVertex[v] + vort[v]) / hv[v]
	}
}

// patC2 (cell <- vertices): potential vorticity averaged back to cells.
func (s *Solver) patC2(lo, hi int) {
	m := s.M
	pvc := s.Diag.PVCell
	pvv := s.Diag.PVVertex
	for c := lo; c < hi; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += s.kiteOnCell[base+j] * pvv[m.VerticesOnCell[base+j]]
		}
		pvc[c] = acc
	}
}

// patH2 (cell <- vertices): relative vorticity averaged to cells.
func (s *Solver) patH2(lo, hi int) {
	m := s.M
	vc := s.Diag.VorticityCell
	vv := s.Diag.Vorticity
	for c := lo; c < hi; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += s.kiteOnCell[base+j] * vv[m.VerticesOnCell[base+j]]
		}
		vc[c] = acc
	}
}

// patH1 (edge <- 2 vertices): potential vorticity at edges.
func (s *Solver) patH1(lo, hi int) {
	m := s.M
	pve := s.Diag.PVEdge
	pvv := s.Diag.PVVertex
	for e := lo; e < hi; e++ {
		v1 := m.VerticesOnEdge[2*e]
		v2 := m.VerticesOnEdge[2*e+1]
		pve[e] = 0.5 * (pvv[v1] + pvv[v2])
	}
}

// patB2 (edge <- vertices + cells): anticipated potential vorticity method
// (APVM) upwinding correction of pv_edge.
func (s *Solver) patB2(lo, hi int) {
	if s.Cfg.APVM == 0 {
		return
	}
	m := s.M
	pve := s.Diag.PVEdge
	pvv := s.Diag.PVVertex
	pvc := s.Diag.PVCell
	u := s.cur.U
	v := s.Diag.V
	coef := s.Cfg.APVM * s.Cfg.Dt
	for e := lo; e < hi; e++ {
		v1 := m.VerticesOnEdge[2*e]
		v2 := m.VerticesOnEdge[2*e+1]
		c1 := m.CellsOnEdge[2*e]
		c2 := m.CellsOnEdge[2*e+1]
		gradPVt := (pvv[v2] - pvv[v1]) / m.DvEdge[e]
		gradPVn := (pvc[c2] - pvc[c1]) / m.DcEdge[e]
		pve[e] -= coef * (v[e]*gradPVt + u[e]*gradPVn)
	}
}

// patA1 (cell <- edges): thickness tendency, minus the divergence of the
// thickness flux F = h_edge * u.
func (s *Solver) patA1(lo, hi int) {
	m := s.M
	u := s.cur.U
	he := s.Diag.HEdge
	th := s.Tend.H
	for c := lo; c < hi; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		acc := 0.0
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			acc += s.signCell[base+j] * m.DvEdge[e] * he[e] * u[e]
		}
		th[c] = -acc / m.AreaCell[c]
	}
}

// patB1 (edge <- wide mixed stencil): momentum tendency in vector-invariant
// form, tend_u = q F_perp - grad(K + g(h+b)).
func (s *Solver) patB1(lo, hi int) {
	if s.Cfg.AdvectionOnly {
		tu := s.Tend.U
		for e := lo; e < hi; e++ {
			tu[e] = 0
		}
		return
	}
	m := s.M
	u := s.cur.U
	h := s.cur.H
	he := s.Diag.HEdge
	ke := s.Diag.KE
	pve := s.Diag.PVEdge
	tu := s.Tend.U
	g := s.Cfg.Gravity
	b := s.B
	for e := lo; e < hi; e++ {
		base := e * mesh.MaxEdgesOnEdge
		n := int(m.NEdgesOnEdge[e])
		q := 0.0
		for j := 0; j < n; j++ {
			eoe := m.EdgesOnEdge[base+j]
			workPV := 0.5 * (pve[e] + pve[eoe])
			q += m.WeightsOnEdge[base+j] * u[eoe] * he[eoe] * workPV
		}
		c1 := m.CellsOnEdge[2*e]
		c2 := m.CellsOnEdge[2*e+1]
		grad := (ke[c2] - ke[c1] + g*(h[c2]+b[c2]-h[c1]-b[c1])) / m.DcEdge[e]
		tu[e] = q - grad
	}
	if nu := s.Cfg.Viscosity; nu != 0 {
		div := s.Diag.Divergence
		vort := s.Diag.Vorticity
		for e := lo; e < hi; e++ {
			c1 := m.CellsOnEdge[2*e]
			c2 := m.CellsOnEdge[2*e+1]
			v1 := m.VerticesOnEdge[2*e]
			v2 := m.VerticesOnEdge[2*e+1]
			tu[e] += nu * ((div[c2]-div[c1])/m.DcEdge[e] - (vort[v2]-vort[v1])/m.DvEdge[e])
		}
	}
}

// patX1 (local, edges): the enforce_boundary_edge slot. The global sphere
// has no boundary edges, so the MPAS masking is the identity; the optional
// Rayleigh friction extension damps u locally here.
func (s *Solver) patX1(lo, hi int) {
	r := s.Cfg.RayleighFriction
	if r == 0 {
		return
	}
	u := s.cur.U
	tu := s.Tend.U
	for e := lo; e < hi; e++ {
		tu[e] -= r * u[e]
	}
}

// patX2/patX3 (local): provisional substep state, provis = state + a_k*tend.
func (s *Solver) patX2(lo, hi int) {
	a := s.rkA[s.stage]
	h0 := s.State.H
	th := s.Tend.H
	hp := s.Provis.H
	for c := lo; c < hi; c++ {
		hp[c] = h0[c] + a*th[c]
	}
}

func (s *Solver) patX3(lo, hi int) {
	a := s.rkA[s.stage]
	u0 := s.State.U
	tu := s.Tend.U
	up := s.Provis.U
	for e := lo; e < hi; e++ {
		up[e] = u0[e] + a*tu[e]
	}
}

// patX4/patX5 (local): accumulate the RK-4 weighted tendency sum.
func (s *Solver) patX4(lo, hi int) {
	b := s.rkB[s.stage]
	th := s.Tend.H
	hn := s.next.H
	for c := lo; c < hi; c++ {
		hn[c] += b * th[c]
	}
}

func (s *Solver) patX5(lo, hi int) {
	b := s.rkB[s.stage]
	tu := s.Tend.U
	un := s.next.U
	for e := lo; e < hi; e++ {
		un[e] += b * tu[e]
	}
}

// patA4 (cell <- edges): Perot reconstruction of the cell-centered velocity
// vector from edge normal velocities,
//
//	V_c = (1/A_c) * sum_e dv_e * u_out_e * (x_e - x_c),
//
// with u_out the outward normal component and positions in physical meters.
func (s *Solver) patA4(lo, hi int) {
	m := s.M
	u := s.cur.U
	r := m.Radius
	rx, ry, rz := s.Recon.X, s.Recon.Y, s.Recon.Z
	for c := lo; c < hi; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		xc := m.XCell[c]
		var ax, ay, az float64
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			w := s.signCell[base+j] * m.DvEdge[e] * u[e] * r
			ax += w * (m.XEdge[e].X - xc.X)
			ay += w * (m.XEdge[e].Y - xc.Y)
			az += w * (m.XEdge[e].Z - xc.Z)
		}
		inv := 1 / m.AreaCell[c]
		rx[c] = ax * inv
		ry[c] = ay * inv
		rz[c] = az * inv
	}
}

// patX6 (local, cells): project the Cartesian reconstruction onto local
// east/north to obtain zonal and meridional winds.
func (s *Solver) patX6(lo, hi int) {
	rx, ry, rz := s.Recon.X, s.Recon.Y, s.Recon.Z
	zo, me := s.Recon.Zonal, s.Recon.Meridional
	for c := lo; c < hi; c++ {
		e := s.eastCell[c]
		n := s.northCell[c]
		zo[c] = rx[c]*e.X + ry[c]*e.Y + rz[c]*e.Z
		me[c] = rx[c]*n.X + ry[c]*n.Y + rz[c]*n.Z
	}
}
