package sw_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/sw"
	"repro/internal/testcases"
)

var meshCache = map[int]*mesh.Mesh{}

func testMesh(t testing.TB, level int) *mesh.Mesh {
	if m, ok := meshCache[level]; ok {
		return m
	}
	m, err := mesh.Build(level, mesh.Options{LloydIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	meshCache[level] = m
	return m
}

func newTC2Solver(t testing.TB, level int) *sw.Solver {
	m := testMesh(t, level)
	s, err := sw.NewSolver(m, sw.DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	testcases.SetupTC2(s)
	return s
}

func relDiff(a, b []float64) float64 {
	maxd, scale := 0.0, 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > maxd {
			maxd = d
		}
		if v := math.Abs(a[i]); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		return maxd
	}
	return maxd / scale
}

func TestConfigValidate(t *testing.T) {
	m := testMesh(t, 2)
	good := sw.DefaultConfig(m)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Dt = 0
	if _, err := sw.NewSolver(m, bad); err == nil {
		t.Error("zero dt accepted")
	}
	bad = good
	bad.Gravity = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative gravity accepted")
	}
	bad = good
	bad.APVM = 2
	if err := bad.Validate(); err == nil {
		t.Error("APVM=2 accepted")
	}
}

func TestStableDtScalesWithResolution(t *testing.T) {
	d3 := sw.StableDt(testMesh(t, 3))
	d4 := sw.StableDt(testMesh(t, 4))
	if d3 <= 0 || d4 <= 0 {
		t.Fatal("non-positive dt")
	}
	if r := d3 / d4; r < 1.8 || r > 2.2 {
		t.Errorf("dt ratio between levels = %v, want ~2", r)
	}
}

func TestKernelStructureMatchesTable1(t *testing.T) {
	s := newTC2Solver(t, 2)
	ks := s.Kernels()
	if len(ks) != 6 {
		t.Fatalf("%d kernels, want 6", len(ks))
	}
	for _, k := range ks {
		want := 0
		for _, ins := range pattern.KernelInstances(k.Name) {
			if !ins.Optional {
				want++
			}
		}
		if len(k.Patterns) != want {
			t.Errorf("kernel %s has %d patterns, want %d (default config)", k.Name, len(k.Patterns), want)
		}
		for _, p := range k.Patterns {
			if p.Info.Kernel != k.Name {
				t.Errorf("pattern %s in wrong kernel %s", p.Info.ID, k.Name)
			}
			if p.N <= 0 || p.Run == nil {
				t.Errorf("pattern %s not executable", p.Info.ID)
			}
		}
	}
	if s.PatternByID("B1") == nil || s.PatternByID("X6") == nil {
		t.Error("PatternByID lookup failed")
	}
	if s.PatternByID("C1") != nil {
		t.Error("optional C1 present under default config")
	}
}

func TestHighOrderConfigIncludesC1D2(t *testing.T) {
	m := testMesh(t, 2)
	cfg := sw.DefaultConfig(m)
	cfg.HighOrderThickness = true
	s, err := sw.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.PatternByID("C1") == nil || s.PatternByID("D2") == nil {
		t.Fatal("high-order patterns missing")
	}
	if s.PatternByID("D1") != nil {
		t.Error("D1 should be replaced by D2 in high-order mode")
	}
}

func TestTC2RemainsSteady(t *testing.T) {
	s := newTC2Solver(t, 4)
	h0 := append([]float64(nil), s.State.H...)
	steps := int(testcases.Day / s.Cfg.Dt / 2) // half a day
	s.Run(steps)
	norms := testcases.HeightNorms(s.M, s.State.H, h0)
	if norms.L2 > 2e-3 {
		t.Errorf("TC2 l2 height error %v after half a day", norms.L2)
	}
	if norms.LInf > 5e-3 {
		t.Errorf("TC2 linf height error %v", norms.LInf)
	}
}

func TestMassConservedToRoundoff(t *testing.T) {
	m := testMesh(t, 3)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC5(s)
	m0 := s.ComputeInvariants().Mass
	s.Run(20)
	m1 := s.ComputeInvariants().Mass
	if rel := math.Abs(m1-m0) / m0; rel > 1e-13 {
		t.Errorf("mass drift %v", rel)
	}
}

func TestEnergyEnstrophyDriftSmall(t *testing.T) {
	s := newTC2Solver(t, 3)
	i0 := s.ComputeInvariants()
	s.Run(50)
	i1 := s.ComputeInvariants()
	if rel := math.Abs(i1.TotalEnergy-i0.TotalEnergy) / i0.TotalEnergy; rel > 1e-7 {
		t.Errorf("energy drift %v", rel)
	}
	if rel := math.Abs(i1.PotentialEnstrophy-i0.PotentialEnstrophy) / i0.PotentialEnstrophy; rel > 1e-4 {
		t.Errorf("enstrophy drift %v", rel)
	}
}

func TestGatherMatchesScatterReference(t *testing.T) {
	// The paper's correctness claim: refactored (gather) kernels agree with
	// the original (scatter) loops within machine precision.
	s := newTC2Solver(t, 3)
	s.Run(3) // some evolution so fields are nontrivial

	refD := sw.NewDiagnostics(s.M)
	s.ReferenceDiagnostics(s.State, refD)
	d := s.Diag
	checks := []struct {
		name     string
		got, ref []float64
	}{
		{"h_edge", d.HEdge, refD.HEdge},
		{"vorticity", d.Vorticity, refD.Vorticity},
		{"divergence", d.Divergence, refD.Divergence},
		{"ke", d.KE, refD.KE},
		{"v", d.V, refD.V},
		{"h_vertex", d.HVertex, refD.HVertex},
		{"pv_vertex", d.PVVertex, refD.PVVertex},
		{"pv_cell", d.PVCell, refD.PVCell},
		{"vorticity_cell", d.VorticityCell, refD.VorticityCell},
		{"pv_edge", d.PVEdge, refD.PVEdge},
	}
	for _, c := range checks {
		if r := relDiff(c.got, c.ref); r > 1e-11 {
			t.Errorf("%s: gather vs scatter rel diff %v", c.name, r)
		}
	}

	refT := sw.NewTendencies(s.M)
	s.ReferenceTend(s.State, refD, refT)
	td := sw.NewTendencies(s.M)
	// Recompute tendencies for current state through the pattern kernels.
	s.Tend.H, td.H = td.H, s.Tend.H
	s.Tend.U, td.U = td.U, s.Tend.U
	s.KernelByName(pattern.KernelComputeTend).Patterns[0].Run(0, s.M.NCells)
	s.KernelByName(pattern.KernelComputeTend).Patterns[1].Run(0, s.M.NEdges)
	if r := relDiff(s.Tend.H, refT.H); r > 1e-11 {
		t.Errorf("tend_h: gather vs scatter rel diff %v", r)
	}
	if r := relDiff(s.Tend.U, refT.U); r > 1e-11 {
		t.Errorf("tend_u: gather vs scatter rel diff %v", r)
	}
}

func TestPoolRunnerBitwiseEqualsSerial(t *testing.T) {
	// Parallel chunking does not change the per-element arithmetic, so the
	// threaded run must be bitwise identical to the serial one.
	m := testMesh(t, 3)
	mkRun := func(r sw.Runner) *sw.Solver {
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		s.Runner = r
		testcases.SetupTC5(s)
		s.Run(5)
		return s
	}
	serial := mkRun(sw.SerialRunner{})
	pool := par.NewPool(4)
	defer pool.Close()
	threaded := mkRun(sw.PoolRunner{Pool: pool})
	perLoop := mkRun(sw.PerLoopRunner{Pool: pool})
	for c := range serial.State.H {
		if serial.State.H[c] != threaded.State.H[c] {
			t.Fatalf("PoolRunner H differs at cell %d", c)
		}
		if serial.State.H[c] != perLoop.State.H[c] {
			t.Fatalf("PerLoopRunner H differs at cell %d", c)
		}
	}
	for e := range serial.State.U {
		if serial.State.U[e] != threaded.State.U[e] {
			t.Fatalf("PoolRunner U differs at edge %d", e)
		}
	}
}

func TestTC5StableOneDay(t *testing.T) {
	m := testMesh(t, 3)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC5(s)
	steps := int(testcases.Day / s.Cfg.Dt)
	s.Run(steps)
	inv := s.ComputeInvariants()
	if math.IsNaN(inv.TotalEnergy) || inv.MaxSpeed > 150 || inv.MinH < 0 {
		t.Errorf("TC5 unstable: %+v", inv)
	}
	// The mountain forces the flow: the state must have evolved.
	if inv.MaxSpeed < 20 {
		t.Errorf("TC5 suspiciously quiet: max speed %v", inv.MaxSpeed)
	}
}

func TestTC6StableAndWaveMoves(t *testing.T) {
	m := testMesh(t, 3)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC6(s)
	h0 := append([]float64(nil), s.State.H...)
	s.Run(40)
	inv := s.ComputeInvariants()
	if math.IsNaN(inv.TotalEnergy) || inv.MinH <= 0 {
		t.Fatalf("TC6 unstable: %+v", inv)
	}
	// The Rossby-Haurwitz wave translates, so h changes.
	if relDiff(s.State.H, h0) < 1e-6 {
		t.Error("TC6 did not evolve")
	}
}

func TestHighOrderThicknessStableAndConservative(t *testing.T) {
	m := testMesh(t, 3)
	cfg := sw.DefaultConfig(m)
	cfg.HighOrderThickness = true
	s, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC2(s)
	h0 := append([]float64(nil), s.State.H...)
	m0 := s.ComputeInvariants().Mass
	s.Run(30)
	if rel := math.Abs(s.ComputeInvariants().Mass-m0) / m0; rel > 1e-13 {
		t.Errorf("high-order mass drift %v", rel)
	}
	norms := testcases.HeightNorms(s.M, s.State.H, h0)
	if norms.L2 > 5e-3 {
		t.Errorf("high-order TC2 error %v", norms.L2)
	}
}

func TestRayleighFrictionDampsEnergy(t *testing.T) {
	m := testMesh(t, 3)
	cfg := sw.DefaultConfig(m)
	cfg.RayleighFriction = 1e-4
	s, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC6(s)
	e0 := s.ComputeInvariants().TotalEnergy
	s.Run(30)
	e1 := s.ComputeInvariants().TotalEnergy
	if e1 >= e0 {
		t.Errorf("friction did not damp energy: %v -> %v", e0, e1)
	}
}

func TestAPVMChangesSolution(t *testing.T) {
	m := testMesh(t, 3)
	run := func(apvm float64) []float64 {
		cfg := sw.DefaultConfig(m)
		cfg.APVM = apvm
		s, _ := sw.NewSolver(m, cfg)
		testcases.SetupTC6(s)
		s.Run(20)
		return append([]float64(nil), s.State.H...)
	}
	with := run(0.5)
	without := run(0)
	if relDiff(with, without) == 0 {
		t.Error("APVM upwinding has no effect")
	}
}

func TestReconstructionAccuracy(t *testing.T) {
	// For TC2's solid-body flow, the reconstructed zonal wind at cells must
	// match u0*cos(lat) and the meridional wind must be ~0.
	s := newTC2Solver(t, 4)
	m := s.M
	u0 := 2 * math.Pi * m.Radius / (12 * testcases.Day)
	maxErr := 0.0
	for c := 0; c < m.NCells; c++ {
		want := u0 * math.Cos(m.LatCell[c])
		if d := math.Abs(s.Recon.Zonal[c] - want); d > maxErr {
			maxErr = d
		}
		if d := math.Abs(s.Recon.Meridional[c]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr/u0 > 0.05 {
		t.Errorf("reconstruction max error %v of %v", maxErr, u0)
	}
}

func TestInvariantsFields(t *testing.T) {
	s := newTC2Solver(t, 2)
	inv := s.ComputeInvariants()
	if inv.Mass <= 0 || inv.TotalEnergy <= 0 || inv.PotentialEnstrophy <= 0 {
		t.Errorf("non-positive invariants: %+v", inv)
	}
	if inv.MinH > inv.MaxH || inv.MinH <= 0 {
		t.Errorf("bad h bounds: %+v", inv)
	}
	if inv.MaxSpeed <= 0 || inv.MaxSpeed > 100 {
		t.Errorf("bad max speed: %v", inv.MaxSpeed)
	}
}

func TestStateCloneCopy(t *testing.T) {
	m := testMesh(t, 2)
	s := sw.NewState(m)
	for i := range s.H {
		s.H[i] = float64(i)
	}
	c := s.Clone()
	c.H[0] = -1
	if s.H[0] == -1 {
		t.Error("Clone aliases storage")
	}
	s2 := sw.NewState(m)
	s2.CopyFrom(s)
	if s2.H[5] != 5 {
		t.Error("CopyFrom failed")
	}
}

func TestDeterministicSteps(t *testing.T) {
	// Two identical runs give identical trajectories.
	a := newTC2Solver(t, 3)
	b := newTC2Solver(t, 3)
	a.Run(10)
	b.Run(10)
	for i := range a.State.H {
		if a.State.H[i] != b.State.H[i] {
			t.Fatal("non-deterministic run")
		}
	}
}

func BenchmarkStepSerial(b *testing.B) {
	for _, level := range []int{3, 4, 5} {
		m := testMesh(b, level)
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		testcases.SetupTC5(s)
		b.Run(map[int]string{3: "642cells", 4: "2562cells", 5: "10242cells"}[level], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

func BenchmarkStepPlan(b *testing.B) {
	for _, level := range []int{3, 4, 5} {
		m := testMesh(b, level)
		pool := par.NewPool(0)
		defer pool.Close()
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		testcases.SetupTC5(s)
		s.Runner = sw.MustNewPlanRunner(s, pool)
		b.Run(map[int]string{3: "642cells", 4: "2562cells", 5: "10242cells"}[level], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

func BenchmarkStepTaskPlan(b *testing.B) {
	for _, level := range []int{3, 4, 5} {
		m := testMesh(b, level)
		pool := par.NewPool(0)
		defer pool.Close()
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		testcases.SetupTC5(s)
		s.Runner = sw.MustNewTaskPlanRunner(s, pool)
		b.Run(map[int]string{3: "642cells", 4: "2562cells", 5: "10242cells"}[level], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkStepPlanWorkers / BenchmarkStepTaskPlanWorkers sweep the worker
// count at the 10242-cell rung so the benchmark JSON records the parallel
// efficiency of barrier vs task-graph scheduling side by side.
func BenchmarkStepPlanWorkers(b *testing.B) {
	for _, nw := range []int{1, 2, 4, 8} {
		m := testMesh(b, 5)
		pool := par.NewPool(nw)
		defer pool.Close()
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		testcases.SetupTC5(s)
		s.Runner = sw.MustNewPlanRunner(s, pool)
		b.Run(fmt.Sprintf("w%d", nw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

func BenchmarkStepTaskPlanWorkers(b *testing.B) {
	for _, nw := range []int{1, 2, 4, 8} {
		m := testMesh(b, 5)
		pool := par.NewPool(nw)
		defer pool.Close()
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		testcases.SetupTC5(s)
		s.Runner = sw.MustNewTaskPlanRunner(s, pool)
		b.Run(fmt.Sprintf("w%d", nw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

func BenchmarkStepFast32(b *testing.B) {
	for _, level := range []int{3, 4, 5} {
		m := testMesh(b, level)
		pool := par.NewPool(0)
		defer pool.Close()
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		testcases.SetupTC5(s)
		s.Runner = sw.MustNewFast32Runner(s, pool)
		b.Run(map[int]string{3: "642cells", 4: "2562cells", 5: "10242cells"}[level], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

func BenchmarkStepThreaded(b *testing.B) {
	m := testMesh(b, 5)
	pool := par.NewPool(0)
	defer pool.Close()
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	s.Runner = sw.PoolRunner{Pool: pool}
	testcases.SetupTC5(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// newTestPool returns a 4-worker pool cleaned up with the test.
func newTestPool(t testing.TB) *par.Pool {
	p := par.NewPool(4)
	t.Cleanup(p.Close)
	return p
}
