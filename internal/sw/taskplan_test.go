package sw

import (
	"fmt"
	"testing"

	"repro/internal/par"
)

// TestTaskPlanBitwise checks that task-graph execution reproduces the serial
// RK-4 trajectory bitwise across the configuration matrix — the same
// guarantee TestPlanBitwise pins for the barrier schedule, now under
// work-stealing point-to-point scheduling, with and without a PostSubstep
// hook observing the substates.
func TestTaskPlanBitwise(t *testing.T) {
	m := planTestMesh(t, 3)
	const steps = 5
	for name, cfg := range planConfigs(m) {
		for _, nw := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", name, nw), func(t *testing.T) {
				ref := planTestSolver(t, m, cfg, 11)
				var refHooks []string
				ref.PostSubstep = func(stage int, st *State) {
					refHooks = append(refHooks, fmt.Sprintf("%d:%x:%x", stage, st.H[1], st.U[1]))
				}

				pool := par.NewPool(nw)
				defer pool.Close()
				ts := planTestSolver(t, m, cfg, 11)
				ts.Runner = MustNewTaskPlanRunner(ts, pool)
				var taskHooks []string
				ts.PostSubstep = func(stage int, st *State) {
					taskHooks = append(taskHooks, fmt.Sprintf("%d:%x:%x", stage, st.H[1], st.U[1]))
				}

				for i := 0; i < steps; i++ {
					ref.Step()
					ts.Step()
					requireSame(t, fmt.Sprintf("step %d h", i), ts.State.H, ref.State.H)
					requireSame(t, fmt.Sprintf("step %d u", i), ts.State.U, ref.State.U)
				}
				requireSame(t, "ke", ts.Diag.KE, ref.Diag.KE)
				requireSame(t, "h_vertex", ts.Diag.HVertex, ref.Diag.HVertex)
				requireSame(t, "pv_vertex", ts.Diag.PVVertex, ref.Diag.PVVertex)
				if len(refHooks) != 4*steps {
					t.Fatalf("reference hook fired %d times, want %d", len(refHooks), 4*steps)
				}
				for i := range refHooks {
					if taskHooks[i] != refHooks[i] {
						t.Fatalf("hook observation %d differs: %s vs %s", i, taskHooks[i], refHooks[i])
					}
				}
			})
		}
	}
}

// TestTaskPlanMatchesPlanBitwise is the tentpole's direct claim: the task
// graph and the level-barrier schedule execute the exact same tasks over the
// exact same ranges, so their trajectories are identical to the last bit —
// including at worker counts where stealing actually interleaves.
func TestTaskPlanMatchesPlanBitwise(t *testing.T) {
	m := planTestMesh(t, 3)
	cfg := planConfigs(m)["kitchen_sink"]
	for _, nw := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("w%d", nw), func(t *testing.T) {
			pool := par.NewPool(nw)
			defer pool.Close()
			ps := planTestSolver(t, m, cfg, 23)
			ps.Runner = MustNewPlanRunner(ps, pool)

			tpool := par.NewPool(nw)
			defer tpool.Close()
			ts := planTestSolver(t, m, cfg, 23)
			ts.Runner = MustNewTaskPlanRunner(ts, tpool)

			for i := 0; i < 8; i++ {
				ps.Step()
				ts.Step()
				requireSame(t, fmt.Sprintf("step %d h", i), ts.State.H, ps.State.H)
				requireSame(t, fmt.Sprintf("step %d u", i), ts.State.U, ps.State.U)
			}
		})
	}
}

// TestTaskPlanGraphShape pins the compiled graph's structural accounting:
// one task per non-empty (op, worker-range) pair plus one per serial slot,
// root tasks only at true program entry points, and a complete execution
// (every task runs exactly once per step).
func TestTaskPlanGraphShape(t *testing.T) {
	m := planTestMesh(t, 2)
	cfg := planConfigs(m)["default"]
	for _, nw := range []int{1, 4} {
		pool := par.NewPool(nw)
		s := planTestSolver(t, m, cfg, 7)
		r := MustNewTaskPlanRunner(s, pool)
		if !r.TaskMode() {
			t.Fatalf("nw=%d: runner not in task mode", nw)
		}
		g := r.TaskGraph()
		want := 0
		for _, op := range r.stepPlan.ops {
			if op.hook || op.post || op.wait {
				want++
				continue
			}
			for _, rg := range op.ranges {
				if rg[0] < rg[1] {
					want++
				}
			}
		}
		if g.Tasks() != want {
			t.Errorf("nw=%d: graph has %d tasks, schedule implies %d", nw, g.Tasks(), want)
		}
		if g.Edges() == 0 || g.Seeds() == 0 || g.Seeds() >= g.Tasks() {
			t.Errorf("nw=%d: degenerate graph: %d edges, %d seeds of %d tasks",
				nw, g.Edges(), g.Seeds(), g.Tasks())
		}
		s.Runner = r
		s.Step()
		s.Step()
		if got := g.TasksExecuted(); got != int64(2*g.Tasks()) {
			t.Errorf("nw=%d: executed %d tasks over 2 steps, want %d", nw, got, 2*g.Tasks())
		}
		pool.Close()
	}
}

// TestTaskPlanVerifierCatchesMissingEdges feeds the independent verifier a
// graph with the right tasks but NO dependency edges: it must reject it.
// This is the analogue of TestPlanScheduleBarrierNecessity — evidence the
// compile-time check has teeth.
func TestTaskPlanVerifierCatchesMissingEdges(t *testing.T) {
	m := planTestMesh(t, 2)
	s := planTestSolver(t, m, planConfigs(m)["default"], 7)
	pool := par.NewPool(2)
	defer pool.Close()
	r := MustNewTaskPlanRunner(s, pool)
	_, nodes, err := r.buildTaskGraph(r.stepPlan)
	if err != nil {
		t.Fatal(err)
	}
	bare := par.NewTaskGraph(pool)
	for i := 0; i < r.tasks.Tasks(); i++ {
		bare.AddTask(0, func() {})
	}
	if err := bare.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := verifyTaskGraph(r.stepPlan, bare, nodes, pool.Workers()); err == nil {
		t.Fatal("verifier accepted an edgeless task graph")
	}
}

// TestTaskPlanStepAllocFree: the steady-state claim — replaying the frozen
// graph allocates nothing, at any worker count.
func TestTaskPlanStepAllocFree(t *testing.T) {
	m := planTestMesh(t, 2)
	cfg := planConfigs(m)["default"]
	for _, nw := range []int{1, 4} {
		pool := par.NewPool(nw)
		s := planTestSolver(t, m, cfg, 3)
		s.Runner = MustNewTaskPlanRunner(s, pool)
		s.Step() // warm-up
		if n := testing.AllocsPerRun(5, s.Step); n != 0 {
			t.Errorf("nw=%d: task-plan step allocates %v times, want 0", nw, n)
		}
		pool.Close()
	}
}

// TestTaskPlanRace drives the work-stealing runtime hard under -race: many
// workers on a small mesh (tiny tiles, so steals and parks are frequent),
// the full kitchen-sink configuration, and an installed hook.
func TestTaskPlanRace(t *testing.T) {
	m := planTestMesh(t, 2)
	cfg := planConfigs(m)["kitchen_sink"]
	pool := par.NewPool(4)
	defer pool.Close()
	s := planTestSolver(t, m, cfg, 5)
	s.Runner = MustNewTaskPlanRunner(s, pool)
	hooks := 0
	s.PostSubstep = func(stage int, st *State) { hooks++ }
	s.Run(10)
	if hooks != 40 {
		t.Fatalf("hook fired %d times, want 40", hooks)
	}
	ref := planTestSolver(t, m, cfg, 5)
	ref.Run(10)
	requireSame(t, "h", s.State.H, ref.State.H)
	requireSame(t, "u", s.State.U, ref.State.U)
}

// TestTaskPlanRunnerSharesPlanPaths: non-step paths (RunKernel via Init) and
// the compile counter behave exactly as the barrier runner's.
func TestTaskPlanRunnerSharesPlanPaths(t *testing.T) {
	m := planTestMesh(t, 2)
	s := planTestSolver(t, m, planConfigs(m)["default"], 9)
	before := PlanCompileCount()
	r := MustNewTaskPlanRunner(s, nil)
	if PlanCompileCount() != before+1 {
		t.Errorf("task-plan compile performed %d plan compilations, want 1", PlanCompileCount()-before)
	}
	s.Runner = r
	s.Init() // runs the kernel plans, not the task graph
	if got := r.TaskGraph().TasksExecuted(); got != 0 {
		t.Errorf("Init executed %d step tasks, want 0", got)
	}
	s.Step()
	if got := r.TaskGraph().TasksExecuted(); got == 0 {
		t.Error("Step did not run the task graph")
	}
}
