package sw

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/par"
)

// ensembleTestSolver builds a small TC5-like solver without importing
// testcases (internal/sw cannot): solid-body-rotation thickness with a
// deterministic jitter, the same shape the conformance random cases use.
func ensembleTestSolver(t testing.TB, m *mesh.Mesh) *Solver {
	t.Helper()
	s, err := NewSolver(m, DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.NCells; c++ {
		s.State.H[c] = 5000 + 500*math.Cos(m.LatCell[c])
	}
	for e := 0; e < m.NEdges; e++ {
		s.State.U[e] = 5 * math.Sin(float64(e))
	}
	s.Init()
	return s
}

// TestEnsembleMatchesIndependentRuns: every member of a round-robin-stepped
// ensemble must land bitwise on the state an independent solver run of the
// same perturbed initial condition reaches — member multiplexing through
// one solver is pure state swapping, not a different integration.
func TestEnsembleMatchesIndependentRuns(t *testing.T) {
	m := mesh.MustBuild(2, mesh.Options{})
	const (
		k     = 3
		steps = 6
		seed  = 42
		eps   = 1e-6
	)

	s := ensembleTestSolver(t, m)
	s.Runner = SerialRunner{}
	e, err := NewEnsemble(s, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		e.PerturbH(i, seed, eps)
	}
	// Round-robin in chunks of 2 to exercise the activate/stash path.
	for round := 0; round < steps/2; round++ {
		for i := 0; i < k; i++ {
			if err := e.WithMember(i, func(sv *Solver) error {
				sv.Run(2)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	for i := 0; i < k; i++ {
		ref := ensembleTestSolver(t, m)
		ref.Runner = SerialRunner{}
		re, err := NewEnsemble(ref, k)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			re.PerturbH(i, seed, eps)
		}
		// Run only member i, uninterrupted.
		if err := re.WithMember(i, func(sv *Solver) error {
			sv.Run(steps)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		got, want := e.Member(i), re.Member(i)
		if got.StepCount != steps || want.StepCount != steps {
			t.Fatalf("member %d steps %d/%d, want %d", i, got.StepCount, want.StepCount, steps)
		}
		for c := range got.State.H {
			if got.State.H[c] != want.State.H[c] {
				t.Fatalf("member %d h[%d]: round-robin %v != independent %v", i, c, got.State.H[c], want.State.H[c])
			}
		}
		for ed := range got.State.U {
			if got.State.U[ed] != want.State.U[ed] {
				t.Fatalf("member %d u[%d]: round-robin %v != independent %v", i, ed, got.State.U[ed], want.State.U[ed])
			}
		}
	}

	// Perturbed members genuinely diverged from member 0.
	for i := 1; i < k; i++ {
		if e.Member(i).State.H[0] == e.Member(0).State.H[0] {
			t.Errorf("member %d never diverged from member 0 — perturbation lost", i)
		}
	}
}

// TestEnsembleSharesOneCompiledPlan is the batch-admission guarantee: an
// 8-member ensemble in plan mode compiles exactly ONE execution plan, and
// steady-state member stepping performs zero allocations — the shared
// mesh/plan/solver is reused, never rebuilt.
func TestEnsembleSharesOneCompiledPlan(t *testing.T) {
	m := mesh.MustBuild(2, mesh.Options{})
	const k = 8

	before := PlanCompileCount()
	s := ensembleTestSolver(t, m)
	pool := par.NewPool(2)
	defer pool.Close()
	r, err := NewPlanRunner(s, pool)
	if err != nil {
		t.Fatal(err)
	}
	s.Runner = r
	e, err := NewEnsemble(s, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		e.PerturbH(i, 7, 1e-8)
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < k; i++ {
			if err := e.WithMember(i, func(sv *Solver) error {
				sv.Run(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := PlanCompileCount() - before; got != 1 {
		t.Fatalf("ensemble of %d members compiled %d plans, want exactly 1", k, got)
	}

	// Steady-state stepping of a resident member allocates nothing; the
	// member swap itself is copy-only (state clone buffers preexist).
	allocs := testing.AllocsPerRun(10, func() {
		if err := e.WithMember(0, func(sv *Solver) error {
			sv.Run(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("resident member step allocates %v objects/op, want 0", allocs)
	}
}

// TestEnsembleCheckpointRoundTrip: write → read must restore every member
// exactly, and resuming the read ensemble must land on the same final state
// as the uninterrupted one (the property cluster work stealing rides on).
func TestEnsembleCheckpointRoundTrip(t *testing.T) {
	m := mesh.MustBuild(2, mesh.Options{})
	const (
		k     = 3
		mid   = 3
		steps = 6
	)
	run := func(e *Ensemble, upTo int) {
		for {
			advanced := false
			for i := 0; i < k; i++ {
				n := upTo - e.StepOf(i)
				if n > 2 {
					n = 2
				}
				if n <= 0 {
					continue
				}
				advanced = true
				if err := e.WithMember(i, func(sv *Solver) error {
					sv.Run(n)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			if !advanced {
				return
			}
		}
	}

	mk := func() *Ensemble {
		s := ensembleTestSolver(t, m)
		s.Runner = SerialRunner{}
		e, err := NewEnsemble(s, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < k; i++ {
			e.PerturbH(i, 99, 1e-7)
		}
		return e
	}

	ref := mk()
	run(ref, steps)

	e := mk()
	run(e, mid)
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	resumed := mk() // fresh, unperturbed beyond construction — checkpoint overwrites
	if err := resumed.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if got := resumed.StepOf(i); got != mid {
			t.Fatalf("member %d restored at step %d, want %d", i, got, mid)
		}
	}
	run(resumed, steps)

	for i := 0; i < k; i++ {
		a, b := ref.Member(i), resumed.Member(i)
		for c := range a.State.H {
			if a.State.H[c] != b.State.H[c] {
				t.Fatalf("member %d h[%d]: resumed %v != uninterrupted %v", i, c, b.State.H[c], a.State.H[c])
			}
		}
	}

	// Member-count mismatch is rejected.
	s2 := ensembleTestSolver(t, m)
	s2.Runner = SerialRunner{}
	wrong, err := NewEnsemble(s2, k+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("reading a k-member checkpoint into a k+1 ensemble succeeded")
	}
}
