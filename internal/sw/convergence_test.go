package sw_test

import (
	"testing"

	"repro/internal/sw"
	"repro/internal/testcases"
)

// TestTC2Convergence verifies mesh convergence of the TRiSK discretization:
// the steady-state error of test case 2 must shrink monotonically under
// refinement. TRiSK on quasi-uniform SCVT meshes is known to converge
// between first and second order in l2(h) (the C-grid divergence/gradient
// pair is second order only on perfectly centroidal meshes), so we assert a
// per-level reduction factor of at least 1.7 and at most the theoretical 4.
func TestTC2Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-level convergence study")
	}
	const horizon = 6 * 3600.0 // fixed physical time
	var errs []float64
	for _, level := range []int{3, 4, 5} {
		m := testMesh(t, level)
		cfg := sw.DefaultConfig(m)
		s, err := sw.NewSolver(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		testcases.SetupTC2(s)
		h0 := append([]float64(nil), s.State.H...)
		s.Run(int(horizon / cfg.Dt))
		errs = append(errs, testcases.HeightNorms(m, s.State.H, h0).L2)
	}
	for i := 1; i < len(errs); i++ {
		ratio := errs[i-1] / errs[i]
		if ratio < 1.7 {
			t.Errorf("refinement %d: error ratio %.2f (errors %v) — no convergence", i, ratio, errs)
		}
		if ratio > 4.5 {
			t.Errorf("refinement %d: error ratio %.2f suspiciously super-convergent", i, ratio)
		}
	}
}
