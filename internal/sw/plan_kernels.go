package sw

// This file holds the compiled kernel variants the execution plan (plan.go)
// dispatches instead of the generic range kernels in kernels.go. Each variant
// is bitwise-identical to its original: the floating-point expression tree is
// unchanged (same literals, same left-to-right association), only the
// surrounding scaffolding differs —
//
//   - gathers run over the mesh's CSR image (mesh.PackCSR): row-pointer
//     spans into stride-1 int32 column arrays, in the identical j-order as
//     the strided originals, so reductions reassociate nothing;
//   - all loads and stores go through the unchecked views of unchecked.go —
//     the compiler cannot eliminate bounds checks on data-dependent gather
//     subscripts, so they are removed by construction instead, with safety
//     established by CSR pack-time index validation plus the array-shape
//     assertions at plan compile time (plan.go checkShapes);
//   - products of per-slot mesh constants (edge sign × edge length) are
//     hoisted into weight tables packed by the same row pointers (built in
//     plan.go buildWeights, which may use ordinary checked indexing);
//   - the current state is bound at compile time instead of read through
//     s.cur, because the plan never retargets mid-step,
//   - the RK substep/accumulate updates (X2..X5) are fused into the tendency
//     loops where the data flow proves the combined loop races with nothing.
//
// THIS FILE MUST STAY FREE OF SLICE INDEXING: bce_test.go recompiles the
// package with -d=ssa/check_bce and fails on any bounds check attributed
// here (scripts/ci.sh runs the same gate). Setup code that wants ordinary
// indexing belongs in plan.go.
//
// Every constructor below is marked //go:noinline. When the inliner copies a
// closure-returning function into its caller (stepSpecs), the copied closure
// body is generated after the inlining pass and the view accessors inside it
// stay as real calls — turning every load in the hot loops into a function
// call (~4x per-kernel slowdown, observed). Keeping the constructors out of
// line makes their closures compile through the normal path, where at/set
// inline to single load/store instructions.
//
// Equivalence is pinned by TestPlanBitwise across the configuration space.

// mkTendH compiles the fused thickness-tendency op for one RK stage:
// A1 (flux divergence), X4 (accumulate), and at stage 0 additionally X2 (the
// provisional update, legal there because stage 0 reads the accepted state)
// or at stage 3 the commit into State.H. The stage-0 form also absorbs the
// next.CopyFrom(State) initialization: hn = h0 + b*t instead of copy-then-add.
//
//go:noinline
func (r *PlanRunner) mkTendH(stage int) func(lo, hi int) {
	s := r.s
	a, b := s.rkA[stage&3], s.rkB[stage&3]
	st := s.Provis
	if stage == 0 {
		st = s.State
	}
	cp := vi32(r.csr.CellPtr)
	ce := vi32(r.csr.CellEdges)
	w := vf64(r.wA1)
	area := vf64(s.M.AreaCell)
	return func(lo, hi int) {
		u := vf64(st.U)
		he := vf64(s.Diag.HEdge)
		th := vf64(s.Tend.H)
		hn := vf64(s.next.H)
		h0 := vf64(s.State.H)
		hp := vf64(s.Provis.H)
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			acc := 0.0
			for j := ps; j < pe; j++ {
				e := int(ce.at(j))
				acc += w.at(j) * he.at(e) * u.at(e)
			}
			t := -acc / area.at(c)
			th.set(c, t)
			switch stage {
			case 0:
				hn.set(c, h0.at(c)+b*t)
				hp.set(c, h0.at(c)+a*t)
			case 3:
				h0.set(c, hn.at(c)+b*t)
			default:
				hn.set(c, hn.at(c)+b*t)
			}
		}
	}
}

// mkTendU compiles the fused momentum-tendency op for one RK stage: B1 (or
// its advection-only zeroing), the optional viscosity and Rayleigh-friction
// passes (X1), X5 (accumulate), and at stage 0 additionally X3 or at stage 3
// the commit into State.U. Sub-passes run in the original pattern order over
// the worker's own range, so fusion changes no result.
//
//go:noinline
func (r *PlanRunner) mkTendU(stage int) func(lo, hi int) {
	s := r.s
	m := s.M
	cfg := s.Cfg
	g := cfg.Gravity
	a, bw := s.rkA[stage&3], s.rkB[stage&3]
	st := s.Provis
	if stage == 0 {
		st = s.State
	}
	ep := vi32(r.csr.EdgePtr)
	eoe := vi32(r.csr.EdgeEdges)
	wts := vf64(r.csr.EdgeWeights)
	coe := vi32(m.CellsOnEdge)
	voe := vi32(m.VerticesOnEdge)
	dc := vf64(m.DcEdge)
	dv := vf64(m.DvEdge)
	return func(lo, hi int) {
		u := vf64(st.U)
		tu := vf64(s.Tend.U)
		if cfg.AdvectionOnly {
			for e := lo; e < hi; e++ {
				tu.set(e, 0)
			}
		} else {
			h := vf64(st.H)
			he := vf64(s.Diag.HEdge)
			ke := vf64(s.Diag.KE)
			pve := vf64(s.Diag.PVEdge)
			b := vf64(s.B)
			for e := lo; e < hi; e++ {
				ps, pend := int(ep.at(e)), int(ep.at(e+1))
				pe := pve.at(e)
				q := 0.0
				for j := ps; j < pend; j++ {
					k := int(eoe.at(j))
					workPV := 0.5 * (pe + pve.at(k))
					q += wts.at(j) * u.at(k) * he.at(k) * workPV
				}
				c1 := int(coe.at(2 * e))
				c2 := int(coe.at(2*e + 1))
				grad := (ke.at(c2) - ke.at(c1) + g*(h.at(c2)+b.at(c2)-h.at(c1)-b.at(c1))) / dc.at(e)
				tu.set(e, q-grad)
			}
			if nu := cfg.Viscosity; nu != 0 {
				div := vf64(s.Diag.Divergence)
				vort := vf64(s.Diag.Vorticity)
				for e := lo; e < hi; e++ {
					c1 := int(coe.at(2 * e))
					c2 := int(coe.at(2*e + 1))
					v1 := int(voe.at(2 * e))
					v2 := int(voe.at(2*e + 1))
					tu.set(e, tu.at(e)+nu*((div.at(c2)-div.at(c1))/dc.at(e)-(vort.at(v2)-vort.at(v1))/dv.at(e)))
				}
			}
		}
		if rf := cfg.RayleighFriction; rf != 0 {
			for e := lo; e < hi; e++ {
				tu.set(e, tu.at(e)-rf*u.at(e))
			}
		}
		un := vf64(s.next.U)
		switch stage {
		case 0:
			u0 := vf64(s.State.U)
			up := vf64(s.Provis.U)
			for e := lo; e < hi; e++ {
				t := tu.at(e)
				un.set(e, u0.at(e)+bw*t)
				up.set(e, u0.at(e)+a*t)
			}
		case 3:
			uo := vf64(s.State.U)
			for e := lo; e < hi; e++ {
				uo.set(e, un.at(e)+bw*tu.at(e))
			}
		default:
			for e := lo; e < hi; e++ {
				un.set(e, un.at(e)+bw*tu.at(e))
			}
		}
	}
}

// mkX2 / mkX3 compile the provisional-state updates for stages 1 and 2 (at
// stages 0 and 3 they are fused into the tendency ops). Unlike patX2/patX3
// they bind the RK coefficient at compile time instead of reading s.stage.
//
//go:noinline
func (r *PlanRunner) mkX2(stage int) func(lo, hi int) {
	s := r.s
	a := s.rkA[stage&3]
	return func(lo, hi int) {
		h0 := vf64(s.State.H)
		th := vf64(s.Tend.H)
		hp := vf64(s.Provis.H)
		for c := lo; c < hi; c++ {
			hp.set(c, h0.at(c)+a*th.at(c))
		}
	}
}

//go:noinline
func (r *PlanRunner) mkX3(stage int) func(lo, hi int) {
	s := r.s
	a := s.rkA[stage&3]
	return func(lo, hi int) {
		u0 := vf64(s.State.U)
		tu := vf64(s.Tend.U)
		up := vf64(s.Provis.U)
		for e := lo; e < hi; e++ {
			up.set(e, u0.at(e)+a*tu.at(e))
		}
	}
}

// --- compiled compute_solve_diagnostics variants -----------------------------
// Each binds the state the stage reads (Provis for stages 0..2, State for
// stage 3) at compile time; kernels that read only diagnostics reuse the
// originals from kernels.go.

//go:noinline
func (r *PlanRunner) cC1(st *State) func(lo, hi int) {
	s := r.s
	cp := vi32(r.csr.CellPtr)
	ce := vi32(r.csr.CellEdges)
	cc := vi32(r.csr.CellCells)
	dc := vf64(s.M.DcEdge)
	return func(lo, hi int) {
		h := vf64(st.H)
		d2 := vf64(s.Diag.D2fdx2Cell)
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			acc := 0.0
			for j := ps; j < pe; j++ {
				nb := int(cc.at(j))
				d := dc.at(int(ce.at(j)))
				acc += 2 * (h.at(nb) - h.at(c)) / (d * d)
			}
			d2.set(c, acc/float64(pe-ps))
		}
	}
}

//go:noinline
func (r *PlanRunner) cD1(st *State) func(lo, hi int) {
	s := r.s
	coe := vi32(s.M.CellsOnEdge)
	return func(lo, hi int) {
		h := vf64(st.H)
		he := vf64(s.Diag.HEdge)
		for e := lo; e < hi; e++ {
			c1 := int(coe.at(2 * e))
			c2 := int(coe.at(2*e + 1))
			he.set(e, 0.5*(h.at(c1)+h.at(c2)))
		}
	}
}

//go:noinline
func (r *PlanRunner) cD2(st *State) func(lo, hi int) {
	s := r.s
	coe := vi32(s.M.CellsOnEdge)
	dcv := vf64(s.M.DcEdge)
	return func(lo, hi int) {
		h := vf64(st.H)
		d2 := vf64(s.Diag.D2fdx2Cell)
		he := vf64(s.Diag.HEdge)
		for e := lo; e < hi; e++ {
			c1 := int(coe.at(2 * e))
			c2 := int(coe.at(2*e + 1))
			dc := dcv.at(e)
			he.set(e, 0.5*(h.at(c1)+h.at(c2))-dc*dc/12*0.5*(d2.at(c1)+d2.at(c2)))
		}
	}
}

//go:noinline
func (r *PlanRunner) cE(st *State) func(lo, hi int) {
	s := r.s
	w := vf64(r.wE)
	eov := vi32(s.M.EdgesOnVertex)
	at := vf64(s.M.AreaTriangle)
	return func(lo, hi int) {
		u := vf64(st.U)
		vort := vf64(s.Diag.Vorticity)
		for v := lo; v < hi; v++ {
			base := v * 3 // mesh.VertexDegree
			circ := 0.0
			for j := base; j < base+3; j++ {
				circ += w.at(j) * u.at(int(eov.at(j)))
			}
			vort.set(v, circ/at.at(v))
		}
	}
}

//go:noinline
func (r *PlanRunner) cA2(st *State) func(lo, hi int) {
	s := r.s
	cp := vi32(r.csr.CellPtr)
	ce := vi32(r.csr.CellEdges)
	w := vf64(r.wA1)
	area := vf64(s.M.AreaCell)
	return func(lo, hi int) {
		u := vf64(st.U)
		div := vf64(s.Diag.Divergence)
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			acc := 0.0
			for j := ps; j < pe; j++ {
				acc += w.at(j) * u.at(int(ce.at(j)))
			}
			div.set(c, acc/area.at(c))
		}
	}
}

//go:noinline
func (r *PlanRunner) cA3(st *State) func(lo, hi int) {
	s := r.s
	cp := vi32(r.csr.CellPtr)
	ce := vi32(r.csr.CellEdges)
	w := vf64(r.wA3)
	area := vf64(s.M.AreaCell)
	return func(lo, hi int) {
		u := vf64(st.U)
		ke := vf64(s.Diag.KE)
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			acc := 0.0
			for j := ps; j < pe; j++ {
				ue := u.at(int(ce.at(j)))
				acc += w.at(j) * ue * ue
			}
			ke.set(c, acc/area.at(c))
		}
	}
}

//go:noinline
func (r *PlanRunner) cF(st *State) func(lo, hi int) {
	s := r.s
	ep := vi32(r.csr.EdgePtr)
	eoe := vi32(r.csr.EdgeEdges)
	wts := vf64(r.csr.EdgeWeights)
	return func(lo, hi int) {
		u := vf64(st.U)
		v := vf64(s.Diag.V)
		for e := lo; e < hi; e++ {
			ps, pe := int(ep.at(e)), int(ep.at(e+1))
			acc := 0.0
			for j := ps; j < pe; j++ {
				acc += wts.at(j) * u.at(int(eoe.at(j)))
			}
			v.set(e, acc)
		}
	}
}

//go:noinline
func (r *PlanRunner) cG(st *State) func(lo, hi int) {
	s := r.s
	kv := vf64(s.M.KiteAreasOnVertex)
	cv := vi32(s.M.CellsOnVertex)
	at := vf64(s.M.AreaTriangle)
	fv := vf64(s.M.FVertex)
	return func(lo, hi int) {
		h := vf64(st.H)
		hvd := vf64(s.Diag.HVertex)
		pv := vf64(s.Diag.PVVertex)
		vort := vf64(s.Diag.Vorticity)
		for v := lo; v < hi; v++ {
			base := v * 3 // mesh.VertexDegree
			acc := 0.0
			for j := base; j < base+3; j++ {
				acc += kv.at(j) * h.at(int(cv.at(j)))
			}
			hv := acc / at.at(v)
			hvd.set(v, hv)
			pv.set(v, (fv.at(v)+vort.at(v))/hv)
		}
	}
}

//go:noinline
func (r *PlanRunner) cC2() func(lo, hi int) {
	s := r.s
	cp := vi32(r.csr.CellPtr)
	cvt := vi32(r.csr.CellVerts)
	w := vf64(r.wKite)
	return func(lo, hi int) {
		pvc := vf64(s.Diag.PVCell)
		pvv := vf64(s.Diag.PVVertex)
		for c := lo; c < hi; c++ {
			ps, pe := int(cp.at(c)), int(cp.at(c+1))
			acc := 0.0
			for j := ps; j < pe; j++ {
				acc += w.at(j) * pvv.at(int(cvt.at(j)))
			}
			pvc.set(c, acc)
		}
	}
}

// cH1 compiles pattern H1 (edge <- 2 vertices): potential vorticity at
// edges. It reads only diagnostics, so no state binding is needed; the
// compiled form exists because H1 runs every stage on the hot path.
//
//go:noinline
func (r *PlanRunner) cH1() func(lo, hi int) {
	s := r.s
	voe := vi32(s.M.VerticesOnEdge)
	return func(lo, hi int) {
		pve := vf64(s.Diag.PVEdge)
		pvv := vf64(s.Diag.PVVertex)
		for e := lo; e < hi; e++ {
			v1 := int(voe.at(2 * e))
			v2 := int(voe.at(2*e + 1))
			pve.set(e, 0.5*(pvv.at(v1)+pvv.at(v2)))
		}
	}
}

//go:noinline
func (r *PlanRunner) cB2(st *State) func(lo, hi int) {
	s := r.s
	coef := s.Cfg.APVM * s.Cfg.Dt
	voe := vi32(s.M.VerticesOnEdge)
	coe := vi32(s.M.CellsOnEdge)
	dc := vf64(s.M.DcEdge)
	dv := vf64(s.M.DvEdge)
	return func(lo, hi int) {
		pve := vf64(s.Diag.PVEdge)
		pvv := vf64(s.Diag.PVVertex)
		pvc := vf64(s.Diag.PVCell)
		u := vf64(st.U)
		v := vf64(s.Diag.V)
		for e := lo; e < hi; e++ {
			v1 := int(voe.at(2 * e))
			v2 := int(voe.at(2*e + 1))
			c1 := int(coe.at(2 * e))
			c2 := int(coe.at(2*e + 1))
			gradPVt := (pvv.at(v2) - pvv.at(v1)) / dv.at(e)
			gradPVn := (pvc.at(c2) - pvc.at(c1)) / dc.at(e)
			pve.set(e, pve.at(e)-coef*(v.at(e)*gradPVt+u.at(e)*gradPVn))
		}
	}
}
