package sw

import "repro/internal/mesh"

// This file holds the compiled kernel variants the execution plan (plan.go)
// dispatches instead of the generic range kernels in kernels.go. Each variant
// is bitwise-identical to its original: the floating-point expression tree is
// unchanged (same literals, same left-to-right association), only the
// surrounding scaffolding differs —
//
//   - gather index lists are re-sliced to the stencil width so the compiler
//     can eliminate the per-element bounds checks,
//   - products of per-slot mesh constants (edge sign × edge length) are
//     hoisted into weight tables built once at plan compilation,
//   - the current state is bound at compile time instead of read through
//     s.cur, because the plan never retargets mid-step,
//   - the RK substep/accumulate updates (X2..X5) are fused into the tendency
//     loops where the data flow proves the combined loop races with nothing.
//
// Equivalence is pinned by TestPlanBitwise across the configuration space.

// buildWeights precomputes the hoisted gather weights. wA1[c][j] is the
// signed edge length s.signCell*DvEdge shared by A1, A2 and A4; wA3 is A3's
// quadrature weight (0.25*Dc)*Dv; wE is E's signed dual-edge length. Each
// stored product reproduces the original left-associated prefix, so
// multiplying by the remaining factors gives the original rounding exactly.
func (r *PlanRunner) buildWeights() {
	s := r.s
	m := s.M
	r.wA1 = make([]float64, m.NCells*mesh.MaxEdges)
	r.wA3 = make([]float64, m.NCells*mesh.MaxEdges)
	for c := 0; c < m.NCells; c++ {
		base := c * mesh.MaxEdges
		n := int(m.NEdgesOnCell[c])
		for j := 0; j < n; j++ {
			e := m.EdgesOnCell[base+j]
			r.wA1[base+j] = s.signCell[base+j] * m.DvEdge[e]
			r.wA3[base+j] = 0.25 * m.DcEdge[e] * m.DvEdge[e]
		}
	}
	r.wE = make([]float64, m.NVertices*mesh.VertexDegree)
	for v := 0; v < m.NVertices; v++ {
		base := v * mesh.VertexDegree
		for j := 0; j < mesh.VertexDegree; j++ {
			e := m.EdgesOnVertex[base+j]
			r.wE[base+j] = s.signVertex[base+j] * m.DcEdge[e]
		}
	}
}

// mkTendH compiles the fused thickness-tendency op for one RK stage:
// A1 (flux divergence), X4 (accumulate), and at stage 0 additionally X2 (the
// provisional update, legal there because stage 0 reads the accepted state)
// or at stage 3 the commit into State.H. The stage-0 form also absorbs the
// next.CopyFrom(State) initialization: hn = h0 + b*t instead of copy-then-add.
func (r *PlanRunner) mkTendH(stage int) func(lo, hi int) {
	s := r.s
	m := s.M
	w := r.wA1
	a, b := s.rkA[stage], s.rkB[stage]
	st := s.Provis
	if stage == 0 {
		st = s.State
	}
	return func(lo, hi int) {
		u := st.U
		he := s.Diag.HEdge
		th := s.Tend.H
		hn := s.next.H
		h0 := s.State.H
		hp := s.Provis.H
		for c := lo; c < hi; c++ {
			base := c * mesh.MaxEdges
			n := int(m.NEdgesOnCell[c])
			ws := w[base : base+n]
			es := m.EdgesOnCell[base : base+n]
			acc := 0.0
			for j, wj := range ws {
				e := es[j]
				acc += wj * he[e] * u[e]
			}
			t := -acc / m.AreaCell[c]
			th[c] = t
			switch stage {
			case 0:
				hn[c] = h0[c] + b*t
				hp[c] = h0[c] + a*t
			case 3:
				h0[c] = hn[c] + b*t
			default:
				hn[c] += b * t
			}
		}
	}
}

// mkTendU compiles the fused momentum-tendency op for one RK stage: B1 (or
// its advection-only zeroing), the optional viscosity and Rayleigh-friction
// passes (X1), X5 (accumulate), and at stage 0 additionally X3 or at stage 3
// the commit into State.U. Sub-passes run in the original pattern order over
// the worker's own range, so fusion changes no result.
func (r *PlanRunner) mkTendU(stage int) func(lo, hi int) {
	s := r.s
	m := s.M
	cfg := s.Cfg
	g := cfg.Gravity
	a, bw := s.rkA[stage], s.rkB[stage]
	st := s.Provis
	if stage == 0 {
		st = s.State
	}
	return func(lo, hi int) {
		u := st.U
		tu := s.Tend.U
		if cfg.AdvectionOnly {
			for e := lo; e < hi; e++ {
				tu[e] = 0
			}
		} else {
			h := st.H
			he := s.Diag.HEdge
			ke := s.Diag.KE
			pve := s.Diag.PVEdge
			b := s.B
			for e := lo; e < hi; e++ {
				base := e * mesh.MaxEdgesOnEdge
				n := int(m.NEdgesOnEdge[e])
				w := m.WeightsOnEdge[base : base+n]
				eoe := m.EdgesOnEdge[base : base+n]
				pe := pve[e]
				q := 0.0
				for j, wj := range w {
					k := eoe[j]
					workPV := 0.5 * (pe + pve[k])
					q += wj * u[k] * he[k] * workPV
				}
				c1 := m.CellsOnEdge[2*e]
				c2 := m.CellsOnEdge[2*e+1]
				grad := (ke[c2] - ke[c1] + g*(h[c2]+b[c2]-h[c1]-b[c1])) / m.DcEdge[e]
				tu[e] = q - grad
			}
			if nu := cfg.Viscosity; nu != 0 {
				div := s.Diag.Divergence
				vort := s.Diag.Vorticity
				for e := lo; e < hi; e++ {
					c1 := m.CellsOnEdge[2*e]
					c2 := m.CellsOnEdge[2*e+1]
					v1 := m.VerticesOnEdge[2*e]
					v2 := m.VerticesOnEdge[2*e+1]
					tu[e] += nu * ((div[c2]-div[c1])/m.DcEdge[e] - (vort[v2]-vort[v1])/m.DvEdge[e])
				}
			}
		}
		if rf := cfg.RayleighFriction; rf != 0 {
			for e := lo; e < hi; e++ {
				tu[e] -= rf * u[e]
			}
		}
		un := s.next.U
		switch stage {
		case 0:
			u0 := s.State.U
			up := s.Provis.U
			for e := lo; e < hi; e++ {
				t := tu[e]
				un[e] = u0[e] + bw*t
				up[e] = u0[e] + a*t
			}
		case 3:
			uo := s.State.U
			for e := lo; e < hi; e++ {
				uo[e] = un[e] + bw*tu[e]
			}
		default:
			for e := lo; e < hi; e++ {
				un[e] += bw * tu[e]
			}
		}
	}
}

// mkX2 / mkX3 compile the provisional-state updates for stages 1 and 2 (at
// stages 0 and 3 they are fused into the tendency ops). Unlike patX2/patX3
// they bind the RK coefficient at compile time instead of reading s.stage.
func (r *PlanRunner) mkX2(stage int) func(lo, hi int) {
	s := r.s
	a := s.rkA[stage]
	return func(lo, hi int) {
		h0 := s.State.H
		th := s.Tend.H
		hp := s.Provis.H
		for c := lo; c < hi; c++ {
			hp[c] = h0[c] + a*th[c]
		}
	}
}

func (r *PlanRunner) mkX3(stage int) func(lo, hi int) {
	s := r.s
	a := s.rkA[stage]
	return func(lo, hi int) {
		u0 := s.State.U
		tu := s.Tend.U
		up := s.Provis.U
		for e := lo; e < hi; e++ {
			up[e] = u0[e] + a*tu[e]
		}
	}
}

// --- compiled compute_solve_diagnostics variants -----------------------------
// Each binds the state the stage reads (Provis for stages 0..2, State for
// stage 3) at compile time; kernels that read only diagnostics reuse the
// originals from kernels.go.

func (r *PlanRunner) cC1(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	return func(lo, hi int) {
		h := st.H
		d2 := s.Diag.D2fdx2Cell
		for c := lo; c < hi; c++ {
			base := c * mesh.MaxEdges
			n := int(m.NEdgesOnCell[c])
			es := m.EdgesOnCell[base : base+n]
			cs := m.CellsOnCell[base : base+n]
			acc := 0.0
			for j, e := range es {
				nb := cs[j]
				d := m.DcEdge[e]
				acc += 2 * (h[nb] - h[c]) / (d * d)
			}
			d2[c] = acc / float64(n)
		}
	}
}

func (r *PlanRunner) cD1(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	return func(lo, hi int) {
		h := st.H
		he := s.Diag.HEdge
		for e := lo; e < hi; e++ {
			c1 := m.CellsOnEdge[2*e]
			c2 := m.CellsOnEdge[2*e+1]
			he[e] = 0.5 * (h[c1] + h[c2])
		}
	}
}

func (r *PlanRunner) cD2(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	return func(lo, hi int) {
		h := st.H
		d2 := s.Diag.D2fdx2Cell
		he := s.Diag.HEdge
		for e := lo; e < hi; e++ {
			c1 := m.CellsOnEdge[2*e]
			c2 := m.CellsOnEdge[2*e+1]
			dc := m.DcEdge[e]
			he[e] = 0.5*(h[c1]+h[c2]) - dc*dc/12*0.5*(d2[c1]+d2[c2])
		}
	}
}

func (r *PlanRunner) cE(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	w := r.wE
	return func(lo, hi int) {
		u := st.U
		vort := s.Diag.Vorticity
		for v := lo; v < hi; v++ {
			base := v * mesh.VertexDegree
			circ := 0.0
			for j := 0; j < mesh.VertexDegree; j++ {
				circ += w[base+j] * u[m.EdgesOnVertex[base+j]]
			}
			vort[v] = circ / m.AreaTriangle[v]
		}
	}
}

func (r *PlanRunner) cA2(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	w := r.wA1
	return func(lo, hi int) {
		u := st.U
		div := s.Diag.Divergence
		for c := lo; c < hi; c++ {
			base := c * mesh.MaxEdges
			n := int(m.NEdgesOnCell[c])
			ws := w[base : base+n]
			es := m.EdgesOnCell[base : base+n]
			acc := 0.0
			for j, wj := range ws {
				acc += wj * u[es[j]]
			}
			div[c] = acc / m.AreaCell[c]
		}
	}
}

func (r *PlanRunner) cA3(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	w := r.wA3
	return func(lo, hi int) {
		u := st.U
		ke := s.Diag.KE
		for c := lo; c < hi; c++ {
			base := c * mesh.MaxEdges
			n := int(m.NEdgesOnCell[c])
			ws := w[base : base+n]
			es := m.EdgesOnCell[base : base+n]
			acc := 0.0
			for j, wj := range ws {
				ue := u[es[j]]
				acc += wj * ue * ue
			}
			ke[c] = acc / m.AreaCell[c]
		}
	}
}

func (r *PlanRunner) cF(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	return func(lo, hi int) {
		u := st.U
		v := s.Diag.V
		for e := lo; e < hi; e++ {
			base := e * mesh.MaxEdgesOnEdge
			n := int(m.NEdgesOnEdge[e])
			w := m.WeightsOnEdge[base : base+n]
			eoe := m.EdgesOnEdge[base : base+n]
			acc := 0.0
			for j, wj := range w {
				acc += wj * u[eoe[j]]
			}
			v[e] = acc
		}
	}
}

func (r *PlanRunner) cG(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	return func(lo, hi int) {
		h := st.H
		hv := s.Diag.HVertex
		pv := s.Diag.PVVertex
		vort := s.Diag.Vorticity
		for v := lo; v < hi; v++ {
			base := v * mesh.VertexDegree
			kv := m.KiteAreasOnVertex[base : base+mesh.VertexDegree]
			cv := m.CellsOnVertex[base : base+mesh.VertexDegree]
			acc := 0.0
			for j, k := range kv {
				acc += k * h[cv[j]]
			}
			hv[v] = acc / m.AreaTriangle[v]
			pv[v] = (m.FVertex[v] + vort[v]) / hv[v]
		}
	}
}

func (r *PlanRunner) cC2() func(lo, hi int) {
	s := r.s
	m := s.M
	return func(lo, hi int) {
		pvc := s.Diag.PVCell
		pvv := s.Diag.PVVertex
		for c := lo; c < hi; c++ {
			base := c * mesh.MaxEdges
			n := int(m.NEdgesOnCell[c])
			ws := s.kiteOnCell[base : base+n]
			vs := m.VerticesOnCell[base : base+n]
			acc := 0.0
			for j, wj := range ws {
				acc += wj * pvv[vs[j]]
			}
			pvc[c] = acc
		}
	}
}

func (r *PlanRunner) cB2(st *State) func(lo, hi int) {
	s := r.s
	m := s.M
	coef := s.Cfg.APVM * s.Cfg.Dt
	return func(lo, hi int) {
		pve := s.Diag.PVEdge
		pvv := s.Diag.PVVertex
		pvc := s.Diag.PVCell
		u := st.U
		v := s.Diag.V
		for e := lo; e < hi; e++ {
			v1 := m.VerticesOnEdge[2*e]
			v2 := m.VerticesOnEdge[2*e+1]
			c1 := m.CellsOnEdge[2*e]
			c2 := m.CellsOnEdge[2*e+1]
			gradPVt := (pvv[v2] - pvv[v1]) / m.DvEdge[e]
			gradPVn := (pvc[c2] - pvc[c1]) / m.DcEdge[e]
			pve[e] -= coef * (v[e]*gradPVt + u[e]*gradPVn)
		}
	}
}
