//go:build race

package sw

// Race-detector builds swap the unchecked raw-pointer views of unchecked.go
// for plain slice accesses: bounds-checked and race-instrumented, so -race
// runs exercise the exact compiled schedules with full instrumentation. The
// bounds-check-elimination gate (bce_test.go) builds without -race and so
// always measures the unchecked variant.

type f64v struct{ s []float64 }

func vf64(s []float64) f64v { return f64v{s} }

func (v f64v) at(i int) float64     { return v.s[i] }
func (v f64v) set(i int, x float64) { v.s[i] = x }

type f32v struct{ s []float32 }

func vf32(s []float32) f32v { return f32v{s} }

func (v f32v) at(i int) float32     { return v.s[i] }
func (v f32v) set(i int, x float32) { v.s[i] = x }

type i32v struct{ s []int32 }

func vi32(s []int32) i32v { return i32v{s} }

func (v i32v) at(i int) int32 { return v.s[i] }
