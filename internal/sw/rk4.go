package sw

import "repro/internal/pattern"

// This file is the RK-4 time-stepping driver — the literal transcription of
// Algorithm 1 of the paper into kernel invocations. Which processor(s)
// execute the kernels is entirely the Runner's business.

// stageSpanNames are fixed so tracing a stage never formats a string.
var stageSpanNames = [4]string{"rk4_stage_0", "rk4_stage_1", "rk4_stage_2", "rk4_stage_3"}

// Init computes the diagnostics and reconstruction for the current state.
// Call once after setting initial conditions, before the first Step.
func (s *Solver) Init() {
	s.cur = s.State
	s.stageSpan = s.Trace.StartSpan("init")
	s.runKernel(pattern.KernelSolveDiagnostics)
	s.runKernel(pattern.KernelReconstruct)
	s.stageSpan.End()
	s.stageSpan = nil
}

// Step advances the model by one RK-4 time step (Algorithm 1). When a
// PlanRunner compiled for this solver and this configuration is attached and
// no tracers are registered, the step executes through its compiled schedule
// — one parallel region for the whole step — instead of the kernel-by-kernel
// loop below (tracer advection is not part of the compiled program, and a
// Cfg mutated after compilation would invalidate the plan's specialization).
func (s *Solver) Step() {
	// (An overlap-scheduled plan additionally requires no PostSubstep hook:
	// its hook slots were compiled into Post/Wait exchange ops, so a hook
	// would be silently skipped — fall back to the blocking kernel loop.)
	if pr, ok := s.Runner.(*PlanRunner); ok && pr.s == s && pr.cfg == s.Cfg && len(s.Tracers) == 0 &&
		(pr.ov == nil || s.PostSubstep == nil) {
		pr.step()
		return
	}
	// The float32 fast mode additionally requires no PostSubstep hook: its
	// intermediate states live in float32 arrays the hook could not see.
	if fr, ok := s.Runner.(*Fast32Runner); ok && fr.s == s && fr.cfg == s.Cfg &&
		len(s.Tracers) == 0 && s.PostSubstep == nil {
		fr.step()
		return
	}
	step := s.Trace.StartSpan("rk4_step")
	s.Provis.CopyFrom(s.State)
	s.next.CopyFrom(s.State)
	s.tracerStepBegin()
	s.cur = s.Provis
	for s.stage = 0; s.stage < 4; s.stage++ {
		s.stageSpan = step.StartChild(stageSpanNames[s.stage])
		s.runKernel(pattern.KernelComputeTend)
		if len(s.Tracers) > 0 {
			// Tracer flux divergence uses the same provisional state and
			// edge thickness the thickness tendency just consumed.
			s.tracerTend()
		}
		s.runKernel(pattern.KernelEnforceBoundaryEdge)
		if s.stage < 3 {
			s.runKernel(pattern.KernelNextSubstepState)
			s.tracerSubstep()
			if s.PostSubstep != nil {
				s.PostSubstep(s.stage, s.Provis)
			}
			s.runKernel(pattern.KernelSolveDiagnostics)
			s.runKernel(pattern.KernelAccumulativeUpdate)
		} else {
			s.runKernel(pattern.KernelAccumulativeUpdate)
			s.tracerSubstep()
			s.State.CopyFrom(s.next)
			s.tracerStepEnd()
			s.cur = s.State
			if s.PostSubstep != nil {
				s.PostSubstep(s.stage, s.State)
			}
			s.runKernel(pattern.KernelSolveDiagnostics)
			s.runKernel(pattern.KernelReconstruct)
		}
		s.stageSpan.End()
	}
	s.stageSpan = nil
	s.StepCount++
	s.Time += s.Cfg.Dt
	s.stepsCounter.Inc()
	step.End()
}

// Run advances n steps.
func (s *Solver) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

func (s *Solver) runKernel(name string) {
	sp := s.stageSpan.StartChild(name)
	tm := s.kernelTimers[name]
	ctx := tm.Start()
	s.Runner.RunKernel(s.kernels[name])
	ctx.Stop()
	sp.End()
}
