package sw_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sw"
	"repro/internal/testcases"
)

// TestRunControlledCadence checks the global (StepCount-modulo) cadence:
// chunked calls keep a stable phase, and Checkpoint fires before Report on
// a shared step.
func TestRunControlledCadence(t *testing.T) {
	m := testMesh(t, 2)
	s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
	testcases.SetupTC2(s)

	var reports, ckpts []int
	var order []string
	rc := sw.RunControl{
		ReportEvery: 4,
		Report: func(s *sw.Solver) error {
			reports = append(reports, s.StepCount)
			order = append(order, "report")
			return nil
		},
		CheckpointEvery: 6,
		Checkpoint: func(s *sw.Solver) error {
			ckpts = append(ckpts, s.StepCount)
			order = append(order, "ckpt")
			return nil
		},
	}
	// 12 steps split across uneven chunks: the cadence must not reset at
	// chunk boundaries.
	for _, n := range []int{5, 3, 4} {
		if err := s.RunControlled(n, rc); err != nil {
			t.Fatal(err)
		}
	}
	wantReports := []int{4, 8, 12}
	wantCkpts := []int{6, 12}
	if len(reports) != len(wantReports) {
		t.Fatalf("reports at %v, want %v", reports, wantReports)
	}
	for i := range wantReports {
		if reports[i] != wantReports[i] {
			t.Fatalf("reports at %v, want %v", reports, wantReports)
		}
	}
	if len(ckpts) != 2 || ckpts[0] != wantCkpts[0] || ckpts[1] != wantCkpts[1] {
		t.Fatalf("checkpoints at %v, want %v", ckpts, wantCkpts)
	}
	// Step 12 fires both: checkpoint first, so a report always describes a
	// durable state.
	last2 := order[len(order)-2:]
	if last2[0] != "ckpt" || last2[1] != "report" {
		t.Fatalf("step-12 hook order %v, want [ckpt report]", last2)
	}
}

// TestRunControlledInterrupt stops the run at the requested boundary and
// leaves the solver resumable to a bitwise-identical trajectory.
func TestRunControlledInterrupt(t *testing.T) {
	m := testMesh(t, 2)
	cfg := sw.DefaultConfig(m)

	full, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC5(full)
	full.Run(8)

	s, _ := sw.NewSolver(m, cfg)
	testcases.SetupTC5(s)
	stop := errors.New("stop")
	err := s.RunControlled(8, sw.RunControl{
		Interrupt: func() error {
			if s.StepCount == 3 {
				return stop
			}
			return nil
		},
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the interrupt error", err)
	}
	if s.StepCount != 3 {
		t.Fatalf("stopped at step %d, want 3", s.StepCount)
	}

	// Checkpoint, restore into a fresh solver, finish: bitwise equal.
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, _ := sw.NewSolver(m, cfg)
	if err := resumed.ReadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := resumed.RunControlled(5, sw.RunControl{}); err != nil {
		t.Fatal(err)
	}
	for c := range full.State.H {
		if full.State.H[c] != resumed.State.H[c] {
			t.Fatalf("resumed trajectory diverges at cell %d", c)
		}
	}
	for e := range full.State.U {
		if full.State.U[e] != resumed.State.U[e] {
			t.Fatalf("resumed trajectory diverges at edge %d", e)
		}
	}
}

// TestRunControlledHookErrors propagates Report/Checkpoint errors.
func TestRunControlledHookErrors(t *testing.T) {
	m := testMesh(t, 2)
	boom := errors.New("boom")
	for _, tc := range []struct {
		name string
		rc   sw.RunControl
	}{
		{"report", sw.RunControl{ReportEvery: 1, Report: func(*sw.Solver) error { return boom }}},
		{"checkpoint", sw.RunControl{CheckpointEvery: 1, Checkpoint: func(*sw.Solver) error { return boom }}},
	} {
		s, _ := sw.NewSolver(m, sw.DefaultConfig(m))
		testcases.SetupTC2(s)
		if err := s.RunControlled(3, tc.rc); !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want boom", tc.name, err)
		}
		if s.StepCount != 1 {
			t.Errorf("%s: stopped at %d, want 1", tc.name, s.StepCount)
		}
	}
}
