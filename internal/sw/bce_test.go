package sw

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestHotKernelsBoundsCheckFree is the asm-inspection regression gate for
// the compiled hot loops: it recompiles this package with the compiler's
// bounds-check diagnostic pass (-d=ssa/check_bce) and fails if any
// IsInBounds/IsSliceInBounds check — a panicIndex call site in the generated
// code — is attributed to plan_kernels.go or fast32_kernels.go. The build
// cache keys on file content, so a cached compile would print nothing; a
// nonce comment is appended through a -overlay file to force exactly this
// package to recompile every run.
//
// scripts/ci.sh runs this test by name as its bounds-check gate.
func TestHotKernelsBoundsCheckFree(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the package; skipped with -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	hot := filepath.Join(root, "internal", "sw", "plan_kernels.go")
	src, err := os.ReadFile(hot)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	replaced := filepath.Join(tmp, "plan_kernels.go")
	nonce := fmt.Sprintf("\n// bce-gate nonce %d\n", time.Now().UnixNano())
	if err := os.WriteFile(replaced, append(src, nonce...), 0o644); err != nil {
		t.Fatal(err)
	}
	overlay := filepath.Join(tmp, "overlay.json")
	ov, err := json.Marshal(map[string]map[string]string{"Replace": {hot: replaced}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(overlay, ov, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "build",
		"-overlay", overlay,
		"-gcflags=repro/internal/sw=-d=ssa/check_bce/debug=1",
		"./internal/sw")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build with check_bce failed: %v\n%s", err, out)
	}
	diag := string(out)

	// Negative control: the diagnostic pass must actually have fired — the
	// generic kernels in kernels.go legitimately keep bounds checks.
	if !strings.Contains(diag, "Found IsInBounds") && !strings.Contains(diag, "Found IsSliceInBounds") {
		t.Fatalf("no bounds-check diagnostics in the build output at all; the gate is not measuring anything:\n%s", diag)
	}

	re := regexp.MustCompile(`(?m)^.*(plan_kernels|fast32_kernels)\.go:\d+:\d+: Found Is(Slice)?InBounds.*$`)
	if hits := re.FindAllString(diag, -1); len(hits) > 0 {
		t.Errorf("bounds checks survive in the compiled hot kernels (%d):\n%s",
			len(hits), strings.Join(hits, "\n"))
	}
}
