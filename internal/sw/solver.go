package sw

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
)

// Pattern is an executable pattern instance: Table I metadata plus the
// gather-form range kernel that computes outputs [lo,hi) and a workload
// model used by the platform performance model.
type Pattern struct {
	Info pattern.Instance
	N    int // number of output elements
	Run  func(lo, hi int)
	// Workload per output element, used by internal/perfmodel.
	FlopsPerElem float64
	BytesPerElem float64
}

// Kernel is a named group of pattern instances in a valid sequential order —
// one of the six kernels of Algorithm 1.
type Kernel struct {
	Name     string
	Patterns []*Pattern
}

// Runner abstracts how a kernel's pattern list is executed: serially, with a
// thread team (package par), or split across heterogeneous devices (package
// hybrid).
type Runner interface {
	RunKernel(k *Kernel)
}

// SerialRunner executes every pattern over its full range, in order.
type SerialRunner struct{}

// RunKernel implements Runner.
func (SerialRunner) RunKernel(k *Kernel) {
	for _, p := range k.Patterns {
		p.Run(0, p.N)
	}
}

// Solver advances the shallow-water model on an SCVT mesh.
type Solver struct {
	M   *mesh.Mesh
	Cfg Config

	// Bottom topography at cells (set by the test case; zero by default).
	B []float64

	// Renumber, when non-nil, records the locality renumbering
	// (mesh.Reorder) that produced M from the canonical mesh. In-memory
	// state is then in renumbered order; externally visible state —
	// checkpoints — crosses through the maps at the boundary, so the
	// on-disk bytes are identical with and without renumbering and a
	// checkpoint can be resumed under either.
	Renumber *mesh.Reorder

	State  *State // accepted state at s.Time
	Provis *State // RK provisional state
	next   *State // RK accumulator
	Diag   *Diagnostics
	Tend   *Tendencies
	Recon  *Reconstructed

	Runner Runner

	// PostSubstep, when non-nil, is invoked after each provisional state
	// update (stages 0..2 with the provisional state, stage 3 with the new
	// accepted state) and before the following compute_solve_diagnostics —
	// exactly where the distributed runs place their MPI halo exchanges
	// (the "Exchange halo" arrows of the paper's Figures 2 and 4).
	PostSubstep func(stage int, st *State)

	// Tracers registered with AddTracer, advected conservatively by the
	// RK driver (single-process runs; the distributed halo exchange covers
	// h and u only).
	Tracers []*Tracer

	Time      float64
	StepCount int

	// Trace and Metrics are the optional telemetry sinks wired in by
	// EnableTelemetry. Both nil by default: every instrumentation point
	// below is a nil-safe no-op that costs neither allocations nor clock
	// reads on unconfigured runs.
	Trace   *telemetry.Tracer
	Metrics *telemetry.Registry

	// kernelTimers holds one wall-time timer per kernel (nil map when
	// Metrics is nil; lookups on a nil map are free).
	kernelTimers map[string]*telemetry.Timer
	stepsCounter *telemetry.Counter
	// stageSpan is the live RK-stage (or init) span kernels nest under.
	stageSpan *telemetry.Span

	// cur points at the state whose tendencies/diagnostics the kernels
	// read; the RK driver retargets it between substeps.
	cur *State
	// stage is the RK substage index (0..3) during a step.
	stage int

	// Precomputed label matrices (paper Algorithm 4) and gather weights.
	signCell     []float64 // stride mesh.MaxEdges; = float(EdgeSignOnCell)
	signVertex   []float64 // stride mesh.VertexDegree
	kiteOnCell   []float64 // stride mesh.MaxEdges; kite(v_j,c)/AreaCell[c]
	eastCell     []geom.Vec3
	northCell    []geom.Vec3
	kernels      map[string]*Kernel
	kernelOrder  []*Kernel
	rkA, rkB     [4]float64
	patternIndex map[string]*Pattern
}

// NewSolver builds a solver on mesh m. The mesh's Coriolis arrays are
// (re)filled from cfg.Omega.
func NewSolver(m *mesh.Mesh, cfg Config) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m.SetRotation(cfg.Omega)
	s := &Solver{
		M:      m,
		Cfg:    cfg,
		B:      make([]float64, m.NCells),
		State:  NewState(m),
		Provis: NewState(m),
		next:   NewState(m),
		Diag:   NewDiagnostics(m),
		Tend:   NewTendencies(m),
		Recon:  NewReconstructed(m),
		Runner: SerialRunner{},
	}
	s.cur = s.State
	dt := cfg.Dt
	s.rkA = [4]float64{dt / 2, dt / 2, dt, 0}
	s.rkB = [4]float64{dt / 6, dt / 3, dt / 3, dt / 6}
	s.precompute()
	s.buildKernels()
	return s, nil
}

// MustNewSolver is NewSolver panicking on error.
func MustNewSolver(m *mesh.Mesh, cfg Config) *Solver {
	s, err := NewSolver(m, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Solver) precompute() {
	m := s.M
	s.signCell = make([]float64, len(m.EdgeSignOnCell))
	for i, v := range m.EdgeSignOnCell {
		s.signCell[i] = float64(v)
	}
	s.signVertex = make([]float64, len(m.EdgeSignOnVertex))
	for i, v := range m.EdgeSignOnVertex {
		s.signVertex[i] = float64(v)
	}
	// kiteOnCell[c][j] = kiteArea(vertex VerticesOnCell[c][j], cell c) / AreaCell[c].
	s.kiteOnCell = make([]float64, m.NCells*mesh.MaxEdges)
	for c := int32(0); c < int32(m.NCells); c++ {
		base := int(c) * mesh.MaxEdges
		for j, v := range m.CellVertices(c) {
			vb := int(v) * mesh.VertexDegree
			for k := 0; k < mesh.VertexDegree; k++ {
				if m.CellsOnVertex[vb+k] == c {
					s.kiteOnCell[base+j] = m.KiteAreasOnVertex[vb+k] / m.AreaCell[c]
					break
				}
			}
		}
	}
	s.eastCell = make([]geom.Vec3, m.NCells)
	s.northCell = make([]geom.Vec3, m.NCells)
	for c := 0; c < m.NCells; c++ {
		s.eastCell[c] = geom.East(m.XCell[c])
		s.northCell[c] = geom.North(m.XCell[c])
	}
}

// EnableTelemetry attaches a tracer (spans per RK stage and per kernel) and
// a metrics registry (per-kernel wall-time timers, step counter) to the
// solver. Either argument may be nil to enable only the other; calling with
// both nil disables telemetry again.
func (s *Solver) EnableTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	s.Trace = tr
	s.Metrics = reg
	s.kernelTimers = nil
	s.stepsCounter = nil
	if reg == nil {
		return
	}
	s.stepsCounter = reg.Counter("sw_steps_total")
	s.kernelTimers = make(map[string]*telemetry.Timer, len(s.kernelOrder))
	for _, k := range s.kernelOrder {
		s.kernelTimers[k.Name] = reg.Timer("sw_kernel_" + k.Name + "_seconds")
	}
}

// Kernels returns the kernels in Algorithm 1 execution order.
func (s *Solver) Kernels() []*Kernel { return s.kernelOrder }

// KernelByName returns one kernel, or nil.
func (s *Solver) KernelByName(name string) *Kernel { return s.kernels[name] }

// PatternByID returns an executable pattern instance by Table I label.
func (s *Solver) PatternByID(id string) *Pattern { return s.patternIndex[id] }

// buildKernels wires Table I metadata to the gather-form range kernels.
func (s *Solver) buildKernels() {
	m := s.M
	mk := func(id string, n int, run func(lo, hi int)) *Pattern {
		info := pattern.ByID(id)
		if info == nil {
			panic(fmt.Sprintf("sw: pattern %q not in Table 1", id))
		}
		spec, ok := perfmodel.WorkTable[id]
		if !ok {
			panic(fmt.Sprintf("sw: pattern %q not in perfmodel.WorkTable", id))
		}
		return &Pattern{Info: *info, N: n, Run: run,
			FlopsPerElem: spec.Flops, BytesPerElem: spec.Bytes}
	}

	solveDiag := &Kernel{Name: pattern.KernelSolveDiagnostics}
	if s.Cfg.HighOrderThickness {
		solveDiag.Patterns = append(solveDiag.Patterns,
			mk("C1", m.NCells, s.patC1),
			mk("D2", m.NEdges, s.patD2))
	} else {
		solveDiag.Patterns = append(solveDiag.Patterns,
			mk("D1", m.NEdges, s.patD1))
	}
	solveDiag.Patterns = append(solveDiag.Patterns,
		mk("E", m.NVertices, s.patE),
		mk("A2", m.NCells, s.patA2),
		mk("A3", m.NCells, s.patA3),
		mk("F", m.NEdges, s.patF),
		mk("G", m.NVertices, s.patG),
		mk("C2", m.NCells, s.patC2),
		mk("H2", m.NCells, s.patH2),
		mk("H1", m.NEdges, s.patH1),
		mk("B2", m.NEdges, s.patB2),
	)

	tend := &Kernel{Name: pattern.KernelComputeTend, Patterns: []*Pattern{
		mk("A1", m.NCells, s.patA1),
		mk("B1", m.NEdges, s.patB1),
	}}

	enforce := &Kernel{Name: pattern.KernelEnforceBoundaryEdge, Patterns: []*Pattern{
		mk("X1", m.NEdges, s.patX1),
	}}

	substep := &Kernel{Name: pattern.KernelNextSubstepState, Patterns: []*Pattern{
		mk("X2", m.NCells, s.patX2),
		mk("X3", m.NEdges, s.patX3),
	}}

	accum := &Kernel{Name: pattern.KernelAccumulativeUpdate, Patterns: []*Pattern{
		mk("X4", m.NCells, s.patX4),
		mk("X5", m.NEdges, s.patX5),
	}}

	recon := &Kernel{Name: pattern.KernelReconstruct, Patterns: []*Pattern{
		mk("A4", m.NCells, s.patA4),
		mk("X6", m.NCells, s.patX6),
	}}

	s.kernelOrder = []*Kernel{tend, enforce, substep, solveDiag, accum, recon}
	s.kernels = make(map[string]*Kernel, len(s.kernelOrder))
	s.patternIndex = make(map[string]*Pattern)
	for _, k := range s.kernelOrder {
		s.kernels[k.Name] = k
		for _, p := range k.Patterns {
			s.patternIndex[p.Info.ID] = p
		}
	}
}
