package sw_test

import (
	"strings"
	"testing"

	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sw"
	"repro/internal/testcases"
)

// noopOverlap builds an Overlap whose exchange does nothing and whose
// interior prefixes shrink by `width` entities per threshold level. On a
// single-process solver every value is always valid, so ANY split must be
// bitwise-neutral: the overlay merely reorders which elements are computed
// before vs after the wait, with each element computed exactly once by
// identical arithmetic. This pins the mechanical half of the overlay
// (coverage, ordering, barriers) independently of real distribution; the
// mpisim and dist tests pin the taint/depth half.
func noopOverlap(nc, ne, nv, width int, posts, waits *int) *sw.Overlap {
	cut := func(n, t int) int {
		k := n - width*(t+1)
		if k < 0 {
			return 0
		}
		return k
	}
	return &sw.Overlap{
		Post:             func(stage int, st *sw.State) { *posts++ },
		Wait:             func(stage int, st *sw.State) { *waits++ },
		InteriorCells:    func(t int) int { return cut(nc, t) },
		InteriorEdges:    func(t int) int { return cut(ne, t) },
		InteriorVertices: func(t int) int { return cut(nv, t) },
	}
}

// The all-interior (width 0) and all-boundary (width huge) extremes are
// valid on ANY mesh: the former never defers work past the wait, the latter
// defers everything, so neither can violate a stencil dependency. Mid-splits
// are only licensed by a real halo-depth ordering — see
// TestOverlapRealDepthSplitBitwiseNeutral below (and the mpisim/dist tests
// for real exchanges).
func TestOverlapSplitExtremesBitwiseNeutral(t *testing.T) {
	for _, workers := range []int{1, 3} {
		for _, width := range []int{0, 1 << 20} {
			ref := newTC2Solver(t, 3)
			ref.Runner = sw.MustNewPlanRunner(ref, nil)
			ref.Run(3)

			s := newTC2Solver(t, 3)
			pool := par.NewPool(workers)
			defer pool.Close()
			m := s.M
			var posts, waits int
			ovr, err := sw.NewOverlapPlanRunner(s, pool,
				noopOverlap(m.NCells, m.NEdges, m.NVertices, width, &posts, &waits))
			if err != nil {
				t.Fatalf("workers=%d width=%d: %v", workers, width, err)
			}
			s.Runner = ovr
			s.Run(3)
			if posts != 12 || waits != 12 {
				t.Fatalf("workers=%d width=%d: %d posts, %d waits; want 12 each (4/step x 3 steps)",
					workers, width, posts, waits)
			}
			for i := range ref.State.H {
				if s.State.H[i] != ref.State.H[i] {
					t.Fatalf("workers=%d width=%d: H[%d] %v != %v",
						workers, width, i, s.State.H[i], ref.State.H[i])
				}
			}
			for i := range ref.State.U {
				if s.State.U[i] != ref.State.U[i] {
					t.Fatalf("workers=%d width=%d: U[%d] %v != %v",
						workers, width, i, s.State.U[i], ref.State.U[i])
				}
			}
		}
	}
}

// A real mid-split: one rank's local mesh with its halo-depth interior
// prefixes, but a no-op exchange. Blocking reference and overlaid runner
// then see identical inputs everywhere (both leave halo slots stale), so if
// the interior slices respect the stencil-safety invariant the full state —
// halo included — must match bitwise. A violated dependency (an interior
// element reading a not-yet-computed boundary element) would surface as a
// divergence, exactly like the fake-width split this test replaces did.
func TestOverlapRealDepthSplitBitwiseNeutral(t *testing.T) {
	g := testMesh(t, 3)
	p, err := partition.Bisect(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := partition.Extract(g, p, 0, 3)
	cfg := sw.DefaultConfig(l.M)

	newLocal := func() *sw.Solver {
		s, err := sw.NewSolver(l.M, cfg)
		if err != nil {
			t.Fatal(err)
		}
		testcases.SetupTC2(s)
		return s
	}
	ref := newLocal()
	ref.Runner = sw.MustNewPlanRunner(ref, nil)
	ref.Run(3)

	for _, workers := range []int{1, 2} {
		s := newLocal()
		pool := par.NewPool(workers)
		defer pool.Close()
		var posts, waits int
		ov := &sw.Overlap{
			Post:             func(stage int, st *sw.State) { posts++ },
			Wait:             func(stage int, st *sw.State) { waits++ },
			InteriorCells:    l.InteriorCells,
			InteriorEdges:    l.InteriorEdges,
			InteriorVertices: l.InteriorVertices,
		}
		r, err := sw.NewOverlapPlanRunner(s, pool, ov)
		if err != nil {
			t.Fatal(err)
		}
		// The split must be a genuine mid-split on this mesh, or the test
		// proves nothing.
		if ic := l.InteriorCells(1); ic <= 0 || ic >= l.M.NCells {
			t.Fatalf("degenerate interior split %d of %d cells", ic, l.M.NCells)
		}
		s.Runner = r
		s.Run(3)
		for i := range ref.State.H {
			if s.State.H[i] != ref.State.H[i] {
				t.Fatalf("workers=%d: H[%d] %v != %v (depth %d)",
					workers, i, s.State.H[i], ref.State.H[i], l.CellDepth[i])
			}
		}
		for i := range ref.State.U {
			if s.State.U[i] != ref.State.U[i] {
				t.Fatalf("workers=%d: U[%d] %v != %v (depth %d)",
					workers, i, s.State.U[i], ref.State.U[i], l.EdgeDepth[i])
			}
		}
	}
}

func TestOverlapScheduleStructure(t *testing.T) {
	s := newTC2Solver(t, 2)
	m := s.M
	var posts, waits int
	r, err := sw.NewOverlapPlanRunner(s, nil, noopOverlap(m.NCells, m.NEdges, m.NVertices, 5, &posts, &waits))
	if err != nil {
		t.Fatal(err)
	}
	ids := r.OpIDs()
	count := func(sub string) int {
		n := 0
		for _, id := range ids {
			if strings.Contains(id, sub) {
				n++
			}
		}
		return n
	}
	if count("post@") != 4 || count("wait@") != 4 {
		t.Fatalf("schedule has %d posts, %d waits, want 4 each: %v", count("post@"), count("wait@"), ids)
	}
	nInt, nBnd := count(":int"), count(":bnd")
	if nInt == 0 || nInt != nBnd {
		t.Fatalf("schedule has %d interior and %d boundary slices: %v", nInt, nBnd, ids)
	}
	// Per stage: post precedes every :int, wait sits between :int and :bnd.
	for stage := 0; stage < 4; stage++ {
		suf := []byte{'@', byte('0' + stage)}
		postAt, waitAt, lastInt, firstBnd := -1, -1, -1, len(ids)
		for i, id := range ids {
			switch {
			case id == "post"+string(suf):
				postAt = i
			case id == "wait"+string(suf):
				waitAt = i
			case strings.HasSuffix(id, string(suf)+":int"):
				lastInt = i
			case strings.HasSuffix(id, string(suf)+":bnd") && i < firstBnd:
				firstBnd = i
			}
		}
		if postAt < 0 || waitAt < 0 || !(postAt < waitAt && lastInt < waitAt && waitAt < firstBnd) {
			t.Fatalf("stage %d: post=%d lastInt=%d wait=%d firstBnd=%d out of order: %v",
				stage, postAt, lastInt, waitAt, firstBnd, ids)
		}
	}
}

func TestOverlapRunnerRejectsMissingCallbacks(t *testing.T) {
	s := newTC2Solver(t, 2)
	if _, err := sw.NewOverlapPlanRunner(s, nil, nil); err == nil {
		t.Fatal("nil Overlap accepted")
	}
	if _, err := sw.NewOverlapPlanRunner(s, nil, &sw.Overlap{}); err == nil {
		t.Fatal("empty Overlap accepted")
	}
}

// A PostSubstep hook must force the overlap runner OFF the plan path (its
// hook slots are gone); the kernel-loop fallback still honors the hook.
func TestOverlapRunnerFallsBackUnderHook(t *testing.T) {
	ref := newTC2Solver(t, 2)
	hooks := 0
	ref.PostSubstep = func(stage int, st *sw.State) { hooks++ }
	ref.Run(1)
	wantHooks := hooks
	if wantHooks == 0 {
		t.Fatal("reference run never invoked the hook")
	}

	s := newTC2Solver(t, 2)
	m := s.M
	var posts, waits int
	r, err := sw.NewOverlapPlanRunner(s, nil, noopOverlap(m.NCells, m.NEdges, m.NVertices, 5, &posts, &waits))
	if err != nil {
		t.Fatal(err)
	}
	s.Runner = r
	hooks = 0
	s.PostSubstep = func(stage int, st *sw.State) { hooks++ }
	s.Run(1)
	if posts != 0 || waits != 0 {
		t.Fatalf("overlap exchange ran (%d posts) despite an installed hook", posts)
	}
	if hooks != wantHooks {
		t.Fatalf("fallback invoked hook %d times, want %d", hooks, wantHooks)
	}
	for i := range ref.State.H {
		if s.State.H[i] != ref.State.H[i] {
			t.Fatalf("fallback H[%d] diverges", i)
		}
	}
}
