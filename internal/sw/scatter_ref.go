package sw

import (
	"repro/internal/mesh"
)

// This file is the serial reference implementation in the ORIGINAL loop
// shapes of the MPAS code — edge-order scatter loops with irregular
// reductions (paper Algorithm 2). It exists to prove, in tests, that the
// regularity-aware gather refactoring (kernels.go) computes the same model:
// the paper's own correctness argument ("the two results are not bit-wise
// identical [but] consistent ... within the machine precision", Fig. 5).

// ReferenceDiagnostics computes all compute_solve_diagnostics fields for
// state st into d using scatter-form loops.
func (s *Solver) ReferenceDiagnostics(st *State, d *Diagnostics) {
	m := s.M
	h, u := st.H, st.U

	// h_edge (D1/D2 are already edge-order; same shape).
	if s.Cfg.HighOrderThickness {
		for c := 0; c < m.NCells; c++ {
			base := c * mesh.MaxEdges
			n := int(m.NEdgesOnCell[c])
			acc := 0.0
			for j := 0; j < n; j++ {
				e := m.EdgesOnCell[base+j]
				nb := m.CellsOnCell[base+j]
				dc := m.DcEdge[e]
				acc += 2 * (h[nb] - h[c]) / (dc * dc)
			}
			d.D2fdx2Cell[c] = acc / float64(n)
		}
		for e := 0; e < m.NEdges; e++ {
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			dc := m.DcEdge[e]
			d.HEdge[e] = 0.5*(h[c1]+h[c2]) - dc*dc/12*0.5*(d.D2fdx2Cell[c1]+d.D2fdx2Cell[c2])
		}
	} else {
		for e := 0; e < m.NEdges; e++ {
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			d.HEdge[e] = 0.5 * (h[c1] + h[c2])
		}
	}

	// Vorticity: edge-order scatter into the two vertices (Algorithm 2
	// shape: traverses edges, writes vertex-indexed data).
	for v := 0; v < m.NVertices; v++ {
		d.Vorticity[v] = 0
	}
	for e := 0; e < m.NEdges; e++ {
		v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
		circ := m.DcEdge[e] * u[e]
		d.Vorticity[v2] += circ // edge circulates CCW around its left vertex
		d.Vorticity[v1] -= circ
	}
	for v := 0; v < m.NVertices; v++ {
		d.Vorticity[v] /= m.AreaTriangle[v]
	}

	// Divergence: edge-order scatter into the two cells.
	for c := 0; c < m.NCells; c++ {
		d.Divergence[c] = 0
	}
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		flux := m.DvEdge[e] * u[e]
		d.Divergence[c1] += flux
		d.Divergence[c2] -= flux
	}
	for c := 0; c < m.NCells; c++ {
		d.Divergence[c] /= m.AreaCell[c]
	}

	// Kinetic energy: edge-order scatter.
	for c := 0; c < m.NCells; c++ {
		d.KE[c] = 0
	}
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		q := 0.25 * m.DcEdge[e] * m.DvEdge[e] * u[e] * u[e]
		d.KE[c1] += q
		d.KE[c2] += q
	}
	for c := 0; c < m.NCells; c++ {
		d.KE[c] /= m.AreaCell[c]
	}

	// Tangential velocity (edge-order, as in MPAS).
	for e := 0; e < m.NEdges; e++ {
		base := e * mesh.MaxEdgesOnEdge
		acc := 0.0
		for j := 0; j < int(m.NEdgesOnEdge[e]); j++ {
			acc += m.WeightsOnEdge[base+j] * u[m.EdgesOnEdge[base+j]]
		}
		d.V[e] = acc
	}

	// h_vertex and pv_vertex.
	for v := 0; v < m.NVertices; v++ {
		base := v * mesh.VertexDegree
		acc := 0.0
		for j := 0; j < mesh.VertexDegree; j++ {
			acc += m.KiteAreasOnVertex[base+j] * h[m.CellsOnVertex[base+j]]
		}
		d.HVertex[v] = acc / m.AreaTriangle[v]
		d.PVVertex[v] = (m.FVertex[v] + d.Vorticity[v]) / d.HVertex[v]
	}

	// pv_cell, vorticity_cell: vertex-order scatter into cells.
	for c := 0; c < m.NCells; c++ {
		d.PVCell[c] = 0
		d.VorticityCell[c] = 0
	}
	for v := 0; v < m.NVertices; v++ {
		base := v * mesh.VertexDegree
		for j := 0; j < mesh.VertexDegree; j++ {
			c := m.CellsOnVertex[base+j]
			k := m.KiteAreasOnVertex[base+j] / m.AreaCell[c]
			d.PVCell[c] += k * d.PVVertex[v]
			d.VorticityCell[c] += k * d.Vorticity[v]
		}
	}

	// pv_edge with APVM.
	for e := 0; e < m.NEdges; e++ {
		v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
		d.PVEdge[e] = 0.5 * (d.PVVertex[v1] + d.PVVertex[v2])
	}
	if s.Cfg.APVM != 0 {
		coef := s.Cfg.APVM * s.Cfg.Dt
		for e := 0; e < m.NEdges; e++ {
			v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			gradPVt := (d.PVVertex[v2] - d.PVVertex[v1]) / m.DvEdge[e]
			gradPVn := (d.PVCell[c2] - d.PVCell[c1]) / m.DcEdge[e]
			d.PVEdge[e] -= coef * (d.V[e]*gradPVt + u[e]*gradPVn)
		}
	}
}

// ReferenceTend computes compute_tend for state st and diagnostics d into td
// using the scatter form for the thickness flux divergence.
func (s *Solver) ReferenceTend(st *State, d *Diagnostics, td *Tendencies) {
	m := s.M
	u, h := st.U, st.H
	g := s.Cfg.Gravity

	// tend_h: edge-order scatter of thickness fluxes.
	for c := 0; c < m.NCells; c++ {
		td.H[c] = 0
	}
	for e := 0; e < m.NEdges; e++ {
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		flux := m.DvEdge[e] * d.HEdge[e] * u[e]
		td.H[c1] += flux
		td.H[c2] -= flux
	}
	for c := 0; c < m.NCells; c++ {
		td.H[c] = -td.H[c] / m.AreaCell[c]
	}

	// tend_u (edge-order in MPAS too). The Rayleigh friction at the bottom
	// belongs to the enforce_boundary_edge slot, which Algorithm 1 runs after
	// compute_tend on EVERY stage — including advection-only configurations,
	// where the dynamic tendency is zeroed but the friction still applies
	// (the conformance fuzzer flagged the early return that used to skip it).
	if s.Cfg.AdvectionOnly {
		for e := 0; e < m.NEdges; e++ {
			td.U[e] = 0
		}
		if r := s.Cfg.RayleighFriction; r != 0 {
			for e := 0; e < m.NEdges; e++ {
				td.U[e] -= r * u[e]
			}
		}
		return
	}
	for e := 0; e < m.NEdges; e++ {
		base := e * mesh.MaxEdgesOnEdge
		q := 0.0
		for j := 0; j < int(m.NEdgesOnEdge[e]); j++ {
			eoe := m.EdgesOnEdge[base+j]
			q += m.WeightsOnEdge[base+j] * u[eoe] * d.HEdge[eoe] * 0.5 * (d.PVEdge[e] + d.PVEdge[eoe])
		}
		c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
		grad := (d.KE[c2] - d.KE[c1] + g*(h[c2]+s.B[c2]-h[c1]-s.B[c1])) / m.DcEdge[e]
		td.U[e] = q - grad
	}
	if nu := s.Cfg.Viscosity; nu != 0 {
		for e := 0; e < m.NEdges; e++ {
			c1, c2 := m.CellsOnEdge[2*e], m.CellsOnEdge[2*e+1]
			v1, v2 := m.VerticesOnEdge[2*e], m.VerticesOnEdge[2*e+1]
			td.U[e] += nu * ((d.Divergence[c2]-d.Divergence[c1])/m.DcEdge[e] -
				(d.Vorticity[v2]-d.Vorticity[v1])/m.DvEdge[e])
		}
	}
	if r := s.Cfg.RayleighFriction; r != 0 {
		for e := 0; e < m.NEdges; e++ {
			td.U[e] -= r * u[e]
		}
	}
}
